// Index telemetry (observability tentpole, part 3): cheap always-on
// structural/runtime counters behind the HOT_STATS compile gate
// (obs/stat_counter.h), plus a quiescent-only snapshot that folds in the
// hot/stats.h node census.
//
// Three layers feed the snapshot:
//   * RowexCounters — writer-path events inside hot/rowex.h: validation
//     restarts, copy-on-write node replacements, leaf pushdowns and §4.4
//     in-place splices.  Incremented with relaxed atomics on the *write*
//     path only; the wait-free read path is untouched.
//   * EpochManager counters (common/epoch.h) — nodes retired into limbo vs
//     nodes physically reclaimed; their difference is the obsolete-node
//     backlog, and the distance between the global epoch and the oldest
//     limbo entry is the reclamation lag.
//   * NodePool counters (hot/node_pool.h) — free-list hits vs fresh arena
//     carves on the copy-on-write allocation path, plus cross-stripe
//     steals (blocks recycled by another thread's stripe).
//
// `CollectTelemetry(trie)` works on any index exposing ForEachNode and
// picks up whichever of the optional surfaces (rowex_counters / epochs /
// pool_stats) the index has, so HotTrie and RowexHotTrie share one
// reporting path.  Snapshots are quiescent-only: no concurrent writer may
// run while the census walks the tree.

#ifndef HOT_OBS_TELEMETRY_H_
#define HOT_OBS_TELEMETRY_H_

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <sstream>
#include <string>

#include "hot/stats.h"
#include "obs/stat_counter.h"

namespace hot {
namespace obs {

// Writer-path event counters embedded in RowexHotTrie.  With HOT_STATS=OFF
// every member is a NullStatCounter and the whole block is dead code.
struct RowexCounters {
  StatCounter writer_restarts;   // step-(c) validation failures → retry
  StatCounter cow_replacements;  // nodes superseded copy-on-write
  StatCounter leaf_pushdowns;    // tid slot replaced by a height-1 node
  StatCounter fast_splices;      // §4.4 in-place physical inserts
};

// One quiescent snapshot of everything the index can report about itself.
struct TelemetrySnapshot {
  // RowexCounters (zero for single-threaded tries).
  uint64_t writer_restarts = 0;
  uint64_t cow_replacements = 0;
  uint64_t leaf_pushdowns = 0;
  uint64_t fast_splices = 0;

  // Epoch reclamation (zero for unsynchronized tries).
  uint64_t nodes_retired = 0;
  uint64_t nodes_reclaimed = 0;
  uint64_t retire_backlog = 0;    // live limbo entries right now
  uint64_t global_epoch = 0;
  uint64_t reclamation_lag = 0;   // epochs since the oldest limbo entry

  // Node pool.
  uint64_t pool_hits = 0;    // allocations served from a free list
  uint64_t pool_carves = 0;  // allocations bump-carved from an arena chunk
  uint64_t pool_steals = 0;  // hits whose blocks came from a sibling stripe

  // Hybrid static/delta indexes (hot/hybrid.h): layer populations and
  // merge/rebuild progress.  Zero `hybrid_merges` with zero layer entries
  // means a non-hybrid index.
  uint64_t hybrid_base_entries = 0;
  uint64_t hybrid_delta_entries = 0;   // active live + dead
  uint64_t hybrid_frozen_entries = 0;  // generation being merged (0 if idle)
  uint64_t hybrid_merges = 0;          // completed merge cycles
  uint64_t hybrid_last_rebuild_keys = 0;
  uint64_t hybrid_last_rebuild_ns = 0;
  uint64_t hybrid_rebuild_ns_total = 0;
  bool hybrid_merge_in_flight = false;

  // Range-sharded wrappers (ycsb/range_sharded.h): the shard layout this
  // snapshot was folded over.  Zero `shards` means a single-tree index.
  uint64_t shards = 0;
  uint64_t empty_shards = 0;       // shards holding no entries (skew signal)
  uint64_t shard_entries_min = 0;  // smallest / largest shard populations
  uint64_t shard_entries_max = 0;

  // Structure (hot/stats.h census): per-layout node counts, bytes, fill.
  NodeCensus census;

  // Entries stored per kMaxFanout-slot node, tree-wide and per layout.
  double FillFactor() const {
    return census.nodes == 0
               ? 0.0
               : static_cast<double>(census.total_entries) /
                     static_cast<double>(census.nodes * kMaxFanout);
  }
  double FillFactorOf(NodeType t) const {
    uint64_t n = census.count_by_type[static_cast<size_t>(t)];
    return n == 0 ? 0.0
                  : static_cast<double>(
                        census.entries_by_type[static_cast<size_t>(t)]) /
                        static_cast<double>(n * kMaxFanout);
  }

  std::string Summary() const {
    std::ostringstream oss;
    oss << "restarts=" << writer_restarts << " cow=" << cow_replacements
        << " pushdowns=" << leaf_pushdowns << " splices=" << fast_splices
        << " retired=" << nodes_retired << " reclaimed=" << nodes_reclaimed
        << " backlog=" << retire_backlog << " lag=" << reclamation_lag
        << " pool_hits=" << pool_hits << " pool_carves=" << pool_carves
        << " pool_steals=" << pool_steals
        << " nodes=" << census.nodes << " fill=" << FillFactor();
    if (hybrid_merges != 0 || hybrid_delta_entries != 0 ||
        hybrid_base_entries != 0) {
      oss << " hybrid_base=" << hybrid_base_entries
          << " hybrid_delta=" << hybrid_delta_entries
          << " hybrid_frozen=" << hybrid_frozen_entries
          << " merges=" << hybrid_merges
          << " last_rebuild_keys=" << hybrid_last_rebuild_keys
          << " last_rebuild_ms=" << hybrid_last_rebuild_ns / 1000000
          << (hybrid_merge_in_flight ? " merging" : "");
    }
    if (shards != 0) {
      oss << " shards=" << shards << " empty_shards=" << empty_shards
          << " shard_min=" << shard_entries_min
          << " shard_max=" << shard_entries_max;
    }
    return oss.str();
  }
};

// Quiescent-only: walks the tree for the census and reads whichever
// counter surfaces the index exposes.
template <typename Trie>
TelemetrySnapshot CollectTelemetry(const Trie& trie) {
  TelemetrySnapshot s;
  s.census = ComputeNodeCensus(trie);
  if constexpr (requires { trie.rowex_counters(); }) {
    const RowexCounters& c = trie.rowex_counters();
    s.writer_restarts = c.writer_restarts.value();
    s.cow_replacements = c.cow_replacements.value();
    s.leaf_pushdowns = c.leaf_pushdowns.value();
    s.fast_splices = c.fast_splices.value();
  }
  if constexpr (requires { trie.epochs(); }) {
    const auto* em = trie.epochs();
    s.nodes_retired = em->retired_total();
    s.nodes_reclaimed = em->reclaimed_total();
    s.retire_backlog = em->RetiredCount();
    s.global_epoch = em->global_epoch();
    uint64_t oldest = em->OldestRetiredEpoch();
    s.reclamation_lag =
        (s.retire_backlog == 0 || oldest > s.global_epoch)
            ? 0
            : s.global_epoch - oldest;
  }
  if constexpr (requires { trie.pool_stats(); }) {
    auto p = trie.pool_stats();
    s.pool_hits = p.hits;
    s.pool_carves = p.carves;
    s.pool_steals = p.steals;
  }
  if constexpr (requires { trie.hybrid_stats(); }) {
    auto h = trie.hybrid_stats();
    s.hybrid_base_entries = h.base_entries;
    s.hybrid_delta_entries = h.delta_live + h.delta_dead;
    s.hybrid_frozen_entries = h.frozen_entries;
    s.hybrid_merges = h.merges;
    s.hybrid_last_rebuild_keys = h.last_rebuild_keys;
    s.hybrid_last_rebuild_ns = h.last_rebuild_ns;
    s.hybrid_rebuild_ns_total = h.rebuild_ns_total;
    s.hybrid_merge_in_flight = h.merge_in_flight;
  }
  return s;
}

// Range-sharded wrappers (ycsb/range_sharded.h): one snapshot folded over
// every shard — counters and the node census sum, the shard-population
// extrema expose partitioning skew.  More constrained than the generic
// overload above, so wrapper types land here.  Quiescent-only, like every
// census walk.
template <typename Wrapper>
  requires requires(const Wrapper& w) {
    { w.shard_count() } -> std::convertible_to<unsigned>;
    w.ForEachShard([](const auto&) {});
  }
TelemetrySnapshot CollectTelemetry(const Wrapper& wrapper) {
  TelemetrySnapshot s;
  s.shards = wrapper.shard_count();
  uint64_t min_entries = ~uint64_t{0};
  wrapper.ForEachShard([&](const auto& shard) {
    TelemetrySnapshot t = CollectTelemetry(shard);
    s.writer_restarts += t.writer_restarts;
    s.cow_replacements += t.cow_replacements;
    s.leaf_pushdowns += t.leaf_pushdowns;
    s.fast_splices += t.fast_splices;
    s.nodes_retired += t.nodes_retired;
    s.nodes_reclaimed += t.nodes_reclaimed;
    s.retire_backlog += t.retire_backlog;
    s.global_epoch = std::max(s.global_epoch, t.global_epoch);
    s.reclamation_lag = std::max(s.reclamation_lag, t.reclamation_lag);
    s.pool_hits += t.pool_hits;
    s.pool_carves += t.pool_carves;
    s.pool_steals += t.pool_steals;
    s.hybrid_base_entries += t.hybrid_base_entries;
    s.hybrid_delta_entries += t.hybrid_delta_entries;
    s.hybrid_frozen_entries += t.hybrid_frozen_entries;
    s.hybrid_merges += t.hybrid_merges;
    s.hybrid_last_rebuild_keys =
        std::max(s.hybrid_last_rebuild_keys, t.hybrid_last_rebuild_keys);
    s.hybrid_last_rebuild_ns =
        std::max(s.hybrid_last_rebuild_ns, t.hybrid_last_rebuild_ns);
    s.hybrid_rebuild_ns_total += t.hybrid_rebuild_ns_total;
    s.hybrid_merge_in_flight =
        s.hybrid_merge_in_flight || t.hybrid_merge_in_flight;
    for (size_t i = 0; i < kNumNodeTypes; ++i) {
      s.census.count_by_type[i] += t.census.count_by_type[i];
      s.census.bytes_by_type[i] += t.census.bytes_by_type[i];
      s.census.entries_by_type[i] += t.census.entries_by_type[i];
    }
    s.census.nodes += t.census.nodes;
    s.census.total_bytes += t.census.total_bytes;
    s.census.total_entries += t.census.total_entries;
    uint64_t entries = shard.size();
    if (entries == 0) ++s.empty_shards;
    min_entries = std::min(min_entries, entries);
    s.shard_entries_max = std::max(s.shard_entries_max, entries);
  });
  s.shard_entries_min = s.shards == 0 ? 0 : min_entries;
  return s;
}

}  // namespace obs
}  // namespace hot

#endif  // HOT_OBS_TELEMETRY_H_
