// Fixed-memory log-bucketed latency histogram (observability tentpole,
// part 2) — the HdrHistogram idea specialized to 64-bit non-negative
// samples (latencies in tsc ticks or nanoseconds).
//
// Bucketing: values below 64 get exact unit buckets; above that, every
// power-of-two octave is split into 64 linear sub-buckets, so any recorded
// value lands in a bucket whose width is at most value/64 — a bounded
// ~1.6% relative error that is independent of the value's magnitude.  The
// whole range [0, 2^63] fits in 3776 buckets ≈ 30 KiB, allocated inline:
// no heap, no resizing, no tail chasing.
//
// Recording is lock-free and thread-safe: one relaxed atomic increment per
// sample (plus a CAS loop for the running max), so per-thread recording
// needs no sharding — though the intended pattern for hot paths is one
// histogram per thread merged at the end (Merge is plain bucket-wise
// addition and therefore associative and commutative).
//
// Percentile extraction (p50/p90/p99/p99.9/max) walks the cumulative
// counts; the returned value is the midpoint of the bucket containing the
// requested rank, so it differs from the exact order statistic by at most
// one bucket width.  tests/histogram_test.cc pins the error bound against
// exactly sorted samples for uniform, Zipfian and bimodal distributions.

#ifndef HOT_OBS_HISTOGRAM_H_
#define HOT_OBS_HISTOGRAM_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace hot {
namespace obs {

class LatencyHistogram {
 public:
  // 64 = 2^kSubBits linear sub-buckets per power-of-two octave.
  static constexpr unsigned kSubBits = 6;
  static constexpr unsigned kSub = 1u << kSubBits;
  // Octaves 6..63 after the exact [0, 64) range: 58 octaves of 64 linear
  // sub-buckets each.
  static constexpr size_t kNumBuckets = kSub + (64 - kSubBits) * kSub;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  // Records one sample.  Lock-free; safe to call concurrently.
  void Record(uint64_t value) { RecordN(value, 1); }

  // Records `n` samples of the same value with one round of atomics (used
  // by the YCSB driver to attribute a batched-read flush to its members).
  void RecordN(uint64_t value, uint64_t n) {
    if (n == 0) return;
    buckets_[BucketIndex(value)].fetch_add(n, std::memory_order_relaxed);
    count_.fetch_add(n, std::memory_order_relaxed);
    sum_.fetch_add(value * n, std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (value > prev &&
           !max_.compare_exchange_weak(prev, value,
                                       std::memory_order_relaxed)) {
    }
  }

  // Bucket-wise addition of `other` into *this.  Associative/commutative;
  // callers merge per-thread histograms at quiesce points.
  void Merge(const LatencyHistogram& other) {
    for (size_t i = 0; i < kNumBuckets; ++i) {
      uint64_t c = other.buckets_[i].load(std::memory_order_relaxed);
      if (c != 0) buckets_[i].fetch_add(c, std::memory_order_relaxed);
    }
    count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    uint64_t om = other.max_.load(std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (om > prev &&
           !max_.compare_exchange_weak(prev, om, std::memory_order_relaxed)) {
    }
  }

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const {
    uint64_t c = count();
    return c == 0 ? 0.0
                  : static_cast<double>(sum_.load(std::memory_order_relaxed)) /
                        static_cast<double>(c);
  }

  // Value at percentile p in [0, 100]: the midpoint of the bucket holding
  // the ceil(p/100 * count)-th smallest sample (p=100 returns the exact
  // tracked maximum).  Quiescent-only for meaningful answers.
  uint64_t ValueAtPercentile(double p) const {
    uint64_t total = count();
    if (total == 0) return 0;
    if (p >= 100.0) return max();
    if (p < 0.0) p = 0.0;
    uint64_t rank = static_cast<uint64_t>(p / 100.0 *
                                          static_cast<double>(total));
    if (rank < total) ++rank;  // 1-based rank, ceil
    uint64_t seen = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      seen += buckets_[i].load(std::memory_order_relaxed);
      if (seen >= rank) return BucketMidpoint(i);
    }
    return max();
  }

  // Raw bucket access (tests: merge associativity is bucket-wise equality).
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  static size_t BucketIndex(uint64_t value) {
    if (value < kSub) return static_cast<size_t>(value);
    unsigned k = 63 - static_cast<unsigned>(std::countl_zero(value));
    unsigned shift = k - kSubBits;
    size_t sub = static_cast<size_t>((value >> shift) - kSub);
    return static_cast<size_t>(k - kSubBits + 1) * kSub + sub;
  }

  // Inclusive lower edge and width of bucket i.
  static uint64_t BucketLow(size_t i) {
    if (i < kSub) return i;
    unsigned octave = static_cast<unsigned>(i / kSub - 1);  // k - kSubBits
    uint64_t sub = i % kSub;
    return (kSub + sub) << octave;
  }
  static uint64_t BucketWidth(size_t i) {
    if (i < kSub) return 1;
    return 1ULL << static_cast<unsigned>(i / kSub - 1);
  }
  static uint64_t BucketMidpoint(size_t i) {
    return BucketLow(i) + BucketWidth(i) / 2;
  }

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

}  // namespace obs
}  // namespace hot

#endif  // HOT_OBS_HISTOGRAM_H_
