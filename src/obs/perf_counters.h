// Hardware performance-counter harness (observability tentpole, part 1).
//
// The paper explains HOT's throughput wins micro-architecturally (§6.2,
// Table 3): cycles, instructions, L3 misses, branch mispredictions and TLB
// misses *per lookup*.  This header reproduces that instrumentation as a
// `perf_event_open` counter group — one group leader (cycles) with the
// sibling events attached, read atomically in a single group read so the
// five values cover exactly the same instruction window.
//
// Graceful degradation is a first-class mode, not an error path: CI
// containers typically deny the syscall (seccomp / perf_event_paranoid),
// and `HOT_NO_PERF=1` forces the same path for testing.  In that case the
// harness still measures wall time via rdtsc (calibrated to nanoseconds
// against steady_clock), `hw_valid` is false on every sample, and every
// consumer (bench/table3_counters, the YCSB --counters flag) reports the
// fallback explicitly instead of failing.
//
//   PerfCounterGroup group;                  // opens fds once, or falls back
//   {
//     CounterRegion region(&group);
//     ... measured code ...
//     CounterSample delta = region.Stop();   // or let the dtor fill an out ptr
//   }
//
// Regions nest freely: a region only stores two point-in-time group reads,
// so an inner region's deltas are always bounded by its enclosing region's.

#ifndef HOT_OBS_PERF_COUNTERS_H_
#define HOT_OBS_PERF_COUNTERS_H_

#include <cstdint>

namespace hot {
namespace obs {

// Monotonic tick source for latency measurement: rdtsc on x86-64 (constant
// TSC assumed, as on every mainstream server part), steady_clock nanoseconds
// elsewhere.  Cheap enough to call per operation (~6ns).
uint64_t ReadTicks();

// Ticks-to-nanoseconds conversion, calibrated once against steady_clock on
// first use (thread-safe).
double TicksToNanos(uint64_t ticks);
double TicksPerSecond();

// One point-in-time (or delta) reading of the counter group.  `ticks` is
// always valid; the five hardware counters are meaningful only when
// `hw_valid` is set (group leader opened and counting).
struct CounterSample {
  uint64_t ticks = 0;
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t llc_misses = 0;
  uint64_t branch_misses = 0;
  uint64_t dtlb_misses = 0;
  bool hw_valid = false;

  CounterSample operator-(const CounterSample& start) const {
    CounterSample d;
    d.ticks = ticks - start.ticks;
    d.cycles = cycles - start.cycles;
    d.instructions = instructions - start.instructions;
    d.llc_misses = llc_misses - start.llc_misses;
    d.branch_misses = branch_misses - start.branch_misses;
    d.dtlb_misses = dtlb_misses - start.dtlb_misses;
    d.hw_valid = hw_valid && start.hw_valid;
    return d;
  }
};

// A perf_event_open group: leader = cycles, siblings = instructions, LLC
// misses, branch misses, dTLB misses, all read in one PERF_FORMAT_GROUP
// read.  Construction opens the fds for the calling thread (inherited by
// nothing: measure on the thread that constructed the group); destruction
// closes them.  When the syscall is unavailable — or HOT_NO_PERF is set in
// the environment — the group is a pure rdtsc fallback.
class PerfCounterGroup {
 public:
  PerfCounterGroup();
  ~PerfCounterGroup();

  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  // True when the hardware group opened and samples carry real counters.
  bool hw_available() const { return fds_[0] >= 0; }

  // Why the hardware path is off ("" when hw_available()).
  const char* fallback_reason() const { return fallback_reason_; }

  // Point-in-time group read (+ ticks).  Monotonic between calls on the
  // owning thread.
  CounterSample Read() const;

  // True when the environment disables the hardware path (HOT_NO_PERF=1);
  // consulted at construction, exposed for tests.
  static bool DisabledByEnv();

 private:
  // fds_[0] is the group leader; -1 entries were denied and read as zero.
  int fds_[5] = {-1, -1, -1, -1, -1};
  // Position of each event's value in the group-read buffer, -1 if unopened.
  int read_slot_[5] = {-1, -1, -1, -1, -1};
  int n_open_ = 0;
  const char* fallback_reason_ = "";
};

// Scoped measurement: snapshots the group at construction; Stop() (or the
// destructor, into `out` if provided) yields the delta.
class CounterRegion {
 public:
  explicit CounterRegion(PerfCounterGroup* group, CounterSample* out = nullptr)
      : group_(group), out_(out), start_(group->Read()) {}

  ~CounterRegion() {
    if (!stopped_ && out_ != nullptr) *out_ = group_->Read() - start_;
  }

  CounterRegion(const CounterRegion&) = delete;
  CounterRegion& operator=(const CounterRegion&) = delete;

  CounterSample Stop() {
    stopped_ = true;
    CounterSample d = group_->Read() - start_;
    if (out_ != nullptr) *out_ = d;
    return d;
  }

 private:
  PerfCounterGroup* group_;
  CounterSample* out_;
  CounterSample start_;
  bool stopped_ = false;
};

}  // namespace obs
}  // namespace hot

#endif  // HOT_OBS_PERF_COUNTERS_H_
