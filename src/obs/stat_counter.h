// Compile-gated statistics counters (observability tentpole, part 3).
//
// `StatCounter` is the primitive every telemetry counter in the tree is
// built from.  With `HOT_STATS` defined (the default build: CMake option
// HOT_STATS=ON), it is a relaxed atomic increment — one uncontended
// `lock xadd` on the *write* path only, never on lookups.  With the option
// OFF the alias resolves to `NullStatCounter`, an empty constexpr type whose
// methods compile to nothing, so instrumented code carries zero cost and
// zero bytes.  tests/histogram_test.cc pins the no-op property down with
// static_asserts against `NullStatCounter` directly, which is exactly the
// type every counter becomes under -DHOT_STATS=OFF.
//
// This header is dependency-free on purpose: common/epoch.h and
// hot/node_pool.h include it, so it must not pull in any hot/ or ycsb/
// headers.

#ifndef HOT_OBS_STAT_COUNTER_H_
#define HOT_OBS_STAT_COUNTER_H_

#include <atomic>
#include <cstdint>

namespace hot {
namespace obs {

#if defined(HOT_STATS) && HOT_STATS
inline constexpr bool kStatsEnabled = true;
#else
inline constexpr bool kStatsEnabled = false;
#endif

// Monotonic event counter; relaxed ordering is sufficient because every
// consumer reads at a quiescent point (or tolerates slightly stale values).
class AtomicStatCounter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// The HOT_STATS=OFF twin: stateless, constexpr, guaranteed empty.
struct NullStatCounter {
  constexpr void Add(uint64_t = 1) const {}
  constexpr uint64_t value() const { return 0; }
};

#if defined(HOT_STATS) && HOT_STATS
using StatCounter = AtomicStatCounter;
#else
using StatCounter = NullStatCounter;
#endif

}  // namespace obs
}  // namespace hot

#endif  // HOT_OBS_STAT_COUNTER_H_
