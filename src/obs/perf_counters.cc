#include "obs/perf_counters.h"

#include <chrono>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace hot {
namespace obs {

uint64_t ReadTicks() {
#if defined(__x86_64__)
  return __rdtsc();
#else
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

namespace {

// Calibrates the tick source against steady_clock over a short window.
// On non-x86 ReadTicks already returns nanoseconds, so the ratio is ~1e9.
double CalibrateTicksPerSecond() {
#if defined(__x86_64__)
  using Clock = std::chrono::steady_clock;
  auto t0 = Clock::now();
  uint64_t c0 = ReadTicks();
  // ~10ms window: long enough for <0.1% calibration error, short enough to
  // be invisible at startup.
  for (;;) {
    auto t1 = Clock::now();
    if (t1 - t0 >= std::chrono::milliseconds(10)) {
      uint64_t c1 = ReadTicks();
      double seconds = std::chrono::duration<double>(t1 - t0).count();
      return static_cast<double>(c1 - c0) / seconds;
    }
  }
#else
  return 1e9;
#endif
}

}  // namespace

double TicksPerSecond() {
  static const double rate = CalibrateTicksPerSecond();
  return rate;
}

double TicksToNanos(uint64_t ticks) {
  return static_cast<double>(ticks) * 1e9 / TicksPerSecond();
}

bool PerfCounterGroup::DisabledByEnv() {
  const char* v = std::getenv("HOT_NO_PERF");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

#if defined(__linux__)

namespace {

int PerfEventOpen(perf_event_attr* attr, int group_fd) {
  return static_cast<int>(
      syscall(SYS_perf_event_open, attr, /*pid=*/0, /*cpu=*/-1, group_fd,
              /*flags=*/0));
}

struct EventSpec {
  uint32_t type;
  uint64_t config;
};

// Order matches fds_: cycles (leader), instructions, LLC misses, branch
// misses, dTLB read misses (the §6.2 counter set).
constexpr EventSpec kEvents[5] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_DTLB | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
};

}  // namespace

PerfCounterGroup::PerfCounterGroup() {
  if (DisabledByEnv()) {
    fallback_reason_ = "HOT_NO_PERF set";
    return;
  }
  for (int i = 0; i < 5; ++i) {
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = kEvents[i].type;
    attr.config = kEvents[i].config;
    attr.disabled = (i == 0) ? 1 : 0;  // enable the whole group at once
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP;
    int group_fd = (i == 0) ? -1 : fds_[0];
    int fd = PerfEventOpen(&attr, group_fd);
    if (fd < 0) {
      if (i == 0) {
        // No leader, no group: pure fallback.
        fallback_reason_ = "perf_event_open unavailable";
        return;
      }
      continue;  // a missing sibling just reads as zero
    }
    fds_[i] = fd;
    read_slot_[i] = n_open_++;
  }
  ioctl(fds_[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(fds_[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

PerfCounterGroup::~PerfCounterGroup() {
  for (int fd : fds_) {
    if (fd >= 0) close(fd);
  }
}

CounterSample PerfCounterGroup::Read() const {
  CounterSample s;
  s.ticks = ReadTicks();
  if (fds_[0] < 0) return s;
  // PERF_FORMAT_GROUP read layout: u64 nr, then one u64 per member in
  // attachment order.
  uint64_t buf[1 + 5];
  ssize_t want = static_cast<ssize_t>((1 + n_open_) * sizeof(uint64_t));
  if (read(fds_[0], buf, sizeof(buf)) < want) return s;
  auto value_of = [&](int event) -> uint64_t {
    int slot = read_slot_[event];
    return slot < 0 ? 0 : buf[1 + slot];
  };
  s.cycles = value_of(0);
  s.instructions = value_of(1);
  s.llc_misses = value_of(2);
  s.branch_misses = value_of(3);
  s.dtlb_misses = value_of(4);
  s.hw_valid = true;
  return s;
}

#else  // !__linux__

PerfCounterGroup::PerfCounterGroup() {
  fallback_reason_ = DisabledByEnv() ? "HOT_NO_PERF set" : "not linux";
}

PerfCounterGroup::~PerfCounterGroup() = default;

CounterSample PerfCounterGroup::Read() const {
  CounterSample s;
  s.ticks = ReadTicks();
  return s;
}

#endif  // __linux__

}  // namespace obs
}  // namespace hot
