// Adaptive Radix Tree (Leis et al., ICDE 2013) — single-threaded variant.
//
// The paper's primary trie baseline (§6.1): span 8, adaptive node sizes
// (art_node.h), hybrid path compression, single-value leaves with lazy
// expansion.  The public API mirrors HotTrie so the YCSB driver and the
// benchmark harness treat all indexes uniformly: values are 63-bit tuple
// identifiers, keys are resolved through a KeyExtractor, lookups verify the
// candidate leaf against the search key.

#ifndef HOT_ART_ART_H_
#define HOT_ART_ART_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "common/alloc.h"
#include "common/extractors.h"
#include "common/key.h"
#include "art/art_node.h"

namespace hot {

template <typename KeyExtractor>
class ArtTree {
 public:
  explicit ArtTree(KeyExtractor extractor = KeyExtractor(),
                   MemoryCounter* counter = nullptr)
      : extractor_(extractor), alloc_(counter), root_(art::ArtEntry::kEmpty) {}

  ~ArtTree() { Clear(); }

  ArtTree(const ArtTree&) = delete;
  ArtTree& operator=(const ArtTree&) = delete;

  // Inserts `value` under its extracted key; false if the key exists.
  bool Insert(uint64_t value) {
    KeyScratch scratch;
    KeyRef key = extractor_(value, scratch);
    return InsertRec(&root_, key, value, 0);
  }

  std::optional<uint64_t> Lookup(KeyRef key) const {
    uint64_t cur = root_;
    unsigned depth = 0;
    while (art::ArtEntry::IsNode(cur)) {
      art::ArtNodeHeader* n = art::ArtHeader(cur);
      // Optimistic prefix skip: compare the stored snippet, trust the rest
      // (the final leaf comparison catches mismatches).
      unsigned stored =
          n->prefix_len < art::kArtMaxPrefix ? n->prefix_len : art::kArtMaxPrefix;
      for (unsigned i = 0; i < stored; ++i) {
        if (key.ByteOrZero(depth + i) != n->prefix[i]) return std::nullopt;
      }
      depth += n->prefix_len;
      uint64_t* child = art::ArtFindChild(n, key.ByteOrZero(depth));
      if (child == nullptr) return std::nullopt;
      cur = *child;
      ++depth;
    }
    if (cur == art::ArtEntry::kEmpty) return std::nullopt;
    KeyScratch scratch;
    uint64_t payload = art::ArtEntry::TidPayload(cur);
    if (extractor_(payload, scratch) == key) return payload;
    return std::nullopt;
  }

  bool Remove(KeyRef key) {
    return RemoveRec(&root_, key, 0);
  }

  // Visits up to `limit` values with key >= start, in key order.
  template <typename Fn>
  size_t ScanFrom(KeyRef start, size_t limit, Fn&& fn) const {
    size_t seen = 0;
    ScanRec(root_, start, 0, false, limit, &seen, fn);
    return seen;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Clear() {
    ClearRec(root_);
    root_ = art::ArtEntry::kEmpty;
    size_ = 0;
  }

  // Leaf-depth visitor (Fig. 11): depth counts inner nodes on the path.
  void ForEachLeaf(
      const std::function<void(unsigned depth, uint64_t value)>& fn) const {
    LeafRec(root_, 0, fn);
  }

  MemoryCounter* counter() const { return alloc_.counter(); }

  // Deep structural self-check (quiescent-only; test/debug use).  Verifies
  // the adaptive-layout bookkeeping (counts, sorted child edges, Node48
  // indirection, Node256 population), the compressed-path bytes against an
  // actual leaf key, every child edge byte against its subtree's minimum
  // leaf, strict in-order key ascent, and the total leaf count.
  bool CheckStructure(std::string* error) const {
    size_t leaves = 0;
    bool have_prev = false;
    std::string prev;
    std::string err;
    if (!CheckRec(root_, 0, &leaves, &have_prev, &prev, &err)) {
      if (error != nullptr) *error = err;
      return false;
    }
    if (leaves != size_) {
      if (error != nullptr) {
        *error = "leaf count " + std::to_string(leaves) + " != size " +
                 std::to_string(size_);
      }
      return false;
    }
    return true;
  }

 private:
  bool CheckRec(uint64_t entry, unsigned depth, size_t* leaves,
                bool* have_prev, std::string* prev,
                std::string* error) const {
    if (entry == art::ArtEntry::kEmpty) {
      if (depth != 0) {
        *error = "empty child slot below the root";
        return false;
      }
      return true;
    }
    if (art::ArtEntry::IsTid(entry)) {
      ++*leaves;
      KeyScratch scratch;
      KeyRef key = extractor_(art::ArtEntry::TidPayload(entry), scratch);
      std::string cur(reinterpret_cast<const char*>(key.data()), key.size());
      if (*have_prev && !(*prev < cur)) {
        *error = "in-order keys not strictly ascending";
        return false;
      }
      *prev = std::move(cur);
      *have_prev = true;
      return true;
    }
    art::ArtNodeHeader* n = art::ArtHeader(entry);
    unsigned count = n->Count();
    unsigned max_children = 0;
    switch (n->type) {
      case art::ArtNodeType::kNode4:
        max_children = 4;
        break;
      case art::ArtNodeType::kNode16:
        max_children = 16;
        break;
      case art::ArtNodeType::kNode48:
        max_children = 48;
        break;
      case art::ArtNodeType::kNode256:
        max_children = 256;
        break;
    }
    if (count < 1 || count > max_children) {
      *error = "child count " + std::to_string(count) +
               " out of range for node type";
      return false;
    }
    if (n->type == art::ArtNodeType::kNode4 ||
        n->type == art::ArtNodeType::kNode16) {
      const uint8_t* keys = n->type == art::ArtNodeType::kNode4
                                ? reinterpret_cast<art::ArtNode4*>(n)->keys
                                : reinterpret_cast<art::ArtNode16*>(n)->keys;
      for (unsigned i = 1; i < count; ++i) {
        if (keys[i - 1] >= keys[i]) {
          *error = "Node4/16 edge bytes not strictly ascending";
          return false;
        }
      }
    } else if (n->type == art::ArtNodeType::kNode48) {
      auto* node = reinterpret_cast<art::ArtNode48*>(n);
      unsigned mapped = 0;
      bool slot_used[48] = {};
      for (unsigned c = 0; c < 256; ++c) {
        uint8_t idx = node->child_index[c];
        if (idx == art::ArtNode48::kEmptySlot) continue;
        if (idx >= 48 || slot_used[idx] ||
            node->children[idx] == art::ArtEntry::kEmpty) {
          *error = "Node48 child_index entry invalid or duplicated";
          return false;
        }
        slot_used[idx] = true;
        ++mapped;
      }
      if (mapped != count) {
        *error = "Node48 mapped bytes != child count";
        return false;
      }
    } else {
      auto* node = reinterpret_cast<art::ArtNode256*>(n);
      unsigned populated = 0;
      for (unsigned c = 0; c < 256; ++c) {
        if (node->children[c] != art::ArtEntry::kEmpty) ++populated;
      }
      if (populated != count) {
        *error = "Node256 populated slots != child count";
        return false;
      }
    }
    // Compressed path: the inline snippet (and, beyond it, nothing to check
    // here — the hybrid fallback is exercised functionally) must match the
    // bytes every key in this subtree shares, witnessed by the minimum leaf.
    {
      KeyScratch scratch;
      KeyRef witness =
          extractor_(art::ArtEntry::TidPayload(MinLeaf(entry)), scratch);
      unsigned stored = n->prefix_len < art::kArtMaxPrefix ? n->prefix_len
                                                           : art::kArtMaxPrefix;
      for (unsigned i = 0; i < stored; ++i) {
        if (witness.ByteOrZero(depth + i) != n->prefix[i]) {
          *error = "compressed-path byte disagrees with subtree leaf key";
          return false;
        }
      }
    }
    unsigned child_depth = depth + n->prefix_len;
    bool ok = true;
    art::ArtForEachChild(n, [&](uint8_t c, uint64_t child) {
      KeyScratch scratch;
      KeyRef witness =
          extractor_(art::ArtEntry::TidPayload(MinLeaf(child)), scratch);
      if (witness.ByteOrZero(child_depth) != c) {
        *error = "child edge byte disagrees with subtree leaf key";
        ok = false;
        return false;
      }
      ok = CheckRec(child, child_depth + 1, leaves, have_prev, prev, error);
      return ok;
    });
    return ok;
  }

  // Longest common span of `key` (from `depth`) and the node's compressed
  // path.  Uses the inline snippet for the first kArtMaxPrefix bytes and
  // falls back to a leaf key beyond it (hybrid path compression).
  unsigned CheckPrefix(art::ArtNodeHeader* n, KeyRef key, unsigned depth,
                       KeyScratch& scratch) const {
    unsigned i = 0;
    unsigned stored =
        n->prefix_len < art::kArtMaxPrefix ? n->prefix_len : art::kArtMaxPrefix;
    for (; i < stored; ++i) {
      if (key.ByteOrZero(depth + i) != n->prefix[i]) return i;
    }
    if (n->prefix_len > art::kArtMaxPrefix) {
      KeyRef leaf_key = extractor_(
          art::ArtEntry::TidPayload(MinLeaf(art::ArtMakeNode(n))), scratch);
      for (; i < n->prefix_len; ++i) {
        if (key.ByteOrZero(depth + i) != leaf_key.ByteOrZero(depth + i)) {
          return i;
        }
      }
    }
    return n->prefix_len;
  }

  uint64_t MinLeaf(uint64_t entry) const {
    while (art::ArtEntry::IsNode(entry)) {
      uint64_t first = art::ArtEntry::kEmpty;
      art::ArtForEachChild(art::ArtHeader(entry), [&](uint8_t, uint64_t e) {
        first = e;
        return false;
      });
      entry = first;
    }
    return entry;
  }

  bool InsertRec(uint64_t* slot, KeyRef key, uint64_t value, unsigned depth) {
    if (*slot == art::ArtEntry::kEmpty) {
      *slot = art::ArtEntry::MakeTid(value);
      ++size_;
      return true;
    }

    if (art::ArtEntry::IsTid(*slot)) {
      // Lazy-expanded leaf: split at the first differing byte.
      KeyScratch scratch;
      uint64_t existing_payload = art::ArtEntry::TidPayload(*slot);
      KeyRef existing = extractor_(existing_payload, scratch);
      unsigned m = depth;
      size_t limit = std::max(key.size(), existing.size());
      while (m < limit && key.ByteOrZero(m) == existing.ByteOrZero(m)) ++m;
      if (m >= limit && key.size() == existing.size()) return false;  // dup
      auto* node = reinterpret_cast<art::ArtNode4*>(
          art::ArtAllocNode(alloc_, art::ArtNodeType::kNode4));
      node->header.prefix_len = m - depth;
      for (unsigned i = 0; i < std::min<unsigned>(m - depth, art::kArtMaxPrefix);
           ++i) {
        node->header.prefix[i] = key.ByteOrZero(depth + i);
      }
      art::ArtAddChild(&node->header, existing.ByteOrZero(m), *slot);
      art::ArtAddChild(&node->header, key.ByteOrZero(m),
                       art::ArtEntry::MakeTid(value));
      *slot = art::ArtMakeNode(&node->header);
      ++size_;
      return true;
    }

    art::ArtNodeHeader* n = art::ArtHeader(*slot);
    KeyScratch scratch;
    unsigned matched = CheckPrefix(n, key, depth, scratch);
    if (matched < n->prefix_len) {
      // Split the compressed path at the mismatch.
      auto* parent = reinterpret_cast<art::ArtNode4*>(
          art::ArtAllocNode(alloc_, art::ArtNodeType::kNode4));
      parent->header.prefix_len = matched;
      for (unsigned i = 0; i < std::min<unsigned>(matched, art::kArtMaxPrefix);
           ++i) {
        parent->header.prefix[i] = key.ByteOrZero(depth + i);
      }
      // Old node keeps the tail of its prefix after the mismatch byte.
      uint8_t old_byte;
      unsigned tail = n->prefix_len - matched - 1;
      if (n->prefix_len <= art::kArtMaxPrefix) {
        old_byte = n->prefix[matched];
        std::memmove(n->prefix, n->prefix + matched + 1,
                     std::min<unsigned>(tail, art::kArtMaxPrefix));
      } else {
        // Recover bytes beyond the stored snippet from a leaf.
        KeyScratch leaf_scratch;
        KeyRef leaf_key = extractor_(
            art::ArtEntry::TidPayload(MinLeaf(*slot)), leaf_scratch);
        old_byte = leaf_key.ByteOrZero(depth + matched);
        for (unsigned i = 0;
             i < std::min<unsigned>(tail, art::kArtMaxPrefix); ++i) {
          n->prefix[i] = leaf_key.ByteOrZero(depth + matched + 1 + i);
        }
      }
      n->prefix_len = tail;
      art::ArtAddChild(&parent->header, old_byte, *slot);
      art::ArtAddChild(&parent->header, key.ByteOrZero(depth + matched),
                       art::ArtEntry::MakeTid(value));
      *slot = art::ArtMakeNode(&parent->header);
      ++size_;
      return true;
    }

    depth += n->prefix_len;
    uint8_t c = key.ByteOrZero(depth);
    uint64_t* child = art::ArtFindChild(n, c);
    if (child != nullptr) return InsertRec(child, key, value, depth + 1);
    if (art::ArtIsFull(n)) {
      n = art::ArtGrow(alloc_, n);
      *slot = art::ArtMakeNode(n);
    }
    art::ArtAddChild(n, c, art::ArtEntry::MakeTid(value));
    ++size_;
    return true;
  }

  bool RemoveRec(uint64_t* slot, KeyRef key, unsigned depth) {
    if (*slot == art::ArtEntry::kEmpty) return false;
    if (art::ArtEntry::IsTid(*slot)) {
      KeyScratch scratch;
      if (!(extractor_(art::ArtEntry::TidPayload(*slot), scratch) == key)) {
        return false;
      }
      *slot = art::ArtEntry::kEmpty;
      --size_;
      return true;
    }
    art::ArtNodeHeader* n = art::ArtHeader(*slot);
    KeyScratch scratch;
    if (CheckPrefix(n, key, depth, scratch) < n->prefix_len) return false;
    depth += n->prefix_len;
    uint8_t c = key.ByteOrZero(depth);
    uint64_t* child = art::ArtFindChild(n, c);
    if (child == nullptr) return false;

    if (art::ArtEntry::IsTid(*child)) {
      KeyScratch leaf_scratch;
      if (!(extractor_(art::ArtEntry::TidPayload(*child), leaf_scratch) ==
            key)) {
        return false;
      }
      art::ArtRemoveChild(n, c);
      --size_;
      if (n->Count() == 1 && n->type == art::ArtNodeType::kNode4) {
        CollapseNode4(slot);
      } else {
        art::ArtNodeHeader* shrunk = art::ArtMaybeShrink(alloc_, n);
        if (shrunk != n) *slot = art::ArtMakeNode(shrunk);
      }
      return true;
    }
    if (!RemoveRec(child, key, depth + 1)) return false;
    // Child subtrees never become empty (leaves are removed at the parent),
    // but a recursive removal may have left *child collapsed already.
    return true;
  }

  // Replaces a 1-child Node4 with its child, merging compressed paths.
  void CollapseNode4(uint64_t* slot) {
    auto* node = reinterpret_cast<art::ArtNode4*>(art::ArtHeader(*slot));
    uint64_t child = node->children[0];
    uint8_t byte = node->keys[0];
    if (art::ArtEntry::IsNode(child)) {
      art::ArtNodeHeader* ch = art::ArtHeader(child);
      // new prefix = node.prefix + byte + child.prefix
      unsigned np = node->header.prefix_len;
      uint8_t merged[art::kArtMaxPrefix];
      unsigned w = 0;
      for (unsigned i = 0; i < np && w < art::kArtMaxPrefix; ++i) {
        merged[w++] = node->header.prefix[i];
      }
      if (w < art::kArtMaxPrefix) merged[w++] = byte;
      for (unsigned i = 0; i < ch->prefix_len && w < art::kArtMaxPrefix; ++i) {
        merged[w++] = ch->prefix[i];
      }
      std::memcpy(ch->prefix, merged, w);
      ch->prefix_len = np + 1 + ch->prefix_len;
      // Note: bytes beyond kArtMaxPrefix are recovered from leaves (hybrid
      // scheme), so truncation of `merged` is fine.
    }
    art::ArtFreeNode(alloc_, &node->header);
    *slot = child;
  }

  // Ordered scan with a lower bound.  `past` = subtree already known to be
  // entirely >= start.  Returns false when the limit is hit.
  template <typename Fn>
  bool ScanRec(uint64_t entry, KeyRef start, unsigned depth, bool past,
               size_t limit, size_t* seen, Fn&& fn) const {
    if (entry == art::ArtEntry::kEmpty) return true;
    if (art::ArtEntry::IsTid(entry)) {
      uint64_t payload = art::ArtEntry::TidPayload(entry);
      if (!past) {
        KeyScratch scratch;
        if (extractor_(payload, scratch).Compare(start) < 0) return true;
      }
      fn(payload);
      return ++*seen < limit;
    }
    art::ArtNodeHeader* n = art::ArtHeader(entry);
    bool subtree_past = past;
    unsigned next_depth = depth + n->prefix_len;
    if (!past) {
      // Compare the compressed path against the start key to decide whether
      // this subtree is entirely before/after the bound.
      KeyScratch scratch;
      KeyRef leaf_key =
          extractor_(art::ArtEntry::TidPayload(MinLeaf(entry)), scratch);
      for (unsigned i = 0; i < n->prefix_len; ++i) {
        uint8_t pb = i < art::kArtMaxPrefix ? n->prefix[i]
                                            : leaf_key.ByteOrZero(depth + i);
        uint8_t sb = start.ByteOrZero(depth + i);
        if (pb > sb) {
          subtree_past = true;
          break;
        }
        if (pb < sb) return true;  // whole subtree < start
      }
    }
    bool keep_going = true;
    art::ArtForEachChild(n, [&](uint8_t byte, uint64_t child) {
      if (!subtree_past) {
        uint8_t sb = start.ByteOrZero(next_depth);
        if (byte < sb) return true;  // skip: subtree < start
        if (byte > sb) {
          keep_going = ScanRec(child, start, next_depth + 1, true, limit,
                               seen, fn);
          return keep_going;
        }
        keep_going = ScanRec(child, start, next_depth + 1, false, limit,
                             seen, fn);
        return keep_going;
      }
      keep_going =
          ScanRec(child, start, next_depth + 1, true, limit, seen, fn);
      return keep_going;
    });
    return keep_going;
  }

  void LeafRec(uint64_t entry, unsigned depth,
               const std::function<void(unsigned, uint64_t)>& fn) const {
    if (entry == art::ArtEntry::kEmpty) return;
    if (art::ArtEntry::IsTid(entry)) {
      fn(depth, art::ArtEntry::TidPayload(entry));
      return;
    }
    art::ArtForEachChild(art::ArtHeader(entry), [&](uint8_t, uint64_t child) {
      LeafRec(child, depth + 1, fn);
      return true;
    });
  }

  void ClearRec(uint64_t entry) {
    if (!art::ArtEntry::IsNode(entry)) return;
    art::ArtNodeHeader* n = art::ArtHeader(entry);
    art::ArtForEachChild(n, [&](uint8_t, uint64_t child) {
      ClearRec(child);
      return true;
    });
    art::ArtFreeNode(alloc_, n);
  }

  KeyExtractor extractor_;
  mutable CountingAllocator alloc_;
  uint64_t root_;
  size_t size_ = 0;
};

}  // namespace hot

#endif  // HOT_ART_ART_H_
