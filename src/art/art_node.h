// Adaptive Radix Tree node structures (Leis, Kemper, Neumann, ICDE 2013),
// the paper's primary trie baseline (§6.1).
//
// ART is a span-8 radix tree with four adaptive inner-node layouts (Node4,
// Node16, Node48, Node256) and hybrid path compression (a bounded prefix
// snippet stored inline, longer prefixes re-validated against a leaf key).
// Leaves are 63-bit tuple identifiers tagged in the entry word's MSB,
// exactly like HOT's entries, so both indexes share extractors and
// benchmarks.

#ifndef HOT_ART_ART_NODE_H_
#define HOT_ART_ART_NODE_H_

#include <cassert>
#include <cstdint>
#include <cstring>

#include "common/alloc.h"
#include "common/locks.h"
#include "common/simd.h"

namespace hot {
namespace art {

enum class ArtNodeType : uint8_t { kNode4 = 0, kNode16 = 1, kNode48 = 2, kNode256 = 3 };

// Entries use the same tagging convention as HOT: MSB set = tid.
struct ArtEntry {
  static constexpr uint64_t kEmpty = 0;
  static constexpr uint64_t kTidBit = 1ULL << 63;

  static uint64_t MakeTid(uint64_t payload) {
    assert((payload >> 63) == 0);
    return payload | kTidBit;
  }
  static bool IsTid(uint64_t e) { return (e & kTidBit) != 0; }
  static bool IsNode(uint64_t e) { return e != kEmpty && (e & kTidBit) == 0; }
  static uint64_t TidPayload(uint64_t e) { return e & ~kTidBit; }
};

// Bytes of key prefix stored inline for path compression; longer compressed
// paths fall back to re-checking against a stored leaf key (the "hybrid"
// scheme of the ART paper §III-E).
inline constexpr unsigned kArtMaxPrefix = 10;

struct ArtNodeHeader {
  RowexLockWord lock;          // used by the ROWEX-synchronized variant
  ArtNodeType type;
  uint8_t num_children;
  uint16_t num_children16;     // Node256 can hold 256 children
  uint32_t prefix_len;         // full compressed-path length
  uint8_t prefix[kArtMaxPrefix];

  unsigned Count() const {
    return type == ArtNodeType::kNode256 ? num_children16 : num_children;
  }
  void SetCount(unsigned n) {
    if (type == ArtNodeType::kNode256) {
      num_children16 = static_cast<uint16_t>(n);
    } else {
      num_children = static_cast<uint8_t>(n);
    }
  }
};

struct ArtNode4 {
  ArtNodeHeader header;
  uint8_t keys[4];
  uint64_t children[4];
};

struct ArtNode16 {
  ArtNodeHeader header;
  uint8_t keys[16];
  uint64_t children[16];
};

struct ArtNode48 {
  ArtNodeHeader header;
  uint8_t child_index[256];  // 0xFF = empty
  uint64_t children[48];
  static constexpr uint8_t kEmptySlot = 0xFF;
};

struct ArtNode256 {
  ArtNodeHeader header;
  uint64_t children[256];
};

inline ArtNodeHeader* ArtHeader(uint64_t e) {
  return reinterpret_cast<ArtNodeHeader*>(static_cast<uintptr_t>(e));
}

inline uint64_t ArtMakeNode(ArtNodeHeader* n) {
  return static_cast<uint64_t>(reinterpret_cast<uintptr_t>(n));
}

inline size_t ArtNodeBytes(ArtNodeType t) {
  switch (t) {
    case ArtNodeType::kNode4:
      return sizeof(ArtNode4);
    case ArtNodeType::kNode16:
      return sizeof(ArtNode16);
    case ArtNodeType::kNode48:
      return sizeof(ArtNode48);
    case ArtNodeType::kNode256:
      return sizeof(ArtNode256);
  }
  return 0;
}

inline ArtNodeHeader* ArtAllocNode(CountingAllocator& alloc, ArtNodeType t) {
  size_t bytes = ArtNodeBytes(t);
  void* mem = alloc.AllocateAligned(bytes, 8);
  std::memset(mem, 0, bytes);
  auto* h = static_cast<ArtNodeHeader*>(mem);
  new (&h->lock) RowexLockWord();
  h->type = t;
  if (t == ArtNodeType::kNode48) {
    std::memset(reinterpret_cast<ArtNode48*>(h)->child_index,
                ArtNode48::kEmptySlot, 256);
  }
  return h;
}

inline void ArtFreeNode(CountingAllocator& alloc, ArtNodeHeader* n) {
  alloc.FreeAligned(n, ArtNodeBytes(n->type), 8);
}

// --- child access -----------------------------------------------------------

// Returns the slot for byte `c`, or nullptr.
inline uint64_t* ArtFindChild(ArtNodeHeader* n, uint8_t c) {
  switch (n->type) {
    case ArtNodeType::kNode4: {
      auto* node = reinterpret_cast<ArtNode4*>(n);
      for (unsigned i = 0; i < n->num_children; ++i) {
        if (node->keys[i] == c) return &node->children[i];
      }
      return nullptr;
    }
    case ArtNodeType::kNode16: {
      auto* node = reinterpret_cast<ArtNode16*>(n);
      uint32_t matches = FindByteMatches16(node->keys, c) &
                         ((1u << n->num_children) - 1);
      if (matches == 0) return nullptr;
      return &node->children[BitScanForward32(matches)];
    }
    case ArtNodeType::kNode48: {
      auto* node = reinterpret_cast<ArtNode48*>(n);
      uint8_t idx = node->child_index[c];
      return idx == ArtNode48::kEmptySlot ? nullptr : &node->children[idx];
    }
    case ArtNodeType::kNode256: {
      auto* node = reinterpret_cast<ArtNode256*>(n);
      return node->children[c] == ArtEntry::kEmpty ? nullptr
                                                   : &node->children[c];
    }
  }
  return nullptr;
}

inline bool ArtIsFull(const ArtNodeHeader* n) {
  switch (n->type) {
    case ArtNodeType::kNode4:
      return n->num_children == 4;
    case ArtNodeType::kNode16:
      return n->num_children == 16;
    case ArtNodeType::kNode48:
      return n->num_children == 48;
    case ArtNodeType::kNode256:
      return false;
  }
  return false;
}

// Adds child `c` to a non-full node (sorted order for Node4/16).
inline void ArtAddChild(ArtNodeHeader* n, uint8_t c, uint64_t child) {
  switch (n->type) {
    case ArtNodeType::kNode4: {
      auto* node = reinterpret_cast<ArtNode4*>(n);
      unsigned i = 0;
      while (i < n->num_children && node->keys[i] < c) ++i;
      std::memmove(node->keys + i + 1, node->keys + i, n->num_children - i);
      std::memmove(node->children + i + 1, node->children + i,
                   (n->num_children - i) * sizeof(uint64_t));
      node->keys[i] = c;
      node->children[i] = child;
      ++n->num_children;
      return;
    }
    case ArtNodeType::kNode16: {
      auto* node = reinterpret_cast<ArtNode16*>(n);
      unsigned i = Popcount32(FindByteLess16(node->keys, c) &
                              ((1u << n->num_children) - 1));
      std::memmove(node->keys + i + 1, node->keys + i, n->num_children - i);
      std::memmove(node->children + i + 1, node->children + i,
                   (n->num_children - i) * sizeof(uint64_t));
      node->keys[i] = c;
      node->children[i] = child;
      ++n->num_children;
      return;
    }
    case ArtNodeType::kNode48: {
      auto* node = reinterpret_cast<ArtNode48*>(n);
      unsigned slot = n->num_children;
      node->child_index[c] = static_cast<uint8_t>(slot);
      node->children[slot] = child;
      ++n->num_children;
      return;
    }
    case ArtNodeType::kNode256: {
      auto* node = reinterpret_cast<ArtNode256*>(n);
      node->children[c] = child;
      n->num_children16++;
      return;
    }
  }
}

// Grows a full node into the next larger layout; returns the new node.
// The old node is freed.
inline ArtNodeHeader* ArtGrow(CountingAllocator& alloc, ArtNodeHeader* n) {
  switch (n->type) {
    case ArtNodeType::kNode4: {
      auto* old_node = reinterpret_cast<ArtNode4*>(n);
      auto* bigger =
          reinterpret_cast<ArtNode16*>(ArtAllocNode(alloc, ArtNodeType::kNode16));
      bigger->header.prefix_len = n->prefix_len;
      std::memcpy(bigger->header.prefix, n->prefix, kArtMaxPrefix);
      bigger->header.num_children = n->num_children;
      std::memcpy(bigger->keys, old_node->keys, 4);
      std::memcpy(bigger->children, old_node->children, 4 * sizeof(uint64_t));
      ArtFreeNode(alloc, n);
      return &bigger->header;
    }
    case ArtNodeType::kNode16: {
      auto* old_node = reinterpret_cast<ArtNode16*>(n);
      auto* bigger =
          reinterpret_cast<ArtNode48*>(ArtAllocNode(alloc, ArtNodeType::kNode48));
      bigger->header.prefix_len = n->prefix_len;
      std::memcpy(bigger->header.prefix, n->prefix, kArtMaxPrefix);
      bigger->header.num_children = n->num_children;
      for (unsigned i = 0; i < 16; ++i) {
        bigger->child_index[old_node->keys[i]] = static_cast<uint8_t>(i);
        bigger->children[i] = old_node->children[i];
      }
      ArtFreeNode(alloc, n);
      return &bigger->header;
    }
    case ArtNodeType::kNode48: {
      auto* old_node = reinterpret_cast<ArtNode48*>(n);
      auto* bigger = reinterpret_cast<ArtNode256*>(
          ArtAllocNode(alloc, ArtNodeType::kNode256));
      bigger->header.prefix_len = n->prefix_len;
      std::memcpy(bigger->header.prefix, n->prefix, kArtMaxPrefix);
      unsigned moved = 0;
      for (unsigned c = 0; c < 256; ++c) {
        uint8_t idx = old_node->child_index[c];
        if (idx != ArtNode48::kEmptySlot) {
          bigger->children[c] = old_node->children[idx];
          ++moved;
        }
      }
      bigger->header.num_children16 = static_cast<uint16_t>(moved);
      ArtFreeNode(alloc, n);
      return &bigger->header;
    }
    case ArtNodeType::kNode256:
      return n;  // never full
  }
  return n;
}

// Removes the child for byte `c`; caller guarantees presence.
inline void ArtRemoveChild(ArtNodeHeader* n, uint8_t c) {
  switch (n->type) {
    case ArtNodeType::kNode4: {
      auto* node = reinterpret_cast<ArtNode4*>(n);
      unsigned i = 0;
      while (node->keys[i] != c) ++i;
      std::memmove(node->keys + i, node->keys + i + 1,
                   n->num_children - i - 1);
      std::memmove(node->children + i, node->children + i + 1,
                   (n->num_children - i - 1) * sizeof(uint64_t));
      --n->num_children;
      return;
    }
    case ArtNodeType::kNode16: {
      auto* node = reinterpret_cast<ArtNode16*>(n);
      uint32_t matches = FindByteMatches16(node->keys, c) &
                         ((1u << n->num_children) - 1);
      unsigned i = BitScanForward32(matches);
      std::memmove(node->keys + i, node->keys + i + 1,
                   n->num_children - i - 1);
      std::memmove(node->children + i, node->children + i + 1,
                   (n->num_children - i - 1) * sizeof(uint64_t));
      --n->num_children;
      return;
    }
    case ArtNodeType::kNode48: {
      auto* node = reinterpret_cast<ArtNode48*>(n);
      uint8_t slot = node->child_index[c];
      node->child_index[c] = ArtNode48::kEmptySlot;
      // Move the last slot into the vacated one to keep slots dense.
      unsigned last = n->num_children - 1;
      if (slot != last) {
        node->children[slot] = node->children[last];
        for (unsigned b = 0; b < 256; ++b) {
          if (node->child_index[b] == last) {
            node->child_index[b] = slot;
            break;
          }
        }
      }
      node->children[last] = ArtEntry::kEmpty;
      --n->num_children;
      return;
    }
    case ArtNodeType::kNode256: {
      auto* node = reinterpret_cast<ArtNode256*>(n);
      node->children[c] = ArtEntry::kEmpty;
      n->num_children16--;
      return;
    }
  }
}

// Shrinks an under-full node into the next smaller layout (Node4 callers
// handle the 1-child collapse separately).  Returns the (possibly new) node.
inline ArtNodeHeader* ArtMaybeShrink(CountingAllocator& alloc,
                                     ArtNodeHeader* n) {
  switch (n->type) {
    case ArtNodeType::kNode4:
      return n;
    case ArtNodeType::kNode16: {
      if (n->num_children > 3) return n;
      auto* old_node = reinterpret_cast<ArtNode16*>(n);
      auto* smaller =
          reinterpret_cast<ArtNode4*>(ArtAllocNode(alloc, ArtNodeType::kNode4));
      smaller->header.prefix_len = n->prefix_len;
      std::memcpy(smaller->header.prefix, n->prefix, kArtMaxPrefix);
      smaller->header.num_children = n->num_children;
      std::memcpy(smaller->keys, old_node->keys, n->num_children);
      std::memcpy(smaller->children, old_node->children,
                  n->num_children * sizeof(uint64_t));
      ArtFreeNode(alloc, n);
      return &smaller->header;
    }
    case ArtNodeType::kNode48: {
      if (n->num_children > 12) return n;
      auto* old_node = reinterpret_cast<ArtNode48*>(n);
      auto* smaller = reinterpret_cast<ArtNode16*>(
          ArtAllocNode(alloc, ArtNodeType::kNode16));
      smaller->header.prefix_len = n->prefix_len;
      std::memcpy(smaller->header.prefix, n->prefix, kArtMaxPrefix);
      unsigned j = 0;
      for (unsigned c = 0; c < 256; ++c) {
        uint8_t idx = old_node->child_index[c];
        if (idx != ArtNode48::kEmptySlot) {
          smaller->keys[j] = static_cast<uint8_t>(c);
          smaller->children[j] = old_node->children[idx];
          ++j;
        }
      }
      smaller->header.num_children = static_cast<uint8_t>(j);
      ArtFreeNode(alloc, n);
      return &smaller->header;
    }
    case ArtNodeType::kNode256: {
      if (n->num_children16 > 40) return n;
      auto* old_node = reinterpret_cast<ArtNode256*>(n);
      auto* smaller = reinterpret_cast<ArtNode48*>(
          ArtAllocNode(alloc, ArtNodeType::kNode48));
      smaller->header.prefix_len = n->prefix_len;
      std::memcpy(smaller->header.prefix, n->prefix, kArtMaxPrefix);
      unsigned j = 0;
      for (unsigned c = 0; c < 256; ++c) {
        if (old_node->children[c] != ArtEntry::kEmpty) {
          smaller->child_index[c] = static_cast<uint8_t>(j);
          smaller->children[j] = old_node->children[c];
          ++j;
        }
      }
      smaller->header.num_children = static_cast<uint8_t>(j);
      ArtFreeNode(alloc, n);
      return &smaller->header;
    }
  }
  return n;
}

// Visits children in ascending byte order.  fn(byte, entry) returns false to
// stop; the function returns false if stopped.
template <typename Fn>
bool ArtForEachChild(ArtNodeHeader* n, Fn&& fn) {
  switch (n->type) {
    case ArtNodeType::kNode4: {
      auto* node = reinterpret_cast<ArtNode4*>(n);
      for (unsigned i = 0; i < n->num_children; ++i) {
        if (!fn(node->keys[i], node->children[i])) return false;
      }
      return true;
    }
    case ArtNodeType::kNode16: {
      auto* node = reinterpret_cast<ArtNode16*>(n);
      for (unsigned i = 0; i < n->num_children; ++i) {
        if (!fn(node->keys[i], node->children[i])) return false;
      }
      return true;
    }
    case ArtNodeType::kNode48: {
      auto* node = reinterpret_cast<ArtNode48*>(n);
      for (unsigned c = 0; c < 256; ++c) {
        uint8_t idx = node->child_index[c];
        if (idx != ArtNode48::kEmptySlot) {
          if (!fn(static_cast<uint8_t>(c), node->children[idx])) return false;
        }
      }
      return true;
    }
    case ArtNodeType::kNode256: {
      auto* node = reinterpret_cast<ArtNode256*>(n);
      for (unsigned c = 0; c < 256; ++c) {
        if (node->children[c] != ArtEntry::kEmpty) {
          if (!fn(static_cast<uint8_t>(c), node->children[c])) return false;
        }
      }
      return true;
    }
  }
  return true;
}

// First child entry with byte >= c, or kEmpty.  *out_byte receives the byte.
inline uint64_t ArtLowerBoundChild(ArtNodeHeader* n, unsigned c,
                                   unsigned* out_byte) {
  uint64_t found = ArtEntry::kEmpty;
  ArtForEachChild(n, [&](uint8_t byte, uint64_t entry) {
    if (byte >= c) {
      found = entry;
      *out_byte = byte;
      return false;
    }
    return true;
  });
  return found;
}

}  // namespace art
}  // namespace hot

#endif  // HOT_ART_ART_NODE_H_
