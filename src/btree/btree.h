// Cache-optimized in-memory B+-tree in the style of the STX B+-tree, the
// paper's comparison-based baseline ("BT", §6.1).
//
// Design parameters follow the paper: 256-byte leaf nodes with 16 slots of
// 16 bytes (8-byte key word + 8-byte tuple identifier), so the leaf fanout
// is 16.  Like the benchmarked STX configuration, keys longer than 8 bytes
// are represented by their first 8 bytes (big-endian word, so word order ==
// lexicographic order) and resolved through the tuple identifier on ties —
// this is why the paper's BT memory footprint is identical across data sets.
// Inner nodes store the same composite (word, tid) separators with 16-way
// fanout.  Leaves are chained for range scans.

#ifndef HOT_BTREE_BTREE_H_
#define HOT_BTREE_BTREE_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <functional>
#include <optional>
#include <string>

#include "common/alloc.h"
#include "common/extractors.h"
#include "common/key.h"

namespace hot {

template <typename KeyExtractor>
class BTree {
 public:
  static constexpr unsigned kLeafSlots = 16;
  static constexpr unsigned kInnerSlots = 16;  // children per inner node

  explicit BTree(KeyExtractor extractor = KeyExtractor(),
                 MemoryCounter* counter = nullptr)
      : extractor_(extractor), alloc_(counter) {}

  ~BTree() { Clear(); }

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  bool Insert(uint64_t value) {
    KeyScratch scratch;
    KeyRef key = extractor_(value, scratch);
    CompositeKey ck{KeyWord(key), value};
    if (root_ == nullptr) {
      LeafNode* leaf = NewLeaf();
      leaf->keys[0] = ck;
      leaf->header.count = 1;
      root_ = &leaf->header;
      ++size_;
      return true;
    }
    SplitInfo split;
    if (!InsertRec(root_, ck, key, &split)) return false;
    if (split.happened) {
      InnerNode* new_root = NewInner();
      new_root->keys[0] = split.separator;
      new_root->children[0] = root_;
      new_root->children[1] = split.right;
      new_root->header.count = 1;
      root_ = &new_root->header;
    }
    ++size_;
    return true;
  }

  std::optional<uint64_t> Lookup(KeyRef key) const {
    if (root_ == nullptr) return std::nullopt;
    CompositeKey probe{KeyWord(key), 0};
    NodeHeader* node = root_;
    while (!node->is_leaf) {
      InnerNode* inner = AsInner(node);
      node = inner->children[ChildIndex(inner, probe, key)];
    }
    LeafNode* leaf = AsLeaf(node);
    unsigned i = LeafLowerBound(leaf, probe, key);
    if (i < leaf->header.count && KeyEquals(leaf->keys[i], key)) {
      return leaf->keys[i].tid;
    }
    return std::nullopt;
  }

  bool Remove(KeyRef key) {
    if (root_ == nullptr) return false;
    CompositeKey probe{KeyWord(key), 0};
    bool removed = RemoveRec(root_, probe, key);
    if (!removed) return false;
    --size_;
    // Shrink the root.
    if (!root_->is_leaf && root_->count == 0) {
      InnerNode* old_root = AsInner(root_);
      root_ = old_root->children[0];
      FreeNode(&old_root->header);
    } else if (root_->is_leaf && root_->count == 0) {
      FreeNode(root_);
      root_ = nullptr;
    }
    return true;
  }

  // Visits up to `limit` values with key >= start in key order.
  template <typename Fn>
  size_t ScanFrom(KeyRef start, size_t limit, Fn&& fn) const {
    if (root_ == nullptr) return 0;
    CompositeKey probe{KeyWord(start), 0};
    NodeHeader* node = root_;
    while (!node->is_leaf) {
      InnerNode* inner = AsInner(node);
      node = inner->children[ChildIndex(inner, probe, start)];
    }
    LeafNode* leaf = AsLeaf(node);
    unsigned i = LeafLowerBound(leaf, probe, start);
    size_t seen = 0;
    while (leaf != nullptr && seen < limit) {
      for (; i < leaf->header.count && seen < limit; ++i) {
        fn(leaf->keys[i].tid);
        ++seen;
      }
      leaf = leaf->next;
      i = 0;
    }
    return seen;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Clear() {
    if (root_ != nullptr) ClearRec(root_);
    root_ = nullptr;
    size_ = 0;
  }

  MemoryCounter* counter() const { return alloc_.counter(); }

  // Height in node levels (1 = only a leaf).
  unsigned Height() const {
    unsigned h = 0;
    NodeHeader* node = root_;
    while (node != nullptr) {
      ++h;
      if (node->is_leaf) break;
      node = AsInner(node)->children[0];
    }
    return h;
  }

  // Structural audit for the testing subsystem: occupancy bounds, strict
  // composite-key ordering within and across leaves, separator bounds
  // (separator = smallest key of its right subtree, so child i holds keys
  // in [keys[i-1], keys[i]) with an inclusive lower bound), uniform leaf
  // depth, leaf prev/next chain consistency, key-word/extractor agreement,
  // and the size counter.  Quiescent-only; returns false and fills `error`
  // on the first violation.
  bool CheckStructure(std::string* error) const {
    auto fail = [&](const std::string& msg) {
      if (error != nullptr) *error = "btree: " + msg;
      return false;
    };
    if (root_ == nullptr) {
      if (size_ != 0) {
        return fail("null root but size " + std::to_string(size_));
      }
      return true;
    }
    int leaf_depth = -1;
    const LeafNode* prev_leaf = nullptr;
    size_t total = 0;
    if (!CheckRec(root_, 1, nullptr, nullptr, &leaf_depth, &prev_leaf, &total,
                  error)) {
      return false;
    }
    if (prev_leaf == nullptr || prev_leaf->next != nullptr) {
      return fail("leaf chain does not end at the rightmost leaf");
    }
    if (total != size_) {
      return fail("leaf keys " + std::to_string(total) + " != size " +
                  std::to_string(size_));
    }
    return true;
  }

 private:
  // 8-byte big-endian word of the key's first bytes: word order equals
  // lexicographic byte order on the prefix.
  static uint64_t KeyWord(KeyRef key) {
    if (key.size() >= 8) return LoadBigEndian64(key.data());
    uint8_t buf[8] = {0};
    // key.data() is null for the empty key; memcpy forbids null even with
    // size 0.
    if (key.size() > 0) std::memcpy(buf, key.data(), key.size());
    return LoadBigEndian64(buf);
  }

  struct CompositeKey {
    uint64_t word;  // first 8 key bytes, big-endian
    uint64_t tid;   // resolves the full key on word ties
  };

  struct NodeHeader {
    bool is_leaf;
    uint16_t count;  // keys in this node
  };

  struct LeafNode {
    NodeHeader header;
    LeafNode* next;
    LeafNode* prev;
    CompositeKey keys[kLeafSlots];
  };

  struct InnerNode {
    NodeHeader header;
    CompositeKey keys[kInnerSlots - 1];
    NodeHeader* children[kInnerSlots];
  };

  struct SplitInfo {
    bool happened = false;
    CompositeKey separator;
    NodeHeader* right = nullptr;
  };

  static LeafNode* AsLeaf(NodeHeader* n) {
    return reinterpret_cast<LeafNode*>(n);
  }
  static InnerNode* AsInner(NodeHeader* n) {
    return reinterpret_cast<InnerNode*>(n);
  }

  LeafNode* NewLeaf() {
    void* mem = alloc_.AllocateAligned(sizeof(LeafNode), 64);
    auto* leaf = new (mem) LeafNode();
    leaf->header.is_leaf = true;
    leaf->header.count = 0;
    leaf->next = nullptr;
    leaf->prev = nullptr;
    return leaf;
  }

  InnerNode* NewInner() {
    void* mem = alloc_.AllocateAligned(sizeof(InnerNode), 64);
    auto* inner = new (mem) InnerNode();
    inner->header.is_leaf = false;
    inner->header.count = 0;
    return inner;
  }

  void FreeNode(NodeHeader* n) {
    alloc_.FreeAligned(n, n->is_leaf ? sizeof(LeafNode) : sizeof(InnerNode),
                       64);
  }

  // Three-way comparison of a stored composite key against a search key.
  // The word decides almost always; ties load the stored key via its tid.
  int Compare(const CompositeKey& stored, KeyRef key) const {
    uint64_t kw = KeyWord(key);
    if (stored.word != kw) return stored.word < kw ? -1 : 1;
    KeyScratch scratch;
    KeyRef stored_key = extractor_(stored.tid, scratch);
    return stored_key.Compare(key);
  }

  bool KeyEquals(const CompositeKey& stored, KeyRef key) const {
    return Compare(stored, key) == 0;
  }

  // Three-way comparison of two stored composite keys: the word decides,
  // ties resolve through the extractor (full lexicographic order).
  int CompareComposite(const CompositeKey& a, const CompositeKey& b) const {
    if (a.word != b.word) return a.word < b.word ? -1 : 1;
    if (a.tid == b.tid) return 0;
    KeyScratch sa, sb;
    KeyRef ka = extractor_(a.tid, sa);
    KeyRef kb = extractor_(b.tid, sb);
    return ka.Compare(kb);
  }

  // `lo`/`hi` bound every composite key in the subtree: lo <= k < hi
  // (either may be null = unbounded).  Leaves are visited left-to-right,
  // threading `prev_leaf` to validate the chain.
  bool CheckRec(const NodeHeader* node, unsigned depth, const CompositeKey* lo,
                const CompositeKey* hi, int* leaf_depth,
                const LeafNode** prev_leaf, size_t* total,
                std::string* error) const {
    auto fail = [&](const std::string& msg) {
      if (error != nullptr) {
        *error = "btree: depth " + std::to_string(depth) + ": " + msg;
      }
      return false;
    };
    if (node->is_leaf) {
      const LeafNode* leaf =
          reinterpret_cast<const LeafNode*>(node);
      if (leaf->header.count < 1 || leaf->header.count > kLeafSlots) {
        return fail("leaf count " + std::to_string(leaf->header.count));
      }
      if (*leaf_depth < 0) {
        *leaf_depth = static_cast<int>(depth);
      } else if (*leaf_depth != static_cast<int>(depth)) {
        return fail("leaf depth " + std::to_string(depth) + " != " +
                    std::to_string(*leaf_depth));
      }
      if (leaf->prev != *prev_leaf) return fail("leaf prev link broken");
      if (*prev_leaf != nullptr && (*prev_leaf)->next != leaf) {
        return fail("leaf next link broken");
      }
      for (unsigned i = 0; i < leaf->header.count; ++i) {
        const CompositeKey& ck = leaf->keys[i];
        KeyScratch scratch;
        if (KeyWord(extractor_(ck.tid, scratch)) != ck.word) {
          return fail("stored word does not match extractor for tid " +
                      std::to_string(ck.tid));
        }
        if (i > 0 && CompareComposite(leaf->keys[i - 1], ck) >= 0) {
          return fail("leaf keys not strictly ascending at slot " +
                      std::to_string(i));
        }
      }
      if (lo != nullptr && CompareComposite(*lo, leaf->keys[0]) > 0) {
        return fail("leaf key below subtree lower bound");
      }
      if (hi != nullptr &&
          CompareComposite(leaf->keys[leaf->header.count - 1], *hi) >= 0) {
        return fail("leaf key at or above subtree upper bound");
      }
      *prev_leaf = leaf;
      *total += leaf->header.count;
      return true;
    }
    const InnerNode* inner = reinterpret_cast<const InnerNode*>(node);
    if (inner->header.count < 1 || inner->header.count > kInnerSlots - 1) {
      return fail("inner count " + std::to_string(inner->header.count));
    }
    for (unsigned i = 0; i < inner->header.count; ++i) {
      if (i > 0 &&
          CompareComposite(inner->keys[i - 1], inner->keys[i]) >= 0) {
        return fail("separators not strictly ascending at slot " +
                    std::to_string(i));
      }
      if (lo != nullptr && CompareComposite(*lo, inner->keys[i]) > 0) {
        return fail("separator below subtree lower bound");
      }
      if (hi != nullptr && CompareComposite(inner->keys[i], *hi) >= 0) {
        return fail("separator at or above subtree upper bound");
      }
    }
    for (unsigned i = 0; i <= inner->header.count; ++i) {
      if (inner->children[i] == nullptr) {
        return fail("null child " + std::to_string(i));
      }
      const CompositeKey* clo = i == 0 ? lo : &inner->keys[i - 1];
      const CompositeKey* chi = i == inner->header.count ? hi : &inner->keys[i];
      if (!CheckRec(inner->children[i], depth + 1, clo, chi, leaf_depth,
                    prev_leaf, total, error)) {
        return false;
      }
    }
    return true;
  }

  // First index i with keys[i] >= key.
  unsigned LeafLowerBound(LeafNode* leaf, const CompositeKey& probe,
                          KeyRef key) const {
    unsigned lo = 0, hi = leaf->header.count;
    while (lo < hi) {
      unsigned mid = (lo + hi) / 2;
      // Fast path on the word, slow path on ties.
      if (leaf->keys[mid].word < probe.word ||
          (leaf->keys[mid].word == probe.word &&
           Compare(leaf->keys[mid], key) < 0)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  // Child to descend into.  Separators equal the smallest key of their
  // right subtree, so a key equal to a separator routes right: upper-bound
  // semantics.
  unsigned ChildIndex(InnerNode* inner, const CompositeKey& probe,
                      KeyRef key) const {
    unsigned lo = 0, hi = inner->header.count;
    while (lo < hi) {
      unsigned mid = (lo + hi) / 2;
      if (inner->keys[mid].word < probe.word ||
          (inner->keys[mid].word == probe.word &&
           Compare(inner->keys[mid], key) <= 0)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  bool InsertRec(NodeHeader* node, const CompositeKey& ck, KeyRef key,
                 SplitInfo* split) {
    if (node->is_leaf) {
      LeafNode* leaf = AsLeaf(node);
      CompositeKey probe{ck.word, 0};
      unsigned i = LeafLowerBound(leaf, probe, key);
      if (i < leaf->header.count && KeyEquals(leaf->keys[i], key)) {
        return false;  // duplicate
      }
      if (leaf->header.count < kLeafSlots) {
        std::memmove(leaf->keys + i + 1, leaf->keys + i,
                     (leaf->header.count - i) * sizeof(CompositeKey));
        leaf->keys[i] = ck;
        ++leaf->header.count;
        return true;
      }
      // Split the leaf, then insert into the proper half.
      LeafNode* right = NewLeaf();
      unsigned mid = kLeafSlots / 2;
      right->header.count = kLeafSlots - mid;
      std::memcpy(right->keys, leaf->keys + mid,
                  right->header.count * sizeof(CompositeKey));
      leaf->header.count = mid;
      right->next = leaf->next;
      right->prev = leaf;
      if (leaf->next != nullptr) leaf->next->prev = right;
      leaf->next = right;
      split->happened = true;
      split->separator = right->keys[0];
      split->right = &right->header;
      // i == mid still belongs left: the duplicate check above guarantees
      // keys[mid] (the separator) is strictly greater than the new key.
      if (i <= mid) {
        std::memmove(leaf->keys + i + 1, leaf->keys + i,
                     (leaf->header.count - i) * sizeof(CompositeKey));
        leaf->keys[i] = ck;
        ++leaf->header.count;
      } else {
        unsigned j = i - mid;
        std::memmove(right->keys + j + 1, right->keys + j,
                     (right->header.count - j) * sizeof(CompositeKey));
        right->keys[j] = ck;
        ++right->header.count;
      }
      return true;
    }

    InnerNode* inner = AsInner(node);
    CompositeKey probe{ck.word, 0};
    unsigned c = ChildIndex(inner, probe, key);
    SplitInfo child_split;
    if (!InsertRec(inner->children[c], ck, key, &child_split)) return false;
    if (!child_split.happened) return true;

    if (inner->header.count < kInnerSlots - 1) {
      InsertSeparator(inner, c, child_split.separator, child_split.right);
      return true;
    }
    // Split this inner node: middle separator moves up.
    InnerNode* right = NewInner();
    unsigned mid = (kInnerSlots - 1) / 2;  // index of the promoted key
    CompositeKey promoted = inner->keys[mid];
    right->header.count = inner->header.count - mid - 1;
    std::memcpy(right->keys, inner->keys + mid + 1,
                right->header.count * sizeof(CompositeKey));
    std::memcpy(right->children, inner->children + mid + 1,
                (right->header.count + 1) * sizeof(NodeHeader*));
    inner->header.count = mid;
    if (c <= mid) {
      InsertSeparator(inner, c, child_split.separator, child_split.right);
    } else {
      InsertSeparator(right, c - mid - 1, child_split.separator,
                      child_split.right);
    }
    split->happened = true;
    split->separator = promoted;
    split->right = &right->header;
    return true;
  }

  void InsertSeparator(InnerNode* inner, unsigned at, const CompositeKey& sep,
                       NodeHeader* right_child) {
    std::memmove(inner->keys + at + 1, inner->keys + at,
                 (inner->header.count - at) * sizeof(CompositeKey));
    std::memmove(inner->children + at + 2, inner->children + at + 1,
                 (inner->header.count - at) * sizeof(NodeHeader*));
    inner->keys[at] = sep;
    inner->children[at + 1] = right_child;
    ++inner->header.count;
  }

  bool RemoveRec(NodeHeader* node, const CompositeKey& probe, KeyRef key) {
    if (node->is_leaf) {
      LeafNode* leaf = AsLeaf(node);
      unsigned i = LeafLowerBound(leaf, probe, key);
      if (i >= leaf->header.count || !KeyEquals(leaf->keys[i], key)) {
        return false;
      }
      std::memmove(leaf->keys + i, leaf->keys + i + 1,
                   (leaf->header.count - i - 1) * sizeof(CompositeKey));
      --leaf->header.count;
      return true;
    }
    InnerNode* inner = AsInner(node);
    unsigned c = ChildIndex(inner, probe, key);
    NodeHeader* child = inner->children[c];
    if (!RemoveRec(child, probe, key)) return false;
    // Rebalance on underflow (< half full).
    unsigned min_fill = child->is_leaf ? kLeafSlots / 4 : kInnerSlots / 4;
    if (child->count < min_fill) Rebalance(inner, c);
    return true;
  }

  void Rebalance(InnerNode* parent, unsigned c) {
    NodeHeader* child = parent->children[c];
    // Prefer merging with the left sibling; fall back to the right one.
    unsigned left_idx = c > 0 ? c - 1 : c;
    unsigned right_idx = left_idx + 1;
    if (right_idx > parent->header.count) return;  // single child: nothing
    NodeHeader* left = parent->children[left_idx];
    NodeHeader* right = parent->children[right_idx];
    if (child->is_leaf) {
      LeafNode* l = AsLeaf(left);
      LeafNode* r = AsLeaf(right);
      if (l->header.count + r->header.count <= kLeafSlots) {
        // Merge right into left.
        std::memcpy(l->keys + l->header.count, r->keys,
                    r->header.count * sizeof(CompositeKey));
        l->header.count += r->header.count;
        l->next = r->next;
        if (r->next != nullptr) r->next->prev = l;
        RemoveSeparator(parent, left_idx);
        FreeNode(&r->header);
      } else {
        // Borrow: rebalance half-and-half, update separator.
        unsigned total = l->header.count + r->header.count;
        unsigned want_left = total / 2;
        if (l->header.count > want_left) {
          unsigned moved = l->header.count - want_left;
          std::memmove(r->keys + moved, r->keys,
                       r->header.count * sizeof(CompositeKey));
          std::memcpy(r->keys, l->keys + want_left,
                      moved * sizeof(CompositeKey));
          r->header.count += moved;
          l->header.count = want_left;
        } else {
          unsigned moved = want_left - l->header.count;
          std::memcpy(l->keys + l->header.count, r->keys,
                      moved * sizeof(CompositeKey));
          std::memmove(r->keys, r->keys + moved,
                       (r->header.count - moved) * sizeof(CompositeKey));
          r->header.count -= moved;
          l->header.count = want_left;
        }
        parent->keys[left_idx] = r->keys[0];
      }
    } else {
      InnerNode* l = AsInner(left);
      InnerNode* r = AsInner(right);
      if (l->header.count + 1u + r->header.count <= kInnerSlots - 1) {
        // Merge: parent separator comes down between them.
        l->keys[l->header.count] = parent->keys[left_idx];
        std::memcpy(l->keys + l->header.count + 1, r->keys,
                    r->header.count * sizeof(CompositeKey));
        std::memcpy(l->children + l->header.count + 1, r->children,
                    (r->header.count + 1) * sizeof(NodeHeader*));
        l->header.count += 1 + r->header.count;
        RemoveSeparator(parent, left_idx);
        FreeNode(&r->header);
      } else if (l->header.count > r->header.count) {
        // Rotate one from left to right through the parent.
        std::memmove(r->keys + 1, r->keys,
                     r->header.count * sizeof(CompositeKey));
        std::memmove(r->children + 1, r->children,
                     (r->header.count + 1) * sizeof(NodeHeader*));
        r->keys[0] = parent->keys[left_idx];
        r->children[0] = l->children[l->header.count];
        ++r->header.count;
        parent->keys[left_idx] = l->keys[l->header.count - 1];
        --l->header.count;
      } else {
        // Rotate one from right to left.
        l->keys[l->header.count] = parent->keys[left_idx];
        l->children[l->header.count + 1] = r->children[0];
        ++l->header.count;
        parent->keys[left_idx] = r->keys[0];
        std::memmove(r->keys, r->keys + 1,
                     (r->header.count - 1) * sizeof(CompositeKey));
        std::memmove(r->children, r->children + 1,
                     r->header.count * sizeof(NodeHeader*));
        --r->header.count;
      }
    }
  }

  void RemoveSeparator(InnerNode* inner, unsigned at) {
    std::memmove(inner->keys + at, inner->keys + at + 1,
                 (inner->header.count - at - 1) * sizeof(CompositeKey));
    std::memmove(inner->children + at + 1, inner->children + at + 2,
                 (inner->header.count - at - 1) * sizeof(NodeHeader*));
    --inner->header.count;
  }

  void ClearRec(NodeHeader* node) {
    if (!node->is_leaf) {
      InnerNode* inner = AsInner(node);
      for (unsigned i = 0; i <= inner->header.count; ++i) {
        ClearRec(inner->children[i]);
      }
    }
    FreeNode(node);
  }

  KeyExtractor extractor_;
  mutable CountingAllocator alloc_;
  NodeHeader* root_ = nullptr;
  size_t size_ = 0;
};

}  // namespace hot

#endif  // HOT_BTREE_BTREE_H_
