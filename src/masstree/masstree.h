// Masstree-style hybrid index (Mao, Kohler, Morris, EuroSys 2012), the
// paper's trie/B-tree hybrid baseline (§6.1).
//
// Masstree is a trie with a 64-bit span whose "nodes" are B+-trees: layer L
// indexes bytes [8L, 8L+8) of the key as one big-endian 64-bit slice; keys
// sharing a full slice descend into a next-layer B+-tree.  Because all keys
// in this repository are prefix-free (fixed-width integers, or strings with
// a 0x00 terminator), a slice value is unambiguous: it maps either to one
// final key or to a set of longer keys — never both — so entries need only
// a tid/subtree tag, not per-entry key lengths.
//
// The per-layer structure is a cache-friendly B+-tree with 15 keys per node
// (as in Masstree).  Like the other indexes, values are 63-bit tuple
// identifiers resolved through a KeyExtractor, and the final lookup step
// verifies the candidate against the search key.

#ifndef HOT_MASSTREE_MASSTREE_H_
#define HOT_MASSTREE_MASSTREE_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/alloc.h"
#include "common/extractors.h"
#include "common/key.h"

namespace hot {
namespace masstree {

// Tagged value slot: MSB = tuple identifier; otherwise a pointer to the
// next-layer tree.
struct Slot {
  static constexpr uint64_t kTidBit = 1ULL << 63;
  static uint64_t MakeTid(uint64_t payload) { return payload | kTidBit; }
  static bool IsTid(uint64_t v) { return (v & kTidBit) != 0; }
  static uint64_t TidPayload(uint64_t v) { return v & ~kTidBit; }
};

// B+-tree over 64-bit slices, 15 keys per node (Masstree's fanout).
class LayerTree {
 public:
  static constexpr unsigned kSlots = 15;

  explicit LayerTree(CountingAllocator* alloc) : alloc_(alloc) {}
  ~LayerTree() { Clear(); }

  LayerTree(const LayerTree&) = delete;
  LayerTree& operator=(const LayerTree&) = delete;

  // Returns the value slot for `slice` or nullptr.
  uint64_t* Find(uint64_t slice) const {
    if (root_ == nullptr) return nullptr;
    Node* node = root_;
    while (!node->is_leaf) {
      node = node->children[UpperIndex(node, slice)];
    }
    unsigned i = LowerIndex(node, slice);
    if (i < node->count && node->keys[i] == slice) return &node->values[i];
    return nullptr;
  }

  // Inserts slice -> value; returns false (and leaves the tree unchanged)
  // if the slice exists.  *slot_out receives the value slot either way.
  bool Insert(uint64_t slice, uint64_t value, uint64_t** slot_out = nullptr) {
    if (root_ == nullptr) {
      root_ = NewNode(true);
      root_->keys[0] = slice;
      root_->values[0] = value;
      root_->count = 1;
      ++entries_;
      if (slot_out != nullptr) *slot_out = &root_->values[0];
      return true;
    }
    uint64_t up_key = 0;
    Node* up_node = nullptr;
    uint64_t* slot = nullptr;
    int r = InsertRec(root_, slice, value, &up_key, &up_node, &slot);
    if (r == 0) {
      if (slot_out != nullptr) *slot_out = slot;
      return false;
    }
    if (up_node != nullptr) {
      Node* new_root = NewNode(false);
      new_root->keys[0] = up_key;
      new_root->children[0] = root_;
      new_root->children[1] = up_node;
      new_root->count = 1;
      root_ = new_root;
      // The slot pointer stays valid: splits copy values before we return,
      // so re-find to be safe.
      slot = Find(slice);
    }
    ++entries_;
    if (slot_out != nullptr) *slot_out = slot;
    return true;
  }

  // Removes `slice`; returns the removed value.
  std::optional<uint64_t> Remove(uint64_t slice) {
    uint64_t* slot = Find(slice);
    if (slot == nullptr) return std::nullopt;
    uint64_t value = *slot;
    RemoveRec(root_, slice);
    if (!root_->is_leaf && root_->count == 0) {
      Node* old = root_;
      root_ = old->children[0];
      FreeNode(old);
    } else if (root_->is_leaf && root_->count == 0) {
      FreeNode(root_);
      root_ = nullptr;
    }
    --entries_;
    return value;
  }

  // In-order visit of (slice, value); fn returns false to stop.  Starts at
  // the first slice >= `from`.  Returns false if stopped.
  template <typename Fn>
  bool VisitFrom(uint64_t from, Fn&& fn) const {
    if (root_ == nullptr) return true;
    Node* node = root_;
    while (!node->is_leaf) node = node->children[UpperIndex(node, from)];
    unsigned i = LowerIndex(node, from);
    while (node != nullptr) {
      for (; i < node->count; ++i) {
        if (!fn(node->keys[i], node->values[i])) return false;
      }
      node = node->next;
      i = 0;
    }
    return true;
  }

  size_t entries() const { return entries_; }

  void Clear() {
    if (root_ != nullptr) {
      ClearRec(root_);
      root_ = nullptr;
    }
    entries_ = 0;
  }

  // Applies fn to every value slot (used for recursive teardown).
  template <typename Fn>
  void ForEachValue(Fn&& fn) const {
    VisitFrom(0, [&](uint64_t, uint64_t v) {
      fn(v);
      return true;
    });
  }

  // Structural audit of this layer's B+-tree: occupancy bounds, strictly
  // ascending slices, separator bounds (child i covers [keys[i-1], keys[i])
  // with an inclusive lower bound), uniform leaf depth, leaf chain, and the
  // entries counter.  Returns false and fills `error` on the first
  // violation.
  bool CheckStructure(std::string* error) const {
    auto fail = [&](const std::string& msg) {
      if (error != nullptr) *error = "layer: " + msg;
      return false;
    };
    if (root_ == nullptr) {
      if (entries_ != 0) {
        return fail("null root but entries " + std::to_string(entries_));
      }
      return true;
    }
    int leaf_depth = -1;
    const Node* prev_leaf = nullptr;
    size_t total = 0;
    if (!CheckNode(root_, 1, false, 0, false, 0, &leaf_depth, &prev_leaf,
                   &total, error)) {
      return false;
    }
    if (prev_leaf == nullptr || prev_leaf->next != nullptr) {
      return fail("leaf chain does not end at the rightmost leaf");
    }
    if (total != entries_) {
      return fail("leaf slices " + std::to_string(total) + " != entries " +
                  std::to_string(entries_));
    }
    return true;
  }

 private:
  struct Node {
    bool is_leaf;
    uint16_t count;
    Node* next;  // leaf chaining
    uint64_t keys[kSlots];
    union {
      uint64_t values[kSlots];        // leaves
      Node* children[kSlots + 1];     // inner nodes
    };
  };

  Node* NewNode(bool leaf) {
    void* mem = alloc_->AllocateAligned(sizeof(Node), 64);
    auto* n = new (mem) Node();
    n->is_leaf = leaf;
    n->count = 0;
    n->next = nullptr;
    return n;
  }

  void FreeNode(Node* n) { alloc_->FreeAligned(n, sizeof(Node), 64); }

  // First index with keys[i] >= slice.
  static unsigned LowerIndex(const Node* n, uint64_t slice) {
    unsigned lo = 0, hi = n->count;
    while (lo < hi) {
      unsigned mid = (lo + hi) / 2;
      if (n->keys[mid] < slice) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  // Child index for descent: first separator > slice routes left, equal
  // goes right (separators are copies of leaf keys).
  static unsigned UpperIndex(const Node* n, uint64_t slice) {
    unsigned lo = 0, hi = n->count;
    while (lo < hi) {
      unsigned mid = (lo + hi) / 2;
      if (n->keys[mid] <= slice) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  // `lo`/`hi` (when flagged) bound every slice in the subtree: lo <= s < hi.
  // Leaves are visited left-to-right, threading `prev_leaf` to validate the
  // chain.
  static bool CheckNode(const Node* node, unsigned depth, bool has_lo,
                        uint64_t lo, bool has_hi, uint64_t hi, int* leaf_depth,
                        const Node** prev_leaf, size_t* total,
                        std::string* error) {
    auto fail = [&](const std::string& msg) {
      if (error != nullptr) {
        *error = "layer: depth " + std::to_string(depth) + ": " + msg;
      }
      return false;
    };
    if (node->count < 1 || node->count > kSlots) {
      return fail("count " + std::to_string(node->count));
    }
    for (unsigned i = 0; i < node->count; ++i) {
      if (i > 0 && node->keys[i - 1] >= node->keys[i]) {
        return fail("slices not strictly ascending at slot " +
                    std::to_string(i));
      }
      if (has_lo && node->keys[i] < lo) {
        return fail("slice below subtree lower bound");
      }
      if (has_hi && node->keys[i] >= hi) {
        return fail("slice at or above subtree upper bound");
      }
    }
    if (node->is_leaf) {
      if (*leaf_depth < 0) {
        *leaf_depth = static_cast<int>(depth);
      } else if (*leaf_depth != static_cast<int>(depth)) {
        return fail("leaf depth " + std::to_string(depth) + " != " +
                    std::to_string(*leaf_depth));
      }
      if (*prev_leaf != nullptr && (*prev_leaf)->next != node) {
        return fail("leaf next link broken");
      }
      *prev_leaf = node;
      *total += node->count;
      return true;
    }
    for (unsigned i = 0; i <= node->count; ++i) {
      if (node->children[i] == nullptr) {
        return fail("null child " + std::to_string(i));
      }
      bool clo_has = i == 0 ? has_lo : true;
      uint64_t clo = i == 0 ? lo : node->keys[i - 1];
      bool chi_has = i == node->count ? has_hi : true;
      uint64_t chi = i == node->count ? hi : node->keys[i];
      if (!CheckNode(node->children[i], depth + 1, clo_has, clo, chi_has, chi,
                     leaf_depth, prev_leaf, total, error)) {
        return false;
      }
    }
    return true;
  }

  // Returns 0 = duplicate, 1 = inserted.  *up_node != nullptr on split.
  int InsertRec(Node* node, uint64_t slice, uint64_t value, uint64_t* up_key,
                Node** up_node, uint64_t** slot) {
    if (node->is_leaf) {
      unsigned i = LowerIndex(node, slice);
      if (i < node->count && node->keys[i] == slice) {
        *slot = &node->values[i];
        return 0;
      }
      if (node->count < kSlots) {
        std::memmove(node->keys + i + 1, node->keys + i,
                     (node->count - i) * sizeof(uint64_t));
        std::memmove(node->values + i + 1, node->values + i,
                     (node->count - i) * sizeof(uint64_t));
        node->keys[i] = slice;
        node->values[i] = value;
        ++node->count;
        *slot = &node->values[i];
        return 1;
      }
      Node* right = NewNode(true);
      unsigned mid = kSlots / 2;
      right->count = kSlots - mid;
      std::memcpy(right->keys, node->keys + mid,
                  right->count * sizeof(uint64_t));
      std::memcpy(right->values, node->values + mid,
                  right->count * sizeof(uint64_t));
      node->count = mid;
      right->next = node->next;
      node->next = right;
      *up_key = right->keys[0];
      *up_node = right;
      Node* target = slice < right->keys[0] ? node : right;
      unsigned j = LowerIndex(target, slice);
      std::memmove(target->keys + j + 1, target->keys + j,
                   (target->count - j) * sizeof(uint64_t));
      std::memmove(target->values + j + 1, target->values + j,
                   (target->count - j) * sizeof(uint64_t));
      target->keys[j] = slice;
      target->values[j] = value;
      ++target->count;
      *slot = &target->values[j];
      return 1;
    }

    unsigned c = UpperIndex(node, slice);
    uint64_t child_up_key = 0;
    Node* child_up = nullptr;
    int r = InsertRec(node->children[c], slice, value, &child_up_key,
                      &child_up, slot);
    if (r == 0 || child_up == nullptr) return r;
    if (node->count < kSlots) {
      std::memmove(node->keys + c + 1, node->keys + c,
                   (node->count - c) * sizeof(uint64_t));
      std::memmove(node->children + c + 2, node->children + c + 1,
                   (node->count - c) * sizeof(Node*));
      node->keys[c] = child_up_key;
      node->children[c + 1] = child_up;
      ++node->count;
      return 1;
    }
    // Split this inner node.
    Node* right = NewNode(false);
    unsigned mid = kSlots / 2;
    uint64_t promoted = node->keys[mid];
    right->count = node->count - mid - 1;
    std::memcpy(right->keys, node->keys + mid + 1,
                right->count * sizeof(uint64_t));
    std::memcpy(right->children, node->children + mid + 1,
                (right->count + 1) * sizeof(Node*));
    node->count = mid;
    Node* target = node;
    unsigned at = c;
    if (c > mid) {
      target = right;
      at = c - mid - 1;
    } else if (c == mid) {
      // The new child becomes right's leftmost child... handled by placing
      // the separator at the boundary: insert into left at position mid.
      target = node;
      at = c;
    }
    std::memmove(target->keys + at + 1, target->keys + at,
                 (target->count - at) * sizeof(uint64_t));
    std::memmove(target->children + at + 2, target->children + at + 1,
                 (target->count - at) * sizeof(Node*));
    target->keys[at] = child_up_key;
    target->children[at + 1] = child_up;
    ++target->count;
    *up_key = promoted;
    *up_node = right;
    return 1;
  }

  void RemoveRec(Node* node, uint64_t slice) {
    if (node->is_leaf) {
      unsigned i = LowerIndex(node, slice);
      assert(i < node->count && node->keys[i] == slice);
      std::memmove(node->keys + i, node->keys + i + 1,
                   (node->count - i - 1) * sizeof(uint64_t));
      std::memmove(node->values + i, node->values + i + 1,
                   (node->count - i - 1) * sizeof(uint64_t));
      --node->count;
      return;
    }
    unsigned c = UpperIndex(node, slice);
    Node* child = node->children[c];
    RemoveRec(child, slice);
    if (child->count >= kSlots / 4) return;
    // Rebalance child with a sibling.
    unsigned li = c > 0 ? c - 1 : c;
    if (li + 1 > node->count) return;
    Node* l = node->children[li];
    Node* r = node->children[li + 1];
    if (l->is_leaf) {
      if (l->count + r->count <= kSlots) {
        std::memcpy(l->keys + l->count, r->keys, r->count * sizeof(uint64_t));
        std::memcpy(l->values + l->count, r->values,
                    r->count * sizeof(uint64_t));
        l->count += r->count;
        l->next = r->next;
        DropSeparator(node, li);
        FreeNode(r);
      } else {
        unsigned total = l->count + r->count;
        unsigned want = total / 2;
        if (l->count > want) {
          unsigned moved = l->count - want;
          std::memmove(r->keys + moved, r->keys, r->count * sizeof(uint64_t));
          std::memmove(r->values + moved, r->values,
                       r->count * sizeof(uint64_t));
          std::memcpy(r->keys, l->keys + want, moved * sizeof(uint64_t));
          std::memcpy(r->values, l->values + want, moved * sizeof(uint64_t));
          r->count += moved;
          l->count = want;
        } else {
          unsigned moved = want - l->count;
          std::memcpy(l->keys + l->count, r->keys, moved * sizeof(uint64_t));
          std::memcpy(l->values + l->count, r->values,
                      moved * sizeof(uint64_t));
          std::memmove(r->keys, r->keys + moved,
                       (r->count - moved) * sizeof(uint64_t));
          std::memmove(r->values, r->values + moved,
                       (r->count - moved) * sizeof(uint64_t));
          r->count -= moved;
          l->count = want;
        }
        node->keys[li] = r->keys[0];
      }
    } else {
      if (l->count + 1u + r->count <= kSlots) {
        l->keys[l->count] = node->keys[li];
        std::memcpy(l->keys + l->count + 1, r->keys,
                    r->count * sizeof(uint64_t));
        std::memcpy(l->children + l->count + 1, r->children,
                    (r->count + 1) * sizeof(Node*));
        l->count += 1 + r->count;
        DropSeparator(node, li);
        FreeNode(r);
      } else if (l->count > r->count) {
        std::memmove(r->keys + 1, r->keys, r->count * sizeof(uint64_t));
        std::memmove(r->children + 1, r->children,
                     (r->count + 1) * sizeof(Node*));
        r->keys[0] = node->keys[li];
        r->children[0] = l->children[l->count];
        ++r->count;
        node->keys[li] = l->keys[l->count - 1];
        --l->count;
      } else {
        l->keys[l->count] = node->keys[li];
        l->children[l->count + 1] = r->children[0];
        ++l->count;
        node->keys[li] = r->keys[0];
        std::memmove(r->keys, r->keys + 1, (r->count - 1) * sizeof(uint64_t));
        std::memmove(r->children, r->children + 1, r->count * sizeof(Node*));
        --r->count;
      }
    }
  }

  void DropSeparator(Node* node, unsigned at) {
    std::memmove(node->keys + at, node->keys + at + 1,
                 (node->count - at - 1) * sizeof(uint64_t));
    std::memmove(node->children + at + 1, node->children + at + 2,
                 (node->count - at - 1) * sizeof(Node*));
    --node->count;
  }

  void ClearRec(Node* node) {
    if (!node->is_leaf) {
      for (unsigned i = 0; i <= node->count; ++i) ClearRec(node->children[i]);
    }
    FreeNode(node);
  }

  CountingAllocator* alloc_;
  Node* root_ = nullptr;
  size_t entries_ = 0;
};

}  // namespace masstree

template <typename KeyExtractor>
class Masstree {
 public:
  explicit Masstree(KeyExtractor extractor = KeyExtractor(),
                    MemoryCounter* counter = nullptr)
      : extractor_(extractor), alloc_(counter), root_(NewLayer()) {}

  ~Masstree() {
    Teardown(root_);
  }

  Masstree(const Masstree&) = delete;
  Masstree& operator=(const Masstree&) = delete;

  bool Insert(uint64_t value) {
    KeyScratch scratch;
    KeyRef key = extractor_(value, scratch);
    masstree::LayerTree* tree = root_;
    unsigned layer = 0;
    for (;;) {
      uint64_t slice = Slice(key, layer);
      uint64_t* slot = nullptr;
      if (tree->Insert(slice, masstree::Slot::MakeTid(value), &slot)) {
        ++size_;
        return true;
      }
      // Slice occupied.
      if (!masstree::Slot::IsTid(*slot)) {
        tree = LayerPtr(*slot);
        ++layer;
        continue;
      }
      uint64_t existing = masstree::Slot::TidPayload(*slot);
      KeyScratch existing_scratch;
      KeyRef existing_key = extractor_(existing, existing_scratch);
      if (existing_key == key) return false;  // duplicate
      // Both keys continue past this slice (prefix-free inputs): push the
      // existing tid down into a fresh next-layer tree, then retry there.
      // Keys may share several further slices; the loop handles the chain.
      masstree::LayerTree* next = NewLayer();
      uint64_t existing_next_slice = Slice(existing_key, layer + 1);
      next->Insert(existing_next_slice, masstree::Slot::MakeTid(existing));
      *slot = MakeLayer(next);
      tree = next;
      ++layer;
    }
  }

  std::optional<uint64_t> Lookup(KeyRef key) const {
    const masstree::LayerTree* tree = root_;
    unsigned layer = 0;
    for (;;) {
      uint64_t* slot = tree->Find(Slice(key, layer));
      if (slot == nullptr) return std::nullopt;
      if (masstree::Slot::IsTid(*slot)) {
        uint64_t payload = masstree::Slot::TidPayload(*slot);
        KeyScratch scratch;
        if (extractor_(payload, scratch) == key) return payload;
        return std::nullopt;
      }
      tree = LayerPtr(*slot);
      ++layer;
    }
  }

  bool Remove(KeyRef key) {
    // Track the path of (tree, slice) so emptied layers collapse.
    struct PathEntry {
      masstree::LayerTree* tree;
      uint64_t slice;
    };
    PathEntry path[32];
    unsigned depth = 0;
    masstree::LayerTree* tree = root_;
    unsigned layer = 0;
    for (;;) {
      uint64_t slice = Slice(key, layer);
      uint64_t* slot = tree->Find(slice);
      if (slot == nullptr) return false;
      path[depth++] = {tree, slice};
      if (masstree::Slot::IsTid(*slot)) {
        uint64_t payload = masstree::Slot::TidPayload(*slot);
        KeyScratch scratch;
        if (!(extractor_(payload, scratch) == key)) return false;
        tree->Remove(slice);
        --size_;
        // Collapse emptied / single-tid layers upward.
        for (unsigned d = depth - 1; d > 0; --d) {
          masstree::LayerTree* t = path[d].tree;
          if (t->entries() > 1) break;
          uint64_t* parent_slot = path[d - 1].tree->Find(path[d - 1].slice);
          assert(parent_slot != nullptr);
          if (t->entries() == 0) {
            path[d - 1].tree->Remove(path[d - 1].slice);
            DeleteLayer(t);
            // Continue: parent may now be empty too.
          } else {
            // One entry left: if it is a tid, pull it up.
            uint64_t remaining = 0;
            t->ForEachValue([&](uint64_t v) { remaining = v; });
            if (!masstree::Slot::IsTid(remaining)) break;
            *parent_slot = remaining;
            DeleteLayer(t);
            break;
          }
        }
        return true;
      }
      tree = LayerPtr(*slot);
      ++layer;
      assert(depth < 32);
    }
  }

  // Visits up to `limit` values with key >= start in key order.
  template <typename Fn>
  size_t ScanFrom(KeyRef start, size_t limit, Fn&& fn) const {
    size_t seen = 0;
    ScanLayer(root_, start, 0, false, limit, &seen, fn);
    return seen;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  MemoryCounter* counter() const { return alloc_.counter(); }

  // Structural audit: every layer's B+-tree shape, slice-path consistency
  // (each stored tid's key must reproduce every slice on the layer path
  // through the extractor), non-empty child layers, and the size counter.
  // Quiescent-only; returns false and fills `error` on the first violation.
  bool CheckStructure(std::string* error) const {
    size_t tids = 0;
    std::vector<uint64_t> path;
    if (!CheckLayerRec(root_, 0, &path, &tids, error)) return false;
    if (tids != size_) {
      if (error != nullptr) {
        *error = "masstree: " + std::to_string(tids) + " tids != size " +
                 std::to_string(size_);
      }
      return false;
    }
    return true;
  }

 private:
  static uint64_t Slice(KeyRef key, unsigned layer) {
    size_t off = static_cast<size_t>(layer) * 8;
    if (off + 8 <= key.size()) return LoadBigEndian64(key.data() + off);
    uint8_t buf[8] = {0};
    if (off < key.size()) std::memcpy(buf, key.data() + off, key.size() - off);
    return LoadBigEndian64(buf);
  }

  static masstree::LayerTree* LayerPtr(uint64_t slot) {
    return reinterpret_cast<masstree::LayerTree*>(
        static_cast<uintptr_t>(slot));
  }
  static uint64_t MakeLayer(masstree::LayerTree* tree) {
    return static_cast<uint64_t>(reinterpret_cast<uintptr_t>(tree));
  }

  masstree::LayerTree* NewLayer() {
    void* mem = alloc_.AllocateAligned(sizeof(masstree::LayerTree), 8);
    return new (mem) masstree::LayerTree(&alloc_);
  }

  void DeleteLayer(masstree::LayerTree* tree) {
    tree->~LayerTree();
    alloc_.FreeAligned(tree, sizeof(masstree::LayerTree), 8);
  }

  // `path` holds the slices leading to `tree`; single-tid non-root layers
  // are legal (removal only collapses layers along its own path), but empty
  // non-root layers are not.
  bool CheckLayerRec(const masstree::LayerTree* tree, unsigned layer,
                     std::vector<uint64_t>* path, size_t* tids,
                     std::string* error) const {
    auto fail = [&](const std::string& msg) {
      if (error != nullptr) {
        *error = "masstree: layer depth " + std::to_string(layer) + ": " + msg;
      }
      return false;
    };
    if (!tree->CheckStructure(error)) {
      if (error != nullptr) {
        *error = "masstree: layer depth " + std::to_string(layer) + ": " +
                 *error;
      }
      return false;
    }
    if (layer > 0 && tree->entries() == 0) return fail("empty non-root layer");
    bool ok = true;
    tree->VisitFrom(0, [&](uint64_t slice, uint64_t v) {
      if (masstree::Slot::IsTid(v)) {
        uint64_t payload = masstree::Slot::TidPayload(v);
        KeyScratch scratch;
        KeyRef key = extractor_(payload, scratch);
        for (unsigned d = 0; d <= layer; ++d) {
          uint64_t want = d < layer ? (*path)[d] : slice;
          if (Slice(key, d) != want) {
            ok = fail("tid " + std::to_string(payload) +
                      " key does not reproduce path slice at depth " +
                      std::to_string(d));
            return false;
          }
        }
        ++*tids;
        return true;
      }
      path->push_back(slice);
      ok = CheckLayerRec(LayerPtr(v), layer + 1, path, tids, error);
      path->pop_back();
      return ok;
    });
    return ok;
  }

  void Teardown(masstree::LayerTree* tree) {
    tree->ForEachValue([&](uint64_t v) {
      if (!masstree::Slot::IsTid(v)) Teardown(LayerPtr(v));
    });
    DeleteLayer(tree);
  }

  // `past` = this subtree is entirely >= start already.
  template <typename Fn>
  bool ScanLayer(const masstree::LayerTree* tree, KeyRef start, unsigned layer,
                 bool past, size_t limit, size_t* seen, Fn&& fn) const {
    uint64_t from = past ? 0 : Slice(start, layer);
    return tree->VisitFrom(from, [&](uint64_t slice, uint64_t v) {
      bool subtree_past = past || slice > Slice(start, layer);
      if (masstree::Slot::IsTid(v)) {
        uint64_t payload = masstree::Slot::TidPayload(v);
        if (!subtree_past) {
          KeyScratch scratch;
          if (extractor_(payload, scratch).Compare(start) < 0) return true;
        }
        fn(payload);
        return ++*seen < limit;
      }
      return ScanLayer(LayerPtr(v), start, layer + 1, subtree_past, limit,
                       seen, fn);
    });
  }

  KeyExtractor extractor_;
  mutable CountingAllocator alloc_;
  masstree::LayerTree* root_;
  size_t size_ = 0;
};

}  // namespace hot

#endif  // HOT_MASSTREE_MASSTREE_H_
