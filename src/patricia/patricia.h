// Binary Patricia trie (paper §2, Fig. 2b).
//
// A pointer-based PATRICIA tree [Morrison 1968]: inner nodes ("BiNodes" in
// the paper's terminology) carry one discriminative bit position and exactly
// two children; one-way branches are elided, so a trie over n keys has
// exactly n-1 inner nodes.  Keys are binary-comparable byte strings; leaves
// store 63-bit tuple identifiers whose keys are resolved via a KeyExtractor
// (see common/extractors.h).
//
// Role in this repository:
//   * the leaf-depth baseline "BIN" of the height experiment (Fig. 11),
//   * the structural oracle for HOT's differential tests — HOT compound
//     nodes are by definition partitions of this exact structure (§3.1).

#ifndef HOT_PATRICIA_PATRICIA_H_
#define HOT_PATRICIA_PATRICIA_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/alloc.h"
#include "common/extractors.h"
#include "common/key.h"

namespace hot {

template <typename KeyExtractor>
class PatriciaTrie {
 public:
  explicit PatriciaTrie(KeyExtractor extractor = KeyExtractor(),
                        MemoryCounter* counter = nullptr)
      : extractor_(extractor), alloc_(counter), root_(kEmpty) {}

  ~PatriciaTrie() { Clear(); }

  PatriciaTrie(const PatriciaTrie&) = delete;
  PatriciaTrie& operator=(const PatriciaTrie&) = delete;

  // Inserts `value` under the key it extracts to.  Returns false if the key
  // is already present (the stored value is left unchanged).
  bool Insert(uint64_t value) {
    assert((value >> 63) == 0 && "values are 63-bit payloads");
    KeyScratch scratch;
    KeyRef key = extractor_(value, scratch);
    if (root_ == kEmpty) {
      root_ = MakeLeaf(value);
      ++size_;
      return true;
    }
    // Blind descent to any leaf sharing the longest prefix.
    uint64_t leaf = DescendToLeaf(root_, key);
    KeyScratch existing_scratch;
    KeyRef existing = extractor_(LeafValue(leaf), existing_scratch);
    size_t p = FirstMismatchBit(key, existing);
    if (p == kNoMismatch) return false;  // duplicate key
    unsigned new_bit = key.Bit(p);
    // Second descent: find the edge where an inner node with bit `p` belongs
    // (bit positions strictly increase downward).
    uint64_t* slot = &root_;
    while (IsInner(*slot) && AsInner(*slot)->bit < p) {
      slot = &AsInner(*slot)->child[key.Bit(AsInner(*slot)->bit)];
    }
    InnerNode* node = NewInner(static_cast<uint32_t>(p));
    node->child[new_bit] = MakeLeaf(value);
    node->child[1 - new_bit] = *slot;
    *slot = MakeInnerPtr(node);
    ++size_;
    return true;
  }

  // Returns the stored value for `key`, if present.
  std::optional<uint64_t> Lookup(KeyRef key) const {
    if (root_ == kEmpty) return std::nullopt;
    uint64_t leaf = DescendToLeaf(root_, key);
    KeyScratch scratch;
    if (extractor_(LeafValue(leaf), scratch) == key) return LeafValue(leaf);
    return std::nullopt;
  }

  // Removes `key`.  Returns false if not present.
  bool Remove(KeyRef key) {
    if (root_ == kEmpty) return false;
    uint64_t* slot = &root_;
    uint64_t* parent_slot = nullptr;
    while (IsInner(*slot)) {
      parent_slot = slot;
      slot = &AsInner(*slot)->child[key.Bit(AsInner(*slot)->bit)];
    }
    KeyScratch scratch;
    if (!(extractor_(LeafValue(*slot), scratch) == key)) return false;
    --size_;
    if (parent_slot == nullptr) {
      root_ = kEmpty;
      return true;
    }
    InnerNode* parent = AsInner(*parent_slot);
    uint64_t sibling =
        (&parent->child[0] == slot) ? parent->child[1] : parent->child[0];
    *parent_slot = sibling;
    DeleteInner(parent);
    return true;
  }

  // Calls fn(value) for every stored value with key >= `start`, in key
  // order, until fn returns false or the trie is exhausted.  Returns the
  // number of values visited.
  //
  // Blind descent alone can misroute a lower bound (skipped bits!), so the
  // scan first determines the mismatch bit `p` between `start` and the
  // candidate leaf: every key in the subtree hanging off the edge that
  // covers `p` shares start's prefix up to `p`, so the whole subtree orders
  // on the single bit start[p].
  size_t ScanFrom(KeyRef start, const std::function<bool(uint64_t)>& fn) const {
    if (root_ == kEmpty) return 0;
    uint64_t leaf = DescendToLeaf(root_, start);
    KeyScratch scratch;
    KeyRef cand = extractor_(LeafValue(leaf), scratch);
    size_t p = FirstMismatchBit(start, cand);
    size_t visited = 0;
    // Walk towards the covering edge, remembering right siblings of left
    // turns: those subtrees contain exactly the successors of `start` above
    // the divergence point, nearest successor last.
    std::vector<uint64_t> pending;
    uint64_t ptr = root_;
    while (IsInner(ptr) && (p == kNoMismatch || AsInner(ptr)->bit < p)) {
      const InnerNode* node = AsInner(ptr);
      unsigned b = start.Bit(node->bit);
      if (b == 0) pending.push_back(node->child[1]);
      ptr = node->child[b];
    }
    bool cont = true;
    if (p == kNoMismatch || start.Bit(p) == 0) {
      // `start` is present or smaller than everything in this subtree.
      cont = EmitAll(ptr, fn, &visited);
    }
    while (cont && !pending.empty()) {
      uint64_t sub = pending.back();
      pending.pop_back();
      cont = EmitAll(sub, fn, &visited);
    }
    return visited;
  }

  // In-order visit of all (depth, value) pairs; depth of a leaf directly at
  // the root is 1 (matches the height definition of paper §3.1).
  void ForEachLeaf(const std::function<void(size_t depth, uint64_t value)>& fn)
      const {
    VisitRec(root_, 1, fn);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Clear() {
    ClearRec(root_);
    root_ = kEmpty;
    size_ = 0;
  }

 private:
  struct InnerNode {
    uint32_t bit;          // discriminative bit position
    uint64_t child[2];     // tagged: MSB set => leaf holding 63-bit value
  };

  static constexpr uint64_t kEmpty = 0;
  static constexpr uint64_t kLeafTag = 1ULL << 63;

  static bool IsLeaf(uint64_t ptr) { return (ptr & kLeafTag) != 0; }
  static bool IsInner(uint64_t ptr) { return ptr != kEmpty && !IsLeaf(ptr); }
  static uint64_t MakeLeaf(uint64_t value) { return value | kLeafTag; }
  static uint64_t LeafValue(uint64_t ptr) { return ptr & ~kLeafTag; }
  static InnerNode* AsInner(uint64_t ptr) {
    return reinterpret_cast<InnerNode*>(static_cast<uintptr_t>(ptr));
  }
  static uint64_t MakeInnerPtr(InnerNode* node) {
    return static_cast<uint64_t>(reinterpret_cast<uintptr_t>(node));
  }

  InnerNode* NewInner(uint32_t bit) {
    void* mem = alloc_.AllocateAligned(sizeof(InnerNode), alignof(InnerNode));
    InnerNode* node = new (mem) InnerNode();
    node->bit = bit;
    node->child[0] = kEmpty;
    node->child[1] = kEmpty;
    return node;
  }

  void DeleteInner(InnerNode* node) {
    alloc_.FreeAligned(node, sizeof(InnerNode), alignof(InnerNode));
  }

  uint64_t DescendToLeaf(uint64_t ptr, KeyRef key) const {
    while (IsInner(ptr)) {
      const InnerNode* node = AsInner(ptr);
      ptr = node->child[key.Bit(node->bit)];
    }
    return ptr;
  }

  // In-order emit of an entire subtree.  Returns false if fn stopped.
  bool EmitAll(uint64_t ptr, const std::function<bool(uint64_t)>& fn,
               size_t* visited) const {
    if (ptr == kEmpty) return true;
    if (IsLeaf(ptr)) {
      ++*visited;
      return fn(LeafValue(ptr));
    }
    const InnerNode* node = AsInner(ptr);
    return EmitAll(node->child[0], fn, visited) &&
           EmitAll(node->child[1], fn, visited);
  }

  void VisitRec(uint64_t ptr, size_t depth,
                const std::function<void(size_t, uint64_t)>& fn) const {
    if (ptr == kEmpty) return;
    if (IsLeaf(ptr)) {
      fn(depth, LeafValue(ptr));
      return;
    }
    const InnerNode* node = AsInner(ptr);
    VisitRec(node->child[0], depth + 1, fn);
    VisitRec(node->child[1], depth + 1, fn);
  }

  void ClearRec(uint64_t ptr) {
    if (!IsInner(ptr)) return;
    InnerNode* node = AsInner(ptr);
    ClearRec(node->child[0]);
    ClearRec(node->child[1]);
    DeleteInner(node);
  }

  KeyExtractor extractor_;
  CountingAllocator alloc_;
  uint64_t root_;
  size_t size_ = 0;
};

}  // namespace hot

#endif  // HOT_PATRICIA_PATRICIA_H_
