// Restart-by-rebuild recovery: snapshot + WAL tail -> sorted image
// (DESIGN.md §13).
//
// RecoverImage() turns a data directory back into the logical content of
// the index:
//
//   1. mmap + validate the installed snapshot (if any) — the base image,
//      already in ascending raw-key order;
//   2. read every WAL segment in sequence order, keeping records with
//      lsn > snapshot.last_lsn (older ones are already folded into the
//      snapshot — the fuzzy-scan protocol makes replay idempotent, see
//      below); a torn tail is legal only in the NEWEST segment, anywhere
//      else it is corruption and recovery fails loudly;
//   3. sort the tail by (key, lsn), keep the last op per key, and two-way
//      merge it over the snapshot stream: puts override, deletes drop.
//
// The result is a duplicate-free, key-sorted record vector — exactly the
// input ParallelBulkBuild wants, which is what makes restart O(image) with
// a multi-Mkeys/s constant instead of O(ops-since-genesis) replay.
//
// Fuzzy snapshots and idempotence.  The snapshot scan runs while writers
// keep writing: the server rotates the WAL first (cut C = last LSN of the
// old segment), then scans.  A write that lands during the scan is in the
// new segment (lsn > C) and may or may not have made the scanned image —
// both are fine, because replaying it is idempotent: put(k,v) over an
// image that already has (k,v) is a no-op overwrite, delete(k) over an
// image that already dropped k is a no-op.  The merge therefore never
// needs to know what the scan saw.
//
// Crash points the protocol survives (tests/recovery_test.cc and the
// crash-injection harness walk them): mid-scan (tmp file only, ignored and
// deleted), after rename but before pruning (old segments replay as stale
// lsn <= C records, skipped), mid-append (torn tail, truncated).

#ifndef HOT_PERSIST_RECOVERY_H_
#define HOT_PERSIST_RECOVERY_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/key.h"
#include "persist/snapshot.h"
#include "persist/wal.h"

namespace hot {
namespace persist {

struct RecoveredRecord {
  std::string key;  // raw wire key bytes
  uint64_t value = 0;

  KeyRef key_ref() const {
    return KeyRef(reinterpret_cast<const uint8_t*>(key.data()), key.size());
  }
};

struct RecoveryResult {
  // The merged image: unique keys, ascending raw-key order.
  std::vector<RecoveredRecord> records;

  // Where the WAL writer resumes (tail segment + truncation point + LSN).
  WalResume resume;

  uint64_t last_lsn = 0;          // highest LSN folded into `records`
  bool snapshot_loaded = false;
  bool torn_tail = false;         // newest segment ended in a torn frame
  uint64_t snapshot_records = 0;
  uint64_t wal_segments = 0;
  uint64_t wal_records_applied = 0;  // lsn > snapshot cut
  uint64_t wal_records_stale = 0;    // lsn <= snapshot cut (pre-prune crash)
};

// CRC32C over the ordered image (key bytes framed by their length, then the
// value) — the scan-parity fingerprint the recovery gate and the crash
// harness compare against the pre-crash oracle.
inline uint32_t ImageChecksum(const std::vector<RecoveredRecord>& records) {
  uint32_t state = Crc32cBegin();
  for (const RecoveredRecord& r : records) {
    uint32_t klen = static_cast<uint32_t>(r.key.size());
    state = Crc32cExtend(state, &klen, sizeof(klen));
    state = Crc32cExtend(state, r.key.data(), r.key.size());
    state = Crc32cExtend(state, &r.value, sizeof(r.value));
  }
  return Crc32cFinish(state);
}

// Rebuilds the logical image from `dir`.  Returns false (with *error) on
// real corruption — a snapshot that fails validation, or a torn/invalid
// frame anywhere but the newest segment's tail.  An empty directory is a
// valid empty image.
inline bool RecoverImage(const std::string& dir, RecoveryResult* out,
                         std::string* error) {
  *out = RecoveryResult();

  // A tmp snapshot is a crash mid-scan: garbage by protocol, remove it so
  // it can never be confused for an image.
  ::unlink(SnapshotTmpPath(dir).c_str());

  uint64_t cut = 0;  // snapshot's WAL cut; tail records must exceed it
  SnapshotReader snap;
  std::string snap_path = SnapshotPath(dir);
  struct stat st;
  if (::stat(snap_path.c_str(), &st) == 0) {
    if (!snap.Open(snap_path, error)) return false;
    cut = snap.last_lsn();
    out->snapshot_loaded = true;
    out->snapshot_records = snap.count();
    out->last_lsn = cut;
  }

  // WAL tail: op stream with lsn > cut, in append order.
  struct TailOp {
    std::string key;
    uint64_t lsn;
    uint64_t value;
    uint8_t op;
  };
  std::vector<TailOp> tail;
  auto segments = ListWalSegments(dir);
  out->wal_segments = segments.size();
  for (size_t i = 0; i < segments.size(); ++i) {
    const auto& [seq, path] = segments[i];
    WalReadResult r = ReadWalSegment(path, [&](const WalRecord& rec) {
      if (rec.lsn <= cut) {
        out->wal_records_stale++;
        return;
      }
      out->wal_records_applied++;
      tail.push_back({std::string(reinterpret_cast<const char*>(
                                      rec.key.data()),
                                  rec.key.size()),
                      rec.lsn, rec.value, rec.op});
      if (rec.lsn > out->last_lsn) out->last_lsn = rec.lsn;
    });
    if (!r.ok) {
      if (error != nullptr) *error = r.error;
      return false;
    }
    if (r.torn) {
      if (i + 1 != segments.size()) {
        if (error != nullptr) {
          *error = path + ": torn/corrupt frame in a non-tail segment";
        }
        return false;
      }
      out->torn_tail = true;
    }
    if (i + 1 == segments.size()) {
      out->resume.seq = seq;
      out->resume.valid_end = r.valid_end;
      out->resume.segment_exists = true;
    }
  }
  out->resume.next_lsn = out->last_lsn + 1;

  // Last-writer-wins per key: stable order is (key, lsn), keep the highest
  // lsn of each run.
  std::sort(tail.begin(), tail.end(), [](const TailOp& a, const TailOp& b) {
    int c = KeyRef(reinterpret_cast<const uint8_t*>(a.key.data()),
                   a.key.size())
                .Compare(KeyRef(reinterpret_cast<const uint8_t*>(b.key.data()),
                                b.key.size()));
    if (c != 0) return c < 0;
    return a.lsn < b.lsn;
  });
  std::vector<TailOp> delta;
  delta.reserve(tail.size());
  for (size_t i = 0; i < tail.size(); ++i) {
    if (i + 1 < tail.size() && tail[i].key == tail[i + 1].key) continue;
    delta.push_back(std::move(tail[i]));
  }
  tail.clear();

  // Merge snapshot stream x delta: both ascending, delta wins on ties.
  out->records.reserve(out->snapshot_records + delta.size());
  size_t di = 0;
  bool merge_ok = true;
  std::string merge_err;
  if (out->snapshot_loaded) {
    merge_ok = snap.ForEach(
        [&](KeyRef key, uint64_t value) {
          // Deltas strictly below the snapshot key first.
          while (di < delta.size()) {
            KeyRef dk(reinterpret_cast<const uint8_t*>(delta[di].key.data()),
                      delta[di].key.size());
            int c = dk.Compare(key);
            if (c > 0) break;
            if (c < 0) {
              if (delta[di].op == kWalPut) {
                out->records.push_back(
                    {std::move(delta[di].key), delta[di].value});
              }
              ++di;
              continue;
            }
            // Same key: the delta supersedes the snapshot record.
            if (delta[di].op == kWalPut) {
              out->records.push_back(
                  {std::move(delta[di].key), delta[di].value});
            }
            ++di;
            return;  // snapshot record consumed either way
          }
          out->records.push_back(
              {std::string(reinterpret_cast<const char*>(key.data()),
                           key.size()),
               value});
        },
        &merge_err);
  }
  if (!merge_ok) {
    if (error != nullptr) *error = merge_err;
    return false;
  }
  for (; di < delta.size(); ++di) {  // deltas above the whole snapshot
    if (delta[di].op == kWalPut) {
      out->records.push_back({std::move(delta[di].key), delta[di].value});
    }
  }
  return true;
}

}  // namespace persist
}  // namespace hot

#endif  // HOT_PERSIST_RECOVERY_H_
