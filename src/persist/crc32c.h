// CRC32C (Castagnoli, polynomial 0x1EDC6F41) for the persistence layer's
// frame checksums (persist/wal.h, persist/snapshot.h).
//
// Castagnoli rather than the zlib CRC because x86 carries it in hardware:
// SSE4.2's CRC32 instruction folds 8 bytes per issue, so checksumming a
// WAL frame costs a fraction of the write() that follows it.  The scalar
// twin (slice-by-1 table) produces bit-identical results and is what runs
// under -DHOT_FORCE_SCALAR, mirroring the repo-wide intrinsic gating in
// common/bits.h / common/simd.h.
//
// The CRC is stored post-conditioned (standard ~crc finalization), seeded
// with 0xFFFFFFFF — the same convention as iSCSI/RocksDB, so the classic
// check vector holds: Crc32c("123456789") == 0xE3069283.

#ifndef HOT_PERSIST_CRC32C_H_
#define HOT_PERSIST_CRC32C_H_

#include <cstddef>
#include <cstdint>

#if defined(__SSE4_2__) && !defined(HOT_FORCE_SCALAR)
#include <nmmintrin.h>
#define HOT_CRC32C_HW 1
#else
#define HOT_CRC32C_HW 0
#endif

namespace hot {
namespace persist {

namespace detail {

// Byte-at-a-time table for the scalar twin (and the HW path's alignment
// head/tail).  Generated once, thread-safely, on first use.
inline const uint32_t* Crc32cTable() {
  static const auto table = [] {
    struct Table {
      uint32_t t[256];
    } tbl;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ (0x82F63B78u & (0u - (crc & 1u)));
      }
      tbl.t[i] = crc;
    }
    return tbl;
  }();
  return table.t;
}

inline uint32_t ExtendScalar(uint32_t state, const uint8_t* data, size_t n) {
  const uint32_t* table = Crc32cTable();
  for (size_t i = 0; i < n; ++i) {
    state = (state >> 8) ^ table[(state ^ data[i]) & 0xFFu];
  }
  return state;
}

}  // namespace detail

// Extends a raw (un-finalized) CRC state over `n` bytes.  Callers wanting a
// plain checksum use Crc32c() below; the streaming form exists so block
// writers can checksum scatter/gather without concatenating.
inline uint32_t Crc32cExtend(uint32_t state, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
#if HOT_CRC32C_HW
  // Head: bytes up to 8-byte alignment.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7u) != 0) {
    state = _mm_crc32_u8(state, *p++);
    --n;
  }
  while (n >= 8) {
    uint64_t word;
    __builtin_memcpy(&word, p, 8);
    state = static_cast<uint32_t>(
        _mm_crc32_u64(static_cast<uint64_t>(state), word));
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    state = _mm_crc32_u8(state, *p++);
    --n;
  }
  return state;
#else
  return detail::ExtendScalar(state, p, n);
#endif
}

// One-shot finalized CRC32C of a buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return ~Crc32cExtend(0xFFFFFFFFu, data, n);
}

// Streaming convenience: begin/extend/finish triple for block writers.
inline uint32_t Crc32cBegin() { return 0xFFFFFFFFu; }
inline uint32_t Crc32cFinish(uint32_t state) { return ~state; }

}  // namespace persist
}  // namespace hot

#endif  // HOT_PERSIST_CRC32C_H_
