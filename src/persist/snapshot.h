// File-mapped, CRC-framed snapshot of the served key/value image
// (DESIGN.md §13).
//
// A snapshot is the ordered content of the index at (fuzzily) one point in
// time: raw wire keys and their u64 values, in ascending raw-key order —
// which equals escaped-key order, because the memcomparable escape in
// net/record_store.h preserves lexicographic order.  Together with
// `last_lsn` (the WAL cut the snapshot is anchored to) it reconstructs the
// index: mmap the file, replay WAL records with lsn > last_lsn on top, and
// bulk-build the merged image (persist/recovery.h).
//
// On-disk layout (all integers little-endian):
//
//   header (48 bytes)
//     u64 magic "HOTSNAP1" | u32 version | u32 reserved
//     u64 count | u64 last_lsn | u64 data_bytes | u32 reserved | u32 crc
//     (crc = CRC32C of the preceding 44 bytes)
//   block*      (count records split into ~256 KiB blocks; a record never
//                spans blocks, so a reader can stream block-at-a-time)
//     u32 payload_len | u32 crc32c(payload) | payload
//   payload
//     repeat { u32 klen | klen key bytes | u64 value }
//
// Atomicity: the writer streams into `<path>.tmp`, seeks back to stamp the
// header (count/data_bytes are only known at the end — the source scan is
// fuzzy under concurrent writers), fdatasyncs, THEN renames into place and
// fsyncs the directory.  A crash mid-write leaves only a tmp file that
// recovery ignores and deletes; `<path>` is always either absent or a
// complete, CRC-verifiable image.  Corruption in an installed snapshot
// (flipped bit, truncation) fails header or block CRC validation and is
// reported as an error — unlike a torn WAL tail it can never be silently
// skipped, because the snapshot is the base image, not a replayable tail.
//
// The reader maps the file read-only (MAP_PRIVATE) and walks it
// sequentially; recovery of multi-million-key images is bounded by page-in
// bandwidth, not parse cost.

#ifndef HOT_PERSIST_SNAPSHOT_H_
#define HOT_PERSIST_SNAPSHOT_H_

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/key.h"
#include "persist/crc32c.h"
#include "persist/wal.h"  // detail::PutLE*/GetLE*/WriteAll/FsyncDir

namespace hot {
namespace persist {

inline constexpr uint64_t kSnapshotMagic = 0x3150414E53544F48ull;  // HOTSNAP1
inline constexpr uint32_t kSnapshotVersion = 1;
inline constexpr size_t kSnapshotHeaderBytes = 48;
inline constexpr size_t kSnapshotBlockTarget = 256u * 1024;
inline constexpr uint32_t kMaxSnapshotBlock = 4u << 20;

inline std::string SnapshotPath(const std::string& dir) {
  return dir + "/snapshot.snap";
}
inline std::string SnapshotTmpPath(const std::string& dir) {
  return dir + "/snapshot.snap.tmp";
}

class SnapshotWriter {
 public:
  SnapshotWriter() = default;
  ~SnapshotWriter() { Abort(); }
  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  // Opens `<final_path>.tmp` for streaming.  `final_path` is installed by
  // Finish().
  bool Open(const std::string& final_path, std::string* error) {
    final_path_ = final_path;
    tmp_path_ = final_path + ".tmp";
    fd_ = ::open(tmp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                 0644);
    if (fd_ < 0) return Fail(error, tmp_path_ + ": create");
    // Header placeholder; stamped by Finish once count is known.
    std::vector<uint8_t> zeros(kSnapshotHeaderBytes, 0);
    if (!detail::WriteAll(fd_, zeros.data(), zeros.size())) {
      return Fail(error, tmp_path_ + ": header reserve");
    }
    data_bytes_ = 0;
    count_ = 0;
    block_.clear();
    have_last_key_ = false;
    return true;
  }

  // Appends one record.  Keys MUST arrive in strictly ascending byte order
  // (the reader and the recovery merge both rely on sortedness); a
  // violation poisons the writer and Finish() fails.
  bool Add(KeyRef key, uint64_t value) {
    if (fd_ < 0 || error_) return false;
    if (have_last_key_ &&
        KeyRef(last_key_.data(), last_key_.size()).Compare(key) >= 0) {
      error_ = true;
      error_text_ = "snapshot keys not strictly ascending";
      return false;
    }
    last_key_.assign(key.data(), key.data() + key.size());
    have_last_key_ = true;
    detail::PutLE32(&block_, static_cast<uint32_t>(key.size()));
    block_.insert(block_.end(), key.data(), key.data() + key.size());
    detail::PutLE64(&block_, value);
    ++count_;
    if (block_.size() >= kSnapshotBlockTarget) return FlushBlock();
    return true;
  }

  // Seals the image: flushes the last block, stamps the header, fdatasyncs,
  // renames the tmp file over `final_path`, and fsyncs the directory.
  bool Finish(uint64_t last_lsn, std::string* error) {
    if (fd_ < 0) return Fail(error, "snapshot writer not open");
    if (error_ || (!block_.empty() && !FlushBlock())) {
      if (error != nullptr) *error = error_text_;
      Abort();
      return false;
    }
    std::vector<uint8_t> header;
    detail::PutLE64(&header, kSnapshotMagic);
    detail::PutLE32(&header, kSnapshotVersion);
    detail::PutLE32(&header, 0);
    detail::PutLE64(&header, count_);
    detail::PutLE64(&header, last_lsn);
    detail::PutLE64(&header, data_bytes_);
    detail::PutLE32(&header, 0);
    detail::PutLE32(&header, Crc32c(header.data(), header.size()));
    if (::pwrite(fd_, header.data(), header.size(), 0) !=
        static_cast<ssize_t>(header.size())) {
      bool r = Fail(error, tmp_path_ + ": header write");
      Abort();
      return r;
    }
    if (::fdatasync(fd_) != 0) {
      bool r = Fail(error, tmp_path_ + ": fsync");
      Abort();
      return r;
    }
    ::close(fd_);
    fd_ = -1;
    if (::rename(tmp_path_.c_str(), final_path_.c_str()) != 0) {
      bool r = Fail(error, tmp_path_ + ": rename");
      ::unlink(tmp_path_.c_str());
      return r;
    }
    size_t slash = final_path_.rfind('/');
    detail::FsyncDir(slash == std::string::npos
                         ? "."
                         : final_path_.substr(0, slash));
    return true;
  }

  // Abandons the tmp file (crash simulation in tests; destructor cleanup).
  void Abort() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
      ::unlink(tmp_path_.c_str());
    }
  }

  uint64_t count() const { return count_; }

 private:
  bool Fail(std::string* error, const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    return false;
  }

  bool FlushBlock() {
    std::vector<uint8_t> framed;
    framed.reserve(block_.size() + 8);
    detail::PutLE32(&framed, static_cast<uint32_t>(block_.size()));
    detail::PutLE32(&framed, Crc32c(block_.data(), block_.size()));
    framed.insert(framed.end(), block_.begin(), block_.end());
    if (!detail::WriteAll(fd_, framed.data(), framed.size())) {
      error_ = true;
      error_text_ = tmp_path_ + ": block write: " + std::strerror(errno);
      return false;
    }
    data_bytes_ += framed.size();
    block_.clear();
    return true;
  }

  std::string final_path_, tmp_path_;
  int fd_ = -1;
  std::vector<uint8_t> block_;
  std::vector<uint8_t> last_key_;
  bool have_last_key_ = false;
  uint64_t count_ = 0;
  uint64_t data_bytes_ = 0;
  bool error_ = false;
  std::string error_text_;
};

class SnapshotReader {
 public:
  SnapshotReader() = default;
  ~SnapshotReader() { Close(); }
  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  // Maps the file and validates the header.  Block payloads are validated
  // lazily by ForEach (so Open on a multi-GB image is O(1)).
  bool Open(const std::string& path, std::string* error) {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return Fail(error, path + ": open");
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return Fail(error, path + ": fstat");
    }
    size_ = static_cast<size_t>(st.st_size);
    if (size_ < kSnapshotHeaderBytes) {
      ::close(fd);
      return Set(error, path + ": shorter than the snapshot header");
    }
    map_ = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map_ == MAP_FAILED) {
      map_ = nullptr;
      return Fail(error, path + ": mmap");
    }
    ::madvise(map_, size_, MADV_SEQUENTIAL);
    const uint8_t* h = data();
    if (detail::GetLE64(h) != kSnapshotMagic) {
      return Set(error, path + ": bad magic (not a snapshot)");
    }
    if (detail::GetLE32(h + 8) != kSnapshotVersion) {
      return Set(error, path + ": unsupported snapshot version");
    }
    if (detail::GetLE32(h + 44) != Crc32c(h, 44)) {
      return Set(error, path + ": header CRC mismatch");
    }
    count_ = detail::GetLE64(h + 16);
    last_lsn_ = detail::GetLE64(h + 24);
    data_bytes_ = detail::GetLE64(h + 32);
    if (kSnapshotHeaderBytes + data_bytes_ != size_) {
      return Set(error, path + ": size disagrees with header (truncated?)");
    }
    path_ = path;
    return true;
  }

  // Walks every record in stored (ascending-key) order, validating each
  // block CRC before touching its payload.  Returns false (with *error) on
  // any corruption; records already delivered were from valid blocks.
  template <typename Fn>
  bool ForEach(Fn&& fn, std::string* error) const {
    const uint8_t* p = data() + kSnapshotHeaderBytes;
    const uint8_t* end = data() + size_;
    uint64_t seen = 0;
    while (p < end) {
      if (end - p < 8) return Set(error, path_ + ": truncated block header");
      uint32_t len = detail::GetLE32(p);
      uint32_t want = detail::GetLE32(p + 4);
      if (len == 0 || len > kMaxSnapshotBlock ||
          static_cast<size_t>(end - p) < 8u + len) {
        return Set(error, path_ + ": invalid block length");
      }
      const uint8_t* payload = p + 8;
      if (Crc32c(payload, len) != want) {
        return Set(error, path_ + ": block CRC mismatch");
      }
      const uint8_t* q = payload;
      const uint8_t* qend = payload + len;
      while (q < qend) {
        if (qend - q < 4) return Set(error, path_ + ": truncated record");
        uint32_t klen = detail::GetLE32(q);
        if (static_cast<size_t>(qend - q) < 4u + klen + 8u) {
          return Set(error, path_ + ": record overruns its block");
        }
        fn(KeyRef(q + 4, klen), detail::GetLE64(q + 4 + klen));
        ++seen;
        q += 4 + klen + 8;
      }
      p += 8 + len;
    }
    if (seen != count_) {
      return Set(error, path_ + ": record count disagrees with header");
    }
    return true;
  }

  uint64_t count() const { return count_; }
  uint64_t last_lsn() const { return last_lsn_; }

  void Close() {
    if (map_ != nullptr) {
      ::munmap(map_, size_);
      map_ = nullptr;
    }
  }

 private:
  static bool Set(std::string* error, const std::string& text) {
    if (error != nullptr) *error = text;
    return false;
  }
  bool Fail(std::string* error, const std::string& what) {
    return Set(error, what + ": " + std::strerror(errno));
  }
  const uint8_t* data() const { return static_cast<const uint8_t*>(map_); }

  std::string path_;
  void* map_ = nullptr;
  size_t size_ = 0;
  uint64_t count_ = 0;
  uint64_t last_lsn_ = 0;
  uint64_t data_bytes_ = 0;
};

}  // namespace persist
}  // namespace hot

#endif  // HOT_PERSIST_SNAPSHOT_H_
