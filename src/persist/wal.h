// Group-committed write-ahead log with CRC-framed records and a
// torn-tail-tolerant reader (DESIGN.md §13).
//
// The WAL is the durability half of the persistence subsystem: every
// acknowledged PUT/DELETE is appended as one length+CRC32C frame before the
// reply leaves the server, and recovery replays the tail on top of the last
// snapshot.  Recovery-by-rebuild (snapshot + tail -> ParallelBulkBuild)
// keeps the log logical — raw wire key + value, nothing about nodes — so
// the index layout can change without invalidating a byte on disk.
//
// On-disk layout (all integers little-endian):
//
//   segment file  wal-<seq 8 digits>.log
//     u64 magic "HOTWAL01" | u32 version | u32 crc32c(first 12 bytes)
//     frame*
//   frame
//     u32 body_len | u32 crc32c(body) | body
//   body
//     u64 lsn | u8 op (1=put 2=delete) | u32 klen | klen key bytes
//     | u64 value          (put only)
//
// Torn-tail tolerance: a crash can leave a partially written final frame
// (short header, short body, or a body that fails its CRC).  ReadWalSegment
// stops at the FIRST invalid frame and reports the byte offset of the last
// valid one; recovery accepts a torn tail only in the newest segment
// (anything earlier is real corruption) and the writer truncates the tail
// before appending again.  A frame is either wholly recovered or not at all
// — there is no half-applied record.
//
// Group commit: Append() encodes into an in-memory buffer under a mutex
// and assigns the LSN; Commit(lsn) — the sync-durability ack gate — blocks
// until durable_lsn >= lsn.  The first committer becomes the flush leader:
// it swaps the buffer out, writes, fdatasyncs ONCE, and publishes the new
// durable LSN; every waiter whose LSN the batch covered returns without
// issuing its own fsync.  N concurrent writers therefore cost ~1 fsync per
// batch, not per write (stats record the amortization).  Durability::kAsync
// moves the write+fsync to a background flusher (bounded-loss window =
// flush interval); kNone never fsyncs (the OS page cache still absorbs
// write()s, so a process crash — not an OS crash — loses nothing).

#ifndef HOT_PERSIST_WAL_H_
#define HOT_PERSIST_WAL_H_

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/key.h"
#include "persist/crc32c.h"

namespace hot {
namespace persist {

// Durability of the acknowledgement: what a client may assume about an
// acked write if the server dies immediately after replying.
enum class Durability : uint8_t {
  kNone,   // buffered write(); survives process death, not OS death
  kAsync,  // background fdatasync every flush interval (bounded loss)
  kSync,   // group-committed fdatasync before the ack (zero loss)
};

inline const char* DurabilityName(Durability d) {
  switch (d) {
    case Durability::kNone: return "none";
    case Durability::kAsync: return "async";
    case Durability::kSync: return "sync";
  }
  return "?";
}

inline bool DurabilityFromName(const std::string& name, Durability* out) {
  if (name == "none") { *out = Durability::kNone; return true; }
  if (name == "async") { *out = Durability::kAsync; return true; }
  if (name == "sync") { *out = Durability::kSync; return true; }
  return false;
}

enum WalOpKind : uint8_t {
  kWalPut = 1,
  kWalDelete = 2,
};

inline constexpr uint64_t kWalMagic = 0x31304C4157544F48ull;  // "HOTWAL01"
inline constexpr uint32_t kWalVersion = 1;
inline constexpr size_t kWalFileHeaderBytes = 16;
inline constexpr size_t kWalFrameHeaderBytes = 8;
// Largest legal body: u64 lsn + op + klen + 64 KiB key + u64 value, rounded
// way up.  Anything larger in a length prefix is corruption, not data.
inline constexpr uint32_t kMaxWalBody = 1u << 20;

namespace detail {

inline void PutLE32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

inline void PutLE64(std::vector<uint8_t>* out, uint64_t v) {
  PutLE32(out, static_cast<uint32_t>(v));
  PutLE32(out, static_cast<uint32_t>(v >> 32));
}

inline uint32_t GetLE32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

inline uint64_t GetLE64(const uint8_t* p) {
  return static_cast<uint64_t>(GetLE32(p)) |
         (static_cast<uint64_t>(GetLE32(p + 4)) << 32);
}

inline bool WriteAll(int fd, const uint8_t* data, size_t n) {
  while (n > 0) {
    ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += static_cast<size_t>(w);
    n -= static_cast<size_t>(w);
  }
  return true;
}

// fsync the directory entry so a freshly created/renamed file survives a
// power cut.  Best-effort: some filesystems reject O_DIRECTORY fsync.
inline void FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd >= 0) {
    (void)::fsync(fd);
    ::close(fd);
  }
}

}  // namespace detail

// --- segment naming / discovery ----------------------------------------------

inline std::string WalSegmentName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%08llu.log",
                static_cast<unsigned long long>(seq));
  return buf;
}

// Parses "wal-<digits>.log"; returns false for anything else.
inline bool ParseWalSegmentName(const std::string& name, uint64_t* seq) {
  if (name.size() < 13 || name.compare(0, 4, "wal-") != 0 ||
      name.compare(name.size() - 4, 4, ".log") != 0) {
    return false;
  }
  uint64_t s = 0;
  for (size_t i = 4; i < name.size() - 4; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    s = s * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *seq = s;
  return true;
}

// All WAL segments in `dir`, sorted by ascending sequence number.
inline std::vector<std::pair<uint64_t, std::string>> ListWalSegments(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (dirent* e = ::readdir(d)) {
    uint64_t seq;
    if (ParseWalSegmentName(e->d_name, &seq)) {
      out.emplace_back(seq, dir + "/" + e->d_name);
    }
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

// --- reader ------------------------------------------------------------------

struct WalRecord {
  uint64_t lsn = 0;
  uint8_t op = 0;  // kWalPut / kWalDelete
  KeyRef key;      // borrows the reader's buffer; copy to retain
  uint64_t value = 0;
};

struct WalReadResult {
  bool ok = false;          // file readable and header valid
  bool torn = false;        // stopped at an invalid frame before EOF-clean
  uint64_t frames = 0;      // valid frames delivered
  uint64_t last_lsn = 0;    // highest LSN delivered
  uint64_t valid_end = 0;   // byte offset just past the last valid frame
  std::string error;        // set when !ok
};

// Reads every valid frame of one segment in order, stopping cleanly at the
// first invalid one (truncated header/body, hostile length, CRC mismatch).
// The key in each delivered record borrows the read buffer — copy it out if
// it must outlive the callback.
template <typename Fn>
WalReadResult ReadWalSegment(const std::string& path, Fn&& fn) {
  WalReadResult r;
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    r.error = path + ": open: " + std::strerror(errno);
    return r;
  }
  std::vector<uint8_t> data;
  {
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      r.error = path + ": fstat: " + std::strerror(errno);
      ::close(fd);
      return r;
    }
    data.resize(static_cast<size_t>(st.st_size));
    size_t off = 0;
    while (off < data.size()) {
      ssize_t n = ::pread(fd, data.data() + off, data.size() - off,
                          static_cast<off_t>(off));
      if (n < 0) {
        if (errno == EINTR) continue;
        r.error = path + ": read: " + std::strerror(errno);
        ::close(fd);
        return r;
      }
      if (n == 0) break;
      off += static_cast<size_t>(n);
    }
    data.resize(off);
  }
  ::close(fd);

  // File header: a file too short for it, or with the wrong magic/CRC, is
  // not a WAL segment at all — that is an error, not a torn tail.
  if (data.size() < kWalFileHeaderBytes) {
    r.error = path + ": shorter than the segment header";
    return r;
  }
  if (detail::GetLE64(data.data()) != kWalMagic) {
    r.error = path + ": bad magic (not a WAL segment)";
    return r;
  }
  if (detail::GetLE32(data.data() + 8) != kWalVersion) {
    r.error = path + ": unsupported WAL version";
    return r;
  }
  if (detail::GetLE32(data.data() + 12) != Crc32c(data.data(), 12)) {
    r.error = path + ": segment header CRC mismatch";
    return r;
  }
  r.ok = true;
  r.valid_end = kWalFileHeaderBytes;

  size_t off = kWalFileHeaderBytes;
  while (true) {
    if (off + kWalFrameHeaderBytes > data.size()) {
      r.torn = off != data.size();
      break;
    }
    uint32_t body_len = detail::GetLE32(data.data() + off);
    uint32_t want_crc = detail::GetLE32(data.data() + off + 4);
    if (body_len < 13 || body_len > kMaxWalBody ||
        off + kWalFrameHeaderBytes + body_len > data.size()) {
      r.torn = true;  // hostile length or truncated body
      break;
    }
    const uint8_t* body = data.data() + off + kWalFrameHeaderBytes;
    if (Crc32c(body, body_len) != want_crc) {
      r.torn = true;
      break;
    }
    // Body: u64 lsn | u8 op | u32 klen | key | [u64 value].
    WalRecord rec;
    rec.lsn = detail::GetLE64(body);
    rec.op = body[8];
    uint32_t klen = detail::GetLE32(body + 9);
    size_t expect = 13u + klen + (rec.op == kWalPut ? 8u : 0u);
    if ((rec.op != kWalPut && rec.op != kWalDelete) || expect != body_len) {
      r.torn = true;  // a CRC-valid frame with an impossible body shape
      break;
    }
    rec.key = KeyRef(body + 13, klen);
    if (rec.op == kWalPut) rec.value = detail::GetLE64(body + 13 + klen);
    fn(static_cast<const WalRecord&>(rec));
    ++r.frames;
    r.last_lsn = rec.lsn;
    off += kWalFrameHeaderBytes + body_len;
    r.valid_end = off;
  }
  return r;
}

// --- writer ------------------------------------------------------------------

// Where the writer resumes after recovery (persist/recovery.h fills it in).
struct WalResume {
  uint64_t seq = 1;          // segment to continue (or create)
  uint64_t valid_end = 0;    // truncate the existing segment here first
  uint64_t next_lsn = 1;     // first LSN to hand out
  bool segment_exists = false;
};

// Quiescent-exact, concurrently approximate counters (same contract as
// net::ServerStats); surfaced through KvServer stats and kv_server's
// periodic report — the fsync amortization of group commit is
// committed_ops / fsyncs.
struct WalStats {
  uint64_t appends = 0;
  uint64_t append_bytes = 0;
  uint64_t writes = 0;          // write() batches issued
  uint64_t fsyncs = 0;
  uint64_t sync_commits = 0;    // Commit() calls that had to wait or lead
  uint64_t group_committed = 0; // appends made durable by a leader's fsync
  uint64_t rotations = 0;
  uint64_t segments_pruned = 0;
};

class Wal {
 public:
  struct Options {
    Durability durability = Durability::kAsync;
    unsigned flush_interval_ms = 50;     // async background fsync cadence
    size_t write_buffer_bytes = 1u << 18;  // inline write-out threshold
  };

  Wal() = default;
  ~Wal() { Close(); }
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Opens (creating the directory entry if needed) the resume segment,
  // truncating any torn tail first, and starts the background flusher.
  bool Open(const std::string& dir, const WalResume& resume, Options options,
            std::string* error) {
    dir_ = dir;
    options_ = options;
    seq_ = resume.seq;
    next_lsn_ = resume.next_lsn;
    std::string path = dir_ + "/" + WalSegmentName(seq_);
    if (resume.segment_exists) {
      fd_ = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
      if (fd_ < 0) return Fail(error, path + ": open");
      uint64_t end = resume.valid_end < kWalFileHeaderBytes
                         ? kWalFileHeaderBytes
                         : resume.valid_end;
      if (::ftruncate(fd_, static_cast<off_t>(end)) != 0) {
        return Fail(error, path + ": ftruncate");
      }
      if (::lseek(fd_, 0, SEEK_END) < 0) return Fail(error, path + ": lseek");
      segment_bytes_ = end;
    } else {
      if (!CreateSegment(path, error)) return false;
    }
    running_.store(true, std::memory_order_release);
    if (options_.durability != Durability::kSync ||
        options_.flush_interval_ms > 0) {
      flusher_ = std::thread([this] { FlusherLoop(); });
    }
    return true;
  }

  // Appends one logical op and returns its LSN.  Thread-safe.  The record
  // is buffered; durability is Commit()'s / the flusher's job.  When the
  // buffer passes the write-out threshold the appender itself becomes the
  // (non-fsync) flush leader so memory stays bounded.
  uint64_t Append(uint8_t op, KeyRef key, uint64_t value) {
    std::unique_lock<std::mutex> lk(mu_);
    uint64_t lsn = next_lsn_++;
    size_t before = pending_.size();
    detail::PutLE32(&pending_, 0);  // body_len placeholder
    detail::PutLE32(&pending_, 0);  // crc placeholder
    size_t body_at = pending_.size();
    detail::PutLE64(&pending_, lsn);
    pending_.push_back(op);
    detail::PutLE32(&pending_, static_cast<uint32_t>(key.size()));
    pending_.insert(pending_.end(), key.data(), key.data() + key.size());
    if (op == kWalPut) detail::PutLE64(&pending_, value);
    uint32_t body_len = static_cast<uint32_t>(pending_.size() - body_at);
    uint32_t crc = Crc32c(pending_.data() + body_at, body_len);
    for (int b = 0; b < 4; ++b) {
      pending_[before + b] = static_cast<uint8_t>(body_len >> (8 * b));
      pending_[before + 4 + b] = static_cast<uint8_t>(crc >> (8 * b));
    }
    last_appended_lsn_ = lsn;
    stats_.appends++;
    stats_.append_bytes += pending_.size() - before;
    if (pending_.size() >= options_.write_buffer_bytes && !flushing_) {
      // Threshold write-out only when no leader flush is in flight:
      // FlushLocked requires a single leader, and an in-flight leader
      // already swapped the previous buffer out — whoever crosses the
      // threshold next (or the next Commit / flusher tick) drains this
      // one, so the skip leaves memory bounded by one flush's backlog.
      FlushLocked(&lk, /*sync=*/false);
    }
    return lsn;
  }

  // Sync-durability ack gate: returns once every record up to `lsn` is on
  // disk.  First waiter in becomes the group-commit leader.  Under kNone /
  // kAsync this is a no-op (the ack contract is weaker by configuration).
  bool Commit(uint64_t lsn, std::string* error) {
    if (options_.durability != Durability::kSync) return true;
    std::unique_lock<std::mutex> lk(mu_);
    stats_.sync_commits++;
    while (durable_lsn_ < lsn) {
      if (io_error_) {
        if (error != nullptr) *error = io_error_text_;
        return false;
      }
      if (!flushing_) {
        FlushLocked(&lk, /*sync=*/true);
        continue;  // re-check: our LSN was covered by the batch we led
      }
      cv_.wait(lk);
    }
    return true;
  }

  // Manual flush: write out everything appended so far, fdatasync if
  // `sync`.  Used by Close, rotation, and tests.
  bool Flush(bool sync, std::string* error) {
    std::unique_lock<std::mutex> lk(mu_);
    while (flushing_) cv_.wait(lk);
    FlushLocked(&lk, sync);
    if (io_error_) {
      if (error != nullptr) *error = io_error_text_;
      return false;
    }
    return true;
  }

  // Closes the current segment (flushed + fsynced) and opens the next.
  // Returns the last LSN the closed segment can contain — the snapshot
  // cut: every record at or below it lives in pruned-to-be segments, every
  // record above it in the new one.
  uint64_t Rotate(std::string* error) {
    std::unique_lock<std::mutex> lk(mu_);
    while (flushing_) cv_.wait(lk);
    FlushLocked(&lk, /*sync=*/true);
    if (io_error_) {
      if (error != nullptr) *error = io_error_text_;
      return 0;
    }
    uint64_t cut = last_appended_lsn_;
    ::close(fd_);
    fd_ = -1;
    ++seq_;
    std::string path = dir_ + "/" + WalSegmentName(seq_);
    if (!CreateSegment(path, error)) {
      io_error_ = true;
      io_error_text_ = error != nullptr ? *error : "segment create failed";
      return 0;
    }
    stats_.rotations++;
    return cut;
  }

  // Unlinks every segment older than the current one.  Call only after the
  // snapshot covering them is durably renamed into place.
  unsigned PruneBelowCurrent() {
    uint64_t keep;
    {
      std::lock_guard<std::mutex> lk(mu_);
      keep = seq_;
    }
    unsigned pruned = 0;
    for (const auto& [seq, path] : ListWalSegments(dir_)) {
      if (seq < keep && ::unlink(path.c_str()) == 0) ++pruned;
    }
    if (pruned > 0) {
      detail::FsyncDir(dir_);
      std::lock_guard<std::mutex> lk(mu_);
      stats_.segments_pruned += pruned;
    }
    return pruned;
  }

  // Final flush (always fsynced — shutdown is rare, make it clean), stops
  // the flusher, closes the fd.
  void Close() {
    if (running_.exchange(false)) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        cv_.notify_all();
      }
      if (flusher_.joinable()) flusher_.join();
      std::string err;
      Flush(/*sync=*/true, &err);
    }
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  uint64_t last_appended_lsn() const {
    std::lock_guard<std::mutex> lk(mu_);
    return last_appended_lsn_;
  }
  uint64_t durable_lsn() const {
    std::lock_guard<std::mutex> lk(mu_);
    return durable_lsn_;
  }
  uint64_t current_seq() const {
    std::lock_guard<std::mutex> lk(mu_);
    return seq_;
  }
  // Bytes appended to the current segment — the snapshot trigger signal.
  uint64_t segment_bytes() const {
    std::lock_guard<std::mutex> lk(mu_);
    return segment_bytes_ + pending_.size();
  }
  WalStats stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
  }
  Durability durability() const { return options_.durability; }

 private:
  bool Fail(std::string* error, const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    return false;
  }

  bool CreateSegment(const std::string& path, std::string* error) {
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd_ < 0) return Fail(error, path + ": create");
    std::vector<uint8_t> header;
    detail::PutLE64(&header, kWalMagic);
    detail::PutLE32(&header, kWalVersion);
    detail::PutLE32(&header, Crc32c(header.data(), 12));
    if (!detail::WriteAll(fd_, header.data(), header.size())) {
      return Fail(error, path + ": header write");
    }
    if (::fdatasync(fd_) != 0) return Fail(error, path + ": header fsync");
    detail::FsyncDir(dir_);
    segment_bytes_ = kWalFileHeaderBytes;
    return true;
  }

  // Leader flush: swaps the buffer out under `lk`, performs the I/O with
  // the lock RELEASED (appenders keep appending into the fresh buffer),
  // republishes state, wakes waiters.  Caller must hold `lk` and see
  // flushing_ == false; returns with `lk` held.
  void FlushLocked(std::unique_lock<std::mutex>* lk, bool sync) {
    assert(!flushing_);
    if (pending_.empty() && (!sync || durable_lsn_ >= written_lsn_)) return;
    flushing_ = true;
    std::vector<uint8_t> batch;
    batch.swap(pending_);
    uint64_t target = last_appended_lsn_;
    uint64_t batch_ops = stats_.appends - written_ops_;
    int fd = fd_;
    lk->unlock();

    bool ok = batch.empty() || detail::WriteAll(fd, batch.data(), batch.size());
    int io_errno = ok ? 0 : errno;  // before relocking can clobber errno
    bool synced = false;
    if (ok && sync) {
      synced = ::fdatasync(fd) == 0;
      if (!synced) io_errno = errno;
    }

    lk->lock();
    if (!ok || (sync && !synced)) {
      io_error_ = true;
      io_error_text_ = std::string("wal ") + (ok ? "fsync" : "write") + ": " +
                       std::strerror(io_errno);
    } else {
      if (!batch.empty()) {
        stats_.writes++;
        segment_bytes_ += batch.size();
        written_ops_ += batch_ops;
        if (target > written_lsn_) written_lsn_ = target;
      }
      if (sync) {
        stats_.fsyncs++;
        if (written_lsn_ > durable_lsn_) {
          stats_.group_committed += written_ops_ - durable_ops_;
          durable_ops_ = written_ops_;
          durable_lsn_ = written_lsn_;
        }
      }
    }
    flushing_ = false;
    cv_.notify_all();
  }

  void FlusherLoop() {
    const bool sync = options_.durability == Durability::kAsync;
    const auto interval = std::chrono::milliseconds(
        options_.flush_interval_ms == 0 ? 50 : options_.flush_interval_ms);
    while (running_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(interval);
      std::unique_lock<std::mutex> lk(mu_);
      if (flushing_) continue;  // a leader is already on it
      FlushLocked(&lk, sync);
    }
  }

  std::string dir_;
  Options options_;
  int fd_ = -1;
  std::thread flusher_;
  std::atomic<bool> running_{false};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<uint8_t> pending_;
  bool flushing_ = false;
  bool io_error_ = false;
  std::string io_error_text_;
  uint64_t seq_ = 1;
  uint64_t next_lsn_ = 1;
  uint64_t last_appended_lsn_ = 0;
  uint64_t written_lsn_ = 0;
  uint64_t durable_lsn_ = 0;
  uint64_t segment_bytes_ = 0;
  uint64_t written_ops_ = 0;
  uint64_t durable_ops_ = 0;
  WalStats stats_;
};

}  // namespace persist
}  // namespace hot

#endif  // HOT_PERSIST_WAL_H_
