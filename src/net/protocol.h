// Wire protocol of the network KV front-end (DESIGN.md §12).
//
// Every message — request or reply — is one length-prefixed frame:
//
//   u32  body_len   little-endian, length of everything after this field
//   body
//
// Request body:                       Reply body:
//   u64  request_id                     u64  request_id   (echoed)
//   u8   opcode                         u8   status
//   payload (per opcode)                payload (per status/opcode)
//
// Request payloads:
//   GET    u16 klen | klen key bytes
//   PUT    u16 klen | klen key bytes | u64 value
//   DELETE u16 klen | klen key bytes
//   SCAN   u16 klen | klen key bytes | u32 limit
//
// Reply payloads:
//   GET    kOk: u64 value            kNotFound: empty
//   PUT    kOk: u8 created, and when created == 0 the u64 replaced value
//   DELETE kOk / kNotFound: empty
//   SCAN   kOk: u32 count | count x { u16 klen | key bytes | u64 value }
//   any    kBadFrame/kBadRequest/kKeyTooLong/kServerError:
//          u16 mlen | mlen message bytes
//
// Error containment contract (tests/net_protocol_test.cc pins it):
//   * The 4-byte length prefix is the only thing the server trusts before
//     validation.  body_len outside [kMinBody, max_frame_body] is a FATAL
//     framing error: the server sends one kBadFrame reply (request id 0 —
//     the frame was never parsed far enough to know one) and closes the
//     connection.  Nothing after an invalid length is interpreted.
//   * Once the declared body is fully buffered, any parse error INSIDE it
//     (unknown opcode, key length inconsistent with the frame, oversized
//     key, zero scan limit) is contained to that frame: the server replies
//     kBadRequest / kKeyTooLong with the frame's request id and keeps the
//     connection; the parser never reads beyond the declared body.
//   * A server-side fault executing a WELL-FORMED write (WAL commit
//     failure) is likewise contained but uses kServerError, so clients can
//     tell a retryable server fault from bad input they must not resend.
//   * Request ids are opaque to the server and echoed verbatim.  Replies
//     may arrive out of request order (batched GETs complete after any
//     writes parsed in the same event-loop iteration) — clients match on
//     the id, never on arrival order.
//
// Keys on the wire are arbitrary byte strings (0x00 bytes allowed) of at
// most kMaxKeyLen bytes; the server maps them onto the tries' prefix-free
// key space with the order-preserving escape in net/record_store.h.
// Integers are little-endian on the wire (this is a socket protocol, not a
// trie key — the big-endian encoding lives behind the escape).

#ifndef HOT_NET_PROTOCOL_H_
#define HOT_NET_PROTOCOL_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/key.h"

namespace hot {
namespace net {

enum Opcode : uint8_t {
  kOpGet = 1,
  kOpPut = 2,
  kOpDelete = 3,
  kOpScan = 4,
};

enum Status : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kBadFrame = 2,     // fatal: connection closes after this reply
  kBadRequest = 3,   // contained to the frame, connection survives
  kKeyTooLong = 4,   // contained to the frame, connection survives
  kServerError = 5,  // server-side fault (e.g. WAL fsync failure): nothing
                     // wrong with the request, the op was NOT acknowledged;
                     // retryable once the server recovers
};

// Longest key accepted on the wire.  254 raw bytes is the largest length
// whose escaped form (raw + #NUL-bytes + 2, net/record_store.h) can still
// fit the tries' kMaxKeyBytes = 256 — NUL-free keys use it fully; keys with
// embedded NULs may be rejected below this by the escaped-length check.
inline constexpr size_t kMaxKeyLen = 254;

// Smallest valid body: request id + opcode.
inline constexpr size_t kMinBody = 9;

// Default cap on body_len, far above any legal request (replies can be
// larger; clients size their cap to max_scan_limit).  ServerOptions may
// lower it.
inline constexpr size_t kDefaultMaxFrameBody = 1u << 20;

// Default cap on one SCAN request's limit operand.
inline constexpr uint32_t kDefaultMaxScanLimit = 65536;

// --- little-endian primitive accessors -------------------------------------

inline void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}
inline void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}
inline void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}
inline uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}
inline uint32_t GetU32(const uint8_t* p) {
  return p[0] | (uint32_t{p[1]} << 8) | (uint32_t{p[2]} << 16) |
         (uint32_t{p[3]} << 24);
}
inline uint64_t GetU64(const uint8_t* p) {
  return GetU32(p) | (uint64_t{GetU32(p + 4)} << 32);
}

// --- request encoding (client side) ----------------------------------------

namespace detail {
inline size_t BeginFrame(std::vector<uint8_t>* out, uint64_t id, uint8_t op) {
  size_t len_at = out->size();
  PutU32(out, 0);  // patched by EndFrame
  PutU64(out, id);
  out->push_back(op);
  return len_at;
}
inline void EndFrame(std::vector<uint8_t>* out, size_t len_at) {
  uint32_t body = static_cast<uint32_t>(out->size() - len_at - 4);
  (*out)[len_at] = static_cast<uint8_t>(body);
  (*out)[len_at + 1] = static_cast<uint8_t>(body >> 8);
  (*out)[len_at + 2] = static_cast<uint8_t>(body >> 16);
  (*out)[len_at + 3] = static_cast<uint8_t>(body >> 24);
}
inline void PutKey(std::vector<uint8_t>* out, KeyRef key) {
  PutU16(out, static_cast<uint16_t>(key.size()));
  out->insert(out->end(), key.data(), key.data() + key.size());
}
}  // namespace detail

inline void EncodeGet(std::vector<uint8_t>* out, uint64_t id, KeyRef key) {
  size_t at = detail::BeginFrame(out, id, kOpGet);
  detail::PutKey(out, key);
  detail::EndFrame(out, at);
}
inline void EncodePut(std::vector<uint8_t>* out, uint64_t id, KeyRef key,
                      uint64_t value) {
  size_t at = detail::BeginFrame(out, id, kOpPut);
  detail::PutKey(out, key);
  PutU64(out, value);
  detail::EndFrame(out, at);
}
inline void EncodeDelete(std::vector<uint8_t>* out, uint64_t id, KeyRef key) {
  size_t at = detail::BeginFrame(out, id, kOpDelete);
  detail::PutKey(out, key);
  detail::EndFrame(out, at);
}
inline void EncodeScan(std::vector<uint8_t>* out, uint64_t id, KeyRef key,
                       uint32_t limit) {
  size_t at = detail::BeginFrame(out, id, kOpScan);
  detail::PutKey(out, key);
  PutU32(out, limit);
  detail::EndFrame(out, at);
}

// --- request decoding (server side) ----------------------------------------

struct Request {
  uint64_t id = 0;
  uint8_t op = 0;
  KeyRef key;  // view into the frame buffer; valid while the frame is
  uint64_t value = 0;       // PUT
  uint32_t scan_limit = 0;  // SCAN
};

enum class ParseVerdict : uint8_t {
  kParsedOk,
  kParseBadRequest,  // error reply with the frame's id, connection survives
  kParseKeyTooLong,  // ditto
};

// Parses one fully-buffered request body.  `body`/`body_len` delimit
// exactly the declared frame body — the parser never reads outside it, and
// trailing bytes it does not consume make the frame invalid (a frame
// declares its length; padding would hide data the server did not parse).
// On any verdict but kParsedOk, *req.id is still filled whenever the body
// was long enough to contain it (>= kMinBody, guaranteed by the caller's
// length validation), so the error reply can echo it.
inline ParseVerdict ParseRequest(const uint8_t* body, size_t body_len,
                                 Request* req, std::string* error) {
  req->id = GetU64(body);
  req->op = body[8];
  const uint8_t* p = body + 9;
  size_t rest = body_len - 9;
  auto bad = [&](const char* msg) {
    if (error != nullptr) *error = msg;
    return ParseVerdict::kParseBadRequest;
  };
  if (req->op < kOpGet || req->op > kOpScan) return bad("unknown opcode");
  if (rest < 2) return bad("truncated key length");
  uint16_t klen = GetU16(p);
  p += 2;
  rest -= 2;
  if (klen > rest) return bad("key length exceeds frame");
  if (klen > kMaxKeyLen) {
    if (error != nullptr) *error = "key exceeds kMaxKeyLen";
    return ParseVerdict::kParseKeyTooLong;
  }
  req->key = KeyRef(p, klen);
  p += klen;
  rest -= klen;
  switch (req->op) {
    case kOpGet:
    case kOpDelete:
      if (rest != 0) return bad("trailing bytes after key");
      break;
    case kOpPut:
      if (rest != 8) return bad("PUT payload must be exactly 8 value bytes");
      req->value = GetU64(p);
      break;
    case kOpScan:
      if (rest != 4) return bad("SCAN payload must be exactly 4 limit bytes");
      req->scan_limit = GetU32(p);
      if (req->scan_limit == 0) return bad("SCAN limit must be >= 1");
      break;
  }
  return ParseVerdict::kParsedOk;
}

// --- reply encoding (server side) ------------------------------------------

inline void EncodeGetReply(std::vector<uint8_t>* out, uint64_t id, bool found,
                           uint64_t value) {
  size_t at = detail::BeginFrame(out, id, found ? kOk : kNotFound);
  if (found) PutU64(out, value);
  detail::EndFrame(out, at);
}
inline void EncodePutReply(std::vector<uint8_t>* out, uint64_t id,
                           bool created, uint64_t prev) {
  size_t at = detail::BeginFrame(out, id, kOk);
  out->push_back(created ? 1 : 0);
  if (!created) PutU64(out, prev);
  detail::EndFrame(out, at);
}
inline void EncodeDeleteReply(std::vector<uint8_t>* out, uint64_t id,
                              bool removed) {
  size_t at = detail::BeginFrame(out, id, removed ? kOk : kNotFound);
  detail::EndFrame(out, at);
}
// Scan replies are built incrementally: begin, append entries, end.
struct ScanReplyBuilder {
  std::vector<uint8_t>* out;
  size_t len_at;
  size_t count_at;
  uint32_t count = 0;

  ScanReplyBuilder(std::vector<uint8_t>* o, uint64_t id) : out(o) {
    len_at = detail::BeginFrame(out, id, kOk);
    count_at = out->size();
    PutU32(out, 0);
  }
  void Add(KeyRef raw_key, uint64_t value) {
    detail::PutKey(out, raw_key);
    PutU64(out, value);
    ++count;
  }
  void Finish() {
    (*out)[count_at] = static_cast<uint8_t>(count);
    (*out)[count_at + 1] = static_cast<uint8_t>(count >> 8);
    (*out)[count_at + 2] = static_cast<uint8_t>(count >> 16);
    (*out)[count_at + 3] = static_cast<uint8_t>(count >> 24);
    detail::EndFrame(out, len_at);
  }
};
inline void EncodeErrorReply(std::vector<uint8_t>* out, uint64_t id,
                             uint8_t status, const std::string& message) {
  size_t at = detail::BeginFrame(out, id, status);
  PutU16(out, static_cast<uint16_t>(message.size()));
  out->insert(out->end(), message.begin(), message.end());
  detail::EndFrame(out, at);
}

// --- reply decoding (client side) ------------------------------------------

struct ScanEntry {
  std::string key;
  uint64_t value;
};

struct Reply {
  uint64_t id = 0;
  uint8_t status = kOk;
  uint64_t value = 0;  // GET kOk
  bool created = false;
  uint64_t prev = 0;  // PUT kOk, created == false
  std::vector<ScanEntry> scan;
  std::string error;  // error statuses

  bool ok() const { return status == kOk; }
};

// Parses one fully-buffered reply body.  `op` is the opcode of the request
// the caller issued under this id (the reply does not repeat it).  Returns
// false on malformed bodies.
inline bool ParseReply(const uint8_t* body, size_t body_len, uint8_t op,
                       Reply* reply, std::string* error) {
  auto bad = [&](const char* msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (body_len < kMinBody) return bad("reply body too short");
  reply->id = GetU64(body);
  reply->status = body[8];
  const uint8_t* p = body + 9;
  size_t rest = body_len - 9;
  reply->scan.clear();
  reply->error.clear();
  if (reply->status == kBadFrame || reply->status == kBadRequest ||
      reply->status == kKeyTooLong || reply->status == kServerError) {
    if (rest < 2) return bad("truncated error message length");
    uint16_t mlen = GetU16(p);
    if (mlen != rest - 2) return bad("error message length mismatch");
    reply->error.assign(reinterpret_cast<const char*>(p + 2), mlen);
    return true;
  }
  if (reply->status == kNotFound) {
    return rest == 0 ? true : bad("kNotFound reply carries payload");
  }
  if (reply->status != kOk) return bad("unknown reply status");
  switch (op) {
    case kOpGet:
      if (rest != 8) return bad("GET reply payload must be 8 bytes");
      reply->value = GetU64(p);
      return true;
    case kOpPut:
      if (rest < 1) return bad("PUT reply missing created flag");
      reply->created = p[0] != 0;
      if (reply->created) return rest == 1 ? true : bad("PUT reply trailing");
      if (rest != 9) return bad("PUT replace reply must carry prev value");
      reply->prev = GetU64(p + 1);
      return true;
    case kOpDelete:
      return rest == 0 ? true : bad("DELETE reply carries payload");
    case kOpScan: {
      if (rest < 4) return bad("SCAN reply missing count");
      uint32_t count = GetU32(p);
      p += 4;
      rest -= 4;
      // An entry is at least 10 bytes (klen + 8 value bytes); a declared
      // count the body cannot hold must not drive the reserve (a hostile
      // count of 4 billion would otherwise allocate before validation).
      if (count > rest / 10) return bad("SCAN count exceeds reply body");
      reply->scan.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        if (rest < 2) return bad("SCAN entry truncated at key length");
        uint16_t klen = GetU16(p);
        p += 2;
        rest -= 2;
        if (rest < klen + size_t{8}) return bad("SCAN entry truncated");
        reply->scan.push_back(
            {std::string(reinterpret_cast<const char*>(p), klen),
             GetU64(p + klen)});
        p += klen + 8;
        rest -= klen + 8;
      }
      return rest == 0 ? true : bad("SCAN reply trailing bytes");
    }
    default:
      return bad("unknown request opcode for reply");
  }
}

// --- incremental framing ----------------------------------------------------
//
// The state machine both endpoints run over their receive buffers.  Feed()
// style: the caller owns a flat byte buffer of everything received and not
// yet consumed; NextFrame reports whether a complete frame is available,
// where its body starts, and how many bytes to consume.

enum class FrameVerdict : uint8_t {
  kNeedMore,   // fewer bytes than one complete frame
  kHaveFrame,  // *body/*body_len delimit the frame body, *consumed is set
  kBadLength,  // declared body length outside [kMinBody, max_body]: fatal
};

inline FrameVerdict NextFrame(const uint8_t* data, size_t size,
                              size_t max_body, const uint8_t** body,
                              size_t* body_len, size_t* consumed) {
  if (size < 4) return FrameVerdict::kNeedMore;
  uint32_t declared = GetU32(data);
  if (declared < kMinBody || declared > max_body) {
    return FrameVerdict::kBadLength;
  }
  if (size - 4 < declared) return FrameVerdict::kNeedMore;
  *body = data + 4;
  *body_len = declared;
  *consumed = 4 + size_t{declared};
  return FrameVerdict::kHaveFrame;
}

}  // namespace net
}  // namespace hot

#endif  // HOT_NET_PROTOCOL_H_
