#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

namespace hot {
namespace net {

namespace {
bool Fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}
bool FailErrno(std::string* error, const char* what) {
  return Fail(error, std::string(what) + ": " + strerror(errno));
}
}  // namespace

bool KvClient::Connect(const std::string& host, uint16_t port,
                       std::string* error) {
  if (fd_ >= 0) return Fail(error, "already connected");
  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return FailErrno(error, "socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Fail(error, "bad host: " + host);
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    FailErrno(error, "connect");
    Close();
    return false;
  }
  int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

void KvClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  out_.clear();
  in_.clear();
  in_off_ = 0;
  pending_.clear();
  buffered_.clear();
}

uint64_t KvClient::SendGet(KeyRef key) {
  uint64_t id = next_id_++;
  EncodeGet(&out_, id, key);
  pending_[id] = kOpGet;
  return id;
}
uint64_t KvClient::SendPut(KeyRef key, uint64_t value) {
  uint64_t id = next_id_++;
  EncodePut(&out_, id, key, value);
  pending_[id] = kOpPut;
  return id;
}
uint64_t KvClient::SendDelete(KeyRef key) {
  uint64_t id = next_id_++;
  EncodeDelete(&out_, id, key);
  pending_[id] = kOpDelete;
  return id;
}
uint64_t KvClient::SendScan(KeyRef key, uint32_t limit) {
  uint64_t id = next_id_++;
  EncodeScan(&out_, id, key, limit);
  pending_[id] = kOpScan;
  return id;
}

bool KvClient::Flush(std::string* error) {
  size_t off = 0;
  while (off < out_.size()) {
    ssize_t n = ::write(fd_, out_.data() + off, out_.size() - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      out_.erase(out_.begin(), out_.begin() + static_cast<ptrdiff_t>(off));
      return FailErrno(error, "write");
    }
  }
  out_.clear();
  return true;
}

uint8_t KvClient::PendingOp(uint64_t id) const {
  auto it = pending_.find(id);
  return it == pending_.end() ? 0 : it->second;
}

bool KvClient::ReadReply(Reply* reply, std::string* error) {
  while (true) {
    // Deliver a buffered reply first (arrival order is preserved by the
    // map only per-id; callers using buffered_ go through AwaitReplyFor).
    const uint8_t* body;
    size_t body_len, consumed;
    FrameVerdict v = NextFrame(in_.data() + in_off_, in_.size() - in_off_,
                               kDefaultMaxFrameBody + (16u << 20), &body,
                               &body_len, &consumed);
    if (v == FrameVerdict::kBadLength) {
      return Fail(error, "malformed reply frame length");
    }
    if (v == FrameVerdict::kHaveFrame) {
      // Peek the id to find the opcode this reply answers.
      uint64_t id = GetU64(body);
      uint8_t op = PendingOp(id);
      if (!ParseReply(body, body_len, op, reply, error)) return false;
      in_off_ += consumed;
      if (in_off_ == in_.size()) {
        in_.clear();
        in_off_ = 0;
      }
      pending_.erase(id);
      return true;
    }
    // Need more bytes.
    char buf[64 * 1024];
    ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      in_.insert(in_.end(), buf, buf + n);
    } else if (n == 0) {
      return Fail(error, "connection closed by server");
    } else if (errno != EINTR) {
      return FailErrno(error, "read");
    }
  }
}

bool KvClient::AwaitReplyFor(uint64_t id, Reply* reply, std::string* error) {
  auto it = buffered_.find(id);
  if (it != buffered_.end()) {
    *reply = std::move(it->second);
    buffered_.erase(it);
    return true;
  }
  Reply r;
  while (true) {
    if (!ReadReply(&r, error)) return false;
    if (r.id == id) {
      *reply = std::move(r);
      return true;
    }
    buffered_[r.id] = std::move(r);
  }
}

bool KvClient::Get(KeyRef key, Reply* reply, std::string* error) {
  uint64_t id = SendGet(key);
  return Flush(error) && AwaitReplyFor(id, reply, error);
}
bool KvClient::Put(KeyRef key, uint64_t value, Reply* reply,
                   std::string* error) {
  uint64_t id = SendPut(key, value);
  return Flush(error) && AwaitReplyFor(id, reply, error);
}
bool KvClient::Delete(KeyRef key, Reply* reply, std::string* error) {
  uint64_t id = SendDelete(key);
  return Flush(error) && AwaitReplyFor(id, reply, error);
}
bool KvClient::Scan(KeyRef key, uint32_t limit, Reply* reply,
                    std::string* error) {
  uint64_t id = SendScan(key, limit);
  return Flush(error) && AwaitReplyFor(id, reply, error);
}

}  // namespace net
}  // namespace hot
