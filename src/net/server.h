// Multi-client epoll KV server over the range-sharded ROWEX HOT stack
// (DESIGN.md §12).
//
// Architecture: `workers` event-loop threads, each with its own epoll set.
// Worker 0 owns the listening socket and deals accepted connections to all
// workers round-robin (an eventfd per worker wakes its loop).  A connection
// lives on exactly one worker, so connection state needs no locks; the
// index (RangeShardedIndex<RowexHotTrie>) and the record store are shared
// and internally synchronized.
//
// Batch-aware scheduling — the reason this server exists: within one
// event-loop iteration a worker parses every readable connection's pending
// frames, executes writes (PUT/DELETE) and SCANs inline, but only QUEUES
// point GETs.  At the end of the iteration the queued GETs — across all
// connections — drain as ONE call into the index's memory-level-parallel
// batched lookup (AMAC interleaved descent, hot/batch_lookup.h), falling
// back to a scalar loop when fewer than `batch_low_watermark` are pending
// (a 2-wide "batch" costs more in staging than it recovers in overlap).
// Replies therefore complete out of request order; the protocol's request
// ids are what lets clients cope (net/protocol.h).
//
// Backpressure: a connection whose pending reply bytes exceed
// `high_watermark` stops being read (EPOLLIN dropped) until its output
// drains below `low_watermark` — a slow reader stalls itself, not the
// worker, and its unread requests stay in the kernel socket buffer where
// TCP flow control pushes back on the sender.

#ifndef HOT_NET_SERVER_H_
#define HOT_NET_SERVER_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "hot/rowex.h"
#include "net/protocol.h"
#include "net/record_store.h"
#include "persist/wal.h"
#include "ycsb/range_sharded.h"

namespace hot {
namespace net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; see KvServer::port() after Start
  unsigned workers = 1;
  unsigned shards = 16;  // range shards over the escaped key space
  // GET scheduling: batches below the low-watermark drain scalar; 0 or 1
  // disables the scalar fallback entirely (everything batches).
  unsigned batch_low_watermark = 4;
  bool force_scalar = false;  // scalar-drain mode (bench baseline)
  // Framing / resource limits.
  size_t max_frame_body = kDefaultMaxFrameBody;
  uint32_t max_scan_limit = kDefaultMaxScanLimit;
  size_t high_watermark = 4u << 20;  // pause reading above this many
  size_t low_watermark = 1u << 20;   // pending reply bytes; resume below

  // Durability (src/persist, DESIGN.md §13).  Empty data_dir = volatile
  // server (no WAL, no snapshots, no recovery) — the pre-§13 behavior.
  // With a data_dir, Start() recovers the image found there (snapshot +
  // WAL tail -> bulk build) and every PUT/DELETE is WAL-appended before
  // its reply; `durability` sets the ack contract (persist/wal.h).
  std::string data_dir;
  persist::Durability durability = persist::Durability::kSync;
  unsigned wal_flush_ms = 50;  // async flusher cadence (kAsync loss bound)
  // Auto-snapshot once the current WAL segment exceeds this many bytes
  // (checked periodically); 0 disables the trigger — snapshots then happen
  // only through TriggerSnapshot().
  uint64_t snapshot_trigger_bytes = 0;
  unsigned recovery_threads = 0;  // bulk-build workers; 0 = hw concurrency
};

// What Start() found and rebuilt from the data directory; all zero/false
// for a volatile server.  Quiescent-exact (recovery runs before workers).
struct RecoveryInfo {
  bool performed = false;        // a data_dir was configured
  bool snapshot_loaded = false;
  bool torn_tail = false;        // newest WAL segment ended mid-frame
  uint64_t records = 0;          // live keys after the merge
  uint64_t snapshot_records = 0;
  uint64_t wal_segments = 0;
  uint64_t wal_records_applied = 0;
  uint64_t wal_records_stale = 0;  // lsn <= snapshot cut (pre-prune crash)
  uint64_t last_lsn = 0;
  double recover_seconds = 0;  // disk -> merged image
  double build_seconds = 0;    // merged image -> store + bulk-built index
};

// Monotonic counters, all relaxed atomics: exact once the server is
// quiescent, approximate while it runs.  The protocol/partial-I/O tests
// lean on connections_* to prove fd hygiene and on the drain counters to
// prove the scheduling mode actually taken.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t frames_in = 0;
  uint64_t replies_out = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t gets = 0;
  uint64_t puts = 0;
  uint64_t deletes = 0;
  uint64_t scans = 0;
  uint64_t scan_items = 0;
  uint64_t batch_drains = 0;    // LookupBatch calls
  uint64_t batched_gets = 0;    // GETs answered through them
  uint64_t scalar_drains = 0;   // scalar fallback rounds
  uint64_t scalar_gets = 0;     // GETs answered scalar
  uint64_t max_batch = 0;       // widest single drain
  uint64_t protocol_errors = 0;  // fatal framing errors (connection closed)
  uint64_t bad_requests = 0;     // contained per-frame errors
  uint64_t keys_too_long = 0;

  // Durability counters; all zero on a volatile server.  The WAL fields
  // mirror persist::WalStats (group_committed / fsyncs is the group-commit
  // amortization).
  uint64_t wal_appends = 0;
  uint64_t wal_writes = 0;
  uint64_t wal_fsyncs = 0;
  uint64_t wal_sync_commits = 0;
  uint64_t wal_group_committed = 0;
  uint64_t wal_rotations = 0;
  uint64_t wal_segments_pruned = 0;
  uint64_t wal_commit_failures = 0;  // acks refused because fsync failed
  uint64_t snapshots_taken = 0;
  uint64_t snapshot_failures = 0;
  uint64_t snapshot_last_records = 0;  // rows in the newest snapshot

  uint64_t connections_open() const {
    return connections_accepted - connections_closed;
  }
};

class KvServer {
 public:
  using Index =
      ycsb::RangeShardedIndex<RowexHotTrie<RecordKeyExtractor>,
                              RecordKeyExtractor>;

  explicit KvServer(ServerOptions options = {});
  ~KvServer();

  KvServer(const KvServer&) = delete;
  KvServer& operator=(const KvServer&) = delete;

  // Binds, listens, and launches the worker threads.  Returns false (with
  // *error set) on any socket failure; the server is then inert and may
  // not be restarted.
  bool Start(std::string* error);

  // Closes the listener and every connection, joins the workers.  Safe to
  // call repeatedly; also called by the destructor.
  void Stop();

  // Port actually bound (resolves options.port == 0). Valid after Start.
  uint16_t port() const { return port_; }

  ServerStats StatsSnapshot() const;

  // Quiescent-only introspection for tests and benches.
  const Index& index() const { return *index_; }
  const RecordStore& store() const { return store_; }
  size_t live_keys() const { return index_->size(); }

  // Durability surface.  TriggerSnapshot runs one full snapshot cycle —
  // rotate the WAL (cut), ordered scan into <data_dir>/snapshot.snap.tmp,
  // atomic rename, prune covered segments — concurrently with serving
  // traffic (the fuzzy-scan protocol in persist/recovery.h makes that
  // safe).  Fails on a volatile server.  Safe from any thread; cycles are
  // serialized.
  bool TriggerSnapshot(std::string* error);
  bool durable() const { return wal_ != nullptr; }
  const RecoveryInfo& recovery() const { return recovery_; }
  uint64_t wal_durable_lsn() const {
    return wal_ ? wal_->durable_lsn() : 0;
  }

  // Runtime toggle of the GET drain mode (bench/net_throughput flips it
  // between phases so batched and scalar runs share one loaded server).
  // Takes effect from the next event-loop iteration.
  void set_force_scalar(bool v) {
    force_scalar_.store(v, std::memory_order_relaxed);
  }
  bool force_scalar() const {
    return force_scalar_.load(std::memory_order_relaxed);
  }

 private:
  struct Worker;
  friend struct Worker;

  // Recovery half of Start(): rebuild store_/index_ from data_dir and open
  // the WAL at its resume point.  Runs before any worker thread exists.
  bool RecoverAndOpenWal(std::string* error);
  void SnapshotLoop();  // background auto-snapshot trigger

  // Durable-mode write ordering: the stripe lock covering a key is held
  // across {WAL append, index apply}, so per-key apply order equals LSN
  // order and recovery's last-LSN-wins replay reconstructs exactly the
  // state clients observed — without it, two workers racing on one key
  // could ack A's value live but replay B's after a crash.  Returns an
  // unlocked (empty) guard on a volatile server: with no WAL there is no
  // LSN order to agree with, and the index is internally synchronized.
  // 32 stripes, not more: the snapshot rotate quiesces by holding ALL of
  // them (plus the snapshot and WAL mutexes), and TSan's deadlock
  // detector hard-caps simultaneously held locks per thread at 64.
  static constexpr size_t kWriteStripes = 32;
  std::unique_lock<std::mutex> WriteStripeLock(KeyRef key) {
    if (wal_ == nullptr) return {};
    uint64_t h = 1469598103934665603ull;  // FNV-1a over the raw key
    for (size_t i = 0; i < key.size(); ++i) {
      h = (h ^ key.data()[i]) * 1099511628211ull;
    }
    return std::unique_lock<std::mutex>(write_stripes_[h % kWriteStripes]);
  }

  ServerOptions options_;
  RecordStore store_;
  std::unique_ptr<Index> index_;
  std::unique_ptr<persist::Wal> wal_;
  RecoveryInfo recovery_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::thread snapshot_thread_;
  std::array<std::mutex, kWriteStripes> write_stripes_;
  std::mutex snapshot_mu_;  // serializes snapshot cycles
  std::mutex snapshot_wait_mu_;
  std::condition_variable snapshot_cv_;
  std::atomic<bool> running_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> force_scalar_{false};
  std::atomic<unsigned> next_worker_{0};  // round-robin accept dealing

  // One cache line of relaxed counters per stat field would be overkill;
  // a single atomic mirror of ServerStats is enough for test-grade stats.
  struct AtomicStats;
  std::unique_ptr<AtomicStats> stats_;
};

}  // namespace net
}  // namespace hot

#endif  // HOT_NET_SERVER_H_
