// Blocking KV client over the net/protocol.h wire format.
//
// Two usage styles share one connection object:
//
//   * Synchronous convenience calls (Get/Put/Delete/Scan): send one
//     request, block until ITS reply arrives.  Replies for other
//     outstanding ids received meanwhile are buffered and delivered later.
//   * Explicit pipelining: Send*() encodes into the output buffer and
//     returns the request id; Flush() writes everything; ReadReply() blocks
//     for the next reply IN ARRIVAL ORDER — which, because the server
//     defers GETs into end-of-iteration batch drains, is NOT request order.
//     Callers match replies to requests by id; PendingOp() exposes the
//     opcode the client remembered for an id (replies do not repeat it).
//
// The client is deliberately simple and single-threaded (no locks): one
// instance per thread.  tools/kv_client drives many instances; the tests
// use the pipelined face to provoke and verify out-of-order completion.

#ifndef HOT_NET_CLIENT_H_
#define HOT_NET_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/key.h"
#include "net/protocol.h"

namespace hot {
namespace net {

class KvClient {
 public:
  KvClient() = default;
  ~KvClient() { Close(); }
  KvClient(const KvClient&) = delete;
  KvClient& operator=(const KvClient&) = delete;

  bool Connect(const std::string& host, uint16_t port, std::string* error);
  void Close();
  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // --- pipelined face --------------------------------------------------------

  uint64_t SendGet(KeyRef key);
  uint64_t SendPut(KeyRef key, uint64_t value);
  uint64_t SendDelete(KeyRef key);
  uint64_t SendScan(KeyRef key, uint32_t limit);

  // Writes the whole output buffer (blocking).  False on socket error.
  bool Flush(std::string* error);

  // Blocks for the next reply frame in arrival order.  False on socket
  // error, EOF, or a malformed reply (*error says which).
  bool ReadReply(Reply* reply, std::string* error);

  // Opcode remembered for an outstanding id (0 if unknown — e.g. the id-0
  // reply accompanying a fatal kBadFrame).
  uint8_t PendingOp(uint64_t id) const;
  size_t outstanding() const { return pending_.size(); }

  // --- synchronous convenience ----------------------------------------------
  // Each returns false only on transport/parse failure; protocol-level
  // outcomes (kNotFound, error statuses) come back in *reply.

  bool Get(KeyRef key, Reply* reply, std::string* error);
  bool Put(KeyRef key, uint64_t value, Reply* reply, std::string* error);
  bool Delete(KeyRef key, Reply* reply, std::string* error);
  bool Scan(KeyRef key, uint32_t limit, Reply* reply, std::string* error);

 private:
  bool AwaitReplyFor(uint64_t id, Reply* reply, std::string* error);

  int fd_ = -1;
  uint64_t next_id_ = 1;
  std::vector<uint8_t> out_;
  std::vector<uint8_t> in_;
  size_t in_off_ = 0;
  std::map<uint64_t, uint8_t> pending_;       // id -> opcode
  std::map<uint64_t, Reply> buffered_;        // replies read while waiting
};

}  // namespace net
}  // namespace hot

#endif  // HOT_NET_CLIENT_H_
