#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cassert>
#include <chrono>
#include <limits>
#include <mutex>
#include <span>

#include "persist/recovery.h"
#include "persist/snapshot.h"

namespace hot {
namespace net {

namespace {

// epoll_event.data.u64 tags: the two singleton fds get small integers,
// every connection gets its (pointer-aligned, hence > 1) Conn*.
constexpr uint64_t kTagEventFd = 0;
constexpr uint64_t kTagListenFd = 1;

}  // namespace

// --- stats -------------------------------------------------------------------

struct KvServer::AtomicStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_closed{0};
  std::atomic<uint64_t> frames_in{0};
  std::atomic<uint64_t> replies_out{0};
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};
  std::atomic<uint64_t> gets{0};
  std::atomic<uint64_t> puts{0};
  std::atomic<uint64_t> deletes{0};
  std::atomic<uint64_t> scans{0};
  std::atomic<uint64_t> scan_items{0};
  std::atomic<uint64_t> batch_drains{0};
  std::atomic<uint64_t> batched_gets{0};
  std::atomic<uint64_t> scalar_drains{0};
  std::atomic<uint64_t> scalar_gets{0};
  std::atomic<uint64_t> max_batch{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> bad_requests{0};
  std::atomic<uint64_t> keys_too_long{0};
  std::atomic<uint64_t> wal_commit_failures{0};
  std::atomic<uint64_t> snapshots_taken{0};
  std::atomic<uint64_t> snapshot_failures{0};
  std::atomic<uint64_t> snapshot_last_records{0};

  void MaxBatch(uint64_t n) {
    uint64_t prev = max_batch.load(std::memory_order_relaxed);
    while (n > prev && !max_batch.compare_exchange_weak(
                           prev, n, std::memory_order_relaxed)) {
    }
  }
};

ServerStats KvServer::StatsSnapshot() const {
  const AtomicStats& a = *stats_;
  ServerStats s;
  s.connections_accepted = a.connections_accepted.load();
  s.connections_closed = a.connections_closed.load();
  s.frames_in = a.frames_in.load();
  s.replies_out = a.replies_out.load();
  s.bytes_in = a.bytes_in.load();
  s.bytes_out = a.bytes_out.load();
  s.gets = a.gets.load();
  s.puts = a.puts.load();
  s.deletes = a.deletes.load();
  s.scans = a.scans.load();
  s.scan_items = a.scan_items.load();
  s.batch_drains = a.batch_drains.load();
  s.batched_gets = a.batched_gets.load();
  s.scalar_drains = a.scalar_drains.load();
  s.scalar_gets = a.scalar_gets.load();
  s.max_batch = a.max_batch.load();
  s.protocol_errors = a.protocol_errors.load();
  s.bad_requests = a.bad_requests.load();
  s.keys_too_long = a.keys_too_long.load();
  s.wal_commit_failures = a.wal_commit_failures.load();
  s.snapshots_taken = a.snapshots_taken.load();
  s.snapshot_failures = a.snapshot_failures.load();
  s.snapshot_last_records = a.snapshot_last_records.load();
  if (wal_ != nullptr) {
    persist::WalStats w = wal_->stats();
    s.wal_appends = w.appends;
    s.wal_writes = w.writes;
    s.wal_fsyncs = w.fsyncs;
    s.wal_sync_commits = w.sync_commits;
    s.wal_group_committed = w.group_committed;
    s.wal_rotations = w.rotations;
    s.wal_segments_pruned = w.segments_pruned;
  }
  return s;
}

// --- per-connection state ----------------------------------------------------

namespace {

struct Conn {
  int fd = -1;
  std::vector<uint8_t> in;    // received, not yet parsed
  std::vector<uint8_t> out;   // replies not yet written
  size_t out_off = 0;         // prefix of `out` already written
  bool want_close = false;    // close once `out` drains (fatal frame error)
  bool dead = false;          // reaped at end of the loop iteration
  bool epollout = false;      // EPOLLOUT currently registered
  bool paused = false;        // EPOLLIN dropped by backpressure
  bool touched = false;       // queued for the end-of-iteration flush

  size_t pending_out() const { return out.size() - out_off; }
};

// One queued GET: the escaped key lives in the worker's batch arena (the
// connection's input buffer is compacted between frames, so the key bytes
// must be copied out anyway — copying the escaped form kills two birds).
struct PendingGet {
  Conn* conn;
  uint64_t req_id;
  uint32_t key_off;
  uint32_t key_len;
};

}  // namespace

// --- worker ------------------------------------------------------------------

struct KvServer::Worker {
  KvServer* server = nullptr;
  unsigned id = 0;
  int epoll_fd = -1;
  int event_fd = -1;
  bool owns_listener = false;

  std::mutex inbox_mu;
  std::vector<int> inbox;  // fds dealt to this worker by the acceptor

  std::vector<std::unique_ptr<Conn>> conns;
  std::vector<PendingGet> pending;
  std::vector<uint8_t> arena;  // escaped key bytes of `pending`
  std::vector<KeyRef> batch_keys;
  std::vector<std::optional<uint64_t>> batch_out;
  std::vector<uint8_t> esc_scratch;  // escape buffer for inline ops
  std::vector<Conn*> touched;

  ~Worker() {
    for (auto& c : conns) {
      if (c->fd >= 0) ::close(c->fd);
    }
    if (event_fd >= 0) ::close(event_fd);
    if (epoll_fd >= 0) ::close(epoll_fd);
  }

  bool Init() {
    epoll_fd = epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd < 0) return false;
    event_fd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (event_fd < 0) return false;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kTagEventFd;
    return epoll_ctl(epoll_fd, EPOLL_CTL_ADD, event_fd, &ev) == 0;
  }

  void Wake() {
    uint64_t one = 1;
    ssize_t rc = ::write(event_fd, &one, sizeof(one));
    (void)rc;  // EAGAIN just means a wakeup is already pending
  }

  void Deal(int fd) {
    {
      std::lock_guard<std::mutex> guard(inbox_mu);
      inbox.push_back(fd);
    }
    Wake();
  }

  void Run() {
    constexpr int kMaxEvents = 128;
    epoll_event events[kMaxEvents];
    while (server->running_.load(std::memory_order_acquire)) {
      int n = epoll_wait(epoll_fd, events, kMaxEvents, -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (int i = 0; i < n; ++i) {
        uint64_t tag = events[i].data.u64;
        if (tag == kTagEventFd) {
          DrainEventFd();
        } else if (tag == kTagListenFd) {
          AcceptAll();
        } else {
          Conn* c = reinterpret_cast<Conn*>(tag);
          if (c->dead) continue;
          if (events[i].events & (EPOLLHUP | EPOLLERR)) {
            c->dead = true;
            continue;
          }
          if (events[i].events & EPOLLIN) ReadAndParse(c);
          if (!c->dead && (events[i].events & EPOLLOUT)) FlushOut(c);
        }
      }
      DrainGets();
      for (Conn* c : touched) {
        c->touched = false;
        if (!c->dead) FlushOut(c);
      }
      touched.clear();
      Reap();
    }
  }

  void DrainEventFd() {
    uint64_t count;
    while (::read(event_fd, &count, sizeof(count)) > 0) {
    }
    std::vector<int> fds;
    {
      std::lock_guard<std::mutex> guard(inbox_mu);
      fds.swap(inbox);
    }
    for (int fd : fds) Adopt(fd);
  }

  void Adopt(int fd) {
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = reinterpret_cast<uint64_t>(conn.get());
    if (epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      server->stats_->connections_closed.fetch_add(
          1, std::memory_order_relaxed);
      return;
    }
    conns.push_back(std::move(conn));
  }

  void AcceptAll() {
    while (true) {
      int fd = accept4(server->listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) break;  // EAGAIN or a transient error: wait for the next
      int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      server->stats_->connections_accepted.fetch_add(
          1, std::memory_order_relaxed);
      unsigned target =
          server->next_worker_.fetch_add(1, std::memory_order_relaxed) %
          static_cast<unsigned>(server->workers_.size());
      server->workers_[target]->Deal(fd);
    }
  }

  void Touch(Conn* c) {
    if (!c->touched) {
      c->touched = true;
      touched.push_back(c);
    }
  }

  void ReadAndParse(Conn* c) {
    char buf[64 * 1024];
    while (true) {
      ssize_t n = ::read(c->fd, buf, sizeof(buf));
      if (n > 0) {
        server->stats_->bytes_in.fetch_add(static_cast<uint64_t>(n),
                                           std::memory_order_relaxed);
        c->in.insert(c->in.end(), buf, buf + n);
        if (static_cast<size_t>(n) < sizeof(buf)) break;  // drained
      } else if (n == 0) {
        c->dead = true;  // peer closed; pending replies are undeliverable
        return;
      } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      } else if (errno == EINTR) {
        continue;
      } else {
        c->dead = true;
        return;
      }
    }
    ParseFrames(c);
  }

  void ParseFrames(Conn* c) {
    size_t consumed_total = 0;
    const ServerOptions& opt = server->options_;
    while (!c->want_close) {
      const uint8_t* body;
      size_t body_len, consumed;
      FrameVerdict v =
          NextFrame(c->in.data() + consumed_total,
                    c->in.size() - consumed_total, opt.max_frame_body, &body,
                    &body_len, &consumed);
      if (v == FrameVerdict::kNeedMore) break;
      if (v == FrameVerdict::kBadLength) {
        // The stream cannot be re-synchronized after an invalid length:
        // reply once (id 0 — the frame never yielded one) and close.
        server->stats_->protocol_errors.fetch_add(1,
                                                  std::memory_order_relaxed);
        EncodeErrorReply(&c->out, 0, kBadFrame, "invalid frame length");
        server->stats_->replies_out.fetch_add(1, std::memory_order_relaxed);
        c->want_close = true;
        Touch(c);
        break;
      }
      server->stats_->frames_in.fetch_add(1, std::memory_order_relaxed);
      HandleFrame(c, body, body_len);
      consumed_total += consumed;
    }
    if (consumed_total > 0) {
      c->in.erase(c->in.begin(),
                  c->in.begin() + static_cast<ptrdiff_t>(consumed_total));
    }
    MaybePause(c);
  }

  // Waits out the durability contract of an appended record (persist/wal.h
  // Commit).  True = ack; false = the commit failed (only an fsync/write
  // failure gets here) and a kServerError reply is queued instead.  The op
  // was already applied to the live index — append and apply happen
  // together under the key's write stripe, before this wait — but it was
  // never acknowledged, so recovery is free to drop it.  No-op on a
  // volatile server.
  bool WalCommit(Conn* c, uint64_t req_id, uint64_t lsn) {
    if (server->wal_ == nullptr) return true;
    std::string werr;
    if (server->wal_->Commit(lsn, &werr)) return true;
    AtomicStats& st = *server->stats_;
    st.wal_commit_failures.fetch_add(1, std::memory_order_relaxed);
    EncodeErrorReply(&c->out, req_id, kServerError, "wal commit: " + werr);
    st.replies_out.fetch_add(1, std::memory_order_relaxed);
    Touch(c);
    return false;
  }

  void HandleFrame(Conn* c, const uint8_t* body, size_t body_len) {
    AtomicStats& st = *server->stats_;
    Request req;
    std::string perr;
    ParseVerdict v = ParseRequest(body, body_len, &req, &perr);
    if (v != ParseVerdict::kParsedOk) {
      uint8_t status =
          v == ParseVerdict::kParseKeyTooLong ? kKeyTooLong : kBadRequest;
      (status == kKeyTooLong ? st.keys_too_long : st.bad_requests)
          .fetch_add(1, std::memory_order_relaxed);
      EncodeErrorReply(&c->out, req.id, status, perr);
      st.replies_out.fetch_add(1, std::memory_order_relaxed);
      Touch(c);
      return;
    }
    switch (req.op) {
      case kOpGet: {
        st.gets.fetch_add(1, std::memory_order_relaxed);
        // Deferred: queue the ESCAPED key; the end-of-iteration drain
        // answers every queued GET in one batched descent.
        uint32_t off = static_cast<uint32_t>(arena.size());
        EscapeKey(req.key, &arena);
        uint32_t len = static_cast<uint32_t>(arena.size()) - off;
        pending.push_back({c, req.id, off, len});
        Touch(c);
        break;
      }
      case kOpPut: {
        st.puts.fetch_add(1, std::memory_order_relaxed);
        if (!KeyFitsIndex(req.key)) {
          st.keys_too_long.fetch_add(1, std::memory_order_relaxed);
          EncodeErrorReply(&c->out, req.id, kKeyTooLong,
                           "escaped key exceeds index limit");
          st.replies_out.fetch_add(1, std::memory_order_relaxed);
          Touch(c);
          break;
        }
        // Log before apply, both under the key's write stripe: the WAL's
        // LSN order and the index's apply order agree per key, so
        // recovery's last-LSN-wins replay reproduces exactly what clients
        // observed.  The durability wait (Commit) happens after the stripe
        // is released — group commit still amortizes across keys — and a
        // commit failure refuses the ack: never acknowledge what recovery
        // could not reproduce.
        uint64_t lsn = 0;
        std::optional<uint64_t> prev_id;
        {
          std::unique_lock<std::mutex> stripe =
              server->WriteStripeLock(req.key);
          if (server->wal_ != nullptr) {
            lsn = server->wal_->Append(persist::kWalPut, req.key, req.value);
          }
          uint64_t id = server->store_.Append(req.key, req.value);
          KeyRef esc = server->store_.At(id).escaped_key();
          prev_id = server->index_->Upsert(id, esc);
        }
        if (!WalCommit(c, req.id, lsn)) break;
        uint64_t prev =
            prev_id ? server->store_.At(*prev_id).value : uint64_t{0};
        EncodePutReply(&c->out, req.id, !prev_id.has_value(), prev);
        st.replies_out.fetch_add(1, std::memory_order_relaxed);
        Touch(c);
        break;
      }
      case kOpDelete: {
        st.deletes.fetch_add(1, std::memory_order_relaxed);
        bool removed = false;
        if (KeyFitsIndex(req.key)) {
          // Logged even when the key turns out absent: replaying a delete
          // of a missing key is a no-op, and logging-before-apply under
          // the write stripe keeps per-key LSN order equal to apply order
          // (see kOpPut).
          uint64_t lsn = 0;
          {
            std::unique_lock<std::mutex> stripe =
                server->WriteStripeLock(req.key);
            if (server->wal_ != nullptr) {
              lsn = server->wal_->Append(persist::kWalDelete, req.key, 0);
            }
            esc_scratch.clear();
            EscapeKey(req.key, &esc_scratch);
            removed = server->index_->Remove(
                KeyRef(esc_scratch.data(), esc_scratch.size()));
          }
          if (!WalCommit(c, req.id, lsn)) break;
        }  // over-long keys cannot be present: kNotFound
        EncodeDeleteReply(&c->out, req.id, removed);
        st.replies_out.fetch_add(1, std::memory_order_relaxed);
        Touch(c);
        break;
      }
      case kOpScan: {
        st.scans.fetch_add(1, std::memory_order_relaxed);
        uint32_t limit =
            std::min(req.scan_limit, server->options_.max_scan_limit);
        esc_scratch.clear();
        EscapeKey(req.key, &esc_scratch);
        ScanReplyBuilder builder(&c->out, req.id);
        server->index_->ScanFrom(
            KeyRef(esc_scratch.data(), esc_scratch.size()), limit,
            [&](uint64_t id) {
              const RecordStore::Record& rec = server->store_.At(id);
              builder.Add(rec.raw_key(), rec.value);
            });
        builder.Finish();
        st.scan_items.fetch_add(builder.count, std::memory_order_relaxed);
        st.replies_out.fetch_add(1, std::memory_order_relaxed);
        Touch(c);
        break;
      }
    }
  }

  // End-of-iteration GET drain: one memory-level-parallel batched descent
  // over every GET parsed this iteration (across all connections), scalar
  // below the low-watermark or in forced-scalar mode.
  void DrainGets() {
    if (pending.empty()) return;
    AtomicStats& st = *server->stats_;
    const size_t n = pending.size();
    batch_keys.resize(n);
    for (size_t i = 0; i < n; ++i) {
      batch_keys[i] =
          KeyRef(arena.data() + pending[i].key_off, pending[i].key_len);
    }
    batch_out.assign(n, std::nullopt);
    unsigned watermark = std::max(2u, server->options_.batch_low_watermark);
    if (!server->force_scalar_.load(std::memory_order_relaxed) &&
        n >= watermark) {
      server->index_->LookupBatch(
          std::span<const KeyRef>(batch_keys.data(), n),
          std::span<std::optional<uint64_t>>(batch_out.data(), n));
      st.batch_drains.fetch_add(1, std::memory_order_relaxed);
      st.batched_gets.fetch_add(n, std::memory_order_relaxed);
      st.MaxBatch(n);
    } else {
      for (size_t i = 0; i < n; ++i) {
        batch_out[i] = server->index_->Lookup(batch_keys[i]);
      }
      st.scalar_drains.fetch_add(1, std::memory_order_relaxed);
      st.scalar_gets.fetch_add(n, std::memory_order_relaxed);
    }
    for (size_t i = 0; i < n; ++i) {
      Conn* c = pending[i].conn;
      if (c->dead) continue;  // peer gone before its answer materialized
      bool found = batch_out[i].has_value();
      uint64_t value =
          found ? server->store_.At(*batch_out[i]).value : uint64_t{0};
      EncodeGetReply(&c->out, pending[i].req_id, found, value);
      st.replies_out.fetch_add(1, std::memory_order_relaxed);
      Touch(c);
    }
    pending.clear();
    arena.clear();
  }

  void FlushOut(Conn* c) {
    while (c->out_off < c->out.size()) {
      ssize_t n = ::write(c->fd, c->out.data() + c->out_off,
                          c->out.size() - c->out_off);
      if (n > 0) {
        c->out_off += static_cast<size_t>(n);
        server->stats_->bytes_out.fetch_add(static_cast<uint64_t>(n),
                                            std::memory_order_relaxed);
      } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        SetEpollOut(c, true);
        MaybePause(c);
        return;
      } else if (n < 0 && errno == EINTR) {
        continue;
      } else {
        c->dead = true;
        return;
      }
    }
    c->out.clear();
    c->out_off = 0;
    SetEpollOut(c, false);
    if (c->want_close) {
      c->dead = true;
    } else {
      MaybePause(c);
    }
  }

  void SetEpollOut(Conn* c, bool enable) {
    if (c->epollout == enable) return;
    c->epollout = enable;
    UpdateEpoll(c);
  }

  // Backpressure: drop EPOLLIN while the reply backlog is above the high
  // watermark, restore it once the flush brings it under the low one.
  void MaybePause(Conn* c) {
    const ServerOptions& opt = server->options_;
    bool should_pause = c->pending_out() > opt.high_watermark;
    bool should_resume = c->pending_out() < opt.low_watermark;
    if (!c->paused && should_pause) {
      c->paused = true;
      UpdateEpoll(c);
    } else if (c->paused && should_resume) {
      c->paused = false;
      UpdateEpoll(c);
    }
  }

  void UpdateEpoll(Conn* c) {
    epoll_event ev{};
    ev.events = (c->paused ? 0u : EPOLLIN) | (c->epollout ? EPOLLOUT : 0u);
    ev.data.u64 = reinterpret_cast<uint64_t>(c);
    epoll_ctl(epoll_fd, EPOLL_CTL_MOD, c->fd, &ev);
  }

  void Reap() {
    for (size_t i = 0; i < conns.size();) {
      if (!conns[i]->dead) {
        ++i;
        continue;
      }
      Conn* c = conns[i].get();
      epoll_ctl(epoll_fd, EPOLL_CTL_DEL, c->fd, nullptr);
      ::close(c->fd);
      c->fd = -1;
      server->stats_->connections_closed.fetch_add(1,
                                                   std::memory_order_relaxed);
      conns[i] = std::move(conns.back());
      conns.pop_back();
    }
  }
};

// --- server lifecycle --------------------------------------------------------

KvServer::KvServer(ServerOptions options)
    : options_(std::move(options)), stats_(std::make_unique<AtomicStats>()) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.shards == 0) options_.shards = 1;
  force_scalar_.store(options_.force_scalar, std::memory_order_relaxed);
  index_ = std::make_unique<Index>(
      ycsb::UniformByteSplitters(options_.shards),
      RecordKeyExtractor(&store_));
}

KvServer::~KvServer() { Stop(); }

bool KvServer::Start(std::string* error) {
  auto fail = [&](const char* what) {
    if (error != nullptr) {
      *error = std::string(what) + ": " + strerror(errno);
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  if (started_.exchange(true)) {
    if (error != nullptr) *error = "server already started";
    return false;
  }
  // Recovery first: the image must be rebuilt and the WAL open before a
  // single connection can reach HandleFrame.
  if (!options_.data_dir.empty() && !RecoverAndOpenWal(error)) return false;
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return fail("socket");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return fail("inet_pton");
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return fail("bind");
  }
  if (listen(listen_fd_, 512) != 0) return fail("listen");
  socklen_t alen = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen) !=
      0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  running_.store(true, std::memory_order_release);
  for (unsigned w = 0; w < options_.workers; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->server = this;
    worker->id = w;
    if (!worker->Init()) {
      running_.store(false, std::memory_order_release);
      Stop();
      return fail("worker init");
    }
    workers_.push_back(std::move(worker));
  }
  // Worker 0 owns the listener.
  {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kTagListenFd;
    if (epoll_ctl(workers_[0]->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev) !=
        0) {
      running_.store(false, std::memory_order_release);
      Stop();
      return fail("epoll add listener");
    }
    workers_[0]->owns_listener = true;
  }
  for (auto& worker : workers_) {
    threads_.emplace_back([w = worker.get()]() { w->Run(); });
  }
  if (wal_ != nullptr && options_.snapshot_trigger_bytes > 0) {
    snapshot_thread_ = std::thread([this] { SnapshotLoop(); });
  }
  return true;
}

void KvServer::Stop() {
  bool was_running = running_.exchange(false, std::memory_order_acq_rel);
  if (was_running) {
    for (auto& worker : workers_) worker->Wake();
  }
  {
    std::lock_guard<std::mutex> lk(snapshot_wait_mu_);
    snapshot_cv_.notify_all();
  }
  if (snapshot_thread_.joinable()) snapshot_thread_.join();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  // Account connections the workers still held when they exited.
  for (auto& worker : workers_) {
    for (auto& c : worker->conns) {
      if (c->fd >= 0) {
        ::close(c->fd);
        c->fd = -1;
        stats_->connections_closed.fetch_add(1, std::memory_order_relaxed);
      }
    }
    worker->conns.clear();
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // After the workers: nothing appends anymore, so Close's final sync
  // flush makes every accepted-but-async write durable on clean shutdown.
  if (wal_ != nullptr) wal_->Close();
}

// --- durability --------------------------------------------------------------

bool KvServer::RecoverAndOpenWal(std::string* error) {
  namespace ps = persist;
  using Clock = std::chrono::steady_clock;

  auto t0 = Clock::now();
  ps::RecoveryResult rec;
  if (!ps::RecoverImage(options_.data_dir, &rec, error)) return false;
  auto t1 = Clock::now();

  // Refill the record store in merged (ascending-key) order: ids come out
  // 0..n-1, so the id sequence IS the key-sorted value sequence the bulk
  // build wants.
  const size_t n = rec.records.size();
  std::vector<uint64_t> ids;
  ids.reserve(n);
  for (const ps::RecoveredRecord& r : rec.records) {
    // Every record passed KeyFitsIndex when it was first accepted.
    assert(KeyFitsIndex(r.key_ref()));
    ids.push_back(store_.Append(r.key_ref(), r.value));
  }

  if (n > 0) {
    // Equi-depth splitters from the recovered escaped keys, so a skewed
    // key space (shared prefixes) redistributes instead of collapsing
    // into one shard of UniformByteSplitters.  Boundary keys must ascend
    // strictly; equal neighbors are skipped (fewer shards, still correct).
    ycsb::SplitterKeys splitters;
    for (unsigned s = 1; s < options_.shards; ++s) {
      KeyRef k = store_.At(ids[n * s / options_.shards]).escaped_key();
      if (!splitters.empty() &&
          KeyRef(splitters.back().data(), splitters.back().size())
                  .Compare(k) >= 0) {
        continue;
      }
      splitters.emplace_back(k.data(), k.data() + k.size());
    }
    if (!splitters.empty()) index_->Reshard(std::move(splitters));
    unsigned threads = options_.recovery_threads != 0
                           ? options_.recovery_threads
                           : std::max(1u, std::thread::hardware_concurrency());
    index_->BulkLoadSorted(std::span<const uint64_t>(ids.data(), n), threads);
  }
  auto t2 = Clock::now();

  recovery_.performed = true;
  recovery_.snapshot_loaded = rec.snapshot_loaded;
  recovery_.torn_tail = rec.torn_tail;
  recovery_.records = n;
  recovery_.snapshot_records = rec.snapshot_records;
  recovery_.wal_segments = rec.wal_segments;
  recovery_.wal_records_applied = rec.wal_records_applied;
  recovery_.wal_records_stale = rec.wal_records_stale;
  recovery_.last_lsn = rec.last_lsn;
  recovery_.recover_seconds = std::chrono::duration<double>(t1 - t0).count();
  recovery_.build_seconds = std::chrono::duration<double>(t2 - t1).count();

  ps::Wal::Options wopt;
  wopt.durability = options_.durability;
  wopt.flush_interval_ms = options_.wal_flush_ms;
  wal_ = std::make_unique<ps::Wal>();
  if (!wal_->Open(options_.data_dir, rec.resume, wopt, error)) {
    wal_.reset();
    return false;
  }
  return true;
}

bool KvServer::TriggerSnapshot(std::string* error) {
  if (wal_ == nullptr) {
    if (error != nullptr) *error = "server has no data_dir (volatile)";
    return false;
  }
  std::lock_guard<std::mutex> cycle(snapshot_mu_);
  auto fail = [&](const std::string& why) {
    stats_->snapshot_failures.fetch_add(1, std::memory_order_relaxed);
    if (error != nullptr) *error = why;
    return false;
  };

  // Rotate first: cut C = last LSN the old segments can contain.  Writes
  // landing during the scan go to the new segment (lsn > C) and replay
  // idempotently whether or not the scan saw them (persist/recovery.h).
  // All write stripes are held across the rotate so no op sits between
  // WAL append and index apply when C is taken: every lsn <= C is applied
  // before the scan below starts, so the snapshot + new segment really
  // cover everything once the old segments are pruned.  Writers stall for
  // the rotate (one flush + fsync), not for the scan.
  std::string err;
  uint64_t cut;
  {
    std::array<std::unique_lock<std::mutex>, kWriteStripes> quiesce;
    for (size_t i = 0; i < kWriteStripes; ++i) {
      quiesce[i] = std::unique_lock<std::mutex>(write_stripes_[i]);
    }
    cut = wal_->Rotate(&err);
  }
  if (!err.empty()) return fail("wal rotate: " + err);

  persist::SnapshotWriter writer;
  if (!writer.Open(persist::SnapshotPath(options_.data_dir), &err)) {
    return fail(err);
  }
  // Global ordered scan; per-shard epoch protection inside the index.  A
  // key upserted mid-scan contributes whichever record id the scan caught
  // — either version replays to the same final state.
  index_->ScanFrom(KeyRef(), std::numeric_limits<size_t>::max(),
                   [&](uint64_t id) {
                     const RecordStore::Record& r = store_.At(id);
                     writer.Add(r.raw_key(), r.value);
                   });
  if (!writer.Finish(cut, &err)) return fail(err);

  // Only after the rename is durable may the covered segments go.
  wal_->PruneBelowCurrent();
  stats_->snapshots_taken.fetch_add(1, std::memory_order_relaxed);
  stats_->snapshot_last_records.store(writer.count(),
                                      std::memory_order_relaxed);
  return true;
}

void KvServer::SnapshotLoop() {
  while (running_.load(std::memory_order_acquire)) {
    {
      std::unique_lock<std::mutex> lk(snapshot_wait_mu_);
      snapshot_cv_.wait_for(lk, std::chrono::milliseconds(100), [this] {
        return !running_.load(std::memory_order_acquire);
      });
    }
    if (!running_.load(std::memory_order_acquire)) break;
    if (wal_->segment_bytes() < options_.snapshot_trigger_bytes) continue;
    std::string err;
    (void)TriggerSnapshot(&err);  // failure counted; retried next trigger
  }
}

}  // namespace net
}  // namespace hot
