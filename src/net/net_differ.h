// Differential trace replay THROUGH THE PROTOCOL LAYER (the `net` fuzz
// arm): the same testing/trace.h traces the in-process differ executes
// against adapters are here driven through a loopback KvServer over real
// sockets, and every reply is diffed against the Patricia oracle.
//
// Scheduling mirrors the YCSB driver's batched-read grouping so the replay
// actually exercises the server's batch-drain path and its out-of-order
// completions: consecutive lookup ops are pipelined (sent without awaiting
// replies) up to `pipeline_width`, any other op first drains the pipeline.
// The oracle answer for a pipelined GET is computed AT SEND TIME — sound
// because only lookups sit in a pipeline window, so the oracle cannot
// change under it.  Replies are matched by request id, never arrival order.
//
// Audit ops diff the server's ENTIRE content against the oracle through
// chunked SCANs (resume from the last returned key, skipping keys <= it —
// the escape in net/record_store.h preserves raw-key order, so raw-key
// resumption is exact).
//
// Keys that the wire or the index rejects (raw length > kMaxKeyLen, or
// escaped form over the tries' limit) are part of the differential too:
// the server must answer kKeyTooLong and the oracle skips the op, keeping
// both sides in lockstep.

#ifndef HOT_NET_NET_DIFFER_H_
#define HOT_NET_NET_DIFFER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/extractors.h"
#include "common/key.h"
#include "net/client.h"
#include "net/record_store.h"
#include "net/server.h"
#include "patricia/patricia.h"
#include "testing/keyspace.h"
#include "testing/trace.h"

namespace hot {
namespace net {

struct NetDiffOptions {
  unsigned pipeline_width = 24;  // consecutive lookups per pipelined flush
  uint32_t scan_chunk = 512;     // audit full-scan chunk size
  ServerOptions server;          // shards / watermarks / scalar mode
};

struct NetDiffResult {
  bool ok = true;
  size_t ops_executed = 0;
  size_t failed_op = 0;
  std::string error;
  ServerStats stats;  // snapshot at completion (batch vs scalar evidence)

  std::string Describe() const {
    if (ok) return "ok after " + std::to_string(ops_executed) + " ops";
    std::ostringstream oss;
    oss << "FAIL at op " << failed_op << ": " << error;
    return oss.str();
  }
};

namespace net_detail {

template <typename Extractor>
class NetTraceRunner {
 public:
  NetTraceRunner(const testing::KeySpace& ks, const Extractor& extractor,
                 const NetDiffOptions& opts)
      : ks_(ks), extractor_(extractor), opts_(opts), oracle_(extractor) {}

  NetDiffResult Run(const testing::Trace& trace) {
    NetDiffResult res;
    const size_t n = ks_.size();
    if (n == 0) {
      res.error = "empty keyspace";
      res.ok = trace.ops.empty();
      return res;
    }
    KvServer server(opts_.server);
    std::string err;
    if (!server.Start(&err)) {
      res.ok = false;
      res.error = "server start: " + err;
      return res;
    }
    if (!client_.Connect("127.0.0.1", server.port(), &err)) {
      res.ok = false;
      res.error = "connect: " + err;
      return res;
    }
    for (size_t op_i = 0; op_i < trace.ops.size(); ++op_i) {
      testing::Op op = trace.ops[op_i];
      op.idx %= static_cast<uint32_t>(n);
      if (!Step(op, &err)) {
        res.ok = false;
        res.failed_op = op_i;
        res.error = err;
        res.ops_executed = op_i;
        res.stats = FinishStats(&server);
        return res;
      }
      ++res.ops_executed;
    }
    if (!DrainPipeline(&err)) {
      res.ok = false;
      res.failed_op = trace.ops.size();
      res.error = err;
    }
    res.stats = FinishStats(&server);
    return res;
  }

 private:
  ServerStats FinishStats(KvServer* server) {
    client_.Close();
    server->Stop();
    return server->StatsSnapshot();
  }

  KeyRef KeyAt(uint32_t idx, KeyScratch& scratch) const {
    return extractor_(ks_.ValueOf(idx), scratch);
  }

  static bool WireRejects(KeyRef key) {
    return key.size() > kMaxKeyLen || !KeyFitsIndex(key);
  }

  bool Fail(std::string* err, const std::string& msg) {
    *err = msg;
    return false;
  }

  // Expects `reply` (already matched by id) for a key the server must
  // reject; oracle state is untouched.
  bool DiffRejected(const Reply& reply, const char* what, std::string* err) {
    if (reply.status != kKeyTooLong) {
      return Fail(err, std::string(what) +
                           ": over-long key not answered kKeyTooLong "
                           "(status " +
                           std::to_string(reply.status) + ")");
    }
    return true;
  }

  bool Step(const testing::Op& op, std::string* err) {
    using testing::OpKind;
    KeyScratch scratch;
    switch (op.kind) {
      case OpKind::kLookup: {
        KeyRef key = KeyAt(op.idx, scratch);
        InFlight f;
        f.idx = op.idx;
        f.rejected = WireRejects(key);
        f.expected = f.rejected ? std::nullopt : oracle_.Lookup(key);
        uint64_t id = client_.SendGet(key);
        inflight_[id] = f;
        if (inflight_.size() >= opts_.pipeline_width) {
          return DrainPipeline(err);
        }
        return true;
      }
      case OpKind::kInsert:
      case OpKind::kUpsert: {
        if (!DrainPipeline(err)) return false;
        uint64_t v = ks_.ValueOf(op.idx);
        KeyRef key = KeyAt(op.idx, scratch);
        Reply reply;
        if (!client_.Put(key, v, &reply, err)) return false;
        if (WireRejects(key)) return DiffRejected(reply, "Put", err);
        bool inserted = oracle_.Insert(v);
        if (!reply.ok()) {
          return Fail(err, "Put(key " + std::to_string(op.idx) +
                               "): status " + std::to_string(reply.status) +
                               " " + reply.error);
        }
        if (reply.created != inserted) {
          return Fail(err, "Put(key " + std::to_string(op.idx) +
                               "): oracle created=" +
                               std::to_string(inserted) + ", server created=" +
                               std::to_string(reply.created));
        }
        if (!reply.created && reply.prev != v) {
          return Fail(err, "Put(key " + std::to_string(op.idx) +
                               "): replaced prev " +
                               std::to_string(reply.prev) + ", expected " +
                               std::to_string(v));
        }
        return true;
      }
      case OpKind::kRemove: {
        if (!DrainPipeline(err)) return false;
        KeyRef key = KeyAt(op.idx, scratch);
        Reply reply;
        if (!client_.Delete(key, &reply, err)) return false;
        if (WireRejects(key)) {
          // Wire-rejected deletes answer kNotFound (the key cannot be
          // present) or kKeyTooLong depending on which limit tripped.
          if (reply.status != kNotFound && reply.status != kKeyTooLong) {
            return Fail(err, "Delete(over-long key): status " +
                                 std::to_string(reply.status));
          }
          return true;
        }
        bool want = oracle_.Remove(key);
        bool got = reply.status == kOk;
        if (reply.status != kOk && reply.status != kNotFound) {
          return Fail(err, "Delete(key " + std::to_string(op.idx) +
                               "): status " + std::to_string(reply.status) +
                               " " + reply.error);
        }
        if (want != got) {
          return Fail(err, "Delete(key " + std::to_string(op.idx) +
                               "): oracle " + std::to_string(want) +
                               ", server " + std::to_string(got));
        }
        return true;
      }
      case OpKind::kLowerBound: {
        if (!DrainPipeline(err)) return false;
        KeyRef key = KeyAt(op.idx, scratch);
        if (WireRejects(key)) return true;  // no defined wire semantics
        Reply reply;
        if (!client_.Scan(key, 1, &reply, err)) return false;
        if (!reply.ok()) {
          return Fail(err, "LowerBound scan status " +
                               std::to_string(reply.status));
        }
        std::optional<uint64_t> want;
        oracle_.ScanFrom(key, [&](uint64_t v) {
          want = v;
          return false;
        });
        if (want.has_value() != !reply.scan.empty()) {
          return Fail(err, "LowerBound(key " + std::to_string(op.idx) +
                               "): oracle " +
                               (want ? std::to_string(*want) : "none") +
                               ", server " +
                               (reply.scan.empty()
                                    ? "none"
                                    : std::to_string(reply.scan[0].value)));
        }
        if (want && reply.scan[0].value != *want) {
          return Fail(err, "LowerBound(key " + std::to_string(op.idx) +
                               "): oracle value " + std::to_string(*want) +
                               ", server value " +
                               std::to_string(reply.scan[0].value));
        }
        if (want) {
          KeyScratch ws;
          KeyRef wk = extractor_(*want, ws);
          if (KeyRef(reply.scan[0].key).Compare(wk) != 0) {
            return Fail(err, "LowerBound(key " + std::to_string(op.idx) +
                                 "): server returned wrong key bytes");
          }
        }
        return true;
      }
      case OpKind::kScan:
        if (!DrainPipeline(err)) return false;
        return DiffScan(op, err);
      case OpKind::kBulkLoad: {
        if (!DrainPipeline(err)) return false;
        const std::vector<uint64_t>& sorted = ks_.SortedValues();
        size_t m = std::min<size_t>(op.arg ? op.arg : 1, sorted.size());
        for (size_t i = 0; i < m; ++i) {
          uint64_t v = sorted[i];
          KeyScratch s;
          KeyRef key = extractor_(v, s);
          Reply reply;
          if (!client_.Put(key, v, &reply, err)) return false;
          if (WireRejects(key)) {
            if (!DiffRejected(reply, "BulkLoad Put", err)) return false;
            continue;
          }
          bool inserted = oracle_.Insert(v);
          if (!reply.ok() || reply.created != inserted) {
            return Fail(err, "BulkLoad-as-Put diverged at sorted value " +
                                 std::to_string(i));
          }
        }
        return true;
      }
      case OpKind::kAudit:
        if (!DrainPipeline(err)) return false;
        return Audit(err);
    }
    return Fail(err, "unreachable op kind");
  }

  bool DrainPipeline(std::string* err) {
    if (inflight_.empty()) return true;
    if (!client_.Flush(err)) return false;
    size_t want = inflight_.size();
    for (size_t i = 0; i < want; ++i) {
      Reply reply;
      if (!client_.ReadReply(&reply, err)) return false;
      auto it = inflight_.find(reply.id);
      if (it == inflight_.end()) {
        return Fail(err, "reply for unknown request id " +
                             std::to_string(reply.id));
      }
      const InFlight& f = it->second;
      if (f.rejected) {
        if (!DiffRejected(reply, "Get", err)) return false;
      } else if (reply.status == kOk) {
        if (!f.expected || *f.expected != reply.value) {
          return Fail(err,
                      "Get(key " + std::to_string(f.idx) + "): oracle " +
                          (f.expected ? std::to_string(*f.expected) : "none") +
                          ", server " + std::to_string(reply.value));
        }
      } else if (reply.status == kNotFound) {
        if (f.expected) {
          return Fail(err, "Get(key " + std::to_string(f.idx) +
                               "): oracle " + std::to_string(*f.expected) +
                               ", server miss");
        }
      } else {
        return Fail(err, "Get(key " + std::to_string(f.idx) + "): status " +
                             std::to_string(reply.status) + " " + reply.error);
      }
      inflight_.erase(it);
    }
    if (!inflight_.empty()) {
      return Fail(err, "pipeline drain left " +
                           std::to_string(inflight_.size()) +
                           " requests unanswered");
    }
    return true;
  }

  bool DiffScan(const testing::Op& op, std::string* err) {
    KeyScratch scratch;
    KeyRef key = KeyAt(op.idx, scratch);
    if (WireRejects(key)) return true;
    uint32_t limit = std::min<uint32_t>(
        op.arg ? op.arg : 1, opts_.server.max_scan_limit);
    Reply reply;
    if (!client_.Scan(key, limit, &reply, err)) return false;
    if (!reply.ok()) {
      return Fail(err, "Scan status " + std::to_string(reply.status) + " " +
                           reply.error);
    }
    std::vector<uint64_t> want;
    oracle_.ScanFrom(key, [&](uint64_t v) {
      want.push_back(v);
      return want.size() < limit;
    });
    return DiffScanResults(want, reply.scan, "Scan(key " +
                                                 std::to_string(op.idx) + ")",
                           err);
  }

  bool DiffScanResults(const std::vector<uint64_t>& want,
                       const std::vector<ScanEntry>& got,
                       const std::string& what, std::string* err) {
    if (want.size() != got.size()) {
      return Fail(err, what + ": oracle " + std::to_string(want.size()) +
                           " values, server " + std::to_string(got.size()));
    }
    for (size_t i = 0; i < want.size(); ++i) {
      if (got[i].value != want[i]) {
        return Fail(err, what + ": first diff at position " +
                             std::to_string(i) + ": oracle " +
                             std::to_string(want[i]) + ", server " +
                             std::to_string(got[i].value));
      }
      KeyScratch ws;
      KeyRef wk = extractor_(want[i], ws);
      if (KeyRef(got[i].key).Compare(wk) != 0) {
        return Fail(err, what + ": key bytes diverge at position " +
                             std::to_string(i));
      }
    }
    return true;
  }

  // Full-content differential via chunked scans with raw-key resumption.
  bool Audit(std::string* err) {
    std::vector<uint64_t> want;
    want.reserve(oracle_.size());
    oracle_.ScanFrom(KeyRef(), [&](uint64_t v) {
      want.push_back(v);
      return true;
    });
    std::vector<ScanEntry> got;
    std::string last;
    bool first = true;
    while (true) {
      Reply reply;
      KeyRef start = first ? KeyRef() : KeyRef(last);
      if (!client_.Scan(start, opts_.scan_chunk, &reply, err)) return false;
      if (!reply.ok()) {
        return Fail(err, "audit scan status " +
                             std::to_string(reply.status) + " " + reply.error);
      }
      size_t fresh = 0;
      for (ScanEntry& e : reply.scan) {
        // Resumption re-delivers keys <= last; drop them.
        if (!first && KeyRef(e.key).Compare(KeyRef(last)) <= 0) continue;
        got.push_back(std::move(e));
        ++fresh;
      }
      if (reply.scan.size() < opts_.scan_chunk) break;  // exhausted
      if (fresh == 0) {
        return Fail(err, "audit scan failed to advance past resume key");
      }
      last = got.back().key;
      first = false;
    }
    return DiffScanResults(want, got, "audit full-scan", err);
  }

  struct InFlight {
    uint32_t idx = 0;
    bool rejected = false;
    std::optional<uint64_t> expected;
  };

  const testing::KeySpace& ks_;
  Extractor extractor_;
  NetDiffOptions opts_;
  PatriciaTrie<Extractor> oracle_;
  KvClient client_;
  std::map<uint64_t, InFlight> inflight_;
};

}  // namespace net_detail

// Replays `trace` through a loopback KvServer against the Patricia oracle.
inline NetDiffResult RunTraceOverNet(const testing::Trace& trace,
                                     const NetDiffOptions& opts = {}) {
  testing::KeySpace ks = trace.BuildKeys();
  if (ks.is_string) {
    StringTableExtractor ex(&ks.strings);
    net_detail::NetTraceRunner<StringTableExtractor> runner(ks, ex, opts);
    return runner.Run(trace);
  }
  U64KeyExtractor ex;
  net_detail::NetTraceRunner<U64KeyExtractor> runner(ks, ex, opts);
  return runner.Run(trace);
}

}  // namespace net
}  // namespace hot

#endif  // HOT_NET_NET_DIFFER_H_
