// Append-only record storage behind the network KV front-end, plus the
// order-preserving escape that maps arbitrary wire keys onto the tries'
// prefix-free key space.
//
// The tries in this repository store 63-bit values and re-derive key bytes
// through a KeyExtractor (common/extractors.h).  The server therefore keeps
// every PUT as an immutable record { raw wire key, escaped trie key, u64
// value } in an append-only arena and indexes the RECORD ID: the extractor
// returns the escaped key bytes owned by the record, GET resolves id ->
// value, SCAN resolves id -> (raw key, value).  Overwrites and deletes
// leave the superseded record behind (log-structured; reclaiming dead
// records is future work — ServerStats reports live vs appended so the
// growth is visible).
//
// Key escape.  Trie keys must be prefix-free (common/key.h); wire keys are
// arbitrary bytes, so "append a terminator" alone is not enough ("a\0" vs
// "a\0\0").  EscapeKey uses the classic memcomparable encoding:
//
//   0x00        ->  0x00 0x01
//   terminator  ->  0x00 0x00
//
// The image is prefix-free (0x00 0x00 can only appear as the terminator)
// and the map preserves lexicographic order, so escaped-key order equals
// raw-key order and ordered scans over escaped keys yield raw keys in raw
// order.  Escaped length is raw_len + (#0x00 bytes) + 2; keys whose escaped
// form exceeds hot::kMaxKeyBytes are rejected before touching the index
// (protocol kKeyTooLong).
//
// Concurrency: appends take a mutex (PUT throughput is bounded by the
// trie's COW writers anyway); reads are lock-free.  A reader only ever
// resolves ids it obtained from the index, and the record's bytes are fully
// written before the id is published through the trie's release store, so
// the index's own acquire/release synchronization carries the record's
// visibility (the chunk directory uses acquire/release atomics for the same
// reason — a reader may enter a chunk its own thread never saw appended).

#ifndef HOT_NET_RECORD_STORE_H_
#define HOT_NET_RECORD_STORE_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "common/extractors.h"
#include "common/key.h"
#include "hot/node.h"  // kMaxKeyBytes

namespace hot {
namespace net {

// Appends the escaped (prefix-free, order-preserving) form of `raw` to
// *out.  Returns the number of bytes appended.
inline size_t EscapeKey(KeyRef raw, std::vector<uint8_t>* out) {
  size_t before = out->size();
  for (size_t i = 0; i < raw.size(); ++i) {
    uint8_t b = raw.data()[i];
    out->push_back(b);
    if (b == 0x00) out->push_back(0x01);
  }
  out->push_back(0x00);
  out->push_back(0x00);
  return out->size() - before;
}

// Escaped length without materializing: raw length + embedded NULs + 2.
inline size_t EscapedKeyLength(KeyRef raw) {
  size_t nuls = 0;
  for (size_t i = 0; i < raw.size(); ++i) {
    if (raw.data()[i] == 0x00) ++nuls;
  }
  return raw.size() + nuls + 2;
}

// Whether `raw` may be indexed at all (escaped form fits the tries'
// kMaxKeyBytes bound).
inline bool KeyFitsIndex(KeyRef raw) {
  return EscapedKeyLength(raw) <= kMaxKeyBytes;
}

class RecordStore {
 public:
  struct Record {
    uint64_t value;
    uint32_t raw_len;
    uint32_t esc_len;
    const uint8_t* bytes;  // raw_len raw bytes then esc_len escaped bytes

    KeyRef raw_key() const { return KeyRef(bytes, raw_len); }
    KeyRef escaped_key() const { return KeyRef(bytes + raw_len, esc_len); }
  };

  RecordStore() = default;
  RecordStore(const RecordStore&) = delete;
  RecordStore& operator=(const RecordStore&) = delete;

  // Appends one record; returns its id (dense, starting at 0, < 2^63 —
  // valid as a trie value).  `raw` must satisfy KeyFitsIndex.
  uint64_t Append(KeyRef raw, uint64_t value) {
    assert(KeyFitsIndex(raw));
    std::lock_guard<std::mutex> guard(append_mu_);
    uint64_t id = size_.load(std::memory_order_relaxed);
    size_t chunk = static_cast<size_t>(id / kChunkRecords);
    assert(chunk < kMaxChunks && "RecordStore capacity exhausted");
    Chunk* c = chunks_[chunk].load(std::memory_order_relaxed);
    if (c == nullptr) {
      c = new Chunk();
      chunks_[chunk].store(c, std::memory_order_release);
    }
    Record& rec = c->records[id % kChunkRecords];
    // Key bytes live in the chunk-local byte arena when they fit, else in
    // their own allocation; either way the pointer never moves afterwards.
    size_t esc_len = EscapedKeyLength(raw);
    size_t need = raw.size() + esc_len;
    uint8_t* dst;
    if (c->bytes_used + need <= kChunkBytes) {
      dst = c->bytes + c->bytes_used;
      c->bytes_used += need;
    } else {
      c->overflow.push_back(std::make_unique<uint8_t[]>(need));
      dst = c->overflow.back().get();
    }
    if (raw.size() != 0) std::memcpy(dst, raw.data(), raw.size());
    std::vector<uint8_t> esc;
    esc.reserve(esc_len);
    EscapeKey(raw, &esc);
    std::memcpy(dst + raw.size(), esc.data(), esc.size());
    rec.value = value;
    rec.raw_len = static_cast<uint32_t>(raw.size());
    rec.esc_len = static_cast<uint32_t>(esc.size());
    rec.bytes = dst;
    size_.store(id + 1, std::memory_order_relaxed);
    bytes_.fetch_add(need, std::memory_order_relaxed);
    return id;
  }

  // Lock-free; `id` must come from a successful Append whose publication
  // the caller observed (typically through the index).
  const Record& At(uint64_t id) const {
    const Chunk* c = chunks_[static_cast<size_t>(id / kChunkRecords)].load(
        std::memory_order_acquire);
    return c->records[id % kChunkRecords];
  }

  // Appended record count / key-byte footprint (quiescent-only exactness).
  uint64_t appended() const { return size_.load(std::memory_order_relaxed); }
  uint64_t key_bytes() const { return bytes_.load(std::memory_order_relaxed); }

  ~RecordStore() {
    for (auto& slot : chunks_) {
      delete slot.load(std::memory_order_relaxed);
    }
  }

 private:
  static constexpr size_t kChunkRecords = 1u << 14;  // 16K records per chunk
  static constexpr size_t kChunkBytes = kChunkRecords * 64;
  static constexpr size_t kMaxChunks = 1u << 16;  // 2^30 records total

  struct Chunk {
    Record records[kChunkRecords];
    uint8_t bytes[kChunkBytes];
    size_t bytes_used = 0;
    std::vector<std::unique_ptr<uint8_t[]>> overflow;
  };

  std::mutex append_mu_;
  std::atomic<Chunk*> chunks_[kMaxChunks] = {};
  std::atomic<uint64_t> size_{0};
  std::atomic<uint64_t> bytes_{0};
};

// KeyExtractor over record ids: the indexed key of record `id` is its
// escaped key, whose bytes the record owns for the store's lifetime.
class RecordKeyExtractor {
 public:
  RecordKeyExtractor() : store_(nullptr) {}
  explicit RecordKeyExtractor(const RecordStore* store) : store_(store) {}

  KeyRef operator()(uint64_t id, KeyScratch&) const {
    return store_->At(id).escaped_key();
  }

  const RecordStore* store() const { return store_; }

 private:
  const RecordStore* store_;
};

}  // namespace net
}  // namespace hot

#endif  // HOT_NET_RECORD_STORE_H_
