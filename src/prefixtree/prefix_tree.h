// Generalized prefix tree with a static span (paper §2, Fig. 2c).
//
// The classic fixed-span trie: every inner node is an array of 2^s child
// slots and consumes s key bits.  It is the motivating strawman for HOT —
// its fanout, height and memory depend entirely on how the static span
// interacts with the key distribution — and feeds the span ablation bench
// (bench/ablation_span), which contrasts s ∈ {1,2,4,8} against ART's
// adaptive nodes and HOT's adaptive span.
//
// Leaves are tagged 63-bit tuple identifiers; chains to a single leaf are
// terminated eagerly (lazy expansion), as any practical implementation
// does — without it a span-1 tree over 64-bit keys would always be 64 deep.

#ifndef HOT_PREFIXTREE_PREFIX_TREE_H_
#define HOT_PREFIXTREE_PREFIX_TREE_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <functional>
#include <optional>

#include "common/alloc.h"
#include "common/extractors.h"
#include "common/key.h"

namespace hot {

template <typename KeyExtractor>
class PrefixTree {
 public:
  // `span_bits` in [1, 8].
  explicit PrefixTree(unsigned span_bits,
                      KeyExtractor extractor = KeyExtractor(),
                      MemoryCounter* counter = nullptr)
      : span_(span_bits),
        fanout_(1u << span_bits),
        extractor_(extractor),
        alloc_(counter),
        root_(kEmpty) {
    assert(span_bits >= 1 && span_bits <= 8);
  }

  ~PrefixTree() { ClearRec(root_); }

  PrefixTree(const PrefixTree&) = delete;
  PrefixTree& operator=(const PrefixTree&) = delete;

  bool Insert(uint64_t value) {
    KeyScratch scratch;
    KeyRef key = extractor_(value, scratch);
    return InsertRec(&root_, key, value, 0);
  }

  std::optional<uint64_t> Lookup(KeyRef key) const {
    uint64_t cur = root_;
    unsigned depth = 0;
    while (IsNode(cur)) {
      cur = AsNode(cur)[Chunk(key, depth)];
      ++depth;
    }
    if (cur == kEmpty) return std::nullopt;
    KeyScratch scratch;
    uint64_t payload = TidPayload(cur);
    if (extractor_(payload, scratch) == key) return payload;
    return std::nullopt;
  }

  size_t size() const { return size_; }

  void ForEachLeaf(
      const std::function<void(unsigned depth, uint64_t value)>& fn) const {
    LeafRec(root_, 0, fn);
  }

  MemoryCounter* counter() const { return alloc_.counter(); }

 private:
  static constexpr uint64_t kEmpty = 0;
  static constexpr uint64_t kTidBit = 1ULL << 63;

  static bool IsTid(uint64_t e) { return (e & kTidBit) != 0; }
  static bool IsNode(uint64_t e) { return e != kEmpty && !IsTid(e); }
  static uint64_t TidPayload(uint64_t e) { return e & ~kTidBit; }
  static uint64_t* AsNode(uint64_t e) {
    return reinterpret_cast<uint64_t*>(static_cast<uintptr_t>(e));
  }

  // The `depth`-th span-sized bit chunk of the key (zero padded).
  unsigned Chunk(KeyRef key, unsigned depth) const {
    unsigned first_bit = depth * span_;
    unsigned chunk = 0;
    for (unsigned b = 0; b < span_; ++b) {
      chunk = (chunk << 1) | key.Bit(first_bit + b);
    }
    return chunk;
  }

  uint64_t* NewNode() {
    size_t bytes = sizeof(uint64_t) * fanout_;
    auto* node =
        static_cast<uint64_t*>(alloc_.AllocateAligned(bytes, sizeof(uint64_t)));
    std::memset(node, 0, bytes);
    return node;
  }

  bool InsertRec(uint64_t* slot, KeyRef key, uint64_t value, unsigned depth) {
    if (*slot == kEmpty) {
      *slot = value | kTidBit;
      ++size_;
      return true;
    }
    if (IsTid(*slot)) {
      KeyScratch scratch;
      uint64_t existing = TidPayload(*slot);
      KeyRef existing_key = extractor_(existing, scratch);
      if (existing_key == key) return false;
      // Expand: push the existing leaf down one level and retry.
      uint64_t* node = NewNode();
      node[Chunk(existing_key, depth)] = *slot;
      *slot = reinterpret_cast<uintptr_t>(node);
      return InsertRec(&node[Chunk(key, depth)], key, value, depth + 1);
    }
    return InsertRec(&AsNode(*slot)[Chunk(key, depth)], key, value, depth + 1);
  }

  void LeafRec(uint64_t entry, unsigned depth,
               const std::function<void(unsigned, uint64_t)>& fn) const {
    if (entry == kEmpty) return;
    if (IsTid(entry)) {
      fn(depth, TidPayload(entry));
      return;
    }
    uint64_t* node = AsNode(entry);
    for (unsigned c = 0; c < fanout_; ++c) LeafRec(node[c], depth + 1, fn);
  }

  void ClearRec(uint64_t entry) {
    if (!IsNode(entry)) return;
    uint64_t* node = AsNode(entry);
    for (unsigned c = 0; c < fanout_; ++c) ClearRec(node[c]);
    alloc_.FreeAligned(node, sizeof(uint64_t) * fanout_, sizeof(uint64_t));
  }

  unsigned span_;
  unsigned fanout_;
  KeyExtractor extractor_;
  mutable CountingAllocator alloc_;
  uint64_t root_;
  size_t size_ = 0;
};

}  // namespace hot

#endif  // HOT_PREFIXTREE_PREFIX_TREE_H_
