// Lock primitives for the ROWEX synchronization protocol (paper §5).
//
// Each HOT node carries a RowexLockWord in its header: a spin bit taken by
// writers for the duration of a structural modification, and an "obsolete"
// bit set when a copy-on-write replacement supersedes the node.  Readers
// never touch the lock (they are wait-free); writers lock the affected nodes
// bottom-up, validate that none is obsolete, mutate, and unlock top-down.

#ifndef HOT_COMMON_LOCKS_H_
#define HOT_COMMON_LOCKS_H_

#include <atomic>
#include <cstdint>
#include <thread>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace hot {

inline void CpuRelax() {
#if defined(__x86_64__)
  _mm_pause();
#endif
}

// One byte: writers spin on bit 0, bit 1 marks the node obsolete.  Kept to
// a single byte so the HOT node header has room for precomputed layout
// fields on the read path.
class RowexLockWord {
 public:
  static constexpr uint8_t kLockedBit = 1u << 0;
  static constexpr uint8_t kObsoleteBit = 1u << 1;

  void Lock() {
    // Bounded spin, then yield: when threads outnumber cores (the service
    // front-end's oversubscribed workers, CI runners), a holder preempted
    // mid-critical-section must get CPU time back from the spinners or the
    // whole shard convoys for a scheduler quantum per waiter.  Short
    // critical sections still acquire within the pause phase.
    unsigned spins = 0;
    for (;;) {
      uint8_t cur = word_.load(std::memory_order_relaxed);
      if ((cur & kLockedBit) == 0 &&
          word_.compare_exchange_weak(cur, cur | kLockedBit,
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
        return;
      }
      if (++spins < kSpinsBeforeYield) {
        CpuRelax();
      } else {
        spins = 0;
        std::this_thread::yield();
      }
    }
  }

  void Unlock() {
    word_.fetch_and(static_cast<uint8_t>(~kLockedBit),
                    std::memory_order_release);
  }

  // Marks the node replaced; must hold the lock.
  void MarkObsolete() {
    word_.fetch_or(kObsoleteBit, std::memory_order_release);
  }

  bool IsObsolete() const {
    return (word_.load(std::memory_order_acquire) & kObsoleteBit) != 0;
  }

  bool IsLocked() const {
    return (word_.load(std::memory_order_acquire) & kLockedBit) != 0;
  }

 private:
  static constexpr unsigned kSpinsBeforeYield = 128;

  std::atomic<uint8_t> word_{0};
};

}  // namespace hot

#endif  // HOT_COMMON_LOCKS_H_
