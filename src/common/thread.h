// Thread identity and placement helpers for the thread-affine sharding and
// thread-local allocation paths.
//
// CurrentThreadIndex() hands every OS thread a small dense id (0, 1, 2, ...)
// on first use.  The id is process-global and never reused, so striped
// structures (hot/node_pool.h thread arenas, per-thread scratch) can map a
// thread to a stripe with one modulo and no registration protocol.  Dense
// beats std::this_thread::get_id() hashing: consecutively spawned workers
// land on distinct stripes instead of colliding pseudo-randomly.
//
// PinThreadToCpu() is the NUMA/affinity lever: a worker pinned to one CPU
// first-touches its arena pages there, so the kernel places them on that
// socket's memory node and every later access stays local.  Pinning is
// best-effort — on kernels/boxes where the syscall is unavailable (or with
// fewer CPUs than workers) it returns false and the caller proceeds
// unpinned; correctness never depends on placement.

#ifndef HOT_COMMON_THREAD_H_
#define HOT_COMMON_THREAD_H_

#include <atomic>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace hot {

// Dense process-wide thread index, assigned on first call per thread.
inline unsigned CurrentThreadIndex() {
  static std::atomic<unsigned> next{0};
  thread_local unsigned id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// Best-effort pinning of the calling thread to `cpu` (modulo the number of
// CPUs actually online).  Returns true if the affinity mask was applied.
inline bool PinThreadToCpu(unsigned cpu) {
#if defined(__linux__)
  unsigned ncpus = std::thread::hardware_concurrency();
  if (ncpus == 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % ncpus, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace hot

#endif  // HOT_COMMON_THREAD_H_
