// Key extractors: how an index turns a stored 63-bit tuple identifier back
// into the indexed key bytes.
//
// Like the paper (§6.1), every index stores 64-bit tuple identifiers.  The
// final step of a lookup loads the key behind the candidate tid and compares
// it with the search key (Listing 2, line 7) — a Patricia trie may otherwise
// return false positives.  A KeyExtractor encapsulates that load:
//
//   concept KeyExtractor {
//     KeyRef operator()(uint64_t value, KeyScratch& scratch) const;
//   }
//
// `value` is the tid *payload* (MSB already stripped).  The returned KeyRef
// must stay valid while `scratch` lives (the extractor may materialize the
// key into the scratch buffer, as the integer extractor does) or reference
// storage owned elsewhere (as the string-table extractor does).

#ifndef HOT_COMMON_EXTRACTORS_H_
#define HOT_COMMON_EXTRACTORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/key.h"

namespace hot {

// Scratch space an extractor may use to materialize a key.
struct KeyScratch {
  uint8_t bytes[32];
};

// For integer data sets the paper embeds keys up to 8 bytes directly in the
// tuple identifier (§6.1); this extractor re-encodes the embedded 63-bit
// integer as a big-endian byte string.
struct U64KeyExtractor {
  KeyRef operator()(uint64_t value, KeyScratch& scratch) const {
    EncodeU64(value, scratch.bytes);
    return KeyRef(scratch.bytes, 8);
  }
};

// For string data sets the tid indexes a table of records.  The returned
// view includes one 0x00 terminator byte beyond the string contents —
// std::string guarantees data()[size()] == '\0', so the view is valid — and
// thereby satisfies the prefix-free requirement (no string with embedded
// NULs may be indexed).
class StringTableExtractor {
 public:
  StringTableExtractor() : table_(nullptr) {}
  explicit StringTableExtractor(const std::vector<std::string>* table)
      : table_(table) {}

  KeyRef operator()(uint64_t value, KeyScratch&) const {
    const std::string& s = (*table_)[value];
    return KeyRef(reinterpret_cast<const uint8_t*>(s.data()), s.size() + 1);
  }

  const std::vector<std::string>* table() const { return table_; }

 private:
  const std::vector<std::string>* table_;
};

// Returns a terminated view of `s` (includes the trailing NUL).  Search keys
// built from std::string should use this so they compare equal to keys
// produced by StringTableExtractor.
inline KeyRef TerminatedView(const std::string& s) {
  return KeyRef(reinterpret_cast<const uint8_t*>(s.data()), s.size() + 1);
}

}  // namespace hot

#endif  // HOT_COMMON_EXTRACTORS_H_
