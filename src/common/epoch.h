// Epoch-based memory reclamation (paper §5).
//
// ROWEX writers replace nodes copy-on-write and mark the old versions
// obsolete instead of freeing them, because wait-free readers may still be
// traversing them.  Obsolete nodes are retired into per-thread limbo lists
// stamped with the global epoch; a retired node is physically freed once
// every registered thread has been observed in a later epoch (or quiescent).
//
// Usage:
//   EpochManager epochs;
//   {
//     EpochGuard guard(&epochs);        // pins the current epoch
//     ... read or modify the tree ...
//     epochs.Retire(ptr, deleter);      // defer free of a replaced node
//   }                                    // unpins; may trigger collection
//
// The design follows the classic three-epoch scheme (Fraser; also used by
// Masstree and the Bw-tree): collection only needs e_global to have advanced
// twice past the retire epoch.

#ifndef HOT_COMMON_EPOCH_H_
#define HOT_COMMON_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace hot {

class EpochManager {
 public:
  static constexpr uint64_t kIdle = ~0ULL;
  static constexpr size_t kMaxThreads = 256;

  EpochManager() {
    for (auto& slot : slots_) {
      slot.epoch.store(kIdle, std::memory_order_relaxed);
      slot.used.store(false, std::memory_order_relaxed);
    }
  }

  ~EpochManager() { CollectAll(); }

  // Registers the calling thread (idempotent) and returns its slot index.
  // Identity is checked via a process-unique manager id, not the address:
  // a new manager may be constructed at a previous one's address, which
  // must not revive stale registrations.
  size_t RegisterThread() {
    thread_local ThreadRegistration reg;
    if (reg.manager != this || reg.manager_id != id_) {
      size_t idx = AcquireSlot();
      reg.manager = this;
      reg.manager_id = id_;
      reg.slot = idx;
    }
    return reg.slot;
  }

  void Enter() {
    size_t slot = RegisterThread();
    uint64_t e = global_epoch_.load(std::memory_order_acquire);
    slots_[slot].epoch.store(e, std::memory_order_release);
    // Re-read to close the race where the global epoch advanced between the
    // load and the store; one retry suffices because we are now visible.
    uint64_t e2 = global_epoch_.load(std::memory_order_acquire);
    if (e2 != e) slots_[slot].epoch.store(e2, std::memory_order_release);
  }

  void Leave() {
    size_t slot = RegisterThread();
    slots_[slot].epoch.store(kIdle, std::memory_order_release);
    MaybeCollect(slot);
  }

  // Defers destruction of `ptr` until no thread can still observe it.
  void Retire(void* ptr, void (*deleter)(void*)) {
    size_t slot = RegisterThread();
    auto& local = limbo_[slot];
    local.items.push_back(
        {ptr, deleter, global_epoch_.load(std::memory_order_acquire)});
    if (local.items.size() >= kCollectThreshold) {
      AdvanceEpoch();
    }
  }

  // Frees every retired object whose epoch is at least two epochs old.
  // Called automatically from Leave(); exposed for tests.
  void Collect(size_t slot) {
    uint64_t min_active = MinActiveEpoch();
    auto& local = limbo_[slot];
    size_t kept = 0;
    for (size_t i = 0; i < local.items.size(); ++i) {
      const auto& item = local.items[i];
      if (item.epoch + 2 <= min_active || min_active == kIdle) {
        item.deleter(item.ptr);
      } else {
        local.items[kept++] = item;
      }
    }
    local.items.resize(kept);
  }

  // Frees everything unconditionally.  Only safe when no thread is inside an
  // epoch (e.g. destruction, single-threaded tests).
  void CollectAll() {
    for (size_t s = 0; s < kMaxThreads; ++s) {
      for (const auto& item : limbo_[s].items) item.deleter(item.ptr);
      limbo_[s].items.clear();
    }
  }

  uint64_t global_epoch() const {
    return global_epoch_.load(std::memory_order_relaxed);
  }

  size_t RetiredCount() const {
    size_t n = 0;
    for (size_t s = 0; s < kMaxThreads; ++s) n += limbo_[s].items.size();
    return n;
  }

 private:
  struct Slot {
    std::atomic<uint64_t> epoch;
    std::atomic<bool> used;
    char padding[48];  // avoid false sharing between per-thread slots
  };

  struct Retired {
    void* ptr;
    void (*deleter)(void*);
    uint64_t epoch;
  };

  struct LimboList {
    std::vector<Retired> items;
    char padding[24];
  };

  struct ThreadRegistration {
    EpochManager* manager = nullptr;
    uint64_t manager_id = 0;
    size_t slot = 0;
  };

  static uint64_t NextManagerId() {
    static std::atomic<uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
  }

  static constexpr size_t kCollectThreshold = 128;

  size_t AcquireSlot() {
    for (size_t i = 0; i < kMaxThreads; ++i) {
      bool expected = false;
      if (!slots_[i].used.load(std::memory_order_relaxed) &&
          slots_[i].used.compare_exchange_strong(expected, true)) {
        return i;
      }
    }
    // More threads than slots: fall back to slot 0 (correct but contended).
    return 0;
  }

  void AdvanceEpoch() {
    global_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

  uint64_t MinActiveEpoch() const {
    uint64_t min = kIdle;
    for (size_t i = 0; i < kMaxThreads; ++i) {
      if (!slots_[i].used.load(std::memory_order_relaxed)) continue;
      uint64_t e = slots_[i].epoch.load(std::memory_order_acquire);
      if (e != kIdle && e < min) min = e;
    }
    if (min == kIdle) {
      // No thread is pinned: everything up to the current epoch is safe.
      return global_epoch_.load(std::memory_order_acquire) + 2;
    }
    return min;
  }

  void MaybeCollect(size_t slot) {
    if (limbo_[slot].items.size() >= kCollectThreshold / 2) {
      AdvanceEpoch();
      Collect(slot);
    }
  }

  const uint64_t id_ = NextManagerId();
  std::atomic<uint64_t> global_epoch_{1};
  Slot slots_[kMaxThreads];
  LimboList limbo_[kMaxThreads];
};

// RAII epoch pin for readers and writers.
class EpochGuard {
 public:
  explicit EpochGuard(EpochManager* manager) : manager_(manager) {
    manager_->Enter();
  }
  ~EpochGuard() { manager_->Leave(); }

  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochManager* manager_;
};

}  // namespace hot

#endif  // HOT_COMMON_EPOCH_H_
