// Epoch-based memory reclamation (paper §5).
//
// ROWEX writers replace nodes copy-on-write and mark the old versions
// obsolete instead of freeing them, because wait-free readers may still be
// traversing them.  Obsolete nodes are retired into per-thread limbo lists
// stamped with the global epoch; a retired node is physically freed once
// every registered thread has been observed in a later epoch (or quiescent).
//
// Usage:
//   EpochManager epochs;
//   {
//     EpochGuard guard(&epochs);        // pins the current epoch
//     ... read or modify the tree ...
//     epochs.Retire(ptr, deleter);      // defer free of a replaced node
//   }                                    // unpins; may trigger collection
//
// The design follows the classic three-epoch scheme (Fraser; also used by
// Masstree and the Bw-tree): collection only needs e_global to have advanced
// twice past the retire epoch.
//
// Thread registration: each thread lazily claims one of kMaxThreads epoch
// slots per manager and releases it when the thread exits (the release is
// routed through a process-wide table of live managers, so a thread that
// outlives a manager never touches freed slots).  When every slot is taken,
// additional threads block in AcquireSlot until a registered thread exits —
// never sharing a slot, since two threads pinning through one slot could
// each overwrite the other's pin and allow premature reclamation.
//
// Guards nest: a per-slot depth counter makes only the outermost
// Enter/Leave pair pin/unpin, so an inner guard cannot clobber the epoch an
// outer guard still depends on.
//
// Destruction requires quiescence: no thread may be inside Enter/Leave or
// blocked in AcquireSlot while the manager is destroyed (threads may still
// *exit* later; their slot release checks the live-manager table).

#ifndef HOT_COMMON_EPOCH_H_
#define HOT_COMMON_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "obs/stat_counter.h"

namespace hot {

class EpochManager {
 public:
  static constexpr uint64_t kIdle = ~0ULL;
  static constexpr size_t kMaxThreads = 256;

  EpochManager() {
    for (auto& slot : slots_) {
      slot.epoch.store(kIdle, std::memory_order_relaxed);
      slot.used.store(false, std::memory_order_relaxed);
      slot.depth.store(0, std::memory_order_relaxed);
    }
    AliveRegistry& alive = AliveRegistry::Instance();
    std::lock_guard<std::mutex> lock(alive.mu);
    alive.ids.insert(id_);
  }

  ~EpochManager() {
    {
      AliveRegistry& alive = AliveRegistry::Instance();
      std::lock_guard<std::mutex> lock(alive.mu);
      alive.ids.erase(id_);
    }
    CollectAll();
  }

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  // Registers the calling thread (idempotent) and returns its slot index.
  // Blocks while all kMaxThreads slots are taken by live threads.  Identity
  // is checked via a process-unique manager id, not the address: a new
  // manager may be constructed at a previous one's address, which must not
  // revive stale registrations.
  size_t RegisterThread() {
    ThreadRegistry& reg = LocalRegistry();
    for (const auto& e : reg.entries) {
      if (e.manager == this && e.manager_id == id_) return e.slot;
    }
    reg.PruneDead();
    size_t idx = AcquireSlot();
    reg.entries.push_back({this, id_, idx});
    return idx;
  }

  void Enter() {
    size_t slot = RegisterThread();
    Slot& s = slots_[slot];
    // Nested guard: the outer pin already protects everything this thread
    // can observe; re-pinning at a newer epoch would lose that protection.
    if (s.depth.fetch_add(1, std::memory_order_relaxed) > 0) return;
    uint64_t e = global_epoch_.load(std::memory_order_acquire);
    s.epoch.store(e, std::memory_order_release);
    // Re-read to close the race where the global epoch advanced between the
    // load and the store; one retry suffices because we are now visible.
    uint64_t e2 = global_epoch_.load(std::memory_order_acquire);
    if (e2 != e) s.epoch.store(e2, std::memory_order_release);
  }

  void Leave() {
    size_t slot = RegisterThread();
    Slot& s = slots_[slot];
    // Only the outermost guard unpins.
    if (s.depth.fetch_sub(1, std::memory_order_relaxed) > 1) return;
    s.epoch.store(kIdle, std::memory_order_release);
    MaybeCollect(slot);
  }

  // Defers destruction of `ptr` until no thread can still observe it.
  void Retire(void* ptr, void (*deleter)(void*)) {
    size_t slot = RegisterThread();
    auto& local = limbo_[slot];
    local.items.push_back(
        {ptr, deleter, global_epoch_.load(std::memory_order_acquire)});
    retired_total_.Add();
    if (local.items.size() >= kCollectThreshold) {
      AdvanceEpoch();
    }
  }

  // Frees every retired object whose epoch is at least two epochs old.
  // Called automatically from Leave(); exposed for tests.
  void Collect(size_t slot) {
    uint64_t min_active = MinActiveEpoch();
    auto& local = limbo_[slot];
    size_t kept = 0;
    for (size_t i = 0; i < local.items.size(); ++i) {
      const auto& item = local.items[i];
      if (item.epoch + 2 <= min_active || min_active == kIdle) {
        item.deleter(item.ptr);
        reclaimed_total_.Add();
      } else {
        local.items[kept++] = item;
      }
    }
    local.items.resize(kept);
  }

  // Advances the global epoch and collects the calling thread's limbo list.
  // The automatic path only advances when a limbo list crosses
  // kCollectThreshold entries — the right policy for node-sized garbage,
  // but a retirer of a few *large* objects (the hybrid index retires one
  // whole base tree per merge) calls this to push them out promptly: two
  // calls guarantee objects retired before the first become reclaimable as
  // soon as every reader pinned at retire time has left.
  void AdvanceAndCollect() {
    size_t slot = RegisterThread();
    AdvanceEpoch();
    Collect(slot);
  }

  // Frees everything unconditionally.  Only safe when no thread is inside an
  // epoch (e.g. destruction, single-threaded tests).
  void CollectAll() {
    for (size_t s = 0; s < kMaxThreads; ++s) {
      for (const auto& item : limbo_[s].items) {
        item.deleter(item.ptr);
        reclaimed_total_.Add();
      }
      limbo_[s].items.clear();
    }
  }

  uint64_t global_epoch() const {
    return global_epoch_.load(std::memory_order_relaxed);
  }

  size_t RetiredCount() const {
    size_t n = 0;
    for (size_t s = 0; s < kMaxThreads; ++s) n += limbo_[s].items.size();
    return n;
  }

  // Telemetry (obs/telemetry.h): lifetime totals of retires and physical
  // frees.  With HOT_STATS=OFF both read as zero.
  uint64_t retired_total() const { return retired_total_.value(); }
  uint64_t reclaimed_total() const { return reclaimed_total_.value(); }

  // Epoch stamp of the oldest limbo entry (kIdle when the limbo lists are
  // empty).  global_epoch() minus this is the reclamation lag.  Quiescent-
  // only: racy against concurrent Retire/Collect.
  uint64_t OldestRetiredEpoch() const {
    uint64_t oldest = kIdle;
    for (size_t s = 0; s < kMaxThreads; ++s) {
      for (const auto& item : limbo_[s].items) {
        if (item.epoch < oldest) oldest = item.epoch;
      }
    }
    return oldest;
  }

  // Number of slots currently claimed by live threads (test support; racy
  // under concurrent registration).
  size_t UsedSlots() const {
    size_t n = 0;
    for (size_t i = 0; i < kMaxThreads; ++i) {
      if (slots_[i].used.load(std::memory_order_relaxed)) ++n;
    }
    return n;
  }

 private:
  struct Slot {
    std::atomic<uint64_t> epoch;
    std::atomic<bool> used;
    // Guard nesting depth; touched only by the owning thread (atomic so a
    // later owner of a recycled slot is well-ordered with the previous one).
    std::atomic<uint32_t> depth;
    char padding[44];  // avoid false sharing between per-thread slots
  };

  struct Retired {
    void* ptr;
    void (*deleter)(void*);
    uint64_t epoch;
  };

  struct LimboList {
    std::vector<Retired> items;
    char padding[24];
  };

  // Process-wide table of live manager ids.  A thread-exit slot release
  // dereferences its manager only while holding this mutex with the id
  // still present, so destruction and release cannot race.
  struct AliveRegistry {
    std::mutex mu;
    std::unordered_set<uint64_t> ids;
    static AliveRegistry& Instance() {
      static AliveRegistry registry;
      return registry;
    }
  };

  // Per-thread registration records, released on thread exit.
  struct ThreadRegistry {
    struct Entry {
      EpochManager* manager;
      uint64_t manager_id;
      size_t slot;
    };
    std::vector<Entry> entries;

    // Drops records of destroyed managers so a long-lived thread touching
    // many short-lived managers does not accumulate stale entries.
    void PruneDead() {
      AliveRegistry& alive = AliveRegistry::Instance();
      std::lock_guard<std::mutex> lock(alive.mu);
      std::erase_if(entries, [&](const Entry& e) {
        return alive.ids.count(e.manager_id) == 0;
      });
    }

    ~ThreadRegistry() {
      AliveRegistry& alive = AliveRegistry::Instance();
      std::lock_guard<std::mutex> lock(alive.mu);
      for (const auto& e : entries) {
        if (alive.ids.count(e.manager_id) != 0) {
          e.manager->ReleaseSlot(e.slot);
        }
      }
    }
  };

  static ThreadRegistry& LocalRegistry() {
    static thread_local ThreadRegistry registry;
    return registry;
  }

  static uint64_t NextManagerId() {
    static std::atomic<uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
  }

  static constexpr size_t kCollectThreshold = 128;

  size_t AcquireSlot() {
    for (;;) {
      for (size_t i = 0; i < kMaxThreads; ++i) {
        bool expected = false;
        if (!slots_[i].used.load(std::memory_order_relaxed) &&
            slots_[i].used.compare_exchange_strong(
                expected, true, std::memory_order_acq_rel)) {
          return i;
        }
      }
      // Table full: more live threads than slots.  Block until a registered
      // thread exits and releases its slot — never alias an occupied slot,
      // since two pins through one slot can overwrite each other and allow
      // premature reclamation.
      std::this_thread::yield();
    }
  }

  // Returns the slot to the pool.  The release store on `used` pairs with
  // the acquire CAS in AcquireSlot, ordering this thread's accesses (limbo
  // list, protected objects) before the next owner's.
  void ReleaseSlot(size_t slot) {
    slots_[slot].depth.store(0, std::memory_order_relaxed);
    slots_[slot].epoch.store(kIdle, std::memory_order_release);
    slots_[slot].used.store(false, std::memory_order_release);
  }

  void AdvanceEpoch() {
    global_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

  uint64_t MinActiveEpoch() const {
    uint64_t min = kIdle;
    for (size_t i = 0; i < kMaxThreads; ++i) {
      // Acquire pairs with ReleaseSlot so that skipping a just-released
      // slot still orders the releasing thread's reads before our caller's
      // frees.
      if (!slots_[i].used.load(std::memory_order_acquire)) continue;
      uint64_t e = slots_[i].epoch.load(std::memory_order_acquire);
      if (e != kIdle && e < min) min = e;
    }
    if (min == kIdle) {
      // No thread is pinned: everything up to the current epoch is safe.
      return global_epoch_.load(std::memory_order_acquire) + 2;
    }
    return min;
  }

  void MaybeCollect(size_t slot) {
    if (limbo_[slot].items.size() >= kCollectThreshold / 2) {
      AdvanceEpoch();
      Collect(slot);
    }
  }

  const uint64_t id_ = NextManagerId();
  std::atomic<uint64_t> global_epoch_{1};
  obs::StatCounter retired_total_;
  obs::StatCounter reclaimed_total_;
  Slot slots_[kMaxThreads];
  LimboList limbo_[kMaxThreads];
};

// RAII epoch pin for readers and writers.  Guards may nest on one thread;
// only the outermost pins and unpins.
class EpochGuard {
 public:
  explicit EpochGuard(EpochManager* manager) : manager_(manager) {
    manager_->Enter();
  }
  ~EpochGuard() { manager_->Leave(); }

  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochManager* manager_;
};

}  // namespace hot

#endif  // HOT_COMMON_EPOCH_H_
