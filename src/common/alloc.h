// Counting allocator: every index structure in this repository allocates its
// nodes through a MemoryCounter so that the memory-consumption experiment
// (paper Fig. 9) can report exact per-index footprints without touching the
// data structures' runtime behaviour.

#ifndef HOT_COMMON_ALLOC_H_
#define HOT_COMMON_ALLOC_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace hot {

// Fault injection for the allocation paths (test support): when armed, the
// Nth next allocation through any instrumented allocator (CountingAllocator,
// NodePool) throws std::bad_alloc, so the copy-on-write insert paths can be
// tested for exception-safety and leak-freedom.  Armed programmatically via
// FailAfter(n) or at process start via the HOT_ALLOC_FAIL_AT environment
// variable.  Disarmed cost is one relaxed atomic load per allocation.
class AllocFaultInjector {
 public:
  // The nth next allocation (1-based) fails; 0 disarms.
  static void FailAfter(uint64_t nth) {
    Countdown().store(nth, std::memory_order_relaxed);
  }
  static void Disarm() { FailAfter(0); }
  static bool armed() {
    return Countdown().load(std::memory_order_relaxed) != 0;
  }

  // Called by instrumented allocators before any bookkeeping or carving.
  static void MaybeFail() {
    std::atomic<uint64_t>& c = Countdown();
    uint64_t cur = c.load(std::memory_order_relaxed);
    while (cur != 0) {
      if (c.compare_exchange_weak(cur, cur - 1, std::memory_order_relaxed)) {
        if (cur == 1) throw std::bad_alloc();
        return;
      }
    }
  }

 private:
  static std::atomic<uint64_t>& Countdown() {
    static std::atomic<uint64_t> countdown{InitFromEnv()};
    return countdown;
  }
  static uint64_t InitFromEnv() {
    const char* s = std::getenv("HOT_ALLOC_FAIL_AT");
    return s != nullptr ? std::strtoull(s, nullptr, 10) : 0;
  }
};

// Tracks live bytes and allocation counts.  Thread-safe (relaxed atomics:
// counters are statistics, not synchronization).
class MemoryCounter {
 public:
  void OnAlloc(size_t bytes) {
    live_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    total_allocs_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnFree(size_t bytes) {
    live_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
    total_frees_.fetch_add(1, std::memory_order_relaxed);
  }

  size_t live_bytes() const {
    return live_bytes_.load(std::memory_order_relaxed);
  }
  size_t total_allocs() const {
    return total_allocs_.load(std::memory_order_relaxed);
  }
  size_t total_frees() const {
    return total_frees_.load(std::memory_order_relaxed);
  }

  void Reset() {
    live_bytes_.store(0, std::memory_order_relaxed);
    total_allocs_.store(0, std::memory_order_relaxed);
    total_frees_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<size_t> live_bytes_{0};
  std::atomic<size_t> total_allocs_{0};
  std::atomic<size_t> total_frees_{0};
};

// Aligned allocation with size bookkeeping.  The requested size is stamped
// into a prefix word so frees do not need the caller to remember it.
// `alignment` must be a power of two >= alignof(max_align_t) is NOT required;
// any power of two >= 8 works.
class CountingAllocator {
 public:
  explicit CountingAllocator(MemoryCounter* counter) : counter_(counter) {}

  void* AllocateAligned(size_t bytes, size_t alignment) {
    AllocFaultInjector::MaybeFail();
    // Reserve one alignment-sized slot in front of the returned pointer for
    // the size stamp, so the user pointer keeps the requested alignment.
    size_t header = alignment >= sizeof(size_t) ? alignment : sizeof(size_t);
    size_t total = header + bytes;
    void* raw = std::aligned_alloc(alignment, RoundUp(total, alignment));
    if (raw == nullptr) throw std::bad_alloc();
    *static_cast<size_t*>(raw) = total;
    if (counter_ != nullptr) counter_->OnAlloc(bytes);
    return static_cast<uint8_t*>(raw) + header;
  }

  void FreeAligned(void* ptr, size_t bytes, size_t alignment) {
    if (ptr == nullptr) return;
    size_t header = alignment >= sizeof(size_t) ? alignment : sizeof(size_t);
    void* raw = static_cast<uint8_t*>(ptr) - header;
    if (counter_ != nullptr) counter_->OnFree(bytes);
    std::free(raw);
  }

  MemoryCounter* counter() const { return counter_; }

 private:
  static size_t RoundUp(size_t n, size_t align) {
    return (n + align - 1) & ~(align - 1);
  }

  MemoryCounter* counter_;
};

}  // namespace hot

#endif  // HOT_COMMON_ALLOC_H_
