// Bit-manipulation primitives used throughout the HOT node layouts.
//
// HOT's engineered node representation (paper §4.1) leans on two BMI2
// instructions:
//   * PEXT — extract the bits selected by a mask and compress them to the
//     low end of a word (dense partial-key extraction, Listing 2).
//   * PDEP — the inverse; deposit low bits at the positions selected by a
//     mask (sparse partial-key recoding on insert, §4.4).
//
// Every intrinsic has a scalar twin (suffix `Scalar`).  The twins are
// compiled unconditionally: they serve as portable fallbacks, as the
// reference implementation for differential tests, and as the "no SIMD/BMI"
// arm of the node-engineering ablation bench.

#ifndef HOT_COMMON_BITS_H_
#define HOT_COMMON_BITS_H_

#include <bit>
#include <cstdint>

// HOT_FORCE_SCALAR (CMake -DHOT_FORCE_SCALAR=ON) compiles the intrinsic
// paths out even when the ISA is available, so sanitizer/CI builds actually
// exercise the scalar twins instead of only compiling them.
#if defined(__BMI2__) && !defined(HOT_FORCE_SCALAR)
#include <immintrin.h>
#define HOT_HAVE_BMI2 1
#else
#define HOT_HAVE_BMI2 0
#endif

namespace hot {

// Parallel bit extract: gathers the bits of `value` at the positions set in
// `mask` into the low-order bits of the result (most-significant selected
// bit of `value` -> ... -> least-significant), matching the semantics of the
// x86 PEXT instruction.
inline uint64_t PextScalar(uint64_t value, uint64_t mask) {
  uint64_t result = 0;
  uint64_t out_bit = 1;
  while (mask != 0) {
    uint64_t lowest = mask & (~mask + 1);
    if (value & lowest) result |= out_bit;
    out_bit <<= 1;
    mask &= mask - 1;
  }
  return result;
}

// Parallel bit deposit: scatters the low-order bits of `value` to the
// positions set in `mask` (x86 PDEP semantics).
inline uint64_t PdepScalar(uint64_t value, uint64_t mask) {
  uint64_t result = 0;
  uint64_t in_bit = 1;
  while (mask != 0) {
    uint64_t lowest = mask & (~mask + 1);
    if (value & in_bit) result |= lowest;
    in_bit <<= 1;
    mask &= mask - 1;
  }
  return result;
}

inline uint64_t Pext64(uint64_t value, uint64_t mask) {
#if HOT_HAVE_BMI2
  return _pext_u64(value, mask);
#else
  return PextScalar(value, mask);
#endif
}

inline uint64_t Pdep64(uint64_t value, uint64_t mask) {
#if HOT_HAVE_BMI2
  return _pdep_u64(value, mask);
#else
  return PdepScalar(value, mask);
#endif
}

inline uint32_t Pext32(uint32_t value, uint32_t mask) {
#if HOT_HAVE_BMI2
  return _pext_u32(value, mask);
#else
  return static_cast<uint32_t>(PextScalar(value, mask));
#endif
}

inline uint32_t Pdep32(uint32_t value, uint32_t mask) {
#if HOT_HAVE_BMI2
  return _pdep_u32(value, mask);
#else
  return static_cast<uint32_t>(PdepScalar(value, mask));
#endif
}

// Index (0-based, from bit 0 == LSB) of the most significant set bit.
// Precondition: value != 0.
inline unsigned BitScanReverse32(uint32_t value) {
  return 31u - static_cast<unsigned>(std::countl_zero(value));
}

inline unsigned BitScanReverse64(uint64_t value) {
  return 63u - static_cast<unsigned>(std::countl_zero(value));
}

// Index of the least significant set bit.  Precondition: value != 0.
inline unsigned BitScanForward32(uint32_t value) {
  return static_cast<unsigned>(std::countr_zero(value));
}

inline unsigned BitScanForward64(uint64_t value) {
  return static_cast<unsigned>(std::countr_zero(value));
}

inline unsigned Popcount64(uint64_t value) {
  return static_cast<unsigned>(std::popcount(value));
}

inline unsigned Popcount32(uint32_t value) {
  return static_cast<unsigned>(std::popcount(value));
}

// Loads 8 bytes starting at `bytes` and returns them as a big-endian word,
// i.e. bytes[0] becomes the most significant byte.  Trie traversal orders
// keys lexicographically on bytes, so masks over key bits are defined on
// this big-endian view.
inline uint64_t LoadBigEndian64(const uint8_t* bytes) {
  uint64_t word;
  __builtin_memcpy(&word, bytes, sizeof(word));
  return __builtin_bswap64(word);
}

inline void StoreBigEndian64(uint8_t* bytes, uint64_t value) {
  uint64_t word = __builtin_bswap64(value);
  __builtin_memcpy(bytes, &word, sizeof(word));
}

}  // namespace hot

#endif  // HOT_COMMON_BITS_H_
