// Thin SIMD portability layer: prefetching and the small data-parallel
// compare primitives shared by the index structures (HOT node search uses
// its own layout-specific kernels in src/hot/node_search.h; ART's Node16
// uses FindByteMatches16 below).

#ifndef HOT_COMMON_SIMD_H_
#define HOT_COMMON_SIMD_H_

#include <cstdint>
#include <cstring>

// HOT_FORCE_SCALAR (CMake -DHOT_FORCE_SCALAR=ON) compiles the intrinsic
// paths out even when the ISA is available, so sanitizer/CI builds actually
// exercise the scalar twins instead of only compiling them.
#if defined(__AVX2__) && !defined(HOT_FORCE_SCALAR)
#include <immintrin.h>
#define HOT_HAVE_AVX2 1
#else
#define HOT_HAVE_AVX2 0
#endif

namespace hot {

// Prefetches the first `lines` cache lines starting at `addr` (paper §4.5:
// HOT prefetches the first 4 cache lines of a node while the tagged pointer
// is being decoded).
inline void PrefetchLines(const void* addr, unsigned lines) {
  const char* p = static_cast<const char*>(addr);
  for (unsigned i = 0; i < lines; ++i) {
    __builtin_prefetch(p + i * 64, 0 /*read*/, 3 /*high locality*/);
  }
}

// Returns a bitmask of positions i in [0, 16) with bytes[i] == needle.
inline uint32_t FindByteMatches16(const uint8_t bytes[16], uint8_t needle) {
#if HOT_HAVE_AVX2
  __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes));
  __m128i n = _mm_set1_epi8(static_cast<char>(needle));
  return static_cast<uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(v, n)));
#else
  uint32_t mask = 0;
  for (int i = 0; i < 16; ++i) {
    if (bytes[i] == needle) mask |= 1u << i;
  }
  return mask;
#endif
}

// Returns a bitmask of positions i in [0, 16) with bytes[i] < needle
// (unsigned comparison); used for ordered search in ART Node16.
inline uint32_t FindByteLess16(const uint8_t bytes[16], uint8_t needle) {
#if HOT_HAVE_AVX2
  // Flip sign bits to emulate unsigned compare with signed cmpgt.
  __m128i bias = _mm_set1_epi8(static_cast<char>(0x80));
  __m128i v = _mm_xor_si128(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes)), bias);
  __m128i n = _mm_xor_si128(_mm_set1_epi8(static_cast<char>(needle)), bias);
  return static_cast<uint32_t>(_mm_movemask_epi8(_mm_cmpgt_epi8(n, v)));
#else
  uint32_t mask = 0;
  for (int i = 0; i < 16; ++i) {
    if (bytes[i] < needle) mask |= 1u << i;
  }
  return mask;
#endif
}

}  // namespace hot

#endif  // HOT_COMMON_SIMD_H_
