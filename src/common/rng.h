// Pseudo-random generators for the YCSB-style micro-benchmark (paper §6.1):
// a fast xorshift/splitmix generator for uniform draws and a Zipfian
// generator matching the YCSB reference implementation (theta = 0.99,
// Gray et al. rejection-free formula), plus the "latest" distribution used
// by workload D.

#ifndef HOT_COMMON_RNG_H_
#define HOT_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace hot {

// splitmix64: tiny, high-quality, seedable; used both directly and to seed
// the benchmark's key shuffles.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound).  Uses the widening-multiply trick (Lemire).
  uint64_t NextBounded(uint64_t bound) {
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(Next()) * bound) >> 64);
  }

  double NextDouble() {  // [0, 1)
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_;
};

// Deterministic Fisher-Yates permutation of [0, n).  The Zipfian generator
// below concentrates mass on the *lowest* ranks; composing it with a seeded
// permutation (hot key = perm[rank]) decouples "popular" from "numerically
// small", which both the YCSB harness and the fuzzing key-pick distributions
// need.
inline std::vector<uint32_t> RandomPermutation(uint32_t n, SplitMix64& rng) {
  std::vector<uint32_t> perm(n);
  for (uint32_t i = 0; i < n; ++i) perm[i] = i;
  for (uint32_t i = n; i > 1; --i) {
    uint32_t j = static_cast<uint32_t>(rng.NextBounded(i));
    uint32_t tmp = perm[i - 1];
    perm[i - 1] = perm[j];
    perm[j] = tmp;
  }
  return perm;
}

// Zipfian generator over [0, n) with YCSB's default skew (theta = 0.99).
// Implements the classic Gray et al. "Quickly generating billion-record
// synthetic databases" algorithm, as used by the YCSB core workloads.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta = 0.99, uint64_t seed = 1)
      : n_(n == 0 ? 1 : n), theta_(theta), rng_(seed) {
    zetan_ = Zeta(n_, theta_);
    zeta2_ = Zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    if (n_ <= 2) {
      // The eta formula degenerates below three ranks: for n == 1 the
      // denominator 1 - zeta2/zetan is negative (zeta2 > zetan), and for
      // n == 2 both numerator and denominator are 0 in exact arithmetic —
      // a ±1ulp NaN in floating point.  RankFor's first two branches cover
      // every rank of these domains, so eta is only a guard value here.
      eta_ = 0.0;
    } else {
      eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
             (1.0 - zeta2_ / zetan_);
    }
  }

  uint64_t Next() { return RankFor(rng_.NextDouble()); }

  // Deterministic mapping from a uniform u in [0, 1] to a Zipfian rank in
  // [0, n).  Exposed so boundary behaviour is testable without steering the
  // internal RNG.
  uint64_t RankFor(double u) const {
    if (n_ == 1) return 0;
    double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_) || n_ == 2) return 1;
    uint64_t rank = static_cast<uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    // u close enough to 1 makes the power term round to exactly 1.0 and the
    // product to n — clamp back into the domain.
    return rank >= n_ ? n_ - 1 : rank;
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0.0;
    for (uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  uint64_t n_;
  double theta_;
  SplitMix64 rng_;
  double zetan_, zeta2_, alpha_, eta_;
};

// "Latest" distribution (YCSB workload D): skewed towards the most recently
// inserted record.  Draws a Zipfian rank and subtracts it from the current
// maximum.
class LatestGenerator {
 public:
  LatestGenerator(uint64_t n, uint64_t seed = 1) : zipf_(n, 0.99, seed), n_(n) {}

  // `current_max` is the number of records inserted so far.
  uint64_t Next(uint64_t current_max) {
    if (current_max == 0) return 0;
    uint64_t rank = zipf_.Next() % current_max;
    return current_max - 1 - rank;
  }

 private:
  ZipfianGenerator zipf_;
  uint64_t n_;
};

}  // namespace hot

#endif  // HOT_COMMON_RNG_H_
