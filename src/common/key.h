// Binary-comparable keys.
//
// Every index in this repository operates on keys that are plain byte
// strings compared lexicographically (unsigned bytes).  Bit positions are
// counted from the most significant bit of the first byte:
//
//   bit 0  = MSB of key[0], bit 7 = LSB of key[0], bit 8 = MSB of key[1], ...
//
// which makes "smaller bit position" mean "more significant", the order in
// which a trie discriminates keys (paper §2).
//
// HOT inherits the classic Patricia requirement (paper footnote 1) that no
// key may be a strict prefix of another.  The string front-ends in each
// index append a 0x00 terminator to enforce this; integer keys are encoded
// big-endian at a fixed width, which is prefix-free by construction.

#ifndef HOT_COMMON_KEY_H_
#define HOT_COMMON_KEY_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/bits.h"

namespace hot {

// Non-owning view of key bytes.  Equivalent in spirit to rocksdb::Slice /
// std::span<const uint8_t>, with key-specific helpers.
class KeyRef {
 public:
  constexpr KeyRef() : data_(nullptr), size_(0) {}
  constexpr KeyRef(const uint8_t* data, size_t size)
      : data_(data), size_(size) {}
  explicit KeyRef(std::string_view s)
      : data_(reinterpret_cast<const uint8_t*>(s.data())), size_(s.size()) {}
  explicit KeyRef(const std::string& s)
      : data_(reinterpret_cast<const uint8_t*>(s.data())), size_(s.size()) {}

  constexpr const uint8_t* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  uint8_t operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  // Byte at `i`, treating the key as padded with infinitely many 0x00
  // bytes.  Trie code paths read beyond the end of shorter keys; with the
  // prefix-free requirement the padding never changes comparison outcomes.
  uint8_t ByteOrZero(size_t i) const { return i < size_ ? data_[i] : 0; }

  // Bit at absolute position `pos` (0 = MSB of first byte), zero-padded.
  unsigned Bit(size_t pos) const {
    size_t byte = pos >> 3;
    if (byte >= size_) return 0;
    return (data_[byte] >> (7 - (pos & 7))) & 1u;
  }

  std::string_view ToStringView() const {
    return {reinterpret_cast<const char*>(data_), size_};
  }

  int Compare(KeyRef other) const {
    size_t n = size_ < other.size_ ? size_ : other.size_;
    int c = n == 0 ? 0 : std::memcmp(data_, other.data_, n);
    if (c != 0) return c;
    if (size_ == other.size_) return 0;
    return size_ < other.size_ ? -1 : 1;
  }

  bool operator==(KeyRef other) const { return Compare(other) == 0; }

 private:
  const uint8_t* data_;
  size_t size_;
};

// First bit position at which `a` and `b` differ, both viewed as zero-padded
// bit strings.  Returns kNoMismatch if they are equal up to
// max(a.size, b.size) * 8 bits (i.e. equal under the prefix-free contract).
inline constexpr size_t kNoMismatch = static_cast<size_t>(-1);

inline size_t FirstMismatchBit(KeyRef a, KeyRef b) {
  size_t max_bytes = a.size() > b.size() ? a.size() : b.size();
  size_t i = 0;
  // Word-at-a-time over the common prefix.
  size_t common = a.size() < b.size() ? a.size() : b.size();
  while (i + 8 <= common) {
    uint64_t wa = LoadBigEndian64(a.data() + i);
    uint64_t wb = LoadBigEndian64(b.data() + i);
    if (wa != wb) {
      return i * 8 + static_cast<size_t>(std::countl_zero(wa ^ wb));
    }
    i += 8;
  }
  for (; i < max_bytes; ++i) {
    uint8_t ba = a.ByteOrZero(i);
    uint8_t bb = b.ByteOrZero(i);
    if (ba != bb) {
      // std::countl_zero on uint8_t counts within the 8-bit width.
      return i * 8 + static_cast<size_t>(
                         std::countl_zero(static_cast<uint8_t>(ba ^ bb)));
    }
  }
  return kNoMismatch;
}

// Fixed-width big-endian encoding of unsigned integers: preserves numeric
// order under lexicographic byte comparison.
inline void EncodeU64(uint64_t value, uint8_t out[8]) {
  StoreBigEndian64(out, value);
}

inline uint64_t DecodeU64(const uint8_t in[8]) { return LoadBigEndian64(in); }

// Zero-overhead stack buffer for an 8-byte big-endian integer key (the hot
// path of every integer benchmark; KeyBuffer below is the general variant).
struct U64Key {
  uint8_t bytes[8];
  explicit U64Key(uint64_t value) { EncodeU64(value, bytes); }
  KeyRef ref() const { return KeyRef(bytes, 8); }
};

// Small owning key buffer used by front-ends that must append terminators
// or encode integers without heap allocation for short keys.
class KeyBuffer {
 public:
  KeyBuffer() : size_(0) {}

  static KeyBuffer FromU64(uint64_t value) {
    KeyBuffer k;
    EncodeU64(value, k.inline_);
    k.size_ = 8;
    return k;
  }

  // Copies `s` and appends a single 0x00 terminator.
  static KeyBuffer FromStringTerminated(std::string_view s) {
    KeyBuffer k;
    k.Assign(reinterpret_cast<const uint8_t*>(s.data()), s.size(), true);
    return k;
  }

  KeyRef ref() const {
    return KeyRef(size_ <= kInlineCapacity ? inline_ : heap_.data(), size_);
  }

 private:
  static constexpr size_t kInlineCapacity = 24;

  void Assign(const uint8_t* data, size_t n, bool terminate) {
    size_ = n + (terminate ? 1 : 0);
    uint8_t* dst;
    if (size_ <= kInlineCapacity) {
      dst = inline_;
    } else {
      heap_.assign(size_, 0);
      dst = heap_.data();
    }
    std::memcpy(dst, data, n);
    if (terminate) dst[n] = 0;
  }

  uint8_t inline_[kInlineCapacity];
  std::basic_string<uint8_t> heap_;
  size_t size_;
};

}  // namespace hot

#endif  // HOT_COMMON_KEY_H_
