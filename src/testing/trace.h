// Deterministic operation traces for differential fuzzing (src/testing/).
//
// A Trace is a keyspace reference (kind, n, seed — see keyspace.h) plus a
// flat list of operations over key *indices*.  Everything is reproducible
// from the serialized form: the keyspace is rebuilt from its triple and the
// ops replay byte-for-byte, which is what makes record → shrink → replay →
// commit-as-regression-test work.
//
// The text format is line-based and canonical (one serialization per
// trace), so save(load(f)) == f byte-identically:
//
//   hot-fuzz-trace v1
//   keyspace <kind> <n> <seed>
//   ops <count>
//   B <m>          bulk-load the m smallest keys (only valid first)
//   i <idx>        insert
//   u <idx>        upsert
//   r <idx>        remove
//   l <idx>        lookup
//   b <idx>        lower_bound
//   s <idx> <lim>  ordered scan of up to lim entries from key idx
//   a              audit (structural + full-scan differential checkpoint)
//   end

#ifndef HOT_TESTING_TRACE_H_
#define HOT_TESTING_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "testing/keyspace.h"

namespace hot {
namespace testing {

enum class OpKind : uint8_t {
  kInsert,
  kUpsert,
  kRemove,
  kLookup,
  kLowerBound,
  kScan,
  kBulkLoad,
  kAudit,
};

struct Op {
  OpKind kind;
  uint32_t idx = 0;  // key index in [0, keyspace n)
  uint32_t arg = 0;  // scan limit / bulk-load count

  bool operator==(const Op&) const = default;
};

struct Trace {
  KeySpaceKind ks_kind = KeySpaceKind::kUniform;
  uint32_t ks_n = 0;
  uint64_t ks_seed = 0;
  std::vector<Op> ops;

  KeySpace BuildKeys() const {
    return BuildKeySpace(ks_kind, ks_n, ks_seed);
  }

  std::string Serialize() const;
  // Parses the canonical text form; returns false and fills *error on any
  // malformed input.
  static bool Parse(const std::string& text, Trace* out, std::string* error);

  bool SaveFile(const std::string& path) const;
  static bool LoadFile(const std::string& path, Trace* out,
                       std::string* error);
};

// Generation --------------------------------------------------------------

struct TraceGenConfig {
  KeySpaceKind kind = KeySpaceKind::kUniform;
  uint32_t n = 1024;           // keyspace size
  uint64_t seed = 1;           // seeds keyspace AND op stream
  size_t num_ops = 10000;
  bool zipf_pick = false;      // Zipf-skewed key picking (theta 0.99)
  bool allow_bulk_load = true; // may start with a bulk load
  size_t audit_every = 0;      // emit an audit op every N ops (0 = none)
  // Op mix weights (normalized internally).
  unsigned w_insert = 30, w_upsert = 8, w_remove = 16, w_lookup = 26,
           w_lower_bound = 10, w_scan = 10;
};

// Deterministic in the config: equal configs yield byte-identical traces.
Trace GenerateTrace(const TraceGenConfig& cfg);

}  // namespace testing
}  // namespace hot

#endif  // HOT_TESTING_TRACE_H_
