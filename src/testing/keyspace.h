// Key universes for the differential fuzzing subsystem (src/testing/).
//
// A KeySpace is the deterministic set of keys a fuzz trace operates over:
// traces reference keys by index, so a (kind, n, seed) triple plus the op
// list fully reproduces a run.  The generators cover the structural corners
// of the HOT node layouts:
//
//   uniform     distinct uniform 63-bit integers (8-byte big-endian keys)
//   dense       a contiguous integer run [base, base+n) — worst case for
//               incremental insertion (monotone, shared high bytes)
//   adv-single  fixed 8-byte keys whose discriminative bits all fall in one
//               8-byte window: forces the single-mask layouts, and >16
//               varying bits push the partial keys to 32-bit lanes
//   adv-multi8  fixed 32-byte keys varying in exactly 8 distinct, widely
//               separated bytes: forces the multi-mask-8 layouts
//   adv-multi32 fixed 48-byte keys varying in 24 distinct bytes: forces the
//               multi-mask-16/32 layouts and 32-bit partial keys
//   prefix      hierarchical path strings with deep shared prefixes
//   url/email/yago/integer
//               the four paper data-set shapes (src/ycsb/datasets.h)
//
// String spaces index their table through StringTableExtractor (value =
// table index); integer spaces embed the key in the value (U64KeyExtractor).

#ifndef HOT_TESTING_KEYSPACE_H_
#define HOT_TESTING_KEYSPACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hot {
namespace testing {

enum class KeySpaceKind : uint8_t {
  kUniform,
  kDense,
  kAdvSingle,
  kAdvMulti8,
  kAdvMulti32,
  kPrefix,
  kUrl,
  kEmail,
  kYago,
  kInteger,
};

inline constexpr unsigned kNumKeySpaceKinds = 10;

const char* KeySpaceKindName(KeySpaceKind kind);
// Returns false if `name` is not a known kind name.
bool KeySpaceKindFromName(const std::string& name, KeySpaceKind* out);

struct KeySpace {
  KeySpaceKind kind = KeySpaceKind::kUniform;
  uint64_t seed = 0;
  bool is_string = false;
  std::vector<std::string> strings;  // string spaces; value = index
  std::vector<uint64_t> ints;        // integer spaces; value = the key

  size_t size() const { return is_string ? strings.size() : ints.size(); }

  // Index value stored under key `idx` (63-bit payload).
  uint64_t ValueOf(size_t idx) const {
    return is_string ? static_cast<uint64_t>(idx) : ints[idx];
  }

  // All values ordered by ascending key bytes (for bulk loads).  Computed
  // on first use.
  const std::vector<uint64_t>& SortedValues() const;

 private:
  mutable std::vector<uint64_t> sorted_values_;
};

// Deterministically builds `n` distinct keys.  The result depends only on
// (kind, n, seed).  `n` is clamped to the kind's maximum distinct-key count.
KeySpace BuildKeySpace(KeySpaceKind kind, size_t n, uint64_t seed);

}  // namespace testing
}  // namespace hot

#endif  // HOT_TESTING_KEYSPACE_H_
