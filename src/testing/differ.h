// Differential trace executor (tentpole check #2).
//
// Replays a Trace simultaneously against the binary Patricia trie — the
// oracle: ~100 lines of obviously-correct pointer code — and an index under
// test, diffing every result:
//
//   * insert/upsert/remove return values and size()
//   * point lookups (hit and miss)
//   * lower_bound (through the index's iterator where it has one)
//   * bounded ordered scans, element by element
//   * at every audit op: the FULL ordered scan output, the batched descent
//     paths (LookupBatch / LowerBoundBatch) over a ring of recently touched
//     keys re-checked against freshly computed oracle answers, the deep
//     structural audit (audit.h) for HOT trees or CheckStructure for the
//     competitor indexes, and the per-leaf height differential: every leaf's
//     compound depth must be at most its Patricia BiNode depth
//
// The executor is deterministic: a (trace, index kind) pair either passes or
// fails at a fixed op, which is what makes shrinking (shrink.h) and replay
// (tools/fuzz_replay) work.

#ifndef HOT_TESTING_DIFFER_H_
#define HOT_TESTING_DIFFER_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "art/art.h"
#include "btree/btree.h"
#include "common/extractors.h"
#include "common/key.h"
#include "hot/hybrid.h"
#include "hot/rowex.h"
#include "hot/trie.h"
#include "masstree/masstree.h"
#include "obs/telemetry.h"
#include "patricia/patricia.h"
#include "testing/adapters.h"
#include "testing/audit.h"
#include "testing/trace.h"
#include "ycsb/range_sharded.h"

namespace hot {
namespace testing {

// Range-sharded wrappers under differential test: splitter-routed shards of
// HOT tries, so traces exercise cross-shard ordered scans against the
// single-tree Patricia oracle.
template <typename Ex>
using RangeShardedHot = ycsb::RangeShardedIndex<HotTrie<Ex>, Ex>;
template <typename Ex>
using RangeShardedRowex = ycsb::RangeShardedIndex<RowexHotTrie<Ex>, Ex>;

// Hybrid static/delta index under differential test, tuned for traces:
// merges run inline on the writer (deterministic — no background thread
// racing the audit walks) with a small trigger so even short traces cross
// several freeze/rebuild cycles, and a capped rebuild width so sanitizer
// runs don't fork wide thread pools per trace.
template <typename Ex>
class DifferHybrid : public HybridHotIndex<Ex> {
 public:
  explicit DifferHybrid(Ex extractor = Ex())
      : HybridHotIndex<Ex>(extractor, nullptr,
                           typename HybridHotIndex<Ex>::MergeOptions{
                               /*min_delta=*/512, /*ratio=*/0.5,
                               /*rebuild_threads=*/2, /*background=*/false}) {
  }
};

struct DiffOptions {
  bool deep_audit = true;    // run audit.h / CheckStructure at audit ops
  size_t batch_window = 64;  // recently-touched keys cross-checked batched
};

struct DiffResult {
  bool ok = true;
  size_t ops_executed = 0;
  size_t failed_op = 0;  // index into trace.ops of the diverging op
  std::string error;
  AuditStats last_audit;  // filled for HOT-family indexes

  std::string Describe() const {
    if (ok) return "ok after " + std::to_string(ops_executed) + " ops";
    std::ostringstream oss;
    oss << "FAIL at op " << failed_op << ": " << error;
    return oss.str();
  }
};

// The index-under-test kinds: the five single-tree indexes plus the
// range-sharded HOT wrappers (16 default shards, cross-shard scans).
inline constexpr const char* kIndexNames[] = {
    "hot", "rowex", "art", "masstree", "btree", "hot-rs", "rowex-rs",
    "hybrid"};
inline constexpr unsigned kNumIndexes = 8;

namespace detail {

inline std::string OptToString(const std::optional<uint64_t>& v) {
  return v ? std::to_string(*v) : std::string("none");
}

template <typename Index, typename KeyExtractor>
class TraceRunner {
 public:
  TraceRunner(const KeySpace& ks, const KeyExtractor& extractor,
              const DiffOptions& opts)
      : ks_(ks), extractor_(extractor), opts_(opts), index_(extractor),
        oracle_(extractor) {}

  DiffResult Run(const Trace& trace) {
    DiffResult res;
    const size_t n = ks_.size();
    if (n == 0) {
      res.error = "empty keyspace";
      res.ok = trace.ops.empty();
      return res;
    }
    for (size_t op_i = 0; op_i < trace.ops.size(); ++op_i) {
      Op op = trace.ops[op_i];
      op.idx %= static_cast<uint32_t>(n);  // stay valid under shrinking
      std::string err;
      if (!Step(op, op_i == 0, &err)) {
        res.ok = false;
        res.failed_op = op_i;
        res.error = err;
        res.ops_executed = op_i;
        res.last_audit = last_audit_;
        return res;
      }
      ++res.ops_executed;
    }
    res.last_audit = last_audit_;
    return res;
  }

 private:
  KeyRef KeyAt(uint32_t idx, KeyScratch& scratch) const {
    return extractor_(ks_.ValueOf(idx), scratch);
  }

  void Touch(uint32_t idx) {
    if (opts_.batch_window == 0) return;
    if (recent_.size() < opts_.batch_window) {
      recent_.push_back(idx);
    } else {
      recent_[recent_pos_ % recent_.size()] = idx;
    }
    ++recent_pos_;
  }

  bool Step(const Op& op, bool first, std::string* err) {
    std::ostringstream oss;
    auto fail = [&]() {
      *err = oss.str();
      return false;
    };
    KeyScratch scratch;
    switch (op.kind) {
      case OpKind::kInsert: {
        uint64_t v = ks_.ValueOf(op.idx);
        bool want = oracle_.Insert(v);
        bool got = index_.Insert(v);
        Touch(op.idx);
        if (want != got) {
          oss << "Insert(key " << op.idx << "): oracle " << want << ", index "
              << got;
          return fail();
        }
        break;
      }
      case OpKind::kUpsert: {
        uint64_t v = ks_.ValueOf(op.idx);
        bool inserted = oracle_.Insert(v);
        std::optional<uint64_t> prev = IndexUpsert(index_, v);
        Touch(op.idx);
        std::optional<uint64_t> want =
            inserted ? std::nullopt : std::optional<uint64_t>(v);
        if (prev != want) {
          oss << "Upsert(key " << op.idx << "): oracle prev "
              << OptToString(want) << ", index prev " << OptToString(prev);
          return fail();
        }
        break;
      }
      case OpKind::kRemove: {
        KeyRef key = KeyAt(op.idx, scratch);
        bool want = oracle_.Remove(key);
        bool got = index_.Remove(key);
        if (want != got) {
          oss << "Remove(key " << op.idx << "): oracle " << want << ", index "
              << got;
          return fail();
        }
        break;
      }
      case OpKind::kLookup: {
        KeyRef key = KeyAt(op.idx, scratch);
        std::optional<uint64_t> want = oracle_.Lookup(key);
        std::optional<uint64_t> got = index_.Lookup(key);
        Touch(op.idx);
        if (want != got) {
          oss << "Lookup(key " << op.idx << "): oracle " << OptToString(want)
              << ", index " << OptToString(got);
          return fail();
        }
        break;
      }
      case OpKind::kLowerBound: {
        KeyRef key = KeyAt(op.idx, scratch);
        std::optional<uint64_t> want = OracleLowerBound(key);
        std::optional<uint64_t> got = IndexLowerBound(index_, key);
        Touch(op.idx);
        if (want != got) {
          oss << "LowerBound(key " << op.idx << "): oracle "
              << OptToString(want) << ", index " << OptToString(got);
          return fail();
        }
        break;
      }
      case OpKind::kScan: {
        KeyRef key = KeyAt(op.idx, scratch);
        std::vector<uint64_t> want, got;
        oracle_.ScanFrom(key, [&](uint64_t v) {
          want.push_back(v);
          return want.size() < op.arg;
        });
        index_.ScanFrom(key, op.arg, [&](uint64_t v) { got.push_back(v); });
        if (want != got) {
          oss << "Scan(key " << op.idx << ", limit " << op.arg
              << "): oracle " << want.size() << " values, index " << got.size()
              << DescribeFirstDiff(want, got);
          return fail();
        }
        break;
      }
      case OpKind::kBulkLoad: {
        if (!first || !index_.empty()) {
          // Bulk load mid-trace degenerates to inserts (shrinking may have
          // removed the guarantee that the tree is empty).
          const std::vector<uint64_t>& sorted = ks_.SortedValues();
          size_t m = std::min<size_t>(op.arg ? op.arg : 1, sorted.size());
          for (size_t i = 0; i < m; ++i) {
            uint64_t v = sorted[i];
            bool want = oracle_.Insert(v);
            bool got = index_.Insert(v);
            if (want != got) {
              oss << "BulkLoad-as-insert diverged at sorted value " << i;
              return fail();
            }
          }
          break;
        }
        const std::vector<uint64_t>& sorted = ks_.SortedValues();
        size_t m = std::min<size_t>(op.arg ? op.arg : 1, sorted.size());
        std::vector<uint64_t> prefix(sorted.begin(), sorted.begin() + m);
        IndexBulkLoad(index_, prefix);
        for (uint64_t v : prefix) oracle_.Insert(v);
        break;
      }
      case OpKind::kAudit:
        return Audit(err);
    }
    if (index_.size() != oracle_.size()) {
      oss << "size mismatch after op: oracle " << oracle_.size() << ", index "
          << index_.size();
      return fail();
    }
    return true;
  }

  std::optional<uint64_t> OracleLowerBound(KeyRef key) const {
    std::optional<uint64_t> out;
    oracle_.ScanFrom(key, [&](uint64_t v) {
      out = v;
      return false;
    });
    return out;
  }

  static std::string DescribeFirstDiff(const std::vector<uint64_t>& want,
                                       const std::vector<uint64_t>& got) {
    size_t n = std::min(want.size(), got.size());
    for (size_t i = 0; i < n; ++i) {
      if (want[i] != got[i]) {
        std::ostringstream oss;
        oss << "; first diff at position " << i << ": oracle " << want[i]
            << ", index " << got[i];
        return oss.str();
      }
    }
    return "";
  }

  bool Audit(std::string* err) {
    std::ostringstream oss;
    auto fail = [&]() {
      *err = oss.str();
      return false;
    };
    // Full ordered-scan differential: every stored value, in key order.
    {
      std::vector<uint64_t> want, got;
      want.reserve(oracle_.size());
      got.reserve(oracle_.size());
      oracle_.ScanFrom(KeyRef(), [&](uint64_t v) {
        want.push_back(v);
        return true;
      });
      index_.ScanFrom(KeyRef(), oracle_.size() + 1,
                      [&](uint64_t v) { got.push_back(v); });
      if (want != got) {
        oss << "audit full-scan mismatch: oracle " << want.size()
            << " values, index " << got.size()
            << DescribeFirstDiff(want, got);
        return fail();
      }
    }
    // Batched descents over the recently-touched ring, each slot re-checked
    // against a freshly computed scalar oracle answer.
    if (!recent_.empty()) {
      std::vector<KeyScratch> scratches(recent_.size());
      std::vector<KeyRef> keys(recent_.size());
      for (size_t i = 0; i < recent_.size(); ++i) {
        keys[i] = KeyAt(recent_[i], scratches[i]);
      }
      if constexpr (HasLookupBatch<Index>) {
        std::vector<std::optional<uint64_t>> out(keys.size());
        index_.LookupBatch(std::span<const KeyRef>(keys),
                           std::span<std::optional<uint64_t>>(out));
        for (size_t i = 0; i < keys.size(); ++i) {
          std::optional<uint64_t> want = oracle_.Lookup(keys[i]);
          if (out[i] != want) {
            oss << "audit LookupBatch[" << i << "] (key " << recent_[i]
                << "): oracle " << OptToString(want) << ", index "
                << OptToString(out[i]);
            return fail();
          }
        }
      }
      if constexpr (HasLowerBoundBatch<Index>) {
        std::vector<typename Index::Iterator> its(keys.size());
        index_.LowerBoundBatch(std::span<const KeyRef>(keys), its.data());
        for (size_t i = 0; i < keys.size(); ++i) {
          std::optional<uint64_t> want = OracleLowerBound(keys[i]);
          std::optional<uint64_t> got;
          if (its[i].valid()) got = its[i].value();
          if (got != want) {
            oss << "audit LowerBoundBatch[" << i << "] (key " << recent_[i]
                << "): oracle " << OptToString(want) << ", index "
                << OptToString(got);
            return fail();
          }
        }
      }
    }
    if (!opts_.deep_audit) return true;
    // Structural audit.
    if constexpr (HasRootEntry<Index>) {
      std::string aerr;
      if (!AuditHotTree(index_.root_entry(), index_.extractor(), index_.size(),
                        &last_audit_, &aerr)) {
        oss << "audit structural: " << aerr;
        return fail();
      }
      // Height differential: both ForEachLeaf walks are in-order, so zip
      // them.  A leaf under d compound nodes sits under at least d BiNodes
      // in the binary Patricia trie (each compound node consumes >= 1).
      std::vector<std::pair<unsigned, uint64_t>> hot_leaves;
      std::vector<std::pair<unsigned, uint64_t>> pat_leaves;
      hot_leaves.reserve(index_.size());
      pat_leaves.reserve(index_.size());
      index_.ForEachLeaf([&](unsigned depth, uint64_t value) {
        hot_leaves.emplace_back(depth, value);
      });
      oracle_.ForEachLeaf([&](size_t depth, uint64_t value) {
        pat_leaves.emplace_back(static_cast<unsigned>(depth), value);
      });
      if (hot_leaves.size() != pat_leaves.size()) {
        oss << "audit leaf walk count: hot " << hot_leaves.size()
            << ", patricia " << pat_leaves.size();
        return fail();
      }
      for (size_t i = 0; i < hot_leaves.size(); ++i) {
        if (hot_leaves[i].second != pat_leaves[i].second) {
          oss << "audit leaf walk order diverges at position " << i;
          return fail();
        }
        unsigned hot_depth = hot_leaves[i].first;       // compound nodes
        unsigned binodes = pat_leaves[i].first - 1;      // leaf depth 1 = 0
        if (hot_depth > binodes && hot_depth > 1) {
          oss << "audit height differential: leaf " << i << " under "
              << hot_depth << " compound nodes but only " << binodes
              << " Patricia BiNodes";
          return fail();
        }
      }
      // Telemetry cross-check: the obs/telemetry.h census (ForEachNode) must
      // agree with the audit.h walk (validate.h-backed) on the node count
      // and the per-layout breakdown — two independent tree traversals.
      if constexpr (requires {
                      index_.ForEachNode(
                          std::function<void(NodeRef, unsigned)>());
                    }) {
        obs::TelemetrySnapshot snap = obs::CollectTelemetry(index_);
        if (snap.census.nodes != last_audit_.nodes) {
          oss << "audit census: telemetry counts " << snap.census.nodes
              << " nodes, structural audit counts " << last_audit_.nodes;
          return fail();
        }
        for (size_t t = 0; t < kNumNodeTypes; ++t) {
          if (snap.census.count_by_type[t] != last_audit_.layout_counts[t]) {
            oss << "audit census: layout " << t << " telemetry "
                << snap.census.count_by_type[t] << ", structural audit "
                << last_audit_.layout_counts[t];
            return fail();
          }
        }
      }
    } else if constexpr (HasShards<Index>) {
      // Per-shard structural audit of a range-sharded wrapper.  The shards
      // partition the key space in order, so concatenating their in-order
      // leaf walks in shard order reproduces the global key order and can
      // be zipped against the single Patricia oracle.  The height bound
      // also survives partitioning: a shard's trie is built over a SUBSET
      // of the oracle's keys, and inserting keys into a Patricia trie never
      // makes an existing leaf shallower, so
      //   shard compound depth <= shard BiNode depth <= global BiNode depth.
      using Shard = typename Index::ShardType;
      if constexpr (HasRootEntry<Shard>) {
        AuditStats total{};
        std::vector<std::pair<unsigned, uint64_t>> hot_leaves;
        hot_leaves.reserve(index_.size());
        bool ok = true;
        unsigned shard_no = 0;
        index_.ForEachShard([&](const Shard& shard) {
          if (!ok) return;
          AuditStats stats{};
          std::string aerr;
          if (!AuditHotTree(shard.root_entry(), shard.extractor(),
                            shard.size(), &stats, &aerr)) {
            oss << "audit structural (shard " << shard_no << "): " << aerr;
            ok = false;
            return;
          }
          total.nodes += stats.nodes;
          for (size_t t = 0; t < kNumNodeTypes; ++t) {
            total.layout_counts[t] += stats.layout_counts[t];
          }
          shard.ForEachLeaf([&](unsigned depth, uint64_t value) {
            hot_leaves.emplace_back(depth, value);
          });
          ++shard_no;
        });
        if (!ok) return fail();
        last_audit_ = total;
        std::vector<std::pair<unsigned, uint64_t>> pat_leaves;
        pat_leaves.reserve(oracle_.size());
        oracle_.ForEachLeaf([&](size_t depth, uint64_t value) {
          pat_leaves.emplace_back(static_cast<unsigned>(depth), value);
        });
        if (hot_leaves.size() != pat_leaves.size()) {
          oss << "audit sharded leaf walk count: shards " << hot_leaves.size()
              << ", patricia " << pat_leaves.size();
          return fail();
        }
        for (size_t i = 0; i < hot_leaves.size(); ++i) {
          if (hot_leaves[i].second != pat_leaves[i].second) {
            oss << "audit sharded leaf walk order diverges at position " << i
                << " (cross-shard concatenation is not globally ordered)";
            return fail();
          }
          unsigned hot_depth = hot_leaves[i].first;
          unsigned binodes = pat_leaves[i].first - 1;
          if (hot_depth > binodes && hot_depth > 1) {
            oss << "audit sharded height differential: leaf " << i
                << " under " << hot_depth << " compound nodes but only "
                << binodes << " global Patricia BiNodes";
            return fail();
          }
        }
        // Telemetry fold cross-check: the per-shard census sum must agree
        // with the sum of the structural audits.
        obs::TelemetrySnapshot snap = obs::CollectTelemetry(index_);
        if (snap.census.nodes != total.nodes) {
          oss << "audit sharded census: telemetry fold counts "
              << snap.census.nodes << " nodes, structural audits count "
              << total.nodes;
          return fail();
        }
        if (snap.shards != index_.shard_count()) {
          oss << "audit sharded census: telemetry fold reports "
              << snap.shards << " shards, wrapper has "
              << index_.shard_count();
          return fail();
        }
      } else if constexpr (HasCheckStructure<Shard>) {
        bool ok = true;
        unsigned shard_no = 0;
        index_.ForEachShard([&](const Shard& shard) {
          if (!ok) return;
          std::string aerr;
          if (!shard.CheckStructure(&aerr)) {
            oss << "audit structural (shard " << shard_no << "): " << aerr;
            ok = false;
          }
          ++shard_no;
        });
        if (!ok) return fail();
      }
    } else if constexpr (HasCheckStructure<Index>) {
      std::string aerr;
      if (!index_.CheckStructure(&aerr)) {
        oss << "audit structural: " << aerr;
        return fail();
      }
    }
    return true;
  }

  const KeySpace& ks_;
  KeyExtractor extractor_;
  DiffOptions opts_;
  Index index_;
  PatriciaTrie<KeyExtractor> oracle_;
  std::vector<uint32_t> recent_;
  size_t recent_pos_ = 0;
  AuditStats last_audit_;
};

}  // namespace detail

// Replays `trace` against IndexT<Extractor> vs the Patricia oracle, with the
// extractor dictated by the trace's keyspace (string table or embedded u64).
template <template <typename> class IndexT>
DiffResult RunTraceOn(const Trace& trace, const DiffOptions& opts = {}) {
  KeySpace ks = trace.BuildKeys();
  if (ks.is_string) {
    StringTableExtractor ex(&ks.strings);
    detail::TraceRunner<IndexT<StringTableExtractor>, StringTableExtractor>
        runner(ks, ex, opts);
    return runner.Run(trace);
  }
  U64KeyExtractor ex;
  detail::TraceRunner<IndexT<U64KeyExtractor>, U64KeyExtractor> runner(ks, ex,
                                                                       opts);
  return runner.Run(trace);
}

// Name-dispatched variant ("hot", "rowex", "art", "masstree", "btree",
// "hot-rs", "rowex-rs", "hybrid").  Returns false from *known if the name
// is not an index.
inline DiffResult RunTraceOnIndex(const std::string& index_name,
                                  const Trace& trace,
                                  const DiffOptions& opts = {},
                                  bool* known = nullptr) {
  if (known != nullptr) *known = true;
  if (index_name == "hot") return RunTraceOn<HotTrie>(trace, opts);
  if (index_name == "rowex") return RunTraceOn<RowexHotTrie>(trace, opts);
  if (index_name == "art") return RunTraceOn<ArtTree>(trace, opts);
  if (index_name == "masstree") return RunTraceOn<Masstree>(trace, opts);
  if (index_name == "btree") return RunTraceOn<BTree>(trace, opts);
  if (index_name == "hot-rs") return RunTraceOn<RangeShardedHot>(trace, opts);
  if (index_name == "rowex-rs") {
    return RunTraceOn<RangeShardedRowex>(trace, opts);
  }
  if (index_name == "hybrid") return RunTraceOn<DifferHybrid>(trace, opts);
  if (known != nullptr) *known = false;
  DiffResult res;
  res.ok = false;
  res.error = "unknown index: " + index_name;
  return res;
}

}  // namespace testing
}  // namespace hot

#endif  // HOT_TESTING_DIFFER_H_
