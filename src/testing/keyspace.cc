#include "testing/keyspace.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "common/key.h"
#include "common/rng.h"
#include "ycsb/datasets.h"

namespace hot {
namespace testing {

const char* KeySpaceKindName(KeySpaceKind kind) {
  switch (kind) {
    case KeySpaceKind::kUniform:
      return "uniform";
    case KeySpaceKind::kDense:
      return "dense";
    case KeySpaceKind::kAdvSingle:
      return "adv-single";
    case KeySpaceKind::kAdvMulti8:
      return "adv-multi8";
    case KeySpaceKind::kAdvMulti32:
      return "adv-multi32";
    case KeySpaceKind::kPrefix:
      return "prefix";
    case KeySpaceKind::kUrl:
      return "url";
    case KeySpaceKind::kEmail:
      return "email";
    case KeySpaceKind::kYago:
      return "yago";
    case KeySpaceKind::kInteger:
      return "integer";
  }
  return "?";
}

bool KeySpaceKindFromName(const std::string& name, KeySpaceKind* out) {
  for (unsigned i = 0; i < kNumKeySpaceKinds; ++i) {
    KeySpaceKind k = static_cast<KeySpaceKind>(i);
    if (name == KeySpaceKindName(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

namespace {

// Draws `n` distinct 63-bit integers.
std::vector<uint64_t> DistinctInts(size_t n, SplitMix64& rng) {
  std::unordered_set<uint64_t> seen;
  std::vector<uint64_t> out;
  out.reserve(n);
  while (out.size() < n) {
    uint64_t v = rng.Next() >> 1;
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

// Adversarial fixed-length keys: every key is `len` bytes of 0x01 filler
// with bits set only at the given absolute bit positions.  Each key is a
// distinct subset of the positions, so every BiNode the indexes create
// discriminates inside the engineered window pattern.  The filler keeps the
// strings NUL-free (StringTableExtractor's prefix-free contract) and
// occupies bit 7 of each byte, so no position may use bit 7 — otherwise two
// distinct subsets could collapse to the same byte string.
std::vector<std::string> PatternKeys(size_t n, unsigned len,
                                     const std::vector<unsigned>& positions,
                                     SplitMix64& rng) {
  assert(positions.size() <= 32);
  for (unsigned pos : positions) {
    assert(pos % 8 != 7 && "bit 7 is the NUL-guard filler bit");
    (void)pos;
  }
  uint64_t universe = positions.size() >= 64
                          ? ~uint64_t{0}
                          : (uint64_t{1} << positions.size());
  if (n > universe) n = static_cast<size_t>(universe);
  std::unordered_set<uint64_t> seen;
  std::vector<std::string> out;
  out.reserve(n);
  while (out.size() < n) {
    uint64_t subset = rng.Next() & (universe - 1);
    if (!seen.insert(subset).second) continue;
    std::string key(len, '\x01');
    for (size_t b = 0; b < positions.size(); ++b) {
      if (subset & (uint64_t{1} << b)) {
        unsigned pos = positions[b];
        key[pos / 8] = static_cast<char>(
            static_cast<uint8_t>(key[pos / 8]) | (0x80u >> (pos % 8)));
      }
    }
    out.push_back(std::move(key));
  }
  return out;
}

std::vector<std::string> PrefixHeavyKeys(size_t n, SplitMix64& rng) {
  static const char* const kVocab[] = {"alpha", "beta",  "gamma", "delta",
                                       "eps",   "zeta",  "eta",   "theta",
                                       "iota",  "kappa", "lam",   "mu"};
  constexpr size_t kVocabSize = sizeof(kVocab) / sizeof(kVocab[0]);
  std::unordered_set<std::string> seen;
  std::vector<std::string> out;
  out.reserve(n);
  while (out.size() < n) {
    unsigned depth = 2 + static_cast<unsigned>(rng.NextBounded(8));
    std::string key;
    for (unsigned d = 0; d < depth; ++d) {
      // Skewed segment choice: deep shared prefixes with occasional
      // divergence.
      size_t pick = static_cast<size_t>(
          rng.NextBounded(d == depth - 1 ? kVocabSize : 3 + d));
      key += kVocab[pick % kVocabSize];
      key += '/';
    }
    key += std::to_string(rng.NextBounded(1000));
    if (seen.insert(key).second) out.push_back(std::move(key));
  }
  return out;
}

}  // namespace

const std::vector<uint64_t>& KeySpace::SortedValues() const {
  if (!sorted_values_.empty() || size() == 0) return sorted_values_;
  sorted_values_.reserve(size());
  if (is_string) {
    std::vector<uint32_t> order(strings.size());
    for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return strings[a] < strings[b];
    });
    for (uint32_t i : order) sorted_values_.push_back(i);
  } else {
    sorted_values_ = ints;
    std::sort(sorted_values_.begin(), sorted_values_.end());
  }
  return sorted_values_;
}

KeySpace BuildKeySpace(KeySpaceKind kind, size_t n, uint64_t seed) {
  KeySpace ks;
  ks.kind = kind;
  ks.seed = seed;
  SplitMix64 rng(seed * 0x9e3779b97f4a7c15ULL + 0xf00d);
  switch (kind) {
    case KeySpaceKind::kUniform:
      ks.ints = DistinctInts(n, rng);
      break;
    case KeySpaceKind::kDense: {
      uint64_t base = rng.Next() >> 2;
      ks.ints.reserve(n);
      for (size_t i = 0; i < n; ++i) ks.ints.push_back(base + i);
      break;
    }
    case KeySpaceKind::kAdvSingle: {
      // 20 positions inside bytes 0..7: window span <= 7 bytes keeps the
      // single-mask layouts; >16 live bits forces 32-bit partial keys.
      std::vector<unsigned> pos;
      for (unsigned b = 0; b < 8; ++b) {
        pos.push_back(b * 8 + 1);
        pos.push_back(b * 8 + 4);
        if (b % 3 == 0) pos.push_back(b * 8 + 6);
      }
      ks.is_string = true;
      ks.strings = PatternKeys(n, 8, pos, rng);
      break;
    }
    case KeySpaceKind::kAdvMulti8: {
      // 16 positions in 8 distinct bytes spread over a 32-byte key; byte
      // distance > 7 rules out the single-mask window.
      static const unsigned kBytes[] = {0, 5, 11, 14, 19, 22, 27, 30};
      std::vector<unsigned> pos;
      for (unsigned b : kBytes) {
        pos.push_back(b * 8 + 2);
        pos.push_back(b * 8 + 5);
      }
      ks.is_string = true;
      ks.strings = PatternKeys(n, 32, pos, rng);
      break;
    }
    case KeySpaceKind::kAdvMulti32: {
      // 24 distinct bytes over a 48-byte key, one position each: nodes that
      // accumulate >16 of them need 16/32 mask slots and 32-bit lanes.
      std::vector<unsigned> pos;
      for (unsigned b = 0; b < 48; b += 2) pos.push_back(b * 8 + 3);
      ks.is_string = true;
      ks.strings = PatternKeys(n, 48, pos, rng);
      break;
    }
    case KeySpaceKind::kPrefix:
      ks.is_string = true;
      ks.strings = PrefixHeavyKeys(n, rng);
      break;
    case KeySpaceKind::kUrl:
    case KeySpaceKind::kEmail: {
      ycsb::DataSetKind dk = kind == KeySpaceKind::kUrl
                                 ? ycsb::DataSetKind::kUrl
                                 : ycsb::DataSetKind::kEmail;
      ycsb::DataSet ds = ycsb::GenerateDataSet(dk, n, seed);
      ks.is_string = true;
      ks.strings = std::move(ds.strings);
      break;
    }
    case KeySpaceKind::kYago:
    case KeySpaceKind::kInteger: {
      ycsb::DataSetKind dk = kind == KeySpaceKind::kYago
                                 ? ycsb::DataSetKind::kYago
                                 : ycsb::DataSetKind::kInteger;
      ycsb::DataSet ds = ycsb::GenerateDataSet(dk, n, seed);
      ks.ints = std::move(ds.ints);
      break;
    }
  }
  return ks;
}

}  // namespace testing
}  // namespace hot
