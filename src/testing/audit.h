// Deep structural auditor for HOT trees (tentpole check #3).
//
// Builds on hot/validate.h (per-node k-constraint, discriminative-bit
// ordering, minimal layout, local Patricia shape, functional search routing)
// and adds the physical-representation checks validate.h leaves implicit:
//
//   * pointer-tag / size-bit consistency: the tagged entry's NodeType and
//     9-bit size field must agree with the node header and its computed
//     layout size, and re-encoding the node must reproduce the entry
//   * sparse-partial-key PEXT/PDEP round-trip: for every entry, depositing
//     its stored partial key at the node's absolute discriminative bit
//     positions into an otherwise-zero key and re-extracting — through both
//     the PEXT kernels and the scalar twin — must return the stored value
//   * the paper's height bound, in its per-leaf form: the compound-node
//     depth of every leaf is at most the leaf key's bit length (root
//     discriminative bits strictly ascend along any root-to-leaf path, so
//     each compound level consumes at least one key bit)
//
// Like validate.h this is quiescent-only: no concurrent writer may run.

#ifndef HOT_TESTING_AUDIT_H_
#define HOT_TESTING_AUDIT_H_

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>

#include "common/key.h"
#include "hot/node.h"
#include "hot/node_search.h"
#include "hot/validate.h"

namespace hot {
namespace testing {

struct AuditStats {
  size_t nodes = 0;
  size_t leaves = 0;
  unsigned max_compound_depth = 0;        // root node = depth 1
  unsigned root_height = 0;               // 0 for empty / single-leaf trees
  size_t layout_counts[kNumNodeTypes] = {};

  std::string Summary() const {
    std::ostringstream oss;
    oss << "nodes=" << nodes << " leaves=" << leaves
        << " max_depth=" << max_compound_depth << " root_height=" << root_height
        << " layouts=[";
    for (unsigned i = 0; i < kNumNodeTypes; ++i) {
      oss << (i ? "," : "") << layout_counts[i];
    }
    oss << "]";
    return oss.str();
  }
};

namespace detail {

// PDEP side of the round-trip: writes the dense partial key `pk` (low
// `num_bits` bits, MSB of the used range = positions[0]) into a zeroed key
// buffer at the given absolute bit positions.  Buffer must cover the largest
// position.
inline void DepositPartialKey(uint32_t pk, const uint16_t* positions,
                              unsigned num_bits, uint8_t* buf) {
  for (unsigned j = 0; j < num_bits; ++j) {
    if (pk & (1u << (num_bits - 1 - j))) {
      unsigned pos = positions[j];
      buf[pos / 8] |= static_cast<uint8_t>(0x80u >> (pos % 8));
    }
  }
}

}  // namespace detail

// Audits the physical entry/node pair: tag consistency plus the PEXT/PDEP
// round-trip for every stored partial key.
inline bool AuditNodePhysical(uint64_t entry, std::string* error) {
  std::ostringstream oss;
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  NodeRef node = NodeRef::FromEntry(entry);
  if (static_cast<NodeType>(node.header()->type) != HotEntry::Type(entry)) {
    oss << "header type " << static_cast<unsigned>(node.header()->type)
        << " != pointer tag " << static_cast<unsigned>(HotEntry::Type(entry));
    return fail(oss.str());
  }
  if (HotEntry::NodeSizeBytes(entry) != node.SizeBytes()) {
    oss << "entry size tag " << HotEntry::NodeSizeBytes(entry)
        << " != computed layout size " << node.SizeBytes();
    return fail(oss.str());
  }
  if (node.ToEntry() != entry) {
    return fail("re-encoding the node does not reproduce its tagged entry");
  }

  uint16_t positions[kMaxDiscBits];
  unsigned num_bits = DecodeBitPositions(node, positions);
  if (num_bits != node.num_bits()) {
    oss << "mask decodes to " << num_bits << " bits, header says "
        << node.num_bits();
    return fail(oss.str());
  }
  unsigned max_pos = positions[num_bits - 1];
  if (max_pos >= kMaxDiscBitPos) {
    oss << "discriminative bit position " << max_pos << " out of range";
    return fail(oss.str());
  }
  // A buffer covering the highest position plus the full 8-byte single-mask
  // window that may be loaded past it.
  uint8_t buf[kMaxKeyBytes + 8];
  size_t buf_len = max_pos / 8 + 1;
  KeyRef synthetic(buf, buf_len);
  for (unsigned i = 0; i < node.count(); ++i) {
    uint32_t pk = node.PartialKeyAt(i);
    std::memset(buf, 0, buf_len + 8);
    detail::DepositPartialKey(pk, positions, num_bits, buf);
    uint32_t simd = ExtractDensePartialKey(node, synthetic);
    uint32_t scalar = ExtractDensePartialKeyScalar(node, synthetic);
    if (simd != pk || scalar != pk) {
      oss << "partial key " << pk << " at entry " << i
          << " fails PEXT/PDEP round-trip: simd " << simd << " scalar "
          << scalar;
      return fail(oss.str());
    }
  }
  return true;
}

// Full-tree deep audit.  Runs ValidateHotNode on every node, the physical
// audit on every node entry, checks the per-leaf height bound, verifies
// strictly-ascending in-order leaves and the leaf count, and fills *stats.
template <typename KeyExtractor>
bool AuditHotTree(uint64_t root_entry, const KeyExtractor& extractor,
                  size_t expected_size, AuditStats* stats, std::string* error) {
  AuditStats local;
  std::string err;
  bool ok = true;
  bool have_prev = false;
  std::string prev_key;

  auto walk = [&](auto&& self, uint64_t entry, unsigned depth) -> void {
    if (!ok || HotEntry::IsEmpty(entry)) return;
    if (HotEntry::IsTid(entry)) {
      ++local.leaves;
      KeyScratch scratch;
      KeyRef key = extractor(HotEntry::TidPayload(entry), scratch);
      // A leaf at walk depth d has d-1 compound ancestors, each consuming at
      // least one discriminative bit of the key, all distinct and ascending.
      if (depth > 1 && depth - 1 > key.size() * 8) {
        std::ostringstream oss;
        oss << "height bound violated: leaf under " << depth - 1
            << " compound nodes but key has only " << key.size() * 8
            << " bits";
        err = oss.str();
        ok = false;
        return;
      }
      std::string cur(reinterpret_cast<const char*>(key.data()), key.size());
      if (have_prev && !(prev_key < cur)) {
        err = "in-order traversal not strictly ascending";
        ok = false;
        return;
      }
      prev_key = std::move(cur);
      have_prev = true;
      return;
    }
    NodeRef node = NodeRef::FromEntry(entry);
    ++local.nodes;
    ++local.layout_counts[static_cast<unsigned>(node.type())];
    if (depth > local.max_compound_depth) local.max_compound_depth = depth;
    if (!ValidateHotNode(node, extractor, &err) ||
        !AuditNodePhysical(entry, &err)) {
      ok = false;
      return;
    }
    for (unsigned i = 0; i < node.count() && ok; ++i) {
      self(self, node.values()[i], depth + 1);
    }
  };
  walk(walk, root_entry, 1);

  if (ok && local.leaves != expected_size) {
    std::ostringstream oss;
    oss << "leaf count " << local.leaves << " != expected size "
        << expected_size;
    err = oss.str();
    ok = false;
  }
  if (ok && HotEntry::IsNode(root_entry)) {
    local.root_height = NodeRef::FromEntry(root_entry).height();
  }
  if (stats != nullptr) *stats = local;
  if (!ok && error != nullptr) *error = err;
  return ok;
}

}  // namespace testing
}  // namespace hot

#endif  // HOT_TESTING_AUDIT_H_
