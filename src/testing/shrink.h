// Greedy minimization of failing traces (tentpole check #4).
//
// Classic ddmin-flavoured reduction, specialized to the trace model: remove
// op chunks (halving the chunk size down to single ops), then shrink the
// keyspace and the per-op magnitudes.  The executor reduces op indices
// modulo the keyspace size, so shrinking ks_n never invalidates a trace.
// The predicate must be deterministic — with the differ it is.

#ifndef HOT_TESTING_SHRINK_H_
#define HOT_TESTING_SHRINK_H_

#include <algorithm>
#include <cstdint>
#include <functional>

#include "testing/trace.h"

namespace hot {
namespace testing {

struct ShrinkStats {
  size_t predicate_calls = 0;
  size_t ops_before = 0;
  size_t ops_after = 0;
};

// Returns the smallest trace found for which `still_fails` holds.  The input
// trace must itself fail.
inline Trace ShrinkTrace(const Trace& failing,
                         const std::function<bool(const Trace&)>& still_fails,
                         ShrinkStats* stats = nullptr) {
  Trace best = failing;
  ShrinkStats local;
  local.ops_before = failing.ops.size();
  auto fails = [&](const Trace& t) {
    ++local.predicate_calls;
    return still_fails(t);
  };

  // Phase 1: chunked op removal.  Audits and bulk loads shrink away like any
  // other op; the failure the predicate checks for keeps what matters.
  for (size_t chunk = std::max<size_t>(best.ops.size() / 2, 1); chunk >= 1;
       chunk /= 2) {
    bool removed_any = true;
    while (removed_any) {
      removed_any = false;
      for (size_t start = 0; start < best.ops.size();) {
        Trace candidate = best;
        size_t end = std::min(start + chunk, candidate.ops.size());
        candidate.ops.erase(candidate.ops.begin() + start,
                            candidate.ops.begin() + end);
        if (!candidate.ops.empty() && fails(candidate)) {
          best = std::move(candidate);
          removed_any = true;
          // retry the same offset: the next chunk slid into place
        } else {
          start += chunk;
        }
      }
    }
    if (chunk == 1) break;
  }

  // Phase 2: shrink the keyspace (indices fold modulo n at execution).
  while (best.ks_n > 2) {
    Trace candidate = best;
    candidate.ks_n = best.ks_n / 2;
    if (fails(candidate)) {
      best = std::move(candidate);
    } else {
      break;
    }
  }

  // Phase 3: shrink magnitudes — scan limits and bulk-load counts.
  for (Op& op : best.ops) {
    if (op.kind != OpKind::kScan && op.kind != OpKind::kBulkLoad) continue;
    while (op.arg > 1) {
      Trace candidate = best;  // best already holds the halved prefix ops
      uint32_t halved = op.arg / 2;
      // Locate this op in the copy by position.
      candidate.ops[static_cast<size_t>(&op - best.ops.data())].arg = halved;
      if (fails(candidate)) {
        op.arg = halved;
      } else {
        break;
      }
    }
  }

  local.ops_after = best.ops.size();
  if (stats != nullptr) *stats = local;
  return best;
}

}  // namespace testing
}  // namespace hot

#endif  // HOT_TESTING_SHRINK_H_
