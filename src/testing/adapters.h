// Capability detection + uniform wrappers over the five index types
// (tentpole check #2 support).
//
// The differential executor (differ.h) drives any index exposing the shared
// core — Insert(value) / Lookup(key) / Remove(key) / ScanFrom(start, limit,
// fn) / size() — and uses these concepts to exercise optional surfaces where
// they exist (Upsert, BulkLoad, iterator LowerBound, the batched descents,
// structural checkers) and to emulate them where they do not, so every index
// answers every trace op.

#ifndef HOT_TESTING_ADAPTERS_H_
#define HOT_TESTING_ADAPTERS_H_

#include <concepts>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/extractors.h"
#include "common/key.h"

namespace hot {
namespace testing {

template <typename T>
concept HasUpsert = requires(T& t, uint64_t v) {
  { t.Upsert(v) } -> std::same_as<std::optional<uint64_t>>;
};

template <typename T>
concept HasBulkLoad = requires(T& t, const std::vector<uint64_t>& vals) {
  t.BulkLoad(vals);
};

template <typename T>
concept HasLowerBoundIter = requires(const T& t, KeyRef k) {
  { t.LowerBound(k).valid() } -> std::convertible_to<bool>;
};

template <typename T>
concept HasLookupBatch =
    requires(const T& t, std::span<const KeyRef> keys,
             std::span<std::optional<uint64_t>> out) {
      t.LookupBatch(keys, out);
    };

template <typename T>
concept HasLowerBoundBatch =
    requires(const T& t, std::span<const KeyRef> keys,
             typename T::Iterator* out) {
      t.LowerBoundBatch(keys, out);
    };

// HOT tries expose their tagged root entry + extractor for the deep
// structural audit (audit.h).
template <typename T>
concept HasRootEntry = requires(const T& t) {
  { t.root_entry() } -> std::convertible_to<uint64_t>;
  t.extractor();
};

// Competitor indexes expose a self-check of their own invariants.
template <typename T>
concept HasCheckStructure = requires(const T& t, std::string* err) {
  { t.CheckStructure(err) } -> std::convertible_to<bool>;
};

// Range-partitioned wrappers (ycsb/range_sharded.h) expose their shards in
// key order; the deep audit recurses into each shard, and the telemetry
// fold sums per-shard snapshots.
template <typename T>
concept HasShards = requires(const T& t, unsigned s) {
  { t.shard_count() } -> std::convertible_to<unsigned>;
  { t.shard_size(s) } -> std::convertible_to<size_t>;
  t.ForEachShard([](const auto&) {});
};

// --- uniform wrappers ------------------------------------------------------

// Upsert semantics on indexes without Upsert: the stored value is determined
// by its key in every trace keyspace, so insert-if-absent is equivalent.
// Returns the previous value if the key was present.
template <typename Index>
std::optional<uint64_t> IndexUpsert(Index& index, uint64_t value) {
  if constexpr (HasUpsert<Index>) {
    return index.Upsert(value);
  } else {
    return index.Insert(value) ? std::nullopt
                               : std::optional<uint64_t>(value);
  }
}

// First value with key >= `key`, through the iterator when the index has
// one (exercising the LowerBound edge cases), else via a 1-element scan.
template <typename Index>
std::optional<uint64_t> IndexLowerBound(const Index& index, KeyRef key) {
  if constexpr (HasLowerBoundIter<Index>) {
    auto it = index.LowerBound(key);
    if (!it.valid()) return std::nullopt;
    return it.value();
  } else {
    std::optional<uint64_t> out;
    index.ScanFrom(key, 1, [&](uint64_t v) { out = v; });
    return out;
  }
}

// Bulk-builds from values sorted ascending by key; falls back to an insert
// loop on indexes without a bulk path.
template <typename Index>
void IndexBulkLoad(Index& index, const std::vector<uint64_t>& sorted_values) {
  if constexpr (HasBulkLoad<Index>) {
    index.BulkLoad(sorted_values);
  } else {
    for (uint64_t v : sorted_values) index.Insert(v);
  }
}

}  // namespace testing
}  // namespace hot

#endif  // HOT_TESTING_ADAPTERS_H_
