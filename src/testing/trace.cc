#include "testing/trace.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/rng.h"

namespace hot {
namespace testing {

namespace {

char OpChar(OpKind k) {
  switch (k) {
    case OpKind::kInsert:
      return 'i';
    case OpKind::kUpsert:
      return 'u';
    case OpKind::kRemove:
      return 'r';
    case OpKind::kLookup:
      return 'l';
    case OpKind::kLowerBound:
      return 'b';
    case OpKind::kScan:
      return 's';
    case OpKind::kBulkLoad:
      return 'B';
    case OpKind::kAudit:
      return 'a';
  }
  return '?';
}

}  // namespace

std::string Trace::Serialize() const {
  std::string out;
  out.reserve(32 + ops.size() * 12);
  char line[96];
  std::snprintf(line, sizeof(line), "hot-fuzz-trace v1\nkeyspace %s %" PRIu32
                                    " %" PRIu64 "\nops %zu\n",
                KeySpaceKindName(ks_kind), ks_n, ks_seed, ops.size());
  out += line;
  for (const Op& op : ops) {
    switch (op.kind) {
      case OpKind::kAudit:
        out += "a\n";
        break;
      case OpKind::kScan:
        std::snprintf(line, sizeof(line), "s %" PRIu32 " %" PRIu32 "\n",
                      op.idx, op.arg);
        out += line;
        break;
      case OpKind::kBulkLoad:
        std::snprintf(line, sizeof(line), "B %" PRIu32 "\n", op.arg);
        out += line;
        break;
      default:
        std::snprintf(line, sizeof(line), "%c %" PRIu32 "\n", OpChar(op.kind),
                      op.idx);
        out += line;
        break;
    }
  }
  out += "end\n";
  return out;
}

bool Trace::Parse(const std::string& text, Trace* out, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "hot-fuzz-trace v1") {
    return fail("bad header (expected 'hot-fuzz-trace v1')");
  }
  if (!std::getline(in, line)) return fail("missing keyspace line");
  {
    std::istringstream ls(line);
    std::string tag, kind_name;
    uint64_t n = 0;
    if (!(ls >> tag >> kind_name >> n >> out->ks_seed) || tag != "keyspace") {
      return fail("bad keyspace line: " + line);
    }
    if (!KeySpaceKindFromName(kind_name, &out->ks_kind)) {
      return fail("unknown keyspace kind: " + kind_name);
    }
    out->ks_n = static_cast<uint32_t>(n);
  }
  size_t declared_ops = 0;
  if (!std::getline(in, line)) return fail("missing ops line");
  {
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag >> declared_ops) || tag != "ops") {
      return fail("bad ops line: " + line);
    }
  }
  out->ops.clear();
  out->ops.reserve(declared_ops);
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line == "end") {
      saw_end = true;
      break;
    }
    std::istringstream ls(line);
    std::string code;
    ls >> code;
    if (code.size() != 1) return fail("bad op line: " + line);
    Op op{};
    switch (code[0]) {
      case 'i':
        op.kind = OpKind::kInsert;
        break;
      case 'u':
        op.kind = OpKind::kUpsert;
        break;
      case 'r':
        op.kind = OpKind::kRemove;
        break;
      case 'l':
        op.kind = OpKind::kLookup;
        break;
      case 'b':
        op.kind = OpKind::kLowerBound;
        break;
      case 's':
        op.kind = OpKind::kScan;
        break;
      case 'B':
        op.kind = OpKind::kBulkLoad;
        break;
      case 'a':
        op.kind = OpKind::kAudit;
        break;
      default:
        return fail("unknown op code: " + line);
    }
    if (op.kind == OpKind::kScan) {
      if (!(ls >> op.idx >> op.arg)) return fail("bad scan op: " + line);
    } else if (op.kind == OpKind::kBulkLoad) {
      if (!(ls >> op.arg)) return fail("bad bulk-load op: " + line);
    } else if (op.kind != OpKind::kAudit) {
      if (!(ls >> op.idx)) return fail("bad op operand: " + line);
    }
    out->ops.push_back(op);
  }
  if (!saw_end) return fail("missing 'end' terminator");
  if (out->ops.size() != declared_ops) {
    return fail("op count mismatch: declared " + std::to_string(declared_ops) +
                ", got " + std::to_string(out->ops.size()));
  }
  return true;
}

bool Trace::SaveFile(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << Serialize();
  return static_cast<bool>(f);
}

bool Trace::LoadFile(const std::string& path, Trace* out, std::string* error) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  return Parse(buf.str(), out, error);
}

Trace GenerateTrace(const TraceGenConfig& cfg) {
  Trace t;
  t.ks_kind = cfg.kind;
  t.ks_n = cfg.n;
  t.ks_seed = cfg.seed;
  if (cfg.n == 0 || cfg.num_ops == 0) return t;

  SplitMix64 rng(cfg.seed ^ 0x5ee5ee5ee5ee5eeULL);
  ZipfianGenerator zipf(cfg.n, 0.99, cfg.seed ^ 0x21f);
  // Zipf ranks favour low indices; route them through a seeded permutation
  // so the hot set is spread over the keyspace.
  std::vector<uint32_t> perm;
  if (cfg.zipf_pick) perm = RandomPermutation(cfg.n, rng);
  auto pick = [&]() -> uint32_t {
    if (cfg.zipf_pick) return perm[static_cast<uint32_t>(zipf.Next())];
    return static_cast<uint32_t>(rng.NextBounded(cfg.n));
  };

  const unsigned weights[6] = {cfg.w_insert,     cfg.w_upsert, cfg.w_remove,
                               cfg.w_lookup,     cfg.w_lower_bound,
                               cfg.w_scan};
  unsigned total_w = 0;
  for (unsigned w : weights) total_w += w;
  if (total_w == 0) total_w = 1;

  t.ops.reserve(cfg.num_ops + cfg.num_ops / (cfg.audit_every ? cfg.audit_every
                                                             : cfg.num_ops) +
                2);
  if (cfg.allow_bulk_load && rng.NextBounded(2) == 0) {
    // Start from a bulk-loaded tree of the m smallest keys.
    uint32_t m = static_cast<uint32_t>(rng.NextBounded(cfg.n)) + 1;
    t.ops.push_back(Op{OpKind::kBulkLoad, 0, m});
  }
  for (size_t i = 0; i < cfg.num_ops; ++i) {
    unsigned roll = static_cast<unsigned>(rng.NextBounded(total_w));
    Op op{};
    if (roll < weights[0]) {
      op.kind = OpKind::kInsert;
    } else if (roll < weights[0] + weights[1]) {
      op.kind = OpKind::kUpsert;
    } else if (roll < weights[0] + weights[1] + weights[2]) {
      op.kind = OpKind::kRemove;
    } else if (roll < weights[0] + weights[1] + weights[2] + weights[3]) {
      op.kind = OpKind::kLookup;
    } else if (roll <
               weights[0] + weights[1] + weights[2] + weights[3] + weights[4]) {
      op.kind = OpKind::kLowerBound;
    } else {
      op.kind = OpKind::kScan;
      op.arg = 1 + static_cast<uint32_t>(rng.NextBounded(64));
    }
    op.idx = pick();
    t.ops.push_back(op);
    if (cfg.audit_every != 0 && (i + 1) % cfg.audit_every == 0) {
      t.ops.push_back(Op{OpKind::kAudit, 0, 0});
    }
  }
  t.ops.push_back(Op{OpKind::kAudit, 0, 0});
  return t;
}

}  // namespace testing
}  // namespace hot
