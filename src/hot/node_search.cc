#include "hot/node_search.h"

namespace hot {

unsigned DecodeBitPositions(NodeRef node, uint16_t* out) {
  unsigned n = 0;
  if (node.mask_slots() == 0) {
    unsigned base = *node.single_offset() * 8u;
    uint64_t mask = *node.single_mask();
    // Mask bit 63 corresponds to the first bit of the window (smallest key
    // bit position); walk from most significant to least significant so the
    // output is ascending.
    while (mask != 0) {
      unsigned msb = BitScanReverse64(mask);
      out[n++] = static_cast<uint16_t>(base + (63 - msb));
      mask &= ~(1ULL << msb);
    }
    return n;
  }
  const uint8_t* offs = node.byte_offsets();
  const uint64_t* words = node.mask_words();
  unsigned num_words = node.num_mask_words();
  for (unsigned w = 0; w < num_words; ++w) {
    uint64_t mask = words[w];
    while (mask != 0) {
      unsigned msb = BitScanReverse64(mask);
      unsigned lane = 63 - msb;       // 0 = first byte of this group
      unsigned slot = w * 8 + lane / 8;
      unsigned bit_in_byte = lane % 8;
      out[n++] = static_cast<uint16_t>(offs[slot] * 8u + bit_in_byte);
      mask &= ~(1ULL << msb);
    }
  }
  return n;
}

uint32_t ExtractDensePartialKeyScalar(NodeRef node, KeyRef key) {
  uint16_t bits[kMaxDiscBits];
  unsigned n = DecodeBitPositions(node, bits);
  uint32_t dense = 0;
  for (unsigned i = 0; i < n; ++i) {
    dense = (dense << 1) | key.Bit(bits[i]);
  }
  return dense;
}

}  // namespace hot
