// Logical (decoded) view of a HOT node, and the structure-adapting node
// operations of paper §3.2 / §4.4.
//
// Read operations run directly on the physical layouts (node_search.h).
// Structural modifications — insert, split, pull-up, delete — decode the
// node into a LogicalNode scratch struct, manipulate it there, and re-encode
// into the smallest fitting physical layout (nodes are copy-on-write, §4.2,
// so a new allocation is made anyway).
//
// Representation invariants of a LogicalNode:
//   * bits[0..num_bits) are the node's discriminative bit positions,
//     strictly ascending; bits[0] is the bit of the node-local root BiNode.
//   * sparse[i] is entry i's sparse partial key in *left-aligned* form:
//     rank j (position bits[j]) lives at integer bit (31 - j).  A bit is set
//     iff the path from the local root BiNode to entry i turns "1" at that
//     BiNode; all other bits are 0 (paper §4.4).
//   * sparse[] is strictly increasing, so entry order == key order, and
//     sparse[0] == 0.
//   * entries[i] is the tagged child slot (tid or node pointer).
//
// During an insert the LogicalNode may transiently hold kMaxFanout+1 entries
// (and up to kMaxFanout discriminative bits); Split() restores the
// k-constraint.

#ifndef HOT_HOT_LOGICAL_NODE_H_
#define HOT_HOT_LOGICAL_NODE_H_

#include <cassert>
#include <cstdint>
#include <cstring>

#include "common/bits.h"
#include "hot/node.h"
#include "hot/node_search.h"

namespace hot {

struct LogicalNode {
  unsigned height = 1;
  unsigned count = 0;
  unsigned num_bits = 0;
  uint16_t bits[kMaxFanout];          // ascending absolute bit positions
  uint32_t sparse[kMaxFanout + 1];    // left-aligned sparse partial keys
  uint64_t entries[kMaxFanout + 1];   // tagged child slots

  // Integer bit holding rank `j` in the left-aligned representation.
  static uint32_t RankBit(unsigned j) { return 1u << (31 - j); }

  // Mask selecting all ranks strictly smaller than `j` (the "prefix" above
  // a mismatching bit, §4.4).
  static uint32_t PrefixMask(unsigned j) {
    return j == 0 ? 0u : (~0u << (32 - j));
  }
};

// ---------------------------------------------------------------------------
// Decode / encode
// ---------------------------------------------------------------------------

inline LogicalNode Decode(NodeRef node) {
  LogicalNode ln;
  ln.height = node.height();
  ln.count = node.count();
  ln.num_bits = DecodeBitPositions(node, ln.bits);
  assert(ln.num_bits == node.num_bits());
  unsigned shift = 32 - ln.num_bits;
  for (unsigned i = 0; i < ln.count; ++i) {
    ln.sparse[i] = node.PartialKeyAt(i) << shift;
  }
  std::memcpy(ln.entries, node.values(), ln.count * sizeof(uint64_t));
  return ln;
}

// Chooses the smallest of the nine layouts for the given discriminative bit
// positions and bit count (§4.2: first dimension = partial-key width,
// second dimension = mask representation).
inline NodeType ChooseNodeType(const uint16_t* bits, unsigned num_bits) {
  assert(num_bits >= 1 && num_bits <= kMaxDiscBits);
  unsigned first_byte = bits[0] / 8;
  unsigned last_byte = bits[num_bits - 1] / 8;
  unsigned distinct_bytes = 1;
  for (unsigned i = 1; i < num_bits; ++i) {
    if (bits[i] / 8 != bits[i - 1] / 8) ++distinct_bytes;
  }
  if (last_byte - first_byte <= 7) {
    if (num_bits <= 8) return NodeType::kSingleMask8;
    if (num_bits <= 16) return NodeType::kSingleMask16;
    return NodeType::kSingleMask32;
  }
  if (distinct_bytes <= 8) {
    if (num_bits <= 8) return NodeType::kMultiMask8x8;
    if (num_bits <= 16) return NodeType::kMultiMask8x16;
    return NodeType::kMultiMask8x32;
  }
  if (distinct_bytes <= 16) {
    // >8 distinct bytes imply >8 discriminative bits.
    if (num_bits <= 16) return NodeType::kMultiMask16x16;
    return NodeType::kMultiMask16x32;
  }
  return NodeType::kMultiMask32x32;
}

// Encodes a logical node into a fresh physical node (copy-on-write).
template <typename Alloc>
inline NodeRef Encode(const LogicalNode& ln, Alloc& alloc) {
  assert(ln.count >= 2 && ln.count <= kMaxFanout);
  assert(ln.num_bits >= 1 && ln.num_bits <= kMaxDiscBits);
  NodeType type = ChooseNodeType(ln.bits, ln.num_bits);
  NodeRef node = AllocateNode(alloc, type, ln.count, ln.height, ln.num_bits);

  if (node.mask_slots() == 0) {
    unsigned offset = ln.bits[0] / 8;
    uint64_t mask = 0;
    for (unsigned i = 0; i < ln.num_bits; ++i) {
      unsigned rel = ln.bits[i] - offset * 8;  // 0..63 within the window
      mask |= 1ULL << (63 - rel);
    }
    *node.single_offset() = static_cast<uint8_t>(offset);
    *node.single_mask() = mask;
  } else {
    uint8_t* offs = node.byte_offsets();
    uint64_t* words = node.mask_words();
    unsigned slot = ~0u;
    int last_byte = -1;
    for (unsigned i = 0; i < ln.num_bits; ++i) {
      int byte = ln.bits[i] / 8;
      if (byte != last_byte) {
        ++slot;
        offs[slot] = static_cast<uint8_t>(byte);
        last_byte = byte;
      }
      unsigned lane = slot % 8;             // byte lane within the mask word
      unsigned bit_in_byte = ln.bits[i] % 8;
      words[slot / 8] |= 1ULL << (63 - (lane * 8 + bit_in_byte));
    }
    // Unused tail slots keep offset 0 / mask 0: they gather key[0] and
    // extract nothing.
  }

  unsigned shift = 32 - ln.num_bits;
  for (unsigned i = 0; i < ln.count; ++i) {
    assert((ln.sparse[i] & ((1u << shift) - 1)) == 0 && shift != 32);
    node.SetPartialKeyAt(i, ln.sparse[i] >> shift);
  }
  std::memcpy(node.values(), ln.entries, ln.count * sizeof(uint64_t));
  return node;
}

// ---------------------------------------------------------------------------
// Bit-set manipulation
// ---------------------------------------------------------------------------

// Rank `pos` would occupy among the node's bits; *exists reports whether it
// is already present.
inline unsigned BitRank(const LogicalNode& ln, unsigned pos, bool* exists) {
  unsigned r = 0;
  while (r < ln.num_bits && ln.bits[r] < pos) ++r;
  *exists = (r < ln.num_bits && ln.bits[r] == pos);
  return r;
}

// Inserts a new discriminative bit position at rank `rank`, recoding every
// sparse partial key (the PDEP recode of §4.4: existing bits keep their
// relative order, the new position reads as 0 everywhere).
inline void AddBitAtRank(LogicalNode& ln, unsigned rank, unsigned pos) {
  assert(ln.num_bits < kMaxFanout);
  for (unsigned i = ln.num_bits; i > rank; --i) ln.bits[i] = ln.bits[i - 1];
  ln.bits[rank] = static_cast<uint16_t>(pos);
  ++ln.num_bits;
  uint32_t hi = LogicalNode::PrefixMask(rank);
  for (unsigned i = 0; i < ln.count; ++i) {
    uint32_t s = ln.sparse[i];
    ln.sparse[i] = (s & hi) | ((s & ~hi) >> 1);
  }
}

// Drops unused discriminative bits and renormalizes the sparse keys after a
// removal or a split.  The set of bits actually used by the local trie is
// exactly union(sparse) & ~intersection(sparse): every BiNode has a 1-side
// (so its bit is in the union) and a 0-side (so it is not in the
// intersection), while inherited prefix bits are set in *all* entries and
// positions outside every path in none.
inline void RecomputeBits(LogicalNode& ln) {
  assert(ln.count >= 1);
  if (ln.count == 1) {
    ln.num_bits = 0;
    ln.sparse[0] = 0;
    return;
  }
  uint32_t uni = 0, inter = ~0u;
  for (unsigned i = 0; i < ln.count; ++i) {
    uni |= ln.sparse[i];
    inter &= ln.sparse[i];
  }
  uint32_t keep = uni & ~inter;
  assert(keep != 0 && "distinct entries must diverge somewhere");
  unsigned new_num = Popcount32(keep);
  // Compact the bit-position list.
  unsigned w = 0;
  for (unsigned r = 0; r < ln.num_bits; ++r) {
    if (keep & LogicalNode::RankBit(r)) ln.bits[w++] = ln.bits[r];
  }
  assert(w == new_num);
  // PEXT each sparse key through the kept mask, then left-align again.
  unsigned shift = 32 - new_num;
  for (unsigned i = 0; i < ln.count; ++i) {
    ln.sparse[i] = Pext32(ln.sparse[i], keep) << shift;
  }
  ln.num_bits = new_num;
}

// ---------------------------------------------------------------------------
// Affected range (paper §4.4)
// ---------------------------------------------------------------------------

// Entries in the subtree of the mismatching BiNode: exactly those whose
// sparse partial key agrees with the search-path candidate on every
// discriminative bit above the mismatch rank.  The range is contiguous
// around the candidate because entries are in key order.
struct AffectedRange {
  unsigned first;
  unsigned last;  // inclusive
};

inline AffectedRange FindAffectedRange(const LogicalNode& ln,
                                       unsigned candidate,
                                       unsigned mismatch_rank) {
  uint32_t prefix = LogicalNode::PrefixMask(mismatch_rank);
  uint32_t want = ln.sparse[candidate] & prefix;
  AffectedRange range{candidate, candidate};
  while (range.first > 0 && (ln.sparse[range.first - 1] & prefix) == want) {
    --range.first;
  }
  while (range.last + 1 < ln.count &&
         (ln.sparse[range.last + 1] & prefix) == want) {
    ++range.last;
  }
  return range;
}

// ---------------------------------------------------------------------------
// Insert (normal case, §3.2 / §4.4)
// ---------------------------------------------------------------------------

// Inserts `new_entry`, whose key first diverges from the keys below the
// candidate entry at absolute bit `mismatch_pos` with bit value `key_bit`.
// The caller must afterwards check count > kMaxFanout and split.
// Returns the index at which the entry was placed.
inline unsigned LogicalInsert(LogicalNode& ln, unsigned candidate,
                              unsigned mismatch_pos, unsigned key_bit,
                              uint64_t new_entry) {
  bool exists;
  unsigned rank = BitRank(ln, mismatch_pos, &exists);
  if (!exists) AddBitAtRank(ln, rank, mismatch_pos);
  AffectedRange range = FindAffectedRange(ln, candidate, rank);
  uint32_t prefix = ln.sparse[candidate] & LogicalNode::PrefixMask(rank);
  uint32_t rank_bit = LogicalNode::RankBit(rank);

  unsigned insert_at;
  uint32_t new_sparse;
  if (key_bit == 1) {
    // New key turns 1 at the new BiNode: it follows the affected subtree,
    // whose entries keep 0 at the mismatch rank (not on their paths).
    insert_at = range.last + 1;
    new_sparse = prefix | rank_bit;
  } else {
    // New key turns 0: the affected subtree moves to the 1-side, so its
    // entries' paths now include the new BiNode with a 1-turn.
    for (unsigned i = range.first; i <= range.last; ++i) {
      ln.sparse[i] |= rank_bit;
    }
    insert_at = range.first;
    new_sparse = prefix;
  }

  for (unsigned i = ln.count; i > insert_at; --i) {
    ln.sparse[i] = ln.sparse[i - 1];
    ln.entries[i] = ln.entries[i - 1];
  }
  ln.sparse[insert_at] = new_sparse;
  ln.entries[insert_at] = new_entry;
  ++ln.count;
  return insert_at;
}

// ---------------------------------------------------------------------------
// Split (overflow handling, §3.2)
// ---------------------------------------------------------------------------

// Height contributed by an entry: node children report their stored height,
// tuple identifiers contribute 0 (paper §3.1: h(n) = 1 for childless nodes).
inline unsigned EntryHeight(uint64_t e) {
  return HotEntry::IsNode(e) ? NodeRef::FromEntry(e).height() : 0;
}

// Exact height of a compound node per the paper's definition:
// 1 + max(height of compound children), 1 if all entries are tids.
inline unsigned ComputeHeight(const uint64_t* entries, unsigned count) {
  unsigned max_child = 0;
  for (unsigned i = 0; i < count; ++i) {
    unsigned h = EntryHeight(entries[i]);
    if (h > max_child) max_child = h;
  }
  return max_child + 1;
}

// Splitting severs the local root BiNode (rank 0, the node's smallest
// discriminative bit): the 0-side entries form the left half, the 1-side the
// right half.  Each half's height is recomputed exactly from its children —
// keeping heights tight is what lets intermediate-node creation find "room"
// below the parent (§3.2) and keeps the overall height logarithmic.  A half
// with a single entry collapses to that entry directly (the parent
// references it without an intermediate one-entry node).
struct SplitResult {
  unsigned bit_pos;   // absolute position of the severed root BiNode
  LogicalNode left;
  LogicalNode right;
};

inline SplitResult Split(const LogicalNode& ln) {
  assert(ln.count >= 2 && ln.num_bits >= 1);
  SplitResult out;
  out.bit_pos = ln.bits[0];
  uint32_t root_bit = LogicalNode::RankBit(0);
  unsigned boundary = 0;
  while (boundary < ln.count && (ln.sparse[boundary] & root_bit) == 0) {
    ++boundary;
  }
  assert(boundary > 0 && boundary < ln.count);

  auto fill = [&](LogicalNode& half, unsigned from, unsigned to) {
    half.height = ComputeHeight(ln.entries + from, to - from);
    half.count = to - from;
    half.num_bits = ln.num_bits;
    std::memcpy(half.bits, ln.bits, ln.num_bits * sizeof(uint16_t));
    for (unsigned i = from; i < to; ++i) {
      half.sparse[i - from] = ln.sparse[i];
      half.entries[i - from] = ln.entries[i];
    }
    RecomputeBits(half);
  };
  fill(out.left, 0, boundary);
  fill(out.right, boundary, ln.count);
  return out;
}

// ---------------------------------------------------------------------------
// Parent pull-up support (§3.2)
// ---------------------------------------------------------------------------

// Replaces entry `idx` (the slot that pointed to an overflowed child) with
// two entries separated by the child's severed root BiNode at `bit_pos`.
// The caller must afterwards check count > kMaxFanout.
inline void ReplaceEntryWithTwo(LogicalNode& ln, unsigned idx,
                                unsigned bit_pos, uint64_t left_entry,
                                uint64_t right_entry) {
  bool exists;
  unsigned rank = BitRank(ln, bit_pos, &exists);
  if (!exists) AddBitAtRank(ln, rank, bit_pos);
  uint32_t rank_bit = LogicalNode::RankBit(rank);
  assert((ln.sparse[idx] & rank_bit) == 0 &&
         "pulled-up bit lies below every bit on the path to the slot");
  for (unsigned i = ln.count; i > idx + 1; --i) {
    ln.sparse[i] = ln.sparse[i - 1];
    ln.entries[i] = ln.entries[i - 1];
  }
  ln.entries[idx] = left_entry;
  ln.sparse[idx + 1] = ln.sparse[idx] | rank_bit;
  ln.entries[idx + 1] = right_entry;
  ++ln.count;
}

// ---------------------------------------------------------------------------
// Delete (normal case, §3.2)
// ---------------------------------------------------------------------------

// Rank (leading position index) at which two distinct sparse keys first
// diverge — the rank of the BiNode separating them in the local trie.
inline unsigned DivergenceRank(uint32_t a, uint32_t b) {
  assert(a != b);
  return static_cast<unsigned>(std::countl_zero(a ^ b));
}

// Removes entry `idx` and drops discriminative bits that became unused —
// the sparse representation makes this purely local (§4.4: "In case of a
// deletion this allows to remove unused discriminative bits").
//
// Removing a leaf also removes its parent BiNode B.  If the leaf was B's
// 0-side child, the entries of B's 1-side subtree carried a 1-bit for B on
// their paths; that bit must be cleared, or it lingers as a stale turn at a
// BiNode that no longer exists (corrupting searches if the same bit
// position is still used elsewhere in the node).
inline void RemoveEntry(LogicalNode& ln, unsigned idx) {
  assert(idx < ln.count);
  if (ln.count > 1) {
    // The parent BiNode of leaf `idx` is the deeper of the divergence
    // points with its two neighbours.
    int left_rank = idx > 0 ? static_cast<int>(DivergenceRank(
                                  ln.sparse[idx - 1], ln.sparse[idx]))
                            : -1;
    int right_rank = idx + 1 < ln.count
                         ? static_cast<int>(DivergenceRank(
                               ln.sparse[idx], ln.sparse[idx + 1]))
                         : -1;
    if (right_rank > left_rank) {
      // `idx` was the 0-side child: clear the vanished BiNode's bit in the
      // 1-side sibling subtree (the contiguous run sharing idx's prefix
      // above the divergence rank).
      unsigned rank = static_cast<unsigned>(right_rank);
      uint32_t rank_bit = LogicalNode::RankBit(rank);
      uint32_t prefix = LogicalNode::PrefixMask(rank);
      uint32_t want = ln.sparse[idx] & prefix;
      for (unsigned j = idx + 1; j < ln.count &&
                                 (ln.sparse[j] & prefix) == want &&
                                 (ln.sparse[j] & rank_bit) != 0;
           ++j) {
        ln.sparse[j] &= ~rank_bit;
      }
    }
    // (If `idx` was the 1-side child, the 0-side sibling subtree carries
    // 0-bits for B already — nothing to clear.)
  }
  for (unsigned i = idx; i + 1 < ln.count; ++i) {
    ln.sparse[i] = ln.sparse[i + 1];
    ln.entries[i] = ln.entries[i + 1];
  }
  --ln.count;
  RecomputeBits(ln);
}

// Builds the two-entry node used by leaf-node pushdown and root creation:
// one BiNode at `bit_pos`, the 0-side entry first.
inline LogicalNode MakeTwoEntryNode(unsigned bit_pos, uint64_t zero_entry,
                                    uint64_t one_entry, unsigned height) {
  LogicalNode ln;
  ln.height = height;
  ln.count = 2;
  ln.num_bits = 1;
  ln.bits[0] = static_cast<uint16_t>(bit_pos);
  ln.sparse[0] = 0;
  ln.sparse[1] = LogicalNode::RankBit(0);
  ln.entries[0] = zero_entry;
  ln.entries[1] = one_entry;
  return ln;
}

}  // namespace hot

#endif  // HOT_HOT_LOGICAL_NODE_H_
