// Physical HOT node layouts (paper §4.1, §4.2, Fig. 6).
//
// A HOT node is a linearized k-constrained binary Patricia trie (k = 32):
// up to 31 discriminative bit positions and up to 32 entries.  Each node
// stores, in one contiguous allocation:
//
//   [ header | bit-position section | sparse partial keys | values ]
//
// The bit-position section comes in four flavours — a single 64-bit mask
// with one byte offset, or 8/16/32 per-byte 8-bit masks with their byte
// offsets (stored pre-combined into 64-bit PEXT mask words) — and the
// partial keys in three widths (8/16/32 bits), yielding the paper's nine
// layouts.  For every node the smallest layout that fits is chosen.
//
// Entries ("values") are 64-bit words: MSB set = tuple identifier (63-bit
// payload); MSB clear = child pointer with the node's layout encoded in the
// low 4 bits (§4.5 — the tag is decoded while the prefetch of the node's
// first cache lines is in flight).

#ifndef HOT_HOT_NODE_H_
#define HOT_HOT_NODE_H_

#include <cassert>
#include <cstdint>
#include <cstring>

#include "common/alloc.h"
#include "common/bits.h"
#include "common/locks.h"
#include "common/simd.h"

namespace hot {

// ---------------------------------------------------------------------------
// Compile-time parameters
// ---------------------------------------------------------------------------

// Maximum node fanout (paper §4.1 fixes k = 32: large enough for cache
// efficiency, small enough for fast SIMD updates, and 32 entries need at
// most 31 discriminative bits, which fits 32-bit partial-key lanes).
inline constexpr unsigned kMaxFanout = 32;
inline constexpr unsigned kMaxDiscBits = kMaxFanout - 1;

// Byte offsets inside nodes are 8 bit wide (Fig. 6), so discriminative bits
// must lie within the first 256 key bytes.  Keys longer than this limit are
// rejected at the API boundary (same restriction as the reference
// implementation).
inline constexpr size_t kMaxKeyBytes = 256;
inline constexpr size_t kMaxDiscBitPos = kMaxKeyBytes * 8;

// Maximum tree depth: heights are uint8_t ranks that strictly decrease along
// every root-to-leaf path.
inline constexpr unsigned kMaxDepth = 256;

// ---------------------------------------------------------------------------
// Node types (the nine layouts)
// ---------------------------------------------------------------------------

enum class NodeType : uint8_t {
  kSingleMask8 = 0,    // one 64-bit mask, 8-bit partial keys
  kSingleMask16 = 1,   // one 64-bit mask, 16-bit partial keys
  kSingleMask32 = 2,   // one 64-bit mask, 32-bit partial keys
  kMultiMask8x8 = 3,   // 8 byte-masks, 8-bit partial keys
  kMultiMask8x16 = 4,  // 8 byte-masks, 16-bit partial keys
  kMultiMask8x32 = 5,  // 8 byte-masks, 32-bit partial keys
  kMultiMask16x16 = 6, // 16 byte-masks, 16-bit partial keys
  kMultiMask16x32 = 7, // 16 byte-masks, 32-bit partial keys
  kMultiMask32x32 = 8, // 32 byte-masks, 32-bit partial keys
};

inline constexpr unsigned kNumNodeTypes = 9;

// Number of byte-offset/mask slots; 0 means single-mask layout.
inline constexpr unsigned MaskSlots(NodeType t) {
  switch (t) {
    case NodeType::kSingleMask8:
    case NodeType::kSingleMask16:
    case NodeType::kSingleMask32:
      return 0;
    case NodeType::kMultiMask8x8:
    case NodeType::kMultiMask8x16:
    case NodeType::kMultiMask8x32:
      return 8;
    case NodeType::kMultiMask16x16:
    case NodeType::kMultiMask16x32:
      return 16;
    case NodeType::kMultiMask32x32:
      return 32;
  }
  return 0;
}

// Partial-key width in bytes (1, 2, or 4).
inline constexpr unsigned PartialKeyBytes(NodeType t) {
  switch (t) {
    case NodeType::kSingleMask8:
    case NodeType::kMultiMask8x8:
      return 1;
    case NodeType::kSingleMask16:
    case NodeType::kMultiMask8x16:
    case NodeType::kMultiMask16x16:
      return 2;
    default:
      return 4;
  }
}

// ---------------------------------------------------------------------------
// Tagged 64-bit entries
// ---------------------------------------------------------------------------

// HotEntry is the universal child slot: empty, tuple identifier, or tagged
// node pointer.  Nodes are 16-byte aligned, leaving the low 4 bits for the
// NodeType tag; x86-64 user pointers are below 2^48, leaving bits 48..56
// for the node's byte size (the largest layout is 456 bytes < 512).  The
// size rides in the pointer so the §4.5 prefetch can cover exactly the
// node's cache lines before the header — the memory being prefetched —
// has been read.
class HotEntry {
 public:
  static constexpr uint64_t kEmpty = 0;
  static constexpr uint64_t kTidBit = 1ULL << 63;
  static constexpr uint64_t kTypeMask = 0xF;
  static constexpr unsigned kSizeShift = 48;
  static constexpr uint64_t kSizeMask = 0x1FFULL << kSizeShift;
  // Pointer payload: bits 4..47.  (Size/type bits overlap the 63-bit tid
  // payload, which is fine: they are only decoded for node entries.)
  static constexpr uint64_t kPtrMask = ((1ULL << kSizeShift) - 1) & ~kTypeMask;

  static uint64_t MakeTid(uint64_t payload) {
    assert((payload >> 63) == 0);
    return payload | kTidBit;
  }

  static uint64_t MakeNode(const void* node, NodeType type,
                           size_t size_bytes) {
    auto raw = reinterpret_cast<uintptr_t>(node);
    assert((raw & kTypeMask) == 0 && "nodes must be 16-byte aligned");
    assert((raw >> kSizeShift) == 0 && "node pointers must fit 48 bits");
    assert(size_bytes < 512 && "node sizes fit the 9-bit size tag");
    return static_cast<uint64_t>(raw) |
           (static_cast<uint64_t>(size_bytes) << kSizeShift) |
           static_cast<uint64_t>(type);
  }

  static bool IsEmpty(uint64_t e) { return e == kEmpty; }
  static bool IsTid(uint64_t e) { return (e & kTidBit) != 0; }
  static bool IsNode(uint64_t e) { return e != kEmpty && (e & kTidBit) == 0; }
  static uint64_t TidPayload(uint64_t e) { return e & ~kTidBit; }
  static NodeType Type(uint64_t e) {
    return static_cast<NodeType>(e & kTypeMask);
  }
  static size_t NodeSizeBytes(uint64_t e) {
    return static_cast<size_t>((e & kSizeMask) >> kSizeShift);
  }
  static void* NodePtr(uint64_t e) {
    return reinterpret_cast<void*>(static_cast<uintptr_t>(e & kPtrMask));
  }
};

// ---------------------------------------------------------------------------
// Header and section geometry
// ---------------------------------------------------------------------------

struct NodeHeader {
  RowexLockWord lock;  // §5: writer spin bit + obsolete bit (readers ignore)
  uint8_t type;        // NodeType, duplicated from the pointer tag
  uint8_t height;      // subtree height "rank" (root BiNode creation level)
  uint8_t count;       // number of entries, 2..32
  uint8_t num_bits;    // number of discriminative bits, 1..31
  uint8_t value_off8;  // offset of the value section, in 8-byte units
  uint8_t pk_shift;    // log2(partial-key bytes): 0, 1 or 2
  uint8_t reserved;
};
static_assert(sizeof(NodeHeader) == 8);

// Size of the bit-position section, in bytes (already 8-byte aligned).
//   single-mask : u8 offset + 7 pad + u64 mask                  = 16
//   multi-mask-N: u8 offsets[N] + u64 mask words[N/8]           = 2N
inline constexpr size_t MaskSectionBytes(NodeType t) {
  unsigned slots = MaskSlots(t);
  return slots == 0 ? 16 : 2 * static_cast<size_t>(slots);
}

// Partial-key array size, padded to a whole number of 32-byte SIMD vectors
// so search kernels can over-read safely.
inline constexpr size_t PartialKeySectionBytes(NodeType t, unsigned count) {
  size_t raw = static_cast<size_t>(count) * PartialKeyBytes(t);
  return (raw + 31) & ~size_t{31};
}

inline constexpr size_t NodeBytes(NodeType t, unsigned count) {
  return sizeof(NodeHeader) + MaskSectionBytes(t) +
         PartialKeySectionBytes(t, count) +
         static_cast<size_t>(count) * sizeof(uint64_t);
}

// ---------------------------------------------------------------------------
// NodeRef: typed view over a raw node allocation
// ---------------------------------------------------------------------------

class NodeRef {
 public:
  NodeRef() : base_(nullptr), type_(NodeType::kSingleMask8) {}
  NodeRef(void* base, NodeType type)
      : base_(static_cast<uint8_t*>(base)), type_(type) {}

  // Decodes a tagged entry known to be a node pointer.
  static NodeRef FromEntry(uint64_t entry) {
    assert(HotEntry::IsNode(entry));
    return NodeRef(HotEntry::NodePtr(entry), HotEntry::Type(entry));
  }

  uint64_t ToEntry() const {
    return HotEntry::MakeNode(base_, type_, NodeBytes(type_, count()));
  }

  bool IsNull() const { return base_ == nullptr; }
  void* raw() const { return base_; }
  NodeType type() const { return type_; }

  NodeHeader* header() const { return reinterpret_cast<NodeHeader*>(base_); }
  unsigned count() const { return header()->count; }
  unsigned num_bits() const { return header()->num_bits; }
  unsigned height() const { return header()->height; }

  // --- bit-position section -------------------------------------------------

  // Single-mask accessors (valid only for single-mask layouts).
  uint8_t* single_offset() const { return base_ + sizeof(NodeHeader); }
  uint64_t* single_mask() const {
    return reinterpret_cast<uint64_t*>(base_ + sizeof(NodeHeader) + 8);
  }

  // Multi-mask accessors.
  unsigned mask_slots() const { return MaskSlots(type_); }
  uint8_t* byte_offsets() const { return base_ + sizeof(NodeHeader); }
  uint64_t* mask_words() const {
    return reinterpret_cast<uint64_t*>(base_ + sizeof(NodeHeader) +
                                       mask_slots());
  }
  unsigned num_mask_words() const { return mask_slots() / 8; }

  // --- partial keys and values ----------------------------------------------

  unsigned partial_key_bytes() const { return PartialKeyBytes(type_); }

  uint8_t* partial_keys_raw() const {
    return base_ + sizeof(NodeHeader) + MaskSectionBytes(type_);
  }

  uint64_t* values() const {
    return reinterpret_cast<uint64_t*>(base_) + header()->value_off8;
  }

  uint32_t PartialKeyAt(unsigned i) const {
    switch (partial_key_bytes()) {
      case 1:
        return partial_keys_raw()[i];
      case 2:
        return reinterpret_cast<const uint16_t*>(partial_keys_raw())[i];
      default:
        return reinterpret_cast<const uint32_t*>(partial_keys_raw())[i];
    }
  }

  void SetPartialKeyAt(unsigned i, uint32_t pk) const {
    switch (partial_key_bytes()) {
      case 1:
        partial_keys_raw()[i] = static_cast<uint8_t>(pk);
        break;
      case 2:
        reinterpret_cast<uint16_t*>(partial_keys_raw())[i] =
            static_cast<uint16_t>(pk);
        break;
      default:
        reinterpret_cast<uint32_t*>(partial_keys_raw())[i] = pk;
        break;
    }
  }

  size_t SizeBytes() const { return NodeBytes(type_, count()); }

  // Bitmask of populated entry slots (§4.2 "used entries"); search results
  // are intersected with it so vector-padding lanes never win.
  uint32_t UsedMask() const {
    unsigned c = count();
    return c >= 32 ? ~0u : ((1u << c) - 1u);
  }

 private:
  uint8_t* base_;
  NodeType type_;
};

// Sized prefetch of a node entry (§4.5): the tagged pointer carries the
// node's byte size, so exactly the cache lines the node occupies are
// fetched — a 72-byte two-entry node touches 2 lines instead of the fixed
// 4 the paper's scheme would issue, and the largest 456-byte layout is
// fully covered instead of truncated at 256 bytes.  Nodes are 16-byte
// aligned and may therefore start mid-line.  Entries lacking a size tag
// (hand-built in tests) degrade to a single-line header prefetch.
inline void PrefetchNode(uint64_t entry) {
  auto base = reinterpret_cast<uintptr_t>(HotEntry::NodePtr(entry));
  size_t size = HotEntry::NodeSizeBytes(entry);
  uintptr_t first = base & ~uintptr_t{63};
  unsigned lines = static_cast<unsigned>((base + size - first + 63) >> 6);
  if (lines == 0) lines = 1;
  PrefetchLines(reinterpret_cast<const void*>(first), lines);
}

// ---------------------------------------------------------------------------
// Allocation
// ---------------------------------------------------------------------------

// Tagged pointers use 4 low bits for the node type, so 16-byte alignment
// suffices (AVX2 kernels use unaligned loads).
inline constexpr size_t kNodeAlignment = 16;

// `Alloc` is anything exposing AllocateAligned/FreeAligned — the general
// CountingAllocator or the insert-path NodePool (node_pool.h).
template <typename Alloc>
inline NodeRef AllocateNode(Alloc& alloc, NodeType type, unsigned count,
                            unsigned height, unsigned num_bits) {
  size_t bytes = NodeBytes(type, count);
  void* mem = alloc.AllocateAligned(bytes, kNodeAlignment);
  // Only the header and the mask section need zeroing: Encode builds masks
  // with |=, overwrites every partial key and value, and search results are
  // intersected with the used-entries mask, so partial-key padding may hold
  // garbage.
  std::memset(mem, 0, sizeof(NodeHeader) + MaskSectionBytes(type));
  NodeRef node(mem, type);
  NodeHeader* h = node.header();
  new (&h->lock) RowexLockWord();
  h->type = static_cast<uint8_t>(type);
  h->height = static_cast<uint8_t>(height);
  h->count = static_cast<uint8_t>(count);
  h->num_bits = static_cast<uint8_t>(num_bits);
  h->value_off8 = static_cast<uint8_t>(
      (sizeof(NodeHeader) + MaskSectionBytes(type) +
       PartialKeySectionBytes(type, count)) /
      8);
  h->pk_shift = PartialKeyBytes(type) == 1 ? 0 : (PartialKeyBytes(type) == 2 ? 1 : 2);
  return node;
}

template <typename Alloc>
inline void FreeNode(Alloc& alloc, NodeRef node) {
  alloc.FreeAligned(node.raw(), node.SizeBytes(), kNodeAlignment);
}

}  // namespace hot

#endif  // HOT_HOT_NODE_H_
