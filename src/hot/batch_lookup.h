// Memory-level-parallel batched trie descent (AMAC / group prefetching).
//
// A HOT point lookup is a pointer-chasing loop: one dependent cache miss
// per trie level.  The §4.5 prefetch hides latency *within* a node (the
// tagged pointer is decoded while the node's lines stream in) but between
// keys the misses still serialize.  This driver interleaves up to
// kMaxBatchWidth independent descents as tiny state machines — (current
// tagged entry, key index) — and round-robins over them: the sized
// PrefetchNode for probe i's next node is issued as soon as its child
// entry is known, then the driver does the SIMD partial-key search for the
// *other* in-flight probes before touching probe i's node again.  By the
// time the round robin returns, the lines are (ideally) in L1 and the DRAM
// misses of a whole group overlap instead of queuing one behind another.
//
// The driver is shared by the single-threaded HotTrie (plain slot reads)
// and the ROWEX-synchronized RowexHotTrie (acquire slot loads under one
// epoch guard per batch) via the slot-load policy parameter, and by both
// LookupBatch and the lower-bound variant via the per-level hook.
//
// Width: 8–16 probes saturate the line-fill buffers of current x86 cores
// (10–16 outstanding L1 misses); beyond that the probe state and the
// round-robin bookkeeping start competing with the payloads.  12 is a
// robust middle; bench/ablation_batch.cc sweeps 1..32.

#ifndef HOT_HOT_BATCH_LOOKUP_H_
#define HOT_HOT_BATCH_LOOKUP_H_

#include <atomic>
#include <cstdint>
#include <utility>

#include "common/key.h"
#include "hot/node.h"
#include "hot/node_search.h"

namespace hot {

inline constexpr unsigned kDefaultBatchWidth = 12;
inline constexpr unsigned kMaxBatchWidth = 32;

// Slot-load policies: how the driver reads a 64-bit child slot.
struct PlainSlotLoad {
  static uint64_t Load(const uint64_t* slot) { return *slot; }
};

struct AcquireSlotLoad {
  static uint64_t Load(const uint64_t* slot) {
    // atomic_ref<const T> arrives only in C++26; the slot is never const.
    return std::atomic_ref<uint64_t>(*const_cast<uint64_t*>(slot))
        .load(std::memory_order_acquire);
  }
};

// Indexed variant: descends keys[ids[j]] for j in [0, n) and writes
// terminal[ids[j]], so a caller holding a routed subset of a larger key
// array (ycsb/range_sharded.h buckets one shard's keys by input position)
// can drive one AMAC group per subset with NO gather of the keys and NO
// scatter of the results — the id array IS the scatter map.  `ids ==
// nullptr` means the identity mapping (the plain BatchDescend below).
//
// `per_level(key_index, node, slot_index)` is invoked for every (node,
// chosen slot) a probe passes through, in root-to-leaf order per key —
// lower-bound callers record the search path there; plain lookups pass a
// no-op.  `root` must be a node entry (callers handle empty/tid roots,
// which need no traversal).
template <typename SlotLoad, typename PerLevel>
inline void BatchDescendIndexed(uint64_t root, const KeyRef* keys,
                                const uint32_t* ids, size_t n,
                                uint64_t* terminal, unsigned width,
                                PerLevel&& per_level) {
  assert(HotEntry::IsNode(root));
  if (n == 0) return;
  if (width == 0) width = kDefaultBatchWidth;
  if (width > kMaxBatchWidth) width = kMaxBatchWidth;

  struct Probe {
    uint64_t entry;    // current node entry (always a node, never terminal)
    uint32_t key_idx;  // index into keys/terminal
  };
  Probe probes[kMaxBatchWidth];
  unsigned active = 0;
  size_t next = 0;
  auto key_of = [&](size_t j) {
    return ids != nullptr ? ids[j] : static_cast<uint32_t>(j);
  };

  PrefetchNode(root);  // shared first level: one prefetch serves everyone
  while (active < width && next < n) {
    probes[active++] = {root, key_of(next++)};
  }

  while (active > 0) {
    for (unsigned s = 0; s < active;) {
      Probe& pr = probes[s];
      NodeRef node = NodeRef::FromEntry(pr.entry);
      unsigned idx = SearchNode(node, keys[pr.key_idx]);
      per_level(pr.key_idx, node, idx);
      uint64_t child = SlotLoad::Load(&node.values()[idx]);
      if (HotEntry::IsNode(child)) {
        // Issue the prefetch now; the child's lines load while the driver
        // services the other in-flight probes.
        PrefetchNode(child);
        pr.entry = child;
        ++s;
      } else {
        terminal[pr.key_idx] = child;
        if (next < n) {
          // Refill from the pending keys; the root is hot by now.
          pr = {root, key_of(next++)};
          ++s;
        } else {
          probes[s] = probes[--active];  // drain: retire this probe slot
        }
      }
    }
  }
}

// Descends every `keys[i]` from `root` to its terminal entry (tid or
// empty), keeping up to `width` probes in flight; results land in
// terminal[i].  See BatchDescendIndexed for the contract.
template <typename SlotLoad, typename PerLevel>
inline void BatchDescend(uint64_t root, const KeyRef* keys, size_t n,
                         uint64_t* terminal, unsigned width,
                         PerLevel&& per_level) {
  BatchDescendIndexed<SlotLoad>(root, keys, nullptr, n, terminal, width,
                                std::forward<PerLevel>(per_level));
}

}  // namespace hot

#endif  // HOT_HOT_BATCH_LOOKUP_H_
