// ROWEX-synchronized HOT (paper §5).
//
// Readers are wait-free: they never lock, never restart, and may finish a
// lookup on an obsolete (copy-on-write superseded) node; epoch-based
// reclamation keeps such nodes alive until no reader can observe them.
//
// Writers perform the five steps of Fig. 7:
//   (a) traverse and determine the affected nodes
//       - normal insert:        covering node + its parent (slot write)
//       - leaf-node pushdown:   covering node only (slot write inside it)
//       - overflow:             the pull-up chain up to the first node with
//                               space (all copy-on-write replaced) + the
//                               parent of the last (slot write)
//   (b) lock them bottom-up (a tree-level lock stands in for the root slot)
//   (c) validate that none is obsolete and that the links/slots the plan
//       was computed from are unchanged — otherwise unlock and restart
//   (d) apply the modification: build replacement nodes copy-on-write,
//       publish with release stores into the parent slot, mark replaced
//       nodes obsolete and retire them to the epoch manager
//   (e) unlock top-down.
//
// Node contents other than the 64-bit value slots are immutable after
// publication, so readers only need atomic loads on value slots and on the
// root.

#ifndef HOT_HOT_ROWEX_H_
#define HOT_HOT_ROWEX_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/epoch.h"
#include "common/extractors.h"
#include "hot/batch_lookup.h"
#include "hot/bulk_load.h"
#include "hot/fast_insert.h"
#include "common/key.h"
#include "hot/logical_node.h"
#include "hot/node.h"
#include "hot/node_pool.h"
#include "hot/node_search.h"
#include "hot/validate.h"
#include "obs/telemetry.h"

namespace hot {

template <typename KeyExtractor>
class RowexHotTrie {
  struct PathLevel {
    NodeRef node;
    unsigned idx;
  };

 public:
  // ROWEX synchronizes internally (wait-free readers, per-node writer
  // locks): wrappers that would otherwise add their own lock — the sharded
  // ones in ycsb/ — detect this flag and forward lock-free.
  static constexpr bool kInternallySynchronized = true;

  explicit RowexHotTrie(KeyExtractor extractor = KeyExtractor(),
                        MemoryCounter* counter = nullptr)
      : extractor_(extractor), alloc_(counter), root_(HotEntry::kEmpty) {}

  ~RowexHotTrie() {
    epochs_.CollectAll();
    FreeSubtree(root_.load(std::memory_order_relaxed));
  }

  RowexHotTrie(const RowexHotTrie&) = delete;
  RowexHotTrie& operator=(const RowexHotTrie&) = delete;

  // --- wait-free reads --------------------------------------------------------

  std::optional<uint64_t> Lookup(KeyRef key) const {
    EpochGuard guard(&epochs_);
    uint64_t cur = root_.load(std::memory_order_acquire);
    while (HotEntry::IsNode(cur)) {
      PrefetchNode(cur);
      NodeRef node = NodeRef::FromEntry(cur);
      unsigned idx = SearchNode(node, key);
      cur = LoadSlot(&node.values()[idx]);
    }
    if (HotEntry::IsEmpty(cur)) return std::nullopt;
    KeyScratch scratch;
    if (extractor_(HotEntry::TidPayload(cur), scratch) == key) {
      return HotEntry::TidPayload(cur);
    }
    return std::nullopt;
  }

  // Batched wait-free point lookups (hot/batch_lookup.h): out[i] =
  // Lookup(keys[i]) with up to `width` interleaved descents so DRAM misses
  // overlap.  The whole batch runs under a single epoch guard — one
  // pin/unpin instead of |keys| — and every slot read is an acquire load,
  // so each probe sees some consistent recent state of each node it
  // traverses, exactly like scalar Lookup.  Nodes retired by concurrent
  // writers stay alive until the guard is released.
  void LookupBatch(std::span<const KeyRef> keys,
                   std::span<std::optional<uint64_t>> out,
                   unsigned width = kDefaultBatchWidth) const {
    assert(out.size() >= keys.size());
    size_t n = keys.size();
    if (n == 0) return;
    EpochGuard guard(&epochs_);
    uint64_t root = root_.load(std::memory_order_acquire);
    if (!HotEntry::IsNode(root)) {
      for (size_t i = 0; i < n; ++i) out[i] = VerifyTerminal(root, keys[i]);
      return;
    }
    constexpr size_t kInlineTerminals = 256;
    uint64_t inline_buf[kInlineTerminals];
    std::vector<uint64_t> heap_buf;
    uint64_t* terminal = inline_buf;
    if (n > kInlineTerminals) {
      heap_buf.resize(n);
      terminal = heap_buf.data();
    }
    BatchDescend<AcquireSlotLoad>(root, keys.data(), n, terminal, width,
                                  [](uint32_t, NodeRef, unsigned) {});
    for (size_t i = 0; i < n; ++i) {
      out[i] = VerifyTerminal(terminal[i], keys[i]);
    }
  }

  // Routed-subset batched lookup: out[id] = Lookup(keys[id]) for each id in
  // `ids`; positions not named by an id are untouched.  One epoch guard
  // covers the whole subset, and the id array doubles as the scatter map —
  // the range-sharded wrapper feeds each shard its bucket without gathering
  // keys or copying results.
  void LookupBatchIndexed(std::span<const KeyRef> keys,
                          std::span<const uint32_t> ids,
                          std::span<std::optional<uint64_t>> out,
                          unsigned width = kDefaultBatchWidth) const {
    assert(out.size() >= keys.size());
    if (ids.empty()) return;
    EpochGuard guard(&epochs_);
    uint64_t root = root_.load(std::memory_order_acquire);
    if (!HotEntry::IsNode(root)) {
      for (uint32_t id : ids) out[id] = VerifyTerminal(root, keys[id]);
      return;
    }
    // Terminal scratch is indexed by original key position (the descent
    // writes terminal[ids[j]]), so it is sized to the full key span.
    constexpr size_t kInlineTerminals = 256;
    uint64_t inline_buf[kInlineTerminals];
    std::vector<uint64_t> heap_buf;
    uint64_t* terminal = inline_buf;
    if (keys.size() > kInlineTerminals) {
      heap_buf.resize(keys.size());
      terminal = heap_buf.data();
    }
    BatchDescendIndexed<AcquireSlotLoad>(root, keys.data(), ids.data(),
                                         ids.size(), terminal, width,
                                         [](uint32_t, NodeRef, unsigned) {});
    for (uint32_t id : ids) out[id] = VerifyTerminal(terminal[id], keys[id]);
  }

  // Visits up to `limit` values with key >= start in key order.  Wait-free
  // with respect to writers; sees some consistent recent state of each
  // traversed node.
  template <typename Fn>
  size_t ScanFrom(KeyRef start, size_t limit, Fn&& fn) const {
    EpochGuard guard(&epochs_);
    PathLevel stack[kMaxDepth];
    unsigned depth = 0;
    uint64_t cur = root_.load(std::memory_order_acquire);
    if (HotEntry::IsEmpty(cur)) return 0;

    if (HotEntry::IsTid(cur)) {
      KeyScratch scratch;
      if (extractor_(HotEntry::TidPayload(cur), scratch).Compare(start) >= 0 &&
          limit > 0) {
        fn(HotEntry::TidPayload(cur));
        return 1;
      }
      return 0;
    }

    // Blind descent, then reposition via the mismatch bit (same algorithm
    // as the single-threaded LowerBound).
    while (HotEntry::IsNode(cur)) {
      NodeRef node = NodeRef::FromEntry(cur);
      unsigned idx = SearchNode(node, start);
      stack[depth++] = {node, idx};
      cur = LoadSlot(&node.values()[idx]);
    }
    KeyScratch scratch;
    KeyRef cand = extractor_(HotEntry::TidPayload(cur), scratch);
    size_t p = FirstMismatchBit(start, cand);
    bool at_entry = false;
    if (p == kNoMismatch) {
      at_entry = true;  // exact hit: current stack position is the start
    } else {
      unsigned target = depth - 1;
      while (target > 0 && RootDiscBit(stack[target].node) > p) --target;
      LogicalNode ln = DecodeShared(stack[target].node);
      bool exists;
      unsigned rank = BitRank(ln, static_cast<unsigned>(p), &exists);
      AffectedRange range = FindAffectedRange(ln, stack[target].idx, rank);
      depth = target;
      NodeRef tnode = stack[target].node;
      if (start.Bit(p) == 0) {
        stack[depth++] = {tnode, range.first};
        cur = DescendEdge(stack, &depth, LoadSlot(&tnode.values()[range.first]),
                          /*leftmost=*/true);
        at_entry = true;
      } else {
        stack[depth++] = {tnode, range.last};
        cur = DescendEdge(stack, &depth, LoadSlot(&tnode.values()[range.last]),
                          /*leftmost=*/false);
        at_entry = false;  // need the successor of this position
      }
    }

    size_t seen = 0;
    if (at_entry && limit > 0) {
      fn(HotEntry::TidPayload(cur));
      ++seen;
    }
    while (seen < limit) {
      // Advance to the next leaf.
      bool advanced = false;
      while (depth > 0) {
        PathLevel& top = stack[depth - 1];
        if (top.idx + 1 < top.node.count()) {
          ++top.idx;
          cur = DescendEdge(stack, &depth,
                            LoadSlot(&top.node.values()[top.idx]),
                            /*leftmost=*/true);
          advanced = true;
          break;
        }
        --depth;
      }
      if (!advanced) break;
      fn(HotEntry::TidPayload(cur));
      ++seen;
    }
    return seen;
  }

  // --- writers ----------------------------------------------------------------

  bool Insert(uint64_t value) {
    for (;;) {
      EpochGuard guard(&epochs_);
      int r = TryInsert(value);
      if (r >= 0) return r != 0;
      // validation failed: restart
      telemetry_.writer_restarts.Add();
    }
  }

  bool Remove(KeyRef key) {
    for (;;) {
      EpochGuard guard(&epochs_);
      int r = TryRemove(key);
      if (r >= 0) return r != 0;
      telemetry_.writer_restarts.Add();
    }
  }

  // Insert-or-overwrite: stores `value` under its extracted key, replacing
  // any value that currently maps to the same key.  Returns the previous
  // value if one was replaced.  Overwrites are in-place slot stores under
  // the owning node's lock (no copy-on-write needed: only the 64-bit value
  // slot changes, which readers already load atomically).
  std::optional<uint64_t> Upsert(uint64_t value) {
    for (;;) {
      EpochGuard guard(&epochs_);
      int r = TryInsert(value);
      if (r == 1) return std::nullopt;
      if (r == 0) {
        std::optional<uint64_t> prev;
        int o = TryOverwrite(value, &prev);
        if (o == 1) return prev;
        // o == 0: the key vanished between the duplicate detection and the
        // overwrite (concurrent Remove) — retry as a fresh insert.
      }
      // restart
      telemetry_.writer_restarts.Add();
    }
  }

  // Bulk-builds from values sorted ascending by extracted key and
  // duplicate-free, exactly like HotTrie::BulkLoad (hot/bulk_load.h) —
  // same parallel BiNode-partitioned construction, same resulting shape.
  // Quiescent-only and only on an EMPTY trie: the root is published with a
  // release store, so readers starting afterwards see the full tree, but
  // no concurrent writer may run during the build.  The recovery path
  // (persist/recovery.h -> net/server.cc) rebuilds multi-million-key
  // served tries through this instead of replaying inserts.
  void BulkLoad(const uint64_t* values, size_t n, unsigned threads = 1) {
    assert(empty() && "BulkLoad requires an empty trie");
    uint64_t root = detail::ParallelBulkBuild(extractor_, values, n, alloc_,
                                              threads);
    root_.store(root, std::memory_order_release);
    size_.store(n, std::memory_order_relaxed);
  }
  void BulkLoad(const std::vector<uint64_t>& values, unsigned threads = 1) {
    BulkLoad(values.data(), values.size(), threads);
  }

  size_t size() const { return size_.load(std::memory_order_relaxed); }
  bool empty() const { return size() == 0; }
  MemoryCounter* counter() const { return alloc_.counter(); }
  EpochManager* epochs() const { return &epochs_; }

  // Telemetry surfaces (obs/telemetry.h capability dispatch).  The counter
  // reads are relaxed and may be slightly stale under concurrent writers;
  // exact invariants hold at quiescent points.
  const obs::RowexCounters& rowex_counters() const { return telemetry_; }
  NodePool::Stats pool_stats() const { return alloc_.stats(); }

  // Quiescent-only introspection (no concurrent writers).
  void ForEachLeaf(
      const std::function<void(unsigned depth, uint64_t value)>& fn) const {
    LeafRec(root_.load(std::memory_order_acquire), 0, fn);
  }

  // Visits every compound node with its depth (root nodes have depth 1);
  // same contract as HotTrie::ForEachNode.  Quiescent-only.
  void ForEachNode(
      const std::function<void(NodeRef, unsigned depth)>& fn) const {
    NodeRec(root_.load(std::memory_order_acquire), 1, fn);
  }

  // Checks every structural invariant of the current tree.  Quiescent-only
  // (the stress tests call this at round barriers); expensive — test/debug
  // use.
  bool Validate(std::string* error) const {
    return ValidateHotTree(root_.load(std::memory_order_acquire), extractor_,
                           size(), error);
  }

  // Quiescent-only root snapshot for external checkers (testing/audit.h
  // walks the tree through the same tagged-entry view as validate.h).
  uint64_t root_entry() const {
    return root_.load(std::memory_order_acquire);
  }

  const KeyExtractor& extractor() const { return extractor_; }

 private:
  static uint64_t LoadSlot(const uint64_t* slot) {
    return AcquireSlotLoad::Load(slot);
  }

  std::optional<uint64_t> VerifyTerminal(uint64_t entry, KeyRef key) const {
    if (HotEntry::IsEmpty(entry)) return std::nullopt;
    KeyScratch scratch;
    if (extractor_(HotEntry::TidPayload(entry), scratch) == key) {
      return HotEntry::TidPayload(entry);
    }
    return std::nullopt;
  }
  static void StoreSlot(uint64_t* slot, uint64_t value) {
    std::atomic_ref<uint64_t>(*slot).store(value, std::memory_order_release);
  }

  // Decode for read-side use: value slots are loaded atomically.
  static LogicalNode DecodeShared(NodeRef node) {
    LogicalNode ln;
    ln.height = node.height();
    ln.count = node.count();
    ln.num_bits = DecodeBitPositions(node, ln.bits);
    unsigned shift = 32 - ln.num_bits;
    for (unsigned i = 0; i < ln.count; ++i) {
      ln.sparse[i] = node.PartialKeyAt(i) << shift;
      ln.entries[i] = LoadSlot(&node.values()[i]);
    }
    return ln;
  }

  uint64_t DescendEdge(PathLevel* stack, unsigned* depth, uint64_t entry,
                       bool leftmost) const {
    while (HotEntry::IsNode(entry)) {
      NodeRef node = NodeRef::FromEntry(entry);
      unsigned idx = leftmost ? 0 : node.count() - 1;
      stack[*depth] = {node, idx};
      ++*depth;
      entry = LoadSlot(&node.values()[idx]);
    }
    return entry;
  }

  void Retire(NodeRef node) {
    // Pack pool + node into a heap context (nodes cannot be freed inline:
    // readers may still traverse them).  Callers retire only after the
    // replacement is published, so if the bookkeeping itself runs out of
    // memory the node is leaked rather than letting an exception escape
    // past the publication point with locks still held.
    RetireCtx* ctx = nullptr;
    try {
      ctx = new RetireCtx{&alloc_, node.raw(), node.type()};
      epochs_.Retire(ctx, [](void* p) {
        auto* c = static_cast<RetireCtx*>(p);
        NodeRef n(c->raw, c->type);
        FreeNode(*c->pool, n);
        delete c;
      });
    } catch (const std::bad_alloc&) {
      delete ctx;
    }
  }

  struct RetireCtx {
    NodePool* pool;
    void* raw;
    NodeType type;
  };

  // Returns 1 inserted, 0 duplicate, -1 restart.
  int TryInsert(uint64_t value) {
    KeyScratch scratch;
    KeyRef key = extractor_(value, scratch);
    if (key.size() > kMaxKeyBytes) {
      throw std::invalid_argument("RowexHotTrie: keys longer than 256 bytes");
    }
    if ((value >> 63) != 0) {
      throw std::invalid_argument("RowexHotTrie: values must be 63-bit");
    }
    uint64_t root = root_.load(std::memory_order_acquire);

    if (!HotEntry::IsNode(root)) {
      root_lock_.Lock();
      if (root_.load(std::memory_order_relaxed) != root) {
        root_lock_.Unlock();
        return -1;
      }
      int result = 1;
      if (HotEntry::IsEmpty(root)) {
        root_.store(HotEntry::MakeTid(value), std::memory_order_release);
      } else {
        KeyScratch existing_scratch;
        KeyRef existing =
            extractor_(HotEntry::TidPayload(root), existing_scratch);
        size_t p = FirstMismatchBit(key, existing);
        if (p == kNoMismatch) {
          result = 0;
        } else {
          uint64_t tid = HotEntry::MakeTid(value);
          LogicalNode two = key.Bit(p) ? MakeTwoEntryNode(p, root, tid, 1)
                                       : MakeTwoEntryNode(p, tid, root, 1);
          uint64_t entry;
          try {
            entry = Encode(two, alloc_).ToEntry();
          } catch (...) {
            // Allocation failed before anything was published: the tree is
            // untouched, just release the lock.
            root_lock_.Unlock();
            throw;
          }
          root_.store(entry, std::memory_order_release);
        }
      }
      root_lock_.Unlock();
      if (result == 1) size_.fetch_add(1, std::memory_order_relaxed);
      return result;
    }

    // (a) traverse.
    PathLevel path[kMaxDepth];
    unsigned depth = 0;
    uint64_t cur = root;
    while (HotEntry::IsNode(cur)) {
      PrefetchNode(cur);
      NodeRef node = NodeRef::FromEntry(cur);
      unsigned idx = SearchNode(node, key);
      path[depth++] = {node, idx};
      cur = LoadSlot(&node.values()[idx]);
    }
    KeyScratch existing_scratch;
    KeyRef existing = extractor_(HotEntry::TidPayload(cur), existing_scratch);
    size_t p = FirstMismatchBit(key, existing);
    if (p == kNoMismatch) return 0;
    unsigned key_bit = key.Bit(p);
    uint64_t tid = HotEntry::MakeTid(value);

    unsigned target = depth - 1;
    while (target > 0 && RootDiscBit(path[target].node) > p) --target;

    // Classify: pushdown needs the affected range, which is immutable node
    // metadata (masks/partial keys), safe to read unlocked.
    LogicalNode probe = DecodeShared(path[target].node);
    bool exists;
    unsigned rank = BitRank(probe, static_cast<unsigned>(p), &exists);
    AffectedRange range = FindAffectedRange(probe, path[target].idx, rank);
    bool pushdown = range.first == range.last &&
                    HotEntry::IsTid(probe.entries[range.first]) &&
                    probe.height > 1;

    if (pushdown) {
      NodeRef tnode = path[target].node;
      tnode.header()->lock.Lock();
      uint64_t* slot = &tnode.values()[range.first];
      uint64_t old_leaf = probe.entries[range.first];
      if (tnode.header()->lock.IsObsolete() || LoadSlot(slot) != old_leaf) {
        tnode.header()->lock.Unlock();
        return -1;
      }
      LogicalNode two = key_bit ? MakeTwoEntryNode(p, old_leaf, tid, 1)
                                : MakeTwoEntryNode(p, tid, old_leaf, 1);
      uint64_t entry;
      try {
        entry = Encode(two, alloc_).ToEntry();
      } catch (...) {
        tnode.header()->lock.Unlock();
        throw;
      }
      StoreSlot(slot, entry);
      tnode.header()->lock.Unlock();
      telemetry_.leaf_pushdowns.Add();
      size_.fetch_add(1, std::memory_order_relaxed);
      return 1;
    }

    // Plan the copy-on-write chain: [target .. cow_top] are replaced, the
    // slot written lives in cow_top's parent (or the root slot).
    unsigned cow_top = target;
    for (;;) {
      if (path[cow_top].node.count() < kMaxFanout) break;  // absorbs here
      if (cow_top == 0) break;                             // root grows
      unsigned h = path[cow_top].node.height();
      unsigned ph = path[cow_top - 1].node.height();
      if (h + 1 == ph) {
        --cow_top;  // parent pull-up continues the chain
        continue;
      }
      break;  // intermediate node creation terminates the chain
    }
    // NOTE: cow_top found by the same conditions HandleOverflowLocked will
    // re-derive; they agree because counts/heights are immutable per node.

    // (b) lock bottom-up: target .. cow_top, then the slot holder.
    bool root_slot = cow_top == 0;
    for (unsigned lvl = target + 1; lvl-- > cow_top;) {
      path[lvl].node.header()->lock.Lock();
    }
    if (root_slot) {
      root_lock_.Lock();
    } else {
      path[cow_top - 1].node.header()->lock.Lock();
    }

    auto unlock_all = [&] {
      if (root_slot) {
        root_lock_.Unlock();
      } else {
        path[cow_top - 1].node.header()->lock.Unlock();
      }
      for (unsigned lvl = cow_top; lvl <= target; ++lvl) {
        path[lvl].node.header()->lock.Unlock();
      }
    };

    // (c) validate.
    bool ok = true;
    for (unsigned lvl = cow_top; lvl <= target && ok; ++lvl) {
      ok = !path[lvl].node.header()->lock.IsObsolete();
    }
    if (ok && !root_slot) {
      ok = !path[cow_top - 1].node.header()->lock.IsObsolete();
    }
    // Links: slot-holder -> cow_top -> ... -> target.
    if (ok && root_slot) {
      ok = root_.load(std::memory_order_acquire) == path[0].node.ToEntry();
    }
    if (ok && !root_slot) {
      ok = LoadSlot(&path[cow_top - 1].node.values()[path[cow_top - 1].idx]) ==
           path[cow_top].node.ToEntry();
    }
    for (unsigned lvl = cow_top; lvl < target && ok; ++lvl) {
      ok = LoadSlot(&path[lvl].node.values()[path[lvl].idx]) ==
           path[lvl + 1].node.ToEntry();
    }
    if (!ok) {
      unlock_all();
      return -1;
    }

    // (d) modify.  Common case first: the §4.4 physical splice (no layout
    // change, no overflow) — the node is locked, so its value slots are
    // stable and plain reads inside TryPhysicalInsert are safe.
    if (cow_top == target && path[target].node.count() < kMaxFanout) {
      PhysicalInsertInfo info{rank, exists, range.first, range.last};
      uint64_t fast;
      try {
        fast = TryPhysicalInsert(path[target].node, info,
                                 static_cast<unsigned>(p), key_bit, tid,
                                 alloc_);
      } catch (...) {
        // The replacement node was never allocated; nothing was published
        // or marked obsolete, so unlocking restores the pre-insert state.
        unlock_all();
        throw;
      }
      if (fast != HotEntry::kEmpty) {
        // Publish before Retire: Retire heap-allocates its context, and a
        // throw after publication at worst leaks the replaced node, while a
        // throw before it would leave an obsolete node reachable (writers
        // validating against it would restart forever).
        path[target].node.header()->lock.MarkObsolete();
        if (root_slot) {
          root_.store(fast, std::memory_order_release);
        } else {
          StoreSlot(&path[cow_top - 1].node.values()[path[cow_top - 1].idx],
                    fast);
        }
        Retire(path[target].node);
        unlock_all();
        telemetry_.fast_splices.Add();
        telemetry_.cow_replacements.Add();
        size_.fetch_add(1, std::memory_order_relaxed);
        return 1;
      }
    }

    // General path: logical insert, then resolve overflow along the locked
    // chain.  Publication is a single release store into the slot holder.
    // Every freshly encoded node is tracked so an allocation failure can
    // free the unpublished partial chain and leave the tree untouched
    // (each chain level encodes at most two halves plus one final node).
    uint64_t fresh[2 * kMaxDepth + 2];
    unsigned n_fresh = 0;
    auto encode_fresh = [&](LogicalNode& n) {
      uint64_t e = Encode(n, alloc_).ToEntry();
      fresh[n_fresh++] = e;
      return e;
    };
    auto encode_half_fresh = [&](LogicalNode& half) {
      return half.count == 1 ? half.entries[0] : encode_fresh(half);
    };

    LogicalNode ln = Decode(path[target].node);
    LogicalInsert(ln, path[target].idx, static_cast<unsigned>(p), key_bit,
                  tid);
    unsigned level = target;
    uint64_t publish;
    try {
      for (;;) {
        if (ln.count <= kMaxFanout) {
          publish = encode_fresh(ln);
          break;
        }
        SplitResult split = Split(ln);
        uint64_t left_entry = encode_half_fresh(split.left);
        uint64_t right_entry = encode_half_fresh(split.right);
        unsigned h =
            1 + std::max(EntryHeight(left_entry), EntryHeight(right_entry));
        if (level == 0) {
          LogicalNode new_root =
              MakeTwoEntryNode(split.bit_pos, left_entry, right_entry, h);
          publish = encode_fresh(new_root);
          break;
        }
        if (ln.height + 1 == path[level - 1].node.height()) {
          LogicalNode pl = Decode(path[level - 1].node);
          ReplaceEntryWithTwo(pl, path[level - 1].idx, split.bit_pos,
                              left_entry, right_entry);
          ln = pl;
          --level;
          continue;
        }
        LogicalNode intermediate =
            MakeTwoEntryNode(split.bit_pos, left_entry, right_entry, h);
        publish = encode_fresh(intermediate);
        break;
      }
    } catch (...) {
      // Nothing built here was published and no node was marked obsolete:
      // free the partial replacement chain (FreeNode is per-node, so shared
      // non-fresh children are untouched) and restore the pre-insert state.
      for (unsigned i = 0; i < n_fresh; ++i) {
        FreeNode(alloc_, NodeRef::FromEntry(fresh[i]));
      }
      unlock_all();
      throw;
    }
    assert(level == cow_top);

    // Mark every replaced node obsolete, publish, then retire the replaced
    // chain (publication first — see the fast path above).
    for (unsigned lvl = cow_top; lvl <= target; ++lvl) {
      path[lvl].node.header()->lock.MarkObsolete();
    }
    if (root_slot) {
      root_.store(publish, std::memory_order_release);
    } else {
      StoreSlot(&path[cow_top - 1].node.values()[path[cow_top - 1].idx],
                publish);
    }
    for (unsigned lvl = cow_top; lvl <= target; ++lvl) {
      Retire(path[lvl].node);
    }
    telemetry_.cow_replacements.Add(target - cow_top + 1);

    // (e) unlock (top-down order; obsolete nodes' locks are dead anyway).
    unlock_all();
    size_.fetch_add(1, std::memory_order_relaxed);
    return 1;
  }

  // Returns 1 overwritten (previous value in *prev), 0 key not found,
  // -1 restart.  Called by Upsert after TryInsert reported a duplicate.
  int TryOverwrite(uint64_t value, std::optional<uint64_t>* prev) {
    KeyScratch scratch;
    KeyRef key = extractor_(value, scratch);
    uint64_t root = root_.load(std::memory_order_acquire);
    if (HotEntry::IsEmpty(root)) return 0;

    if (HotEntry::IsTid(root)) {
      KeyScratch existing_scratch;
      if (!(extractor_(HotEntry::TidPayload(root), existing_scratch) == key)) {
        return 0;
      }
      root_lock_.Lock();
      bool same = root_.load(std::memory_order_relaxed) == root;
      if (same) {
        root_.store(HotEntry::MakeTid(value), std::memory_order_release);
      }
      root_lock_.Unlock();
      if (!same) return -1;
      *prev = HotEntry::TidPayload(root);
      return 1;
    }

    NodeRef node;
    unsigned idx = 0;
    uint64_t cur = root;
    while (HotEntry::IsNode(cur)) {
      PrefetchNode(cur);
      node = NodeRef::FromEntry(cur);
      idx = SearchNode(node, key);
      cur = LoadSlot(&node.values()[idx]);
    }
    KeyScratch existing_scratch;
    if (HotEntry::IsEmpty(cur) ||
        !(extractor_(HotEntry::TidPayload(cur), existing_scratch) == key)) {
      return 0;
    }

    node.header()->lock.Lock();
    uint64_t* slot = &node.values()[idx];
    // A changed slot covers both a concurrent value change and a pushdown
    // that replaced the leaf with a node; obsolete means the whole node was
    // superseded copy-on-write.
    if (node.header()->lock.IsObsolete() || LoadSlot(slot) != cur) {
      node.header()->lock.Unlock();
      return -1;
    }
    StoreSlot(slot, HotEntry::MakeTid(value));
    node.header()->lock.Unlock();
    *prev = HotEntry::TidPayload(cur);
    return 1;
  }

  // Returns 1 removed, 0 not found, -1 restart.
  int TryRemove(KeyRef key) {
    uint64_t root = root_.load(std::memory_order_acquire);
    if (HotEntry::IsEmpty(root)) return 0;
    if (HotEntry::IsTid(root)) {
      KeyScratch scratch;
      if (!(extractor_(HotEntry::TidPayload(root), scratch) == key)) return 0;
      root_lock_.Lock();
      bool same = root_.load(std::memory_order_relaxed) == root;
      if (same) root_.store(HotEntry::kEmpty, std::memory_order_release);
      root_lock_.Unlock();
      if (!same) return -1;
      size_.fetch_sub(1, std::memory_order_relaxed);
      return 1;
    }

    PathLevel path[kMaxDepth];
    unsigned depth = 0;
    uint64_t cur = root;
    while (HotEntry::IsNode(cur)) {
      NodeRef node = NodeRef::FromEntry(cur);
      unsigned idx = SearchNode(node, key);
      path[depth++] = {node, idx};
      cur = LoadSlot(&node.values()[idx]);
    }
    KeyScratch scratch;
    if (HotEntry::IsEmpty(cur) ||
        !(extractor_(HotEntry::TidPayload(cur), scratch) == key)) {
      return 0;
    }

    unsigned leaf_level = depth - 1;
    bool root_slot = leaf_level == 0;
    path[leaf_level].node.header()->lock.Lock();
    if (root_slot) {
      root_lock_.Lock();
    } else {
      path[leaf_level - 1].node.header()->lock.Lock();
    }
    auto unlock_all = [&] {
      if (root_slot) {
        root_lock_.Unlock();
      } else {
        path[leaf_level - 1].node.header()->lock.Unlock();
      }
      path[leaf_level].node.header()->lock.Unlock();
    };

    bool ok = !path[leaf_level].node.header()->lock.IsObsolete();
    if (ok && !root_slot) {
      ok = !path[leaf_level - 1].node.header()->lock.IsObsolete() &&
           LoadSlot(&path[leaf_level - 1]
                         .node.values()[path[leaf_level - 1].idx]) ==
               path[leaf_level].node.ToEntry();
    }
    if (ok && root_slot) {
      ok = root_.load(std::memory_order_acquire) == path[0].node.ToEntry();
    }
    if (ok) {
      ok = LoadSlot(&path[leaf_level].node.values()[path[leaf_level].idx]) ==
           cur;
    }
    if (!ok) {
      unlock_all();
      return -1;
    }

    LogicalNode ln = Decode(path[leaf_level].node);
    RemoveEntry(ln, path[leaf_level].idx);
    uint64_t replacement;
    try {
      replacement =
          ln.count == 1 ? ln.entries[0] : Encode(ln, alloc_).ToEntry();
    } catch (...) {
      // The replacement was never built: unlock and leave the key present.
      unlock_all();
      throw;
    }
    path[leaf_level].node.header()->lock.MarkObsolete();
    if (root_slot) {
      root_.store(replacement, std::memory_order_release);
    } else {
      StoreSlot(&path[leaf_level - 1].node.values()[path[leaf_level - 1].idx],
                replacement);
    }
    Retire(path[leaf_level].node);
    telemetry_.cow_replacements.Add();
    unlock_all();
    size_.fetch_sub(1, std::memory_order_relaxed);
    return 1;
  }

  void NodeRec(uint64_t entry, unsigned depth,
               const std::function<void(NodeRef, unsigned)>& fn) const {
    if (!HotEntry::IsNode(entry)) return;
    NodeRef node = NodeRef::FromEntry(entry);
    fn(node, depth);
    for (unsigned i = 0; i < node.count(); ++i) {
      NodeRec(node.values()[i], depth + 1, fn);
    }
  }

  void LeafRec(uint64_t entry, unsigned depth,
               const std::function<void(unsigned, uint64_t)>& fn) const {
    if (HotEntry::IsEmpty(entry)) return;
    if (HotEntry::IsTid(entry)) {
      fn(depth, HotEntry::TidPayload(entry));
      return;
    }
    NodeRef node = NodeRef::FromEntry(entry);
    for (unsigned i = 0; i < node.count(); ++i) {
      LeafRec(node.values()[i], depth + 1, fn);
    }
  }

  void FreeSubtree(uint64_t entry) {
    if (!HotEntry::IsNode(entry)) return;
    NodeRef node = NodeRef::FromEntry(entry);
    for (unsigned i = 0; i < node.count(); ++i) FreeSubtree(node.values()[i]);
    FreeNode(alloc_, node);
  }

  KeyExtractor extractor_;
  mutable NodePool alloc_;
  mutable EpochManager epochs_;
  obs::RowexCounters telemetry_;
  RowexLockWord root_lock_;
  std::atomic<uint64_t> root_;
  std::atomic<size_t> size_{0};
};

}  // namespace hot

#endif  // HOT_HOT_ROWEX_H_
