// Physical-layout insertion fast path (paper §4.4).
//
// The common insert neither overflows the node nor changes its physical
// layout; the paper performs it directly on the linearized representation:
// mark the affected entries, recode every sparse partial key with one PDEP
// when the mismatching bit is new, and splice the new partial key/value in
// front of or behind the affected range.  This file implements exactly
// that: AnalyzeInsert derives the mismatch rank and affected range from the
// physical masks, and TryPhysicalInsert builds the replacement node without
// the logical decode/encode round trip (falling back — returning an empty
// entry — whenever the insert would change the node's layout type or
// overflow it, which the general logical path handles).

#ifndef HOT_HOT_FAST_INSERT_H_
#define HOT_HOT_FAST_INSERT_H_

#include <cstdint>
#include <cstring>

#include "common/bits.h"
#include "hot/node.h"
#include "hot/node_pool.h"

namespace hot {

struct PhysicalInsertInfo {
  unsigned rank;   // rank `p` holds/would hold among the node's disc bits
  bool exists;     // p already a discriminative bit?
  unsigned first;  // affected range (inclusive)
  unsigned last;
};

// Rank and presence of absolute bit position `p` within the node's
// discriminative bit set, computed from the physical masks.
inline void PhysicalBitRank(NodeRef node, unsigned p, unsigned* rank,
                            bool* exists) {
  unsigned byte = p / 8, bit_in_byte = p % 8;
  if (node.mask_slots() == 0) {
    unsigned offset = *node.single_offset();
    uint64_t mask = *node.single_mask();
    if (byte < offset) {
      *rank = 0;
      *exists = false;
      return;
    }
    unsigned rel = (byte - offset) * 8 + bit_in_byte;
    if (rel >= 64) {
      *rank = node.num_bits();
      *exists = false;
      return;
    }
    // Mask bit (63 - rel') encodes window position rel'; positions < rel
    // are the mask bits strictly above (63 - rel).
    *rank = rel == 0 ? 0 : Popcount64(mask >> (64 - rel));
    *exists = ((mask >> (63 - rel)) & 1) != 0;
    return;
  }
  const uint8_t* offs = node.byte_offsets();
  const uint64_t* words = node.mask_words();
  unsigned words_n = node.num_mask_words();
  unsigned r = 0;
  bool found = false;
  for (unsigned w = 0; w < words_n; ++w) {
    uint64_t mask = words[w];
    if (mask == 0) continue;
    // Threshold mask: which positions in this word are < p.
    uint64_t below = 0;
    for (unsigned lane = 0; lane < 8; ++lane) {
      unsigned slot = w * 8 + lane;
      uint64_t lane_mask = 0xFFULL << (8 * (7 - lane));
      if ((mask & lane_mask) == 0) continue;
      if (offs[slot] < byte) {
        below |= lane_mask;
      } else if (offs[slot] == byte) {
        // Bits above (more significant than) bit_in_byte within the lane.
        uint64_t head =
            bit_in_byte == 0
                ? 0
                : (lane_mask & (lane_mask << (8 - bit_in_byte)));
        below |= head;
        if ((mask >> (63 - (lane * 8 + bit_in_byte))) & 1) found = true;
      }
    }
    r += Popcount64(mask & below);
  }
  *rank = r;
  *exists = found;
}

// Affected range around `cand`: entries agreeing with it on every rank
// above `rank` (physical partial-key space).
inline void PhysicalAffectedRange(NodeRef node, unsigned cand, unsigned rank,
                                  unsigned* first, unsigned* last) {
  unsigned nb = node.num_bits();
  uint32_t key_space = nb >= 32 ? ~0u : ((1u << nb) - 1);
  uint32_t prefix_mask =
      rank == 0 ? 0u : (key_space & ~((1u << (nb - rank)) - 1));
  uint32_t want = node.PartialKeyAt(cand) & prefix_mask;
  unsigned l = cand, r = cand;
  while (l > 0 && (node.PartialKeyAt(l - 1) & prefix_mask) == want) --l;
  while (r + 1 < node.count() &&
         (node.PartialKeyAt(r + 1) & prefix_mask) == want) {
    ++r;
  }
  *first = l;
  *last = r;
}

// Whether inserting bit `p` keeps the node's physical layout type.
inline bool LayoutStableWithNewBit(NodeRef node, unsigned p) {
  unsigned nb = node.num_bits();
  // Partial-key width bucket must not change.
  unsigned width_bits = node.partial_key_bytes() * 8;
  if (nb + 1 > width_bits) return false;
  unsigned byte = p / 8;
  if (node.mask_slots() == 0) {
    unsigned offset = *node.single_offset();
    return byte >= offset && byte < offset + 8;
  }
  // Multi-mask: the byte must already have a slot (a new byte changes the
  // offsets array and possibly the slot count).
  const uint8_t* offs = node.byte_offsets();
  const uint64_t* words = node.mask_words();
  for (unsigned w = 0; w < node.num_mask_words(); ++w) {
    uint64_t mask = words[w];
    while (mask != 0) {
      unsigned msb = BitScanReverse64(mask);
      unsigned slot = w * 8 + (63 - msb) / 8;
      if (offs[slot] == byte) return true;
      // Skip the rest of this lane.
      mask &= ~(0xFFULL << (8 * (7 - (63 - msb) / 8)));
    }
  }
  return false;
}

// Performs the §4.4 physical insert, returning the replacement node's
// tagged entry, or HotEntry::kEmpty when the general path must run
// (overflow or layout change).  `info` comes from PhysicalBitRank +
// PhysicalAffectedRange; `key_bit` is the new key's bit at the mismatch.
template <typename Alloc>
inline uint64_t TryPhysicalInsert(NodeRef node, const PhysicalInsertInfo& info,
                                  unsigned p, unsigned key_bit, uint64_t tid,
                                  Alloc& alloc) {
  unsigned count = node.count();
  if (count >= kMaxFanout) return HotEntry::kEmpty;
  if (!info.exists && !LayoutStableWithNewBit(node, p)) {
    return HotEntry::kEmpty;
  }

  unsigned nb = node.num_bits();
  unsigned new_nb = info.exists ? nb : nb + 1;
  NodeRef fresh = AllocateNode(alloc, node.type(), count + 1, node.height(),
                               new_nb);

  // --- masks -----------------------------------------------------------------
  if (node.mask_slots() == 0) {
    *fresh.single_offset() = *node.single_offset();
    uint64_t mask = *node.single_mask();
    if (!info.exists) {
      unsigned rel = p - *node.single_offset() * 8u;
      mask |= 1ULL << (63 - rel);
    }
    *fresh.single_mask() = mask;
  } else {
    std::memcpy(fresh.byte_offsets(), node.byte_offsets(), node.mask_slots());
    std::memcpy(fresh.mask_words(), node.mask_words(),
                node.num_mask_words() * sizeof(uint64_t));
    if (!info.exists) {
      // Find the slot for p's byte and set the bit.
      const uint8_t* offs = fresh.byte_offsets();
      uint64_t* words = fresh.mask_words();
      for (unsigned w = 0; w < fresh.num_mask_words(); ++w) {
        uint64_t mask = node.mask_words()[w];
        bool done = false;
        for (unsigned lane = 0; lane < 8 && !done; ++lane) {
          unsigned slot = w * 8 + lane;
          if ((mask & (0xFFULL << (8 * (7 - lane)))) == 0) continue;
          if (offs[slot] == p / 8) {
            words[w] |= 1ULL << (63 - (lane * 8 + p % 8));
            done = true;
          }
        }
        if (done) break;
      }
    }
  }

  // --- partial keys and values -------------------------------------------------
  unsigned insert_at = key_bit ? info.last + 1 : info.first;
  uint32_t new_rank_bit = 1u << (new_nb - 1 - info.rank);
  uint32_t key_space = new_nb >= 32 ? ~0u : ((1u << new_nb) - 1);
  uint32_t prefix_mask = info.rank == 0
                             ? 0u
                             : (key_space & ~((1u << (new_nb - info.rank)) - 1));
  // PDEP keep-mask: every new-width position except the new bit's.
  uint32_t keep = key_space & ~new_rank_bit;

  uint32_t cand_recoded = 0;
  for (unsigned i = 0; i < count; ++i) {
    uint32_t pk = node.PartialKeyAt(i);
    if (!info.exists) pk = Pdep32(pk, keep);  // §4.4: one PDEP per key
    if (key_bit == 0 && i >= info.first && i <= info.last) {
      pk |= new_rank_bit;  // affected subtree moves to the 1-side
    }
    if (i == info.first) cand_recoded = pk;  // any affected entry's prefix
    unsigned dst = i < insert_at ? i : i + 1;
    fresh.SetPartialKeyAt(dst, pk);
  }
  uint32_t new_sparse = (cand_recoded & prefix_mask) |
                        (key_bit ? new_rank_bit : 0u);
  fresh.SetPartialKeyAt(insert_at, new_sparse);

  const uint64_t* src_values = node.values();
  uint64_t* dst_values = fresh.values();
  std::memcpy(dst_values, src_values, insert_at * sizeof(uint64_t));
  dst_values[insert_at] = tid;
  std::memcpy(dst_values + insert_at + 1, src_values + insert_at,
              (count - insert_at) * sizeof(uint64_t));
  return fresh.ToEntry();
}

}  // namespace hot

#endif  // HOT_HOT_FAST_INSERT_H_
