// Hybrid static/delta HOT index: an immutable bulk-built base trie serving
// the read-hot path, plus a small ROWEX delta absorbing writes, drained by
// background merges that rebuild the base with the parallel bulk loader.
//
// The shape follows the reconstruction argument of Kwon et al. (PAPERS.md:
// "Compressed Key Sort and Fast Index Reconstruction") and FB+-tree's
// read-optimized/immutable split: when rebuilding from sorted input is this
// cheap (hot/bulk_load.h, parallelized), the index never has to pay the
// incremental write path on its read structure at all — writes accumulate
// in a delta sized to stay cache-resident, and a rebuild folds them in.
//
// Layers, newest first, each a complete HOT:
//
//   active delta   — RowexHotTrie pair {live, dead}: live maps key→value
//                    for inserts/upserts, dead maps key→last-live-value for
//                    removes (tombstones must carry a value whose extracted
//                    key is the removed key — values are full 63-bit
//                    payloads, so there is no spare in-band flag bit).
//                    Within one generation a key is in at most one of the
//                    two (checked by CheckStructure).
//   frozen delta   — the previous active generation while a merge drains
//                    it; immutable from the instant it is unlinked.
//   base           — immutable bulk-built HotTrie.
//
// Reads are wait-free and never block on merges: an epoch guard
// (common/epoch.h) pins the three layer pointers, then lookup consults
// active-live → active-dead → frozen-live → frozen-dead → base; scans run
// a three-way ordered merge of the live streams with tombstone suppression
// by point probe.  Publication order makes every interleaving consistent:
// freeze stores `frozen` before swapping `active`, merge stores the new
// base before clearing `frozen`, and readers load active → frozen → base
// with acquire loads, so a reader that misses a layer is guaranteed to see
// the data's new home.
//
// Writers serialize on one mutex (the delta is small; the point of the
// design is that writes touch only it) and maintain reader-visible
// ordering inside a generation: publish to `live` before clearing `dead`,
// tombstone into `dead` before unpublishing from `live`.
//
// Merge cycle (background thread by default, inline when
// MergeOptions::background is false; FreezeDelta/CompleteMerge are split
// so tests can hold the index mid-merge):
//
//   1. freeze    — under the writer mutex: frozen ← active, active ← new.
//   2. drain     — walk base and frozen in key order, two-pointer merge
//                  with tombstone application (frozen-dead keys are always
//                  base keys; insert-after-remove clears the tombstone
//                  instead).
//   3. rebuild   — ParallelBulkBuild over the merged sorted values.
//   4. swap      — under the writer mutex: base ← new, frozen ← null; the
//                  old base and frozen delta are retired to the epoch
//                  manager so in-flight readers finish on them, then two
//                  AdvanceAndCollect calls push them out.
//
// The merge trigger is size/ratio based: delta entries >=
// max(min_delta, ratio * base size), checked after each write.

#ifndef HOT_HOT_HYBRID_H_
#define HOT_HOT_HYBRID_H_

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <functional>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/epoch.h"
#include "common/extractors.h"
#include "common/key.h"
#include "hot/node.h"
#include "hot/node_pool.h"
#include "hot/rowex.h"
#include "hot/trie.h"

namespace hot {

template <typename KeyExtractor>
class HybridHotIndex {
  using Base = HotTrie<KeyExtractor>;
  using DeltaTrie = RowexHotTrie<KeyExtractor>;

  struct Delta {
    DeltaTrie live;  // key → current value (inserts / upserts)
    DeltaTrie dead;  // key → last live value (tombstones)
    Delta(const KeyExtractor& ex, MemoryCounter* counter)
        : live(ex, counter), dead(ex, counter) {}
    size_t entries() const { return live.size() + dead.size(); }
  };

 public:
  // Readers are internally synchronized (epoch-pinned layer pointers over
  // wait-free components); writers serialize internally on one mutex.
  // Sharded wrappers forward lock-free, like for RowexHotTrie.
  static constexpr bool kInternallySynchronized = true;

  struct MergeOptions {
    size_t min_delta = 4096;      // absolute delta-entry trigger
    double ratio = 0.05;          // …or this fraction of the base size
    unsigned rebuild_threads = 0; // 0 = hardware concurrency
    bool background = true;       // false: merge inline on the writer
  };

  explicit HybridHotIndex(KeyExtractor extractor = KeyExtractor(),
                          MemoryCounter* counter = nullptr,
                          MergeOptions opts = MergeOptions())
      : extractor_(extractor),
        counter_(counter),
        opts_(opts),
        base_(new Base(extractor, counter)),
        active_(new Delta(extractor, counter)) {}

  ~HybridHotIndex() {
    // Contract: no operations in flight.  Wait out a background merge, then
    // reclaim everything still parked in limbo.
    while (merge_running_.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    if (merge_thread_.joinable()) merge_thread_.join();
    epochs_.CollectAll();
    delete frozen_.load(std::memory_order_relaxed);
    delete active_.load(std::memory_order_relaxed);
    delete base_.load(std::memory_order_relaxed);
  }

  HybridHotIndex(const HybridHotIndex&) = delete;
  HybridHotIndex& operator=(const HybridHotIndex&) = delete;

  // --- reads (wait-free, never block on merges) ------------------------------

  std::optional<uint64_t> Lookup(KeyRef key) const {
    EpochGuard guard(&epochs_);
    const Delta* a = active_.load(std::memory_order_acquire);
    if (auto v = a->live.Lookup(key)) return v;
    if (a->dead.Lookup(key)) return std::nullopt;
    if (const Delta* f = frozen_.load(std::memory_order_acquire)) {
      if (auto v = f->live.Lookup(key)) return v;
      if (f->dead.Lookup(key)) return std::nullopt;
    }
    return base_.load(std::memory_order_acquire)->Lookup(key);
  }

  // Visits up to `limit` live values with key >= start in key order: a
  // three-way ordered merge of active-live, frozen-live and base, newest
  // layer winning ties (an upsert shadows the base copy), with base/frozen
  // candidates suppressed by tombstone point probes into the newer layers.
  template <typename Fn>
  size_t ScanFrom(KeyRef start, size_t limit, Fn&& fn) const {
    if (limit == 0) return 0;
    EpochGuard guard(&epochs_);
    const Delta* a = active_.load(std::memory_order_acquire);
    const Delta* f = frozen_.load(std::memory_order_acquire);
    const Base* b = base_.load(std::memory_order_acquire);

    Cursor<DeltaTrie> ca(&a->live, &extractor_);
    Cursor<DeltaTrie> cf(f ? &f->live : nullptr, &extractor_);
    Cursor<Base> cb(b, &extractor_);
    ca.Seek(start);
    cf.Seek(start);
    cb.Seek(start);

    uint8_t kbuf[kMaxKeyBytes];
    size_t klen = 0;
    size_t emitted = 0;
    while (emitted < limit) {
      // Smallest head key wins; on equal keys the newest layer's value is
      // taken and every cursor at that key advances.
      int src = -1;
      {
        KeyScratch s;
        if (ca.valid()) {
          KeyRef k = ca.key(s);
          std::memcpy(kbuf, k.data(), k.size());
          klen = k.size();
          src = 0;
        }
      }
      {
        KeyScratch s;
        if (cf.valid()) {
          KeyRef k = cf.key(s);
          if (src < 0 || k.Compare(KeyRef(kbuf, klen)) < 0) {
            std::memcpy(kbuf, k.data(), k.size());
            klen = k.size();
            src = 1;
          }
        }
      }
      {
        KeyScratch s;
        if (cb.valid()) {
          KeyRef k = cb.key(s);
          if (src < 0 || k.Compare(KeyRef(kbuf, klen)) < 0) {
            std::memcpy(kbuf, k.data(), k.size());
            klen = k.size();
            src = 2;
          }
        }
      }
      if (src < 0) break;
      KeyRef winner(kbuf, klen);
      uint64_t value = src == 0 ? ca.value() : src == 1 ? cf.value()
                                                        : cb.value();
      bool suppressed = false;
      if (src >= 1) suppressed = a->dead.Lookup(winner).has_value();
      if (src == 2 && !suppressed && f != nullptr) {
        suppressed = f->dead.Lookup(winner).has_value();
      }
      {
        KeyScratch s;
        if (ca.valid() && ca.key(s) == winner) ca.Next();
      }
      {
        KeyScratch s;
        if (cf.valid() && cf.key(s) == winner) cf.Next();
      }
      {
        KeyScratch s;
        if (cb.valid() && cb.key(s) == winner) cb.Next();
      }
      if (!suppressed) {
        fn(value);
        ++emitted;
      }
    }
    return emitted;
  }

  // --- writes (serialized, delta-only) ----------------------------------------

  bool Insert(uint64_t value) {
    KeyScratch scratch;
    bool trigger = false;
    {
      std::lock_guard<std::mutex> lk(writers_);
      KeyRef key = extractor_(value, scratch);
      Delta* a = active_.load(std::memory_order_relaxed);
      if (LiveValueLocked(key, a)) return false;
      // Publish order: readers probe live before dead, so the new value is
      // visible before (or together with) the tombstone disappearing.
      a->live.Insert(value);
      a->dead.Remove(key);
      size_.fetch_add(1, std::memory_order_relaxed);
      trigger = ShouldMergeLocked(a);
    }
    if (trigger) TriggerMerge();
    return true;
  }

  std::optional<uint64_t> Upsert(uint64_t value) {
    KeyScratch scratch;
    bool trigger = false;
    std::optional<uint64_t> prev;
    {
      std::lock_guard<std::mutex> lk(writers_);
      KeyRef key = extractor_(value, scratch);
      Delta* a = active_.load(std::memory_order_relaxed);
      prev = LiveValueLocked(key, a);
      a->live.Upsert(value);
      a->dead.Remove(key);
      if (!prev) size_.fetch_add(1, std::memory_order_relaxed);
      trigger = ShouldMergeLocked(a);
    }
    if (trigger) TriggerMerge();
    return prev;
  }

  bool Remove(KeyRef key) {
    bool trigger = false;
    {
      std::lock_guard<std::mutex> lk(writers_);
      Delta* a = active_.load(std::memory_order_relaxed);
      Delta* f = frozen_.load(std::memory_order_relaxed);
      Base* b = base_.load(std::memory_order_relaxed);
      std::optional<uint64_t> av = a->live.Lookup(key);
      // Would the key resurface from an older layer if only the active
      // entry vanished?
      bool below_live;
      if (f != nullptr && f->live.Lookup(key)) {
        below_live = true;
      } else if (f != nullptr && f->dead.Lookup(key)) {
        below_live = false;
      } else {
        below_live = b->Lookup(key).has_value();
      }
      if (av) {
        // Tombstone first, then unpublish: a reader that misses `live`
        // must already see `dead`.
        if (below_live) a->dead.Insert(*av);
        a->live.Remove(key);
      } else {
        if (a->dead.Lookup(key)) return false;  // already deleted here
        if (!below_live) return false;          // absent everywhere
        std::optional<uint64_t> under =
            f != nullptr ? f->live.Lookup(key) : std::nullopt;
        if (!under) under = b->Lookup(key);
        a->dead.Insert(*under);
      }
      size_.fetch_sub(1, std::memory_order_relaxed);
      trigger = ShouldMergeLocked(a);
    }
    if (trigger) TriggerMerge();
    return true;
  }

  // Bulk-builds the immutable base with the parallel bulk loader.  The
  // index must be empty (same contract as HotTrie::BulkLoad).
  void BulkLoad(const uint64_t* values, size_t n) {
    std::lock_guard<std::mutex> lk(writers_);
    assert(empty() && "BulkLoad requires an empty index");
    base_.load(std::memory_order_relaxed)->BulkLoad(values, n,
                                                    RebuildThreads());
    size_.store(n, std::memory_order_relaxed);
  }
  void BulkLoad(const std::vector<uint64_t>& values) {
    BulkLoad(values.data(), values.size());
  }

  size_t size() const { return size_.load(std::memory_order_relaxed); }
  bool empty() const { return size() == 0; }
  MemoryCounter* counter() const { return counter_; }
  const KeyExtractor& extractor() const { return extractor_; }

  // --- merge control ----------------------------------------------------------

  // Step 1 of a merge: unlink the active delta as the frozen generation and
  // install a fresh one.  Returns false if a generation is already frozen
  // or the delta is empty.  Public so tests can hold the index mid-merge;
  // the background path drives it internally.
  bool FreezeDelta() {
    std::lock_guard<std::mutex> lk(writers_);
    if (frozen_.load(std::memory_order_relaxed) != nullptr) return false;
    Delta* a = active_.load(std::memory_order_relaxed);
    if (a->entries() == 0) return false;
    Delta* fresh = new Delta(extractor_, counter_);
    // Readers load active before frozen: the frozen pointer must be
    // published before the (empty) replacement hides the data behind it.
    frozen_.store(a, std::memory_order_release);
    active_.store(fresh, std::memory_order_release);
    return true;
  }

  // Step 2: drain the frozen generation into a rebuilt base and swap it in.
  // Readers never block; the superseded base and delta are epoch-retired.
  void CompleteMerge() {
    Delta* f = frozen_.load(std::memory_order_acquire);
    if (f == nullptr) return;
    Base* old_base = base_.load(std::memory_order_acquire);
    auto t0 = std::chrono::steady_clock::now();

    // Drain in key order.  Both structures are immutable here: the frozen
    // generation since FreezeDelta, the base since it was built.
    std::vector<uint64_t> live, dead, bvals;
    live.reserve(f->live.size());
    f->live.ForEachLeaf([&](unsigned, uint64_t v) { live.push_back(v); });
    dead.reserve(f->dead.size());
    f->dead.ForEachLeaf([&](unsigned, uint64_t v) { dead.push_back(v); });
    bvals.reserve(old_base->size());
    old_base->ForEachLeaf([&](unsigned, uint64_t v) { bvals.push_back(v); });

    std::vector<uint64_t> merged;
    merged.reserve(bvals.size() + live.size());
    size_t i = 0, j = 0, k = 0;
    while (i < bvals.size() || j < live.size()) {
      int c;
      if (j == live.size()) {
        c = -1;
      } else if (i == bvals.size()) {
        c = 1;
      } else {
        KeyScratch sb, sl;
        c = extractor_(bvals[i], sb).Compare(extractor_(live[j], sl));
      }
      if (c >= 0) {
        // Delta value wins; on equality it shadows the stale base copy.
        merged.push_back(live[j++]);
        if (c == 0) ++i;
        continue;
      }
      // Base candidate: tombstoned keys are dropped.  Tombstone keys are
      // always base keys (a tombstone is only written when an older layer
      // would resurface the key), so a sorted sweep of `dead` suffices.
      KeyScratch sb;
      KeyRef bk = extractor_(bvals[i], sb);
      bool skip = false;
      while (k < dead.size()) {
        KeyScratch sd;
        int cd = extractor_(dead[k], sd).Compare(bk);
        if (cd > 0) break;
        ++k;
        if (cd == 0) {
          skip = true;
          break;
        }
      }
      if (!skip) merged.push_back(bvals[i]);
      ++i;
    }

    Base* nb = new Base(extractor_, counter_);
    nb->BulkLoad(merged.data(), merged.size(), RebuildThreads());
    auto t1 = std::chrono::steady_clock::now();
    uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());

    {
      // The swap serializes with writers so their layer resolution stays
      // stable across one operation.  Order for lock-free readers: new
      // base first, then drop the frozen pointer — a reader that sees
      // frozen == null is guaranteed the merged base.
      std::lock_guard<std::mutex> lk(writers_);
      base_.store(nb, std::memory_order_release);
      frozen_.store(nullptr, std::memory_order_release);
    }
    last_rebuild_ns_.store(ns, std::memory_order_relaxed);
    last_rebuild_keys_.store(merged.size(), std::memory_order_relaxed);
    rebuild_ns_total_.fetch_add(ns, std::memory_order_relaxed);
    merges_.fetch_add(1, std::memory_order_relaxed);

    epochs_.Retire(old_base, [](void* p) { delete static_cast<Base*>(p); });
    epochs_.Retire(f, [](void* p) { delete static_cast<Delta*>(p); });
    // Two epoch advances make both reclaimable as soon as the readers that
    // were pinned at retire time leave (they are whole trees, not nodes —
    // waiting for the default threshold would hold megabytes in limbo).
    epochs_.AdvanceAndCollect();
    epochs_.AdvanceAndCollect();
  }

  // Runs a full merge cycle synchronously, waiting out any in-flight
  // background merge first.  Benches and tests use it to reach a merged,
  // quiescent state.
  void ForceMerge() {
    for (;;) {
      bool expected = false;
      if (merge_running_.compare_exchange_strong(expected, true,
                                                 std::memory_order_acq_rel)) {
        break;
      }
      std::this_thread::yield();
    }
    if (merge_thread_.joinable()) merge_thread_.join();
    RunMergeCycle();
    merge_running_.store(false, std::memory_order_release);
  }

  bool merge_in_flight() const {
    return merge_running_.load(std::memory_order_acquire);
  }

  // --- introspection / telemetry ----------------------------------------------

  struct Stats {
    uint64_t base_entries = 0;
    uint64_t delta_live = 0;    // active generation
    uint64_t delta_dead = 0;
    uint64_t frozen_entries = 0;
    uint64_t merges = 0;
    uint64_t last_rebuild_keys = 0;
    uint64_t last_rebuild_ns = 0;
    uint64_t rebuild_ns_total = 0;
    bool merge_in_flight = false;
  };
  Stats hybrid_stats() const {
    Stats s;
    EpochGuard guard(&epochs_);
    const Delta* a = active_.load(std::memory_order_acquire);
    const Delta* f = frozen_.load(std::memory_order_acquire);
    s.base_entries = base_.load(std::memory_order_acquire)->size();
    s.delta_live = a->live.size();
    s.delta_dead = a->dead.size();
    s.frozen_entries = f != nullptr ? f->entries() : 0;
    s.merges = merges_.load(std::memory_order_relaxed);
    s.last_rebuild_keys = last_rebuild_keys_.load(std::memory_order_relaxed);
    s.last_rebuild_ns = last_rebuild_ns_.load(std::memory_order_relaxed);
    s.rebuild_ns_total = rebuild_ns_total_.load(std::memory_order_relaxed);
    s.merge_in_flight = merge_in_flight();
    return s;
  }

  // Folded pool counters across all layers (obs/telemetry.h probe).
  NodePool::Stats pool_stats() const {
    EpochGuard guard(&epochs_);
    NodePool::Stats s = base_.load(std::memory_order_acquire)->pool_stats();
    const Delta* a = active_.load(std::memory_order_acquire);
    AddStats(&s, a->live.pool_stats());
    AddStats(&s, a->dead.pool_stats());
    if (const Delta* f = frozen_.load(std::memory_order_acquire)) {
      AddStats(&s, f->live.pool_stats());
      AddStats(&s, f->dead.pool_stats());
    }
    return s;
  }
  EpochManager* epochs() const { return &epochs_; }

  // Quiescent-only: every compound node across every layer (newest first),
  // for the node census.  Depths are per-layer.
  void ForEachNode(
      const std::function<void(NodeRef, unsigned depth)>& fn) const {
    const Delta* a = active_.load(std::memory_order_acquire);
    a->live.ForEachNode(fn);
    a->dead.ForEachNode(fn);
    if (const Delta* f = frozen_.load(std::memory_order_acquire)) {
      f->live.ForEachNode(fn);
      f->dead.ForEachNode(fn);
    }
    base_.load(std::memory_order_acquire)->ForEachNode(fn);
  }

  // Quiescent-only structural self-check (testing/adapters.h
  // HasCheckStructure): validates every layer tree, the live-xor-dead
  // invariant within each generation, and that every tombstone actually
  // shadows an older live entry.
  bool CheckStructure(std::string* error) const {
    const Delta* a = active_.load(std::memory_order_acquire);
    const Delta* f = frozen_.load(std::memory_order_acquire);
    const Base* b = base_.load(std::memory_order_acquire);
    auto check = [&](bool ok, const char* what) {
      if (!ok && error != nullptr && error->find("hybrid") == std::string::npos) {
        error->insert(0, std::string("hybrid ") + what + ": ");
      }
      return ok;
    };
    if (!check(b->Validate(error), "base")) return false;
    if (!check(a->live.Validate(error), "active-live")) return false;
    if (!check(a->dead.Validate(error), "active-dead")) return false;
    if (f != nullptr) {
      if (!check(f->live.Validate(error), "frozen-live")) return false;
      if (!check(f->dead.Validate(error), "frozen-dead")) return false;
    }
    bool ok = true;
    auto disjoint = [&](const Delta* d, const char* gen) {
      d->dead.ForEachLeaf([&](unsigned, uint64_t v) {
        if (!ok) return;
        KeyScratch s;
        KeyRef key = extractor_(v, s);
        if (d->live.Lookup(key)) {
          ok = false;
          if (error != nullptr) {
            *error = std::string("hybrid ") + gen +
                     ": key present in both live and dead";
          }
        }
      });
    };
    disjoint(a, "active");
    if (ok && f != nullptr) disjoint(f, "frozen");
    if (!ok) return false;
    // Every active tombstone must shadow a live entry in an older layer.
    a->dead.ForEachLeaf([&](unsigned, uint64_t v) {
      if (!ok) return;
      KeyScratch s;
      KeyRef key = extractor_(v, s);
      bool below = f != nullptr && f->live.Lookup(key).has_value();
      if (!below && (f == nullptr || !f->dead.Lookup(key))) {
        below = b->Lookup(key).has_value();
      }
      if (!below) {
        ok = false;
        if (error != nullptr) *error = "hybrid: dangling active tombstone";
      }
    });
    return ok;
  }

 private:
  // Chunked pull-cursor over one layer's ordered stream: refills via
  // ScanFrom restarted exclusively after the last delivered key, so it
  // needs only the shared ScanFrom surface (HotTrie and RowexHotTrie).
  template <typename Tree>
  class Cursor {
    static constexpr size_t kChunk = 32;
    static_assert(kChunk >= 2, "a skip must leave a valid element");

   public:
    Cursor(const Tree* tree, const KeyExtractor* ex) : tree_(tree), ex_(ex) {}

    void Seek(KeyRef start) {
      if (tree_ == nullptr) return;
      Fill(start, /*inclusive=*/true);
    }
    bool valid() const { return pos_ < buf_.size(); }
    uint64_t value() const { return buf_[pos_]; }
    KeyRef key(KeyScratch& s) const { return (*ex_)(buf_[pos_], s); }
    void Next() {
      ++pos_;
      if (pos_ >= buf_.size() && !exhausted_) {
        Fill(KeyRef(last_key_, last_len_), /*inclusive=*/false);
      }
    }

   private:
    void Fill(KeyRef from, bool inclusive) {
      buf_.clear();
      pos_ = 0;
      size_t got = tree_->ScanFrom(from, kChunk,
                                   [&](uint64_t v) { buf_.push_back(v); });
      exhausted_ = got < kChunk;
      // The exclusive-restart skip must run BEFORE last_key_ is updated:
      // `from` aliases last_key_ on refills.
      if (!inclusive && !buf_.empty()) {
        KeyScratch s;
        if ((*ex_)(buf_[0], s) == from) ++pos_;
      }
      if (!buf_.empty()) {
        KeyScratch s;
        KeyRef last = (*ex_)(buf_.back(), s);
        last_len_ = last.size();
        std::memcpy(last_key_, last.data(), last_len_);
      }
    }

    const Tree* tree_;
    const KeyExtractor* ex_;
    std::vector<uint64_t> buf_;
    size_t pos_ = 0;
    bool exhausted_ = true;
    uint8_t last_key_[kMaxKeyBytes];
    size_t last_len_ = 0;
  };

  static void AddStats(NodePool::Stats* into, const NodePool::Stats& s) {
    into->hits += s.hits;
    into->carves += s.carves;
    into->steals += s.steals;
    for (size_t i = 0; i < NodePool::kStripes; ++i) {
      into->stripe_carves[i] += s.stripe_carves[i];
    }
  }

  // Current live value of `key` across all layers.  Writer-side only
  // (under writers_, so the layer set is stable).
  std::optional<uint64_t> LiveValueLocked(KeyRef key, Delta* a) const {
    if (auto v = a->live.Lookup(key)) return v;
    if (a->dead.Lookup(key)) return std::nullopt;
    if (Delta* f = frozen_.load(std::memory_order_relaxed)) {
      if (auto v = f->live.Lookup(key)) return v;
      if (f->dead.Lookup(key)) return std::nullopt;
    }
    return base_.load(std::memory_order_relaxed)->Lookup(key);
  }

  bool ShouldMergeLocked(Delta* a) const {
    if (frozen_.load(std::memory_order_relaxed) != nullptr) return false;
    size_t threshold = std::max(
        opts_.min_delta,
        static_cast<size_t>(
            opts_.ratio *
            static_cast<double>(
                base_.load(std::memory_order_relaxed)->size())));
    return a->entries() >= threshold;
  }

  unsigned RebuildThreads() const {
    return opts_.rebuild_threads != 0
               ? opts_.rebuild_threads
               : std::max(1u, std::thread::hardware_concurrency());
  }

  void RunMergeCycle() {
    if (FreezeDelta()) CompleteMerge();
  }

  void TriggerMerge() {
    bool expected = false;
    if (!merge_running_.compare_exchange_strong(expected, true,
                                                std::memory_order_acq_rel)) {
      return;  // a cycle is already running; the next write re-checks
    }
    if (opts_.background) {
      // Reap the previous (finished) thread before reusing the handle.
      if (merge_thread_.joinable()) merge_thread_.join();
      merge_thread_ = std::thread([this] {
        RunMergeCycle();
        merge_running_.store(false, std::memory_order_release);
      });
    } else {
      RunMergeCycle();
      merge_running_.store(false, std::memory_order_release);
    }
  }

  KeyExtractor extractor_;
  MemoryCounter* counter_;
  MergeOptions opts_;
  mutable EpochManager epochs_;
  std::atomic<Base*> base_;
  std::atomic<Delta*> active_;
  std::atomic<Delta*> frozen_{nullptr};
  std::mutex writers_;
  std::atomic<size_t> size_{0};

  std::atomic<bool> merge_running_{false};
  std::thread merge_thread_;
  std::atomic<uint64_t> merges_{0};
  std::atomic<uint64_t> last_rebuild_ns_{0};
  std::atomic<uint64_t> last_rebuild_keys_{0};
  std::atomic<uint64_t> rebuild_ns_total_{0};
};

}  // namespace hot

#endif  // HOT_HOT_HYBRID_H_
