// HOT — the Height Optimized Trie, single-threaded variant (paper §3, §4).
//
// The tree is a hierarchy of compound nodes, each a linearized k-constrained
// binary Patricia trie (k = 32).  The root slot, like every entry slot, is a
// tagged 64-bit word: empty, a tuple identifier, or a node pointer.
//
// Insertion implements the four structure-adapting cases of §3.2:
//   * normal insert             — add one BiNode to the covering node,
//   * leaf-node pushdown        — replace a tid entry of an inner node by a
//                                 fresh height-1 node,
//   * parent pull-up            — on overflow, move the severed root BiNode
//                                 into the parent (recursing upward; a full
//                                 root grows a new root, the only operation
//                                 that increases the tree height),
//   * intermediate node creation— on overflow with head room, move the
//                                 severed root BiNode into a new node.
//
// Node heights follow the paper's §3.1 definition (1 + max height of
// compound children) and are recomputed exactly wherever nodes are created:
// leaf-pushdown nodes have height 1, split halves and intermediate/root
// nodes compute 1 + max over their children.  Heights strictly decrease from
// parent to child, bounding the tree depth by the root height.  A stored
// height may over-estimate the true subtree height after deletions (heights
// are not shrunk), which only makes overflow handling slightly more
// conservative.

#ifndef HOT_HOT_TRIE_H_
#define HOT_HOT_TRIE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/alloc.h"
#include "common/extractors.h"
#include "common/key.h"
#include "hot/batch_lookup.h"
#include "hot/bulk_load.h"
#include "hot/fast_insert.h"
#include "hot/logical_node.h"
#include "hot/node_pool.h"
#include "hot/node.h"
#include "hot/node_search.h"

namespace hot {

template <typename KeyExtractor>
class HotTrie {
 public:
  explicit HotTrie(KeyExtractor extractor = KeyExtractor(),
                   MemoryCounter* counter = nullptr)
      : extractor_(extractor), alloc_(counter), root_(HotEntry::kEmpty) {}

  ~HotTrie() { Clear(); }

  HotTrie(const HotTrie&) = delete;
  HotTrie& operator=(const HotTrie&) = delete;

  // --- mutations -------------------------------------------------------------

  // Inserts `value` (63-bit payload) under its extracted key.  Returns false
  // if the key is already present; the stored value is left unchanged.
  bool Insert(uint64_t value);

  // Inserts or overwrites.  Returns the previous value if one existed.
  std::optional<uint64_t> Upsert(uint64_t value);

  // Bulk-builds a height-optimized trie from values sorted ascending by
  // extracted key and duplicate-free (hot/bulk_load.h); duplicates are
  // rejected with std::invalid_argument.  The trie must be empty.
  // Guarantees height <= ceil(log_32 n) + 1 for any distribution (usually
  // exactly ceil) and maximally filled nodes — including the monotone
  // orders that degrade incremental insertion.
  //
  // With threads > 1 the input is partitioned at BiNode-consistent cuts and
  // the subtrie pieces are built on worker threads through disjoint node-
  // pool stripes, then grafted serially — same logical structure (nodes,
  // heights, key→value map) as the single-threaded build.
  void BulkLoad(const uint64_t* values, size_t n, unsigned threads = 1) {
    assert(empty() && "BulkLoad requires an empty trie");
    root_ = detail::ParallelBulkBuild(extractor_, values, n, alloc_, threads);
    size_ = n;
  }
  void BulkLoad(const std::vector<uint64_t>& values, unsigned threads = 1) {
    BulkLoad(values.data(), values.size(), threads);
  }

  // Removes the entry for `key`.  Returns false if absent.
  bool Remove(KeyRef key);

  // --- queries ---------------------------------------------------------------

  std::optional<uint64_t> Lookup(KeyRef key) const;

  // Batched point lookups with memory-level parallelism (batch_lookup.h):
  // out[i] = Lookup(keys[i]), bit-identical.  Up to `width` descents stay
  // in flight so their DRAM misses overlap; out must be at least as long
  // as keys.
  void LookupBatch(std::span<const KeyRef> keys,
                   std::span<std::optional<uint64_t>> out,
                   unsigned width = kDefaultBatchWidth) const;

  // Routed-subset batched lookup: out[id] = Lookup(keys[id]) for every id
  // in `ids` (positions of `keys`/`out` not named by an id are untouched).
  // This is the shard-bucket entry point of ycsb/range_sharded.h: the
  // router hands each shard its id subset and the descents still run as
  // one memory-level-parallel AMAC group, with the id array doubling as
  // the scatter map — no key gather, no result copy-back.
  void LookupBatchIndexed(std::span<const KeyRef> keys,
                          std::span<const uint32_t> ids,
                          std::span<std::optional<uint64_t>> out,
                          unsigned width = kDefaultBatchWidth) const;

  // Ordered iteration.  An Iterator is valid() while it points at an entry.
  class Iterator;
  Iterator Begin() const;
  // Iterator at the maximum key (for descending iteration via Prev()).
  Iterator Last() const;
  // First entry with key >= `key`.
  Iterator LowerBound(KeyRef key) const;
  // Batched LowerBound: out[i] = LowerBound(keys[i]).  The blind descents
  // — the cache-miss-dominated phase — run interleaved; repositioning then
  // walks the just-touched (cache-hot) path per key.
  void LowerBoundBatch(std::span<const KeyRef> keys, Iterator* out,
                       unsigned width = kDefaultBatchWidth) const;
  // First entry with key > `key`.
  Iterator UpperBound(KeyRef key) const;

  // Visits up to `limit` values with key >= `start` in key order; returns
  // the number visited (YCSB workload E short range scans).
  template <typename Fn>
  size_t ScanFrom(KeyRef start, size_t limit, Fn&& fn) const;

  // Visits up to `limit` values with key <= `start` in DESCENDING key
  // order (ORDER BY ... DESC paging).
  template <typename Fn>
  size_t ScanReverseFrom(KeyRef start, size_t limit, Fn&& fn) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void Clear();

  // --- introspection (stats & validation) ------------------------------------

  // Visits every compound node with its depth (root nodes have depth 1).
  void ForEachNode(const std::function<void(NodeRef, unsigned depth)>& fn)
      const;
  // Visits every stored value with the number of compound nodes on its path
  // (the Fig. 11 leaf-depth metric).
  void ForEachLeaf(
      const std::function<void(unsigned depth, uint64_t value)>& fn) const;

  // Checks every structural invariant; returns true and clears *error on
  // success.  Expensive — test/debug use.
  bool Validate(std::string* error) const;

  const KeyExtractor& extractor() const { return extractor_; }
  MemoryCounter* counter() const { return alloc_.counter(); }
  NodePool::Stats pool_stats() const { return alloc_.stats(); }
  uint64_t root_entry() const { return root_; }

 private:
  struct PathLevel {
    NodeRef node;
    unsigned idx;
  };

  KeyRef ExtractKey(uint64_t tagged_entry, KeyScratch& scratch) const {
    return extractor_(HotEntry::TidPayload(tagged_entry), scratch);
  }

  // Final verification of a terminal entry against the search key (Listing
  // 2 line 7); shared by scalar and batched lookups.
  std::optional<uint64_t> VerifyTerminal(uint64_t entry, KeyRef key) const {
    if (HotEntry::IsEmpty(entry)) return std::nullopt;
    KeyScratch scratch;
    if (ExtractKey(entry, scratch) == key) return HotEntry::TidPayload(entry);
    return std::nullopt;
  }

  // Repositions `it` — holding the blind-descent path for `key` with
  // terminal entry `cur` — at the first entry >= key (paper §3.1: the
  // mismatching BiNode orders the whole affected subtree on one bit).
  void RepositionLowerBound(Iterator& it, KeyRef key, uint64_t cur) const;

  // Stores `entry` into the slot that pointed at path[level]'s node:
  // the parent's value slot, or the root.
  void ReplaceChild(PathLevel* path, unsigned level, uint64_t entry) {
    if (level == 0) {
      root_ = entry;
    } else {
      path[level - 1].node.values()[path[level - 1].idx] = entry;
    }
  }

  // Resolves overflow by parent pull-up / intermediate node creation /
  // root growth (§3.2).  `ln` holds kMaxFanout+1 entries belonging to the
  // node at path[level], which is consumed (freed).
  void HandleOverflow(PathLevel* path, unsigned level, LogicalNode& ln);

  uint64_t EncodeEntry(const LogicalNode& ln) {
    return Encode(ln, alloc_).ToEntry();
  }

  // Encodes a split half: a single-entry half collapses to its entry.
  uint64_t EncodeHalf(LogicalNode& half) {
    return half.count == 1 ? half.entries[0] : EncodeEntry(half);
  }

  void FreeSubtree(uint64_t entry);

  KeyExtractor extractor_;
  mutable NodePool alloc_;
  uint64_t root_;
  size_t size_ = 0;
};

// ---------------------------------------------------------------------------
// Insert
// ---------------------------------------------------------------------------

template <typename KeyExtractor>
bool HotTrie<KeyExtractor>::Insert(uint64_t value) {
  KeyScratch scratch;
  KeyRef key = extractor_(value, scratch);
  // Real checks, not asserts: violating either corrupts the node layouts
  // (8-bit byte offsets / 63-bit tid payloads), which must not depend on
  // the build type.
  if (key.size() > kMaxKeyBytes) {
    throw std::invalid_argument("HotTrie: keys longer than 256 bytes");
  }
  if ((value >> 63) != 0) {
    throw std::invalid_argument("HotTrie: values must be 63-bit payloads");
  }

  if (HotEntry::IsEmpty(root_)) {
    root_ = HotEntry::MakeTid(value);
    ++size_;
    return true;
  }

  if (HotEntry::IsTid(root_)) {
    KeyScratch existing_scratch;
    KeyRef existing = ExtractKey(root_, existing_scratch);
    size_t p = FirstMismatchBit(key, existing);
    if (p == kNoMismatch) return false;
    uint64_t tid = HotEntry::MakeTid(value);
    LogicalNode two = key.Bit(p) ? MakeTwoEntryNode(p, root_, tid, 1)
                                 : MakeTwoEntryNode(p, tid, root_, 1);
    root_ = EncodeEntry(two);
    ++size_;
    return true;
  }

  // Traverse to the candidate leaf, recording the search path.
  PathLevel path[kMaxDepth];
  unsigned depth = 0;
  uint64_t cur = root_;
  while (HotEntry::IsNode(cur)) {
    PrefetchNode(cur);
    NodeRef node = NodeRef::FromEntry(cur);
    unsigned idx = SearchNode(node, key);
    path[depth++] = {node, idx};
    cur = node.values()[idx];
  }

  KeyScratch existing_scratch;
  KeyRef existing = ExtractKey(cur, existing_scratch);
  size_t p = FirstMismatchBit(key, existing);
  if (p == kNoMismatch) return false;
  unsigned key_bit = key.Bit(p);
  uint64_t tid = HotEntry::MakeTid(value);

  // The covering node: the deepest node on the path whose root BiNode bit is
  // <= p (root bits strictly increase along the path).  If even the tree
  // root's bit exceeds p, the new BiNode becomes the root node's new root
  // BiNode — handled by the same normal-insert code (all entries affected).
  unsigned target = depth - 1;
  while (target > 0 && RootDiscBit(path[target].node) > p) --target;

  NodeRef tnode = path[target].node;
  PhysicalInsertInfo info;
  PhysicalBitRank(tnode, static_cast<unsigned>(p), &info.rank, &info.exists);
  PhysicalAffectedRange(tnode, path[target].idx, info.rank, &info.first,
                        &info.last);

  if (info.first == info.last &&
      HotEntry::IsTid(tnode.values()[info.first]) && tnode.height() > 1) {
    // Leaf-node pushdown: the mismatching BiNode is a single tid entry of an
    // inner node; grow downward without touching this node's BiNodes.
    uint64_t old_leaf = tnode.values()[info.first];
    LogicalNode two = key_bit ? MakeTwoEntryNode(p, old_leaf, tid, 1)
                              : MakeTwoEntryNode(p, tid, old_leaf, 1);
    tnode.values()[info.first] = EncodeEntry(two);
    ++size_;
    return true;
  }

  // Common case (§4.4): splice the entry directly into the physical layout.
  uint64_t fast = TryPhysicalInsert(tnode, info, static_cast<unsigned>(p),
                                    key_bit, tid, alloc_);
  if (fast != HotEntry::kEmpty) {
    ReplaceChild(path, target, fast);
    FreeNode(alloc_, tnode);
    ++size_;
    return true;
  }

  // General path: layout change or overflow.
  LogicalNode ln = Decode(tnode);
  LogicalInsert(ln, path[target].idx, static_cast<unsigned>(p), key_bit, tid);
  if (ln.count <= kMaxFanout) {
    uint64_t replacement = EncodeEntry(ln);
    ReplaceChild(path, target, replacement);
    FreeNode(alloc_, tnode);
  } else {
    HandleOverflow(path, target, ln);
  }
  ++size_;
  return true;
}

template <typename KeyExtractor>
void HotTrie<KeyExtractor>::HandleOverflow(PathLevel* path, unsigned level,
                                           LogicalNode& ln) {
  for (;;) {
    SplitResult split = Split(ln);
    uint64_t left_entry = EncodeHalf(split.left);
    uint64_t right_entry = EncodeHalf(split.right);
    NodeRef overflowed = path[level].node;

    if (level == 0) {
      // Root overflow: grow a new root — the only height-increasing case.
      unsigned h = 1 + std::max(EntryHeight(left_entry),
                                EntryHeight(right_entry));
      LogicalNode new_root =
          MakeTwoEntryNode(split.bit_pos, left_entry, right_entry, h);
      root_ = EncodeEntry(new_root);
      FreeNode(alloc_, overflowed);
      return;
    }

    PathLevel& parent = path[level - 1];
    if (ln.height + 1 == parent.node.height()) {
      // Parent pull-up: move the severed root BiNode into the parent, which
      // may overflow in turn.
      LogicalNode pl = Decode(parent.node);
      ReplaceEntryWithTwo(pl, parent.idx, split.bit_pos, left_entry,
                          right_entry);
      FreeNode(alloc_, overflowed);
      if (pl.count <= kMaxFanout) {
        uint64_t replacement = EncodeEntry(pl);
        NodeRef old = parent.node;
        ReplaceChild(path, level - 1, replacement);
        FreeNode(alloc_, old);
        return;
      }
      ln = pl;
      --level;
      continue;
    }

    // Intermediate node creation: there is head room below the parent
    // (ln.height + 1 < parent height), so a new node above the halves does
    // not increase the overall tree height.
    assert(ln.height + 1 < parent.node.height());
    unsigned h =
        1 + std::max(EntryHeight(left_entry), EntryHeight(right_entry));
    LogicalNode intermediate =
        MakeTwoEntryNode(split.bit_pos, left_entry, right_entry, h);
    parent.node.values()[parent.idx] = EncodeEntry(intermediate);
    FreeNode(alloc_, overflowed);
    return;
  }
}

template <typename KeyExtractor>
std::optional<uint64_t> HotTrie<KeyExtractor>::Upsert(uint64_t value) {
  KeyScratch scratch;
  KeyRef key = extractor_(value, scratch);
  if (Insert(value)) return std::nullopt;
  // Key exists: overwrite the tid in place.
  uint64_t cur = root_;
  if (HotEntry::IsTid(cur)) {
    uint64_t prev = HotEntry::TidPayload(cur);
    root_ = HotEntry::MakeTid(value);
    return prev;
  }
  NodeRef node;
  uint64_t* slot = &root_;
  while (HotEntry::IsNode(*slot)) {
    node = NodeRef::FromEntry(*slot);
    slot = &node.values()[SearchNode(node, key)];
  }
  uint64_t prev = HotEntry::TidPayload(*slot);
  *slot = HotEntry::MakeTid(value);
  return prev;
}

// ---------------------------------------------------------------------------
// Lookup
// ---------------------------------------------------------------------------

template <typename KeyExtractor>
std::optional<uint64_t> HotTrie<KeyExtractor>::Lookup(KeyRef key) const {
  uint64_t cur = root_;
  while (HotEntry::IsNode(cur)) {
    PrefetchNode(cur);
    NodeRef node = NodeRef::FromEntry(cur);
    cur = node.values()[SearchNode(node, key)];
  }
  // Final verification against the stored key (Listing 2 line 7): the
  // Patricia search may return a false positive.
  return VerifyTerminal(cur, key);
}

template <typename KeyExtractor>
void HotTrie<KeyExtractor>::LookupBatch(std::span<const KeyRef> keys,
                                        std::span<std::optional<uint64_t>> out,
                                        unsigned width) const {
  assert(out.size() >= keys.size());
  size_t n = keys.size();
  if (n == 0) return;
  if (!HotEntry::IsNode(root_)) {
    for (size_t i = 0; i < n; ++i) out[i] = VerifyTerminal(root_, keys[i]);
    return;
  }
  constexpr size_t kInlineTerminals = 256;
  uint64_t inline_buf[kInlineTerminals];
  std::vector<uint64_t> heap_buf;
  uint64_t* terminal = inline_buf;
  if (n > kInlineTerminals) {
    heap_buf.resize(n);
    terminal = heap_buf.data();
  }
  BatchDescend<PlainSlotLoad>(root_, keys.data(), n, terminal, width,
                              [](uint32_t, NodeRef, unsigned) {});
  for (size_t i = 0; i < n; ++i) out[i] = VerifyTerminal(terminal[i], keys[i]);
}

template <typename KeyExtractor>
void HotTrie<KeyExtractor>::LookupBatchIndexed(
    std::span<const KeyRef> keys, std::span<const uint32_t> ids,
    std::span<std::optional<uint64_t>> out, unsigned width) const {
  assert(out.size() >= keys.size());
  if (ids.empty()) return;
  if (!HotEntry::IsNode(root_)) {
    for (uint32_t id : ids) out[id] = VerifyTerminal(root_, keys[id]);
    return;
  }
  // The terminal scratch is indexed by original key position (the descent
  // writes terminal[ids[j]]), so it is sized to the full key span.
  constexpr size_t kInlineTerminals = 256;
  uint64_t inline_buf[kInlineTerminals];
  std::vector<uint64_t> heap_buf;
  uint64_t* terminal = inline_buf;
  if (keys.size() > kInlineTerminals) {
    heap_buf.resize(keys.size());
    terminal = heap_buf.data();
  }
  BatchDescendIndexed<PlainSlotLoad>(root_, keys.data(), ids.data(),
                                     ids.size(), terminal, width,
                                     [](uint32_t, NodeRef, unsigned) {});
  for (uint32_t id : ids) out[id] = VerifyTerminal(terminal[id], keys[id]);
}

// ---------------------------------------------------------------------------
// Remove
// ---------------------------------------------------------------------------

template <typename KeyExtractor>
bool HotTrie<KeyExtractor>::Remove(KeyRef key) {
  if (HotEntry::IsEmpty(root_)) return false;
  if (HotEntry::IsTid(root_)) {
    KeyScratch scratch;
    if (!(ExtractKey(root_, scratch) == key)) return false;
    root_ = HotEntry::kEmpty;
    --size_;
    return true;
  }

  PathLevel path[kMaxDepth];
  unsigned depth = 0;
  uint64_t cur = root_;
  while (HotEntry::IsNode(cur)) {
    NodeRef node = NodeRef::FromEntry(cur);
    unsigned idx = SearchNode(node, key);
    path[depth++] = {node, idx};
    cur = node.values()[idx];
  }
  KeyScratch scratch;
  if (!(ExtractKey(cur, scratch) == key)) return false;

  // Normal delete: remove the entry from its owning node; a node left with
  // a single entry collapses into its parent slot (the k-constraint demands
  // >= 2 entries = >= 1 BiNode per node).
  PathLevel& leaf_level = path[depth - 1];
  LogicalNode ln = Decode(leaf_level.node);
  RemoveEntry(ln, leaf_level.idx);
  NodeRef old = leaf_level.node;
  uint64_t replacement =
      ln.count == 1 ? ln.entries[0] : EncodeEntry(ln);
  ReplaceChild(path, depth - 1, replacement);
  FreeNode(alloc_, old);
  --size_;
  return true;
}

// ---------------------------------------------------------------------------
// Iteration
// ---------------------------------------------------------------------------

template <typename KeyExtractor>
class HotTrie<KeyExtractor>::Iterator {
 public:
  Iterator() : depth_(0), current_(HotEntry::kEmpty) {}

  bool valid() const { return current_ != HotEntry::kEmpty; }
  uint64_t value() const { return HotEntry::TidPayload(current_); }

  void Next() {
    while (depth_ > 0) {
      Level& top = levels_[depth_ - 1];
      if (top.idx + 1 < top.node.count()) {
        ++top.idx;
        DescendLeftmost(top.node.values()[top.idx]);
        return;
      }
      --depth_;
    }
    current_ = HotEntry::kEmpty;
  }

  // Moves to the predecessor in key order; invalidates at the minimum.
  void Prev() {
    while (depth_ > 0) {
      Level& top = levels_[depth_ - 1];
      if (top.idx > 0) {
        --top.idx;
        DescendRightmost(top.node.values()[top.idx]);
        return;
      }
      --depth_;
    }
    current_ = HotEntry::kEmpty;
  }

 private:
  friend class HotTrie;

  struct Level {
    NodeRef node;
    unsigned idx;
  };

  void Reset() {
    depth_ = 0;
    current_ = HotEntry::kEmpty;
  }

  void DescendLeftmost(uint64_t entry) { DescendEdge(entry, /*leftmost=*/true); }
  void DescendRightmost(uint64_t entry) {
    DescendEdge(entry, /*leftmost=*/false);
  }

  void DescendEdge(uint64_t entry, bool leftmost) {
    while (HotEntry::IsNode(entry)) {
      NodeRef node = NodeRef::FromEntry(entry);
      unsigned idx = leftmost ? 0 : node.count() - 1;
      levels_[depth_++] = {node, idx};
      entry = node.values()[idx];
    }
    current_ = entry;
  }

  Level levels_[kMaxDepth];
  unsigned depth_;
  uint64_t current_;
};

template <typename KeyExtractor>
typename HotTrie<KeyExtractor>::Iterator HotTrie<KeyExtractor>::Begin() const {
  Iterator it;
  if (!HotEntry::IsEmpty(root_)) it.DescendLeftmost(root_);
  return it;
}

template <typename KeyExtractor>
typename HotTrie<KeyExtractor>::Iterator HotTrie<KeyExtractor>::Last() const {
  Iterator it;
  if (!HotEntry::IsEmpty(root_)) it.DescendRightmost(root_);
  return it;
}

template <typename KeyExtractor>
typename HotTrie<KeyExtractor>::Iterator HotTrie<KeyExtractor>::UpperBound(
    KeyRef key) const {
  Iterator it = LowerBound(key);
  if (it.valid()) {
    KeyScratch scratch;
    if (ExtractKey(HotEntry::MakeTid(it.value()), scratch) == key) it.Next();
  }
  return it;
}

template <typename KeyExtractor>
typename HotTrie<KeyExtractor>::Iterator HotTrie<KeyExtractor>::LowerBound(
    KeyRef key) const {
  Iterator it;
  if (HotEntry::IsEmpty(root_)) return it;
  if (HotEntry::IsTid(root_)) {
    KeyScratch scratch;
    if (ExtractKey(root_, scratch).Compare(key) >= 0) it.current_ = root_;
    return it;
  }

  // Blind descent recording the path.
  uint64_t cur = root_;
  while (HotEntry::IsNode(cur)) {
    NodeRef node = NodeRef::FromEntry(cur);
    unsigned idx = SearchNode(node, key);
    it.levels_[it.depth_++] = {node, idx};
    cur = node.values()[idx];
  }
  RepositionLowerBound(it, key, cur);
  return it;
}

template <typename KeyExtractor>
void HotTrie<KeyExtractor>::RepositionLowerBound(Iterator& it, KeyRef key,
                                                 uint64_t cur) const {
  KeyScratch scratch;
  KeyRef cand = ExtractKey(cur, scratch);
  size_t p = FirstMismatchBit(key, cand);
  if (p == kNoMismatch) {
    it.current_ = cur;  // exact hit
    return;
  }

  // Everything under the mismatching BiNode shares the search key's prefix
  // up to p, so the whole affected subtree orders on the one bit key[p].
  unsigned target = it.depth_ - 1;
  while (target > 0 && RootDiscBit(it.levels_[target].node) > p) --target;
  LogicalNode ln = Decode(it.levels_[target].node);
  bool exists;
  unsigned rank = BitRank(ln, static_cast<unsigned>(p), &exists);
  AffectedRange range =
      FindAffectedRange(ln, it.levels_[target].idx, rank);

  it.depth_ = target;
  NodeRef tnode = it.levels_[target].node;
  if (key.Bit(p) == 0) {
    // key < all affected entries: lower bound is the subtree's minimum.
    it.levels_[it.depth_++] = {tnode, range.first};
    it.DescendLeftmost(tnode.values()[range.first]);
  } else {
    // key > all affected entries: successor of the subtree's maximum.
    it.levels_[it.depth_++] = {tnode, range.last};
    it.DescendRightmost(tnode.values()[range.last]);
    it.Next();
  }
}

template <typename KeyExtractor>
void HotTrie<KeyExtractor>::LowerBoundBatch(std::span<const KeyRef> keys,
                                            Iterator* out,
                                            unsigned width) const {
  size_t n = keys.size();
  if (n == 0) return;
  if (!HotEntry::IsNode(root_)) {
    // Empty or single-tid root: no descent to interleave.
    for (size_t i = 0; i < n; ++i) out[i] = LowerBound(keys[i]);
    return;
  }
  for (size_t i = 0; i < n; ++i) out[i].Reset();
  std::vector<uint64_t> terminal(n);
  BatchDescend<PlainSlotLoad>(
      root_, keys.data(), n, terminal.data(), width,
      [&](uint32_t i, NodeRef node, unsigned idx) {
        Iterator& it = out[i];
        it.levels_[it.depth_++] = {node, idx};
      });
  for (size_t i = 0; i < n; ++i) {
    RepositionLowerBound(out[i], keys[i], terminal[i]);
  }
}

template <typename KeyExtractor>
template <typename Fn>
size_t HotTrie<KeyExtractor>::ScanFrom(KeyRef start, size_t limit,
                                       Fn&& fn) const {
  Iterator it = LowerBound(start);
  size_t n = 0;
  while (it.valid() && n < limit) {
    fn(it.value());
    ++n;
    it.Next();
  }
  return n;
}

template <typename KeyExtractor>
template <typename Fn>
size_t HotTrie<KeyExtractor>::ScanReverseFrom(KeyRef start, size_t limit,
                                              Fn&& fn) const {
  // Position at the largest key <= start: the predecessor of UpperBound.
  Iterator it = UpperBound(start);
  if (!it.valid()) {
    it = Last();
  } else {
    it.Prev();
  }
  size_t n = 0;
  while (it.valid() && n < limit) {
    fn(it.value());
    ++n;
    it.Prev();
  }
  return n;
}

// ---------------------------------------------------------------------------
// Maintenance & introspection
// ---------------------------------------------------------------------------

template <typename KeyExtractor>
void HotTrie<KeyExtractor>::FreeSubtree(uint64_t entry) {
  if (!HotEntry::IsNode(entry)) return;
  NodeRef node = NodeRef::FromEntry(entry);
  unsigned n = node.count();
  for (unsigned i = 0; i < n; ++i) FreeSubtree(node.values()[i]);
  FreeNode(alloc_, node);
}

template <typename KeyExtractor>
void HotTrie<KeyExtractor>::Clear() {
  FreeSubtree(root_);
  root_ = HotEntry::kEmpty;
  size_ = 0;
}

template <typename KeyExtractor>
void HotTrie<KeyExtractor>::ForEachNode(
    const std::function<void(NodeRef, unsigned)>& fn) const {
  struct Walker {
    const std::function<void(NodeRef, unsigned)>& fn;
    void Walk(uint64_t entry, unsigned depth) {
      if (!HotEntry::IsNode(entry)) return;
      NodeRef node = NodeRef::FromEntry(entry);
      fn(node, depth);
      for (unsigned i = 0; i < node.count(); ++i) {
        Walk(node.values()[i], depth + 1);
      }
    }
  } walker{fn};
  walker.Walk(root_, 1);
}

template <typename KeyExtractor>
void HotTrie<KeyExtractor>::ForEachLeaf(
    const std::function<void(unsigned, uint64_t)>& fn) const {
  struct Walker {
    const std::function<void(unsigned, uint64_t)>& fn;
    void Walk(uint64_t entry, unsigned depth) {
      if (HotEntry::IsEmpty(entry)) return;
      if (HotEntry::IsTid(entry)) {
        fn(depth, HotEntry::TidPayload(entry));
        return;
      }
      NodeRef node = NodeRef::FromEntry(entry);
      for (unsigned i = 0; i < node.count(); ++i) {
        Walk(node.values()[i], depth + 1);
      }
    }
  } walker{fn};
  walker.Walk(root_, 0);
}

}  // namespace hot

#include "hot/validate.h"

namespace hot {

template <typename KeyExtractor>
bool HotTrie<KeyExtractor>::Validate(std::string* error) const {
  return ValidateHotTree(root_, extractor_, size_, error);
}

}  // namespace hot

#endif  // HOT_HOT_TRIE_H_
