// Node pool: size-class free lists over arena chunks for HOT's
// copy-on-write nodes.
//
// Every insert replaces one node (§4.2 copy-on-write), so node allocation
// and deallocation sit directly on the insert path; general-purpose
// aligned_alloc/free dominate the cost.  The pool carves 16-byte-aligned
// blocks (the tagged node pointer needs 4 low bits) from 256 KiB arena
// chunks and recycles freed blocks in per-size-class free lists.
//
// Thread safety: each size class is guarded by a tiny spinlock so the
// ROWEX-synchronized trie's concurrent writers can allocate safely;
// uncontended acquisition is a single uncontended CAS, negligible for the
// single-threaded trie.
//
// Accounting: the owning MemoryCounter sees the rounded block size (what
// the structure actually occupies), so Fig. 9 numbers include the <=8-byte
// class padding.

#ifndef HOT_HOT_NODE_POOL_H_
#define HOT_HOT_NODE_POOL_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <new>
#include <vector>

#include "common/alloc.h"
#include "common/locks.h"
#include "obs/stat_counter.h"

namespace hot {

class NodePool {
 public:
  static constexpr size_t kGranularity = 16;
  static constexpr size_t kMaxPooledBytes = 1024;
  static constexpr size_t kChunkBytes = 1 << 18;

  explicit NodePool(MemoryCounter* counter) : counter_(counter) {
    for (auto& head : free_heads_) head = nullptr;
  }

  ~NodePool() {
    for (void* chunk : chunks_) std::free(chunk);
  }

  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;

  void* AllocateAligned(size_t bytes, size_t alignment) {
    assert(alignment <= kGranularity);
    (void)alignment;
    AllocFaultInjector::MaybeFail();
    size_t cls = ClassOf(bytes);
    size_t rounded = cls * kGranularity;
    if (counter_ != nullptr) counter_->OnAlloc(rounded);
    {
      SpinGuard guard(&class_locks_[cls]);
      void* head = free_heads_[cls];
      if (head != nullptr) {
        free_heads_[cls] = *static_cast<void**>(head);
        hits_.Add();
        return head;
      }
    }
    carves_.Add();
    return CarveBlock(rounded);
  }

  void FreeAligned(void* ptr, size_t bytes, size_t alignment) {
    (void)alignment;
    if (ptr == nullptr) return;
    size_t cls = ClassOf(bytes);
    if (counter_ != nullptr) counter_->OnFree(cls * kGranularity);
    SpinGuard guard(&class_locks_[cls]);
    *static_cast<void**>(ptr) = free_heads_[cls];
    free_heads_[cls] = ptr;
  }

  MemoryCounter* counter() const { return counter_; }

  // Bytes held in arena chunks (live nodes + free lists + bump slack).
  size_t ArenaBytes() const { return chunks_.size() * kChunkBytes; }

  // Telemetry (obs/telemetry.h): allocations served from a free list vs
  // bump-carved from an arena.  Zero with HOT_STATS=OFF.
  struct Stats {
    uint64_t hits;
    uint64_t carves;
  };
  Stats stats() const { return {hits_.value(), carves_.value()}; }

 private:
  static constexpr size_t kNumClasses = kMaxPooledBytes / kGranularity + 1;

  struct SpinGuard {
    explicit SpinGuard(std::atomic_flag* flag) : flag_(flag) {
      while (flag_->test_and_set(std::memory_order_acquire)) CpuRelax();
    }
    ~SpinGuard() { flag_->clear(std::memory_order_release); }
    std::atomic_flag* flag_;
  };

  static size_t ClassOf(size_t bytes) {
    size_t cls = (bytes + kGranularity - 1) / kGranularity;
    assert(cls < kNumClasses && "node size exceeds pool classes");
    return cls;
  }

  void* CarveBlock(size_t rounded) {
    SpinGuard guard(&bump_lock_);
    if (bump_ + rounded > bump_end_) {
      void* chunk = std::aligned_alloc(kGranularity, kChunkBytes);
      if (chunk == nullptr) throw std::bad_alloc();
      chunks_.push_back(chunk);
      bump_ = static_cast<uint8_t*>(chunk);
      bump_end_ = bump_ + kChunkBytes;
    }
    void* block = bump_;
    bump_ += rounded;
    return block;
  }

  MemoryCounter* counter_;
  obs::StatCounter hits_;
  obs::StatCounter carves_;
  void* free_heads_[kNumClasses];
  std::atomic_flag class_locks_[kNumClasses] = {};
  std::atomic_flag bump_lock_ = ATOMIC_FLAG_INIT;
  uint8_t* bump_ = nullptr;
  uint8_t* bump_end_ = nullptr;
  std::vector<void*> chunks_;
};

}  // namespace hot

#endif  // HOT_HOT_NODE_POOL_H_
