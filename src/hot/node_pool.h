// Node pool: size-class free lists over arena chunks for HOT's
// copy-on-write nodes — striped per thread.
//
// Every insert replaces one node (§4.2 copy-on-write), so node allocation
// and deallocation sit directly on the insert path; general-purpose
// aligned_alloc/free dominate the cost.  The pool carves 16-byte-aligned
// blocks (the tagged node pointer needs 4 low bits) from 256 KiB arena
// chunks and recycles freed blocks in per-size-class free lists.
//
// Thread layout: the pool is split into kStripes cache-line-padded stripes;
// a thread operates on stripe CurrentThreadIndex() % kStripes.  Each stripe
// owns its free lists AND its bump arena, so concurrent writers (the
// range-sharded arms drive many shards' pools from many threads, ROWEX
// drives one pool from all of them) neither contend on a shared head nor
// false-share adjacent list pointers.  Chunks are malloc'd and
// first-written by the allocating thread, so with pinned workers the pages
// land on that worker's NUMA node (first-touch placement).
//
// Cross-thread frees are the interesting case: ROWEX epoch reclamation
// frees a node on whichever thread drains the limbo list, not the thread
// that allocated it.  A free always lands in the *freeing* thread's stripe
// (O(1), local); when an allocating stripe runs dry it steals a bounded
// batch from a sibling stripe before carving fresh arena — the global
// fallback that keeps a produce-on-A/free-on-B pattern from growing the
// arena without bound.  A per-stripe nonempty-class bitmask makes the
// steal probe a few relaxed loads, so cold-start misses stay cheap.
//
// Accounting: the owning MemoryCounter sees the rounded block size (what
// the structure actually occupies), so Fig. 9 numbers include the <=8-byte
// class padding.  Identity (telemetry_test): hits + carves == allocations,
// steals <= hits.

#ifndef HOT_HOT_NODE_POOL_H_
#define HOT_HOT_NODE_POOL_H_

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/alloc.h"
#include "common/locks.h"
#include "common/thread.h"
#include "obs/stat_counter.h"

namespace hot {

class NodePool {
 public:
  static constexpr size_t kGranularity = 16;
  static constexpr size_t kMaxPooledBytes = 1024;
  static constexpr size_t kChunkBytes = 1 << 18;
  static constexpr size_t kStripes = 16;     // power of two
  static constexpr size_t kStealBatch = 16;  // blocks migrated per steal

  explicit NodePool(MemoryCounter* counter) : counter_(counter) {}

  // Explicit-stripe allocator handle.  The default AllocateAligned picks a
  // stripe from CurrentThreadIndex at every call; a StripeRef pins one
  // stripe for its whole lifetime, which is what the bulk builder needs —
  // every node of a build (or of one parallel worker's subtrie) lands in
  // the same bump arena, first-touched by the building thread, with zero
  // stripe aliasing between workers.  Satisfies the same Alloc interface
  // as NodePool itself (AllocateAligned / FreeAligned / counter), so
  // Encode / AllocateNode / FreeNode take either interchangeably.
  class StripeRef {
   public:
    void* AllocateAligned(size_t bytes, size_t alignment) {
      return pool_->AllocateAlignedInStripe(bytes, alignment, idx_);
    }
    void FreeAligned(void* ptr, size_t bytes, size_t alignment) {
      pool_->FreeAlignedInStripe(ptr, bytes, alignment, idx_);
    }
    MemoryCounter* counter() const { return pool_->counter(); }
    size_t index() const { return idx_; }

   private:
    friend class NodePool;
    StripeRef(NodePool* pool, size_t idx) : pool_(pool), idx_(idx) {}
    NodePool* pool_;
    size_t idx_;
  };

  // The stripe the calling thread would use implicitly, pinned.
  StripeRef CallerStripe() {
    return StripeRef(this, CurrentThreadIndex() & (kStripes - 1));
  }
  // A specific stripe (mod kStripes) — parallel bulk workers take
  // StripeAt(worker_id) so distinct workers never share a stripe.
  StripeRef StripeAt(size_t i) { return StripeRef(this, i & (kStripes - 1)); }

  ~NodePool() {
    for (void* chunk : chunks_) std::free(chunk);
  }

  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;

  void* AllocateAligned(size_t bytes, size_t alignment) {
    return AllocateAlignedInStripe(bytes, alignment,
                                   CurrentThreadIndex() & (kStripes - 1));
  }

  void FreeAligned(void* ptr, size_t bytes, size_t alignment) {
    FreeAlignedInStripe(ptr, bytes, alignment,
                        CurrentThreadIndex() & (kStripes - 1));
  }

  void* AllocateAlignedInStripe(size_t bytes, size_t alignment,
                                size_t stripe) {
    assert(alignment <= kGranularity);
    (void)alignment;
    assert(stripe < kStripes);
    AllocFaultInjector::MaybeFail();
    size_t cls = ClassOf(bytes);
    size_t rounded = cls * kGranularity;
    Stripe& home = stripes_[stripe];

    void* block = PopLocal(home, cls);
    if (block == nullptr) block = StealFromSiblings(home, cls);
    if (block != nullptr) {
      home.hits.Add();
    } else {
      block = CarveBlock(home, rounded);
      home.carves.Add();
    }
    if (counter_ != nullptr) counter_->OnAlloc(rounded);
    return block;
  }

  void FreeAlignedInStripe(void* ptr, size_t bytes, size_t alignment,
                           size_t stripe) {
    (void)alignment;
    if (ptr == nullptr) return;
    assert(stripe < kStripes);
    size_t cls = ClassOf(bytes);
    if (counter_ != nullptr) counter_->OnFree(cls * kGranularity);
    Stripe& home = stripes_[stripe];
    SpinGuard guard(&home.lock);
    *static_cast<void**>(ptr) = home.free_heads[cls];
    home.free_heads[cls] = ptr;
    if (!MaskHas(home, cls)) MaskSet(home, cls);
  }

  MemoryCounter* counter() const { return counter_; }

  // Bytes held in arena chunks (live nodes + free lists + bump slack).
  size_t ArenaBytes() const {
    return chunk_count_.load(std::memory_order_relaxed) * kChunkBytes;
  }

  // Telemetry (obs/telemetry.h): allocations served from a free list vs
  // bump-carved from an arena, plus cross-stripe steals (free-list hits
  // whose blocks were recycled by a *different* thread's stripe — the
  // produce-here/free-there migration signal).  Zero with HOT_STATS=OFF.
  struct Stats {
    uint64_t hits = 0;
    uint64_t carves = 0;
    uint64_t steals = 0;
    // Per-stripe arena carves: with stripe-pinned parallel bulk workers the
    // carve counts spread across the worker stripes (the checkable form of
    // the first-touch claim); a single-threaded build concentrates in one.
    std::array<uint64_t, kStripes> stripe_carves = {};

    // Stripes that carved at least one arena block.
    size_t ActiveStripes() const {
      size_t n = 0;
      for (uint64_t c : stripe_carves) n += c != 0;
      return n;
    }
  };
  Stats stats() const {
    Stats s;
    for (size_t i = 0; i < kStripes; ++i) {
      const Stripe& st = stripes_[i];
      s.hits += st.hits.value();
      s.carves += st.carves.value();
      s.steals += st.steals.value();
      s.stripe_carves[i] = st.carves.value();
    }
    return s;
  }

 private:
  static constexpr size_t kNumClasses = kMaxPooledBytes / kGranularity + 1;
  static_assert(kNumClasses <= 65, "nonempty bitmask holds classes 1..64");
  static_assert((kStripes & (kStripes - 1)) == 0, "kStripes is a power of 2");

  struct SpinGuard {
    explicit SpinGuard(std::atomic_flag* flag) : flag_(flag) {
      while (flag_->test_and_set(std::memory_order_acquire)) CpuRelax();
    }
    ~SpinGuard() { flag_->clear(std::memory_order_release); }
    std::atomic_flag* flag_;
  };

  // One thread stripe, padded so no two stripes share a cache line.  The
  // nonempty mask (bit cls-1) is written under the stripe lock but read
  // lock-free by stealing siblings.
  struct alignas(64) Stripe {
    std::atomic_flag lock = ATOMIC_FLAG_INIT;
    std::atomic<uint64_t> nonempty{0};
    void* free_heads[kNumClasses] = {};
    uint8_t* bump = nullptr;
    uint8_t* bump_end = nullptr;
    obs::StatCounter hits;
    obs::StatCounter carves;
    obs::StatCounter steals;
  };

  static bool MaskHas(const Stripe& s, size_t cls) {
    return (s.nonempty.load(std::memory_order_relaxed) >> (cls - 1)) & 1u;
  }
  static void MaskSet(Stripe& s, size_t cls) {
    s.nonempty.fetch_or(uint64_t{1} << (cls - 1), std::memory_order_relaxed);
  }
  static void MaskClear(Stripe& s, size_t cls) {
    s.nonempty.fetch_and(~(uint64_t{1} << (cls - 1)),
                         std::memory_order_relaxed);
  }

  static size_t ClassOf(size_t bytes) {
    size_t cls = (bytes + kGranularity - 1) / kGranularity;
    assert(cls >= 1 && cls < kNumClasses && "node size exceeds pool classes");
    return cls;
  }

  void* PopLocal(Stripe& stripe, size_t cls) {
    SpinGuard guard(&stripe.lock);
    void* head = stripe.free_heads[cls];
    if (head == nullptr) return nullptr;
    stripe.free_heads[cls] = *static_cast<void**>(head);
    if (stripe.free_heads[cls] == nullptr) MaskClear(stripe, cls);
    return head;
  }

  // Global fallback: migrate up to kStealBatch blocks of `cls` from the
  // first sibling stripe advertising a nonempty list.  Never holds two
  // stripe locks at once (no ordering, no deadlock): victim blocks are
  // detached into a local array, then repushed under the home lock.
  void* StealFromSiblings(Stripe& home, size_t cls) {
    for (size_t step = 1; step < kStripes; ++step) {
      Stripe& victim =
          stripes_[(StripeIndexOf(home) + step) & (kStripes - 1)];
      if (!MaskHas(victim, cls)) continue;
      void* batch[kStealBatch];
      size_t got = 0;
      {
        SpinGuard guard(&victim.lock);
        void* head = victim.free_heads[cls];
        while (head != nullptr && got < kStealBatch) {
          batch[got++] = head;
          head = *static_cast<void**>(head);
        }
        victim.free_heads[cls] = head;
        if (head == nullptr) MaskClear(victim, cls);
      }
      if (got == 0) continue;  // raced with the victim draining it
      home.steals.Add();
      if (got > 1) {
        SpinGuard guard(&home.lock);
        for (size_t i = 1; i < got; ++i) {
          *static_cast<void**>(batch[i]) = home.free_heads[cls];
          home.free_heads[cls] = batch[i];
        }
        if (!MaskHas(home, cls)) MaskSet(home, cls);
      }
      return batch[0];
    }
    return nullptr;
  }

  void* CarveBlock(Stripe& stripe, size_t rounded) {
    SpinGuard guard(&stripe.lock);
    if (stripe.bump == nullptr || stripe.bump + rounded > stripe.bump_end) {
      void* chunk = std::aligned_alloc(kGranularity, kChunkBytes);
      if (chunk == nullptr) throw std::bad_alloc();
      try {
        SpinGuard chunks_guard(&chunks_lock_);
        chunks_.push_back(chunk);
      } catch (...) {
        std::free(chunk);
        throw;
      }
      chunk_count_.fetch_add(1, std::memory_order_relaxed);
      stripe.bump = static_cast<uint8_t*>(chunk);
      stripe.bump_end = stripe.bump + kChunkBytes;
    }
    void* block = stripe.bump;
    stripe.bump += rounded;
    return block;
  }

  size_t StripeIndexOf(const Stripe& s) const {
    return static_cast<size_t>(&s - stripes_);
  }

  MemoryCounter* counter_;
  Stripe stripes_[kStripes];
  std::atomic_flag chunks_lock_ = ATOMIC_FLAG_INIT;
  std::atomic<size_t> chunk_count_{0};
  std::vector<void*> chunks_;
};

}  // namespace hot

#endif  // HOT_HOT_NODE_POOL_H_
