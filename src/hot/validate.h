// Structural validation for HOT trees (test/debug support).
//
// Self-contained free functions over a tree's root entry, so both the
// single-threaded HotTrie and the ROWEX-synchronized RowexHotTrie can share
// one checker.  Quiescent-only: the walk reads value slots with plain loads,
// so no writer may run concurrently (the stress tests call this at round
// barriers).
//
// Checks, for every compound node:
//   * k-constraint: 2 <= count <= 32, 1 <= num_bits <= min(31, count-1)
//   * discriminative bits strictly ascending and *minimal*: every bit is
//     used by some BiNode (union of sparse keys == all ranks, intersection
//     == 0 — see RecomputeBits)
//   * sparse partial keys strictly increasing with sparse[0] == 0
//   * the physical layout is the smallest of the nine (ChooseNodeType)
//   * heights (ranks) strictly decrease parent -> child; height-1 nodes
//     hold only tuple identifiers
//   * functional search correctness: for the leftmost and rightmost key
//     below each entry, the node-local search returns exactly that entry
//     (exercises masks, extraction and comply semantics)
// and globally that in-order traversal yields strictly ascending keys whose
// count equals the expected size.

#ifndef HOT_HOT_VALIDATE_H_
#define HOT_HOT_VALIDATE_H_

#include <bit>
#include <cstdint>
#include <sstream>
#include <string>

#include "common/key.h"
#include "hot/logical_node.h"
#include "hot/node.h"
#include "hot/node_search.h"

namespace hot {
namespace detail {

inline uint64_t EdgeLeaf(uint64_t entry, bool leftmost) {
  while (HotEntry::IsNode(entry)) {
    NodeRef node = NodeRef::FromEntry(entry);
    entry = node.values()[leftmost ? 0 : node.count() - 1];
  }
  return entry;
}

// Recursively checks that sparse[l..r] encode a well-formed binary Patricia
// trie: each subtree has a root BiNode (its first non-constant rank), no
// constant-1 bits below it (stale turns at vanished BiNodes), and both
// children are non-empty and themselves well-formed.
inline bool CheckLocalTrie(const LogicalNode& ln, unsigned l, unsigned r,
                           std::string* error) {
  if (l == r) return true;
  uint32_t uni = 0, inter = ~0u;
  for (unsigned i = l; i <= r; ++i) {
    uni |= ln.sparse[i];
    inter &= ln.sparse[i];
  }
  uint32_t diff = uni & ~inter;
  if (diff == 0) {
    *error = "subtree entries share identical sparse keys";
    return false;
  }
  unsigned root_rank = static_cast<unsigned>(std::countl_zero(diff));
  // Bits common to the whole subtree below its root BiNode would be turns
  // at BiNodes that cannot lie on a shared path: stale state.
  uint32_t below_mask = root_rank + 1 >= 32 ? 0u : (~0u >> (root_rank + 1));
  if ((inter & below_mask) != 0) {
    *error = "stale shared 1-bit below subtree root BiNode";
    return false;
  }
  uint32_t root_bit = LogicalNode::RankBit(root_rank);
  unsigned m = l;
  while (m <= r && (ln.sparse[m] & root_bit) == 0) ++m;
  if (m == l || m > r) {
    *error = "subtree root BiNode lacks a 0- or 1-side";
    return false;
  }
  for (unsigned i = m; i <= r; ++i) {
    if ((ln.sparse[i] & root_bit) == 0) {
      *error = "subtree sides not contiguous";
      return false;
    }
  }
  return CheckLocalTrie(ln, l, m - 1, error) &&
         CheckLocalTrie(ln, m, r, error);
}

}  // namespace detail

// Per-node structural check.  `extractor` maps a tid payload to its KeyRef
// (same contract as the tries' KeyExtractor template parameter).
template <typename KeyExtractor>
bool ValidateHotNode(NodeRef node, const KeyExtractor& extractor,
                     std::string* error) {
  std::ostringstream oss;
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };

  LogicalNode ln = Decode(node);
  if (ln.count < 2 || ln.count > kMaxFanout) {
    oss << "node count " << ln.count << " out of [2,32]";
    return fail(oss.str());
  }
  if (ln.num_bits < 1 || ln.num_bits > kMaxDiscBits ||
      ln.num_bits > ln.count - 1) {
    oss << "num_bits " << ln.num_bits << " invalid for count " << ln.count;
    return fail(oss.str());
  }
  for (unsigned i = 1; i < ln.num_bits; ++i) {
    if (ln.bits[i] <= ln.bits[i - 1]) return fail("bits not ascending");
  }
  if (node.type() != ChooseNodeType(ln.bits, ln.num_bits)) {
    return fail("node layout is not the minimal one");
  }
  uint32_t uni = 0, inter = ~0u, all_ranks = ~0u << (32 - ln.num_bits);
  if (ln.sparse[0] != 0) return fail("sparse[0] != 0");
  for (unsigned i = 0; i < ln.count; ++i) {
    uni |= ln.sparse[i];
    inter &= ln.sparse[i];
    if (i > 0 && ln.sparse[i] <= ln.sparse[i - 1]) {
      return fail("sparse keys not strictly increasing");
    }
    if ((ln.sparse[i] & ~all_ranks) != 0) {
      return fail("sparse key uses bits beyond num_bits");
    }
  }
  if (uni != all_ranks) return fail("unused discriminative bit present");
  if (inter != 0) return fail("non-discriminative shared bit present");
  {
    std::string local_err;
    if (!detail::CheckLocalTrie(ln, 0, ln.count - 1, &local_err)) {
      return fail("local trie malformed: " + local_err);
    }
  }

  for (unsigned i = 0; i < ln.count; ++i) {
    uint64_t e = ln.entries[i];
    if (HotEntry::IsEmpty(e)) return fail("empty entry slot");
    if (HotEntry::IsNode(e)) {
      NodeRef child = NodeRef::FromEntry(e);
      if (node.height() == 1) return fail("height-1 node has a child node");
      if (child.height() >= node.height()) {
        oss << "child height " << child.height() << " >= parent "
            << node.height();
        return fail(oss.str());
      }
      // The child's root BiNode must lie strictly below every BiNode on the
      // path to this entry; the node's own root BiNode (bits[0]) is on every
      // path, so this is a necessary condition.  (The functional search
      // check below is the authoritative structural test.)
      if (RootDiscBit(child) <= ln.bits[0]) {
        return fail("child root bit not below parent's root bit");
      }
    }
    // Functional check: node-local search must route the extreme keys of
    // this entry's subtree back to this entry.
    for (bool leftmost : {true, false}) {
      uint64_t leaf = detail::EdgeLeaf(e, leftmost);
      KeyScratch scratch;
      KeyRef key = extractor(HotEntry::TidPayload(leaf), scratch);
      unsigned got = SearchNodeScalar(node, key);
      unsigned got_simd = SearchNode(node, key);
      if (got != i || got_simd != i) {
        oss << "search misroutes subtree key: entry " << i << " got scalar "
            << got << " simd " << got_simd;
        return fail(oss.str());
      }
    }
  }
  return true;
}

// Whole-tree check over a quiescent snapshot rooted at `root_entry`: every
// node passes ValidateHotNode, in-order leaves are strictly ascending, and
// the leaf count equals `expected_size`.
template <typename KeyExtractor>
bool ValidateHotTree(uint64_t root_entry, const KeyExtractor& extractor,
                     size_t expected_size, std::string* error) {
  bool ok = true;
  std::string err;
  auto walk_nodes = [&](auto&& self, uint64_t entry) -> void {
    if (!ok || !HotEntry::IsNode(entry)) return;
    NodeRef node = NodeRef::FromEntry(entry);
    if (!ValidateHotNode(node, extractor, &err)) {
      ok = false;
      return;
    }
    for (unsigned i = 0; i < node.count() && ok; ++i) {
      self(self, node.values()[i]);
    }
  };
  walk_nodes(walk_nodes, root_entry);
  if (!ok) {
    if (error != nullptr) *error = err;
    return false;
  }

  size_t seen = 0;
  bool have_prev = false;
  std::string prev_key;
  auto walk_leaves = [&](auto&& self, uint64_t entry) -> void {
    if (!ok || HotEntry::IsEmpty(entry)) return;
    if (HotEntry::IsTid(entry)) {
      ++seen;
      KeyScratch scratch;
      KeyRef key = extractor(HotEntry::TidPayload(entry), scratch);
      std::string cur(reinterpret_cast<const char*>(key.data()), key.size());
      if (have_prev && !(prev_key < cur)) {
        err = "in-order traversal not strictly ascending";
        ok = false;
      }
      prev_key = std::move(cur);
      have_prev = true;
      return;
    }
    NodeRef node = NodeRef::FromEntry(entry);
    for (unsigned i = 0; i < node.count() && ok; ++i) {
      self(self, node.values()[i]);
    }
  };
  walk_leaves(walk_leaves, root_entry);
  if (ok && seen != expected_size) {
    std::ostringstream oss;
    oss << "leaf count " << seen << " != size " << expected_size;
    err = oss.str();
    ok = false;
  }
  if (!ok && error != nullptr) *error = err;
  return ok;
}

}  // namespace hot

#endif  // HOT_HOT_VALIDATE_H_
