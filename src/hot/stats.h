// Structure statistics: leaf-depth distributions (paper §6.5, Fig. 11) and
// a node-layout census (used by the node-engineering ablation bench).

#ifndef HOT_HOT_STATS_H_
#define HOT_HOT_STATS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "hot/node.h"

namespace hot {

// Distribution of leaf depths, where depth counts the compound nodes on the
// path from the root to the value (a value stored directly in the root slot
// has depth 0; in practice depths start at 1).
struct DepthStats {
  std::vector<uint64_t> histogram;  // histogram[d] = #values at depth d
  uint64_t total = 0;
  uint64_t sum = 0;
  unsigned max = 0;

  void Add(unsigned depth) {
    if (depth >= histogram.size()) histogram.resize(depth + 1, 0);
    ++histogram[depth];
    ++total;
    sum += depth;
    if (depth > max) max = depth;
  }

  double Mean() const {
    return total == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(total);
  }
};

// Computes the Fig. 11 depth metric for any index exposing
// ForEachLeaf(fn(depth, value)).
template <typename Index>
DepthStats ComputeDepthStats(const Index& index) {
  DepthStats stats;
  index.ForEachLeaf([&](unsigned depth, uint64_t) { stats.Add(depth); });
  return stats;
}

// Census of physical node layouts.
struct NodeCensus {
  std::array<uint64_t, kNumNodeTypes> count_by_type{};
  std::array<uint64_t, kNumNodeTypes> bytes_by_type{};
  std::array<uint64_t, kNumNodeTypes> entries_by_type{};
  uint64_t nodes = 0;
  uint64_t total_bytes = 0;
  uint64_t total_entries = 0;

  double AverageFanout() const {
    return nodes == 0 ? 0.0
                      : static_cast<double>(total_entries) /
                            static_cast<double>(nodes);
  }
};

template <typename Trie>
NodeCensus ComputeNodeCensus(const Trie& trie) {
  NodeCensus census;
  trie.ForEachNode([&](NodeRef node, unsigned) {
    auto t = static_cast<size_t>(node.type());
    ++census.count_by_type[t];
    census.bytes_by_type[t] += node.SizeBytes();
    census.entries_by_type[t] += node.count();
    ++census.nodes;
    census.total_bytes += node.SizeBytes();
    census.total_entries += node.count();
  });
  return census;
}

}  // namespace hot

#endif  // HOT_HOT_STATS_H_
