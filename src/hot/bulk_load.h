// Bulk loading with height-optimized packing (paper §3.1).
//
// For static data, Kovács & Kiss solved optimal height/cardinality
// partitioning of a tree into bounded-fanout pieces; the paper's dynamic
// algorithm approximates that incrementally.  This builder constructs the
// partition directly from sorted input, bottom-up:
//
//   * a range of <= 32 keys becomes one compound node (height 1),
//   * a larger range is partitioned by repeatedly severing the root BiNode
//     of its largest remaining piece (never more than k pieces) until every
//     piece fits the next level's capacity 32^(h-1); pieces are built
//     recursively and joined under one compound node.
//
// The result is a valid HOT (it passes the full validator) with height
// ceil(log_k n) — plus at most one extra level when the key distribution's
// Patricia shape cannot be packed perfectly near a capacity boundary — for
// any key distribution, including the adversarial monotone orders that
// degrade incremental insertion (DESIGN.md "Deviations"), and nodes at
// maximum fill, which also minimizes memory.
//
// Complexity: O(n log n) mismatch computations, O(n) node constructions.

#ifndef HOT_HOT_BULK_LOAD_H_
#define HOT_HOT_BULK_LOAD_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "common/extractors.h"
#include "common/key.h"
#include "hot/logical_node.h"
#include "hot/node.h"
#include "hot/node_pool.h"

namespace hot {
namespace detail {

// One packed subtree piece during bulk construction.
struct BulkRange {
  size_t lo;       // first key index (inclusive)
  size_t hi;       // last key index (exclusive)
  uint64_t entry;  // built entry (tid or node), filled bottom-up
};

template <typename KeyExtractor>
class BulkBuilder {
 public:
  BulkBuilder(const KeyExtractor& extractor, const uint64_t* values, size_t n,
              NodePool& alloc)
      : extractor_(extractor), values_(values), n_(n), alloc_(alloc) {}

  // Returns the root entry for values_[0..n), which must be sorted by key
  // and duplicate-free.
  uint64_t Build() {
    if (n_ == 0) return HotEntry::kEmpty;
    return BuildRange(0, n_);
  }

 private:
  KeyRef KeyAt(size_t i, KeyScratch& scratch) const {
    return extractor_(values_[i], scratch);
  }

  // First bit at which keys i and j differ.
  unsigned Mismatch(size_t i, size_t j) const {
    KeyScratch si, sj;
    size_t p = FirstMismatchBit(KeyAt(i, si), KeyAt(j, sj));
    assert(p != kNoMismatch && "bulk input contains duplicate keys");
    return static_cast<unsigned>(p);
  }

  // First index in [lo, hi) whose key has bit `pos` set.  The range is a
  // Patricia subtree sharing its prefix above `pos`, so the bit is
  // monotone over the sorted range.
  size_t Boundary(size_t lo, size_t hi, unsigned pos) const {
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      KeyScratch scratch;
      if (KeyAt(mid, scratch).Bit(pos) == 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  uint64_t BuildRange(size_t lo, size_t hi) {
    size_t n = hi - lo;
    if (n == 1) return HotEntry::MakeTid(values_[lo]);
    if (n <= kMaxFanout) {
      std::vector<BulkRange> leaves;
      leaves.reserve(n);
      for (size_t i = lo; i < hi; ++i) {
        leaves.push_back({i, i + 1, HotEntry::MakeTid(values_[i])});
      }
      return BuildNode(leaves, /*height=*/1);
    }

    // Capacity of the next level: the smallest power of k whose square
    // covers n... i.e. 32^(h-1) for minimal h with 32^h >= n.
    size_t cap = kMaxFanout;
    while (cap * kMaxFanout < n) cap *= kMaxFanout;

    // Partition by severing root BiNodes, largest piece first, at most k
    // pieces.  Pieces stay sorted and adjacent.  Splitting continues past
    // the point where every piece fits `cap`: using the full fanout budget
    // shrinks the children, which softens the near-boundary cases where
    // perfect packing at `cap` is impossible (pieces below `cap/k` are
    // never split — they are already single-node material).
    std::vector<BulkRange> pieces = {{lo, hi, 0}};
    size_t floor_size = std::max<size_t>(cap / kMaxFanout, kMaxFanout);
    for (;;) {
      size_t largest = pieces.size();
      size_t largest_size = floor_size;
      for (size_t i = 0; i < pieces.size(); ++i) {
        size_t sz = pieces[i].hi - pieces[i].lo;
        if (sz > largest_size) {
          largest = i;
          largest_size = sz;
        }
      }
      if (largest == pieces.size() || pieces.size() >= kMaxFanout) break;
      BulkRange piece = pieces[largest];
      unsigned bit = Mismatch(piece.lo, piece.hi - 1);
      size_t m = Boundary(piece.lo, piece.hi, bit);
      assert(m > piece.lo && m < piece.hi);
      pieces[largest] = {piece.lo, m, 0};
      pieces.insert(pieces.begin() + static_cast<long>(largest) + 1,
                    {m, piece.hi, 0});
    }

    unsigned height = 1;
    for (auto& piece : pieces) {
      piece.entry = BuildRange(piece.lo, piece.hi);
      height = std::max(height, 1 + EntryHeight(piece.entry));
    }
    return BuildNode(pieces, height);
  }

  // Builds one compound node over the given adjacent pieces: the local
  // Patricia trie over piece boundaries, encoded via CollectBits/
  // AssignSparse recursions.
  uint64_t BuildNode(const std::vector<BulkRange>& pieces, unsigned height) {
    LogicalNode ln;
    ln.height = height;
    ln.count = static_cast<unsigned>(pieces.size());
    ln.num_bits = 0;
    CollectBits(pieces, 0, pieces.size(), &ln);
    // Sort + dedup the discriminative bits (positions can repeat across
    // subtrees).
    std::sort(ln.bits, ln.bits + ln.num_bits);
    ln.num_bits = static_cast<unsigned>(
        std::unique(ln.bits, ln.bits + ln.num_bits) - ln.bits);
    assert(ln.num_bits >= 1 && ln.num_bits <= kMaxDiscBits);
    AssignSparse(pieces, 0, pieces.size(), 0, &ln);
    for (size_t i = 0; i < pieces.size(); ++i) {
      ln.entries[i] = pieces[i].entry;
    }
    return Encode(ln, alloc_).ToEntry();
  }

  // The BiNode bit severing pieces [from, to): the first mismatch between
  // the smallest key of the first piece and the largest key of the last.
  unsigned RootBitOf(const std::vector<BulkRange>& pieces, size_t from,
                     size_t to) const {
    return Mismatch(pieces[from].lo, pieces[to - 1].hi - 1);
  }

  // First piece in [from, to) on the 1-side of `pos`.
  size_t PieceBoundary(const std::vector<BulkRange>& pieces, size_t from,
                       size_t to, unsigned pos) const {
    while (from < to) {
      size_t mid = from + (to - from) / 2;
      KeyScratch scratch;
      if (KeyAt(pieces[mid].lo, scratch).Bit(pos) == 0) {
        from = mid + 1;
      } else {
        to = mid;
      }
    }
    return from;
  }

  void CollectBits(const std::vector<BulkRange>& pieces, size_t from,
                   size_t to, LogicalNode* ln) const {
    if (to - from <= 1) return;
    unsigned bit = RootBitOf(pieces, from, to);
    assert(ln->num_bits < kMaxFanout);
    ln->bits[ln->num_bits++] = static_cast<uint16_t>(bit);
    size_t m = PieceBoundary(pieces, from, to, bit);
    CollectBits(pieces, from, m, ln);
    CollectBits(pieces, m, to, ln);
  }

  void AssignSparse(const std::vector<BulkRange>& pieces, size_t from,
                    size_t to, uint32_t prefix, LogicalNode* ln) const {
    if (to - from == 1) {
      ln->sparse[from] = prefix;
      return;
    }
    unsigned bit = RootBitOf(pieces, from, to);
    bool exists;
    unsigned rank = BitRank(*ln, bit, &exists);
    assert(exists);
    size_t m = PieceBoundary(pieces, from, to, bit);
    AssignSparse(pieces, from, m, prefix, ln);
    AssignSparse(pieces, m, to, prefix | LogicalNode::RankBit(rank), ln);
  }

  const KeyExtractor& extractor_;
  const uint64_t* values_;
  size_t n_;
  NodePool& alloc_;
};

}  // namespace detail
}  // namespace hot

#endif  // HOT_HOT_BULK_LOAD_H_
