// Bulk loading with height-optimized packing (paper §3.1).
//
// For static data, Kovács & Kiss solved optimal height/cardinality
// partitioning of a tree into bounded-fanout pieces; the paper's dynamic
// algorithm approximates that incrementally.  This builder constructs the
// partition directly from sorted input, bottom-up:
//
//   * a range of <= 32 keys becomes one compound node (height 1),
//   * a larger range is partitioned by repeatedly severing the root BiNode
//     of its largest remaining piece (never more than k pieces) until every
//     piece fits the next level's capacity 32^(h-1); pieces are built
//     recursively and joined under one compound node.
//
// The result is a valid HOT (it passes the full validator) with height
// ceil(log_k n) — plus at most one extra level when the key distribution's
// Patricia shape cannot be packed perfectly near a capacity boundary — for
// any key distribution, including the adversarial monotone orders that
// degrade incremental insertion (DESIGN.md "Deviations"), and nodes at
// maximum fill, which also minimizes memory.
//
// Parallel build (ParallelBulkBuild): the severing partition cuts only at
// discriminative bits — each piece is a complete Patricia subtrie of the
// key set — so pieces are independent build units.  The driver expands the
// top of the recursion serially into a plan tree (pure binary searches, no
// allocation), hands the leaf ranges to N workers that each build through
// their own pinned node-pool stripe (first-touch pages, no cross-thread
// contention), then grafts the finished subtrie roots under the internal
// compound nodes serially, bottom-up.  Because the partition and the
// per-piece recursion are byte-for-byte the serial algorithm, the parallel
// output has the same logical structure — same nodes, same heights, same
// key→value map — as a serial build of the same input (DESIGN.md §11).
//
// Allocation: a BulkBuilder pins the caller's pool stripe at construction
// (NodePool::StripeRef), so a build never migrates stripes mid-flight no
// matter how CurrentThreadIndex is assigned, and parallel workers get
// disjoint stripes by id.
//
// Duplicate keys: the sorted input must be duplicate-free; a duplicate is
// detected (adjacent equal keys always reach a shared Mismatch) and
// rejected with std::invalid_argument.  Nodes built before the throw stay
// in the pool's arena until the pool is destroyed — the tree root is never
// published, so the trie remains empty and usable.
//
// Complexity: O(n log n) mismatch computations, O(n) node constructions.

#ifndef HOT_HOT_BULK_LOAD_H_
#define HOT_HOT_BULK_LOAD_H_

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <exception>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/extractors.h"
#include "common/key.h"
#include "hot/logical_node.h"
#include "hot/node.h"
#include "hot/node_pool.h"

namespace hot {
namespace detail {

// One packed subtree piece during bulk construction.
struct BulkRange {
  size_t lo;       // first key index (inclusive)
  size_t hi;       // last key index (exclusive)
  uint64_t entry;  // built entry (tid or node), filled bottom-up
};

template <typename KeyExtractor>
class BulkBuilder {
 public:
  // Pins the calling thread's stripe for the whole build.
  BulkBuilder(const KeyExtractor& extractor, const uint64_t* values, size_t n,
              NodePool& alloc)
      : BulkBuilder(extractor, values, n, alloc.CallerStripe()) {}

  // Explicit stripe: parallel workers pass disjoint StripeAt(worker) refs.
  BulkBuilder(const KeyExtractor& extractor, const uint64_t* values, size_t n,
              NodePool::StripeRef stripe)
      : extractor_(extractor), values_(values), n_(n), alloc_(stripe) {}

  // Returns the root entry for values_[0..n), which must be sorted by key
  // and duplicate-free.
  uint64_t Build() {
    if (n_ == 0) return HotEntry::kEmpty;
    return BuildRange(0, n_);
  }

  // --- building blocks shared with ParallelBulkBuild ------------------------

  // Builds the subtrie over keys [lo, hi) and returns its entry.
  uint64_t BuildSubrange(size_t lo, size_t hi) { return BuildRange(lo, hi); }

  // The severing partition of [lo, hi) into <= kMaxFanout adjacent pieces,
  // each a complete Patricia subtrie.  Requires hi - lo > kMaxFanout.
  // Partition by severing root BiNodes, largest piece first.  Pieces stay
  // sorted and adjacent.  Splitting continues past the point where every
  // piece fits the next level's capacity `cap` (32^(h-1) for minimal h with
  // 32^h >= n): using the full fanout budget shrinks the children, which
  // softens the near-boundary cases where perfect packing at `cap` is
  // impossible (pieces below `cap/k` are never split — they are already
  // single-node material).
  void PartitionPieces(size_t lo, size_t hi,
                       std::vector<BulkRange>* pieces) const {
    size_t n = hi - lo;
    assert(n > kMaxFanout);
    // Capacity of the next level: the smallest power of k whose square
    // covers n... i.e. 32^(h-1) for minimal h with 32^h >= n.
    size_t cap = kMaxFanout;
    while (cap * kMaxFanout < n) cap *= kMaxFanout;

    *pieces = {{lo, hi, 0}};
    size_t floor_size = std::max<size_t>(cap / kMaxFanout, kMaxFanout);
    for (;;) {
      size_t largest = pieces->size();
      size_t largest_size = floor_size;
      for (size_t i = 0; i < pieces->size(); ++i) {
        size_t sz = (*pieces)[i].hi - (*pieces)[i].lo;
        if (sz > largest_size) {
          largest = i;
          largest_size = sz;
        }
      }
      if (largest == pieces->size() || pieces->size() >= kMaxFanout) break;
      BulkRange piece = (*pieces)[largest];
      unsigned bit = Mismatch(piece.lo, piece.hi - 1);
      size_t m = Boundary(piece.lo, piece.hi, bit);
      assert(m > piece.lo && m < piece.hi);
      (*pieces)[largest] = {piece.lo, m, 0};
      pieces->insert(pieces->begin() + static_cast<long>(largest) + 1,
                     {m, piece.hi, 0});
    }
  }

  // Builds one compound node over the given adjacent pieces (entries
  // already filled): the local Patricia trie over piece boundaries, encoded
  // via CollectBits/AssignSparse recursions.
  uint64_t BuildNodeOver(const std::vector<BulkRange>& pieces,
                         unsigned height) {
    return BuildNode(pieces, height);
  }

 private:
  KeyRef KeyAt(size_t i, KeyScratch& scratch) const {
    return extractor_(values_[i], scratch);
  }

  // First bit at which keys i and j differ.  Rejects duplicates: any pair
  // of equal keys in sorted input eventually becomes the [i, j] extremes of
  // some partition/collect range (equal keys can never be severed apart),
  // so every duplicate reaches this check.
  unsigned Mismatch(size_t i, size_t j) const {
    KeyScratch si, sj;
    size_t p = FirstMismatchBit(KeyAt(i, si), KeyAt(j, sj));
    if (p == kNoMismatch) {
      throw std::invalid_argument("BulkLoad: input contains duplicate keys");
    }
    return static_cast<unsigned>(p);
  }

  // First index in [lo, hi) whose key has bit `pos` set.  The range is a
  // Patricia subtree sharing its prefix above `pos`, so the bit is
  // monotone over the sorted range.
  size_t Boundary(size_t lo, size_t hi, unsigned pos) const {
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      KeyScratch scratch;
      if (KeyAt(mid, scratch).Bit(pos) == 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  uint64_t BuildRange(size_t lo, size_t hi) {
    size_t n = hi - lo;
    if (n == 1) return HotEntry::MakeTid(values_[lo]);
    if (n <= kMaxFanout) {
      std::vector<BulkRange> leaves;
      leaves.reserve(n);
      for (size_t i = lo; i < hi; ++i) {
        leaves.push_back({i, i + 1, HotEntry::MakeTid(values_[i])});
      }
      return BuildNode(leaves, /*height=*/1);
    }

    std::vector<BulkRange> pieces;
    PartitionPieces(lo, hi, &pieces);

    unsigned height = 1;
    for (auto& piece : pieces) {
      piece.entry = BuildRange(piece.lo, piece.hi);
      height = std::max(height, 1 + EntryHeight(piece.entry));
    }
    return BuildNode(pieces, height);
  }

  uint64_t BuildNode(const std::vector<BulkRange>& pieces, unsigned height) {
    LogicalNode ln;
    ln.height = height;
    ln.count = static_cast<unsigned>(pieces.size());
    ln.num_bits = 0;
    CollectBits(pieces, 0, pieces.size(), &ln);
    // Sort + dedup the discriminative bits (positions can repeat across
    // subtrees).
    std::sort(ln.bits, ln.bits + ln.num_bits);
    ln.num_bits = static_cast<unsigned>(
        std::unique(ln.bits, ln.bits + ln.num_bits) - ln.bits);
    assert(ln.num_bits >= 1 && ln.num_bits <= kMaxDiscBits);
    AssignSparse(pieces, 0, pieces.size(), 0, &ln);
    for (size_t i = 0; i < pieces.size(); ++i) {
      ln.entries[i] = pieces[i].entry;
    }
    return Encode(ln, alloc_).ToEntry();
  }

  // The BiNode bit severing pieces [from, to): the first mismatch between
  // the smallest key of the first piece and the largest key of the last.
  unsigned RootBitOf(const std::vector<BulkRange>& pieces, size_t from,
                     size_t to) const {
    return Mismatch(pieces[from].lo, pieces[to - 1].hi - 1);
  }

  // First piece in [from, to) on the 1-side of `pos`.
  size_t PieceBoundary(const std::vector<BulkRange>& pieces, size_t from,
                       size_t to, unsigned pos) const {
    while (from < to) {
      size_t mid = from + (to - from) / 2;
      KeyScratch scratch;
      if (KeyAt(pieces[mid].lo, scratch).Bit(pos) == 0) {
        from = mid + 1;
      } else {
        to = mid;
      }
    }
    return from;
  }

  void CollectBits(const std::vector<BulkRange>& pieces, size_t from,
                   size_t to, LogicalNode* ln) const {
    if (to - from <= 1) return;
    unsigned bit = RootBitOf(pieces, from, to);
    assert(ln->num_bits < kMaxFanout);
    ln->bits[ln->num_bits++] = static_cast<uint16_t>(bit);
    size_t m = PieceBoundary(pieces, from, to, bit);
    CollectBits(pieces, from, m, ln);
    CollectBits(pieces, m, to, ln);
  }

  void AssignSparse(const std::vector<BulkRange>& pieces, size_t from,
                    size_t to, uint32_t prefix, LogicalNode* ln) const {
    if (to - from == 1) {
      ln->sparse[from] = prefix;
      return;
    }
    unsigned bit = RootBitOf(pieces, from, to);
    bool exists;
    unsigned rank = BitRank(*ln, bit, &exists);
    assert(exists);
    size_t m = PieceBoundary(pieces, from, to, bit);
    AssignSparse(pieces, from, m, prefix, ln);
    AssignSparse(pieces, m, to, prefix | LogicalNode::RankBit(rank), ln);
  }

  const KeyExtractor& extractor_;
  const uint64_t* values_;
  size_t n_;
  NodePool::StripeRef alloc_;
};

// Parallel bottom-up build: same output structure as a serial BulkBuilder
// over the same sorted input, computed on up to `threads` workers.
//
//   Phase 1 (serial)   — expand the top of the BuildRange recursion into a
//                        plan tree: every expansion uses PartitionPieces,
//                        so every cut is at a discriminative bit (BiNode-
//                        consistent) and every piece an independent subtrie.
//                        Pieces at or below the grain become leaf tasks.
//   Phase 2 (parallel) — workers claim leaf tasks (largest first, via an
//                        atomic cursor) and run the ordinary serial
//                        recursion on them, allocating through their own
//                        pinned pool stripe.
//   Phase 3 (serial)   — graft: internal plan nodes are encoded bottom-up
//                        over their children's finished entries, exactly as
//                        BuildRange would have after its recursive calls.
//
// A worker exception (duplicate keys, allocation failure) is rethrown on
// the calling thread after all workers join; as with a serial throw, any
// nodes already built stay in the arena until the pool is destroyed and no
// root is published.
template <typename KeyExtractor>
uint64_t ParallelBulkBuild(const KeyExtractor& extractor,
                           const uint64_t* values, size_t n, NodePool& pool,
                           unsigned threads) {
  if (n == 0) return HotEntry::kEmpty;
  BulkBuilder<KeyExtractor> serial(extractor, values, n, pool);
  if (threads <= 1 || n <= kMaxFanout * kMaxFanout) return serial.Build();

  struct Plan {
    size_t parent;        // index into `plans`; root uses (size_t)-1
    size_t parent_piece;  // which of the parent's pieces this plan fills
    std::vector<BulkRange> pieces;
  };
  struct LeafTask {
    size_t plan, piece, size;
  };
  std::vector<Plan> plans;
  std::vector<LeafTask> tasks;

  // ~4 tasks per worker for load balance; never below one compound node's
  // next-level capacity, so tasks stay coarse enough to amortize claiming.
  const size_t grain = std::max<size_t>(n / (size_t{threads} * 4),
                                        kMaxFanout * kMaxFanout);
  plans.push_back({static_cast<size_t>(-1), 0, {}});
  serial.PartitionPieces(0, n, &plans[0].pieces);
  for (size_t pi = 0; pi < plans.size(); ++pi) {
    for (size_t j = 0; j < plans[pi].pieces.size(); ++j) {
      const BulkRange piece = plans[pi].pieces[j];  // copy: plans may grow
      size_t sz = piece.hi - piece.lo;
      if (sz > grain) {
        plans.push_back({pi, j, {}});
        serial.PartitionPieces(piece.lo, piece.hi, &plans.back().pieces);
      } else {
        tasks.push_back({pi, j, sz});
      }
    }
  }
  // Largest-first claiming approximates LPT scheduling: big subtries start
  // early, stragglers are small.
  std::sort(tasks.begin(), tasks.end(),
            [](const LeafTask& a, const LeafTask& b) { return a.size > b.size; });

  const unsigned workers = static_cast<unsigned>(std::min<size_t>(
      {threads, tasks.size(), NodePool::kStripes}));
  std::atomic<size_t> cursor{0};
  std::vector<std::exception_ptr> errors(workers);
  std::vector<std::thread> crew;
  crew.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    crew.emplace_back([&, w] {
      // Disjoint stripe per worker: every node this worker builds is
      // carved from (and first-touched in) its own bump arena.
      BulkBuilder<KeyExtractor> builder(extractor, values, n,
                                        pool.StripeAt(w));
      try {
        for (;;) {
          size_t t = cursor.fetch_add(1, std::memory_order_relaxed);
          if (t >= tasks.size()) break;
          BulkRange& piece = plans[tasks[t].plan].pieces[tasks[t].piece];
          piece.entry = builder.BuildSubrange(piece.lo, piece.hi);
        }
      } catch (...) {
        errors[w] = std::current_exception();
      }
    });
  }
  for (auto& t : crew) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  // Graft bottom-up.  Children always appear after their parent in `plans`
  // (appended during expansion), so a reverse sweep sees every child entry
  // before its parent encodes.
  for (size_t pi = plans.size(); pi-- > 0;) {
    Plan& p = plans[pi];
    unsigned height = 1;
    for (const BulkRange& piece : p.pieces) {
      height = std::max(height, 1 + EntryHeight(piece.entry));
    }
    uint64_t entry = serial.BuildNodeOver(p.pieces, height);
    if (pi == 0) return entry;
    plans[p.parent].pieces[p.parent_piece].entry = entry;
  }
  return HotEntry::kEmpty;  // unreachable: plans is never empty
}

}  // namespace detail
}  // namespace hot

#endif  // HOT_HOT_BULK_LOAD_H_
