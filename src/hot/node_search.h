// Intra-node search (paper §4.3, Listing 2).
//
// A lookup inside a node has two steps:
//   (1) extract the search key's *dense* partial key — the key's bits at the
//       node's discriminative positions — using PEXT over the node's mask
//       representation, and
//   (2) find the best matching entry among the node's *sparse* partial keys
//       with one data-parallel comparison: entry i complies iff
//       (sparse[i] & dense) == sparse[i], and the result is the complying
//       entry with the highest index (bit-scan-reverse over the comply
//       bitmask intersected with the used-entries mask).
//
// Partial keys are integers whose more-significant bits correspond to
// smaller (more significant) key bit positions, so entry order == key order
// == numeric partial-key order.
//
// Every AVX2 kernel has a scalar twin used for differential tests and the
// SIMD ablation bench.

#ifndef HOT_HOT_NODE_SEARCH_H_
#define HOT_HOT_NODE_SEARCH_H_

#include <cstdint>
#include <cstring>

#include "common/bits.h"
#include "common/key.h"
#include "common/simd.h"
#include "hot/node.h"

namespace hot {

// ---------------------------------------------------------------------------
// Dense partial-key extraction
// ---------------------------------------------------------------------------

// Single-mask extraction: one big-endian 8-byte load at the stored byte
// offset, one PEXT (Listing 2, extractSingleMask).
inline uint32_t ExtractSingleMask(NodeRef node, KeyRef key) {
  unsigned off = *node.single_offset();
  uint64_t word;
  if (off + 8 <= key.size()) {
    word = LoadBigEndian64(key.data() + off);
  } else if (key.size() >= 8 && off < key.size()) {
    // Window overhangs the key's end (ubiquitous for 8-byte integer keys
    // whenever off > 0): load the key's last 8 bytes and shift the window
    // into place — the overhang reads as 0x00 padding.  off < size bounds
    // the shift below 64.
    word = LoadBigEndian64(key.data() + key.size() - 8)
           << (8 * (off - (key.size() - 8)));
  } else if (off >= key.size()) {
    word = 0;  // window entirely past the key: all padding
  } else {
    // Short key: gather what exists, zero-pad the rest.
    uint8_t buf[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    if (off < key.size()) {
      std::memcpy(buf, key.data() + off, key.size() - off);
    }
    word = LoadBigEndian64(buf);
  }
  return static_cast<uint32_t>(Pext64(word, *node.single_mask()));
}

// Multi-mask extraction: gather one byte per used offset slot, PEXT each
// 8-slot group with its pre-combined 64-bit mask word, and concatenate
// (Listing 2, extractMultiMask8/16/32).  Offset slots are sorted ascending,
// so group 0 holds the most significant extracted bits.
inline uint32_t ExtractMultiMask(NodeRef node, KeyRef key) {
  const uint8_t* offs = node.byte_offsets();
  const uint64_t* mask_words = node.mask_words();
  unsigned words = node.num_mask_words();
  uint32_t result = 0;
  for (unsigned w = 0; w < words; ++w) {
    uint64_t gathered = 0;
    const uint8_t* group = offs + w * 8;
    for (unsigned j = 0; j < 8; ++j) {
      gathered = (gathered << 8) | key.ByteOrZero(group[j]);
    }
    uint64_t mask = mask_words[w];
    result = (result << Popcount64(mask)) |
             static_cast<uint32_t>(Pext64(gathered, mask));
  }
  return result;
}

// Dense partial key of `key` with respect to `node`'s discriminative bits,
// in the low `node.num_bits()` bits of the result.
inline uint32_t ExtractDensePartialKey(NodeRef node, KeyRef key) {
  return node.mask_slots() == 0 ? ExtractSingleMask(node, key)
                                : ExtractMultiMask(node, key);
}

// Scalar reference extraction: walks the node's bit positions one by one.
// Used by tests to validate the PEXT paths and by the ablation bench.
uint32_t ExtractDensePartialKeyScalar(NodeRef node, KeyRef key);

// Absolute position of the node's smallest discriminative bit — the bit of
// the node-local root BiNode (bit positions strictly increase downward along
// any path, so the minimum is the root).  O(1) on the physical masks.
inline unsigned RootDiscBit(NodeRef node) {
  if (node.mask_slots() == 0) {
    uint64_t mask = *node.single_mask();
    return *node.single_offset() * 8u +
           static_cast<unsigned>(std::countl_zero(mask));
  }
  // Slot offsets ascend, so the first mask word holds the smallest bit.
  uint64_t word = node.mask_words()[0];
  unsigned lead = static_cast<unsigned>(std::countl_zero(word));
  return node.byte_offsets()[lead / 8] * 8u + lead % 8;
}

// Recovers the node's absolute discriminative bit positions (ascending) from
// its physical mask representation.  out must hold kMaxDiscBits entries;
// returns the count.
unsigned DecodeBitPositions(NodeRef node, uint16_t* out);

// ---------------------------------------------------------------------------
// Sparse partial-key search
// ---------------------------------------------------------------------------

// Scalar comply computation: entry i complies iff its sparse bits are a
// subset of the dense bits.
inline uint32_t ComplyMaskScalar(NodeRef node, uint32_t dense) {
  uint32_t mask = 0;
  unsigned n = node.count();
  for (unsigned i = 0; i < n; ++i) {
    uint32_t sparse = node.PartialKeyAt(i);
    if ((sparse & dense) == sparse) mask |= 1u << i;
  }
  return mask;
}

// Bitmask of entries whose sparse partial key complies with `dense`
// (AVX2; Listing 2, searchPartialKeys8/16/32).
inline uint32_t ComplyMask(NodeRef node, uint32_t dense) {
#if HOT_HAVE_AVX2
  const uint8_t* pk = node.partial_keys_raw();
  unsigned vectors =
      static_cast<unsigned>(PartialKeySectionBytes(node.type(), node.count())) /
      32;
  switch (node.partial_key_bytes()) {
    case 1: {
      __m256i keys = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pk));
      __m256i d = _mm256_set1_epi8(static_cast<char>(dense));
      __m256i comply =
          _mm256_cmpeq_epi8(_mm256_and_si256(keys, d), keys);
      return static_cast<uint32_t>(_mm256_movemask_epi8(comply));
    }
    case 2: {
      __m256i d = _mm256_set1_epi16(static_cast<short>(dense));
      uint32_t mask = 0;
      for (unsigned v = 0; v < vectors; ++v) {
        __m256i keys = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(pk + v * 32));
        __m256i comply = _mm256_cmpeq_epi16(_mm256_and_si256(keys, d), keys);
        uint32_t lanes = static_cast<uint32_t>(_mm256_movemask_epi8(comply));
        // movemask_epi8 yields two identical bits per 16-bit lane; compress.
        mask |= Pext32(lanes, 0xAAAAAAAAu) << (v * 16);
      }
      return mask;
    }
    default: {
      __m256i d = _mm256_set1_epi32(static_cast<int>(dense));
      uint32_t mask = 0;
      for (unsigned v = 0; v < vectors; ++v) {
        __m256i keys = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(pk + v * 32));
        __m256i comply = _mm256_cmpeq_epi32(_mm256_and_si256(keys, d), keys);
        uint32_t lanes = static_cast<uint32_t>(_mm256_movemask_ps(
            _mm256_castsi256_ps(comply)));
        mask |= lanes << (v * 8);
      }
      return mask;
    }
  }
#else
  return ComplyMaskScalar(node, dense);
#endif
}

// Index of the best matching entry for `key` (Listing 2,
// retrieveResultCandidates + bit_scan_reverse).  Entry 0's sparse key is 0
// and always complies, so a result always exists.
inline unsigned SearchNode(NodeRef node, KeyRef key) {
  uint32_t dense = ExtractDensePartialKey(node, key);
  uint32_t comply = ComplyMask(node, dense) & node.UsedMask();
  return BitScanReverse32(comply);
}

// Fully scalar search twin (scalar extract + scalar comply).
inline unsigned SearchNodeScalar(NodeRef node, KeyRef key) {
  uint32_t dense = ExtractDensePartialKeyScalar(node, key);
  uint32_t comply = ComplyMaskScalar(node, dense) & node.UsedMask();
  return BitScanReverse32(comply);
}

}  // namespace hot

#endif  // HOT_HOT_NODE_SEARCH_H_
