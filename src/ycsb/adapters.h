// Uniform benchmark adapters: one thin wrapper per (index template, key
// type) pair so the YCSB driver and every bench binary can treat HOT, ART,
// the B+-tree and Masstree identically.
//
// The "update" of YCSB workloads A/B/F updates the tuple a key maps to:
// with tid-based indexes the index performs exactly a lookup and the tuple
// write happens outside the index (§6.1 stores 8-byte tids / embedded
// integer keys).  UpdateRecord therefore performs an index lookup and then
// writes an external value slot, which charges every index the same
// non-index cost.

#ifndef HOT_YCSB_ADAPTERS_H_
#define HOT_YCSB_ADAPTERS_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/alloc.h"
#include "common/extractors.h"
#include "common/key.h"
#include "common/simd.h"
#include "ycsb/datasets.h"
#include "ycsb/range_sharded.h"

namespace hot {
namespace ycsb {

// Indexes exposing a memory-level-parallel batched lookup (HotTrie,
// RowexHotTrie).  Adapters dispatch MultiLookup to it when present and fall
// back to a sequential loop (ART, Masstree, BT), so the workload driver's
// --batch mode runs against every index.
template <typename Index>
concept HasLookupBatch =
    requires(const Index& idx, std::span<const KeyRef> keys,
             std::span<std::optional<uint64_t>> out) {
      idx.LookupBatch(keys, out);
    };

// Range-sharded wrappers accept data-dependent splitters while empty.  The
// adapters reshard at construction with equi-depth boundaries sampled from
// the data set about to be loaded, so skewed key spaces (URLs sharing long
// "http" prefixes) still spread across shards.
template <typename Index>
concept HasReshard = requires(Index& idx, SplitterKeys sk) {
  idx.Reshard(std::move(sk));
  { Index::kDefaultShards } -> std::convertible_to<unsigned>;
};

// Hybrid static/delta indexes (hot/hybrid.h) expose a synchronous merge.
// Drivers call Quiesce() between phases to reach a fully-merged state, so
// "merge-quiescent" baselines measure the base trie alone.
template <typename Index>
concept HasForceMerge = requires(Index& idx) { idx.ForceMerge(); };

// Sharded wrappers expose their routing; drivers use it to pre-partition
// request streams by shard owner (PartitionIdsByOwner), giving each worker
// thread an exclusive contiguous slice of the shard space.
template <typename Index>
concept HasShardOf = requires(const Index& idx, KeyRef key) {
  { idx.ShardOf(key) } -> std::convertible_to<unsigned>;
  { idx.shard_count() } -> std::convertible_to<unsigned>;
};

template <template <typename> class IndexT>
class StringDataSetAdapter {
 public:
  explicit StringDataSetAdapter(const DataSet* ds)
      : ds_(ds),
        index_(StringTableExtractor(&ds->strings), &counter_),
        values_(ds->strings.size(), 0) {
    if constexpr (HasReshard<IndexT<StringTableExtractor>>) {
      index_.Reshard(SampledSplitters(
          *ds, IndexT<StringTableExtractor>::kDefaultShards));
    }
  }

  bool InsertRecord(size_t i) { return index_.Insert(i); }

  bool LookupRecord(size_t i) {
    return index_.Lookup(TerminatedView(ds_->strings[i])).has_value();
  }

  // Batched read of records ids[0..n); returns the number found.
  size_t MultiLookup(const uint32_t* ids, size_t n) {
    if constexpr (HasLookupBatch<IndexT<StringTableExtractor>>) {
      // The string headers are themselves random reads; prefetch them
      // before building the key views.
      for (size_t i = 0; i < n; ++i) {
        PrefetchLines(&ds_->strings[ids[i]], 1);
      }
      keys_.resize(n);
      results_.resize(n);
      for (size_t i = 0; i < n; ++i) {
        keys_[i] = TerminatedView(ds_->strings[ids[i]]);
      }
      index_.LookupBatch(keys_, results_);
      size_t hits = 0;
      for (size_t i = 0; i < n; ++i) hits += results_[i].has_value();
      return hits;
    } else {
      size_t hits = 0;
      for (size_t i = 0; i < n; ++i) hits += LookupRecord(ids[i]);
      return hits;
    }
  }

  size_t ScanRecord(size_t i, size_t len) {
    uint64_t sink = 0;
    size_t n = index_.ScanFrom(TerminatedView(ds_->strings[i]), len,
                               [&](uint64_t v) { sink += v; });
    sink_ += sink;
    return n;
  }

  bool RemoveRecord(size_t i) {
    return index_.Remove(TerminatedView(ds_->strings[i]));
  }

  bool UpdateRecord(size_t i, uint64_t stamp) {
    auto tid = index_.Lookup(TerminatedView(ds_->strings[i]));
    if (!tid.has_value()) return false;
    values_[*tid] = stamp;  // tuple write outside the index
    return true;
  }

  // Routing hooks for thread-affine drivers: the shard record i's key
  // routes to, and the shard count (0 / 1 on unsharded indexes).
  unsigned ShardOfRecord(size_t i) const {
    if constexpr (HasShardOf<IndexT<StringTableExtractor>>) {
      return index_.ShardOf(TerminatedView(ds_->strings[i]));
    } else {
      return 0;
    }
  }
  unsigned ShardCount() const {
    if constexpr (HasShardOf<IndexT<StringTableExtractor>>) {
      return index_.shard_count();
    } else {
      return 1;
    }
  }

  // Drains any pending delta/merge work (no-op on non-hybrid indexes).
  void Quiesce() {
    if constexpr (HasForceMerge<IndexT<StringTableExtractor>>) {
      index_.ForceMerge();
    }
  }

  size_t MemoryBytes() const { return counter_.live_bytes(); }
  IndexT<StringTableExtractor>& index() { return index_; }
  uint64_t sink() const { return sink_; }

 private:
  const DataSet* ds_;
  MemoryCounter counter_;
  IndexT<StringTableExtractor> index_;
  std::vector<uint64_t> values_;
  std::vector<KeyRef> keys_;                       // MultiLookup scratch
  std::vector<std::optional<uint64_t>> results_;   // MultiLookup scratch
  uint64_t sink_ = 0;
};

template <template <typename> class IndexT>
class IntDataSetAdapter {
 public:
  explicit IntDataSetAdapter(const DataSet* ds)
      : ds_(ds),
        index_(U64KeyExtractor(), &counter_),
        values_(ds->ints.size(), 0) {
    if constexpr (HasReshard<IndexT<U64KeyExtractor>>) {
      index_.Reshard(
          SampledSplitters(*ds, IndexT<U64KeyExtractor>::kDefaultShards));
    }
  }

  bool InsertRecord(size_t i) { return index_.Insert(ds_->ints[i]); }

  bool LookupRecord(size_t i) {
    return index_.Lookup(U64Key(ds_->ints[i]).ref()).has_value();
  }

  // Batched read of records ids[0..n); returns the number found.
  size_t MultiLookup(const uint32_t* ids, size_t n) {
    if constexpr (HasLookupBatch<IndexT<U64KeyExtractor>>) {
      for (size_t i = 0; i < n; ++i) {
        PrefetchLines(&ds_->ints[ids[i]], 1);
      }
      key_bytes_.resize(n * 8);
      keys_.resize(n);
      results_.resize(n);
      for (size_t i = 0; i < n; ++i) {
        EncodeU64(ds_->ints[ids[i]], &key_bytes_[i * 8]);
        keys_[i] = KeyRef(&key_bytes_[i * 8], 8);
      }
      index_.LookupBatch(keys_, results_);
      size_t hits = 0;
      for (size_t i = 0; i < n; ++i) hits += results_[i].has_value();
      return hits;
    } else {
      size_t hits = 0;
      for (size_t i = 0; i < n; ++i) hits += LookupRecord(ids[i]);
      return hits;
    }
  }

  size_t ScanRecord(size_t i, size_t len) {
    uint64_t sink = 0;
    size_t n = index_.ScanFrom(U64Key(ds_->ints[i]).ref(), len,
                               [&](uint64_t v) { sink += v; });
    sink_ += sink;
    return n;
  }

  bool RemoveRecord(size_t i) {
    return index_.Remove(U64Key(ds_->ints[i]).ref());
  }

  bool UpdateRecord(size_t i, uint64_t stamp) {
    auto tid = index_.Lookup(U64Key(ds_->ints[i]).ref());
    if (!tid.has_value()) return false;
    values_[i] = stamp;  // integer keys embed the tid; stamp by record id
    return true;
  }

  // Routing hooks for thread-affine drivers (see StringDataSetAdapter).
  unsigned ShardOfRecord(size_t i) const {
    if constexpr (HasShardOf<IndexT<U64KeyExtractor>>) {
      return index_.ShardOf(U64Key(ds_->ints[i]).ref());
    } else {
      return 0;
    }
  }
  unsigned ShardCount() const {
    if constexpr (HasShardOf<IndexT<U64KeyExtractor>>) {
      return index_.shard_count();
    } else {
      return 1;
    }
  }

  // Drains any pending delta/merge work (no-op on non-hybrid indexes).
  void Quiesce() {
    if constexpr (HasForceMerge<IndexT<U64KeyExtractor>>) {
      index_.ForceMerge();
    }
  }

  size_t MemoryBytes() const { return counter_.live_bytes(); }
  IndexT<U64KeyExtractor>& index() { return index_; }
  uint64_t sink() const { return sink_; }

 private:
  const DataSet* ds_;
  MemoryCounter counter_;
  IndexT<U64KeyExtractor> index_;
  std::vector<uint64_t> values_;
  std::vector<uint8_t> key_bytes_;                 // MultiLookup scratch
  std::vector<KeyRef> keys_;                       // MultiLookup scratch
  std::vector<std::optional<uint64_t>> results_;   // MultiLookup scratch
  uint64_t sink_ = 0;
};

}  // namespace ycsb
}  // namespace hot

#endif  // HOT_YCSB_ADAPTERS_H_
