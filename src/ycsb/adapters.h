// Uniform benchmark adapters: one thin wrapper per (index template, key
// type) pair so the YCSB driver and every bench binary can treat HOT, ART,
// the B+-tree and Masstree identically.
//
// The "update" of YCSB workloads A/B/F updates the tuple a key maps to:
// with tid-based indexes the index performs exactly a lookup and the tuple
// write happens outside the index (§6.1 stores 8-byte tids / embedded
// integer keys).  UpdateRecord therefore performs an index lookup and then
// writes an external value slot, which charges every index the same
// non-index cost.

#ifndef HOT_YCSB_ADAPTERS_H_
#define HOT_YCSB_ADAPTERS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/alloc.h"
#include "common/extractors.h"
#include "common/key.h"
#include "ycsb/datasets.h"

namespace hot {
namespace ycsb {

template <template <typename> class IndexT>
class StringDataSetAdapter {
 public:
  explicit StringDataSetAdapter(const DataSet* ds)
      : ds_(ds),
        index_(StringTableExtractor(&ds->strings), &counter_),
        values_(ds->strings.size(), 0) {}

  bool InsertRecord(size_t i) { return index_.Insert(i); }

  bool LookupRecord(size_t i) {
    return index_.Lookup(TerminatedView(ds_->strings[i])).has_value();
  }

  size_t ScanRecord(size_t i, size_t len) {
    uint64_t sink = 0;
    size_t n = index_.ScanFrom(TerminatedView(ds_->strings[i]), len,
                               [&](uint64_t v) { sink += v; });
    sink_ += sink;
    return n;
  }

  bool RemoveRecord(size_t i) {
    return index_.Remove(TerminatedView(ds_->strings[i]));
  }

  bool UpdateRecord(size_t i, uint64_t stamp) {
    auto tid = index_.Lookup(TerminatedView(ds_->strings[i]));
    if (!tid.has_value()) return false;
    values_[*tid] = stamp;  // tuple write outside the index
    return true;
  }

  size_t MemoryBytes() const { return counter_.live_bytes(); }
  IndexT<StringTableExtractor>& index() { return index_; }
  uint64_t sink() const { return sink_; }

 private:
  const DataSet* ds_;
  MemoryCounter counter_;
  IndexT<StringTableExtractor> index_;
  std::vector<uint64_t> values_;
  uint64_t sink_ = 0;
};

template <template <typename> class IndexT>
class IntDataSetAdapter {
 public:
  explicit IntDataSetAdapter(const DataSet* ds)
      : ds_(ds),
        index_(U64KeyExtractor(), &counter_),
        values_(ds->ints.size(), 0) {}

  bool InsertRecord(size_t i) { return index_.Insert(ds_->ints[i]); }

  bool LookupRecord(size_t i) {
    return index_.Lookup(U64Key(ds_->ints[i]).ref()).has_value();
  }

  size_t ScanRecord(size_t i, size_t len) {
    uint64_t sink = 0;
    size_t n = index_.ScanFrom(U64Key(ds_->ints[i]).ref(), len,
                               [&](uint64_t v) { sink += v; });
    sink_ += sink;
    return n;
  }

  bool RemoveRecord(size_t i) {
    return index_.Remove(U64Key(ds_->ints[i]).ref());
  }

  bool UpdateRecord(size_t i, uint64_t stamp) {
    auto tid = index_.Lookup(U64Key(ds_->ints[i]).ref());
    if (!tid.has_value()) return false;
    values_[i] = stamp;  // integer keys embed the tid; stamp by record id
    return true;
  }

  size_t MemoryBytes() const { return counter_.live_bytes(); }
  IndexT<U64KeyExtractor>& index() { return index_; }
  uint64_t sink() const { return sink_; }

 private:
  const DataSet* ds_;
  MemoryCounter counter_;
  IndexT<U64KeyExtractor> index_;
  std::vector<uint64_t> values_;
  uint64_t sink_ = 0;
};

}  // namespace ycsb
}  // namespace hot

#endif  // HOT_YCSB_ADAPTERS_H_
