// Range-partitioned concurrency wrapper that PRESERVES GLOBAL KEY ORDER —
// the ordered-workload counterpart of the hash-sharded wrapper
// (ycsb/sharded.h, point operations only).
//
// The key space is partitioned by kShards-1 splitter keys into contiguous
// byte ranges; shard s owns keys in [splitter[s-1], splitter[s]) under
// lexicographic (big-endian) byte comparison, so the concatenation of the
// shards' ordered contents in shard order IS the globally ordered key
// sequence.  That is what makes a real ScanFrom possible: scan the owning
// shard from `start`, then spill into successor shards (each scanned from
// its lowest key) until `limit` results are produced — no k-way merge
// needed, because the partitioning is order-preserving (the trie-of-trees
// idea of Masstree, and the range-retaining hybrid of Blink-hash).
//
// Synchronization is per shard: a RowexLockWord guards every operation on
// single-threaded indexes; indexes that declare themselves internally
// synchronized (RowexHotTrie::kInternallySynchronized) are forwarded to
// lock-free, so "range-sharded ROWEX" composes sharding for write
// scalability with wait-free readers inside each shard.
//
// Splitters come from three sources:
//   * explicit SplitterKeys (tests: put boundaries exactly where the edge
//     cases are),
//   * UniformByteSplitters(n) — n equal first-byte ranges; the default, and
//     the right choice for uniformly distributed binary keys,
//   * SampledSplitters(dataset, n) — equi-depth boundaries from a sorted
//     key sample; use for skewed key spaces (URLs share "http…" prefixes,
//     which would otherwise collapse every key into one shard).
//
// Routing is a binary search over the splitter list on the raw key bytes.
// A key's shard never changes (splitters are fixed after Reshard), so
// per-key operation atomicity reduces to the shard's own synchronization.

#ifndef HOT_YCSB_RANGE_SHARDED_H_
#define HOT_YCSB_RANGE_SHARDED_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/extractors.h"
#include "common/key.h"
#include "common/locks.h"
#include "ycsb/datasets.h"

namespace hot {
namespace ycsb {

// Owned splitter keys, sorted strictly ascending.  k splitters define k+1
// shards; shard 0 owns everything below splitters[0].
using SplitterKeys = std::vector<std::vector<uint8_t>>;

namespace detail {

// Indexes that synchronize internally (ROWEX) opt out of the wrapper's
// per-shard lock by declaring `static constexpr bool kInternallySynchronized
// = true`.
template <typename T>
concept SelfSynchronized = requires {
  requires bool(T::kInternallySynchronized);
};

template <typename T>
concept ShardHasUpsert = requires(T& t, uint64_t v) {
  { t.Upsert(v) } -> std::same_as<std::optional<uint64_t>>;
};

template <typename T>
concept ShardHasLookupBatch =
    requires(const T& t, std::span<const KeyRef> keys,
             std::span<std::optional<uint64_t>> out) {
      t.LookupBatch(keys, out);
    };

}  // namespace detail

// `shards` equal first-byte ranges: splitters at byte ceil(256*s/shards).
// Balanced for uniformly distributed binary keys (the integer data sets);
// skewed key spaces should use SampledSplitters instead.
inline SplitterKeys UniformByteSplitters(unsigned shards) {
  SplitterKeys out;
  for (unsigned s = 1; s < shards; ++s) {
    out.push_back({static_cast<uint8_t>((256u * s) / shards)});
  }
  return out;
}

// Equi-depth boundaries: sorts the sample and takes `shards`-1 evenly
// spaced keys (duplicates collapse, so fewer shards may result).
inline SplitterKeys SplittersFromSamples(
    std::vector<std::vector<uint8_t>> samples, unsigned shards) {
  std::sort(samples.begin(), samples.end());
  samples.erase(std::unique(samples.begin(), samples.end()), samples.end());
  SplitterKeys out;
  if (shards < 2 || samples.empty()) return out;
  for (unsigned s = 1; s < shards; ++s) {
    size_t i = samples.size() * s / shards;
    if (i >= samples.size()) break;
    if (!out.empty() && out.back() == samples[i]) continue;
    out.push_back(samples[i]);
  }
  return out;
}

// Equi-depth splitters for a generated data set: sample up to `max_sample`
// keys (terminated string bytes / big-endian integer bytes, matching what
// the index adapters feed the tries), sort, and take `shards`-1 boundaries.
inline SplitterKeys SampledSplitters(const DataSet& ds, unsigned shards,
                                     size_t max_sample = 4096) {
  std::vector<std::vector<uint8_t>> samples;
  size_t n = ds.size();
  if (n == 0 || shards < 2) return {};
  size_t stride = n > max_sample ? n / max_sample : 1;
  for (size_t i = 0; i < n; i += stride) {
    if (ds.IsString()) {
      const std::string& s = ds.strings[i];
      std::vector<uint8_t> bytes(s.begin(), s.end());
      bytes.push_back(0);  // the 0x00 terminator TerminatedView appends
      samples.push_back(std::move(bytes));
    } else {
      std::vector<uint8_t> bytes(8);
      EncodeU64(ds.ints[i], bytes.data());
      samples.push_back(std::move(bytes));
    }
  }
  return SplittersFromSamples(std::move(samples), shards);
}

template <typename Index, typename KeyExtractor>
class RangeShardedIndex {
 public:
  using ShardType = Index;
  static constexpr unsigned kDefaultShards = 16;
  static constexpr bool kSelfSynchronized = detail::SelfSynchronized<Index>;

  template <typename... Args>
  explicit RangeShardedIndex(KeyExtractor extractor = KeyExtractor(),
                             Args&&... shard_args)
      : RangeShardedIndex(UniformByteSplitters(kDefaultShards), extractor,
                          std::forward<Args>(shard_args)...) {}

  template <typename... Args>
  RangeShardedIndex(SplitterKeys splitters, KeyExtractor extractor,
                    Args&&... shard_args)
      : extractor_(extractor),
        factory_([extractor, shard_args...]() {
          return std::make_unique<Index>(extractor, shard_args...);
        }) {
    InstallSplitters(std::move(splitters));
  }

  // Replaces the partitioning (e.g. with boundaries sampled from the data
  // set about to be loaded).  Only legal while the index is empty: keys
  // must never straddle a moved boundary.
  void Reshard(SplitterKeys splitters) {
    if (size() != 0) {
      throw std::logic_error(
          "RangeShardedIndex::Reshard requires an empty index");
    }
    InstallSplitters(std::move(splitters));
  }

  // --- point operations ------------------------------------------------------

  // Inserts `value` under its extracted key.  The keyed overload saves the
  // extraction when the caller already has the key bytes; `key` must equal
  // the extracted key of `value`.
  bool Insert(uint64_t value) {
    KeyScratch scratch;
    return Insert(value, extractor_(value, scratch));
  }
  bool Insert(uint64_t value, KeyRef key) {
    return WithShard(ShardOf(key),
                     [&](Index& idx) { return idx.Insert(value); });
  }

  std::optional<uint64_t> Lookup(KeyRef key) const {
    return WithShard(ShardOf(key),
                     [&](const Index& idx) { return idx.Lookup(key); });
  }

  bool Remove(KeyRef key) {
    return WithShard(ShardOf(key),
                     [&](Index& idx) { return idx.Remove(key); });
  }

  // Insert-or-overwrite; returns the replaced value if the key was present.
  // On shard types without a native Upsert the fallback is insert-if-absent,
  // which is equivalent whenever the stored value is determined by its key
  // (true for every data set and trace keyspace in this repository).
  std::optional<uint64_t> Upsert(uint64_t value) {
    KeyScratch scratch;
    return Upsert(value, extractor_(value, scratch));
  }
  std::optional<uint64_t> Upsert(uint64_t value, KeyRef key) {
    return WithShard(ShardOf(key), [&](Index& idx) -> std::optional<uint64_t> {
      if constexpr (detail::ShardHasUpsert<Index>) {
        return idx.Upsert(value);
      } else {
        return idx.Insert(value) ? std::nullopt
                                 : std::optional<uint64_t>(value);
      }
    });
  }

  // Batched point lookups, forwarded per shard to the underlying
  // memory-level-parallel descent (hot/batch_lookup.h): keys are bucketed
  // by owning shard, each bucket runs one LookupBatch, results scatter back
  // to their input positions.
  void LookupBatch(std::span<const KeyRef> keys,
                   std::span<std::optional<uint64_t>> out) const
    requires detail::ShardHasLookupBatch<Index>
  {
    assert(out.size() >= keys.size());
    std::vector<std::vector<uint32_t>> by_shard(shards_.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      by_shard[ShardOf(keys[i])].push_back(static_cast<uint32_t>(i));
    }
    std::vector<KeyRef> bucket;
    std::vector<std::optional<uint64_t>> results;
    for (unsigned s = 0; s < shards_.size(); ++s) {
      if (by_shard[s].empty()) continue;
      bucket.clear();
      for (uint32_t i : by_shard[s]) bucket.push_back(keys[i]);
      results.assign(bucket.size(), std::nullopt);
      WithShard(s, [&](const Index& idx) {
        idx.LookupBatch(std::span<const KeyRef>(bucket),
                        std::span<std::optional<uint64_t>>(results));
      });
      for (size_t j = 0; j < by_shard[s].size(); ++j) {
        out[by_shard[s][j]] = results[j];
      }
    }
  }

  // --- ordered scans ---------------------------------------------------------

  // Visits up to `limit` values with key >= `start` in GLOBAL key order;
  // returns the number visited.  Starts in the shard owning `start` and
  // spills into successor shards — each scanned from its lowest key, which
  // is by construction above everything already produced — until the limit
  // is reached or the key space is exhausted.  Empty shards in between cost
  // one scan call each and yield nothing.  Each shard is scanned under its
  // own synchronization; concurrent writers may interleave between shards
  // (same per-operation consistency as the underlying index, not a global
  // snapshot).
  template <typename Fn>
  size_t ScanFrom(KeyRef start, size_t limit, Fn&& fn) const {
    size_t produced = 0;
    const unsigned first = ShardOf(start);
    for (unsigned s = first; s < shards_.size() && produced < limit; ++s) {
      KeyRef from = s == first ? start : KeyRef();
      produced += WithShard(s, [&](const Index& idx) {
        return idx.ScanFrom(from, limit - produced, fn);
      });
    }
    return produced;
  }

  // --- introspection ---------------------------------------------------------

  size_t size() const {
    size_t n = 0;
    for (unsigned s = 0; s < shards_.size(); ++s) {
      n += WithShard(s, [](const Index& idx) { return idx.size(); });
    }
    return n;
  }
  bool empty() const { return size() == 0; }

  unsigned shard_count() const {
    return static_cast<unsigned>(shards_.size());
  }
  size_t shard_size(unsigned s) const {
    return WithShard(s, [](const Index& idx) { return idx.size(); });
  }
  const SplitterKeys& splitters() const { return splitters_; }

  // Shard the key routes to: the number of splitters <= key (binary
  // search over the raw big-endian key bytes).
  unsigned ShardOf(KeyRef key) const {
    unsigned lo = 0, hi = static_cast<unsigned>(splitters_.size());
    while (lo < hi) {
      unsigned mid = lo + (hi - lo) / 2;
      KeyRef splitter(splitters_[mid].data(), splitters_[mid].size());
      if (splitter.Compare(key) <= 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  // Visits every shard index in shard (= key) order.  Quiescent-only when
  // the visitor walks tree structure (obs/telemetry.h census fold,
  // testing/differ.h per-shard audits).
  template <typename Fn>
  void ForEachShard(Fn&& fn) const {
    for (const auto& shard : shards_) fn(*shard);
  }

  const KeyExtractor& extractor() const { return extractor_; }

 private:
  struct LockGuard {
    explicit LockGuard(RowexLockWord* lock) : lock_(lock) { lock_->Lock(); }
    ~LockGuard() { lock_->Unlock(); }
    RowexLockWord* lock_;
  };

  template <typename Fn>
  decltype(auto) WithShard(unsigned s, Fn&& fn) const {
    assert(s < shards_.size());
    if constexpr (kSelfSynchronized) {
      return fn(const_cast<const Index&>(*shards_[s]));
    } else {
      LockGuard guard(&locks_[s]);
      return fn(const_cast<const Index&>(*shards_[s]));
    }
  }
  template <typename Fn>
  decltype(auto) WithShard(unsigned s, Fn&& fn) {
    assert(s < shards_.size());
    if constexpr (kSelfSynchronized) {
      return fn(*shards_[s]);
    } else {
      LockGuard guard(&locks_[s]);
      return fn(*shards_[s]);
    }
  }

  void InstallSplitters(SplitterKeys splitters) {
    for (size_t i = 0; i + 1 < splitters.size(); ++i) {
      KeyRef a(splitters[i].data(), splitters[i].size());
      KeyRef b(splitters[i + 1].data(), splitters[i + 1].size());
      if (a.Compare(b) >= 0) {
        throw std::invalid_argument(
            "RangeShardedIndex: splitters must be strictly ascending");
      }
    }
    splitters_ = std::move(splitters);
    shards_.clear();
    for (size_t s = 0; s < splitters_.size() + 1; ++s) {
      shards_.push_back(factory_());
    }
    locks_ = std::make_unique<RowexLockWord[]>(shards_.size());
  }

  KeyExtractor extractor_;
  std::function<std::unique_ptr<Index>()> factory_;
  SplitterKeys splitters_;
  std::vector<std::unique_ptr<Index>> shards_;
  mutable std::unique_ptr<RowexLockWord[]> locks_;
};

}  // namespace ycsb
}  // namespace hot

#endif  // HOT_YCSB_RANGE_SHARDED_H_
