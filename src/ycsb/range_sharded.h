// Range-partitioned concurrency wrapper that PRESERVES GLOBAL KEY ORDER —
// the ordered-workload counterpart of the hash-sharded wrapper
// (ycsb/sharded.h, point operations only).
//
// The key space is partitioned by kShards-1 splitter keys into contiguous
// byte ranges; shard s owns keys in [splitter[s-1], splitter[s]) under
// lexicographic (big-endian) byte comparison, so the concatenation of the
// shards' ordered contents in shard order IS the globally ordered key
// sequence.  That is what makes a real ScanFrom possible: scan the owning
// shard from `start`, then spill into successor shards (each scanned from
// its lowest key) until `limit` results are produced — no k-way merge
// needed, because the partitioning is order-preserving (the trie-of-trees
// idea of Masstree, and the range-retaining hybrid of Blink-hash).
//
// Synchronization is per shard: a RowexLockWord guards every operation on
// single-threaded indexes; indexes that declare themselves internally
// synchronized (RowexHotTrie::kInternallySynchronized) are forwarded to
// lock-free, so "range-sharded ROWEX" composes sharding for write
// scalability with wait-free readers inside each shard.
//
// Splitters come from three sources:
//   * explicit SplitterKeys (tests: put boundaries exactly where the edge
//     cases are),
//   * UniformByteSplitters(n) — n equal first-byte ranges; the default, and
//     the right choice for uniformly distributed binary keys,
//   * SampledSplitters(dataset, n) — equi-depth boundaries from a sorted
//     key sample; use for skewed key spaces (URLs share "http…" prefixes,
//     which would otherwise collapse every key into one shard).
//
// Routing is a binary search over the splitter list.  The search runs on a
// precomputed array of 8-byte big-endian splitter prefixes (one u64 compare
// per probe instead of a memcmp through a double indirection) and falls
// back to full byte comparison only within equal-prefix runs — zero-padded
// prefix order agrees with KeyRef::Compare whenever the prefixes differ.
// A key's shard never changes (splitters are fixed after Reshard), so
// per-key operation atomicity reduces to the shard's own synchronization.
//
// Concurrency hygiene, learned the hard way (DESIGN.md §10 post-mortem):
// each shard's index pointer and lock word live in one cache-line-aligned
// slot, so two threads operating on different shards never false-share a
// line of lock words; and LookupBatch routes/buckets in reusable
// thread-local scratch — the previous vector-of-vectors gather allocated
// per call and serialized every thread through the heap.

#ifndef HOT_YCSB_RANGE_SHARDED_H_
#define HOT_YCSB_RANGE_SHARDED_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/extractors.h"
#include "common/key.h"
#include "common/locks.h"
#include "ycsb/datasets.h"

namespace hot {
namespace ycsb {

// Owned splitter keys, sorted strictly ascending.  k splitters define k+1
// shards; shard 0 owns everything below splitters[0].
using SplitterKeys = std::vector<std::vector<uint8_t>>;

namespace detail {

// Indexes that synchronize internally (ROWEX) opt out of the wrapper's
// per-shard lock by declaring `static constexpr bool kInternallySynchronized
// = true`.
template <typename T>
concept SelfSynchronized = requires {
  requires bool(T::kInternallySynchronized);
};

template <typename T>
concept ShardHasBulkLoad = requires(T& t, const uint64_t* v, size_t n,
                                    unsigned threads) {
  t.BulkLoad(v, n, threads);
};

template <typename T>
concept ShardHasUpsert = requires(T& t, uint64_t v) {
  { t.Upsert(v) } -> std::same_as<std::optional<uint64_t>>;
};

template <typename T>
concept ShardHasLookupBatch =
    requires(const T& t, std::span<const KeyRef> keys,
             std::span<std::optional<uint64_t>> out) {
      t.LookupBatch(keys, out);
    };

// Indexes exposing the routed-subset AMAC entry point (HotTrie,
// RowexHotTrie): the wrapper hands them (keys, ids) directly and skips the
// gather/scatter copies entirely.
template <typename T>
concept ShardHasLookupBatchIndexed =
    requires(const T& t, std::span<const KeyRef> keys,
             std::span<const uint32_t> ids,
             std::span<std::optional<uint64_t>> out) {
      t.LookupBatchIndexed(keys, ids, out);
    };

// First 8 key bytes as a big-endian u64, zero-padded.  Ordering property
// used by the router: if two keys' prefixes differ, u64 order equals
// KeyRef::Compare order (memcmp-then-length), because a zero pad byte is
// minimal exactly like "ran out of key".  Equal prefixes decide nothing.
inline uint64_t KeyPrefix64(KeyRef key) {
  uint64_t p = 0;
  const size_t n = key.size() < 8 ? key.size() : 8;
  for (size_t i = 0; i < n; ++i) {
    p |= static_cast<uint64_t>(key.data()[i]) << (56 - 8 * i);
  }
  return p;
}

}  // namespace detail

// Contiguous block partition of `shards` shards over `threads` workers —
// the thread-affine execution contract shared by the benches and the YCSB
// driver: thread t owns shards [t*S/T, (t+1)*S/T), so each worker touches a
// contiguous key range (its splitter window) and its shards' upper trie
// levels stay in its private cache between operations.
inline std::pair<unsigned, unsigned> ShardRangeOfThread(unsigned thread,
                                                        unsigned shards,
                                                        unsigned threads) {
  const uint64_t s = shards, t = threads;
  return {static_cast<unsigned>(thread * s / t),
          static_cast<unsigned>((thread + uint64_t{1}) * s / t)};
}

// Inverse of ShardRangeOfThread: the worker whose range contains `shard`.
inline unsigned OwnerOfShard(unsigned shard, unsigned shards,
                             unsigned threads) {
  return static_cast<unsigned>(
      ((shard + uint64_t{1}) * threads - 1) / shards);
}

// `shards` equal first-byte ranges: splitters at byte ceil(256*s/shards).
// Balanced for uniformly distributed binary keys (the integer data sets);
// skewed key spaces should use SampledSplitters instead.
inline SplitterKeys UniformByteSplitters(unsigned shards) {
  SplitterKeys out;
  for (unsigned s = 1; s < shards; ++s) {
    out.push_back({static_cast<uint8_t>((256u * s) / shards)});
  }
  return out;
}

// Equi-depth boundaries: sorts the sample and takes `shards`-1 evenly
// spaced keys (duplicates collapse, so fewer shards may result).
inline SplitterKeys SplittersFromSamples(
    std::vector<std::vector<uint8_t>> samples, unsigned shards) {
  std::sort(samples.begin(), samples.end());
  samples.erase(std::unique(samples.begin(), samples.end()), samples.end());
  SplitterKeys out;
  if (shards < 2 || samples.empty()) return out;
  for (unsigned s = 1; s < shards; ++s) {
    size_t i = samples.size() * s / shards;
    if (i >= samples.size()) break;
    if (!out.empty() && out.back() == samples[i]) continue;
    out.push_back(samples[i]);
  }
  return out;
}

// Equi-depth splitters for a generated data set: sample up to `max_sample`
// keys (terminated string bytes / big-endian integer bytes, matching what
// the index adapters feed the tries), sort, and take `shards`-1 boundaries.
//
// `max_sample = 0` (the default) scales the sample with the shard count:
// max(4096, shards * 256), i.e. at least 256 sample points per boundary
// gap.  A fixed 4096-key sample left only 64 points per gap at 64 shards —
// enough quantile noise for a 1.41x max/mean shard imbalance on the url
// data set (BENCH_ablation_shards.json, PR 5); 256 points pulls the
// estimator's relative error down by 2x and keeps the url imbalance under
// 1.2 (range_sharded_test.cc pins this).
inline SplitterKeys SampledSplitters(const DataSet& ds, unsigned shards,
                                     size_t max_sample = 0) {
  std::vector<std::vector<uint8_t>> samples;
  size_t n = ds.size();
  if (n == 0 || shards < 2) return {};
  if (max_sample == 0) {
    max_sample = std::max<size_t>(4096, static_cast<size_t>(shards) * 256);
  }
  size_t stride = n > max_sample ? n / max_sample : 1;
  for (size_t i = 0; i < n; i += stride) {
    if (ds.IsString()) {
      const std::string& s = ds.strings[i];
      std::vector<uint8_t> bytes(s.begin(), s.end());
      bytes.push_back(0);  // the 0x00 terminator TerminatedView appends
      samples.push_back(std::move(bytes));
    } else {
      std::vector<uint8_t> bytes(8);
      EncodeU64(ds.ints[i], bytes.data());
      samples.push_back(std::move(bytes));
    }
  }
  return SplittersFromSamples(std::move(samples), shards);
}

template <typename Index, typename KeyExtractor>
class RangeShardedIndex {
 public:
  using ShardType = Index;
  static constexpr unsigned kDefaultShards = 16;
  static constexpr bool kSelfSynchronized = detail::SelfSynchronized<Index>;

  template <typename... Args>
  explicit RangeShardedIndex(KeyExtractor extractor = KeyExtractor(),
                             Args&&... shard_args)
      : RangeShardedIndex(UniformByteSplitters(kDefaultShards), extractor,
                          std::forward<Args>(shard_args)...) {}

  template <typename... Args>
  RangeShardedIndex(SplitterKeys splitters, KeyExtractor extractor,
                    Args&&... shard_args)
      : extractor_(extractor),
        factory_([extractor, shard_args...]() {
          return std::make_unique<Index>(extractor, shard_args...);
        }) {
    InstallSplitters(std::move(splitters));
  }

  // Replaces the partitioning (e.g. with boundaries sampled from the data
  // set about to be loaded).  Only legal while the index is empty: keys
  // must never straddle a moved boundary.
  void Reshard(SplitterKeys splitters) {
    if (size() != 0) {
      throw std::logic_error(
          "RangeShardedIndex::Reshard requires an empty index");
    }
    InstallSplitters(std::move(splitters));
  }

  // Bulk-builds the whole sharded index from `values` sorted ascending by
  // extracted key with no duplicates.  Only legal on an EMPTY index (same
  // precondition as Reshard) and quiescent-only.  The globally sorted
  // input is cut at the splitter boundaries — shard s's slice ends at the
  // first value whose key reaches splitter[s], found by lower_bound, so
  // the slices partition the input exactly as RouteOne would key-for-key —
  // and each nonempty slice drives the shard's native BulkLoad.  Shards
  // build one after another, each with the full `threads` budget (a single
  // build already saturates its workers).  Available only on shard types
  // with a BulkLoad (HotTrie, RowexHotTrie); restart recovery
  // (net/server.cc) rebuilds multi-million-key images through this instead
  // of replaying inserts.
  void BulkLoadSorted(std::span<const uint64_t> values, unsigned threads = 1)
    requires detail::ShardHasBulkLoad<Index>
  {
    if (size() != 0) {
      throw std::logic_error(
          "RangeShardedIndex::BulkLoadSorted requires an empty index");
    }
    size_t lo = 0;
    for (unsigned s = 0; s < shard_count_; ++s) {
      size_t hi = values.size();
      if (s + 1 < shard_count_) {
        KeyRef bound(splitters_[s].data(), splitters_[s].size());
        auto it = std::lower_bound(values.begin() + lo, values.end(), bound,
                                   [&](uint64_t v, KeyRef b) {
                                     KeyScratch scratch;
                                     return extractor_(v, scratch).Compare(b) <
                                            0;
                                   });
        hi = static_cast<size_t>(it - values.begin());
      }
      if (hi > lo) {
        WithShard(s, [&](Index& idx) {
          idx.BulkLoad(values.data() + lo, hi - lo, threads);
        });
      }
      lo = hi;
    }
  }

  // --- point operations ------------------------------------------------------

  // Inserts `value` under its extracted key.  The keyed overload saves the
  // extraction when the caller already has the key bytes; `key` must equal
  // the extracted key of `value`.
  bool Insert(uint64_t value) {
    KeyScratch scratch;
    return Insert(value, extractor_(value, scratch));
  }
  bool Insert(uint64_t value, KeyRef key) {
    return WithShard(ShardOf(key),
                     [&](Index& idx) { return idx.Insert(value); });
  }

  std::optional<uint64_t> Lookup(KeyRef key) const {
    return WithShard(ShardOf(key),
                     [&](const Index& idx) { return idx.Lookup(key); });
  }

  bool Remove(KeyRef key) {
    return WithShard(ShardOf(key),
                     [&](Index& idx) { return idx.Remove(key); });
  }

  // Insert-or-overwrite; returns the replaced value if the key was present.
  // On shard types without a native Upsert the fallback is insert-if-absent,
  // which is equivalent whenever the stored value is determined by its key
  // (true for every data set and trace keyspace in this repository).
  std::optional<uint64_t> Upsert(uint64_t value) {
    KeyScratch scratch;
    return Upsert(value, extractor_(value, scratch));
  }
  std::optional<uint64_t> Upsert(uint64_t value, KeyRef key) {
    return WithShard(ShardOf(key), [&](Index& idx) -> std::optional<uint64_t> {
      if constexpr (detail::ShardHasUpsert<Index>) {
        return idx.Upsert(value);
      } else {
        return idx.Insert(value) ? std::nullopt
                                 : std::optional<uint64_t>(value);
      }
    });
  }

  // Routes every key to its owning shard in one pass.  Prefix-first: one
  // u64 compare per binary-search probe, full byte comparison only when a
  // probe's splitter shares the key's first 8 bytes.  Agrees with ShardOf
  // key-for-key (range_sharded_test.cc pins the parity).
  void RouteBatch(std::span<const KeyRef> keys, uint32_t* shard_out) const {
    for (size_t i = 0; i < keys.size(); ++i) {
      shard_out[i] = RouteOne(keys[i], detail::KeyPrefix64(keys[i]));
    }
  }

  // Batched point lookups, forwarded per shard to the underlying
  // memory-level-parallel descent (hot/batch_lookup.h).  One route pass
  // (RouteBatch) replaces the old per-key memcmp binary search; a counting
  // sort buckets key *ids* by shard in reusable thread-local scratch (the
  // previous vector-of-vectors allocated every call, and every calling
  // thread serialized on the allocator); each nonempty bucket then drives
  // one AMAC group through the shard's LookupBatchIndexed, with the id
  // bucket acting as the scatter map.  out[i] is written exactly once, for
  // every i — including duplicate keys and keys of empty shards — so the
  // scatter-back order is deterministic.
  void LookupBatch(std::span<const KeyRef> keys,
                   std::span<std::optional<uint64_t>> out) const
    requires detail::ShardHasLookupBatch<Index>
  {
    assert(out.size() >= keys.size());
    const size_t n = keys.size();
    if (n == 0) return;
    struct Scratch {
      std::vector<uint32_t> shard_of;  // RouteBatch output, one per key
      std::vector<uint32_t> cursor;    // bucket starts, then fill cursors
      std::vector<uint32_t> ids;       // key ids grouped by shard
      std::vector<KeyRef> bucket;                    // gather fallback only
      std::vector<std::optional<uint64_t>> results;  // gather fallback only
    };
    static thread_local Scratch scratch;

    scratch.shard_of.resize(n);
    RouteBatch(keys, scratch.shard_of.data());

    // Counting sort of ids by shard, stable in input order.  After the
    // fill pass cursor[s] has advanced to the start of bucket s+1, so
    // bucket s spans [s == 0 ? 0 : cursor[s-1], cursor[s]).
    scratch.cursor.assign(shard_count_ + 1, 0);
    for (size_t i = 0; i < n; ++i) ++scratch.cursor[scratch.shard_of[i] + 1];
    for (size_t s = 1; s <= shard_count_; ++s) {
      scratch.cursor[s] += scratch.cursor[s - 1];
    }
    scratch.ids.resize(n);
    for (size_t i = 0; i < n; ++i) {
      scratch.ids[scratch.cursor[scratch.shard_of[i]]++] =
          static_cast<uint32_t>(i);
    }

    for (size_t s = 0; s < shard_count_; ++s) {
      const uint32_t begin = s == 0 ? 0 : scratch.cursor[s - 1];
      const uint32_t end = scratch.cursor[s];
      if (begin == end) continue;
      std::span<const uint32_t> ids(scratch.ids.data() + begin, end - begin);
      WithShard(static_cast<unsigned>(s), [&](const Index& idx) {
        if constexpr (detail::ShardHasLookupBatchIndexed<Index>) {
          idx.LookupBatchIndexed(keys, ids, out);
        } else {
          // Shard type without the indexed entry point: gather the bucket's
          // keys, batch-look them up, scatter back — still in thread-local
          // scratch, still one batch call per shard.
          scratch.bucket.clear();
          for (uint32_t id : ids) scratch.bucket.push_back(keys[id]);
          scratch.results.assign(ids.size(), std::nullopt);
          idx.LookupBatch(
              std::span<const KeyRef>(scratch.bucket),
              std::span<std::optional<uint64_t>>(scratch.results));
          for (size_t j = 0; j < ids.size(); ++j) {
            out[ids[j]] = scratch.results[j];
          }
        }
      });
    }
  }

  // --- ordered scans ---------------------------------------------------------

  // Visits up to `limit` values with key >= `start` in GLOBAL key order;
  // returns the number visited.  Starts in the shard owning `start` and
  // spills into successor shards — each scanned from its lowest key, which
  // is by construction above everything already produced — until the limit
  // is reached or the key space is exhausted.  Empty shards in between cost
  // one scan call each and yield nothing.  Each shard is scanned under its
  // own synchronization; concurrent writers may interleave between shards
  // (same per-operation consistency as the underlying index, not a global
  // snapshot).
  template <typename Fn>
  size_t ScanFrom(KeyRef start, size_t limit, Fn&& fn) const {
    size_t produced = 0;
    const unsigned first = ShardOf(start);
    for (unsigned s = first; s < shard_count_ && produced < limit; ++s) {
      KeyRef from = s == first ? start : KeyRef();
      produced += WithShard(s, [&](const Index& idx) {
        return idx.ScanFrom(from, limit - produced, fn);
      });
    }
    return produced;
  }

  // --- introspection ---------------------------------------------------------

  size_t size() const {
    size_t n = 0;
    for (unsigned s = 0; s < shard_count_; ++s) {
      n += WithShard(s, [](const Index& idx) { return idx.size(); });
    }
    return n;
  }
  bool empty() const { return size() == 0; }

  unsigned shard_count() const { return static_cast<unsigned>(shard_count_); }
  size_t shard_size(unsigned s) const {
    return WithShard(s, [](const Index& idx) { return idx.size(); });
  }
  const SplitterKeys& splitters() const { return splitters_; }

  // Shard the key routes to: the number of splitters <= key.  Same
  // prefix-first search as RouteBatch.
  unsigned ShardOf(KeyRef key) const {
    return RouteOne(key, detail::KeyPrefix64(key));
  }

  // Visits every shard index in shard (= key) order.  Quiescent-only when
  // the visitor walks tree structure (obs/telemetry.h census fold,
  // testing/differ.h per-shard audits).
  template <typename Fn>
  void ForEachShard(Fn&& fn) const {
    for (size_t s = 0; s < shard_count_; ++s) fn(*slots_[s].index);
  }

  const KeyExtractor& extractor() const { return extractor_; }

 private:
  // One shard's complete state — index pointer plus its wrapper lock — in
  // its own cache line.  The previous layout kept every shard's 1-byte
  // RowexLockWord adjacent in a single RowexLockWord[]: up to 64 shards'
  // locks in ONE line, so any thread's acquire invalidated every other
  // thread's cached copy of every lock (pure false sharing; the §10
  // post-mortem measured it as most of the 1→16-shard lookup regression).
  struct alignas(64) ShardSlot {
    std::unique_ptr<Index> index;
    mutable RowexLockWord lock;
  };

  struct LockGuard {
    explicit LockGuard(RowexLockWord* lock) : lock_(lock) { lock_->Lock(); }
    ~LockGuard() { lock_->Unlock(); }
    RowexLockWord* lock_;
  };

  template <typename Fn>
  decltype(auto) WithShard(unsigned s, Fn&& fn) const {
    assert(s < shard_count_);
    if constexpr (kSelfSynchronized) {
      return fn(const_cast<const Index&>(*slots_[s].index));
    } else {
      LockGuard guard(&slots_[s].lock);
      return fn(const_cast<const Index&>(*slots_[s].index));
    }
  }
  template <typename Fn>
  decltype(auto) WithShard(unsigned s, Fn&& fn) {
    assert(s < shard_count_);
    if constexpr (kSelfSynchronized) {
      return fn(*slots_[s].index);
    } else {
      LockGuard guard(&slots_[s].lock);
      return fn(*slots_[s].index);
    }
  }

  // Partition point over the splitters: count of splitters <= key.  Probes
  // compare u64 prefixes; only an equal-prefix probe pays the full
  // KeyRef::Compare through the splitter byte vector.
  unsigned RouteOne(KeyRef key, uint64_t key_prefix) const {
    unsigned lo = 0, hi = static_cast<unsigned>(prefix64_.size());
    while (lo < hi) {
      unsigned mid = lo + (hi - lo) / 2;
      bool le;  // splitter[mid] <= key?
      if (prefix64_[mid] != key_prefix) {
        le = prefix64_[mid] < key_prefix;
      } else {
        KeyRef splitter(splitters_[mid].data(), splitters_[mid].size());
        le = splitter.Compare(key) <= 0;
      }
      if (le) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  void InstallSplitters(SplitterKeys splitters) {
    for (size_t i = 0; i + 1 < splitters.size(); ++i) {
      KeyRef a(splitters[i].data(), splitters[i].size());
      KeyRef b(splitters[i + 1].data(), splitters[i + 1].size());
      if (a.Compare(b) >= 0) {
        throw std::invalid_argument(
            "RangeShardedIndex: splitters must be strictly ascending");
      }
    }
    splitters_ = std::move(splitters);
    prefix64_.clear();
    for (const auto& sp : splitters_) {
      prefix64_.push_back(detail::KeyPrefix64(KeyRef(sp.data(), sp.size())));
    }
    shard_count_ = splitters_.size() + 1;
    slots_ = std::make_unique<ShardSlot[]>(shard_count_);
    for (size_t s = 0; s < shard_count_; ++s) slots_[s].index = factory_();
  }

  KeyExtractor extractor_;
  std::function<std::unique_ptr<Index>()> factory_;
  SplitterKeys splitters_;
  std::vector<uint64_t> prefix64_;  // KeyPrefix64 of each splitter
  size_t shard_count_ = 0;
  std::unique_ptr<ShardSlot[]> slots_;
};

}  // namespace ycsb
}  // namespace hot

#endif  // HOT_YCSB_RANGE_SHARDED_H_
