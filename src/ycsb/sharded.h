// Hash-sharded concurrency wrapper used as the stand-in for the baselines'
// synchronized variants in the point-operation arms of the scalability
// experiment (Fig. 10).
//
// The paper compares synchronized HOT against synchronized ART (ROWEX) and
// Masstree (OCC).  This repository implements the paper's contribution —
// HOT's ROWEX protocol (§5) — in full (hot/rowex.h); for the baselines we
// substitute 64-way hash sharding with per-shard spinlocks over the
// single-threaded implementations, which provides correct concurrent point
// operations with low contention (DESIGN.md "Substitutions": this machine
// exposes one physical core, so none of the protocols can exhibit real
// parallel speedup here anyway).
//
// Hash sharding destroys key order, so ScanFrom is poisoned at compile
// time below.  Ordered workloads (YCSB E, the Fig. 10 scan arm) go through
// ycsb/range_sharded.h instead: the range-partitioned wrapper routes on
// splitter keys, keeps global key order across shards, and implements a
// real cross-shard spillover scan (DESIGN.md §10).  This wrapper remains
// the cheaper choice when no scans are needed — uniform FNV-1a routing
// needs no splitter tuning and balances any key distribution.

#ifndef HOT_YCSB_SHARDED_H_
#define HOT_YCSB_SHARDED_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "common/key.h"
#include "common/locks.h"

namespace hot {
namespace ycsb {

template <typename Index, unsigned kShards = 64>
class ShardedIndex {
 public:
  template <typename... Args>
  explicit ShardedIndex(Args&&... args) {
    for (unsigned s = 0; s < kShards; ++s) {
      shards_[s] = std::make_unique<Index>(args...);
    }
  }

  bool Insert(uint64_t value, KeyRef key) {
    unsigned s = ShardOf(key);
    LockGuard guard(&locks_[s]);
    return shards_[s]->Insert(value);
  }

  std::optional<uint64_t> Lookup(KeyRef key) const {
    unsigned s = ShardOf(key);
    LockGuard guard(&locks_[s]);
    return shards_[s]->Lookup(key);
  }

  bool Remove(KeyRef key) {
    unsigned s = ShardOf(key);
    LockGuard guard(&locks_[s]);
    return shards_[s]->Remove(key);
  }

  // Insert-or-overwrite, forwarded per shard (the shard of a key never
  // changes, so upsert atomicity reduces to the shard lock).
  std::optional<uint64_t> Upsert(uint64_t value, KeyRef key) {
    unsigned s = ShardOf(key);
    LockGuard guard(&locks_[s]);
    return shards_[s]->Upsert(value);
  }

  size_t size() const {
    size_t n = 0;
    for (unsigned s = 0; s < kShards; ++s) {
      LockGuard guard(&locks_[s]);
      n += shards_[s]->size();
    }
    return n;
  }

  // Range scans cannot work over hash shards: key order is destroyed by the
  // shard function, so a ScanFrom here would silently return per-shard
  // fragments.  Poisoned so misuse is a compile-time error with a readable
  // message rather than wrong results (Fig. 10 measures inserts and lookups
  // only).
  template <typename Fn>
  size_t ScanFrom(KeyRef, size_t, Fn&&) const
    requires false
  {
    static_assert(sizeof(Fn) == 0,
                  "ShardedIndex does not support range scans: hash sharding "
                  "destroys key order");
    return 0;
  }

 private:
  struct LockGuard {
    explicit LockGuard(RowexLockWord* lock) : lock_(lock) { lock_->Lock(); }
    ~LockGuard() { lock_->Unlock(); }
    RowexLockWord* lock_;
  };

  static unsigned ShardOf(KeyRef key) {
    // FNV-1a over the key bytes.
    uint64_t h = 1469598103934665603ULL;
    for (size_t i = 0; i < key.size(); ++i) {
      h = (h ^ key[i]) * 1099511628211ULL;
    }
    return static_cast<unsigned>(h % kShards);
  }

  std::unique_ptr<Index> shards_[kShards];
  mutable RowexLockWord locks_[kShards];
};

}  // namespace ycsb
}  // namespace hot

#endif  // HOT_YCSB_SHARDED_H_
