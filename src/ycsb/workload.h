// YCSB core workloads (Cooper et al., SoCC 2010) in the index-microbench
// style of Zhang et al. that the paper's evaluation builds on (§6.1).
//
// Each benchmark configuration = (workload in A..F, data set, request
// distribution).  A run has two phases:
//   load phase:        insert `load_n` keys in random order,
//   transaction phase: `txn_ops` operations drawn from the workload mix.
//
// Workload mixes (YCSB core):
//   A  50% read, 50% update          B  95% read, 5% update
//   C  100% read                     D  95% latest-read, 5% insert
//   E  95% scan(<=100), 5% insert    F  50% read, 50% read-modify-write

#ifndef HOT_YCSB_WORKLOAD_H_
#define HOT_YCSB_WORKLOAD_H_

#include <cassert>
#include <chrono>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.h"
#include "obs/histogram.h"
#include "obs/perf_counters.h"
#include "ycsb/datasets.h"
#include "ycsb/range_sharded.h"

namespace hot {
namespace ycsb {

enum class Distribution { kUniform, kZipfian, kLatest };

inline const char* DistributionName(Distribution d) {
  switch (d) {
    case Distribution::kUniform:
      return "uniform";
    case Distribution::kZipfian:
      return "zipf";
    case Distribution::kLatest:
      return "latest";
  }
  return "?";
}

struct WorkloadSpec {
  char name;
  double read = 0, update = 0, insert = 0, scan = 0, rmw = 0;
  Distribution dist = Distribution::kUniform;
  unsigned max_scan_len = 100;
};

// Validates a spec before a run: every mix probability in [0, 1], the mix
// summing to 1 (within 1e-6 — the op-pick chain otherwise silently folds
// the residual into the insert branch), and a usable scan length whenever
// the mix scans.  Returns an empty string when valid, else a description
// of the first problem.
inline std::string ValidateWorkloadSpec(const WorkloadSpec& spec) {
  auto bad = [](double p) { return !(p >= 0.0 && p <= 1.0); };  // NaN too
  if (bad(spec.read) || bad(spec.update) || bad(spec.insert) ||
      bad(spec.scan) || bad(spec.rmw)) {
    return std::string("workload '") + spec.name +
           "': every mix probability must be in [0, 1] (read=" +
           std::to_string(spec.read) + " update=" +
           std::to_string(spec.update) + " insert=" +
           std::to_string(spec.insert) + " scan=" + std::to_string(spec.scan) +
           " rmw=" + std::to_string(spec.rmw) + ")";
  }
  double sum = spec.read + spec.update + spec.insert + spec.scan + spec.rmw;
  if (sum < 1.0 - 1e-6 || sum > 1.0 + 1e-6) {
    return std::string("workload '") + spec.name +
           "': mix probabilities sum to " + std::to_string(sum) +
           ", expected 1.0 (read+update+insert+scan+rmw)";
  }
  if (spec.scan > 0.0 && spec.max_scan_len < 1) {
    return std::string("workload '") + spec.name +
           "': max_scan_len must be >= 1 when the mix scans";
  }
  return "";
}

// The six YCSB core workloads.  Workload D always uses the latest
// distribution for its reads (per YCSB); A/B/C/E/F take the requested one.
inline WorkloadSpec YcsbWorkload(char w, Distribution dist) {
  WorkloadSpec s;
  s.name = w;
  s.dist = dist;
  switch (w) {
    case 'A':
      s.read = 0.5;
      s.update = 0.5;
      break;
    case 'B':
      s.read = 0.95;
      s.update = 0.05;
      break;
    case 'C':
      s.read = 1.0;
      break;
    case 'D':
      s.read = 0.95;
      s.insert = 0.05;
      s.dist = Distribution::kLatest;
      break;
    case 'E':
      s.scan = 0.95;
      s.insert = 0.05;
      break;
    case 'F':
      s.read = 0.5;
      s.rmw = 0.5;
      break;
    default:
      assert(false && "unknown workload");
  }
  return s;
}

struct RunResult {
  size_t load_ops = 0;
  double load_seconds = 0;
  size_t txn_ops = 0;
  double txn_seconds = 0;
  size_t memory_bytes = 0;
  size_t failed_ops = 0;  // lookups of missing keys etc. (should be 0)

  double LoadMops() const {
    return load_seconds > 0 ? static_cast<double>(load_ops) / load_seconds /
                                  1e6
                            : 0;
  }
  double TxnMops() const {
    return txn_seconds > 0 ? static_cast<double>(txn_ops) / txn_seconds / 1e6
                           : 0;
  }
};

// Optional per-run observability (the --latency / --counters driver flags).
// When a RunObservers* is passed to RunBenchmark, every transaction-phase
// operation is timed with ReadTicks into the per-op-type histogram
// (batched-read flushes are timed once and attributed to each member via
// RecordN), and — when `counters` points at a PerfCounterGroup — the load
// and transaction phases each run inside a CounterRegion, yielding the
// Table-3 style hardware profile of the whole phase.
struct RunObservers {
  obs::LatencyHistogram read;
  obs::LatencyHistogram update;
  obs::LatencyHistogram insert;
  obs::LatencyHistogram scan;
  obs::LatencyHistogram rmw;

  obs::PerfCounterGroup* counters = nullptr;  // optional; borrowed
  obs::CounterSample load_sample;             // filled when counters != null
  obs::CounterSample txn_sample;

  // Visits the non-empty histograms with their op-type names.
  template <typename Fn>
  void ForEachHistogram(Fn&& fn) const {
    if (read.count() != 0) fn("read", read);
    if (update.count() != 0) fn("update", update);
    if (insert.count() != 0) fn("insert", insert);
    if (scan.count() != 0) fn("scan", scan);
    if (rmw.count() != 0) fn("rmw", rmw);
  }
};

// Shuffled record order for the load phase (the paper loads keys in random
// order); deterministic in `seed`.
inline std::vector<uint32_t> LoadOrder(size_t n, uint64_t seed) {
  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
  SplitMix64 rng(seed);
  for (size_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBounded(i)]);
  }
  return order;
}

// Thread-affine stream partition: splits `ids` into one stream per thread,
// sending each id to the owner (OwnerOfShard block partition) of the shard
// its key routes to, preserving input order within each stream.  Drivers
// that pre-split their load/lookup streams this way give every worker an
// exclusive, contiguous slice of the shard space: no two threads ever
// contend on one shard's lock, and each worker's upper trie levels stay in
// its own cache.  `shard_of(id)` maps a record id to its shard (typically
// index.ShardOf over the record's key bytes).
template <typename ShardOfFn>
inline std::vector<std::vector<uint32_t>> PartitionIdsByOwner(
    std::span<const uint32_t> ids, unsigned shards, unsigned threads,
    ShardOfFn&& shard_of) {
  assert(shards > 0 && threads > 0);
  std::vector<std::vector<uint32_t>> streams(threads);
  for (auto& s : streams) s.reserve(ids.size() / threads + 1);
  for (uint32_t id : ids) {
    unsigned shard = shard_of(id);
    assert(shard < shards);
    streams[OwnerOfShard(shard, shards, threads)].push_back(id);
  }
  return streams;
}

// Runs load + transaction phase.  The data set must hold at least
// load_n + (expected inserts) records; insert operations consume records
// load_n, load_n+1, ... in order.
//
// `batch` > 1 turns on batched reads: read operations accumulate into a
// group that is flushed through the adapter's MultiLookup hook when it
// reaches `batch` entries — or earlier, whenever a mutating operation (or
// a scan/rmw) arrives, so reads never reorder across writes.  Read-heavy
// workloads (B, C) thus run almost entirely in full batches and exercise
// the index's memory-level-parallel lookup path.
template <typename Adapter>
RunResult RunBenchmark(Adapter& adapter, const DataSet& ds, size_t load_n,
                       size_t txn_ops, const WorkloadSpec& spec,
                       uint64_t seed = 7, unsigned batch = 1,
                       RunObservers* obs = nullptr) {
  using Clock = std::chrono::steady_clock;
  std::string spec_error = ValidateWorkloadSpec(spec);
  if (!spec_error.empty()) {
    throw std::invalid_argument("RunBenchmark: " + spec_error);
  }
  RunResult result;
  const bool timed = obs != nullptr;
  obs::PerfCounterGroup* counters =
      obs != nullptr ? obs->counters : nullptr;

  // --- load phase -----------------------------------------------------------
  std::vector<uint32_t> order = LoadOrder(load_n, seed);
  auto t0 = Clock::now();
  {
    obs::CounterSample start;
    if (counters != nullptr) start = counters->Read();
    for (uint32_t i : order) {
      if (!adapter.InsertRecord(i)) ++result.failed_ops;
    }
    if (counters != nullptr) obs->load_sample = counters->Read() - start;
  }
  auto t1 = Clock::now();
  result.load_ops = load_n;
  result.load_seconds = std::chrono::duration<double>(t1 - t0).count();
  // Hybrid static/delta indexes drain their delta here so the transaction
  // phase (and the memory snapshot) starts merge-quiescent; the drain is
  // deliberately outside the load timing, mirroring a bulk-arrival settling.
  if constexpr (requires { adapter.Quiesce(); }) adapter.Quiesce();
  result.memory_bytes = adapter.MemoryBytes();

  // --- transaction phase ------------------------------------------------------
  SplitMix64 rng(seed ^ 0xdeadbeef);
  ZipfianGenerator zipf(load_n, 0.99, seed + 1);
  LatestGenerator latest(load_n, seed + 2);
  size_t next_insert = load_n;
  size_t inserted = load_n;
  const size_t capacity = ds.size();

  auto pick_record = [&]() -> size_t {
    switch (spec.dist) {
      case Distribution::kUniform:
        return rng.NextBounded(inserted);
      case Distribution::kZipfian: {
        size_t r = zipf.Next();
        return r < inserted ? r : rng.NextBounded(inserted);
      }
      case Distribution::kLatest:
        return latest.Next(inserted);
    }
    return 0;
  };

  std::vector<uint32_t> pending;  // batched-read group (batch > 1)
  if (batch > 1) pending.reserve(batch);
  auto flush_reads = [&] {
    if (pending.empty()) return;
    size_t n = pending.size();
    uint64_t start = timed ? obs::ReadTicks() : 0;
    size_t hits = adapter.MultiLookup(pending.data(), n);
    // One flush covers n reads: attribute an equal share to each so the
    // histogram stays per-operation regardless of the batch width.
    if (timed) obs->read.RecordN((obs::ReadTicks() - start) / n, n);
    result.failed_ops += n - hits;
    pending.clear();
  };
  // Times `body()` into `hist` only when observation is on; `timed` is
  // loop-invariant so the untimed path stays branch-predictable and free of
  // ReadTicks calls.
  auto timed_op = [&](obs::LatencyHistogram RunObservers::* hist,
                      auto&& body) {
    if (!timed) {
      body();
      return;
    }
    uint64_t start = obs::ReadTicks();
    body();
    (obs->*hist).Record(obs::ReadTicks() - start);
  };

  obs::CounterSample txn_start;
  if (counters != nullptr) txn_start = counters->Read();
  auto t2 = Clock::now();
  for (size_t op = 0; op < txn_ops; ++op) {
    double p = rng.NextDouble();
    if (p < spec.read) {
      if (batch > 1) {
        pending.push_back(static_cast<uint32_t>(pick_record()));
        if (pending.size() >= batch) flush_reads();
        continue;
      }
      timed_op(&RunObservers::read, [&] {
        if (!adapter.LookupRecord(pick_record())) ++result.failed_ops;
      });
    } else if (p < spec.read + spec.update) {
      flush_reads();
      timed_op(&RunObservers::update, [&] {
        if (!adapter.UpdateRecord(pick_record(), op)) ++result.failed_ops;
      });
    } else if (p < spec.read + spec.update + spec.rmw) {
      flush_reads();
      timed_op(&RunObservers::rmw, [&] {
        size_t r = pick_record();
        if (!adapter.LookupRecord(r)) ++result.failed_ops;
        adapter.UpdateRecord(r, op);
      });
    } else if (p < spec.read + spec.update + spec.rmw + spec.scan) {
      flush_reads();
      timed_op(&RunObservers::scan, [&] {
        size_t len = 1 + rng.NextBounded(spec.max_scan_len);
        adapter.ScanRecord(pick_record(), len);
      });
    } else {
      // insert
      flush_reads();
      if (next_insert < capacity) {
        timed_op(&RunObservers::insert, [&] {
          if (!adapter.InsertRecord(static_cast<uint32_t>(next_insert))) {
            ++result.failed_ops;
          }
        });
        ++next_insert;
        ++inserted;
      } else {
        // Ran out of pre-generated records: fall back to a read so the
        // op count stays comparable.
        timed_op(&RunObservers::read, [&] { adapter.LookupRecord(pick_record()); });
      }
    }
  }
  flush_reads();
  auto t3 = Clock::now();
  if (counters != nullptr) obs->txn_sample = counters->Read() - txn_start;
  result.txn_ops = txn_ops;
  result.txn_seconds = std::chrono::duration<double>(t3 - t2).count();
  return result;
}

}  // namespace ycsb
}  // namespace hot

#endif  // HOT_YCSB_WORKLOAD_H_
