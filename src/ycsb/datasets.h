// Data-set generators for the paper's four benchmark data sets (§6.1).
//
// The paper uses two proprietary text corpora (a URL crawl and an email
// address data set), the Yago2 triple identifiers, and uniform random
// integers.  The synthetic generators here reproduce the *structural*
// properties that determine trie behaviour (DESIGN.md "Substitutions"):
//
//   url     ~55-byte URLs: shared scheme/host prefixes (a skewed domain
//           vocabulary), multi-segment paths, sparse byte alphabet.
//   email   ~23-byte addresses: skewed local-part patterns and a heavily
//           skewed provider vocabulary; some all-digit local parts.
//   yago    8-byte compound triple keys with the exact bit layout the paper
//           states: object id in bits 0-25, predicate in bits 26-36,
//           subject in bits 37-62; non-uniform (Zipfian subjects, small
//           predicate vocabulary).
//   integer uniformly distributed 63-bit random integers.
//
// All generators are deterministic in their seed.

#ifndef HOT_YCSB_DATASETS_H_
#define HOT_YCSB_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hot {
namespace ycsb {

enum class DataSetKind { kUrl, kEmail, kYago, kInteger };

inline const char* DataSetName(DataSetKind k) {
  switch (k) {
    case DataSetKind::kUrl:
      return "url";
    case DataSetKind::kEmail:
      return "email";
    case DataSetKind::kYago:
      return "yago";
    case DataSetKind::kInteger:
      return "integer";
  }
  return "?";
}

// Generates `n` distinct keys.  String data sets fill `strings`; integer
// data sets fill `ints`.
struct DataSet {
  DataSetKind kind;
  std::vector<std::string> strings;
  std::vector<uint64_t> ints;

  bool IsString() const {
    return kind == DataSetKind::kUrl || kind == DataSetKind::kEmail;
  }
  size_t size() const { return IsString() ? strings.size() : ints.size(); }

  double AverageKeyBytes() const;
  size_t RawKeyBytes() const;
};

DataSet GenerateDataSet(DataSetKind kind, size_t n, uint64_t seed = 42);

}  // namespace ycsb
}  // namespace hot

#endif  // HOT_YCSB_DATASETS_H_
