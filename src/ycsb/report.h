// Benchmark reporting and configuration helpers shared by the bench
// binaries: fixed-width table printing (one row per index structure, as in
// the paper's figures) and scale configuration via flags / environment.
//
// Scale defaults: the paper loads 50M keys and runs 100M operations; the
// repository defaults to 1M/2M so the whole figure suite regenerates in
// well under an hour on one laptop core.  Override with --keys= / --ops= or
// HOT_BENCH_KEYS / HOT_BENCH_OPS.

#ifndef HOT_YCSB_REPORT_H_
#define HOT_YCSB_REPORT_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace hot {
namespace ycsb {

struct BenchConfig {
  size_t keys = 1'000'000;
  size_t ops = 2'000'000;
  unsigned threads = 0;  // 0 = hardware concurrency
  unsigned batch = 1;    // read-batch width (1 = scalar lookups)
  uint64_t seed = 42;
  std::string filter;  // optional: restrict workloads/datasets
  bool latency = false;   // per-op-type latency histograms (obs/histogram.h)
  bool counters = false;  // per-phase hardware counters (obs/perf_counters.h)
};

inline size_t ParseSizeWithSuffix(const char* s) {
  char* end = nullptr;
  double v = strtod(s, &end);
  if (end != nullptr) {
    if (*end == 'k' || *end == 'K') v *= 1e3;
    if (*end == 'm' || *end == 'M') v *= 1e6;
    if (*end == 'g' || *end == 'G') v *= 1e9;
  }
  return static_cast<size_t>(v);
}

inline BenchConfig ParseBenchConfig(int argc, char** argv) {
  BenchConfig cfg;
  if (const char* env = getenv("HOT_BENCH_KEYS")) {
    cfg.keys = ParseSizeWithSuffix(env);
  }
  if (const char* env = getenv("HOT_BENCH_OPS")) {
    cfg.ops = ParseSizeWithSuffix(env);
  }
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (strncmp(a, "--keys=", 7) == 0) cfg.keys = ParseSizeWithSuffix(a + 7);
    else if (strncmp(a, "--ops=", 6) == 0) cfg.ops = ParseSizeWithSuffix(a + 6);
    else if (strncmp(a, "--threads=", 10) == 0) cfg.threads = atoi(a + 10);
    else if (strncmp(a, "--batch=", 8) == 0) cfg.batch = atoi(a + 8);
    else if (strncmp(a, "--seed=", 7) == 0) cfg.seed = strtoull(a + 7, nullptr, 10);
    else if (strncmp(a, "--workload=", 11) == 0) cfg.filter = a + 11;
    else if (strcmp(a, "--latency") == 0) cfg.latency = true;
    else if (strcmp(a, "--counters") == 0) cfg.counters = true;
    else if (strcmp(a, "--help") == 0) {
      printf("flags: --keys=N --ops=N --threads=N --batch=N --seed=N "
             "--workload=F --latency --counters\n");
      exit(0);
    }
  }
  return cfg;
}

// Minimal fixed-width table: header row + data rows, printed as the bench
// runs so partial output is still useful.
class Table {
 public:
  explicit Table(std::vector<std::string> columns, unsigned width = 12)
      : columns_(std::move(columns)), width_(width) {}

  void PrintHeader() const {
    for (const auto& c : columns_) printf("%-*s", width_, c.c_str());
    printf("\n");
    for (size_t i = 0; i < columns_.size() * width_; ++i) printf("-");
    printf("\n");
    fflush(stdout);
  }

  void PrintRow(const std::vector<std::string>& cells) const {
    for (const auto& c : cells) printf("%-*s", width_, c.c_str());
    printf("\n");
    fflush(stdout);
  }

 private:
  std::vector<std::string> columns_;
  unsigned width_;
};

inline std::string Fmt(double v, int precision = 2) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string FmtBytes(size_t bytes) {
  char buf[64];
  if (bytes >= 1ULL << 30) {
    snprintf(buf, sizeof(buf), "%.2fGB", static_cast<double>(bytes) / (1ULL << 30));
  } else if (bytes >= 1ULL << 20) {
    snprintf(buf, sizeof(buf), "%.1fMB", static_cast<double>(bytes) / (1ULL << 20));
  } else {
    snprintf(buf, sizeof(buf), "%zuB", bytes);
  }
  return buf;
}

}  // namespace ycsb
}  // namespace hot

#endif  // HOT_YCSB_REPORT_H_
