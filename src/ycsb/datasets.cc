#include "ycsb/datasets.h"

#include <algorithm>
#include <unordered_set>

#include "common/rng.h"

namespace hot {
namespace ycsb {
namespace {

// Skewed vocabulary helper: picks index via Zipf over `n` ranks.
class Vocabulary {
 public:
  Vocabulary(size_t n, uint64_t seed) : zipf_(n, 0.99, seed) {}
  size_t Pick() { return zipf_.Next(); }

 private:
  ZipfianGenerator zipf_;
};

const char* const kTlds[] = {"com", "org", "net", "de", "at", "edu", "io"};
const char* const kSchemes[] = {"http://www.", "https://www.", "http://",
                                "https://"};
const char* const kPathWords[] = {
    "index",  "article", "research", "products", "people",  "wiki",
    "images", "public",  "download", "archive",  "news",    "blog",
    "papers", "media",   "category", "tags",     "search",  "static",
    "assets", "library", "docs",     "api",      "data",    "en",
    "forum",  "user",    "profile",  "item",     "project", "release"};
const char* const kFirstNames[] = {
    "anna",  "ben",    "carla", "david", "eva",   "felix", "greta", "hans",
    "ines",  "jonas",  "karin", "lukas", "maria", "nils",  "olivia",
    "paul",  "quin",   "rosa",  "simon", "tina",  "ulrich", "vera",
    "walter", "xenia", "yann",  "zoe"};
const char* const kLastNames[] = {
    "mueller", "schmidt", "binna",  "leis",   "zangerle", "pichl",
    "specht",  "wagner",  "becker", "hofer",  "bauer",    "gruber",
    "huber",   "steiner", "mayr",   "egger",  "brunner",  "moser",
    "fischer", "weber",   "koch",   "wolf",   "auer",     "lang"};
const char* const kProviders[] = {
    "gmail.com",      "yahoo.com",    "hotmail.com", "outlook.com",
    "gmx.at",         "web.de",       "aol.com",     "icloud.com",
    "uibk.ac.at",     "in.tum.de",    "acm.org",     "example.org",
    "protonmail.com", "fastmail.fm",  "live.com",    "mail.ru"};

std::string MakeDomain(SplitMix64& rng, Vocabulary& domain_vocab) {
  // Derive a stable pseudo-domain from the picked vocabulary rank so the
  // same rank always yields the same domain (shared prefixes across URLs).
  size_t rank = domain_vocab.Pick();
  SplitMix64 domain_rng(rank * 0x9e3779b97f4a7c15ULL + 1);
  std::string d;
  size_t words = 1 + domain_rng.NextBounded(2);
  for (size_t w = 0; w < words; ++w) {
    d += kPathWords[domain_rng.NextBounded(std::size(kPathWords))];
    if (w + 1 < words) d += "-";
  }
  d += std::to_string(rank % 1000);
  d += ".";
  d += kTlds[domain_rng.NextBounded(std::size(kTlds))];
  (void)rng;
  return d;
}

std::string MakeUrl(SplitMix64& rng, Vocabulary& domain_vocab) {
  std::string url = kSchemes[rng.NextBounded(std::size(kSchemes))];
  url += MakeDomain(rng, domain_vocab);
  size_t segments = 1 + rng.NextBounded(4);
  for (size_t s = 0; s < segments; ++s) {
    url += "/";
    url += kPathWords[rng.NextBounded(std::size(kPathWords))];
  }
  switch (rng.NextBounded(3)) {
    case 0:
      url += "/" + std::to_string(rng.NextBounded(10000000)) + ".html";
      break;
    case 1:
      url += "?id=" + std::to_string(rng.NextBounded(1000000));
      break;
    default:
      url += "/";
      break;
  }
  return url;
}

std::string MakeEmail(SplitMix64& rng, Vocabulary& provider_vocab) {
  std::string local;
  switch (rng.NextBounded(5)) {
    case 0:  // first.last
      local = std::string(kFirstNames[rng.NextBounded(std::size(kFirstNames))]) +
              "." + kLastNames[rng.NextBounded(std::size(kLastNames))];
      break;
    case 1:  // first.last + digits
      local = std::string(kFirstNames[rng.NextBounded(std::size(kFirstNames))]) +
              "." + kLastNames[rng.NextBounded(std::size(kLastNames))] +
              std::to_string(rng.NextBounded(1000));
      break;
    case 2:  // initials + last
      local.push_back('a' + static_cast<char>(rng.NextBounded(26)));
      local += kLastNames[rng.NextBounded(std::size(kLastNames))];
      break;
    case 3:  // word + digits
      local = kPathWords[rng.NextBounded(std::size(kPathWords))];
      local += std::to_string(rng.NextBounded(100000));
      break;
    default:  // all digits (the paper mentions numeric-only addresses)
      local = std::to_string(10000000 + rng.NextBounded(90000000));
      break;
  }
  size_t rank = provider_vocab.Pick();
  return local + "@" + kProviders[rank % std::size(kProviders)];
}

uint64_t MakeYago(SplitMix64& rng, ZipfianGenerator& subjects) {
  // Bit layout from the paper §6.1: object id bits 0-25, predicate bits
  // 26-36, subject bits 37-62.
  uint64_t subject = subjects.Next() & ((1ULL << 26) - 1);
  uint64_t predicate = rng.NextBounded(60);  // small predicate vocabulary
  uint64_t object = rng.NextBounded(1ULL << 26);
  return (subject << 37) | (predicate << 26) | object;
}

}  // namespace

double DataSet::AverageKeyBytes() const {
  if (!IsString()) return 8.0;
  size_t total = 0;
  for (const auto& s : strings) total += s.size();
  return strings.empty() ? 0.0
                         : static_cast<double>(total) /
                               static_cast<double>(strings.size());
}

size_t DataSet::RawKeyBytes() const {
  if (!IsString()) return ints.size() * 8;
  size_t total = 0;
  for (const auto& s : strings) total += s.size();
  return total;
}

DataSet GenerateDataSet(DataSetKind kind, size_t n, uint64_t seed) {
  DataSet ds;
  ds.kind = kind;
  SplitMix64 rng(seed);
  switch (kind) {
    case DataSetKind::kUrl: {
      Vocabulary domains(50000, seed + 1);
      std::unordered_set<std::string> seen;
      seen.reserve(n * 2);
      ds.strings.reserve(n);
      while (ds.strings.size() < n) {
        std::string u = MakeUrl(rng, domains);
        if (seen.insert(u).second) ds.strings.push_back(std::move(u));
      }
      break;
    }
    case DataSetKind::kEmail: {
      Vocabulary providers(std::size(kProviders) * 4, seed + 2);
      std::unordered_set<std::string> seen;
      seen.reserve(n * 2);
      ds.strings.reserve(n);
      while (ds.strings.size() < n) {
        std::string e = MakeEmail(rng, providers);
        if (seen.insert(e).second) ds.strings.push_back(std::move(e));
      }
      break;
    }
    case DataSetKind::kYago: {
      ZipfianGenerator subjects(1ULL << 20, 0.8, seed + 3);
      std::unordered_set<uint64_t> seen;
      seen.reserve(n * 2);
      ds.ints.reserve(n);
      while (ds.ints.size() < n) {
        uint64_t k = MakeYago(rng, subjects);
        if (seen.insert(k).second) ds.ints.push_back(k);
      }
      break;
    }
    case DataSetKind::kInteger: {
      std::unordered_set<uint64_t> seen;
      seen.reserve(n * 2);
      ds.ints.reserve(n);
      while (ds.ints.size() < n) {
        uint64_t k = rng.Next() >> 1;  // 63-bit
        if (seen.insert(k).second) ds.ints.push_back(k);
      }
      break;
    }
  }
  return ds;
}

}  // namespace ycsb
}  // namespace hot
