# Empty compiler generated dependencies file for hot_ycsb.
# This may be replaced when dependencies are built.
