file(REMOVE_RECURSE
  "libhot_ycsb.a"
)
