file(REMOVE_RECURSE
  "CMakeFiles/hot_ycsb.dir/datasets.cc.o"
  "CMakeFiles/hot_ycsb.dir/datasets.cc.o.d"
  "libhot_ycsb.a"
  "libhot_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
