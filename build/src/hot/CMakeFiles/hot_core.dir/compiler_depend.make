# Empty compiler generated dependencies file for hot_core.
# This may be replaced when dependencies are built.
