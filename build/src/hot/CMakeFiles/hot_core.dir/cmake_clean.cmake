file(REMOVE_RECURSE
  "CMakeFiles/hot_core.dir/node_search.cc.o"
  "CMakeFiles/hot_core.dir/node_search.cc.o.d"
  "libhot_core.a"
  "libhot_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
