file(REMOVE_RECURSE
  "libhot_core.a"
)
