file(REMOVE_RECURSE
  "CMakeFiles/url_frontier.dir/url_frontier.cpp.o"
  "CMakeFiles/url_frontier.dir/url_frontier.cpp.o.d"
  "url_frontier"
  "url_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/url_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
