# Empty compiler generated dependencies file for concurrent_kv.
# This may be replaced when dependencies are built.
