file(REMOVE_RECURSE
  "CMakeFiles/concurrent_kv.dir/concurrent_kv.cpp.o"
  "CMakeFiles/concurrent_kv.dir/concurrent_kv.cpp.o.d"
  "concurrent_kv"
  "concurrent_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
