file(REMOVE_RECURSE
  "CMakeFiles/hot_node_test.dir/hot_node_test.cc.o"
  "CMakeFiles/hot_node_test.dir/hot_node_test.cc.o.d"
  "hot_node_test"
  "hot_node_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
