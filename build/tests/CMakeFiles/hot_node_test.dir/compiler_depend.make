# Empty compiler generated dependencies file for hot_node_test.
# This may be replaced when dependencies are built.
