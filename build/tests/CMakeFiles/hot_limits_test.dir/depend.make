# Empty dependencies file for hot_limits_test.
# This may be replaced when dependencies are built.
