file(REMOVE_RECURSE
  "CMakeFiles/hot_limits_test.dir/hot_limits_test.cc.o"
  "CMakeFiles/hot_limits_test.dir/hot_limits_test.cc.o.d"
  "hot_limits_test"
  "hot_limits_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_limits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
