# Empty compiler generated dependencies file for hot_bulk_load_test.
# This may be replaced when dependencies are built.
