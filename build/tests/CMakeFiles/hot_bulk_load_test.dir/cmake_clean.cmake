file(REMOVE_RECURSE
  "CMakeFiles/hot_bulk_load_test.dir/hot_bulk_load_test.cc.o"
  "CMakeFiles/hot_bulk_load_test.dir/hot_bulk_load_test.cc.o.d"
  "hot_bulk_load_test"
  "hot_bulk_load_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_bulk_load_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
