file(REMOVE_RECURSE
  "CMakeFiles/hot_logical_test.dir/hot_logical_test.cc.o"
  "CMakeFiles/hot_logical_test.dir/hot_logical_test.cc.o.d"
  "hot_logical_test"
  "hot_logical_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_logical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
