# Empty compiler generated dependencies file for hot_logical_test.
# This may be replaced when dependencies are built.
