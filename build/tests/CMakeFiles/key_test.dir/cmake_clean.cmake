file(REMOVE_RECURSE
  "CMakeFiles/key_test.dir/key_test.cc.o"
  "CMakeFiles/key_test.dir/key_test.cc.o.d"
  "key_test"
  "key_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
