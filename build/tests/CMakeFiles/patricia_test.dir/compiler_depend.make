# Empty compiler generated dependencies file for patricia_test.
# This may be replaced when dependencies are built.
