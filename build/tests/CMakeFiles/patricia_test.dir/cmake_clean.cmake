file(REMOVE_RECURSE
  "CMakeFiles/patricia_test.dir/patricia_test.cc.o"
  "CMakeFiles/patricia_test.dir/patricia_test.cc.o.d"
  "patricia_test"
  "patricia_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patricia_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
