file(REMOVE_RECURSE
  "CMakeFiles/typed_index_test.dir/typed_index_test.cc.o"
  "CMakeFiles/typed_index_test.dir/typed_index_test.cc.o.d"
  "typed_index_test"
  "typed_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/typed_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
