file(REMOVE_RECURSE
  "CMakeFiles/hot_rowex_test.dir/hot_rowex_test.cc.o"
  "CMakeFiles/hot_rowex_test.dir/hot_rowex_test.cc.o.d"
  "hot_rowex_test"
  "hot_rowex_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_rowex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
