# Empty compiler generated dependencies file for hot_rowex_test.
# This may be replaced when dependencies are built.
