file(REMOVE_RECURSE
  "CMakeFiles/stats_report_test.dir/stats_report_test.cc.o"
  "CMakeFiles/stats_report_test.dir/stats_report_test.cc.o.d"
  "stats_report_test"
  "stats_report_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
