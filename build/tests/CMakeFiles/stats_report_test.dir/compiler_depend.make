# Empty compiler generated dependencies file for stats_report_test.
# This may be replaced when dependencies are built.
