file(REMOVE_RECURSE
  "CMakeFiles/hot_trie_test.dir/hot_trie_test.cc.o"
  "CMakeFiles/hot_trie_test.dir/hot_trie_test.cc.o.d"
  "hot_trie_test"
  "hot_trie_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_trie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
