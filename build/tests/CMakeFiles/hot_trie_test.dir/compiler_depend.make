# Empty compiler generated dependencies file for hot_trie_test.
# This may be replaced when dependencies are built.
