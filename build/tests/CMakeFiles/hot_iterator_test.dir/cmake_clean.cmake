file(REMOVE_RECURSE
  "CMakeFiles/hot_iterator_test.dir/hot_iterator_test.cc.o"
  "CMakeFiles/hot_iterator_test.dir/hot_iterator_test.cc.o.d"
  "hot_iterator_test"
  "hot_iterator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_iterator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
