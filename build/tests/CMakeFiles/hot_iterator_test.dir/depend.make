# Empty dependencies file for hot_iterator_test.
# This may be replaced when dependencies are built.
