file(REMOVE_RECURSE
  "CMakeFiles/node_pool_test.dir/node_pool_test.cc.o"
  "CMakeFiles/node_pool_test.dir/node_pool_test.cc.o.d"
  "node_pool_test"
  "node_pool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
