# Empty compiler generated dependencies file for node_pool_test.
# This may be replaced when dependencies are built.
