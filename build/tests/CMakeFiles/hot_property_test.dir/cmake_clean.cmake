file(REMOVE_RECURSE
  "CMakeFiles/hot_property_test.dir/hot_property_test.cc.o"
  "CMakeFiles/hot_property_test.dir/hot_property_test.cc.o.d"
  "hot_property_test"
  "hot_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
