# Empty compiler generated dependencies file for hot_property_test.
# This may be replaced when dependencies are built.
