file(REMOVE_RECURSE
  "CMakeFiles/hot_simd_test.dir/hot_simd_test.cc.o"
  "CMakeFiles/hot_simd_test.dir/hot_simd_test.cc.o.d"
  "hot_simd_test"
  "hot_simd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_simd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
