# Empty compiler generated dependencies file for hot_simd_test.
# This may be replaced when dependencies are built.
