# Empty compiler generated dependencies file for fig11_height.
# This may be replaced when dependencies are built.
