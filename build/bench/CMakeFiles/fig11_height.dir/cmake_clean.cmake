file(REMOVE_RECURSE
  "CMakeFiles/fig11_height.dir/fig11_height.cc.o"
  "CMakeFiles/fig11_height.dir/fig11_height.cc.o.d"
  "fig11_height"
  "fig11_height.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_height.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
