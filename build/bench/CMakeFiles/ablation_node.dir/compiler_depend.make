# Empty compiler generated dependencies file for ablation_node.
# This may be replaced when dependencies are built.
