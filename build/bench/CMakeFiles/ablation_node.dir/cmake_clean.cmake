file(REMOVE_RECURSE
  "CMakeFiles/ablation_node.dir/ablation_node.cc.o"
  "CMakeFiles/ablation_node.dir/ablation_node.cc.o.d"
  "ablation_node"
  "ablation_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
