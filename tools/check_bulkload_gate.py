#!/usr/bin/env python3
"""CI gate for the parallel bulk-build sweep (bench/ablation_bulkload).

Reads a BENCH_ablation_bulkload.json and fails (exit 1) when the parallel
bulk build does not actually pay for its partition/graft machinery:

  1. Speedup: on a recording box with >= 4 hardware threads, the best
     bulk(parallel,t>=4) arm must reach at least --speedup-factor (default
     1.5) times the t=1 arm.  Single-core recorders physically cannot show
     parallel speedup — the meta block's `hardware_threads` marks those
     runs and the speedup check is skipped with a notice (same convention
     as fig10's single-core caveat).

  2. Overhead: bulk(parallel,t=1) routes through the parallel entry point
     but takes the serial path, so it must stay within --overhead-factor
     (default 0.90) of the plain bulk(sorted) arm on every box.  This
     check always runs; it needs no parallelism.

  3. Quality: every parallel arm must build the identical height profile —
     same max_depth as bulk(sorted) and bytes/key within 1% — because the
     BiNode-consistent partitioning is supposed to reproduce the serial
     tree exactly, not approximate it.

Usage: check_bulkload_gate.py BENCH_ablation_bulkload.json \
           [--speedup-factor 1.5] [--overhead-factor 0.90] \
           [--min-hw-threads 4]
"""

import argparse
import json
import sys


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("json_path")
    ap.add_argument("--speedup-factor", type=float, default=1.5)
    ap.add_argument("--overhead-factor", type=float, default=0.90)
    ap.add_argument("--min-hw-threads", type=int, default=4,
                    help="skip the speedup check below this recorded "
                         "hardware_threads")
    args = ap.parse_args()

    with open(args.json_path) as f:
        data = json.load(f)
    results = data.get("results", [])
    if not results:
        print(f"error: no results in {args.json_path}", file=sys.stderr)
        return 1
    hw = int(data.get("meta", {}).get("hardware_threads", 0))

    serial = [r for r in results if r["build"] == "bulk(sorted)"]
    par = [r for r in results if r["build"].startswith("bulk(parallel")]
    t1 = [r for r in par if r["threads"] == 1]
    wide = [r for r in par if r["threads"] >= 4]
    if not serial or not t1 or not wide:
        print("error: sweep arms missing (need bulk(sorted), t=1 and t>=4 "
              "parallel rows)", file=sys.stderr)
        return 1
    serial, t1 = serial[0], t1[0]

    failures = []

    # 1. Speedup (only meaningful when the recorder had cores to use).
    best = max(wide, key=lambda r: r["build_mops"])
    if hw >= args.min_hw_threads:
        need = args.speedup_factor * t1["build_mops"]
        verdict = "ok" if best["build_mops"] >= need else "FAIL"
        print(f"speedup: t=1 {t1['build_mops']:.3f} Mops, best t>=4 "
              f"{best['build_mops']:.3f} Mops ({best['build']}) "
              f"need >= {args.speedup_factor:.2f}x -> {verdict}")
        if verdict == "FAIL":
            failures.append(
                f"best parallel build {best['build_mops']:.3f} Mops < "
                f"{args.speedup_factor:.2f} x t=1 {t1['build_mops']:.3f} "
                f"Mops on a {hw}-thread box — parallel build is not paying "
                f"for itself")
    else:
        print(f"speedup: recorded on a {hw}-thread box (< "
              f"{args.min_hw_threads}) — parallel speedup is not "
              f"physically measurable, check skipped")

    # 2. Single-thread overhead of the parallel entry point.
    need = args.overhead_factor * serial["build_mops"]
    verdict = "ok" if t1["build_mops"] >= need else "FAIL"
    print(f"overhead: bulk(sorted) {serial['build_mops']:.3f} Mops, "
          f"parallel t=1 {t1['build_mops']:.3f} Mops "
          f"need >= {args.overhead_factor:.2f}x -> {verdict}")
    if verdict == "FAIL":
        failures.append(
            f"parallel t=1 {t1['build_mops']:.3f} Mops < "
            f"{args.overhead_factor:.2f} x serial {serial['build_mops']:.3f} "
            f"Mops — the parallel entry point taxes the serial path")

    # 3. Structural parity: identical height profile, same memory.
    parity_failures_before = len(failures)
    for r in par:
        if r["max_depth"] != serial["max_depth"]:
            failures.append(
                f"{r['build']}: max_depth {r['max_depth']} != serial "
                f"{serial['max_depth']} — partitioned build changed the "
                f"tree shape")
        if abs(r["bytes_per_key"] - serial["bytes_per_key"]) > \
                0.01 * serial["bytes_per_key"]:
            failures.append(
                f"{r['build']}: bytes/key {r['bytes_per_key']:.1f} vs "
                f"serial {serial['bytes_per_key']:.1f} — memory profile "
                f"diverged")
    parity_ok = len(failures) == parity_failures_before
    print(f"parity: {len(par)} parallel arms vs serial "
          f"max_depth={serial['max_depth']} "
          f"bytes/key={serial['bytes_per_key']:.1f} -> "
          f"{'ok' if parity_ok else 'FAIL'}")

    if failures:
        print("\nbulkload gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nbulkload gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
