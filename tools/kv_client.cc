// Load generator for the network KV front-end (src/net).
//
//   kv_client --port P [--host 127.0.0.1]
//             [--connections N]   one thread per connection      (default 4)
//             [--workload A..F]   YCSB core mix                  (default C)
//             [--dist uniform|zipf]                              (default uniform)
//             [--keys K]          key universe size              (default 100000)
//             [--load]            run the load phase (PUT all K keys) first
//             [--ops M]           transaction ops total          (default 200000)
//             [--pipeline D]      closed-loop depth/connection   (default 32)
//             [--rate R]          OPEN loop: aggregate target ops/s
//                                 (0 = closed loop)              (default 0)
//             [--scan-len L]      max scan length for E          (default 100)
//             [--seed S]                                         (default 1)
//             [--json NAME]       also write BENCH_<NAME>.json
//
// Closed loop: every connection keeps `pipeline` requests outstanding —
// deep pipelines are what lets the server's end-of-iteration batch drain
// gather wide LookupBatch calls from few connections.  Latency is measured
// from the flush that put a request on the wire to its reply.
//
// Open loop (--rate): sends are scheduled at a fixed aggregate rate
// regardless of outstanding replies, and latency is measured from the
// SCHEDULED send time — queueing delay under overload is part of the
// number, as it should be for an open system.
//
// Workload F (read-modify-write) issues the PUT when the GET's reply
// arrives; its latency spans GET-send to PUT-reply.

#include <poll.h>

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/json_out.h"
#include "common/rng.h"
#include "net/client.h"
#include "net/protocol.h"
#include "obs/histogram.h"
#include "ycsb/workload.h"

namespace {

using hot::KeyRef;
using hot::SplitMix64;
using hot::obs::LatencyHistogram;
using hot::ZipfianGenerator;
using hot::net::KvClient;
using hot::net::Reply;
using hot::ycsb::Distribution;
using hot::ycsb::DistributionName;
using hot::ycsb::WorkloadSpec;
using hot::ycsb::YcsbWorkload;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Args {
  std::string host = "127.0.0.1";
  int port = -1;
  unsigned connections = 4;
  char workload = 'C';
  Distribution dist = Distribution::kUniform;
  uint64_t keys = 100000;
  bool load = false;
  uint64_t ops = 200000;
  unsigned pipeline = 32;
  double rate = 0;  // > 0: open loop, aggregate ops/s
  unsigned scan_len = 100;
  uint64_t seed = 1;
  std::string json;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port P [--host H] [--connections N] "
               "[--workload A-F] [--dist uniform|zipf] [--keys K] [--load] "
               "[--ops M] [--pipeline D] [--rate R] [--scan-len L] "
               "[--seed S] [--json NAME]\n",
               argv0);
  return 2;
}

bool ParseArgs(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--load") {
      a->load = true;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", arg.c_str());
      return false;
    }
    std::string v = argv[++i];
    if (arg == "--host") a->host = v;
    else if (arg == "--port") a->port = std::atoi(v.c_str());
    else if (arg == "--connections")
      a->connections = static_cast<unsigned>(std::strtoul(v.c_str(), nullptr, 10));
    else if (arg == "--workload") a->workload = v.empty() ? 'C' : v[0];
    else if (arg == "--dist") {
      if (v == "uniform") a->dist = Distribution::kUniform;
      else if (v == "zipf") a->dist = Distribution::kZipfian;
      else {
        std::fprintf(stderr, "unknown distribution %s\n", v.c_str());
        return false;
      }
    } else if (arg == "--keys") a->keys = std::strtoull(v.c_str(), nullptr, 10);
    else if (arg == "--ops") a->ops = std::strtoull(v.c_str(), nullptr, 10);
    else if (arg == "--pipeline")
      a->pipeline = static_cast<unsigned>(std::strtoul(v.c_str(), nullptr, 10));
    else if (arg == "--rate") a->rate = std::atof(v.c_str());
    else if (arg == "--scan-len")
      a->scan_len = static_cast<unsigned>(std::strtoul(v.c_str(), nullptr, 10));
    else if (arg == "--seed") a->seed = std::strtoull(v.c_str(), nullptr, 10);
    else if (arg == "--json") a->json = v;
    else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return false;
    }
  }
  if (a->port <= 0 || a->port > 65535) {
    std::fprintf(stderr, "--port is required\n");
    return false;
  }
  if (a->connections == 0) a->connections = 1;
  if (a->pipeline == 0) a->pipeline = 1;
  if (a->workload < 'A' || a->workload > 'F') {
    std::fprintf(stderr, "--workload must be A..F\n");
    return false;
  }
  return true;
}

// YCSB-style key bytes: fixed width keeps the wire framing uniform.
void MakeKey(uint64_t idx, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%012" PRIu64, idx);
  out->assign(buf);
}

enum OpType : uint8_t { kGet = 0, kPut = 1, kScan = 2, kRmw = 3, kNumOpTypes = 4 };
const char* kOpNames[kNumOpTypes] = {"get", "put", "scan", "rmw"};

struct PendingReq {
  OpType type;
  uint64_t send_ns;
  uint64_t key_idx;    // rmw: which key to write back
  bool rmw_get_phase;  // true while the GET half is in flight
};

// Per-thread slice of the run, merged after join.
struct ThreadState {
  std::unique_ptr<LatencyHistogram> hist[kNumOpTypes];
  uint64_t ops_done = 0;
  uint64_t misses = 0;  // GET kNotFound
  uint64_t scan_items = 0;
  std::string error;

  ThreadState() {
    for (auto& h : hist) h = std::make_unique<LatencyHistogram>();
  }
};

struct Shared {
  Args args;
  WorkloadSpec spec;
  std::atomic<uint64_t> next_insert_key;  // workloads D/E grow the keyspace
};

// One closed- or open-loop connection.
void RunConnection(Shared* shared, unsigned tid, uint64_t my_ops,
                   ThreadState* st) {
  const Args& a = shared->args;
  KvClient client;
  std::string err;
  if (!client.Connect(a.host, static_cast<uint16_t>(a.port), &err)) {
    st->error = "connect: " + err;
    return;
  }
  SplitMix64 rng(a.seed * 7919 + tid);
  ZipfianGenerator zipf(a.keys ? a.keys : 1, 0.99, a.seed + tid);
  std::map<uint64_t, PendingReq> pending;
  std::string key;
  uint64_t issued = 0;

  auto pick_idx = [&]() -> uint64_t {
    uint64_t n = shared->next_insert_key.load(std::memory_order_relaxed);
    if (n == 0) return 0;
    if (shared->spec.dist == Distribution::kZipfian) {
      return zipf.Next() % n;
    }
    if (shared->spec.dist == Distribution::kLatest) {
      uint64_t r = zipf.Next() % n;
      return n - 1 - r;
    }
    return rng.Next() % n;
  };

  // Issues one operation; returns false on transport failure.
  auto issue = [&](uint64_t sched_ns) -> bool {
    double p = static_cast<double>(rng.Next() >> 11) * 0x1.0p-53;
    const WorkloadSpec& w = shared->spec;
    PendingReq req;
    req.send_ns = sched_ns;
    req.rmw_get_phase = false;
    uint64_t id;
    if (p < w.read) {
      req.type = kGet;
      req.key_idx = pick_idx();
      MakeKey(req.key_idx, &key);
      id = client.SendGet(KeyRef(key));
    } else if (p < w.read + w.update) {
      req.type = kPut;
      req.key_idx = pick_idx();
      MakeKey(req.key_idx, &key);
      id = client.SendPut(KeyRef(key), rng.Next() >> 1);
    } else if (p < w.read + w.update + w.insert) {
      req.type = kPut;
      req.key_idx =
          shared->next_insert_key.fetch_add(1, std::memory_order_relaxed);
      MakeKey(req.key_idx, &key);
      id = client.SendPut(KeyRef(key), rng.Next() >> 1);
    } else if (p < w.read + w.update + w.insert + w.scan) {
      req.type = kScan;
      req.key_idx = pick_idx();
      MakeKey(req.key_idx, &key);
      uint32_t limit = 1 + static_cast<uint32_t>(
                               rng.Next() % std::max(1u, a.scan_len));
      id = client.SendScan(KeyRef(key), limit);
    } else {
      req.type = kRmw;
      req.rmw_get_phase = true;
      req.key_idx = pick_idx();
      MakeKey(req.key_idx, &key);
      id = client.SendGet(KeyRef(key));
    }
    pending[id] = req;
    ++issued;
    return true;
  };

  // Consumes one reply; false on transport failure.
  auto consume = [&]() -> bool {
    Reply r;
    if (!client.ReadReply(&r, &err)) {
      st->error = "read: " + err;
      return false;
    }
    auto it = pending.find(r.id);
    if (it == pending.end()) {
      st->error = "reply for unknown id";
      return false;
    }
    PendingReq req = it->second;
    pending.erase(it);
    if (r.status != hot::net::kOk && r.status != hot::net::kNotFound) {
      st->error = std::string("server error: ") + r.error;
      return false;
    }
    if (req.type == kRmw && req.rmw_get_phase) {
      // Write-back half: same key, same pending entry, latency keeps the
      // original send time.  Flushed immediately — the caller may be in a
      // blocking drain loop that would otherwise never put it on the wire.
      MakeKey(req.key_idx, &key);
      uint64_t id = client.SendPut(KeyRef(key), rng.Next() >> 1);
      req.rmw_get_phase = false;
      pending[id] = req;
      if (!client.Flush(&err)) {
        st->error = "flush: " + err;
        return false;
      }
      return true;
    }
    if (req.type == kGet && r.status == hot::net::kNotFound) ++st->misses;
    if (req.type == kScan) st->scan_items += r.scan.size();
    st->hist[req.type]->Record(NowNs() - req.send_ns);
    ++st->ops_done;
    return true;
  };

  if (a.rate > 0) {
    // Open loop: fixed schedule, drain replies while waiting.
    double thread_rate = a.rate / a.connections;
    uint64_t interval_ns =
        thread_rate > 0 ? static_cast<uint64_t>(1e9 / thread_rate) : 1;
    uint64_t next_ns = NowNs();
    while (issued < my_ops) {
      uint64_t now = NowNs();
      if (now >= next_ns) {
        if (!issue(next_ns)) return;  // latency from the SCHEDULED time
        if (!client.Flush(&err)) {
          st->error = "flush: " + err;
          return;
        }
        next_ns += interval_ns;
        continue;
      }
      pollfd pfd{client.fd(), POLLIN, 0};
      int timeout_ms = static_cast<int>((next_ns - now) / 1000000);
      if (poll(&pfd, 1, timeout_ms) > 0 && (pfd.revents & POLLIN)) {
        if (!consume()) return;
      }
    }
  } else {
    // Closed loop: keep `pipeline` requests outstanding.
    while (issued < my_ops || !pending.empty()) {
      uint64_t before = issued;
      while (pending.size() < a.pipeline && issued < my_ops) {
        if (!issue(0)) return;
      }
      if (issued != before) {
        uint64_t flushed_at = NowNs();
        // Stamp this burst's requests with their actual wire time.
        for (auto& [id, req] : pending) {
          if (req.send_ns == 0) req.send_ns = flushed_at;
        }
        if (!client.Flush(&err)) {
          st->error = "flush: " + err;
          return;
        }
      }
      // Drain half the window so refills stay wide (wide refills = wide
      // server-side batches).
      size_t target = pending.size() > a.pipeline / 2 && issued < my_ops
                          ? a.pipeline / 2
                          : 0;
      while (pending.size() > target) {
        if (!consume()) return;
      }
    }
  }
  // Drain whatever the open loop still has in flight.
  while (!pending.empty()) {
    if (!consume()) return;
  }
}

// Load phase: all K keys PUT through every connection in parallel, deep
// pipeline, round-robin key ownership.
void RunLoad(Shared* shared, unsigned tid, ThreadState* st) {
  const Args& a = shared->args;
  KvClient client;
  std::string err;
  if (!client.Connect(a.host, static_cast<uint16_t>(a.port), &err)) {
    st->error = "connect: " + err;
    return;
  }
  SplitMix64 rng(a.seed * 31337 + tid);
  std::string key;
  std::map<uint64_t, uint64_t> pending;  // id -> send ns
  for (uint64_t k = tid; k < a.keys; k += a.connections) {
    MakeKey(k, &key);
    pending[client.SendPut(KeyRef(key), rng.Next() >> 1)] = 0;
    if (pending.size() >= a.pipeline) {
      uint64_t now = NowNs();
      for (auto& [id, t] : pending) {
        if (t == 0) t = now;
      }
      if (!client.Flush(&err)) {
        st->error = "flush: " + err;
        return;
      }
      while (pending.size() > a.pipeline / 2) {
        Reply r;
        if (!client.ReadReply(&r, &err)) {
          st->error = "read: " + err;
          return;
        }
        auto it = pending.find(r.id);
        if (it != pending.end()) {
          st->hist[kPut]->Record(NowNs() - it->second);
          pending.erase(it);
          ++st->ops_done;
        }
      }
    }
  }
  uint64_t now = NowNs();
  for (auto& [id, t] : pending) {
    if (t == 0) t = now;
  }
  if (!client.Flush(&err)) {
    st->error = "flush: " + err;
    return;
  }
  while (!pending.empty()) {
    Reply r;
    if (!client.ReadReply(&r, &err)) {
      st->error = "read: " + err;
      return;
    }
    auto it = pending.find(r.id);
    if (it != pending.end()) {
      st->hist[kPut]->Record(NowNs() - it->second);
      pending.erase(it);
      ++st->ops_done;
    }
  }
}

// Runs one phase across all connections; returns total ops and wall time.
template <typename Fn>
bool RunPhase(const char* phase, unsigned connections,
              std::vector<ThreadState>* states, Fn&& body, uint64_t* total,
              double* seconds) {
  std::vector<std::thread> threads;
  uint64_t t0 = NowNs();
  for (unsigned t = 0; t < connections; ++t) {
    threads.emplace_back([&, t]() { body(t, &(*states)[t]); });
  }
  for (auto& th : threads) th.join();
  *seconds = static_cast<double>(NowNs() - t0) / 1e9;
  *total = 0;
  for (auto& st : *states) {
    *total += st.ops_done;
    if (!st.error.empty()) {
      std::fprintf(stderr, "%s: %s\n", phase, st.error.c_str());
      return false;
    }
  }
  return true;
}

void PrintOpLine(const char* name, const LatencyHistogram& h) {
  if (h.count() == 0) return;
  std::printf("  %-5s count=%-9" PRIu64 " mean=%8.1fus p50=%8.1fus "
              "p99=%8.1fus p99.9=%8.1fus max=%8.1fus\n",
              name, h.count(), h.Mean() / 1e3,
              static_cast<double>(h.ValueAtPercentile(50)) / 1e3,
              static_cast<double>(h.ValueAtPercentile(99)) / 1e3,
              static_cast<double>(h.ValueAtPercentile(99.9)) / 1e3,
              static_cast<double>(h.max()) / 1e3);
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!ParseArgs(argc, argv, &a)) return Usage(argv[0]);
  Shared shared{a, YcsbWorkload(a.workload, a.dist), {}};
  shared.next_insert_key.store(a.keys, std::memory_order_relaxed);

  std::printf("kv_client: %s:%d workload %c dist %s, %u connections, "
              "%s, pipeline %u\n",
              a.host.c_str(), a.port, a.workload,
              DistributionName(shared.spec.dist), a.connections,
              a.rate > 0 ? "open loop" : "closed loop", a.pipeline);

  double load_seconds = 0;
  uint64_t load_ops = 0;
  std::vector<ThreadState> load_states(a.connections);
  if (a.load) {
    if (!RunPhase("load", a.connections, &load_states,
                  [&](unsigned t, ThreadState* st) { RunLoad(&shared, t, st); },
                  &load_ops, &load_seconds)) {
      return 1;
    }
    std::printf("load: %" PRIu64 " keys in %.2fs (%.3f Mops)\n", load_ops,
                load_seconds, load_ops / load_seconds / 1e6);
  }

  std::vector<ThreadState> txn_states(a.connections);
  uint64_t txn_ops = 0;
  double txn_seconds = 0;
  uint64_t per_thread = a.ops / a.connections;
  if (!RunPhase("txn", a.connections, &txn_states,
                [&](unsigned t, ThreadState* st) {
                  RunConnection(&shared, t, per_thread, st);
                },
                &txn_ops, &txn_seconds)) {
    return 1;
  }

  LatencyHistogram merged[kNumOpTypes];
  uint64_t misses = 0, scan_items = 0;
  for (auto& st : txn_states) {
    for (unsigned i = 0; i < kNumOpTypes; ++i) merged[i].Merge(*st.hist[i]);
    misses += st.misses;
    scan_items += st.scan_items;
  }
  double mops = txn_seconds > 0 ? txn_ops / txn_seconds / 1e6 : 0;
  std::printf("txn: %" PRIu64 " ops in %.2fs (%.3f Mops), %" PRIu64
              " misses, %" PRIu64 " scan items\n",
              txn_ops, txn_seconds, mops, misses, scan_items);
  for (unsigned i = 0; i < kNumOpTypes; ++i) {
    PrintOpLine(kOpNames[i], merged[i]);
  }

  if (!a.json.empty()) {
    hot::bench::BenchJson json(a.json);
    json.meta()
        .Add("workload", std::string(1, a.workload))
        .Add("dist", DistributionName(shared.spec.dist))
        .Add("connections", a.connections)
        .Add("keys", a.keys)
        .Add("pipeline", a.pipeline)
        .Add("open_loop_rate", a.rate)
        .Add("seed", a.seed);
    for (unsigned i = 0; i < kNumOpTypes; ++i) {
      if (merged[i].count() == 0) continue;
      hot::bench::JsonObject row;
      row.Add("op", kOpNames[i])
          .Add("count", merged[i].count())
          .Add("mean_us", merged[i].Mean() / 1e3)
          .Add("p50_us",
               static_cast<double>(merged[i].ValueAtPercentile(50)) / 1e3)
          .Add("p99_us",
               static_cast<double>(merged[i].ValueAtPercentile(99)) / 1e3)
          .Add("p999_us",
               static_cast<double>(merged[i].ValueAtPercentile(99.9)) / 1e3)
          .Add("mops_total", mops);
      json.AddResult(row);
    }
    json.WriteFile();
  }
  return 0;
}
