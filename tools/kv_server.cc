// Standalone KV server binary over src/net (DESIGN.md §12).
//
//   kv_server [--host 127.0.0.1] [--port 7000] [--workers W] [--shards S]
//             [--batch-low-watermark N] [--scalar]
//             [--stats-every SECONDS]
//
// Serves until SIGINT/SIGTERM, then prints a final stats snapshot.  The
// scheduling flags mirror ServerOptions: --scalar forces the scalar GET
// drain (the baseline bench/net_throughput compares against), and the
// low-watermark decides how many same-iteration GETs it takes before the
// batched AMAC path engages.

#include <signal.h>

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "net/server.h"

namespace {

std::atomic<bool> g_stop{false};

void OnSignal(int) { g_stop.store(true); }

void PrintStats(const hot::net::ServerStats& s) {
  std::printf(
      "conns %" PRIu64 "/%" PRIu64 " open=%" PRIu64 " | frames %" PRIu64
      " replies %" PRIu64 " | get %" PRIu64 " put %" PRIu64 " del %" PRIu64
      " scan %" PRIu64 " | batched %" PRIu64 " in %" PRIu64
      " drains (max %" PRIu64 ") scalar %" PRIu64 " | proto-err %" PRIu64
      " bad-req %" PRIu64 "\n",
      s.connections_accepted, s.connections_closed, s.connections_open(),
      s.frames_in, s.replies_out, s.gets, s.puts, s.deletes, s.scans,
      s.batched_gets, s.batch_drains, s.max_batch, s.scalar_gets,
      s.protocol_errors, s.bad_requests);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  hot::net::ServerOptions opt;
  opt.port = 7000;
  opt.workers = 1;
  unsigned stats_every = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--scalar") {
      opt.force_scalar = true;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", arg.c_str());
      return 2;
    }
    std::string v = argv[++i];
    if (arg == "--host") opt.host = v;
    else if (arg == "--port")
      opt.port = static_cast<uint16_t>(std::atoi(v.c_str()));
    else if (arg == "--workers")
      opt.workers = static_cast<unsigned>(std::strtoul(v.c_str(), nullptr, 10));
    else if (arg == "--shards")
      opt.shards = static_cast<unsigned>(std::strtoul(v.c_str(), nullptr, 10));
    else if (arg == "--batch-low-watermark")
      opt.batch_low_watermark =
          static_cast<unsigned>(std::strtoul(v.c_str(), nullptr, 10));
    else if (arg == "--stats-every")
      stats_every = static_cast<unsigned>(std::strtoul(v.c_str(), nullptr, 10));
    else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  hot::net::KvServer server(opt);
  std::string err;
  if (!server.Start(&err)) {
    std::fprintf(stderr, "start: %s\n", err.c_str());
    return 1;
  }
  signal(SIGINT, OnSignal);
  signal(SIGTERM, OnSignal);
  std::printf("kv_server listening on %s:%u (%u workers, %u shards, %s)\n",
              opt.host.c_str(), server.port(), opt.workers, opt.shards,
              opt.force_scalar ? "scalar drain" : "batched drain");
  std::fflush(stdout);

  unsigned elapsed = 0;
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
    if (stats_every != 0 && ++elapsed >= stats_every) {
      elapsed = 0;
      PrintStats(server.StatsSnapshot());
    }
  }
  server.Stop();
  PrintStats(server.StatsSnapshot());
  return 0;
}
