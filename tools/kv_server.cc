// Standalone KV server binary over src/net (DESIGN.md §12, §13).
//
//   kv_server [--host 127.0.0.1] [--port 7000] [--workers W] [--shards S]
//             [--batch-low-watermark N] [--scalar]
//             [--data-dir DIR] [--durability none|async|sync]
//             [--snapshot-trigger-mb MB] [--wal-flush-ms MS]
//             [--stats-every SECONDS]
//
// Serves until SIGINT/SIGTERM, then prints a final stats snapshot.  The
// scheduling flags mirror ServerOptions: --scalar forces the scalar GET
// drain (the baseline bench/net_throughput compares against), and the
// low-watermark decides how many same-iteration GETs it takes before the
// batched AMAC path engages.
//
// With --data-dir the server is durable: it recovers whatever snapshot +
// WAL it finds there on startup, write-ahead-logs every PUT/DELETE, and
// re-snapshots whenever the WAL segment passes --snapshot-trigger-mb.
// --durability picks the ack contract (persist/wal.h): sync = fsync
// before every ack (group-committed), async = background fsync every
// --wal-flush-ms, none = page-cache only.
//
// Every flag value is validated up front; a bad value prints what was
// wrong AND the usage block, and exits 2 — never starts half-configured.

#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "net/server.h"

namespace {

std::atomic<bool> g_stop{false};

void OnSignal(int) { g_stop.store(true); }

void Usage(FILE* to) {
  std::fprintf(
      to,
      "usage: kv_server [options]\n"
      "  --host ADDR               bind address (default 127.0.0.1)\n"
      "  --port N                  TCP port, 0 = ephemeral (default 7000)\n"
      "  --workers N               event-loop threads, >= 1 (default 1)\n"
      "  --shards N                range shards, >= 1 (default 16)\n"
      "  --batch-low-watermark N   GETs needed to engage the batched drain\n"
      "  --scalar                  force the scalar GET drain\n"
      "  --data-dir DIR            durable mode: recover from / persist to\n"
      "                            DIR (must exist and be writable)\n"
      "  --durability MODE         none | async | sync (default sync)\n"
      "  --snapshot-trigger-mb MB  auto-snapshot once the WAL segment\n"
      "                            exceeds MB MiB; 0 = never (default 64)\n"
      "  --wal-flush-ms MS         async fsync cadence (default 50)\n"
      "  --stats-every SECONDS     periodic stats line; 0 = off\n"
      "  --help                    this text\n");
}

[[noreturn]] void Die(const std::string& why) {
  std::fprintf(stderr, "kv_server: %s\n\n", why.c_str());
  Usage(stderr);
  std::exit(2);
}

// Whole-string unsigned parse: "12x", "", "-3", and overflow all fail —
// the old atoi path turned any of them into a silently wrong config
// (e.g. a mistyped --port served on a random ephemeral port).
uint64_t ParseU64(const std::string& flag, const std::string& v,
                  uint64_t max) {
  if (v.empty()) Die(flag + ": empty value");
  errno = 0;
  char* end = nullptr;
  unsigned long long n = std::strtoull(v.c_str(), &end, 10);
  if (errno != 0 || end != v.c_str() + v.size() || v[0] == '-') {
    Die(flag + ": '" + v + "' is not a non-negative integer");
  }
  if (n > max) {
    Die(flag + ": " + v + " exceeds the maximum of " + std::to_string(max));
  }
  return n;
}

// --data-dir must point at an existing, writable directory; anything else
// (typo, missing mkdir, read-only mount) gets a message that says exactly
// which precondition failed instead of a late opaque open() error.
void ValidateDataDir(const std::string& dir) {
  struct stat st;
  if (::stat(dir.c_str(), &st) != 0) {
    Die("--data-dir " + dir + ": " + std::strerror(errno) +
        " (create it first: mkdir -p '" + dir + "')");
  }
  if (!S_ISDIR(st.st_mode)) {
    Die("--data-dir " + dir + ": not a directory");
  }
  if (::access(dir.c_str(), W_OK | X_OK) != 0) {
    Die("--data-dir " + dir + ": not writable: " + std::strerror(errno));
  }
}

void PrintStats(const hot::net::ServerStats& s, bool durable) {
  std::printf(
      "conns %" PRIu64 "/%" PRIu64 " open=%" PRIu64 " | frames %" PRIu64
      " replies %" PRIu64 " | get %" PRIu64 " put %" PRIu64 " del %" PRIu64
      " scan %" PRIu64 " | batched %" PRIu64 " in %" PRIu64
      " drains (max %" PRIu64 ") scalar %" PRIu64 " | proto-err %" PRIu64
      " bad-req %" PRIu64 "\n",
      s.connections_accepted, s.connections_closed, s.connections_open(),
      s.frames_in, s.replies_out, s.gets, s.puts, s.deletes, s.scans,
      s.batched_gets, s.batch_drains, s.max_batch, s.scalar_gets,
      s.protocol_errors, s.bad_requests);
  if (durable) {
    std::printf("wal appends %" PRIu64 " fsyncs %" PRIu64
                " group-committed %" PRIu64 " commit-failures %" PRIu64
                " | snapshots %" PRIu64 " (last %" PRIu64
                " records, failures %" PRIu64 ")\n",
                s.wal_appends, s.wal_fsyncs, s.wal_group_committed,
                s.wal_commit_failures, s.snapshots_taken,
                s.snapshot_last_records, s.snapshot_failures);
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  hot::net::ServerOptions opt;
  opt.port = 7000;
  opt.workers = 1;
  uint64_t snapshot_trigger_mb = 64;
  unsigned stats_every = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      Usage(stdout);
      return 0;
    }
    if (arg == "--scalar") {
      opt.force_scalar = true;
      continue;
    }
    if (i + 1 >= argc) Die("missing value for " + arg);
    std::string v = argv[++i];
    if (arg == "--host") {
      opt.host = v;
    } else if (arg == "--port") {
      opt.port = static_cast<uint16_t>(ParseU64(arg, v, 65535));
    } else if (arg == "--workers") {
      opt.workers = static_cast<unsigned>(ParseU64(arg, v, 1024));
      if (opt.workers == 0) Die("--workers: must be >= 1");
    } else if (arg == "--shards") {
      opt.shards = static_cast<unsigned>(ParseU64(arg, v, 4096));
      if (opt.shards == 0) Die("--shards: must be >= 1");
    } else if (arg == "--batch-low-watermark") {
      opt.batch_low_watermark =
          static_cast<unsigned>(ParseU64(arg, v, 1u << 20));
    } else if (arg == "--data-dir") {
      opt.data_dir = v;
    } else if (arg == "--durability") {
      if (!hot::persist::DurabilityFromName(v, &opt.durability)) {
        Die("--durability: '" + v + "' is not one of none, async, sync");
      }
    } else if (arg == "--snapshot-trigger-mb") {
      snapshot_trigger_mb = ParseU64(arg, v, 1u << 20);
    } else if (arg == "--wal-flush-ms") {
      opt.wal_flush_ms = static_cast<unsigned>(ParseU64(arg, v, 60'000));
    } else if (arg == "--stats-every") {
      stats_every = static_cast<unsigned>(ParseU64(arg, v, 86'400));
    } else {
      Die("unknown flag " + arg);
    }
  }
  if (!opt.data_dir.empty()) {
    ValidateDataDir(opt.data_dir);
    opt.snapshot_trigger_bytes = snapshot_trigger_mb << 20;
  }

  hot::net::KvServer server(opt);
  std::string err;
  if (!server.Start(&err)) {
    std::fprintf(stderr, "kv_server: start failed: %s\n", err.c_str());
    return 1;
  }
  signal(SIGINT, OnSignal);
  signal(SIGTERM, OnSignal);
  std::printf("kv_server listening on %s:%u (%u workers, %u shards, %s)\n",
              opt.host.c_str(), server.port(), opt.workers, opt.shards,
              opt.force_scalar ? "scalar drain" : "batched drain");
  if (server.durable()) {
    const hot::net::RecoveryInfo& r = server.recovery();
    std::printf("durable: dir=%s mode=%s | recovered %" PRIu64
                " keys (snapshot %" PRIu64 ", wal +%" PRIu64 " ops across %"
                PRIu64 " segments%s) in %.3fs + %.3fs build\n",
                opt.data_dir.c_str(),
                hot::persist::DurabilityName(opt.durability), r.records,
                r.snapshot_records, r.wal_records_applied, r.wal_segments,
                r.torn_tail ? ", torn tail truncated" : "",
                r.recover_seconds, r.build_seconds);
  }
  std::fflush(stdout);

  unsigned elapsed = 0;
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
    if (stats_every != 0 && ++elapsed >= stats_every) {
      elapsed = 0;
      PrintStats(server.StatsSnapshot(), server.durable());
    }
  }
  server.Stop();
  PrintStats(server.StatsSnapshot(), server.durable());
  return 0;
}
