// Differential fuzzing driver (tentpole check #4).
//
//   fuzz_replay --selftest
//       serialization round-trip + a small differential on every index
//   fuzz_replay --record out.trace --kind uniform --n 4096 --seed 7
//              [--ops 20000] [--zipf] [--audit-every 1000]
//              [--mix default|scan-heavy|workload-e]
//       generate a deterministic trace and write it to a file
//   fuzz_replay --replay in.trace [--index all|hot|rowex|art|masstree|btree]
//       replay a trace file differentially; exit 1 on divergence
//   fuzz_replay --replay in.trace --net [--scalar]
//       replay the trace through a LOOPBACK KV SERVER (src/net) instead of
//       in-process adapters: every op crosses the wire protocol, lookups
//       are pipelined into the server's batch drain, and every reply is
//       diffed against the Patricia oracle (--scalar forces the server's
//       scalar drain path)
//   fuzz_replay --shrink in.trace --index hot --out min.trace
//       greedily minimize a failing trace
//   fuzz_replay --long [--rounds N] [--ops M] [--seed S] [--out-dir DIR]
//       fuzz campaign: random (kind, seed, mix) rounds across all indexes;
//       failing traces are shrunk and written to DIR (default .)
//   fuzz_replay --persist DIR [--kind K --n N --seed S --ops M]
//              [--crash-points C]
//       durability differential (DESIGN.md §13): replay the trace's
//       mutations into a real WAL in DIR (with two mid-stream snapshot
//       cycles: rotate -> snapshot -> prune), then simulate C crashes by
//       truncating the tail segment at a random byte or flipping a random
//       bit, run RecoverImage on the damaged copy, and diff the recovered
//       image against the oracle prefix the surviving frames determine.
//       Because the tool knows every frame's byte extent, the surviving
//       LSN is PREDICTED, not read back — recovery must agree exactly.
//       Also reachable as --replay FILE --persist DIR to use a saved trace.
//
// Every mode is deterministic in its arguments: replaying the same file (or
// re-running the same --record flags) reproduces byte-identical traces and
// identical verdicts.

#include <sys/stat.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "net/net_differ.h"
#include "persist/recovery.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "testing/differ.h"
#include "testing/shrink.h"
#include "testing/trace.h"

namespace {

using hot::testing::DiffOptions;
using hot::testing::DiffResult;
using hot::testing::GenerateTrace;
using hot::testing::KeySpaceKind;
using hot::testing::KeySpaceKindFromName;
using hot::testing::KeySpaceKindName;
using hot::testing::kIndexNames;
using hot::testing::kNumIndexes;
using hot::testing::kNumKeySpaceKinds;
using hot::testing::RunTraceOnIndex;
using hot::testing::ShrinkStats;
using hot::testing::ShrinkTrace;
using hot::testing::Trace;
using hot::testing::TraceGenConfig;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --selftest | --record FILE [opts] | --replay FILE "
               "[--index NAME] | --shrink FILE --index NAME --out FILE | "
               "--long [opts] | --persist DIR [opts] [--crash-points C]\n",
               argv0);
  return 2;
}

struct Args {
  std::string mode;
  std::string file;
  std::string out = "min.trace";
  std::string out_dir = ".";
  std::string index = "all";
  std::string kind = "uniform";
  uint64_t n = 4096;
  uint64_t seed = 1;
  uint64_t ops = 20000;
  uint64_t rounds = 20;
  uint64_t audit_every = 1000;
  bool zipf = false;
  bool net = false;     // replay through the loopback KV server
  bool scalar = false;  // --net: force the server's scalar GET drain
  std::string mix = "default";
  std::string persist_dir;     // durability differential data directory
  uint64_t crash_points = 32;  // simulated crashes per --persist run
};

// Named op-weight presets.  "scan-heavy" skews toward range reads so the
// sharded arms cross splitter boundaries constantly; "workload-e" mirrors
// the YCSB E ratio (95% scan / 5% insert) as closely as the trace op set
// allows.  Returns false for an unknown name.
bool ApplyMix(const std::string& mix, TraceGenConfig* cfg) {
  if (mix == "default") return true;
  if (mix == "scan-heavy") {
    cfg->w_scan = 40;
    cfg->w_lower_bound = 15;
    cfg->w_insert = 25;
    cfg->w_remove = 10;
    cfg->w_lookup = 7;
    cfg->w_upsert = 3;
    return true;
  }
  if (mix == "workload-e") {
    cfg->w_scan = 90;
    cfg->w_lower_bound = 5;
    cfg->w_insert = 5;
    cfg->w_remove = 0;
    cfg->w_lookup = 0;
    cfg->w_upsert = 0;
    return true;
  }
  return false;
}

const char* kMixNames[] = {"default", "scan-heavy", "workload-e"};

bool ParseArgs(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--selftest" || arg == "--long") {
      a->mode = arg.substr(2);
    } else if (arg == "--record" || arg == "--replay" || arg == "--shrink") {
      a->mode = arg.substr(2);
      const char* v = need_value();
      if (v == nullptr) return false;
      a->file = v;
    } else if (arg == "--persist") {
      const char* v = need_value();
      if (v == nullptr) return false;
      a->persist_dir = v;
      if (a->mode.empty()) a->mode = "persist";
    } else if (arg == "--zipf") {
      a->zipf = true;
    } else if (arg == "--net") {
      a->net = true;
    } else if (arg == "--scalar") {
      a->scalar = true;
    } else {
      const char* v = need_value();
      if (v == nullptr) return false;
      if (arg == "--index") a->index = v;
      else if (arg == "--kind") a->kind = v;
      else if (arg == "--mix") a->mix = v;
      else if (arg == "--out") a->out = v;
      else if (arg == "--out-dir") a->out_dir = v;
      else if (arg == "--n") a->n = std::strtoull(v, nullptr, 10);
      else if (arg == "--seed") a->seed = std::strtoull(v, nullptr, 10);
      else if (arg == "--ops") a->ops = std::strtoull(v, nullptr, 10);
      else if (arg == "--rounds") a->rounds = std::strtoull(v, nullptr, 10);
      else if (arg == "--audit-every")
        a->audit_every = std::strtoull(v, nullptr, 10);
      else if (arg == "--crash-points")
        a->crash_points = std::strtoull(v, nullptr, 10);
      else {
        std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
        return false;
      }
    }
  }
  return !a->mode.empty();
}

// Runs the trace on one index or, for "all", every index; returns the
// number of failures and reports each.
int ReplayOn(const std::string& index, const Trace& trace) {
  int failures = 0;
  for (unsigned i = 0; i < kNumIndexes; ++i) {
    if (index != "all" && index != kIndexNames[i]) continue;
    DiffResult res = RunTraceOnIndex(kIndexNames[i], trace);
    std::printf("[%s] %s\n", kIndexNames[i], res.Describe().c_str());
    if (!res.ok) ++failures;
  }
  return failures;
}

int SelfTest() {
  // Byte-identical round-trip across every keyspace kind.
  for (unsigned k = 0; k < kNumKeySpaceKinds; ++k) {
    TraceGenConfig cfg;
    cfg.kind = static_cast<KeySpaceKind>(k);
    cfg.n = 256;
    cfg.seed = 42 + k;
    cfg.num_ops = 400;
    cfg.audit_every = 100;
    cfg.zipf_pick = (k % 2) == 1;
    Trace t = GenerateTrace(cfg);
    std::string text = t.Serialize();
    Trace back;
    std::string err;
    if (!Trace::Parse(text, &back, &err)) {
      std::fprintf(stderr, "selftest: parse failed for kind %s: %s\n",
                   KeySpaceKindName(cfg.kind), err.c_str());
      return 1;
    }
    if (back.Serialize() != text) {
      std::fprintf(stderr, "selftest: round-trip not byte-identical (%s)\n",
                   KeySpaceKindName(cfg.kind));
      return 1;
    }
    int failures = ReplayOn("all", t);
    if (failures != 0) {
      t.SaveFile("selftest-fail.trace");
      std::fprintf(stderr,
                   "selftest: %d differential failures (kind %s), trace "
                   "written to selftest-fail.trace\n",
                   failures, KeySpaceKindName(cfg.kind));
      return 1;
    }
  }
  std::printf("selftest ok\n");
  return 0;
}

int LongCampaign(const Args& a) {
  uint64_t total_ops = 0;
  int failures = 0;
  for (uint64_t round = 0; round < a.rounds; ++round) {
    TraceGenConfig cfg;
    cfg.kind = static_cast<KeySpaceKind>((a.seed + round) % kNumKeySpaceKinds);
    cfg.seed = a.seed * 1000003 + round;
    cfg.n = 512u << (round % 5);  // 512 .. 8192
    cfg.num_ops = a.ops;
    cfg.zipf_pick = (round % 3) == 0;
    cfg.audit_every = a.audit_every;
    // Cycle the op-mix presets so every campaign covers point-op-dominated
    // and scan-dominated traffic.
    const char* mix =
        kMixNames[(a.seed + round) % (sizeof(kMixNames) / sizeof(*kMixNames))];
    ApplyMix(mix, &cfg);
    Trace t = GenerateTrace(cfg);
    for (unsigned i = 0; i < kNumIndexes; ++i) {
      if (a.index != "all" && a.index != kIndexNames[i]) continue;
      DiffResult res = RunTraceOnIndex(kIndexNames[i], t);
      total_ops += res.ops_executed;
      if (res.ok) continue;
      ++failures;
      std::printf("round %" PRIu64 " [%s] %s\n", round, kIndexNames[i],
                  res.Describe().c_str());
      std::string name = kIndexNames[i];
      ShrinkStats st;
      Trace min = ShrinkTrace(
          t,
          [&](const Trace& cand) {
            return !RunTraceOnIndex(name, cand).ok;
          },
          &st);
      std::string path = a.out_dir + "/fail-" + name + "-" +
                         KeySpaceKindName(cfg.kind) + "-r" +
                         std::to_string(round) + ".trace";
      if (min.SaveFile(path)) {
        std::printf("  shrunk %zu -> %zu ops (%zu replays), wrote %s\n",
                    st.ops_before, st.ops_after, st.predicate_calls,
                    path.c_str());
      } else {
        std::printf("  could not write %s\n", path.c_str());
      }
    }
    if ((round + 1) % 10 == 0 || round + 1 == a.rounds) {
      std::printf("progress: %" PRIu64 "/%" PRIu64 " rounds, %" PRIu64
                  " ops executed, %d failures\n",
                  round + 1, a.rounds, total_ops, failures);
      std::fflush(stdout);
    }
  }
  return failures == 0 ? 0 : 1;
}

// --- durability differential (--persist) -------------------------------------

namespace persist_diff {

using hot::KeyRef;
namespace ps = hot::persist;

std::string KeyBytesOf(const hot::testing::KeySpace& ks, uint32_t idx) {
  if (ks.is_string) return ks.strings[idx];
  uint64_t v = ks.ints[idx];
  std::string k(8, '\0');
  for (int b = 0; b < 8; ++b) {
    k[b] = static_cast<char>(v >> (8 * (7 - b)));  // big-endian = key order
  }
  return k;
}

KeyRef Ref(const std::string& s) {
  return KeyRef(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

bool CopyFile(const std::string& from, const std::string& to) {
  std::FILE* in = std::fopen(from.c_str(), "rb");
  if (in == nullptr) return false;
  std::FILE* out = std::fopen(to.c_str(), "wb");
  if (out == nullptr) {
    std::fclose(in);
    return false;
  }
  char buf[1 << 16];
  size_t n;
  bool ok = true;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
    if (std::fwrite(buf, 1, n, out) != n) {
      ok = false;
      break;
    }
  }
  std::fclose(in);
  return std::fclose(out) == 0 && ok;
}

void WipeDataDir(const std::string& dir) {
  ::unlink(ps::SnapshotPath(dir).c_str());
  ::unlink(ps::SnapshotTmpPath(dir).c_str());
  for (const auto& [seq, path] : ps::ListWalSegments(dir)) {
    (void)seq;
    ::unlink(path.c_str());
  }
}

// One logged mutation; ops_log[lsn - 1] is the op the WAL stamped `lsn`.
struct LoggedOp {
  std::string key;
  uint64_t value;
  uint8_t op;
};

// Byte extent of one frame in the tail segment: a crash at byte X survives
// exactly the frames with end_off <= X.
struct FrameExtent {
  uint64_t end_off;
  uint64_t lsn;
};

std::map<std::string, uint64_t> OraclePrefix(
    const std::vector<LoggedOp>& ops_log, uint64_t last_lsn) {
  std::map<std::string, uint64_t> m;
  for (uint64_t i = 0; i < last_lsn && i < ops_log.size(); ++i) {
    if (ops_log[i].op == ps::kWalPut) {
      m[ops_log[i].key] = ops_log[i].value;
    } else {
      m.erase(ops_log[i].key);
    }
  }
  return m;
}

int Run(const Args& a, const hot::testing::Trace& t) {
  const std::string& dir = a.persist_dir;
  struct stat st;
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    std::fprintf(stderr, "--persist %s: not an existing directory\n",
                 dir.c_str());
    return 2;
  }
  const std::string crash_dir = dir + "/crash";
  ::mkdir(crash_dir.c_str(), 0755);
  WipeDataDir(dir);
  WipeDataDir(crash_dir);

  hot::testing::KeySpace ks = t.BuildKeys();
  // Key order of the space, for translating bulk-load ops into puts.
  std::vector<uint32_t> order(ks.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t x, uint32_t y) {
    return KeyBytesOf(ks, x) < KeyBytesOf(ks, y);
  });

  // Phase 1: replay the trace's mutations into a real WAL, snapshotting
  // (rotate -> write -> prune) at the 1/3 and 2/3 marks so the final
  // directory holds a snapshot AND a live tail — the recovery shape with
  // the most moving parts.
  ps::Wal wal;
  ps::Wal::Options wopt;
  wopt.durability = ps::Durability::kNone;  // file bytes matter, fsync not
  std::string err;
  if (!wal.Open(dir, ps::WalResume(), wopt, &err)) {
    std::fprintf(stderr, "wal open: %s\n", err.c_str());
    return 1;
  }

  std::vector<LoggedOp> ops_log;
  std::map<std::string, uint64_t> oracle;
  std::vector<FrameExtent> tail_frames;  // frames of the CURRENT segment
  uint64_t tail_off = ps::kWalFileHeaderBytes;
  uint64_t snap_cut = 0;  // last snapshot's WAL cut

  auto append = [&](uint8_t op, const std::string& key, uint64_t value) {
    uint64_t lsn = wal.Append(op, Ref(key), value);
    ops_log.push_back({key, value, op});
    if (op == ps::kWalPut) {
      oracle[key] = value;
    } else {
      oracle.erase(key);
    }
    tail_off += ps::kWalFrameHeaderBytes + 13 + key.size() +
                (op == ps::kWalPut ? 8 : 0);
    tail_frames.push_back({tail_off, lsn});
  };
  int snaps = 0;
  auto snapshot_now = [&]() -> bool {
    err.clear();
    uint64_t cut = wal.Rotate(&err);
    if (!err.empty()) {
      std::fprintf(stderr, "wal rotate: %s\n", err.c_str());
      return false;
    }
    ps::SnapshotWriter w;
    if (!w.Open(ps::SnapshotPath(dir), &err)) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return false;
    }
    for (const auto& [key, value] : oracle) w.Add(Ref(key), value);
    if (!w.Finish(cut, &err)) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return false;
    }
    wal.PruneBelowCurrent();
    snap_cut = cut;
    ++snaps;
    tail_frames.clear();
    tail_off = ps::kWalFileHeaderBytes;
    return true;
  };

  size_t mutations = 0;
  for (const hot::testing::Op& op : t.ops) {
    mutations += op.kind == hot::testing::OpKind::kInsert ||
                 op.kind == hot::testing::OpKind::kUpsert ||
                 op.kind == hot::testing::OpKind::kRemove ||
                 op.kind == hot::testing::OpKind::kBulkLoad;
  }
  size_t done = 0;
  for (const hot::testing::Op& op : t.ops) {
    switch (op.kind) {
      case hot::testing::OpKind::kInsert:
      case hot::testing::OpKind::kUpsert:
        append(ps::kWalPut, KeyBytesOf(ks, op.idx), ks.ValueOf(op.idx));
        break;
      case hot::testing::OpKind::kRemove:
        append(ps::kWalDelete, KeyBytesOf(ks, op.idx), 0);
        break;
      case hot::testing::OpKind::kBulkLoad:
        // The trace form bulk-loads the m key-smallest entries; logically
        // that is m puts, which is exactly how the WAL must see them.
        for (uint32_t i = 0; i < op.arg && i < order.size(); ++i) {
          append(ps::kWalPut, KeyBytesOf(ks, order[i]),
                 ks.ValueOf(order[i]));
        }
        break;
      default:
        continue;  // reads don't touch the log
    }
    ++done;
    if (mutations >= 3 &&
        (done == mutations / 3 || done == 2 * mutations / 3)) {
      if (!snapshot_now()) return 1;
    }
  }
  wal.Close();

  // Phase 2: C simulated crashes.  Copy the directory, damage the tail
  // segment (random truncation, or a random bit flip every 4th round),
  // predict the surviving LSN from the known frame extents, and demand
  // that RecoverImage agrees byte-for-byte with the oracle prefix.
  auto segments = ps::ListWalSegments(dir);
  if (segments.empty()) {
    std::fprintf(stderr, "persist: no tail segment after replay?\n");
    return 1;
  }
  const std::string tail_src = segments.back().second;
  const std::string tail_name =
      tail_src.substr(tail_src.rfind('/') + 1);
  struct stat tst;
  if (::stat(tail_src.c_str(), &tst) != 0) return 1;
  const uint64_t tail_size = static_cast<uint64_t>(tst.st_size);
  if (!tail_frames.empty() && tail_frames.back().end_off != tail_size) {
    std::fprintf(stderr,
                 "persist: frame accounting off (predicted %" PRIu64
                 " bytes, segment has %" PRIu64 ")\n",
                 tail_frames.back().end_off, tail_size);
    return 1;
  }
  bool have_snap = ::stat(ps::SnapshotPath(dir).c_str(), &tst) == 0;

  std::mt19937_64 rng(a.seed * 0x9E3779B97F4A7C15ull + 1);
  int failures = 0;
  for (uint64_t round = 0; round < a.crash_points; ++round) {
    WipeDataDir(crash_dir);
    if (have_snap &&
        !CopyFile(ps::SnapshotPath(dir), ps::SnapshotPath(crash_dir))) {
      return 1;
    }
    const std::string tail_dst = crash_dir + "/" + tail_name;
    if (!CopyFile(tail_src, tail_dst)) return 1;

    bool flip = round % 4 == 3 && tail_size > ps::kWalFileHeaderBytes;
    uint64_t at;
    bool expect_fail = false;
    uint64_t expect_lsn = snap_cut;
    if (flip) {
      at = ps::kWalFileHeaderBytes +
           rng() % (tail_size - ps::kWalFileHeaderBytes);
      std::FILE* f = std::fopen(tail_dst.c_str(), "r+b");
      if (f == nullptr) return 1;
      std::fseek(f, static_cast<long>(at), SEEK_SET);
      int byte = std::fgetc(f);
      std::fseek(f, static_cast<long>(at), SEEK_SET);
      std::fputc(byte ^ (1 << (rng() % 8)), f);
      std::fclose(f);
      // The frame containing the flipped byte fails its CRC; everything
      // before it survives, everything after is unreachable.
      for (const FrameExtent& fe : tail_frames) {
        if (fe.end_off <= at) expect_lsn = fe.lsn;
      }
    } else {
      at = rng() % (tail_size + 1);
      if (::truncate(tail_dst.c_str(), static_cast<off_t>(at)) != 0) {
        return 1;
      }
      if (at < ps::kWalFileHeaderBytes) {
        expect_fail = true;  // not even a segment header: hard error
      } else {
        for (const FrameExtent& fe : tail_frames) {
          if (fe.end_off <= at) expect_lsn = fe.lsn;
        }
      }
    }

    ps::RecoveryResult rec;
    std::string rerr;
    bool ok = ps::RecoverImage(crash_dir, &rec, &rerr);
    if (expect_fail) {
      if (ok) {
        std::printf("crash %" PRIu64 " (%s@%" PRIu64
                    "): expected hard failure, recovery succeeded\n",
                    round, flip ? "flip" : "trunc", at);
        ++failures;
      }
      continue;
    }
    if (!ok) {
      std::printf("crash %" PRIu64 " (%s@%" PRIu64 "): recovery failed: %s\n",
                  round, flip ? "flip" : "trunc", at, rerr.c_str());
      ++failures;
      continue;
    }
    std::map<std::string, uint64_t> expect = OraclePrefix(ops_log, expect_lsn);
    bool match = rec.last_lsn == expect_lsn &&
                 rec.records.size() == expect.size();
    if (match) {
      auto it = expect.begin();
      for (const ps::RecoveredRecord& r : rec.records) {
        if (r.key != it->first || r.value != it->second) {
          match = false;
          break;
        }
        ++it;
      }
    }
    if (!match) {
      std::printf("crash %" PRIu64 " (%s@%" PRIu64 "): DIVERGENCE — "
                  "recovered %zu records lsn %" PRIu64 ", oracle %zu records "
                  "lsn %" PRIu64 "\n",
                  round, flip ? "flip" : "trunc", at, rec.records.size(),
                  rec.last_lsn, expect.size(), expect_lsn);
      ++failures;
    }
  }
  WipeDataDir(crash_dir);
  ::rmdir(crash_dir.c_str());

  std::printf("[persist] %s: %zu mutations, %d snapshots (cut lsn %" PRIu64
              "), %" PRIu64 " crash points, %d failures\n",
              hot::testing::KeySpaceKindName(t.ks_kind), ops_log.size(),
              snaps, snap_cut, a.crash_points, failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace persist_diff

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!ParseArgs(argc, argv, &a)) return Usage(argv[0]);

  if (a.mode == "selftest") return SelfTest();

  if (a.mode == "persist") {
    TraceGenConfig cfg;
    if (!KeySpaceKindFromName(a.kind, &cfg.kind)) {
      std::fprintf(stderr, "unknown keyspace kind %s\n", a.kind.c_str());
      return 2;
    }
    cfg.n = static_cast<uint32_t>(a.n);
    cfg.seed = a.seed;
    cfg.num_ops = a.ops;
    cfg.zipf_pick = a.zipf;
    cfg.audit_every = 0;
    return persist_diff::Run(a, GenerateTrace(cfg));
  }

  if (a.mode == "record") {
    TraceGenConfig cfg;
    if (!KeySpaceKindFromName(a.kind, &cfg.kind)) {
      std::fprintf(stderr, "unknown keyspace kind %s\n", a.kind.c_str());
      return 2;
    }
    cfg.n = static_cast<uint32_t>(a.n);
    cfg.seed = a.seed;
    cfg.num_ops = a.ops;
    cfg.zipf_pick = a.zipf;
    cfg.audit_every = a.audit_every;
    if (!ApplyMix(a.mix, &cfg)) {
      std::fprintf(stderr, "unknown mix %s\n", a.mix.c_str());
      return 2;
    }
    Trace t = GenerateTrace(cfg);
    if (!t.SaveFile(a.file)) {
      std::fprintf(stderr, "cannot write %s\n", a.file.c_str());
      return 1;
    }
    std::printf("recorded %zu ops to %s\n", t.ops.size(), a.file.c_str());
    return 0;
  }

  if (a.mode == "replay" || a.mode == "shrink") {
    Trace t;
    std::string err;
    if (!Trace::LoadFile(a.file, &t, &err)) {
      std::fprintf(stderr, "cannot load %s: %s\n", a.file.c_str(),
                   err.c_str());
      return 1;
    }
    if (a.mode == "replay") {
      if (!a.persist_dir.empty()) return persist_diff::Run(a, t);
      if (a.net) {
        hot::net::NetDiffOptions opts;
        opts.server.force_scalar = a.scalar;
        hot::net::NetDiffResult res = hot::net::RunTraceOverNet(t, opts);
        std::printf("[net%s] %s (%" PRIu64 " batched / %" PRIu64
                    " scalar gets)\n",
                    a.scalar ? "-scalar" : "", res.Describe().c_str(),
                    res.stats.batched_gets, res.stats.scalar_gets);
        return res.ok ? 0 : 1;
      }
      return ReplayOn(a.index, t) == 0 ? 0 : 1;
    }
    if (a.index == "all") {
      std::fprintf(stderr, "--shrink needs a concrete --index\n");
      return 2;
    }
    if (RunTraceOnIndex(a.index, t).ok) {
      std::fprintf(stderr, "trace does not fail on %s; nothing to shrink\n",
                   a.index.c_str());
      return 1;
    }
    ShrinkStats st;
    Trace min = ShrinkTrace(
        t,
        [&](const Trace& cand) { return !RunTraceOnIndex(a.index, cand).ok; },
        &st);
    if (!min.SaveFile(a.out)) {
      std::fprintf(stderr, "cannot write %s\n", a.out.c_str());
      return 1;
    }
    std::printf("shrunk %zu -> %zu ops (%zu replays), wrote %s\n",
                st.ops_before, st.ops_after, st.predicate_calls,
                a.out.c_str());
    return 0;
  }

  if (a.mode == "long") return LongCampaign(a);
  return Usage(argv[0]);
}
