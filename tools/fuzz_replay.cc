// Differential fuzzing driver (tentpole check #4).
//
//   fuzz_replay --selftest
//       serialization round-trip + a small differential on every index
//   fuzz_replay --record out.trace --kind uniform --n 4096 --seed 7
//              [--ops 20000] [--zipf] [--audit-every 1000]
//              [--mix default|scan-heavy|workload-e]
//       generate a deterministic trace and write it to a file
//   fuzz_replay --replay in.trace [--index all|hot|rowex|art|masstree|btree]
//       replay a trace file differentially; exit 1 on divergence
//   fuzz_replay --replay in.trace --net [--scalar]
//       replay the trace through a LOOPBACK KV SERVER (src/net) instead of
//       in-process adapters: every op crosses the wire protocol, lookups
//       are pipelined into the server's batch drain, and every reply is
//       diffed against the Patricia oracle (--scalar forces the server's
//       scalar drain path)
//   fuzz_replay --shrink in.trace --index hot --out min.trace
//       greedily minimize a failing trace
//   fuzz_replay --long [--rounds N] [--ops M] [--seed S] [--out-dir DIR]
//       fuzz campaign: random (kind, seed, mix) rounds across all indexes;
//       failing traces are shrunk and written to DIR (default .)
//
// Every mode is deterministic in its arguments: replaying the same file (or
// re-running the same --record flags) reproduces byte-identical traces and
// identical verdicts.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/net_differ.h"
#include "testing/differ.h"
#include "testing/shrink.h"
#include "testing/trace.h"

namespace {

using hot::testing::DiffOptions;
using hot::testing::DiffResult;
using hot::testing::GenerateTrace;
using hot::testing::KeySpaceKind;
using hot::testing::KeySpaceKindFromName;
using hot::testing::KeySpaceKindName;
using hot::testing::kIndexNames;
using hot::testing::kNumIndexes;
using hot::testing::kNumKeySpaceKinds;
using hot::testing::RunTraceOnIndex;
using hot::testing::ShrinkStats;
using hot::testing::ShrinkTrace;
using hot::testing::Trace;
using hot::testing::TraceGenConfig;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --selftest | --record FILE [opts] | --replay FILE "
               "[--index NAME] | --shrink FILE --index NAME --out FILE | "
               "--long [opts]\n",
               argv0);
  return 2;
}

struct Args {
  std::string mode;
  std::string file;
  std::string out = "min.trace";
  std::string out_dir = ".";
  std::string index = "all";
  std::string kind = "uniform";
  uint64_t n = 4096;
  uint64_t seed = 1;
  uint64_t ops = 20000;
  uint64_t rounds = 20;
  uint64_t audit_every = 1000;
  bool zipf = false;
  bool net = false;     // replay through the loopback KV server
  bool scalar = false;  // --net: force the server's scalar GET drain
  std::string mix = "default";
};

// Named op-weight presets.  "scan-heavy" skews toward range reads so the
// sharded arms cross splitter boundaries constantly; "workload-e" mirrors
// the YCSB E ratio (95% scan / 5% insert) as closely as the trace op set
// allows.  Returns false for an unknown name.
bool ApplyMix(const std::string& mix, TraceGenConfig* cfg) {
  if (mix == "default") return true;
  if (mix == "scan-heavy") {
    cfg->w_scan = 40;
    cfg->w_lower_bound = 15;
    cfg->w_insert = 25;
    cfg->w_remove = 10;
    cfg->w_lookup = 7;
    cfg->w_upsert = 3;
    return true;
  }
  if (mix == "workload-e") {
    cfg->w_scan = 90;
    cfg->w_lower_bound = 5;
    cfg->w_insert = 5;
    cfg->w_remove = 0;
    cfg->w_lookup = 0;
    cfg->w_upsert = 0;
    return true;
  }
  return false;
}

const char* kMixNames[] = {"default", "scan-heavy", "workload-e"};

bool ParseArgs(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--selftest" || arg == "--long") {
      a->mode = arg.substr(2);
    } else if (arg == "--record" || arg == "--replay" || arg == "--shrink") {
      a->mode = arg.substr(2);
      const char* v = need_value();
      if (v == nullptr) return false;
      a->file = v;
    } else if (arg == "--zipf") {
      a->zipf = true;
    } else if (arg == "--net") {
      a->net = true;
    } else if (arg == "--scalar") {
      a->scalar = true;
    } else {
      const char* v = need_value();
      if (v == nullptr) return false;
      if (arg == "--index") a->index = v;
      else if (arg == "--kind") a->kind = v;
      else if (arg == "--mix") a->mix = v;
      else if (arg == "--out") a->out = v;
      else if (arg == "--out-dir") a->out_dir = v;
      else if (arg == "--n") a->n = std::strtoull(v, nullptr, 10);
      else if (arg == "--seed") a->seed = std::strtoull(v, nullptr, 10);
      else if (arg == "--ops") a->ops = std::strtoull(v, nullptr, 10);
      else if (arg == "--rounds") a->rounds = std::strtoull(v, nullptr, 10);
      else if (arg == "--audit-every")
        a->audit_every = std::strtoull(v, nullptr, 10);
      else {
        std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
        return false;
      }
    }
  }
  return !a->mode.empty();
}

// Runs the trace on one index or, for "all", every index; returns the
// number of failures and reports each.
int ReplayOn(const std::string& index, const Trace& trace) {
  int failures = 0;
  for (unsigned i = 0; i < kNumIndexes; ++i) {
    if (index != "all" && index != kIndexNames[i]) continue;
    DiffResult res = RunTraceOnIndex(kIndexNames[i], trace);
    std::printf("[%s] %s\n", kIndexNames[i], res.Describe().c_str());
    if (!res.ok) ++failures;
  }
  return failures;
}

int SelfTest() {
  // Byte-identical round-trip across every keyspace kind.
  for (unsigned k = 0; k < kNumKeySpaceKinds; ++k) {
    TraceGenConfig cfg;
    cfg.kind = static_cast<KeySpaceKind>(k);
    cfg.n = 256;
    cfg.seed = 42 + k;
    cfg.num_ops = 400;
    cfg.audit_every = 100;
    cfg.zipf_pick = (k % 2) == 1;
    Trace t = GenerateTrace(cfg);
    std::string text = t.Serialize();
    Trace back;
    std::string err;
    if (!Trace::Parse(text, &back, &err)) {
      std::fprintf(stderr, "selftest: parse failed for kind %s: %s\n",
                   KeySpaceKindName(cfg.kind), err.c_str());
      return 1;
    }
    if (back.Serialize() != text) {
      std::fprintf(stderr, "selftest: round-trip not byte-identical (%s)\n",
                   KeySpaceKindName(cfg.kind));
      return 1;
    }
    int failures = ReplayOn("all", t);
    if (failures != 0) {
      t.SaveFile("selftest-fail.trace");
      std::fprintf(stderr,
                   "selftest: %d differential failures (kind %s), trace "
                   "written to selftest-fail.trace\n",
                   failures, KeySpaceKindName(cfg.kind));
      return 1;
    }
  }
  std::printf("selftest ok\n");
  return 0;
}

int LongCampaign(const Args& a) {
  uint64_t total_ops = 0;
  int failures = 0;
  for (uint64_t round = 0; round < a.rounds; ++round) {
    TraceGenConfig cfg;
    cfg.kind = static_cast<KeySpaceKind>((a.seed + round) % kNumKeySpaceKinds);
    cfg.seed = a.seed * 1000003 + round;
    cfg.n = 512u << (round % 5);  // 512 .. 8192
    cfg.num_ops = a.ops;
    cfg.zipf_pick = (round % 3) == 0;
    cfg.audit_every = a.audit_every;
    // Cycle the op-mix presets so every campaign covers point-op-dominated
    // and scan-dominated traffic.
    const char* mix =
        kMixNames[(a.seed + round) % (sizeof(kMixNames) / sizeof(*kMixNames))];
    ApplyMix(mix, &cfg);
    Trace t = GenerateTrace(cfg);
    for (unsigned i = 0; i < kNumIndexes; ++i) {
      if (a.index != "all" && a.index != kIndexNames[i]) continue;
      DiffResult res = RunTraceOnIndex(kIndexNames[i], t);
      total_ops += res.ops_executed;
      if (res.ok) continue;
      ++failures;
      std::printf("round %" PRIu64 " [%s] %s\n", round, kIndexNames[i],
                  res.Describe().c_str());
      std::string name = kIndexNames[i];
      ShrinkStats st;
      Trace min = ShrinkTrace(
          t,
          [&](const Trace& cand) {
            return !RunTraceOnIndex(name, cand).ok;
          },
          &st);
      std::string path = a.out_dir + "/fail-" + name + "-" +
                         KeySpaceKindName(cfg.kind) + "-r" +
                         std::to_string(round) + ".trace";
      if (min.SaveFile(path)) {
        std::printf("  shrunk %zu -> %zu ops (%zu replays), wrote %s\n",
                    st.ops_before, st.ops_after, st.predicate_calls,
                    path.c_str());
      } else {
        std::printf("  could not write %s\n", path.c_str());
      }
    }
    if ((round + 1) % 10 == 0 || round + 1 == a.rounds) {
      std::printf("progress: %" PRIu64 "/%" PRIu64 " rounds, %" PRIu64
                  " ops executed, %d failures\n",
                  round + 1, a.rounds, total_ops, failures);
      std::fflush(stdout);
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!ParseArgs(argc, argv, &a)) return Usage(argv[0]);

  if (a.mode == "selftest") return SelfTest();

  if (a.mode == "record") {
    TraceGenConfig cfg;
    if (!KeySpaceKindFromName(a.kind, &cfg.kind)) {
      std::fprintf(stderr, "unknown keyspace kind %s\n", a.kind.c_str());
      return 2;
    }
    cfg.n = static_cast<uint32_t>(a.n);
    cfg.seed = a.seed;
    cfg.num_ops = a.ops;
    cfg.zipf_pick = a.zipf;
    cfg.audit_every = a.audit_every;
    if (!ApplyMix(a.mix, &cfg)) {
      std::fprintf(stderr, "unknown mix %s\n", a.mix.c_str());
      return 2;
    }
    Trace t = GenerateTrace(cfg);
    if (!t.SaveFile(a.file)) {
      std::fprintf(stderr, "cannot write %s\n", a.file.c_str());
      return 1;
    }
    std::printf("recorded %zu ops to %s\n", t.ops.size(), a.file.c_str());
    return 0;
  }

  if (a.mode == "replay" || a.mode == "shrink") {
    Trace t;
    std::string err;
    if (!Trace::LoadFile(a.file, &t, &err)) {
      std::fprintf(stderr, "cannot load %s: %s\n", a.file.c_str(),
                   err.c_str());
      return 1;
    }
    if (a.mode == "replay") {
      if (a.net) {
        hot::net::NetDiffOptions opts;
        opts.server.force_scalar = a.scalar;
        hot::net::NetDiffResult res = hot::net::RunTraceOverNet(t, opts);
        std::printf("[net%s] %s (%" PRIu64 " batched / %" PRIu64
                    " scalar gets)\n",
                    a.scalar ? "-scalar" : "", res.Describe().c_str(),
                    res.stats.batched_gets, res.stats.scalar_gets);
        return res.ok ? 0 : 1;
      }
      return ReplayOn(a.index, t) == 0 ? 0 : 1;
    }
    if (a.index == "all") {
      std::fprintf(stderr, "--shrink needs a concrete --index\n");
      return 2;
    }
    if (RunTraceOnIndex(a.index, t).ok) {
      std::fprintf(stderr, "trace does not fail on %s; nothing to shrink\n",
                   a.index.c_str());
      return 1;
    }
    ShrinkStats st;
    Trace min = ShrinkTrace(
        t,
        [&](const Trace& cand) { return !RunTraceOnIndex(a.index, cand).ok; },
        &st);
    if (!min.SaveFile(a.out)) {
      std::fprintf(stderr, "cannot write %s\n", a.out.c_str());
      return 1;
    }
    std::printf("shrunk %zu -> %zu ops (%zu replays), wrote %s\n",
                st.ops_before, st.ops_after, st.predicate_calls,
                a.out.c_str());
    return 0;
  }

  if (a.mode == "long") return LongCampaign(a);
  return Usage(argv[0]);
}
