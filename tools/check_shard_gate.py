#!/usr/bin/env python3
"""CI gate for the shard-count sweep (bench/ablation_shards).

Reads a BENCH_ablation_shards.json and fails (exit 1) if, for any dataset,
the BEST sharded lookup arm (shards > 1, either execution mode) falls below
the single-shard arm — i.e. if sharding is a lookup regression again, as it
was in the PR-5 recording (integer: 3.62 Mops at 1 shard vs 1.49 at 16).

The baseline is the single-shard row in "random" mode — the way an
unsharded index is actually deployed (every thread touches the whole
keyspace, no affinity).  The affine single-shard row is excluded from the
baseline: with one shard, OwnerOfShard deals every operation to a single
thread while the rest idle, so that arm measures serial execution, not an
unsharded deployment — on small machines it can edge out every parallel
arm by sidestepping the scheduler entirely.  It still appears in the JSON
as a serial reference point.

A tolerance factor (default 0.95) absorbs shared-runner noise at smoke
scale: the gate only trips when the best sharded arm is clearly behind,
not on a within-noise tie.  Insert throughput is reported for context but
gated at a looser factor (default 0.85), since smoke-scale load phases are
noisier than the lookup phase.

Usage: check_shard_gate.py BENCH_ablation_shards.json \
           [--lookup-factor 0.95] [--insert-factor 0.85]
"""

import argparse
import json
import sys


def best_arm(rows, metric):
    """(value, row) of the best `metric` among sharded rows."""
    best = max(rows, key=lambda r: r[metric])
    return best[metric], best


def gate_dataset(dataset, rows, lookup_factor, insert_factor):
    single = [r for r in rows
              if r["shards"] == 1 and r.get("mode", "random") == "random"]
    if not single:  # pre-mode recordings or random arm absent
        single = [r for r in rows if r["shards"] == 1]
    sharded = [r for r in rows if r["shards"] > 1]
    if not single or not sharded:
        print(f"{dataset}: missing single-shard or sharded rows — skipping")
        return []

    failures = []
    for metric, factor in (("lookup_mops", lookup_factor),
                           ("insert_mops", insert_factor)):
        base = max(r[metric] for r in single)
        best, row = best_arm(sharded, metric)
        mode = row.get("mode", "?")
        verdict = "ok" if best >= factor * base else "FAIL"
        print(f"{dataset}: {metric} single-shard={base:.3f} "
              f"best-sharded={best:.3f} "
              f"(shards={row['shards']}, mode={mode}) "
              f"need >= {factor:.2f}x -> {verdict}")
        if verdict == "FAIL":
            failures.append(
                f"{dataset}: best sharded {metric} {best:.3f} < "
                f"{factor:.2f} x single-shard {base:.3f} — sharding is a "
                f"regression on this metric")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("json_path")
    ap.add_argument("--lookup-factor", type=float, default=0.95)
    ap.add_argument("--insert-factor", type=float, default=0.85)
    args = ap.parse_args()

    with open(args.json_path) as f:
        data = json.load(f)
    results = data.get("results", [])
    if not results:
        print(f"error: no results in {args.json_path}", file=sys.stderr)
        return 1

    datasets = sorted({r["dataset"] for r in results})
    failures = []
    for ds in datasets:
        rows = [r for r in results if r["dataset"] == ds]
        failures += gate_dataset(ds, rows, args.lookup_factor,
                                 args.insert_factor)

    if failures:
        print("\nshard gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nshard gate passed: some sharded arm holds up against "
          "single-shard on every dataset")
    return 0


if __name__ == "__main__":
    sys.exit(main())
