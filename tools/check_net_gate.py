#!/usr/bin/env python3
"""CI gate for the network KV bench (bench/net_throughput).

Reads a BENCH_net_throughput.json and fails (exit 1) if the batched GET
drain does not beat the forced-scalar drain at 8 connections — the
ISSUE-8 acceptance ratio.  The bench's "gate" row records both arms from
the same loaded server (the mode is flipped at runtime between phases),
so the ratio isolates the drain strategy: 8 connections x pipeline depth
pending GETs per event-loop iteration, drained either through the AMAC
batched lookup or one scalar lookup at a time.

The full-scale recording must clear the paper-facing 1.3x bar; CI smoke
runs gate at a lower default (1.1x) because smoke scale (200k keys) keeps
more of the index in cache, which narrows the memory-level-parallelism
win the batch path exists to harvest — on shared runners the margin above
1.3x is real but not guaranteed.

Also sanity-checks mode purity from the per-phase rows: a "scalar" row
that recorded batched_gets (or vice versa) means the runtime mode switch
regressed and the ratio is measuring nothing.

Usage: check_net_gate.py BENCH_net_throughput.json [--min-ratio 1.1]
"""

import argparse
import json
import sys


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("json_path")
    ap.add_argument("--min-ratio", type=float, default=1.1)
    args = ap.parse_args()

    with open(args.json_path) as f:
        data = json.load(f)
    results = data.get("results", [])
    if not results:
        print(f"error: no results in {args.json_path}", file=sys.stderr)
        return 1

    failures = []
    for r in results:
        if r.get("phase") != "get":
            continue
        if r["mode"] == "scalar" and r.get("batched_gets", 0) != 0:
            failures.append(
                f"scalar row at {r['conns']} conns recorded "
                f"{r['batched_gets']} batched gets — mode switch broken")
        if r["mode"] == "batched" and r.get("batched_gets", 0) == 0:
            failures.append(
                f"batched row at {r['conns']} conns drained nothing through "
                f"the batch path — mode switch broken")

    gates = [r for r in results if r.get("phase") == "gate"]
    if not gates:
        failures.append("no gate row (8-connection batched/scalar ratio)")
    for g in gates:
        ratio = g["ratio"]
        verdict = "ok" if ratio >= args.min_ratio else "FAIL"
        print(f"gate at {g['conns']} conns: batched {g['batched_mops']:.3f} "
              f"/ scalar {g['scalar_mops']:.3f} Mops = {ratio:.2f}x, "
              f"need >= {args.min_ratio:.2f}x -> {verdict}")
        if verdict == "FAIL":
            failures.append(
                f"batched/scalar ratio {ratio:.2f}x at {g['conns']} conns "
                f"below {args.min_ratio:.2f}x — batch scheduling is not "
                f"paying for itself")

    if failures:
        print("\nnet gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("net gate passed: batched drain beats scalar at 8 connections")
    return 0


if __name__ == "__main__":
    sys.exit(main())
