#!/usr/bin/env python3
"""Recovery correctness gate for CI.

Reads a BENCH_recovery.json produced by bench/recovery_time and fails
(exit 1) unless EVERY row proves byte-identical recovery:

  * match == true              (image CRC == scan CRC == oracle CRC)
  * recovered_keys == expected_keys
  * the three CRC fields agree with each other (belt and braces: `match`
    is recomputed here, not trusted)
  * recover_s / build_s are present and positive for non-empty images

Usage:  check_recovery_gate.py [BENCH_recovery.json]

The default path is ./BENCH_recovery.json, which is where the bench drops
it when run from the repo root (CI runs it with --quick in the persist
lane; the committed file tracks the full-size run).
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"recovery-gate: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_recovery.json"
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {path}: {e}")

    if doc.get("bench") != "recovery":
        fail(f"{path}: not a recovery bench file (bench={doc.get('bench')!r})")
    rows = doc.get("results", [])
    if not rows:
        fail(f"{path}: no result rows — the bench did not complete")

    required = (
        "keys", "wal_tail_ops", "recover_s", "build_s", "recovered_keys",
        "expected_keys", "image_crc", "scan_crc", "oracle_crc", "match",
    )
    for i, row in enumerate(rows):
        where = f"{path} row {i} (keys={row.get('keys')}, " \
                f"tail={row.get('wal_tail_ops')})"
        for field in required:
            if field not in row:
                fail(f"{where}: missing field {field!r}")
        if row["recovered_keys"] != row["expected_keys"]:
            fail(f"{where}: recovered {row['recovered_keys']} keys, "
                 f"expected {row['expected_keys']}")
        crcs = {row["image_crc"], row["scan_crc"], row["oracle_crc"]}
        if len(crcs) != 1:
            fail(f"{where}: checksum mismatch image={row['image_crc']} "
                 f"scan={row['scan_crc']} oracle={row['oracle_crc']}")
        if row["match"] is not True:
            fail(f"{where}: match flag is {row['match']!r}")
        if row["expected_keys"] > 0 and not (
                row["recover_s"] > 0 and row["build_s"] > 0):
            fail(f"{where}: non-positive phase timings "
                 f"(recover_s={row['recover_s']}, build_s={row['build_s']})")

    total = sum(r["recovered_keys"] for r in rows)
    print(f"recovery-gate: OK — {len(rows)} rows, {total} keys recovered "
          f"byte-identical")


if __name__ == "__main__":
    main()
