// libFuzzer entry point (built only with -DHOT_FUZZ=ON under Clang; GCC has
// no libFuzzer runtime, so the CMake gate skips this target there).
//
// The fuzzer mutates the textual trace format directly: inputs that parse as
// a `hot-fuzz-trace v1` document are replayed differentially against every
// index, with op and keyspace budgets capped so each execution stays fast.
// Any divergence or invariant violation aborts, handing libFuzzer a
// reproducer that `fuzz_replay --replay` (and ShrinkTrace) consume as-is.
//
//   clang++ -fsanitize=fuzzer,address ... (cmake -DHOT_FUZZ=ON)
//   ./fuzz_diff corpus/ -max_len=65536

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "testing/differ.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace hot::testing;
  if (size > 1 << 20) return 0;
  std::string text(reinterpret_cast<const char*>(data), size);
  Trace trace;
  std::string err;
  if (!Trace::Parse(text, &trace, &err)) return 0;
  // Budget caps: keyspace construction dominates when n is huge, and op
  // counts beyond a few thousand add latency without new structure.
  if (trace.ks_n == 0 || trace.ks_n > 4096) trace.ks_n = 4096;
  if (trace.ops.size() > 4096) trace.ops.resize(4096);
  trace.ops.push_back(Op{OpKind::kAudit, 0, 0});
  for (unsigned i = 0; i < kNumIndexes; ++i) {
    DiffResult res = RunTraceOnIndex(kIndexNames[i], trace);
    if (!res.ok) {
      std::fprintf(stderr, "divergence on %s: %s\n", kIndexNames[i],
                   res.Describe().c_str());
      std::abort();
    }
  }
  return 0;
}
