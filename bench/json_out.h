// Machine-readable benchmark output: every bench binary writes a
// BENCH_<name>.json next to its stdout table so the repository's perf
// trajectory accumulates across commits (CI uploads the files as
// artifacts; bench/ablation_batch.cc's acceptance numbers live here too).
//
// Format:
//   {
//     "bench": "<name>",
//     "meta": { ...one flat object of configuration... },
//     "results": [ { ...one flat object per row... }, ... ]
//   }
//
// Deliberately dependency-free: a tiny append-only emitter, not a JSON
// library.  Keys are emitted in insertion order; values are numbers,
// strings, or booleans.

#ifndef HOT_BENCH_JSON_OUT_H_
#define HOT_BENCH_JSON_OUT_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace hot {
namespace bench {

// One flat JSON object built by chained Add() calls.
class JsonObject {
 public:
  JsonObject& Add(const std::string& key, const std::string& value) {
    AppendKey(key);
    body_ += Quote(value);
    return *this;
  }
  JsonObject& Add(const std::string& key, const char* value) {
    return Add(key, std::string(value));
  }
  JsonObject& Add(const std::string& key, double value) {
    AppendKey(key);
    if (!std::isfinite(value)) {
      body_ += "null";
    } else {
      char buf[64];
      snprintf(buf, sizeof(buf), "%.6g", value);
      body_ += buf;
    }
    return *this;
  }
  JsonObject& Add(const std::string& key, uint64_t value) {
    AppendKey(key);
    body_ += std::to_string(value);
    return *this;
  }
  JsonObject& Add(const std::string& key, unsigned value) {
    return Add(key, static_cast<uint64_t>(value));
  }
  JsonObject& Add(const std::string& key, int value) {
    AppendKey(key);
    body_ += std::to_string(value);
    return *this;
  }
  JsonObject& Add(const std::string& key, bool value) {
    AppendKey(key);
    body_ += value ? "true" : "false";
    return *this;
  }

  std::string Dump() const { return "{" + body_ + "}"; }
  bool empty() const { return body_.empty(); }

 private:
  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
    return out;
  }

  void AppendKey(const std::string& key) {
    if (!body_.empty()) body_ += ",";
    body_ += Quote(key) + ":";
  }

  std::string body_;
};

// Collects rows for one bench run and writes BENCH_<name>.json into the
// working directory (next to the stdout report) on WriteFile() — called
// from the destructor as a safety net, so a bench that returns early still
// leaves its partial trajectory behind.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}
  ~BenchJson() {
    if (!written_) WriteFile();
  }

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  JsonObject& meta() { return meta_; }
  void AddResult(const JsonObject& row) { results_.push_back(row.Dump()); }

  bool WriteFile() {
    written_ = true;
    std::string path = "BENCH_" + name_ + ".json";
    FILE* f = fopen(path.c_str(), "w");
    if (f == nullptr) {
      fprintf(stderr, "json_out: cannot write %s\n", path.c_str());
      return false;
    }
    std::string out = "{\"bench\":\"" + name_ + "\",\"meta\":" +
                      (meta_.empty() ? "{}" : meta_.Dump()) + ",\"results\":[";
    for (size_t i = 0; i < results_.size(); ++i) {
      if (i > 0) out += ",";
      out += results_[i];
    }
    out += "]}\n";
    fwrite(out.data(), 1, out.size(), f);
    fclose(f);
    printf("wrote %s (%zu results)\n", path.c_str(), results_.size());
    return true;
  }

 private:
  std::string name_;
  JsonObject meta_;
  std::vector<std::string> results_;
  bool written_ = false;
};

}  // namespace bench
}  // namespace hot

#endif  // HOT_BENCH_JSON_OUT_H_
