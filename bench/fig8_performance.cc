// Figure 8: single-threaded throughput (million operations per second) of
// HOT, the hybrid static/delta HOT (hot/hybrid.h, quiesced before the
// transaction phase), ART, Masstree and the B+-tree for
//   * YCSB workload C (100% lookup, uniform),
//   * YCSB workload E (95% short range scans of up to 100 entries,
//     5% insert, uniform),
//   * the insert-only load phase,
// on the four data sets (url, email, yago, integer).
//
// Paper scale: 50M keys / 100M operations.  Default here: 2M/4M
// (override with --keys/--ops or HOT_BENCH_KEYS/HOT_BENCH_OPS); the
// relative shapes are scale-stable, absolute mops depend on the machine.
//
// Usage: fig8_performance [--keys=N] [--ops=N] [--workload=C|E|load]

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "bench/json_out.h"

using namespace hot;
using namespace hot::ycsb;
using namespace hot::bench;

namespace {

void RunWorkloadRow(const BenchConfig& cfg, char workload, BenchJson& json) {
  printf("\n=== Figure 8: workload %c (uniform), %zu keys, %zu ops, "
         "batch %u ===\n",
         workload, cfg.keys, cfg.ops, cfg.batch);
  Table table(
      {"dataset", "HOT", "HOT(hybrid)", "ART", "Masstree", "BT", "metric"});
  table.PrintHeader();
  WorkloadSpec spec = YcsbWorkload(workload, Distribution::kUniform);
  for (DataSetKind kind : kAllDataSets) {
    DataSet ds = GenerateDataSet(kind, CapacityFor(cfg.keys, cfg.ops, spec),
                                 cfg.seed);
    ObsOptions obs_opt{cfg.latency, cfg.counters};
    auto results = RunAllIndexes(ds, cfg.keys, cfg.ops, spec, cfg.seed,
                                 cfg.batch, obs_opt, /*include_rowex=*/false,
                                 /*include_hybrid=*/true);
    std::vector<std::string> row = {DataSetName(kind)};
    for (const auto& r : results) {
      row.push_back(Fmt(r.run.TxnMops()));
      JsonObject j;
      j.Add("workload", std::string(1, workload))
          .Add("dataset", DataSetName(kind))
          .Add("index", r.index)
          .Add("mops", r.run.TxnMops())
          .Add("failed_ops", r.run.failed_ops);
      if (cfg.latency && r.observers != nullptr) {
        AddLatencyFields(j, *r.observers);
      }
      if (cfg.counters && r.observers != nullptr) AddCounterFields(j, r);
      json.AddResult(j);
    }
    row.push_back("mops");
    table.PrintRow(row);
    if (cfg.latency) {
      for (const auto& r : results) PrintLatencySummary(r);
    }
  }
}

void RunInsertOnlyRow(const BenchConfig& cfg, BenchJson& json) {
  printf("\n=== Figure 8: insert-only (load phase), %zu keys ===\n",
         cfg.keys);
  Table table(
      {"dataset", "HOT", "HOT(hybrid)", "ART", "Masstree", "BT", "metric"});
  table.PrintHeader();
  WorkloadSpec spec = YcsbWorkload('C', Distribution::kUniform);
  for (DataSetKind kind : kAllDataSets) {
    DataSet ds = GenerateDataSet(kind, cfg.keys, cfg.seed);
    // Zero transaction ops: we time only the load (for the hybrid arm that
    // is delta insertion + background merges, its true bulk-arrival path).
    ObsOptions obs_opt{/*latency=*/false, cfg.counters};
    auto results =
        RunAllIndexes(ds, cfg.keys, 0, spec, cfg.seed, 1, obs_opt,
                      /*include_rowex=*/false, /*include_hybrid=*/true);
    std::vector<std::string> row = {DataSetName(kind)};
    for (const auto& r : results) {
      row.push_back(Fmt(r.run.LoadMops()));
      JsonObject j;
      j.Add("workload", "load")
          .Add("dataset", DataSetName(kind))
          .Add("index", r.index)
          .Add("mops", r.run.LoadMops())
          .Add("failed_ops", r.run.failed_ops);
      if (cfg.counters && r.observers != nullptr) AddCounterFields(j, r);
      json.AddResult(j);
    }
    row.push_back("mops");
    table.PrintRow(row);
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = ParseBenchConfig(argc, argv);
  printf("fig8_performance: reproduces paper Figure 8 (workloads C, E and "
         "insert-only across 4 data sets)\n");
  BenchJson json("fig8_performance");
  json.meta()
      .Add("keys", cfg.keys)
      .Add("ops", cfg.ops)
      .Add("batch", cfg.batch)
      .Add("seed", cfg.seed)
      .Add("latency", cfg.latency)
      .Add("counters", cfg.counters);
  bool all = cfg.filter.empty();
  if (all || cfg.filter == "C") RunWorkloadRow(cfg, 'C', json);
  if (all || cfg.filter == "E") RunWorkloadRow(cfg, 'E', json);
  if (all || cfg.filter == "load") RunInsertOnlyRow(cfg, json);
  json.WriteFile();
  return 0;
}
