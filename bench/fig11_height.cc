// Figure 11: leaf-depth distribution of the pure trie structures — HOT,
// ART, and the binary Patricia trie ("BIN") — for all four data sets.
// Depth = number of (compound) nodes on the path from the root to a value.
//
// Paper-scale observations to compare shape against (50M keys):
//   * HOT's mean depth is lowest for url/email/yago and only loses to ART
//     on uniform random integers (paper: HOT 6.0 vs ART 4.02).
//   * For textual keys HOT reduces mean depth up to 68% vs ART and by an
//     order of magnitude vs the binary Patricia trie.
//   * HOT's worst-case mean is only ~42% above its best case, vs 560%
//     (ART) and 270% (BIN).
//
// Usage: fig11_height [--keys=N]

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/json_out.h"
#include "hot/stats.h"
#include "patricia/patricia.h"

using namespace hot;
using namespace hot::ycsb;
using namespace hot::bench;

namespace {

struct DepthRow {
  double mean = 0;
  unsigned max = 0;
};

template <typename Index, typename InsertFn>
DepthRow MeasureDepth(Index& index, InsertFn&& insert_all) {
  insert_all();
  DepthStats stats;
  index.ForEachLeaf([&](unsigned depth, uint64_t) { stats.Add(depth); });
  return {stats.Mean(), stats.max};
}

void Report(Table& table, BenchJson& json, const char* dataset,
            const char* index, const DepthRow& row) {
  table.PrintRow({dataset, index, Fmt(row.mean), std::to_string(row.max)});
  JsonObject j;
  j.Add("dataset", dataset)
      .Add("index", index)
      .Add("mean_depth", row.mean)
      .Add("max_depth", row.max);
  json.AddResult(j);
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = ParseBenchConfig(argc, argv);
  printf("fig11_height: reproduces paper Figure 11 (leaf depth "
         "distribution, %zu keys)\n\n", cfg.keys);
  BenchJson json("fig11_height");
  json.meta().Add("keys", cfg.keys).Add("seed", cfg.seed);
  Table table({"dataset", "index", "mean-depth", "max-depth"});
  table.PrintHeader();

  double hot_best = 1e9, hot_worst = 0;
  for (DataSetKind kind : kAllDataSets) {
    DataSet ds = GenerateDataSet(kind, cfg.keys, cfg.seed);
    std::vector<uint32_t> order = LoadOrder(ds.size(), cfg.seed);
    if (ds.IsString()) {
      {
        HotTrie<StringTableExtractor> hot{StringTableExtractor(&ds.strings)};
        auto row = MeasureDepth(hot, [&] {
          for (uint32_t i : order) hot.Insert(i);
        });
        Report(table, json, DataSetName(kind), "HOT", row);
        hot_best = std::min(hot_best, row.mean);
        hot_worst = std::max(hot_worst, row.mean);
      }
      {
        ArtTree<StringTableExtractor> art{StringTableExtractor(&ds.strings)};
        auto row = MeasureDepth(art, [&] {
          for (uint32_t i : order) art.Insert(i);
        });
        Report(table, json, DataSetName(kind), "ART", row);
      }
      {
        PatriciaTrie<StringTableExtractor> bin{
            StringTableExtractor(&ds.strings)};
        bin.Clear();
        for (uint32_t i : order) bin.Insert(i);
        DepthStats stats;
        bin.ForEachLeaf(
            [&](size_t depth, uint64_t) { stats.Add(static_cast<unsigned>(depth)); });
        Report(table, json, DataSetName(kind), "BIN", {stats.Mean(), stats.max});
      }
    } else {
      {
        HotTrie<U64KeyExtractor> hot;
        auto row = MeasureDepth(hot, [&] {
          for (uint32_t i : order) hot.Insert(ds.ints[i]);
        });
        Report(table, json, DataSetName(kind), "HOT", row);
        hot_best = std::min(hot_best, row.mean);
        hot_worst = std::max(hot_worst, row.mean);
      }
      {
        ArtTree<U64KeyExtractor> art;
        auto row = MeasureDepth(art, [&] {
          for (uint32_t i : order) art.Insert(ds.ints[i]);
        });
        Report(table, json, DataSetName(kind), "ART", row);
      }
      {
        PatriciaTrie<U64KeyExtractor> bin;
        for (uint32_t i : order) bin.Insert(ds.ints[i]);
        DepthStats stats;
        bin.ForEachLeaf(
            [&](size_t depth, uint64_t) { stats.Add(static_cast<unsigned>(depth)); });
        Report(table, json, DataSetName(kind), "BIN", {stats.Mean(), stats.max});
      }
    }
  }
  printf("\nHOT mean-depth stability: worst/best = %.2f (paper: <= 1.42)\n",
         hot_worst / hot_best);
  json.WriteFile();
  return 0;
}
