// E15: network KV throughput — batched vs scalar GET drain over real
// sockets (DESIGN.md §12, EXPERIMENTS.md E15).
//
// One in-process KvServer is loaded once over the wire, then measured in
// closed-loop GET phases at each connection count, first with the scalar
// drain forced and then with the batched drain (KvServer::set_force_scalar
// flips the mode at runtime so both arms share one loaded index).  The
// driver is a single thread multiplexing all connections round-based: it
// writes a burst of `depth` pipelined GETs to every connection, flushes
// them all, then reads every reply — so one server event-loop iteration
// sees connections*depth pending GETs and the batch scheduler gets the
// window the issue's acceptance ratio is about.  A final mixed phase
// (GET/PUT/DELETE/SCAN) records per-op-type latency percentiles.
//
// Latency is stamped per connection at its burst flush and recorded at
// reply read, so it includes a round's queueing delay; that inflation is
// identical across modes and connection counts read in the same order,
// which is what makes the percentile columns comparable.
//
//   net_throughput [--smoke] [--keys N] [--ops N] [--depth D]
//                  [--workers W] [--shards S] [--scan-len L] [--seed S]
//
// Writes BENCH_net_throughput.json; tools/check_net_gate.py gates the
// batched/scalar ratio at 8 connections.

#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/json_out.h"
#include "common/key.h"
#include "common/rng.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/histogram.h"

namespace {

using hot::KeyRef;
using hot::SplitMix64;
using hot::bench::BenchJson;
using hot::bench::JsonObject;
using hot::net::KvClient;
using hot::net::KvServer;
using hot::net::Reply;
using hot::net::ServerOptions;
using hot::net::ServerStats;
using hot::obs::LatencyHistogram;

struct Args {
  bool smoke = false;
  uint64_t keys = 2'000'000;
  uint64_t ops = 400'000;  // per phase, across all connections
  unsigned depth = 64;     // pipelined GETs per connection per round
  unsigned workers = 1;
  unsigned shards = 16;
  uint32_t scan_len = 16;
  uint64_t seed = 0x9e24;
  std::vector<unsigned> conns = {1, 2, 4, 8, 16};
};

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

size_t MakeKey(uint64_t idx, char* buf) {
  return static_cast<size_t>(
      snprintf(buf, 32, "user%012" PRIu64, idx));
}

[[noreturn]] void Die(const char* fmt, const std::string& detail) {
  fprintf(stderr, fmt, detail.c_str());
  fputc('\n', stderr);
  exit(1);
}

// Subtraction of two snapshots — what one phase did.
ServerStats Delta(const ServerStats& after, const ServerStats& before) {
  ServerStats d;
  d.gets = after.gets - before.gets;
  d.batch_drains = after.batch_drains - before.batch_drains;
  d.batched_gets = after.batched_gets - before.batched_gets;
  d.scalar_drains = after.scalar_drains - before.scalar_drains;
  d.scalar_gets = after.scalar_gets - before.scalar_gets;
  d.max_batch = after.max_batch;  // high-water, not differential
  return d;
}

std::vector<std::unique_ptr<KvClient>> ConnectAll(unsigned n, uint16_t port) {
  std::vector<std::unique_ptr<KvClient>> clients;
  clients.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    auto c = std::make_unique<KvClient>();
    std::string err;
    if (!c->Connect("127.0.0.1", port, &err)) Die("connect: %s", err);
    clients.push_back(std::move(c));
  }
  return clients;
}

// Loads [0, keys) as PUTs through one pipelined connection — the index the
// phases run against is built by the same wire path they measure.
void LoadKeys(uint16_t port, uint64_t keys) {
  KvClient c;
  std::string err;
  if (!c.Connect("127.0.0.1", port, &err)) Die("load connect: %s", err);
  constexpr unsigned kWindow = 256;
  char buf[32];
  uint64_t t0 = NowNs();
  for (uint64_t k = 0; k < keys; ++k) {
    size_t len = MakeKey(k, buf);
    c.SendPut(KeyRef(reinterpret_cast<const uint8_t*>(buf), len), k);
    if (c.outstanding() >= kWindow) {
      if (!c.Flush(&err)) Die("load flush: %s", err);
      while (c.outstanding() > kWindow / 2) {
        Reply r;
        if (!c.ReadReply(&r, &err)) Die("load read: %s", err);
        if (!r.ok()) Die("load PUT failed: %s", r.error);
      }
    }
  }
  if (!c.Flush(&err)) Die("load flush: %s", err);
  while (c.outstanding() > 0) {
    Reply r;
    if (!c.ReadReply(&r, &err)) Die("load read: %s", err);
    if (!r.ok()) Die("load PUT failed: %s", r.error);
  }
  double secs = static_cast<double>(NowNs() - t0) / 1e9;
  printf("loaded %" PRIu64 " keys in %.2fs (%.3f Mops wire PUT)\n", keys,
         secs, static_cast<double>(keys) / secs / 1e6);
}

struct PhaseResult {
  uint64_t ops = 0;
  double secs = 0;
  std::unique_ptr<LatencyHistogram> lat =
      std::make_unique<LatencyHistogram>();
  ServerStats delta;
  double mops() const {
    return secs > 0 ? static_cast<double>(ops) / secs / 1e6 : 0;
  }
};

// Closed-loop uniform GET phase: rounds of depth-wide bursts per
// connection until `target_ops` total GETs have completed.
PhaseResult RunGetPhase(KvServer& server, uint16_t port, unsigned nconns,
                        unsigned depth, uint64_t target_ops, uint64_t keys,
                        uint64_t seed) {
  auto clients = ConnectAll(nconns, port);
  SplitMix64 rng(seed);
  char buf[32];
  std::string err;
  PhaseResult res;

  auto round = [&](bool record) {
    std::vector<uint64_t> flush_ns(nconns);
    for (unsigned ci = 0; ci < nconns; ++ci) {
      for (unsigned d = 0; d < depth; ++d) {
        size_t len = MakeKey(rng.NextBounded(keys), buf);
        clients[ci]->SendGet(
            KeyRef(reinterpret_cast<const uint8_t*>(buf), len));
      }
      if (!clients[ci]->Flush(&err)) Die("get flush: %s", err);
      flush_ns[ci] = NowNs();
    }
    for (unsigned ci = 0; ci < nconns; ++ci) {
      while (clients[ci]->outstanding() > 0) {
        Reply r;
        if (!clients[ci]->ReadReply(&r, &err)) Die("get read: %s", err);
        if (r.status != hot::net::kOk && r.status != hot::net::kNotFound)
          Die("get error: %s", r.error);
        if (record) res.lat->Record(NowNs() - flush_ns[ci]);
      }
    }
  };

  for (int w = 0; w < 3; ++w) round(false);  // warm the mode switch in

  ServerStats before = server.StatsSnapshot();
  uint64_t t0 = NowNs();
  uint64_t per_round = static_cast<uint64_t>(nconns) * depth;
  uint64_t rounds = (target_ops + per_round - 1) / per_round;
  for (uint64_t i = 0; i < rounds; ++i) round(true);
  res.secs = static_cast<double>(NowNs() - t0) / 1e9;
  res.ops = rounds * per_round;
  res.delta = Delta(server.StatsSnapshot(), before);
  return res;
}

// Mixed phase at one connection count, batched mode: per-op-type
// histograms for GET / PUT / DELETE / SCAN under one roof.
struct MixedResult {
  uint64_t total_ops = 0;
  double secs = 0;
  // Indexed by opcode - 1 (kOpGet..kOpScan).
  std::unique_ptr<LatencyHistogram> lat[4] = {
      std::make_unique<LatencyHistogram>(),
      std::make_unique<LatencyHistogram>(),
      std::make_unique<LatencyHistogram>(),
      std::make_unique<LatencyHistogram>()};
  uint64_t counts[4] = {0, 0, 0, 0};
};

MixedResult RunMixedPhase(uint16_t port, unsigned nconns, unsigned depth,
                          uint64_t target_ops, uint64_t keys,
                          uint32_t scan_len, uint64_t seed) {
  auto clients = ConnectAll(nconns, port);
  SplitMix64 rng(seed);
  char buf[32];
  std::string err;
  MixedResult res;
  // id -> opcode per connection (ids are per-client).
  std::vector<std::unordered_map<uint64_t, uint8_t>> optype(nconns);

  uint64_t t0 = NowNs();
  uint64_t per_round = static_cast<uint64_t>(nconns) * depth;
  uint64_t rounds = (target_ops + per_round - 1) / per_round;
  for (uint64_t i = 0; i < rounds; ++i) {
    std::vector<uint64_t> flush_ns(nconns);
    for (unsigned ci = 0; ci < nconns; ++ci) {
      for (unsigned d = 0; d < depth; ++d) {
        uint64_t k = rng.NextBounded(keys);
        size_t len = MakeKey(k, buf);
        KeyRef key(reinterpret_cast<const uint8_t*>(buf), len);
        uint64_t pick = rng.NextBounded(100);
        uint64_t id;
        uint8_t op;
        if (pick < 70) {
          id = clients[ci]->SendGet(key);
          op = hot::net::kOpGet;
        } else if (pick < 85) {
          id = clients[ci]->SendPut(key, k);
          op = hot::net::kOpPut;
        } else if (pick < 95) {
          id = clients[ci]->SendDelete(key);
          op = hot::net::kOpDelete;
        } else {
          id = clients[ci]->SendScan(key, scan_len);
          op = hot::net::kOpScan;
        }
        optype[ci][id] = op;
      }
      if (!clients[ci]->Flush(&err)) Die("mixed flush: %s", err);
      flush_ns[ci] = NowNs();
    }
    for (unsigned ci = 0; ci < nconns; ++ci) {
      while (clients[ci]->outstanding() > 0) {
        Reply r;
        if (!clients[ci]->ReadReply(&r, &err)) Die("mixed read: %s", err);
        if (r.status != hot::net::kOk && r.status != hot::net::kNotFound)
          Die("mixed error: %s", r.error);
        auto it = optype[ci].find(r.id);
        if (it == optype[ci].end()) Die("mixed: unknown reply id%s", "");
        unsigned slot = it->second - 1;
        optype[ci].erase(it);
        res.lat[slot]->Record(NowNs() - flush_ns[ci]);
        res.counts[slot]++;
      }
    }
  }
  res.secs = static_cast<double>(NowNs() - t0) / 1e9;
  res.total_ops = rounds * per_round;
  return res;
}

void AddLatencyColumns(JsonObject& row, const LatencyHistogram& h) {
  row.Add("p50_us", static_cast<double>(h.ValueAtPercentile(50)) / 1e3)
      .Add("p99_us", static_cast<double>(h.ValueAtPercentile(99)) / 1e3)
      .Add("p999_us", static_cast<double>(h.ValueAtPercentile(99.9)) / 1e3)
      .Add("max_us", static_cast<double>(h.max()) / 1e3);
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      a.smoke = true;
      a.keys = 200'000;
      a.ops = 60'000;
      a.conns = {2, 8};
      continue;
    }
    if (i + 1 >= argc) {
      fprintf(stderr, "missing value for %s\n", arg.c_str());
      return 2;
    }
    std::string v = argv[++i];
    if (arg == "--keys") a.keys = std::strtoull(v.c_str(), nullptr, 10);
    else if (arg == "--ops") a.ops = std::strtoull(v.c_str(), nullptr, 10);
    else if (arg == "--depth")
      a.depth = static_cast<unsigned>(std::strtoul(v.c_str(), nullptr, 10));
    else if (arg == "--workers")
      a.workers = static_cast<unsigned>(std::strtoul(v.c_str(), nullptr, 10));
    else if (arg == "--shards")
      a.shards = static_cast<unsigned>(std::strtoul(v.c_str(), nullptr, 10));
    else if (arg == "--scan-len")
      a.scan_len =
          static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    else if (arg == "--seed")
      a.seed = std::strtoull(v.c_str(), nullptr, 10);
    else {
      fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  ServerOptions opt;
  opt.workers = a.workers;
  opt.shards = a.shards;
  KvServer server(opt);
  std::string err;
  if (!server.Start(&err)) Die("server start: %s", err);

  printf("net_throughput: %" PRIu64 " keys, %" PRIu64 " GETs/phase, depth %u"
         "%s\n",
         a.keys, a.ops, a.depth, a.smoke ? " [smoke]" : "");
  LoadKeys(server.port(), a.keys);

  BenchJson json("net_throughput");
  json.meta()
      .Add("keys", a.keys)
      .Add("ops_per_phase", a.ops)
      .Add("depth", a.depth)
      .Add("workers", a.workers)
      .Add("shards", a.shards)
      .Add("smoke", a.smoke);

  printf("%6s %8s %10s %9s %9s %9s %11s\n", "conns", "mode", "mops",
         "p50(us)", "p99(us)", "p999(us)", "batched/scalar");
  double scalar_at_8 = 0, batched_at_8 = 0;
  uint64_t phase_seed = a.seed;
  for (unsigned nc : a.conns) {
    double mops_by_mode[2] = {0, 0};
    for (int batched = 0; batched <= 1; ++batched) {
      server.set_force_scalar(batched == 0);
      PhaseResult r = RunGetPhase(server, server.port(), nc, a.depth, a.ops,
                                  a.keys, phase_seed++);
      mops_by_mode[batched] = r.mops();
      printf("%6u %8s %10.3f %9.1f %9.1f %9.1f %7" PRIu64 "/%-7" PRIu64
             "\n",
             nc, batched ? "batched" : "scalar", r.mops(),
             static_cast<double>(r.lat->ValueAtPercentile(50)) / 1e3,
             static_cast<double>(r.lat->ValueAtPercentile(99)) / 1e3,
             static_cast<double>(r.lat->ValueAtPercentile(99.9)) / 1e3,
             r.delta.batched_gets, r.delta.scalar_gets);
      JsonObject row;
      row.Add("phase", "get")
          .Add("mode", batched ? "batched" : "scalar")
          .Add("conns", nc)
          .Add("depth", a.depth)
          .Add("ops", r.ops)
          .Add("secs", r.secs)
          .Add("mops", r.mops())
          .Add("batched_gets", r.delta.batched_gets)
          .Add("scalar_gets", r.delta.scalar_gets)
          .Add("batch_drains", r.delta.batch_drains);
      AddLatencyColumns(row, *r.lat);
      json.AddResult(row);
    }
    if (nc == 8) {
      scalar_at_8 = mops_by_mode[0];
      batched_at_8 = mops_by_mode[1];
    }
  }

  // Mixed phase at the top connection count, batched mode (the deployed
  // configuration), for per-op-type percentiles.
  server.set_force_scalar(false);
  unsigned mixed_conns = a.conns.back();
  MixedResult m = RunMixedPhase(server.port(), mixed_conns, a.depth, a.ops,
                                a.keys, a.scan_len, phase_seed++);
  static const char* kOpNames[4] = {"get", "put", "delete", "scan"};
  double mixed_mops =
      m.secs > 0 ? static_cast<double>(m.total_ops) / m.secs / 1e6 : 0;
  printf("mixed @%u conns: %.3f Mops over %" PRIu64 " ops\n", mixed_conns,
         mixed_mops, m.total_ops);
  {
    JsonObject row;
    row.Add("phase", "mixed")
        .Add("mode", "batched")
        .Add("op", "all")
        .Add("conns", mixed_conns)
        .Add("ops", m.total_ops)
        .Add("secs", m.secs)
        .Add("mops", mixed_mops);
    json.AddResult(row);
  }
  for (int t = 0; t < 4; ++t) {
    if (m.counts[t] == 0) continue;
    printf("  %-6s %9" PRIu64 " ops  p50 %7.1fus  p99 %7.1fus  p999 "
           "%7.1fus\n",
           kOpNames[t], m.counts[t],
           static_cast<double>(m.lat[t]->ValueAtPercentile(50)) / 1e3,
           static_cast<double>(m.lat[t]->ValueAtPercentile(99)) / 1e3,
           static_cast<double>(m.lat[t]->ValueAtPercentile(99.9)) / 1e3);
    JsonObject row;
    row.Add("phase", "mixed")
        .Add("mode", "batched")
        .Add("op", kOpNames[t])
        .Add("conns", mixed_conns)
        .Add("ops", m.counts[t]);
    AddLatencyColumns(row, *m.lat[t]);
    json.AddResult(row);
  }

  // The acceptance row: batched vs scalar GET throughput at 8 connections.
  if (scalar_at_8 > 0) {
    double ratio = batched_at_8 / scalar_at_8;
    printf("gate: batched %.3f / scalar %.3f Mops at 8 conns = %.2fx\n",
           batched_at_8, scalar_at_8, ratio);
    JsonObject row;
    row.Add("phase", "gate")
        .Add("conns", 8u)
        .Add("scalar_mops", scalar_at_8)
        .Add("batched_mops", batched_at_8)
        .Add("ratio", ratio);
    json.AddResult(row);
  }

  json.WriteFile();
  server.Stop();
  return 0;
}
