// Figure 9: memory consumption of each index structure after loading each
// data set, reported as total bytes, GB-equivalent at paper scale, and
// bytes per key.  Also prints the §6.3 reference lines: the 8 bytes/key
// floor for raw tuple identifiers and the raw key bytes of the two textual
// data sets.
//
// Paper-scale observations to compare shape against (50M keys):
//   * HOT is smallest on every data set: 11.4 - 14.4 bytes/key.
//   * BT is constant (~25 bytes/key equivalent) across data sets.
//   * Masstree/ART grow strongly for long textual keys.
//   * HOT stores both textual data sets in less space than the raw keys.
//
// Usage: fig9_memory [--keys=N]

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/json_out.h"

using namespace hot;
using namespace hot::ycsb;
using namespace hot::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = ParseBenchConfig(argc, argv);
  printf("fig9_memory: reproduces paper Figure 9 (index memory after "
         "loading %zu keys)\n\n", cfg.keys);
  BenchJson json("fig9_memory");
  json.meta().Add("keys", cfg.keys).Add("seed", cfg.seed);
  Table table({"dataset", "index", "total", "bytes/key", "vs-tids",
               "vs-rawkeys"});
  table.PrintHeader();
  const double tid_floor = 8.0;  // 8-byte tuple identifiers (paper: 0.37GB)
  WorkloadSpec spec = YcsbWorkload('C', Distribution::kUniform);
  for (DataSetKind kind : kAllDataSets) {
    DataSet ds = GenerateDataSet(kind, cfg.keys, cfg.seed);
    double raw_key_bytes_per_key =
        static_cast<double>(ds.RawKeyBytes()) / static_cast<double>(ds.size());
    auto results = RunAllIndexes(ds, cfg.keys, 0, spec, cfg.seed);
    for (const auto& r : results) {
      double bpk = static_cast<double>(r.run.memory_bytes) /
                   static_cast<double>(cfg.keys);
      table.PrintRow({DataSetName(kind), r.index,
                      FmtBytes(r.run.memory_bytes), Fmt(bpk, 1),
                      Fmt(bpk / tid_floor, 2) + "x",
                      ds.IsString() ? Fmt(bpk / raw_key_bytes_per_key, 2) + "x"
                                    : std::string("-")});
      JsonObject j;
      j.Add("dataset", DataSetName(kind))
          .Add("index", r.index)
          .Add("total_bytes", r.run.memory_bytes)
          .Add("bytes_per_key", bpk);
      json.AddResult(j);
    }
    if (ds.IsString()) {
      printf("  (raw %s keys: %s total, %.1f bytes/key)\n", DataSetName(kind),
             FmtBytes(ds.RawKeyBytes()).c_str(), raw_key_bytes_per_key);
    }
  }
  printf("\n(8-byte tid floor: %s at this scale)\n",
         FmtBytes(cfg.keys * 8).c_str());
  json.WriteFile();
  return 0;
}
