// Bulk-loading ablation: the height-optimized static build (hot/bulk_load.h,
// the §3.1/§7 Kovács-Kiss direction) versus incremental insertion in
// random order (the paper's load phase) and in sorted order (the
// adversarial case for the dynamic algorithm), plus a thread sweep of the
// parallel bulk build (BiNode-consistent severing, per-worker node-pool
// stripes).  Reports build throughput, mean/max leaf depth, memory per
// key, and post-build lookup throughput.
//
// Every JSON row records `threads` (0 = not a parallel-build arm) and the
// meta block records `hardware_threads`; tools/check_bulkload_gate.py uses
// the latter to decide whether a recorded run was physically capable of
// parallel speedup (single-core recording boxes are exempt, like fig10).
//
// Usage: ablation_bulkload [--keys=N]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/json_out.h"
#include "common/extractors.h"
#include "hot/stats.h"
#include "hot/trie.h"
#include "ycsb/datasets.h"
#include "ycsb/report.h"
#include "ycsb/workload.h"

using namespace hot;
using namespace hot::ycsb;

namespace {

struct Row {
  double build_mops;
  double mean_depth;
  unsigned max_depth;
  double bytes_per_key;
  double lookup_mops;
};

using Clock = std::chrono::steady_clock;

template <typename BuildFn, typename Trie, typename LookupKeys>
Row Measure(Trie& trie, MemoryCounter& counter, size_t n, BuildFn&& build,
            const LookupKeys& lookup_keys) {
  auto t0 = Clock::now();
  build();
  auto t1 = Clock::now();
  DepthStats stats = ComputeDepthStats(trie);
  size_t hits = 0;
  auto t2 = Clock::now();
  for (const auto& k : lookup_keys) hits += trie.Lookup(k.ref()).has_value();
  auto t3 = Clock::now();
  (void)hits;
  return {static_cast<double>(n) /
              std::chrono::duration<double>(t1 - t0).count() / 1e6,
          stats.Mean(), stats.max,
          static_cast<double>(counter.live_bytes()) / static_cast<double>(n),
          static_cast<double>(lookup_keys.size()) /
              std::chrono::duration<double>(t3 - t2).count() / 1e6};
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = ParseBenchConfig(argc, argv);
  printf("ablation_bulkload: height-optimized bulk build vs incremental "
         "insertion (%zu integer keys)\n\n", cfg.keys);
  DataSet ds = GenerateDataSet(DataSetKind::kInteger, cfg.keys, cfg.seed);
  std::vector<uint64_t> sorted = ds.ints;
  std::sort(sorted.begin(), sorted.end());
  std::vector<uint32_t> order = LoadOrder(ds.size(), cfg.seed);
  std::vector<U64Key> lookup_keys;
  lookup_keys.reserve(ds.size());
  for (uint32_t i : order) lookup_keys.emplace_back(ds.ints[i]);

  bench::BenchJson json("ablation_bulkload");
  json.meta()
      .Add("keys", cfg.keys)
      .Add("seed", cfg.seed)
      .Add("hardware_threads",
           static_cast<uint64_t>(std::thread::hardware_concurrency()));

  Table table({"build", "build-mops", "mean-depth", "max-depth", "bytes/key",
               "lookup-mops"});
  table.PrintHeader();

  auto print = [&](const std::string& name, const Row& r, unsigned threads) {
    table.PrintRow({name, Fmt(r.build_mops), Fmt(r.mean_depth),
                    std::to_string(r.max_depth), Fmt(r.bytes_per_key, 1),
                    Fmt(r.lookup_mops)});
    bench::JsonObject j;
    j.Add("build", name)
        .Add("threads", static_cast<uint64_t>(threads))
        .Add("build_mops", r.build_mops)
        .Add("mean_depth", r.mean_depth)
        .Add("max_depth", r.max_depth)
        .Add("bytes_per_key", r.bytes_per_key)
        .Add("lookup_mops", r.lookup_mops);
    json.AddResult(j);
  };

  {
    MemoryCounter counter;
    HotTrie<U64KeyExtractor> trie{U64KeyExtractor(), &counter};
    print("bulk(sorted)",
          Measure(
              trie, counter, ds.size(), [&] { trie.BulkLoad(sorted); },
              lookup_keys),
          0);
  }
  // Parallel-build thread sweep.  t=1 routes through the same entry point
  // but takes the serial path, so it doubles as an overhead check.
  for (unsigned threads : {1u, 2u, 4u, 8u, 16u}) {
    MemoryCounter counter;
    HotTrie<U64KeyExtractor> trie{U64KeyExtractor(), &counter};
    std::string name = "bulk(parallel,t=" + std::to_string(threads) + ")";
    print(name,
          Measure(
              trie, counter, ds.size(),
              [&] { trie.BulkLoad(sorted.data(), sorted.size(), threads); },
              lookup_keys),
          threads);
  }
  {
    MemoryCounter counter;
    HotTrie<U64KeyExtractor> trie{U64KeyExtractor(), &counter};
    print("insert(random)",
          Measure(
              trie, counter, ds.size(),
              [&] {
                for (uint32_t i : order) trie.Insert(ds.ints[i]);
              },
              lookup_keys),
          0);
  }
  {
    MemoryCounter counter;
    HotTrie<U64KeyExtractor> trie{U64KeyExtractor(), &counter};
    print("insert(sorted)",
          Measure(
              trie, counter, ds.size(),
              [&] {
                for (uint64_t v : sorted) trie.Insert(v);
              },
              lookup_keys),
          0);
  }
  printf("\n(bulk fixes the sorted-insertion depth pathology and builds "
         "several times faster; the parallel rows scale with cores — flat "
         "on a single-core recording box)\n");
  json.WriteFile();
  return 0;
}
