// Node-engineering ablation (google-benchmark): isolates the §4
// micro-design choices —
//   * PEXT-based dense partial-key extraction vs bit-by-bit scalar
//     extraction, per mask layout (single / multi-8/16/32),
//   * AVX2 comply search vs scalar comply search, per partial-key width,
//   * full node search (extract + comply) SIMD vs scalar,
//   * PDEP sparse-key recoding vs shift-based scalar recoding,
//   * end-to-end lookups with and without node prefetching (§4.5).

#include <benchmark/benchmark.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "common/extractors.h"
#include "common/rng.h"
#include "hot/logical_node.h"
#include "hot/node_search.h"
#include "hot/trie.h"

namespace hot {
namespace {

// Builds a full 32-entry node whose discriminative bits stress the given
// layout, plus a batch of random probe keys.
struct NodeFixture {
  MemoryCounter counter;
  CountingAllocator alloc{&counter};
  NodeRef node;
  std::vector<std::array<uint8_t, 64>> keys;

  explicit NodeFixture(NodeType want) {
    LogicalNode ln;
    ln.height = 1;
    ln.count = kMaxFanout;
    ln.num_bits = kMaxDiscBits;
    switch (MaskSlots(want)) {
      case 0:  // single mask: bits within one 8-byte window
        for (unsigned i = 0; i < ln.num_bits; ++i) {
          ln.bits[i] = static_cast<uint16_t>(i * 2);
        }
        break;
      case 8:  // 8 distinct bytes, wide apart
        for (unsigned i = 0; i < ln.num_bits; ++i) {
          ln.bits[i] = static_cast<uint16_t>((i / 4) * 64 + (i % 4));
        }
        break;
      case 16:  // 16 distinct bytes
        for (unsigned i = 0; i < ln.num_bits; ++i) {
          ln.bits[i] = static_cast<uint16_t>((i / 2) * 64 + (i % 2));
        }
        break;
      default:  // 31 distinct bytes
        for (unsigned i = 0; i < ln.num_bits; ++i) {
          ln.bits[i] = static_cast<uint16_t>(i * 64 + 3);
        }
        break;
    }
    ln.sparse[0] = 0;
    for (unsigned i = 1; i < ln.count; ++i) {
      ln.sparse[i] = ln.sparse[i - 1] | LogicalNode::RankBit(i - 1);
    }
    for (unsigned i = 0; i < ln.count; ++i) {
      ln.entries[i] = HotEntry::MakeTid(i);
    }
    node = Encode(ln, alloc);

    SplitMix64 rng(7);
    keys.resize(256);
    for (auto& k : keys) {
      for (auto& b : k) b = static_cast<uint8_t>(rng.Next());
    }
  }

  ~NodeFixture() { FreeNode(alloc, node); }

  KeyRef Key(size_t i) const {
    return KeyRef(keys[i % keys.size()].data(), keys[i % keys.size()].size());
  }
};

NodeType TypeFromArg(int64_t arg) {
  switch (arg) {
    case 0:
      return NodeType::kSingleMask32;
    case 1:
      return NodeType::kMultiMask8x32;
    case 2:
      return NodeType::kMultiMask16x32;
    default:
      return NodeType::kMultiMask32x32;
  }
}

void BM_ExtractPext(benchmark::State& state) {
  NodeFixture fx(TypeFromArg(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExtractDensePartialKey(fx.node, fx.Key(i++)));
  }
}
BENCHMARK(BM_ExtractPext)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_ExtractScalar(benchmark::State& state) {
  NodeFixture fx(TypeFromArg(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ExtractDensePartialKeyScalar(fx.node, fx.Key(i++)));
  }
}
BENCHMARK(BM_ExtractScalar)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_ComplySimd(benchmark::State& state) {
  NodeFixture fx(NodeType::kSingleMask32);
  uint32_t dense = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComplyMask(fx.node, dense++));
  }
}
BENCHMARK(BM_ComplySimd);

void BM_ComplyScalar(benchmark::State& state) {
  NodeFixture fx(NodeType::kSingleMask32);
  uint32_t dense = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComplyMaskScalar(fx.node, dense++));
  }
}
BENCHMARK(BM_ComplyScalar);

void BM_SearchNodeSimd(benchmark::State& state) {
  NodeFixture fx(TypeFromArg(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SearchNode(fx.node, fx.Key(i++)));
  }
}
BENCHMARK(BM_SearchNodeSimd)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_SearchNodeScalar(benchmark::State& state) {
  NodeFixture fx(TypeFromArg(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SearchNodeScalar(fx.node, fx.Key(i++)));
  }
}
BENCHMARK(BM_SearchNodeScalar)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_RecodePdep(benchmark::State& state) {
  // The §4.4 PDEP recode: add one discriminative bit to 32 sparse keys.
  SplitMix64 rng(3);
  std::vector<uint32_t> sparse(kMaxFanout);
  for (auto& s : sparse) s = static_cast<uint32_t>(rng.Next());
  uint32_t keep = 0xFFFFBFFF;  // insert a 0 at one position
  for (auto _ : state) {
    uint32_t acc = 0;
    for (uint32_t s : sparse) acc ^= Pdep32(s, keep);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_RecodePdep);

void BM_RecodeScalar(benchmark::State& state) {
  SplitMix64 rng(3);
  std::vector<uint32_t> sparse(kMaxFanout);
  for (auto& s : sparse) s = static_cast<uint32_t>(rng.Next());
  for (auto _ : state) {
    uint32_t acc = 0;
    for (uint32_t s : sparse) {
      uint32_t hi = s & 0xFFFFC000, lo = s & 0x00003FFF;
      acc ^= hi | (lo >> 1);
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_RecodeScalar);

// End-to-end point lookups over a 1M-key trie; the no-prefetch arm
// quantifies the §4.5 optimization.
struct TrieFixture {
  HotTrie<U64KeyExtractor> trie;
  std::vector<uint64_t> lookups;
  TrieFixture() {
    SplitMix64 rng(11);
    for (int i = 0; i < 1000000; ++i) {
      uint64_t v = rng.Next() >> 1;
      trie.Insert(v);
      lookups.push_back(v);
    }
  }
};

void BM_TrieLookup(benchmark::State& state) {
  static TrieFixture fx;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.trie.Lookup(U64Key(fx.lookups[i++ % fx.lookups.size()]).ref()));
  }
}
BENCHMARK(BM_TrieLookup);

// The §4.5 prefetch ablation proper: the same descent loop as
// HotTrie::Lookup with the prefetch compiled in or out, so the no-prefetch
// arm carries no residual branch in the measured loop.
template <bool kPrefetch>
uint64_t DescendRaw(uint64_t root, KeyRef key) {
  uint64_t cur = root;
  while (HotEntry::IsNode(cur)) {
    if constexpr (kPrefetch) PrefetchNode(cur);
    NodeRef node = NodeRef::FromEntry(cur);
    cur = node.values()[SearchNode(node, key)];
  }
  return cur;
}

template <bool kPrefetch>
void BM_TrieLookupArm(benchmark::State& state) {
  static TrieFixture fx;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DescendRaw<kPrefetch>(
        fx.trie.root_entry(),
        U64Key(fx.lookups[i++ % fx.lookups.size()]).ref()));
  }
}
BENCHMARK_TEMPLATE(BM_TrieLookupArm, true)->Name("BM_TrieLookupPrefetch");
BENCHMARK_TEMPLATE(BM_TrieLookupArm, false)->Name("BM_TrieLookupNoPrefetch");

}  // namespace
}  // namespace hot

// Custom main instead of BENCHMARK_MAIN(): default to writing
// BENCH_ablation_node.json (google-benchmark's native JSON format) next to
// the console report, matching the BENCH_<name>.json convention of the
// other bench binaries.  An explicit --benchmark_out= wins.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_ablation_node.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
