// Shard-count ablation for the range-partitioned wrapper
// (ycsb/range_sharded.h): sweeps the shard count over {1, 2, 4, 8, 16, 32,
// 64} with HOT as the per-shard index and measures multi-threaded insert,
// lookup, and workload-E scan throughput plus the shard-size imbalance the
// sampled splitters produce — in two execution modes:
//
//   random  every thread draws uniform random records over the whole key
//           space (the PR-5 driver).  Shards only help by splitting the
//           lock; every thread still walks every shard's cache lines.
//   affine  thread-affine: each worker owns a contiguous shard range
//           (ShardRangeOfThread) and its insert/lookup streams are
//           pre-partitioned to records routing there (PartitionIdsByOwner),
//           with workers pinned (PinThreadToCpu).  No two threads contend
//           on one shard's lock, and each worker's working set is its own
//           1/T slice of the data — the upper trie levels stay cache-warm
//           even when threads share a core (each scheduler quantum reuses
//           the same slice).
//
// Lookups run through the wrapper's batched path in BOTH modes (groups of
// kLookupGroup keys; one route pass + one AMAC descent group per shard
// bucket), so the mode column isolates placement, not batching.
//
// What the sweep shows: 1 shard serializes every writer behind a single
// lock; more shards cut contention until splitter-sampling error or
// fixed per-shard costs dominate.  The imbalance column (max shard size
// over ideal) is the cost signal for sampled splitters.  Scans pay a small
// spillover cost per shard boundary crossed.
//
// Usage: ablation_shards [--keys=N] [--ops=N] [--threads=N] [--seed=N]
//
// Emits BENCH_ablation_shards.json with one row per (dataset, mode, shards).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <numeric>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench/json_out.h"
#include "common/extractors.h"
#include "common/thread.h"
#include "common/rng.h"
#include "hot/trie.h"
#include "ycsb/datasets.h"
#include "ycsb/range_sharded.h"
#include "ycsb/report.h"
#include "ycsb/workload.h"

using namespace hot;
using namespace hot::ycsb;

namespace {

using Clock = std::chrono::steady_clock;

constexpr unsigned kShardCounts[] = {1, 2, 4, 8, 16, 32, 64};
constexpr size_t kLookupGroup = 64;  // keys per batched-lookup flush

std::atomic<uint64_t> benchmark_sink{0};

struct SweepResult {
  double insert_mops;
  double lookup_mops;
  double scan_mops;  // workload-E mix operations per second
  double imbalance;  // max shard size / ideal (size / shards)
  uint64_t empty_shards;
};

// One barrier-synchronized parallel phase; returns elapsed seconds.  The
// waits yield: with more workers than cores a spinning barrier burns a
// scheduler quantum per straggler before the phase even starts.
template <typename Body>
double RunParallel(unsigned threads, bool pin, Body&& body) {
  std::atomic<unsigned> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      if (pin) PinThreadToCpu(t);
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      body(t);
    });
  }
  while (ready.load(std::memory_order_acquire) != threads) {
    std::this_thread::yield();
  }
  auto t0 = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// `value_of(i)` maps record id -> stored tid payload; `with_key(i, fn)`
// materializes record i's key and invokes fn(KeyRef) before the backing
// storage (a U64Key on the stack for integers) goes away; `key_batch(ids,
// keys)` fills keys[j] with record ids[j]'s KeyRef, all views valid until
// the calling thread's next key_batch call.
template <typename MakeIndex, typename ValueOf, typename WithKey,
          typename KeyBatch>
SweepResult RunSweep(const DataSet& ds, unsigned shards, unsigned threads,
                     size_t lookups, size_t scan_ops, bool affine,
                     MakeIndex make_index, ValueOf&& value_of,
                     WithKey&& with_key, KeyBatch&& key_batch) {
  auto idx = make_index(shards);
  const size_t n = ds.size();
  const size_t load_n = n - n / 16;  // tail reserved for workload-E inserts

  // Affine mode: pre-partition the insert and lookup streams so worker t
  // only ever touches shards in its contiguous range.  The lookup id
  // sequence is the same deterministic uniform draw the random mode makes,
  // just dealt to the owning workers.
  std::vector<std::vector<uint32_t>> insert_streams, lookup_streams;
  if (affine) {
    auto shard_of = [&](uint32_t id) {
      unsigned s = 0;
      with_key(id, [&](KeyRef key) { s = idx.ShardOf(key); });
      return s;
    };
    std::vector<uint32_t> ids(load_n);
    std::iota(ids.begin(), ids.end(), 0u);
    insert_streams =
        PartitionIdsByOwner(ids, idx.shard_count(), threads, shard_of);
    ids.resize(lookups);
    SplitMix64 rng(31);
    for (auto& id : ids) id = static_cast<uint32_t>(rng.NextBounded(load_n));
    lookup_streams =
        PartitionIdsByOwner(ids, idx.shard_count(), threads, shard_of);
  }

  double insert_s = RunParallel(threads, affine, [&](unsigned t) {
    if (affine) {
      for (uint32_t i : insert_streams[t]) idx.Insert(value_of(i));
    } else {
      size_t lo = load_n * t / threads, hi = load_n * (t + 1) / threads;
      for (size_t i = lo; i < hi; ++i) idx.Insert(value_of(i));
    }
  });

  double lookup_s = RunParallel(threads, affine, [&](unsigned t) {
    std::vector<uint32_t> group;
    group.reserve(kLookupGroup);
    std::vector<KeyRef> keys(kLookupGroup);
    std::vector<std::optional<uint64_t>> found(kLookupGroup);
    uint64_t hits = 0;
    auto flush = [&] {
      if (group.empty()) return;
      key_batch(group, keys);
      idx.LookupBatch(std::span<const KeyRef>(keys.data(), group.size()),
                      std::span<std::optional<uint64_t>>(found.data(),
                                                         group.size()));
      for (size_t j = 0; j < group.size(); ++j) hits += found[j].has_value();
      group.clear();
    };
    if (affine) {
      for (uint32_t id : lookup_streams[t]) {
        group.push_back(id);
        if (group.size() == kLookupGroup) flush();
      }
    } else {
      SplitMix64 rng(31 + t);
      for (size_t i = 0; i < lookups / threads; ++i) {
        group.push_back(static_cast<uint32_t>(rng.NextBounded(load_n)));
        if (group.size() == kLookupGroup) flush();
      }
    }
    flush();
    benchmark_sink.fetch_add(hits, std::memory_order_relaxed);
  });

  double scan_s = RunParallel(threads, affine, [&](unsigned t) {
    SplitMix64 rng(67 + t);
    size_t fresh = n - load_n;
    size_t next = load_n + fresh * t / threads;
    size_t end = load_n + fresh * (t + 1) / threads;
    uint64_t sink = 0;
    for (size_t i = 0; i < scan_ops / threads; ++i) {
      if (rng.NextBounded(100) < 5 && next < end) {
        idx.Insert(value_of(next++));
      } else {
        size_t len = 1 + rng.NextBounded(100);
        with_key(rng.NextBounded(load_n), [&](KeyRef key) {
          idx.ScanFrom(key, len, [&](uint64_t v) { sink += v; });
        });
      }
    }
    benchmark_sink.fetch_add(sink, std::memory_order_relaxed);
  });

  size_t max_shard = 0;
  uint64_t empty = 0;
  for (unsigned s = 0; s < idx.shard_count(); ++s) {
    size_t sz = idx.shard_size(s);
    max_shard = std::max(max_shard, sz);
    if (sz == 0) ++empty;
  }
  double ideal = static_cast<double>(idx.size()) / idx.shard_count();
  return {static_cast<double>(load_n) / insert_s / 1e6,
          static_cast<double>(lookups) / lookup_s / 1e6,
          static_cast<double>(scan_ops) / scan_s / 1e6,
          ideal > 0 ? static_cast<double>(max_shard) / ideal : 1.0, empty};
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = ParseBenchConfig(argc, argv);
  // The regression hid below 8 threads: default past it, and past the
  // hardware, so the oversubscribed case is always exercised.
  unsigned threads = cfg.threads != 0
                         ? cfg.threads
                         : std::max(8u, std::thread::hardware_concurrency());
  const size_t scan_ops = std::max<size_t>(cfg.ops / 16, 1000);
  printf("ablation_shards: range-sharded HOT, shard count sweep "
         "(%zu keys, %zu lookups, %zu workload-E ops, %u threads, "
         "modes random+affine)\n\n",
         cfg.keys, cfg.ops, scan_ops, threads);

  bench::BenchJson json("ablation_shards");
  json.meta()
      .Add("keys", cfg.keys)
      .Add("ops", cfg.ops)
      .Add("scan_ops", scan_ops)
      .Add("threads", threads)
      .Add("lookup_group", static_cast<uint64_t>(kLookupGroup))
      .Add("seed", cfg.seed);

  Table table({"dataset", "mode", "shards", "insert-mops", "lookup-mops",
               "scanE-mops", "imbalance", "empty"});
  table.PrintHeader();

  auto emit = [&](const char* dataset, const char* mode, unsigned shards,
                  const SweepResult& r) {
    table.PrintRow({dataset, mode, std::to_string(shards), Fmt(r.insert_mops),
                    Fmt(r.lookup_mops), Fmt(r.scan_mops), Fmt(r.imbalance),
                    std::to_string(r.empty_shards)});
    bench::JsonObject j;
    j.Add("dataset", dataset)
        .Add("mode", mode)
        .Add("shards", shards)
        .Add("insert_mops", r.insert_mops)
        .Add("lookup_mops", r.lookup_mops)
        .Add("scan_mops", r.scan_mops)
        .Add("imbalance", r.imbalance)
        .Add("empty_shards", r.empty_shards);
    json.AddResult(j);
  };

  {
    DataSet ds = GenerateDataSet(DataSetKind::kInteger, cfg.keys, cfg.seed);
    for (bool affine : {false, true}) {
      for (unsigned shards : kShardCounts) {
        SweepResult r = RunSweep(
            ds, shards, threads, cfg.ops, scan_ops, affine,
            [&](unsigned s) {
              return RangeShardedIndex<HotTrie<U64KeyExtractor>,
                                       U64KeyExtractor>(
                  SampledSplitters(ds, s), U64KeyExtractor());
            },
            [&](size_t i) { return ds.ints[i]; },
            [&](size_t i, auto&& fn) {
              U64Key key(ds.ints[i]);
              fn(key.ref());
            },
            [&](const std::vector<uint32_t>& ids, std::vector<KeyRef>& keys) {
              static thread_local std::vector<uint8_t> bytes;
              bytes.resize(ids.size() * 8);
              for (size_t j = 0; j < ids.size(); ++j) {
                EncodeU64(ds.ints[ids[j]], &bytes[j * 8]);
                keys[j] = KeyRef(&bytes[j * 8], 8);
              }
            });
        emit("integer", affine ? "affine" : "random", shards, r);
      }
    }
  }
  {
    DataSet ds = GenerateDataSet(DataSetKind::kUrl, cfg.keys, cfg.seed);
    StringTableExtractor ex(&ds.strings);
    for (bool affine : {false, true}) {
      for (unsigned shards : kShardCounts) {
        SweepResult r = RunSweep(
            ds, shards, threads, cfg.ops, scan_ops, affine,
            [&](unsigned s) {
              return RangeShardedIndex<HotTrie<StringTableExtractor>,
                                       StringTableExtractor>(
                  SampledSplitters(ds, s), ex);
            },
            [&](size_t i) { return static_cast<uint64_t>(i); },
            [&](size_t i, auto&& fn) { fn(TerminatedView(ds.strings[i])); },
            [&](const std::vector<uint32_t>& ids, std::vector<KeyRef>& keys) {
              for (size_t j = 0; j < ids.size(); ++j) {
                keys[j] = TerminatedView(ds.strings[ids[j]]);
              }
            });
        emit("url", affine ? "affine" : "random", shards, r);
      }
    }
  }
  json.WriteFile();
  return 0;
}
