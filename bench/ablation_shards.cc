// Shard-count ablation for the range-partitioned wrapper
// (ycsb/range_sharded.h): sweeps the shard count over {1, 2, 4, 8, 16, 32,
// 64} with HOT as the per-shard index and measures multi-threaded insert,
// lookup, and workload-E scan throughput plus the shard-size imbalance the
// sampled splitters produce.
//
// What the sweep shows: 1 shard serializes every writer behind a single
// lock (the degenerate case — a plain global-lock index); more shards cut
// lock contention roughly linearly until either the thread count or the
// splitter-sampling error dominates.  The imbalance column (max shard size
// over ideal) is the cost signal: equi-depth sampling keeps it near 1 for
// uniform integers but degrades with very many shards on skewed string
// sets, and an overloaded shard re-serializes the writers that hash
// sharding would have spread out.  Scans pay a small fixed spillover cost
// per shard boundary crossed, so scan throughput favors fewer shards at a
// fixed scan length.
//
// Usage: ablation_shards [--keys=N] [--ops=N] [--threads=N] [--seed=N]
//
// Emits BENCH_ablation_shards.json with one row per (dataset, shards).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/json_out.h"
#include "common/extractors.h"
#include "common/locks.h"
#include "common/rng.h"
#include "hot/trie.h"
#include "ycsb/datasets.h"
#include "ycsb/range_sharded.h"
#include "ycsb/report.h"
#include "ycsb/workload.h"

using namespace hot;
using namespace hot::ycsb;

namespace {

using Clock = std::chrono::steady_clock;

constexpr unsigned kShardCounts[] = {1, 2, 4, 8, 16, 32, 64};

std::atomic<uint64_t> benchmark_sink{0};

struct SweepResult {
  double insert_mops;
  double lookup_mops;
  double scan_mops;  // workload-E mix operations per second
  double imbalance;  // max shard size / ideal (size / shards)
  uint64_t empty_shards;
};

// One barrier-synchronized parallel phase; returns elapsed seconds.
template <typename Body>
double RunParallel(unsigned threads, Body&& body) {
  std::atomic<unsigned> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ++ready;
      while (!go) CpuRelax();
      body(t);
    });
  }
  while (ready != threads) CpuRelax();
  auto t0 = Clock::now();
  go = true;
  for (auto& w : workers) w.join();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// `value_of(i)` maps record id -> stored tid payload; `with_key(i, fn)`
// materializes record i's key and invokes fn(KeyRef) before the backing
// storage (a U64Key on the stack for integers) goes away.
template <typename MakeIndex, typename ValueOf, typename WithKey>
SweepResult RunSweep(const DataSet& ds, unsigned shards, unsigned threads,
                     size_t lookups, size_t scan_ops, MakeIndex make_index,
                     ValueOf&& value_of, WithKey&& with_key) {
  auto idx = make_index(shards);
  const size_t n = ds.size();
  const size_t load_n = n - n / 16;  // tail reserved for workload-E inserts

  double insert_s = RunParallel(threads, [&](unsigned t) {
    size_t lo = load_n * t / threads, hi = load_n * (t + 1) / threads;
    for (size_t i = lo; i < hi; ++i) idx.Insert(value_of(i));
  });
  double lookup_s = RunParallel(threads, [&](unsigned t) {
    SplitMix64 rng(31 + t);
    for (size_t i = 0; i < lookups / threads; ++i) {
      with_key(rng.NextBounded(load_n),
               [&](KeyRef key) { idx.Lookup(key); });
    }
  });
  double scan_s = RunParallel(threads, [&](unsigned t) {
    SplitMix64 rng(67 + t);
    size_t fresh = n - load_n;
    size_t next = load_n + fresh * t / threads;
    size_t end = load_n + fresh * (t + 1) / threads;
    uint64_t sink = 0;
    for (size_t i = 0; i < scan_ops / threads; ++i) {
      if (rng.NextBounded(100) < 5 && next < end) {
        idx.Insert(value_of(next++));
      } else {
        size_t len = 1 + rng.NextBounded(100);
        with_key(rng.NextBounded(load_n), [&](KeyRef key) {
          idx.ScanFrom(key, len, [&](uint64_t v) { sink += v; });
        });
      }
    }
    benchmark_sink.fetch_add(sink, std::memory_order_relaxed);
  });

  size_t max_shard = 0;
  uint64_t empty = 0;
  for (unsigned s = 0; s < idx.shard_count(); ++s) {
    size_t sz = idx.shard_size(s);
    max_shard = std::max(max_shard, sz);
    if (sz == 0) ++empty;
  }
  double ideal = static_cast<double>(idx.size()) / idx.shard_count();
  return {static_cast<double>(load_n) / insert_s / 1e6,
          static_cast<double>(lookups) / lookup_s / 1e6,
          static_cast<double>(scan_ops) / scan_s / 1e6,
          ideal > 0 ? static_cast<double>(max_shard) / ideal : 1.0, empty};
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = ParseBenchConfig(argc, argv);
  unsigned threads = cfg.threads != 0
                         ? cfg.threads
                         : std::max(1u, std::thread::hardware_concurrency());
  const size_t scan_ops = std::max<size_t>(cfg.ops / 16, 1000);
  printf("ablation_shards: range-sharded HOT, shard count sweep "
         "(%zu keys, %zu lookups, %zu workload-E ops, %u threads)\n\n",
         cfg.keys, cfg.ops, scan_ops, threads);

  bench::BenchJson json("ablation_shards");
  json.meta()
      .Add("keys", cfg.keys)
      .Add("ops", cfg.ops)
      .Add("scan_ops", scan_ops)
      .Add("threads", threads)
      .Add("seed", cfg.seed);

  Table table({"dataset", "shards", "insert-mops", "lookup-mops", "scanE-mops",
               "imbalance", "empty"});
  table.PrintHeader();

  auto emit = [&](const char* dataset, unsigned shards, const SweepResult& r) {
    table.PrintRow({dataset, std::to_string(shards), Fmt(r.insert_mops),
                    Fmt(r.lookup_mops), Fmt(r.scan_mops), Fmt(r.imbalance),
                    std::to_string(r.empty_shards)});
    bench::JsonObject j;
    j.Add("dataset", dataset)
        .Add("shards", shards)
        .Add("insert_mops", r.insert_mops)
        .Add("lookup_mops", r.lookup_mops)
        .Add("scan_mops", r.scan_mops)
        .Add("imbalance", r.imbalance)
        .Add("empty_shards", r.empty_shards);
    json.AddResult(j);
  };

  {
    DataSet ds = GenerateDataSet(DataSetKind::kInteger, cfg.keys, cfg.seed);
    for (unsigned shards : kShardCounts) {
      SweepResult r = RunSweep(
          ds, shards, threads, cfg.ops, scan_ops,
          [&](unsigned s) {
            return RangeShardedIndex<HotTrie<U64KeyExtractor>,
                                     U64KeyExtractor>(SampledSplitters(ds, s),
                                                      U64KeyExtractor());
          },
          [&](size_t i) { return ds.ints[i]; },
          [&](size_t i, auto&& fn) {
            U64Key key(ds.ints[i]);
            fn(key.ref());
          });
      emit("integer", shards, r);
    }
  }
  {
    DataSet ds = GenerateDataSet(DataSetKind::kUrl, cfg.keys, cfg.seed);
    StringTableExtractor ex(&ds.strings);
    for (unsigned shards : kShardCounts) {
      SweepResult r = RunSweep(
          ds, shards, threads, cfg.ops, scan_ops,
          [&](unsigned s) {
            return RangeShardedIndex<HotTrie<StringTableExtractor>,
                                     StringTableExtractor>(
                SampledSplitters(ds, s), ex);
          },
          [&](size_t i) { return static_cast<uint64_t>(i); },
          [&](size_t i, auto&& fn) { fn(TerminatedView(ds.strings[i])); });
      emit("url", shards, r);
    }
  }
  json.WriteFile();
  return 0;
}
