// Shared helpers for the figure-regeneration benches: run one benchmark
// configuration across the four evaluated index structures (HOT, ART,
// Masstree, BT — §6.1) on one of the four data sets, and print rows in the
// paper's layout.

#ifndef HOT_BENCH_BENCH_UTIL_H_
#define HOT_BENCH_BENCH_UTIL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "art/art.h"
#include "bench/json_out.h"
#include "btree/btree.h"
#include "hot/hybrid.h"
#include "hot/rowex.h"
#include "hot/trie.h"
#include "masstree/masstree.h"
#include "obs/histogram.h"
#include "obs/perf_counters.h"
#include "ycsb/adapters.h"
#include "ycsb/datasets.h"
#include "ycsb/report.h"
#include "ycsb/workload.h"

namespace hot {
namespace bench {

struct IndexResult {
  std::string index;
  ycsb::RunResult run;
  // Set when the run was observed (--latency / --counters); histograms make
  // RunObservers non-copyable, hence the indirection.
  std::unique_ptr<ycsb::RunObservers> observers;
  bool hw_counters = false;          // txn-phase hardware counters valid
  std::string counter_fallback;      // why not, when they are not
};

// Observation knobs threaded from the driver flags (ycsb::BenchConfig) into
// each per-index run.
struct ObsOptions {
  bool latency = false;
  bool counters = false;
};

// Runs (load `load_n` keys, then `ops` transactions of `spec`) for each of
// the evaluated index structures on `ds`.  Results in paper order:
// HOT, ART, Masstree, BT — plus ROWEX (the concurrent HOT) between HOT and
// ART when `include_rowex` is set (bench/table3_counters.cc covers all
// five), and HOT(hybrid) (the static/delta index with background merge,
// hot/hybrid.h) in the same slot when `include_hybrid` is set.  The hybrid
// arm loads through its delta + merge path and is quiesced (delta fully
// drained) before the transaction phase — see RunBenchmark.  `batch` > 1
// groups reads through the adapters' MultiLookup hook (HOT runs its MLP
// batched lookup, the others loop).
inline std::vector<IndexResult> RunAllIndexes(const ycsb::DataSet& ds,
                                              size_t load_n, size_t ops,
                                              const ycsb::WorkloadSpec& spec,
                                              uint64_t seed,
                                              unsigned batch = 1,
                                              const ObsOptions& opt = {},
                                              bool include_rowex = false,
                                              bool include_hybrid = false) {
  std::vector<IndexResult> out;
  auto run_one = [&](const char* name, auto make_adapter) {
    auto adapter = make_adapter();
    IndexResult r;
    r.index = name;
    std::unique_ptr<obs::PerfCounterGroup> group;
    if (opt.latency || opt.counters) {
      r.observers = std::make_unique<ycsb::RunObservers>();
      if (opt.counters) {
        group = std::make_unique<obs::PerfCounterGroup>();
        r.observers->counters = group.get();
        r.hw_counters = group->hw_available();
        r.counter_fallback = group->fallback_reason();
      }
    }
    r.run = ycsb::RunBenchmark(*adapter, ds, load_n, ops, spec, seed, batch,
                               r.observers.get());
    if (r.observers != nullptr) r.observers->counters = nullptr;  // group dies
    out.push_back(std::move(r));
  };
  if (ds.IsString()) {
    run_one("HOT", [&] {
      return std::make_unique<ycsb::StringDataSetAdapter<HotTrie>>(&ds);
    });
    if (include_rowex) {
      run_one("ROWEX", [&] {
        return std::make_unique<ycsb::StringDataSetAdapter<RowexHotTrie>>(&ds);
      });
    }
    if (include_hybrid) {
      run_one("HOT(hybrid)", [&] {
        return std::make_unique<ycsb::StringDataSetAdapter<HybridHotIndex>>(
            &ds);
      });
    }
    run_one("ART", [&] {
      return std::make_unique<ycsb::StringDataSetAdapter<ArtTree>>(&ds);
    });
    run_one("Masstree", [&] {
      return std::make_unique<ycsb::StringDataSetAdapter<Masstree>>(&ds);
    });
    run_one("BT", [&] {
      return std::make_unique<ycsb::StringDataSetAdapter<BTree>>(&ds);
    });
  } else {
    run_one("HOT", [&] {
      return std::make_unique<ycsb::IntDataSetAdapter<HotTrie>>(&ds);
    });
    if (include_rowex) {
      run_one("ROWEX", [&] {
        return std::make_unique<ycsb::IntDataSetAdapter<RowexHotTrie>>(&ds);
      });
    }
    if (include_hybrid) {
      run_one("HOT(hybrid)", [&] {
        return std::make_unique<ycsb::IntDataSetAdapter<HybridHotIndex>>(&ds);
      });
    }
    run_one("ART", [&] {
      return std::make_unique<ycsb::IntDataSetAdapter<ArtTree>>(&ds);
    });
    run_one("Masstree", [&] {
      return std::make_unique<ycsb::IntDataSetAdapter<Masstree>>(&ds);
    });
    run_one("BT", [&] {
      return std::make_unique<ycsb::IntDataSetAdapter<BTree>>(&ds);
    });
  }
  return out;
}

// Nanoseconds at percentile `p` of a tick-valued histogram.
inline double LatNs(const obs::LatencyHistogram& h, double p) {
  return obs::TicksToNanos(h.ValueAtPercentile(p));
}

// Folds the observed latency histograms into a flat JSON row:
// lat_<op>_{count,p50_ns,p90_ns,p99_ns,p999_ns,max_ns,mean_ns}.
inline void AddLatencyFields(JsonObject& row, const ycsb::RunObservers& o) {
  o.ForEachHistogram([&](const char* op, const obs::LatencyHistogram& h) {
    std::string p = std::string("lat_") + op + "_";
    row.Add(p + "count", h.count());
    row.Add(p + "p50_ns", LatNs(h, 50));
    row.Add(p + "p90_ns", LatNs(h, 90));
    row.Add(p + "p99_ns", LatNs(h, 99));
    row.Add(p + "p999_ns", LatNs(h, 99.9));
    row.Add(p + "max_ns", obs::TicksToNanos(h.max()));
    row.Add(p + "mean_ns",
            h.Mean() * 1e9 / obs::TicksPerSecond());
  });
}

// Folds the per-phase hardware samples into a flat JSON row as Table-3
// style per-operation rates.  `hw_valid` false means the run fell back to
// rdtsc-only (perf_event_open denied or HOT_NO_PERF set) and only the
// counts are meaningful — the flag is emitted so downstream consumers never
// mistake fallback zeros for perfect IPC.
inline void AddCounterFields(JsonObject& row, const IndexResult& r) {
  const ycsb::RunObservers& o = *r.observers;
  row.Add("hw_counters", r.hw_counters);
  if (!r.counter_fallback.empty()) {
    row.Add("counter_fallback", r.counter_fallback);
  }
  auto per_op = [](uint64_t v, size_t n) {
    return n == 0 ? 0.0 : static_cast<double>(v) / static_cast<double>(n);
  };
  auto add_phase = [&](const char* phase, const obs::CounterSample& s,
                       size_t n_ops) {
    std::string p = std::string(phase) + "_";
    if (!s.hw_valid) return;
    row.Add(p + "cycles_per_op", per_op(s.cycles, n_ops));
    row.Add(p + "instr_per_op", per_op(s.instructions, n_ops));
    row.Add(p + "llc_miss_per_op", per_op(s.llc_misses, n_ops));
    row.Add(p + "branch_miss_per_op", per_op(s.branch_misses, n_ops));
    row.Add(p + "dtlb_miss_per_op", per_op(s.dtlb_misses, n_ops));
    row.Add(p + "ipc", s.cycles == 0
                           ? 0.0
                           : static_cast<double>(s.instructions) /
                                 static_cast<double>(s.cycles));
  };
  add_phase("load", o.load_sample, r.run.load_ops);
  add_phase("txn", o.txn_sample, r.run.txn_ops);
}

// Human-readable latency lines under the throughput table (--latency).
inline void PrintLatencySummary(const IndexResult& r) {
  if (r.observers == nullptr) return;
  r.observers->ForEachHistogram(
      [&](const char* op, const obs::LatencyHistogram& h) {
        printf("    %-9s %-7s p50=%7.0fns p90=%7.0fns p99=%7.0fns "
               "p99.9=%8.0fns max=%9.0fns (%llu ops)\n",
               r.index.c_str(), op, LatNs(h, 50), LatNs(h, 90), LatNs(h, 99),
               LatNs(h, 99.9), obs::TicksToNanos(h.max()),
               static_cast<unsigned long long>(h.count()));
      });
}

inline const ycsb::DataSetKind kAllDataSets[] = {
    ycsb::DataSetKind::kUrl, ycsb::DataSetKind::kEmail,
    ycsb::DataSetKind::kYago, ycsb::DataSetKind::kInteger};

// Number of records to pre-generate so that insert-bearing workloads never
// run out: load keys + the expected insert count with head room.
inline size_t CapacityFor(size_t keys, size_t ops,
                          const ycsb::WorkloadSpec& spec) {
  return keys + static_cast<size_t>(static_cast<double>(ops) * spec.insert *
                                    1.2) +
         16;
}

}  // namespace bench
}  // namespace hot

#endif  // HOT_BENCH_BENCH_UTIL_H_
