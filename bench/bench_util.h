// Shared helpers for the figure-regeneration benches: run one benchmark
// configuration across the four evaluated index structures (HOT, ART,
// Masstree, BT — §6.1) on one of the four data sets, and print rows in the
// paper's layout.

#ifndef HOT_BENCH_BENCH_UTIL_H_
#define HOT_BENCH_BENCH_UTIL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "art/art.h"
#include "btree/btree.h"
#include "hot/trie.h"
#include "masstree/masstree.h"
#include "ycsb/adapters.h"
#include "ycsb/datasets.h"
#include "ycsb/report.h"
#include "ycsb/workload.h"

namespace hot {
namespace bench {

struct IndexResult {
  std::string index;
  ycsb::RunResult run;
};

// Runs (load `load_n` keys, then `ops` transactions of `spec`) for each of
// the four index structures on `ds`.  Results in paper order:
// HOT, ART, Masstree, BT.  `batch` > 1 groups reads through the adapters'
// MultiLookup hook (HOT runs its MLP batched lookup, the others loop).
inline std::vector<IndexResult> RunAllIndexes(const ycsb::DataSet& ds,
                                              size_t load_n, size_t ops,
                                              const ycsb::WorkloadSpec& spec,
                                              uint64_t seed,
                                              unsigned batch = 1) {
  std::vector<IndexResult> out;
  auto run_one = [&](const char* name, auto make_adapter) {
    auto adapter = make_adapter();
    out.push_back({name, ycsb::RunBenchmark(*adapter, ds, load_n, ops, spec,
                                            seed, batch)});
  };
  if (ds.IsString()) {
    run_one("HOT", [&] {
      return std::make_unique<ycsb::StringDataSetAdapter<HotTrie>>(&ds);
    });
    run_one("ART", [&] {
      return std::make_unique<ycsb::StringDataSetAdapter<ArtTree>>(&ds);
    });
    run_one("Masstree", [&] {
      return std::make_unique<ycsb::StringDataSetAdapter<Masstree>>(&ds);
    });
    run_one("BT", [&] {
      return std::make_unique<ycsb::StringDataSetAdapter<BTree>>(&ds);
    });
  } else {
    run_one("HOT", [&] {
      return std::make_unique<ycsb::IntDataSetAdapter<HotTrie>>(&ds);
    });
    run_one("ART", [&] {
      return std::make_unique<ycsb::IntDataSetAdapter<ArtTree>>(&ds);
    });
    run_one("Masstree", [&] {
      return std::make_unique<ycsb::IntDataSetAdapter<Masstree>>(&ds);
    });
    run_one("BT", [&] {
      return std::make_unique<ycsb::IntDataSetAdapter<BTree>>(&ds);
    });
  }
  return out;
}

inline const ycsb::DataSetKind kAllDataSets[] = {
    ycsb::DataSetKind::kUrl, ycsb::DataSetKind::kEmail,
    ycsb::DataSetKind::kYago, ycsb::DataSetKind::kInteger};

// Number of records to pre-generate so that insert-bearing workloads never
// run out: load keys + the expected insert count with head room.
inline size_t CapacityFor(size_t keys, size_t ops,
                          const ycsb::WorkloadSpec& spec) {
  return keys + static_cast<size_t>(static_cast<double>(ops) * spec.insert *
                                    1.2) +
         16;
}

}  // namespace bench
}  // namespace hot

#endif  // HOT_BENCH_BENCH_UTIL_H_
