// Appendix A: the full benchmark matrix — all six YCSB workloads (A-F) on
// all four data sets, under both the uniform and the Zipfian request
// distribution (workload D always uses "latest", per YCSB).  Together with
// fig8_performance this regenerates every bar of the paper's Figure 8 and
// Figure 12 (appendix).
//
// Usage: appendix_a [--keys=N] [--ops=N] [--workload=A|B|C|D|E|F]

#include <cstdio>

#include "bench/bench_util.h"

using namespace hot;
using namespace hot::ycsb;
using namespace hot::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = ParseBenchConfig(argc, argv);
  printf("appendix_a: reproduces paper Appendix A (all workloads x data "
         "sets x distributions), %zu keys, %zu ops\n", cfg.keys, cfg.ops);
  Table table({"workload", "dist", "dataset", "HOT", "ART", "Masstree", "BT"});
  table.PrintHeader();
  for (char w : {'A', 'B', 'C', 'D', 'E', 'F'}) {
    if (!cfg.filter.empty() && cfg.filter[0] != w) continue;
    for (Distribution dist : {Distribution::kUniform, Distribution::kZipfian}) {
      WorkloadSpec spec = YcsbWorkload(w, dist);
      // Workload D is latest-distributed by definition; running it twice
      // would duplicate rows.
      if (w == 'D' && dist == Distribution::kZipfian) continue;
      for (DataSetKind kind : kAllDataSets) {
        DataSet ds = GenerateDataSet(kind, CapacityFor(cfg.keys, cfg.ops, spec),
                                     cfg.seed);
        auto results = RunAllIndexes(ds, cfg.keys, cfg.ops, spec, cfg.seed);
        std::vector<std::string> row = {std::string(1, w),
                                        DistributionName(spec.dist),
                                        DataSetName(kind)};
        for (const auto& r : results) row.push_back(Fmt(r.run.TxnMops()));
        table.PrintRow(row);
      }
    }
  }
  return 0;
}
