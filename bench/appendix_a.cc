// Appendix A: the full benchmark matrix — all six YCSB workloads (A-F) on
// all four data sets, under both the uniform and the Zipfian request
// distribution (workload D always uses "latest", per YCSB).  Together with
// fig8_performance this regenerates every bar of the paper's Figure 8 and
// Figure 12 (appendix).
//
// Usage: appendix_a [--keys=N] [--ops=N] [--workload=A|B|C|D|E|F]

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/json_out.h"

using namespace hot;
using namespace hot::ycsb;
using namespace hot::bench;

int main(int argc, char** argv) {
  BenchConfig cfg = ParseBenchConfig(argc, argv);
  printf("appendix_a: reproduces paper Appendix A (all workloads x data "
         "sets x distributions), %zu keys, %zu ops, batch %u\n",
         cfg.keys, cfg.ops, cfg.batch);
  BenchJson json("appendix_a");
  json.meta()
      .Add("keys", cfg.keys)
      .Add("ops", cfg.ops)
      .Add("batch", cfg.batch)
      .Add("seed", cfg.seed)
      .Add("latency", cfg.latency)
      .Add("counters", cfg.counters);
  Table table({"workload", "dist", "dataset", "HOT", "ART", "Masstree", "BT"});
  table.PrintHeader();
  for (char w : {'A', 'B', 'C', 'D', 'E', 'F'}) {
    if (!cfg.filter.empty() && cfg.filter[0] != w) continue;
    for (Distribution dist : {Distribution::kUniform, Distribution::kZipfian}) {
      WorkloadSpec spec = YcsbWorkload(w, dist);
      // Workload D is latest-distributed by definition; running it twice
      // would duplicate rows.
      if (w == 'D' && dist == Distribution::kZipfian) continue;
      for (DataSetKind kind : kAllDataSets) {
        DataSet ds = GenerateDataSet(kind, CapacityFor(cfg.keys, cfg.ops, spec),
                                     cfg.seed);
        ObsOptions obs_opt{cfg.latency, cfg.counters};
        auto results = RunAllIndexes(ds, cfg.keys, cfg.ops, spec, cfg.seed,
                                     cfg.batch, obs_opt);
        std::vector<std::string> row = {std::string(1, w),
                                        DistributionName(spec.dist),
                                        DataSetName(kind)};
        for (const auto& r : results) {
          row.push_back(Fmt(r.run.TxnMops()));
          JsonObject j;
          j.Add("workload", std::string(1, w))
              .Add("dist", DistributionName(spec.dist))
              .Add("dataset", DataSetName(kind))
              .Add("index", r.index)
              .Add("mops", r.run.TxnMops())
              .Add("failed_ops", r.run.failed_ops);
          if (cfg.latency && r.observers != nullptr) {
            AddLatencyFields(j, *r.observers);
          }
          if (cfg.counters && r.observers != nullptr) AddCounterFields(j, r);
          json.AddResult(j);
        }
        table.PrintRow(row);
        if (cfg.latency) {
          for (const auto& r : results) PrintLatencySummary(r);
        }
      }
    }
  }
  json.WriteFile();
  return 0;
}
