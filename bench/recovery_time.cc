// E16 — restart-by-rebuild recovery time (DESIGN.md §13, EXPERIMENTS.md).
//
//   recovery_time [--quick] [--threads N]
//
// For {1M, 2M, 4M}-key snapshots crossed with WAL-tail lengths {0, 256K,
// 1M ops}, measures the two recovery phases separately:
//
//   recover_s  mmap + validate the snapshot, read the tail, sort the
//              delta, merge into the sorted image (persist/recovery.h);
//   build_s    ParallelBulkBuild of the ROWEX trie from that image.
//
// Every row is self-verifying: the recovered image's CRC32C fingerprint
// (persist::ImageChecksum) and the ordered-scan fingerprint of the BUILT
// trie are both compared against an independently maintained oracle, and
// the `match` flag lands in BENCH_recovery.json — which is exactly what
// tools/check_recovery_gate.py asserts on.  A fast recovery that recovers
// the wrong bytes fails the gate, not just the eyeball.
//
// --quick shrinks to {100K, 200K} x {0, 20K} for CI smoke lanes.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/json_out.h"
#include "hot/rowex.h"
#include "net/record_store.h"
#include "persist/recovery.h"
#include "persist/snapshot.h"
#include "persist/wal.h"

namespace hot {
namespace {

uint64_t SplitMix(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::string KeyBytes(uint64_t v) {
  std::string k(8, '\0');
  for (int b = 0; b < 8; ++b) k[b] = static_cast<char>(v >> (8 * (7 - b)));
  return k;
}

KeyRef K(const std::string& s) {
  return KeyRef(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/hot_recovery_bench_XXXXXX";
    path = ::mkdtemp(tmpl);
  }
  void Wipe() {
    for (const auto& [seq, p] : persist::ListWalSegments(path)) {
      ::unlink(p.c_str());
    }
    ::unlink(persist::SnapshotPath(path).c_str());
    ::unlink(persist::SnapshotTmpPath(path).c_str());
  }
  ~TempDir() {
    Wipe();
    ::rmdir(path.c_str());
  }
};

// CRC over the image in the same (klen | key | value) framing as
// persist::ImageChecksum, computed from any (key, value) stream.
struct ScanCrc {
  uint32_t state = persist::Crc32cBegin();
  void Feed(KeyRef key, uint64_t value) {
    uint32_t klen = static_cast<uint32_t>(key.size());
    state = persist::Crc32cExtend(state, &klen, sizeof(klen));
    state = persist::Crc32cExtend(state, key.data(), key.size());
    state = persist::Crc32cExtend(state, &value, sizeof(value));
  }
  uint32_t Finish() const { return persist::Crc32cFinish(state); }
};

struct RunResult {
  double write_s = 0;
  double recover_s = 0;
  double build_s = 0;
  uint64_t recovered = 0;
  uint64_t expected = 0;
  uint32_t image_crc = 0;
  uint32_t scan_crc = 0;
  uint32_t oracle_crc = 0;
  bool match = false;
};

RunResult RunOne(TempDir* dir, size_t n_keys, size_t tail_ops,
                 unsigned threads, uint64_t seed) {
  dir->Wipe();
  RunResult out;

  // Base keyset: n unique random u64s, snapshotted in order at cut = n.
  uint64_t rng = seed;
  std::vector<uint64_t> keys;
  keys.reserve(n_keys);
  for (size_t i = 0; i < n_keys; ++i) keys.push_back(SplitMix(&rng));
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  std::unordered_map<uint64_t, uint64_t> oracle;
  oracle.reserve(keys.size() + tail_ops / 4);
  for (uint64_t k : keys) oracle[k] = k;

  auto t0 = std::chrono::steady_clock::now();
  {
    persist::SnapshotWriter w;
    std::string err;
    if (!w.Open(persist::SnapshotPath(dir->path), &err)) {
      std::fprintf(stderr, "snapshot open: %s\n", err.c_str());
      return out;
    }
    for (uint64_t k : keys) w.Add(K(KeyBytes(k)), k);
    if (!w.Finish(keys.size(), &err)) {
      std::fprintf(stderr, "snapshot finish: %s\n", err.c_str());
      return out;
    }
  }
  // WAL tail beyond the cut: 60% overwrite, 20% fresh insert, 20% delete.
  {
    persist::Wal wal;
    persist::Wal::Options o;
    o.durability = persist::Durability::kNone;
    persist::WalResume resume;
    resume.next_lsn = keys.size() + 1;
    std::string err;
    if (!wal.Open(dir->path, resume, o, &err)) {
      std::fprintf(stderr, "wal open: %s\n", err.c_str());
      return out;
    }
    for (size_t i = 0; i < tail_ops; ++i) {
      uint64_t roll = SplitMix(&rng) % 10;
      if (roll < 6) {
        uint64_t k = keys[SplitMix(&rng) % keys.size()];
        uint64_t v = SplitMix(&rng);
        wal.Append(persist::kWalPut, K(KeyBytes(k)), v);
        oracle[k] = v;
      } else if (roll < 8) {
        uint64_t k = SplitMix(&rng);
        uint64_t v = SplitMix(&rng);
        wal.Append(persist::kWalPut, K(KeyBytes(k)), v);
        oracle[k] = v;
      } else {
        uint64_t k = keys[SplitMix(&rng) % keys.size()];
        wal.Append(persist::kWalDelete, K(KeyBytes(k)), 0);
        oracle.erase(k);
      }
    }
    if (!wal.Flush(true, &err)) {
      std::fprintf(stderr, "wal flush: %s\n", err.c_str());
      return out;
    }
    wal.Close();
  }
  auto t1 = std::chrono::steady_clock::now();
  out.write_s = Seconds(t0, t1);

  // Phase 1: directory -> sorted image.
  persist::RecoveryResult rec;
  std::string err;
  if (!persist::RecoverImage(dir->path, &rec, &err)) {
    std::fprintf(stderr, "recover: %s\n", err.c_str());
    return out;
  }
  auto t2 = std::chrono::steady_clock::now();
  out.recover_s = Seconds(t1, t2);
  out.recovered = rec.records.size();
  out.image_crc = persist::ImageChecksum(rec.records);

  // Phase 2: sorted image -> served trie.
  net::RecordStore store;
  std::vector<uint64_t> ids;
  ids.reserve(rec.records.size());
  for (const persist::RecoveredRecord& r : rec.records) {
    ids.push_back(store.Append(r.key_ref(), r.value));
  }
  RowexHotTrie<net::RecordKeyExtractor> trie{net::RecordKeyExtractor(&store)};
  trie.BulkLoad(ids.data(), ids.size(), threads);
  auto t3 = std::chrono::steady_clock::now();
  out.build_s = Seconds(t2, t3);

  // Oracle: independent sorted materialization of the expected image.
  std::vector<std::pair<uint64_t, uint64_t>> want(oracle.begin(),
                                                  oracle.end());
  std::sort(want.begin(), want.end());
  out.expected = want.size();
  ScanCrc oracle_crc;
  for (const auto& [k, v] : want) {
    std::string kb = KeyBytes(k);
    oracle_crc.Feed(K(kb), v);
  }
  out.oracle_crc = oracle_crc.Finish();

  // Byte-identical ordered scan of the BUILT index.
  ScanCrc scan_crc;
  size_t scanned =
      trie.ScanFrom(KeyRef(), want.size() + 1, [&](uint64_t id) {
        const net::RecordStore::Record& r = store.At(id);
        scan_crc.Feed(r.raw_key(), r.value);
      });
  out.scan_crc = scan_crc.Finish();
  out.match = out.recovered == out.expected && scanned == out.expected &&
              out.image_crc == out.oracle_crc &&
              out.scan_crc == out.oracle_crc;
  return out;
}

}  // namespace
}  // namespace hot

int main(int argc, char** argv) {
  bool quick = false;
  unsigned threads = std::thread::hardware_concurrency();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    }
  }
  if (threads == 0) threads = 1;

  std::vector<size_t> sizes =
      quick ? std::vector<size_t>{100'000, 200'000}
            : std::vector<size_t>{1'000'000, 2'000'000, 4'000'000};
  std::vector<size_t> tails = quick ? std::vector<size_t>{0, 20'000}
                                    : std::vector<size_t>{0, 262'144,
                                                          1'048'576};

  hot::bench::BenchJson json("recovery");
  json.meta()
      .Add("threads", threads)
      .Add("quick", quick)
      .Add("phases", std::string("recover=mmap+merge build=bulkload"));

  hot::TempDir dir;
  std::printf("%10s %10s | %9s %9s %9s | %9s | %s\n", "keys", "wal_tail",
              "write_s", "recover_s", "build_s", "Mkeys/s", "match");
  bool all_match = true;
  for (size_t n : sizes) {
    for (size_t t : tails) {
      hot::RunResult r = hot::RunOne(&dir, n, t, threads, 42 + n + t);
      double total = r.recover_s + r.build_s;
      double mkeys = total > 0 ? r.recovered / total / 1e6 : 0;
      std::printf("%10zu %10zu | %9.3f %9.3f %9.3f | %9.2f | %s\n", n, t,
                  r.write_s, r.recover_s, r.build_s, mkeys,
                  r.match ? "yes" : "NO");
      std::fflush(stdout);
      all_match = all_match && r.match;
      hot::bench::JsonObject row;
      row.Add("keys", static_cast<uint64_t>(n))
          .Add("wal_tail_ops", static_cast<uint64_t>(t))
          .Add("write_s", r.write_s)
          .Add("recover_s", r.recover_s)
          .Add("build_s", r.build_s)
          .Add("total_s", total)
          .Add("mkeys_per_s", mkeys)
          .Add("recovered_keys", r.recovered)
          .Add("expected_keys", r.expected)
          .Add("image_crc", static_cast<uint64_t>(r.image_crc))
          .Add("scan_crc", static_cast<uint64_t>(r.scan_crc))
          .Add("oracle_crc", static_cast<uint64_t>(r.oracle_crc))
          .Add("match", r.match);
      json.AddResult(row);
    }
  }
  json.WriteFile();
  return all_match ? 0 : 1;
}
