// Table 3: per-lookup hardware counters (§6.2).  The paper explains HOT's
// throughput micro-architecturally — cycles, instructions, L3 misses,
// branch mispredictions and TLB misses per lookup — for HOT, ART, Masstree
// and the B+-tree.  This bench reproduces that table for all five index
// structures in the repository (HOT, ROWEX, ART, Masstree, BT) on the four
// data sets, under YCSB workload C (100% uniform lookups) so the
// transaction phase *is* the per-lookup profile.
//
// The measurement runs the whole transaction phase inside one
// perf_event_open group (obs/perf_counters.h) and divides by the op count.
// Where the syscall is unavailable (CI containers, HOT_NO_PERF=1) the run
// degrades to the rdtsc fallback: hw_counters=false is recorded in the JSON
// and only ns/op (plus the latency percentiles) is reported — never silent
// zeros.
//
// Each HOT-family row also folds in the index telemetry snapshot
// (obs/telemetry.h): node counts, fill factors, pool and epoch counters.
//
// Usage: table3_counters [--keys=N] [--ops=N] [--smoke]
//   --smoke   CI scale (50k keys / 100k ops) regardless of other flags.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "bench/json_out.h"
#include "obs/telemetry.h"

using namespace hot;
using namespace hot::ycsb;
using namespace hot::bench;

namespace {

// Telemetry only exists for indexes exposing the node-census walk.
template <typename Index>
concept HasTelemetry = requires(const Index& idx) {
  idx.ForEachNode(std::function<void(NodeRef, unsigned)>());
};

template <typename Adapter>
void RunOne(const char* index_name, const DataSet& ds, const char* ds_name,
            const BenchConfig& cfg, const WorkloadSpec& spec, BenchJson& json,
            const Table& table) {
  Adapter adapter(&ds);
  obs::PerfCounterGroup group;
  RunObservers observers;
  observers.counters = &group;
  RunResult run = RunBenchmark(adapter, ds, cfg.keys, cfg.ops, spec, cfg.seed,
                               cfg.batch, &observers);
  observers.counters = nullptr;

  const obs::CounterSample& txn = observers.txn_sample;
  auto per_op = [&](uint64_t v) {
    return run.txn_ops == 0 ? 0.0
                            : static_cast<double>(v) /
                                  static_cast<double>(run.txn_ops);
  };
  double ns_per_op = run.txn_ops == 0
                         ? 0.0
                         : obs::TicksToNanos(txn.ticks) /
                               static_cast<double>(run.txn_ops);

  std::vector<std::string> row = {ds_name, index_name, Fmt(run.TxnMops()),
                                  Fmt(ns_per_op, 1)};
  if (txn.hw_valid) {
    row.push_back(Fmt(per_op(txn.cycles), 1));
    row.push_back(Fmt(per_op(txn.instructions), 1));
    row.push_back(Fmt(per_op(txn.llc_misses), 2));
    row.push_back(Fmt(per_op(txn.branch_misses), 2));
    row.push_back(Fmt(per_op(txn.dtlb_misses), 2));
  } else {
    for (int i = 0; i < 5; ++i) row.push_back("-");
  }
  table.PrintRow(row);

  JsonObject j;
  j.Add("dataset", ds_name)
      .Add("index", index_name)
      .Add("workload", std::string(1, spec.name))
      .Add("mops", run.TxnMops())
      .Add("ns_per_op", ns_per_op)
      .Add("failed_ops", run.failed_ops)
      .Add("hw_counters", txn.hw_valid);
  if (!group.hw_available()) {
    j.Add("counter_fallback", group.fallback_reason());
  }
  if (txn.hw_valid) {
    j.Add("cycles_per_op", per_op(txn.cycles))
        .Add("instr_per_op", per_op(txn.instructions))
        .Add("llc_miss_per_op", per_op(txn.llc_misses))
        .Add("branch_miss_per_op", per_op(txn.branch_misses))
        .Add("dtlb_miss_per_op", per_op(txn.dtlb_misses))
        .Add("ipc", txn.cycles == 0
                        ? 0.0
                        : static_cast<double>(txn.instructions) /
                              static_cast<double>(txn.cycles));
  }
  AddLatencyFields(j, observers);

  if constexpr (HasTelemetry<std::remove_reference_t<
                    decltype(adapter.index())>>) {
    obs::TelemetrySnapshot t = obs::CollectTelemetry(adapter.index());
    j.Add("nodes", t.census.nodes)
        .Add("node_bytes", t.census.total_bytes)
        .Add("avg_fanout", t.census.AverageFanout())
        .Add("fill_factor", t.FillFactor())
        .Add("pool_hits", t.pool_hits)
        .Add("pool_carves", t.pool_carves)
        .Add("writer_restarts", t.writer_restarts)
        .Add("cow_replacements", t.cow_replacements)
        .Add("leaf_pushdowns", t.leaf_pushdowns)
        .Add("fast_splices", t.fast_splices)
        .Add("nodes_retired", t.nodes_retired)
        .Add("nodes_reclaimed", t.nodes_reclaimed)
        .Add("retire_backlog", t.retire_backlog);
  }
  json.AddResult(j);
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = ParseBenchConfig(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  if (smoke) {
    cfg.keys = 50'000;
    cfg.ops = 100'000;
  }

  obs::PerfCounterGroup probe;
  printf("table3_counters: per-lookup hardware counters (paper Table 3), "
         "%zu keys, %zu ops%s\n",
         cfg.keys, cfg.ops, smoke ? " [smoke]" : "");
  if (!probe.hw_available()) {
    printf("NOTE: hardware counters unavailable (%s); reporting rdtsc "
           "ns/op only\n",
           probe.fallback_reason());
  }

  BenchJson json("table3_counters");
  json.meta()
      .Add("keys", cfg.keys)
      .Add("ops", cfg.ops)
      .Add("seed", cfg.seed)
      .Add("smoke", smoke)
      .Add("hw_counters", probe.hw_available())
      .Add("counter_source",
           probe.hw_available() ? "perf_event_open" : "rdtsc-fallback");
  if (!probe.hw_available()) {
    json.meta().Add("counter_fallback", probe.fallback_reason());
  }

  Table table({"dataset", "index", "mops", "ns/op", "cyc/op", "inst/op",
               "LLC/op", "brmiss/op", "dTLB/op"},
              11);
  table.PrintHeader();

  WorkloadSpec spec = YcsbWorkload('C', Distribution::kUniform);
  for (DataSetKind kind : kAllDataSets) {
    DataSet ds = GenerateDataSet(kind, CapacityFor(cfg.keys, cfg.ops, spec),
                                 cfg.seed);
    const char* name = DataSetName(kind);
    if (ds.IsString()) {
      RunOne<StringDataSetAdapter<HotTrie>>("hot", ds, name, cfg, spec, json,
                                            table);
      RunOne<StringDataSetAdapter<RowexHotTrie>>("rowex", ds, name, cfg, spec,
                                                 json, table);
      RunOne<StringDataSetAdapter<ArtTree>>("art", ds, name, cfg, spec, json,
                                            table);
      RunOne<StringDataSetAdapter<Masstree>>("masstree", ds, name, cfg, spec,
                                             json, table);
      RunOne<StringDataSetAdapter<BTree>>("btree", ds, name, cfg, spec, json,
                                          table);
    } else {
      RunOne<IntDataSetAdapter<HotTrie>>("hot", ds, name, cfg, spec, json,
                                         table);
      RunOne<IntDataSetAdapter<RowexHotTrie>>("rowex", ds, name, cfg, spec,
                                              json, table);
      RunOne<IntDataSetAdapter<ArtTree>>("art", ds, name, cfg, spec, json,
                                         table);
      RunOne<IntDataSetAdapter<Masstree>>("masstree", ds, name, cfg, spec,
                                          json, table);
      RunOne<IntDataSetAdapter<BTree>>("btree", ds, name, cfg, spec, json,
                                       table);
    }
  }
  json.WriteFile();
  return 0;
}
