// Figure 10: multi-threaded scalability on the url data set — insert
// throughput (random order), lookup throughput (uniform random), and a
// concurrent YCSB workload-E phase (95% scan of up to 100 elements, 5%
// insert of fresh records) for thread counts 1..N.
//
// The paper runs synchronized HOT (ROWEX, §5), ART (ROWEX) and Masstree on
// a 10-core i9-7900X and reports near-linear speedups (HOT: 9.96x lookup /
// 9.00x insert at 10 threads).  Here HOT uses the full ROWEX protocol of
// hot/rowex.h; HOT(hybrid) is the static/delta index of hot/hybrid.h whose
// writers go through a ROWEX delta while background merges rebuild the
// base; the baselines' synchronized variants are approximated by
// range-partitioned sharding with per-shard locks over the single-threaded
// implementations (ycsb/range_sharded.h — see DESIGN.md "Substitutions" and
// §10).  Range partitioning — unlike the hash sharding of ycsb/sharded.h —
// preserves global key order, which is what lets the workload-E phase run
// concurrently on every index: scans spill across shard boundaries in key
// order.  Splitters are sampled equi-depth from the data set, since url
// keys share long prefixes and would otherwise collapse into one shard.
// NOTE: on a machine with a single physical core (this box), threads
// time-slice and no protocol can show real speedup; the experiment then
// demonstrates correctness under concurrency and per-thread overhead.
//
// Usage: fig10_scalability [--keys=N] [--ops=N] [--threads=MAX]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "art/art.h"
#include "bench/json_out.h"
#include "btree/btree.h"
#include "common/extractors.h"
#include "common/thread.h"
#include "hot/hybrid.h"
#include "hot/rowex.h"
#include "hot/trie.h"
#include "masstree/masstree.h"
#include "ycsb/datasets.h"
#include "ycsb/range_sharded.h"
#include "ycsb/report.h"
#include "ycsb/workload.h"

using namespace hot;
using namespace hot::ycsb;

namespace {

struct PhaseResult {
  double insert_mops;
  double lookup_mops;
  double scan_mops;  // workload-E mix operations (not scanned elements)
};

std::atomic<uint64_t> benchmark_sink{0};

constexpr unsigned kScanOpsDivisor = 16;  // scans touch ~50 elements each

// Three timed phases over any index exposing Insert(value) / Lookup(key) /
// ScanFrom(key, limit, fn): parallel inserts of order[0..load_n), parallel
// uniform lookups, then the concurrent workload-E mix where each thread
// inserts fresh records from its own slice of order[load_n..).
//
// `affine` turns on thread-affine execution for sharded arms: workers pin
// to CPUs, and the insert/lookup streams are pre-partitioned so worker t
// only touches the contiguous shard range it owns (`shard_of(record_id)`
// routes; ShardRangeOfThread partitions) — same total work, zero cross-
// thread shard contention.  Barrier waits always yield: with threads
// oversubscribing the cores, a spinning barrier burns a scheduler quantum
// per straggler.
template <typename Index, typename ShardOfId>
PhaseResult RunPhases(Index& idx, unsigned threads, const DataSet& ds,
                      const std::vector<uint32_t>& order, size_t load_n,
                      size_t lookups, size_t scan_ops, bool affine,
                      unsigned shard_count, ShardOfId&& shard_of) {
  using Clock = std::chrono::steady_clock;
  std::atomic<unsigned> ready{0};
  std::atomic<bool> go{false};

  std::vector<std::vector<uint32_t>> insert_streams, lookup_streams;
  if (affine) {
    std::vector<uint32_t> ids(order.begin(),
                              order.begin() + static_cast<long>(load_n));
    insert_streams = PartitionIdsByOwner(ids, shard_count, threads, shard_of);
    ids.resize(lookups);
    SplitMix64 rng(91);
    for (auto& id : ids) id = order[rng.NextBounded(load_n)];
    lookup_streams = PartitionIdsByOwner(ids, shard_count, threads, shard_of);
  }

  auto run_parallel = [&](auto&& body) {
    ready = 0;
    go = false;
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        if (affine) PinThreadToCpu(t);
        ready.fetch_add(1, std::memory_order_release);
        while (!go.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        body(t);
      });
    }
    while (ready.load(std::memory_order_acquire) != threads) {
      std::this_thread::yield();
    }
    auto t0 = Clock::now();
    go.store(true, std::memory_order_release);
    for (auto& w : workers) w.join();
    auto t1 = Clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
  };

  double insert_seconds = run_parallel([&](unsigned t) {
    if (affine) {
      for (uint32_t id : insert_streams[t]) idx.Insert(id);
      return;
    }
    size_t lo = load_n * t / threads, hi = load_n * (t + 1) / threads;
    for (size_t i = lo; i < hi; ++i) idx.Insert(order[i]);
  });
  double lookup_seconds = run_parallel([&](unsigned t) {
    if (affine) {
      for (uint32_t id : lookup_streams[t]) {
        idx.Lookup(TerminatedView(ds.strings[id]));
      }
      return;
    }
    SplitMix64 rng(91 + t);
    size_t per_thread = lookups / threads;
    for (size_t i = 0; i < per_thread; ++i) {
      idx.Lookup(TerminatedView(ds.strings[order[rng.NextBounded(load_n)]]));
    }
  });
  double scan_seconds = run_parallel([&](unsigned t) {
    SplitMix64 rng(173 + t);
    // Disjoint fresh-record slice per thread for the 5% insert share.
    size_t fresh = ds.size() - load_n;
    size_t next = load_n + fresh * t / threads;
    size_t end = load_n + fresh * (t + 1) / threads;
    size_t per_thread = scan_ops / threads;
    uint64_t sink = 0;
    for (size_t i = 0; i < per_thread; ++i) {
      if (rng.NextBounded(100) < 5 && next < end) {
        idx.Insert(order[next++]);
      } else {
        size_t start = order[rng.NextBounded(load_n)];
        size_t len = 1 + rng.NextBounded(100);
        idx.ScanFrom(TerminatedView(ds.strings[start]), len,
                     [&](uint64_t v) { sink += v; });
      }
    }
    benchmark_sink.fetch_add(sink, std::memory_order_relaxed);
  });
  return {static_cast<double>(load_n) / insert_seconds / 1e6,
          static_cast<double>(lookups) / lookup_seconds / 1e6,
          static_cast<double>(scan_ops) / scan_seconds / 1e6};
}

// Random-placement arms (everything except HOT(rs-affine)).
template <typename Index>
PhaseResult RunPhases(Index& idx, unsigned threads, const DataSet& ds,
                      const std::vector<uint32_t>& order, size_t load_n,
                      size_t lookups, size_t scan_ops) {
  return RunPhases(idx, threads, ds, order, load_n, lookups, scan_ops,
                   /*affine=*/false, 1, [](uint32_t) { return 0u; });
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = ParseBenchConfig(argc, argv);
  unsigned max_threads = cfg.threads != 0
                             ? cfg.threads
                             : std::max(1u, std::thread::hardware_concurrency());
  const size_t scan_ops = std::max<size_t>(cfg.ops / kScanOpsDivisor, 1000);
  printf("fig10_scalability: reproduces paper Figure 10 (url data set, "
         "%zu inserts + %zu lookups + %zu workload-E ops, 1..%u threads)\n",
         cfg.keys, cfg.ops, scan_ops, max_threads);
  printf("note: %u hardware thread(s) available — speedups beyond that are "
         "not physically possible on this machine\n\n",
         std::thread::hardware_concurrency());

  DataSet ds = GenerateDataSet(DataSetKind::kUrl, cfg.keys, cfg.seed);
  std::vector<uint32_t> order = LoadOrder(ds.size(), cfg.seed);
  // 1/16 of the records stay unloaded as fresh inserts for workload E.
  const size_t load_n = ds.size() - ds.size() / 16;
  const SplitterKeys splitters = SampledSplitters(ds, 16);

  bench::BenchJson json("fig10_scalability");
  json.meta()
      .Add("keys", cfg.keys)
      .Add("ops", cfg.ops)
      .Add("scan_ops", scan_ops)
      .Add("max_threads", max_threads)
      .Add("shards", 16)
      .Add("seed", cfg.seed);
  auto add_json = [&](unsigned threads, const char* index,
                      const PhaseResult& r) {
    bench::JsonObject j;
    j.Add("threads", threads)
        .Add("index", index)
        .Add("insert_mops", r.insert_mops)
        .Add("lookup_mops", r.lookup_mops)
        .Add("scan_mops", r.scan_mops);
    json.AddResult(j);
  };

  Table table({"threads", "index", "insert-mops", "lookup-mops", "scanE-mops",
               "look-speedup"});
  table.PrintHeader();

  using Ex = StringTableExtractor;
  const Ex extractor(&ds.strings);
  constexpr unsigned kArms = 7;
  const char* arm_names[kArms] = {"HOT(ROWEX)",          "HOT(hybrid)",
                                  "HOT(range-shard)",
                                  "HOT(rs-affine)",      "ART(range-shard)",
                                  "Masstree(range-shard)",
                                  "BTree(range-shard)"};
  double base_lookup[kArms] = {};

  for (unsigned threads = 1; threads <= max_threads; ++threads) {
    auto report_arm = [&](unsigned arm, const PhaseResult& r) {
      if (threads == 1) base_lookup[arm] = r.lookup_mops;
      table.PrintRow({std::to_string(threads), arm_names[arm],
                      Fmt(r.insert_mops), Fmt(r.lookup_mops),
                      Fmt(r.scan_mops),
                      Fmt(r.lookup_mops / base_lookup[arm]) + "x"});
      add_json(threads, arm_names[arm], r);
    };
    auto run_arm = [&](unsigned arm, auto& idx) {
      report_arm(arm, RunPhases(idx, threads, ds, order, load_n, cfg.ops,
                                scan_ops));
    };
    {
      RowexHotTrie<Ex> hot{extractor};
      run_arm(0, hot);
    }
    {
      // Hybrid static/delta index: writers funnel through the delta's
      // ROWEX pair while background merges rebuild the base under the
      // readers; the scan phase hits the three-way merged cursor.
      HybridHotIndex<Ex> idx(extractor);
      run_arm(1, idx);
    }
    {
      RangeShardedIndex<HotTrie<Ex>, Ex> idx(splitters, extractor);
      run_arm(2, idx);
    }
    {
      // Same index type as HOT(range-shard), run thread-affine: workers
      // pinned, streams pre-partitioned to each worker's own shard range.
      RangeShardedIndex<HotTrie<Ex>, Ex> idx(splitters, extractor);
      PhaseResult r = RunPhases(
          idx, threads, ds, order, load_n, cfg.ops, scan_ops,
          /*affine=*/true, idx.shard_count(), [&](uint32_t id) {
            return idx.ShardOf(TerminatedView(ds.strings[id]));
          });
      report_arm(3, r);
    }
    {
      RangeShardedIndex<ArtTree<Ex>, Ex> idx(splitters, extractor);
      run_arm(4, idx);
    }
    {
      RangeShardedIndex<Masstree<Ex>, Ex> idx(splitters, extractor);
      run_arm(5, idx);
    }
    {
      RangeShardedIndex<BTree<Ex>, Ex> idx(splitters, extractor);
      run_arm(6, idx);
    }
  }
  json.WriteFile();
  return 0;
}
