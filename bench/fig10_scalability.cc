// Figure 10: multi-threaded scalability on the url data set — insert
// throughput (random order) and lookup throughput (uniform random) for
// thread counts 1..N.
//
// The paper runs synchronized HOT (ROWEX, §5), ART (ROWEX) and Masstree on
// a 10-core i9-7900X and reports near-linear speedups (HOT: 9.96x lookup /
// 9.00x insert at 10 threads).  Here HOT uses the full ROWEX protocol of
// hot/rowex.h; the baselines' synchronized variants are approximated by
// 64-way hash-sharded single-threaded instances (ycsb/sharded.h — see
// DESIGN.md "Substitutions").  NOTE: on a machine with a single physical
// core (this box), threads time-slice and no protocol can show real
// speedup; the experiment then demonstrates correctness under concurrency
// and per-thread overhead instead.
//
// Usage: fig10_scalability [--keys=N] [--ops=N] [--threads=MAX]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "art/art.h"
#include "bench/json_out.h"
#include "common/extractors.h"
#include "hot/rowex.h"
#include "masstree/masstree.h"
#include "ycsb/datasets.h"
#include "ycsb/report.h"
#include "ycsb/sharded.h"
#include "ycsb/workload.h"

using namespace hot;
using namespace hot::ycsb;

namespace {

struct PhaseResult {
  double insert_mops;
  double lookup_mops;
};

// Runs `threads` workers over disjoint slices of the (shuffled) record ids,
// then over random lookups.
template <typename InsertFn, typename LookupFn>
PhaseResult RunPhases(unsigned threads, size_t n, size_t lookups,
                      const std::vector<uint32_t>& order, InsertFn&& do_insert,
                      LookupFn&& do_lookup) {
  using Clock = std::chrono::steady_clock;
  std::atomic<unsigned> ready{0};
  std::atomic<bool> go{false};

  auto run_parallel = [&](auto&& body) {
    ready = 0;
    go = false;
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        ++ready;
        while (!go) CpuRelax();
        body(t);
      });
    }
    while (ready != threads) CpuRelax();
    auto t0 = Clock::now();
    go = true;
    for (auto& w : workers) w.join();
    auto t1 = Clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
  };

  double insert_seconds = run_parallel([&](unsigned t) {
    size_t lo = n * t / threads, hi = n * (t + 1) / threads;
    for (size_t i = lo; i < hi; ++i) do_insert(order[i]);
  });
  double lookup_seconds = run_parallel([&](unsigned t) {
    SplitMix64 rng(91 + t);
    size_t per_thread = lookups / threads;
    for (size_t i = 0; i < per_thread; ++i) {
      do_lookup(order[rng.NextBounded(n)]);
    }
  });
  return {static_cast<double>(n) / insert_seconds / 1e6,
          static_cast<double>(lookups) / lookup_seconds / 1e6};
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = ParseBenchConfig(argc, argv);
  unsigned max_threads = cfg.threads != 0
                             ? cfg.threads
                             : std::max(1u, std::thread::hardware_concurrency());
  printf("fig10_scalability: reproduces paper Figure 10 (url data set, "
         "%zu inserts + %zu lookups, 1..%u threads)\n",
         cfg.keys, cfg.ops, max_threads);
  printf("note: %u hardware thread(s) available — speedups beyond that are "
         "not physically possible on this machine\n\n",
         std::thread::hardware_concurrency());

  DataSet ds = GenerateDataSet(DataSetKind::kUrl, cfg.keys, cfg.seed);
  std::vector<uint32_t> order = LoadOrder(ds.size(), cfg.seed);

  bench::BenchJson json("fig10_scalability");
  json.meta()
      .Add("keys", cfg.keys)
      .Add("ops", cfg.ops)
      .Add("max_threads", max_threads)
      .Add("seed", cfg.seed);
  auto add_json = [&](unsigned threads, const char* index,
                      const PhaseResult& r) {
    bench::JsonObject j;
    j.Add("threads", threads)
        .Add("index", index)
        .Add("insert_mops", r.insert_mops)
        .Add("lookup_mops", r.lookup_mops);
    json.AddResult(j);
  };

  Table table({"threads", "index", "insert-mops", "lookup-mops",
               "ins-speedup", "look-speedup"});
  table.PrintHeader();

  double hot_base_i = 0, hot_base_l = 0;
  double art_base_i = 0, art_base_l = 0;
  double mass_base_i = 0, mass_base_l = 0;

  for (unsigned threads = 1; threads <= max_threads; ++threads) {
    {
      RowexHotTrie<StringTableExtractor> hot{StringTableExtractor(&ds.strings)};
      PhaseResult r = RunPhases(
          threads, ds.size(), cfg.ops, order,
          [&](uint32_t i) { hot.Insert(i); },
          [&](uint32_t i) { hot.Lookup(TerminatedView(ds.strings[i])); });
      if (threads == 1) {
        hot_base_i = r.insert_mops;
        hot_base_l = r.lookup_mops;
      }
      table.PrintRow({std::to_string(threads), "HOT(ROWEX)",
                      Fmt(r.insert_mops), Fmt(r.lookup_mops),
                      Fmt(r.insert_mops / hot_base_i) + "x",
                      Fmt(r.lookup_mops / hot_base_l) + "x"});
      add_json(threads, "HOT(ROWEX)", r);
    }
    {
      ShardedIndex<ArtTree<StringTableExtractor>> art{
          StringTableExtractor(&ds.strings)};
      PhaseResult r = RunPhases(
          threads, ds.size(), cfg.ops, order,
          [&](uint32_t i) {
            art.Insert(i, TerminatedView(ds.strings[i]));
          },
          [&](uint32_t i) { art.Lookup(TerminatedView(ds.strings[i])); });
      if (threads == 1) {
        art_base_i = r.insert_mops;
        art_base_l = r.lookup_mops;
      }
      table.PrintRow({std::to_string(threads), "ART(shard)",
                      Fmt(r.insert_mops), Fmt(r.lookup_mops),
                      Fmt(r.insert_mops / art_base_i) + "x",
                      Fmt(r.lookup_mops / art_base_l) + "x"});
      add_json(threads, "ART(shard)", r);
    }
    {
      ShardedIndex<Masstree<StringTableExtractor>> mass{
          StringTableExtractor(&ds.strings)};
      PhaseResult r = RunPhases(
          threads, ds.size(), cfg.ops, order,
          [&](uint32_t i) {
            mass.Insert(i, TerminatedView(ds.strings[i]));
          },
          [&](uint32_t i) { mass.Lookup(TerminatedView(ds.strings[i])); });
      if (threads == 1) {
        mass_base_i = r.insert_mops;
        mass_base_l = r.lookup_mops;
      }
      table.PrintRow({std::to_string(threads), "Masstree(shard)",
                      Fmt(r.insert_mops), Fmt(r.lookup_mops),
                      Fmt(r.insert_mops / mass_base_i) + "x",
                      Fmt(r.lookup_mops / mass_base_l) + "x"});
      add_json(threads, "Masstree(shard)", r);
    }
  }
  json.WriteFile();
  return 0;
}
