// Figure 10: multi-threaded scalability on the url data set — insert
// throughput (random order), lookup throughput (uniform random), and a
// concurrent YCSB workload-E phase (95% scan of up to 100 elements, 5%
// insert of fresh records) for thread counts 1..N.
//
// The paper runs synchronized HOT (ROWEX, §5), ART (ROWEX) and Masstree on
// a 10-core i9-7900X and reports near-linear speedups (HOT: 9.96x lookup /
// 9.00x insert at 10 threads).  Here HOT uses the full ROWEX protocol of
// hot/rowex.h; the baselines' synchronized variants are approximated by
// range-partitioned sharding with per-shard locks over the single-threaded
// implementations (ycsb/range_sharded.h — see DESIGN.md "Substitutions" and
// §10).  Range partitioning — unlike the hash sharding of ycsb/sharded.h —
// preserves global key order, which is what lets the workload-E phase run
// concurrently on every index: scans spill across shard boundaries in key
// order.  Splitters are sampled equi-depth from the data set, since url
// keys share long prefixes and would otherwise collapse into one shard.
// NOTE: on a machine with a single physical core (this box), threads
// time-slice and no protocol can show real speedup; the experiment then
// demonstrates correctness under concurrency and per-thread overhead.
//
// Usage: fig10_scalability [--keys=N] [--ops=N] [--threads=MAX]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "art/art.h"
#include "bench/json_out.h"
#include "btree/btree.h"
#include "common/extractors.h"
#include "hot/rowex.h"
#include "hot/trie.h"
#include "masstree/masstree.h"
#include "ycsb/datasets.h"
#include "ycsb/range_sharded.h"
#include "ycsb/report.h"
#include "ycsb/workload.h"

using namespace hot;
using namespace hot::ycsb;

namespace {

struct PhaseResult {
  double insert_mops;
  double lookup_mops;
  double scan_mops;  // workload-E mix operations (not scanned elements)
};

std::atomic<uint64_t> benchmark_sink{0};

constexpr unsigned kScanOpsDivisor = 16;  // scans touch ~50 elements each

// Three timed phases over any index exposing Insert(value) / Lookup(key) /
// ScanFrom(key, limit, fn): parallel inserts of order[0..load_n), parallel
// uniform lookups, then the concurrent workload-E mix where each thread
// inserts fresh records from its own slice of order[load_n..).
template <typename Index>
PhaseResult RunPhases(Index& idx, unsigned threads, const DataSet& ds,
                      const std::vector<uint32_t>& order, size_t load_n,
                      size_t lookups, size_t scan_ops) {
  using Clock = std::chrono::steady_clock;
  std::atomic<unsigned> ready{0};
  std::atomic<bool> go{false};

  auto run_parallel = [&](auto&& body) {
    ready = 0;
    go = false;
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        ++ready;
        while (!go) CpuRelax();
        body(t);
      });
    }
    while (ready != threads) CpuRelax();
    auto t0 = Clock::now();
    go = true;
    for (auto& w : workers) w.join();
    auto t1 = Clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
  };

  double insert_seconds = run_parallel([&](unsigned t) {
    size_t lo = load_n * t / threads, hi = load_n * (t + 1) / threads;
    for (size_t i = lo; i < hi; ++i) idx.Insert(order[i]);
  });
  double lookup_seconds = run_parallel([&](unsigned t) {
    SplitMix64 rng(91 + t);
    size_t per_thread = lookups / threads;
    for (size_t i = 0; i < per_thread; ++i) {
      idx.Lookup(TerminatedView(ds.strings[order[rng.NextBounded(load_n)]]));
    }
  });
  double scan_seconds = run_parallel([&](unsigned t) {
    SplitMix64 rng(173 + t);
    // Disjoint fresh-record slice per thread for the 5% insert share.
    size_t fresh = ds.size() - load_n;
    size_t next = load_n + fresh * t / threads;
    size_t end = load_n + fresh * (t + 1) / threads;
    size_t per_thread = scan_ops / threads;
    uint64_t sink = 0;
    for (size_t i = 0; i < per_thread; ++i) {
      if (rng.NextBounded(100) < 5 && next < end) {
        idx.Insert(order[next++]);
      } else {
        size_t start = order[rng.NextBounded(load_n)];
        size_t len = 1 + rng.NextBounded(100);
        idx.ScanFrom(TerminatedView(ds.strings[start]), len,
                     [&](uint64_t v) { sink += v; });
      }
    }
    benchmark_sink.fetch_add(sink, std::memory_order_relaxed);
  });
  return {static_cast<double>(load_n) / insert_seconds / 1e6,
          static_cast<double>(lookups) / lookup_seconds / 1e6,
          static_cast<double>(scan_ops) / scan_seconds / 1e6};
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = ParseBenchConfig(argc, argv);
  unsigned max_threads = cfg.threads != 0
                             ? cfg.threads
                             : std::max(1u, std::thread::hardware_concurrency());
  const size_t scan_ops = std::max<size_t>(cfg.ops / kScanOpsDivisor, 1000);
  printf("fig10_scalability: reproduces paper Figure 10 (url data set, "
         "%zu inserts + %zu lookups + %zu workload-E ops, 1..%u threads)\n",
         cfg.keys, cfg.ops, scan_ops, max_threads);
  printf("note: %u hardware thread(s) available — speedups beyond that are "
         "not physically possible on this machine\n\n",
         std::thread::hardware_concurrency());

  DataSet ds = GenerateDataSet(DataSetKind::kUrl, cfg.keys, cfg.seed);
  std::vector<uint32_t> order = LoadOrder(ds.size(), cfg.seed);
  // 1/16 of the records stay unloaded as fresh inserts for workload E.
  const size_t load_n = ds.size() - ds.size() / 16;
  const SplitterKeys splitters = SampledSplitters(ds, 16);

  bench::BenchJson json("fig10_scalability");
  json.meta()
      .Add("keys", cfg.keys)
      .Add("ops", cfg.ops)
      .Add("scan_ops", scan_ops)
      .Add("max_threads", max_threads)
      .Add("shards", 16)
      .Add("seed", cfg.seed);
  auto add_json = [&](unsigned threads, const char* index,
                      const PhaseResult& r) {
    bench::JsonObject j;
    j.Add("threads", threads)
        .Add("index", index)
        .Add("insert_mops", r.insert_mops)
        .Add("lookup_mops", r.lookup_mops)
        .Add("scan_mops", r.scan_mops);
    json.AddResult(j);
  };

  Table table({"threads", "index", "insert-mops", "lookup-mops", "scanE-mops",
               "look-speedup"});
  table.PrintHeader();

  using Ex = StringTableExtractor;
  const Ex extractor(&ds.strings);
  constexpr unsigned kArms = 5;
  const char* arm_names[kArms] = {"HOT(ROWEX)", "HOT(range-shard)",
                                  "ART(range-shard)", "Masstree(range-shard)",
                                  "BTree(range-shard)"};
  double base_lookup[kArms] = {};

  for (unsigned threads = 1; threads <= max_threads; ++threads) {
    auto run_arm = [&](unsigned arm, auto& idx) {
      PhaseResult r = RunPhases(idx, threads, ds, order, load_n, cfg.ops,
                                scan_ops);
      if (threads == 1) base_lookup[arm] = r.lookup_mops;
      table.PrintRow({std::to_string(threads), arm_names[arm],
                      Fmt(r.insert_mops), Fmt(r.lookup_mops),
                      Fmt(r.scan_mops),
                      Fmt(r.lookup_mops / base_lookup[arm]) + "x"});
      add_json(threads, arm_names[arm], r);
    };
    {
      RowexHotTrie<Ex> hot{extractor};
      run_arm(0, hot);
    }
    {
      RangeShardedIndex<HotTrie<Ex>, Ex> idx(splitters, extractor);
      run_arm(1, idx);
    }
    {
      RangeShardedIndex<ArtTree<Ex>, Ex> idx(splitters, extractor);
      run_arm(2, idx);
    }
    {
      RangeShardedIndex<Masstree<Ex>, Ex> idx(splitters, extractor);
      run_arm(3, idx);
    }
    {
      RangeShardedIndex<BTree<Ex>, Ex> idx(splitters, extractor);
      run_arm(4, idx);
    }
  }
  json.WriteFile();
  return 0;
}
