// Span ablation (motivates §2/§3): fixed-span prefix trees (s = 1, 2, 4, 8)
// versus ART (span 8 + adaptive node sizes) versus HOT (data-dependent span,
// k = 32), measured as mean/max leaf depth, memory per key, and lookup
// throughput, on a dense-ish integer data set and on sparse string keys.
//
// This regenerates the paper's Figure 2 argument quantitatively: static
// spans trade height against wasted slots depending on the distribution;
// adaptive node sizes fix the memory but not the fanout; HOT fixes both.
//
// Usage: ablation_span [--keys=N]

#include <chrono>
#include <cstdio>

#include "art/art.h"
#include "bench/json_out.h"
#include "common/extractors.h"
#include "hot/stats.h"
#include "hot/trie.h"
#include "prefixtree/prefix_tree.h"
#include "ycsb/datasets.h"
#include "ycsb/report.h"
#include "ycsb/workload.h"

using namespace hot;
using namespace hot::ycsb;

namespace {

struct Row {
  double mean_depth;
  unsigned max_depth;
  double bytes_per_key;
  double lookup_mops;
};

template <typename Index, typename LookupKey>
Row Measure(Index& index, MemoryCounter& counter, const DataSet& ds,
            const std::vector<uint32_t>& order, LookupKey&& key_of) {
  for (uint32_t i : order) index.Insert(ds.IsString() ? i : ds.ints[i]);
  DepthStats stats;
  index.ForEachLeaf([&](unsigned depth, uint64_t) { stats.Add(depth); });
  auto t0 = std::chrono::steady_clock::now();
  size_t hits = 0;
  for (uint32_t i : order) {
    hits += index.Lookup(key_of(i)).has_value();
  }
  auto t1 = std::chrono::steady_clock::now();
  double secs = std::chrono::duration<double>(t1 - t0).count();
  return {stats.Mean(), stats.max,
          static_cast<double>(counter.live_bytes()) / ds.size(),
          static_cast<double>(hits) / secs / 1e6};
}

void RunForDataSet(const BenchConfig& cfg, DataSetKind kind,
                   bench::BenchJson& json) {
  DataSet ds = GenerateDataSet(kind, cfg.keys, cfg.seed);
  std::vector<uint32_t> order = LoadOrder(ds.size(), cfg.seed);
  printf("\n--- %s (%zu keys) ---\n", DataSetName(kind), ds.size());
  Table table({"structure", "mean-depth", "max-depth", "bytes/key", "mops"});
  table.PrintHeader();

  auto print = [&](const char* name, const Row& row) {
    table.PrintRow({name, Fmt(row.mean_depth), std::to_string(row.max_depth),
                    Fmt(row.bytes_per_key, 1), Fmt(row.lookup_mops)});
    bench::JsonObject j;
    j.Add("dataset", DataSetName(kind))
        .Add("structure", name)
        .Add("mean_depth", row.mean_depth)
        .Add("max_depth", row.max_depth)
        .Add("bytes_per_key", row.bytes_per_key)
        .Add("lookup_mops", row.lookup_mops);
    json.AddResult(j);
  };

  if (ds.IsString()) {
    auto key_of = [&](uint32_t i) { return TerminatedView(ds.strings[i]); };
    for (unsigned span : {1u, 2u, 4u, 8u}) {
      MemoryCounter counter;
      PrefixTree<StringTableExtractor> tree{
          span, StringTableExtractor(&ds.strings), &counter};
      char name[32];
      snprintf(name, sizeof(name), "prefix-s%u", span);
      print(name, Measure(tree, counter, ds, order, key_of));
    }
    {
      MemoryCounter counter;
      ArtTree<StringTableExtractor> art{StringTableExtractor(&ds.strings),
                                        &counter};
      print("ART", Measure(art, counter, ds, order, key_of));
    }
    {
      MemoryCounter counter;
      HotTrie<StringTableExtractor> hot{StringTableExtractor(&ds.strings),
                                        &counter};
      print("HOT", Measure(hot, counter, ds, order, key_of));
    }
  } else {
    // Integer lookups need materialized keys.
    std::vector<U64Key> keys;
    keys.reserve(ds.size());
    for (uint64_t v : ds.ints) keys.emplace_back(v);
    auto key_of = [&](uint32_t i) { return keys[i].ref(); };
    for (unsigned span : {1u, 2u, 4u, 8u}) {
      MemoryCounter counter;
      PrefixTree<U64KeyExtractor> tree{span, U64KeyExtractor(), &counter};
      char name[32];
      snprintf(name, sizeof(name), "prefix-s%u", span);
      print(name, Measure(tree, counter, ds, order, key_of));
    }
    {
      MemoryCounter counter;
      ArtTree<U64KeyExtractor> art{U64KeyExtractor(), &counter};
      print("ART", Measure(art, counter, ds, order, key_of));
    }
    {
      MemoryCounter counter;
      HotTrie<U64KeyExtractor> hot{U64KeyExtractor(), &counter};
      print("HOT", Measure(hot, counter, ds, order, key_of));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = ParseBenchConfig(argc, argv);
  if (cfg.keys > 500'000) cfg.keys = 500'000;  // span-1 trees are huge
  printf("ablation_span: static span (Fig. 2c) vs adaptive nodes (ART) vs "
         "adaptive span (HOT)\n");
  bench::BenchJson json("ablation_span");
  json.meta().Add("keys", cfg.keys).Add("seed", cfg.seed);
  RunForDataSet(cfg, DataSetKind::kInteger, json);
  RunForDataSet(cfg, DataSetKind::kEmail, json);
  json.WriteFile();
  return 0;
}
