// Batched-lookup ablation: sweeps the AMAC interleave width of
// HotTrie::LookupBatch (hot/batch_lookup.h) from 1 to 32 on large integer
// and email data sets, against the plain one-at-a-time Lookup loop as the
// width-1 baseline.
//
// The point of the experiment: a single trie descent is a chain of
// dependent DRAM misses, so scalar lookups leave the core's memory-level
// parallelism (10+ line-fill buffers) idle.  Interleaving W independent
// descents overlaps those misses; throughput should rise with W until the
// LFBs saturate (around 10-16 on current x86) and then flatten.  At the
// default 16M keys the index is far larger than the LLC, which is the
// regime the optimization targets — at cache-resident sizes (--quick on a
// small --n) the speedup shrinks toward 1.
//
// Usage: ablation_batch [--n=N] [--ops=N] [--seed=N] [--quick]
//   --n       keys per data set (default 16M)
//   --ops     probes per measurement (default: one per key)
//   --quick   single repetition, 500k probe cap (CI smoke mode)
//
// Emits BENCH_ablation_batch.json with one row per (dataset, width).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <optional>
#include <span>
#include <vector>

#include "bench/json_out.h"
#include "common/extractors.h"
#include "common/rng.h"
#include "hot/trie.h"
#include "ycsb/datasets.h"
#include "ycsb/report.h"

using namespace hot;
using namespace hot::ycsb;
using namespace hot::bench;

namespace {

using Clock = std::chrono::steady_clock;

constexpr unsigned kWidths[] = {1, 2, 4, 8, 12, 16, 24, 32};

struct Args {
  size_t n = 16'000'000;
  size_t ops = 0;  // 0 = one probe per key
  uint64_t seed = 42;
  bool quick = false;
};

Args ParseArgs(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const char* s = argv[i];
    if (strncmp(s, "--n=", 4) == 0) a.n = ParseSizeWithSuffix(s + 4);
    else if (strncmp(s, "--ops=", 6) == 0) a.ops = ParseSizeWithSuffix(s + 6);
    else if (strncmp(s, "--seed=", 7) == 0) a.seed = strtoull(s + 7, nullptr, 10);
    else if (strcmp(s, "--quick") == 0) a.quick = true;
    else if (strcmp(s, "--help") == 0) {
      printf("flags: --n=KEYS --ops=PROBES --seed=N --quick\n");
      exit(0);
    }
  }
  if (a.ops == 0) a.ops = a.n;
  if (a.quick && a.ops > 500'000) a.ops = 500'000;
  return a;
}

// Best-of-`reps` throughput for one arm.  `run` performs all probes and
// returns the number found (checked against `expect` so a broken arm fails
// loudly instead of reporting fantasy mops).
template <typename RunFn>
double Measure(unsigned reps, size_t ops, size_t expect, RunFn&& run) {
  double best = 0;
  for (unsigned r = 0; r < reps; ++r) {
    auto t0 = Clock::now();
    size_t hits = run();
    auto t1 = Clock::now();
    if (hits != expect) {
      fprintf(stderr, "ablation_batch: arm found %zu of %zu probes\n", hits,
              expect);
      exit(1);
    }
    double mops =
        static_cast<double>(ops) /
        std::chrono::duration<double>(t1 - t0).count() / 1e6;
    best = std::max(best, mops);
  }
  return best;
}

// Sweeps all widths for one loaded trie.  `probe_keys` are pre-materialized
// so the scalar and batched arms execute identical key handling and differ
// only in descent scheduling.
template <typename Extractor>
void Sweep(const char* dataset, const HotTrie<Extractor>& trie,
           const std::vector<KeyRef>& probe_keys, unsigned reps, Table& table,
           BenchJson& json) {
  const size_t ops = probe_keys.size();
  std::vector<std::optional<uint64_t>> out(ops);

  double base = 0;
  for (unsigned width : kWidths) {
    double mops;
    if (width == 1) {
      // Baseline: the plain production Lookup loop, not LookupBatch(w=1),
      // so the comparison includes the state-machine overhead.
      mops = Measure(reps, ops, ops, [&] {
        size_t hits = 0;
        for (const KeyRef& k : probe_keys) hits += trie.Lookup(k).has_value();
        return hits;
      });
      base = mops;
    } else {
      mops = Measure(reps, ops, ops, [&] {
        trie.LookupBatch(probe_keys, out, width);
        size_t hits = 0;
        for (const auto& v : out) hits += v.has_value();
        return hits;
      });
    }
    double speedup = mops / base;
    table.PrintRow({dataset, std::to_string(width), Fmt(mops),
                    Fmt(speedup) + "x"});
    JsonObject j;
    j.Add("dataset", dataset)
        .Add("width", width)
        .Add("mops", mops)
        .Add("speedup", speedup);
    json.AddResult(j);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  unsigned reps = args.quick ? 1 : 2;
  printf("ablation_batch: AMAC interleave width sweep, %zu keys, %zu probes "
         "per arm, best of %u\n\n",
         args.n, args.ops, reps);
  BenchJson json("ablation_batch");
  json.meta()
      .Add("keys", args.n)
      .Add("ops", args.ops)
      .Add("seed", args.seed)
      .Add("quick", args.quick)
      .Add("default_width", kDefaultBatchWidth);

  Table table({"dataset", "width", "mops", "speedup"});
  table.PrintHeader();

  {
    DataSet ds = GenerateDataSet(DataSetKind::kInteger, args.n, args.seed);
    std::vector<uint64_t> sorted = ds.ints;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    HotTrie<U64KeyExtractor> trie;
    trie.BulkLoad(sorted);

    SplitMix64 rng(args.seed ^ 0x5ca1ab1e);
    std::vector<uint8_t> key_bytes(args.ops * 8);
    std::vector<KeyRef> probe_keys(args.ops);
    for (size_t i = 0; i < args.ops; ++i) {
      EncodeU64(ds.ints[rng.NextBounded(ds.ints.size())], &key_bytes[i * 8]);
      probe_keys[i] = KeyRef(&key_bytes[i * 8], 8);
    }
    Sweep("integer", trie, probe_keys, reps, table, json);
  }

  {
    DataSet ds = GenerateDataSet(DataSetKind::kEmail, args.n, args.seed);
    // Record ids sorted by their (null-terminated) string key, as BulkLoad
    // requires values ascending in extracted-key order.
    std::vector<uint64_t> ids(ds.strings.size());
    std::iota(ids.begin(), ids.end(), uint64_t{0});
    std::sort(ids.begin(), ids.end(), [&](uint64_t a, uint64_t b) {
      return ds.strings[a] < ds.strings[b];
    });
    ids.erase(std::unique(ids.begin(), ids.end(),
                          [&](uint64_t a, uint64_t b) {
                            return ds.strings[a] == ds.strings[b];
                          }),
              ids.end());
    HotTrie<StringTableExtractor> trie{StringTableExtractor(&ds.strings)};
    trie.BulkLoad(ids);

    SplitMix64 rng(args.seed ^ 0x0ddba11);
    std::vector<KeyRef> probe_keys(args.ops);
    for (size_t i = 0; i < args.ops; ++i) {
      probe_keys[i] = TerminatedView(ds.strings[rng.NextBounded(ds.strings.size())]);
    }
    Sweep("email", trie, probe_keys, reps, table, json);
  }

  json.WriteFile();
  return 0;
}
