// Write-burst / load-spike bench for the hybrid static/delta index
// (hot/hybrid.h): measures read latency (obs/histogram.h percentiles)
// while background merges freeze, parallel-rebuild and swap the base under
// the readers, against a merge-quiescent baseline on the same tree.
//
// Phases:
//   quiescent    reads only, fully merged — the baseline p50/p99.
//   write-burst  a writer hammers Zipfian upserts over resident keys while
//                the reader keeps measuring; the delta churns through
//                freeze/rebuild/swap cycles the whole time.
//   load-spike   a writer bulk-arrives a fresh 25% of the key space
//                (insert-only growth burst) against concurrent reads.
//   post-merge   reads only again after ForceMerge — the quiescent check
//                that the rebuilt base serves like the original.
//
// The headline acceptance number is p99(write-burst) / p99(quiescent):
// reads are epoch-pinned and wait-free, so merges must not push read tail
// latency beyond 2x the quiescent baseline (recorded in the JSON as
// `p99_vs_quiescent`).  NOTE on recording hardware: on a single-core box
// the reader and writer time-share one CPU, so burst-phase tails include
// scheduler preemption on top of index effects; CI and the paper-grade
// numbers come from multi-core runs (meta records hardware_threads).
//
// Usage: hybrid_burst [--keys=N] [--ops=N]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/json_out.h"
#include "common/extractors.h"
#include "common/rng.h"
#include "hot/hybrid.h"
#include "obs/histogram.h"
#include "ycsb/adapters.h"
#include "ycsb/datasets.h"
#include "ycsb/report.h"
#include "ycsb/workload.h"

using namespace hot;
using namespace hot::ycsb;

namespace {

using Clock = std::chrono::steady_clock;
using Hybrid = HybridHotIndex<U64KeyExtractor>;

uint64_t NowNs(Clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
}

struct PhaseResult {
  size_t lookups = 0;
  double lookup_mops = 0;
  uint64_t p50 = 0, p99 = 0, max = 0;
  double mean = 0;
  size_t writes = 0;
  double write_mops = 0;
  uint64_t merges = 0;  // merge cycles completed during the phase
};

// Runs `read_ops` measured lookups, optionally racing `writer` (which runs
// until the reads finish unless it exhausts its own work first).
template <typename WriterFn>
PhaseResult RunPhase(Hybrid& index, const std::vector<uint64_t>& probe_keys,
                     size_t read_ops, uint64_t seed, WriterFn&& writer,
                     bool has_writer) {
  obs::LatencyHistogram hist;
  uint64_t merges_before = index.hybrid_stats().merges;
  std::atomic<bool> stop_writer{false};
  std::atomic<size_t> writes{0};

  std::thread wt;
  auto wall0 = Clock::now();
  if (has_writer) {
    wt = std::thread([&] { writer(stop_writer, writes); });
  }

  SplitMix64 rng(seed);
  size_t hits = 0;
  for (size_t i = 0; i < read_ops; ++i) {
    uint64_t key = probe_keys[rng.NextBounded(probe_keys.size())];
    auto t0 = Clock::now();
    hits += index.Lookup(U64Key(key).ref()).has_value();
    hist.Record(NowNs(t0));
  }
  double read_secs =
      std::chrono::duration<double>(Clock::now() - wall0).count();

  if (has_writer) {
    stop_writer.store(true, std::memory_order_release);
    wt.join();
  }
  double wall_secs =
      std::chrono::duration<double>(Clock::now() - wall0).count();
  (void)hits;

  PhaseResult r;
  r.lookups = read_ops;
  r.lookup_mops = static_cast<double>(read_ops) / read_secs / 1e6;
  r.p50 = hist.ValueAtPercentile(50);
  r.p99 = hist.ValueAtPercentile(99);
  r.max = hist.max();
  r.mean = hist.Mean();
  r.writes = writes.load(std::memory_order_relaxed);
  r.write_mops = static_cast<double>(r.writes) / wall_secs / 1e6;
  r.merges = index.hybrid_stats().merges - merges_before;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = ParseBenchConfig(argc, argv);
  const size_t read_ops = std::max<size_t>(cfg.ops / 4, 100'000);
  printf("hybrid_burst: read latency under background merges (%zu resident "
         "keys, %zu measured reads/phase)\n\n",
         cfg.keys, read_ops);

  // Key space: resident base plus a fresh 25% that arrives in the spike.
  DataSet ds =
      GenerateDataSet(DataSetKind::kInteger, cfg.keys + cfg.keys / 4,
                      cfg.seed);
  std::vector<uint64_t> base_keys(ds.ints.begin(),
                                  ds.ints.begin() + cfg.keys);
  std::vector<uint64_t> spike_keys(ds.ints.begin() + cfg.keys, ds.ints.end());
  std::vector<uint64_t> sorted_base = base_keys;
  std::sort(sorted_base.begin(), sorted_base.end());

  Hybrid::MergeOptions opts;
  opts.min_delta = std::max<size_t>(4096, cfg.keys / 64);
  opts.ratio = 0.05;
  opts.background = true;
  Hybrid index(U64KeyExtractor(), nullptr, opts);
  auto t0 = Clock::now();
  index.BulkLoad(sorted_base);
  double load_secs = std::chrono::duration<double>(Clock::now() - t0).count();

  bench::BenchJson json("hybrid_burst");
  json.meta()
      .Add("keys", cfg.keys)
      .Add("seed", cfg.seed)
      .Add("read_ops_per_phase", read_ops)
      .Add("min_delta", opts.min_delta)
      .Add("bulk_load_mops",
           static_cast<double>(cfg.keys) / load_secs / 1e6)
      .Add("hardware_threads",
           static_cast<uint64_t>(std::thread::hardware_concurrency()));

  Table table({"phase", "lookup-mops", "p50-ns", "p99-ns", "max-ns",
               "write-mops", "merges"});
  table.PrintHeader();

  double quiescent_p99 = 0;
  auto print = [&](const char* phase, const PhaseResult& r) {
    table.PrintRow({phase, Fmt(r.lookup_mops), std::to_string(r.p50),
                    std::to_string(r.p99), std::to_string(r.max),
                    Fmt(r.write_mops), std::to_string(r.merges)});
    bench::JsonObject j;
    j.Add("phase", phase)
        .Add("lookups", r.lookups)
        .Add("lookup_mops", r.lookup_mops)
        .Add("p50_ns", r.p50)
        .Add("p99_ns", r.p99)
        .Add("max_ns", r.max)
        .Add("mean_ns", r.mean)
        .Add("writes", r.writes)
        .Add("write_mops", r.write_mops)
        .Add("merges", r.merges);
    if (quiescent_p99 > 0) {
      j.Add("p99_vs_quiescent", static_cast<double>(r.p99) / quiescent_p99);
    }
    json.AddResult(j);
  };

  auto no_writer = [](std::atomic<bool>&, std::atomic<size_t>&) {};

  // Phase 1: merge-quiescent baseline.
  {
    PhaseResult r = RunPhase(index, base_keys, read_ops, cfg.seed + 1,
                             no_writer, /*has_writer=*/false);
    quiescent_p99 = static_cast<double>(std::max<uint64_t>(r.p99, 1));
    print("quiescent", r);
  }

  // Phase 2: Zipfian write burst over resident keys (upsert-heavy, the
  // YCSB-A shape) racing the measured reads.
  {
    auto writer = [&](std::atomic<bool>& stop, std::atomic<size_t>& writes) {
      SplitMix64 rng(cfg.seed + 2);
      ZipfianGenerator zipf(base_keys.size(), 0.99, cfg.seed + 3);
      size_t n = 0;
      while (!stop.load(std::memory_order_acquire)) {
        index.Upsert(base_keys[zipf.Next()]);
        ++n;
      }
      writes.store(n, std::memory_order_relaxed);
    };
    print("write-burst", RunPhase(index, base_keys, read_ops, cfg.seed + 4,
                                  writer, /*has_writer=*/true));
  }

  // Phase 3: load spike — a fresh 25% of the key space arrives insert-only
  // while reads continue against the resident keys.
  {
    auto writer = [&](std::atomic<bool>& stop, std::atomic<size_t>& writes) {
      size_t n = 0;
      for (uint64_t v : spike_keys) {
        if (stop.load(std::memory_order_acquire)) break;
        index.Insert(v);
        ++n;
      }
      writes.store(n, std::memory_order_relaxed);
    };
    print("load-spike", RunPhase(index, base_keys, read_ops, cfg.seed + 5,
                                 writer, /*has_writer=*/true));
  }

  // Phase 4: force-drain everything, then re-measure the rebuilt base.
  index.ForceMerge();
  {
    PhaseResult r = RunPhase(index, base_keys, read_ops, cfg.seed + 6,
                             no_writer, /*has_writer=*/false);
    print("post-merge", r);
  }

  auto stats = index.hybrid_stats();
  json.meta()
      .Add("total_merges", stats.merges)
      .Add("final_base_entries", stats.base_entries)
      .Add("last_rebuild_keys", stats.last_rebuild_keys)
      .Add("last_rebuild_ms",
           static_cast<double>(stats.last_rebuild_ns) / 1e6)
      .Add("rebuild_ms_total",
           static_cast<double>(stats.rebuild_ns_total) / 1e6);

  printf("\n(readers are epoch-pinned and never block on merges; burst p99 "
         "within 2x of quiescent is the acceptance gate on multi-core "
         "hardware — total merges: %llu, last rebuild %.1f ms over %llu "
         "keys)\n",
         static_cast<unsigned long long>(stats.merges),
         static_cast<double>(stats.last_rebuild_ns) / 1e6,
         static_cast<unsigned long long>(stats.last_rebuild_keys));
  json.WriteFile();
  return 0;
}
