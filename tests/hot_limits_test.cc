// API-boundary tests: the documented limits (256-byte keys, 63-bit values)
// are enforced with real checks independent of the build type, and the
// structures behave sensibly right at the limits.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "common/extractors.h"
#include "hot/rowex.h"
#include "hot/trie.h"

namespace hot {
namespace {

TEST(Limits, OversizedKeysAreRejected) {
  std::vector<std::string> table = {std::string(300, 'k')};
  HotTrie<StringTableExtractor> trie{StringTableExtractor(&table)};
  EXPECT_THROW(trie.Insert(0), std::invalid_argument);
  EXPECT_TRUE(trie.empty());

  RowexHotTrie<StringTableExtractor> rowex{StringTableExtractor(&table)};
  EXPECT_THROW(rowex.Insert(0), std::invalid_argument);
  EXPECT_TRUE(rowex.empty());
}

TEST(Limits, MaxLengthKeyWorks) {
  // Keys of exactly 256 bytes (including the terminator) are supported.
  std::vector<std::string> table;
  for (int i = 0; i < 100; ++i) {
    std::string s(255, 'a' + (i % 16));
    s[200] = static_cast<char>('0' + i % 10);
    s[100] = static_cast<char>('A' + i / 10);
    table.push_back(s);
  }
  // Deduplicate (the construction can collide).
  std::sort(table.begin(), table.end());
  table.erase(std::unique(table.begin(), table.end()), table.end());
  HotTrie<StringTableExtractor> trie{StringTableExtractor(&table)};
  for (size_t i = 0; i < table.size(); ++i) {
    ASSERT_TRUE(trie.Insert(i)) << i;
  }
  for (const auto& s : table) {
    EXPECT_TRUE(trie.Lookup(TerminatedView(s)).has_value());
  }
  std::string err;
  EXPECT_TRUE(trie.Validate(&err)) << err;
}

TEST(Limits, WideValuesAreRejected) {
  HotTrie<U64KeyExtractor> trie;
  EXPECT_THROW(trie.Insert(1ULL << 63), std::invalid_argument);
  EXPECT_TRUE(trie.empty());
  RowexHotTrie<U64KeyExtractor> rowex;
  EXPECT_THROW(rowex.Insert(~0ULL), std::invalid_argument);
}

TEST(Limits, MaxValuePayloadWorks) {
  HotTrie<U64KeyExtractor> trie;
  uint64_t max_payload = (1ULL << 63) - 1;
  EXPECT_TRUE(trie.Insert(max_payload));
  EXPECT_TRUE(trie.Insert(0));
  EXPECT_EQ(trie.Lookup(U64Key(max_payload).ref()).value(), max_payload);
  EXPECT_EQ(trie.Lookup(U64Key(0).ref()).value(), 0u);
}

TEST(Limits, LongLookupKeysAreSafe) {
  // Lookups and scans with over-long keys cannot corrupt anything: they
  // simply do not match (stored keys are all shorter).
  std::vector<std::string> table = {"short"};
  HotTrie<StringTableExtractor> trie{StringTableExtractor(&table)};
  ASSERT_TRUE(trie.Insert(0));
  std::string huge(10000, 'z');
  EXPECT_FALSE(trie.Lookup(TerminatedView(huge)).has_value());
  size_t seen = 0;
  trie.ScanFrom(TerminatedView(huge), 10, [&](uint64_t) { ++seen; });
  EXPECT_EQ(seen, 0u);  // "zzz..." sorts after "short"
  std::string tiny = "a";
  trie.ScanFrom(TerminatedView(tiny), 10, [&](uint64_t) { ++seen; });
  EXPECT_EQ(seen, 1u);
}

}  // namespace
}  // namespace hot
