// Masstree-specific tests: multi-layer descent for long keys, chained layer
// creation for keys sharing many 8-byte slices, layer collapse on delete,
// and the internal per-layer B+-tree.

#include "masstree/masstree.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/extractors.h"
#include "common/rng.h"

namespace hot {
namespace {

TEST(LayerTree, InsertFindRemove) {
  MemoryCounter counter;
  CountingAllocator alloc(&counter);
  masstree::LayerTree tree(&alloc);
  for (uint64_t k = 0; k < 10000; ++k) {
    EXPECT_TRUE(tree.Insert(k * 7, masstree::Slot::MakeTid(k)));
  }
  EXPECT_FALSE(tree.Insert(7, masstree::Slot::MakeTid(999)));
  EXPECT_EQ(tree.entries(), 10000u);
  for (uint64_t k = 0; k < 10000; ++k) {
    uint64_t* slot = tree.Find(k * 7);
    ASSERT_NE(slot, nullptr) << k;
    EXPECT_EQ(masstree::Slot::TidPayload(*slot), k);
  }
  EXPECT_EQ(tree.Find(3), nullptr);
  // In-order visit.
  uint64_t prev = 0;
  bool first = true;
  tree.VisitFrom(0, [&](uint64_t k, uint64_t) {
    if (!first) EXPECT_GT(k, prev);
    prev = k;
    first = false;
    return true;
  });
  // Remove everything in random order.
  SplitMix64 rng(3);
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; k < 10000; ++k) keys.push_back(k * 7);
  for (size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.NextBounded(i)]);
  }
  for (uint64_t k : keys) EXPECT_TRUE(tree.Remove(k).has_value());
  EXPECT_EQ(tree.entries(), 0u);
  tree.Clear();
  // All node memory returns.
  EXPECT_EQ(counter.live_bytes(), 0u);
}

TEST(Masstree, DeepLayerChainsForSharedSlices) {
  // Keys sharing 3 full 8-byte slices force a chain of layers.
  std::vector<std::string> table;
  std::string prefix(24, 'p');  // exactly 3 slices
  for (int i = 0; i < 100; ++i) {
    table.push_back(prefix + "tail" + std::to_string(i));
  }
  table.push_back("unrelated");
  Masstree<StringTableExtractor> tree{StringTableExtractor(&table)};
  for (size_t i = 0; i < table.size(); ++i) ASSERT_TRUE(tree.Insert(i));
  for (size_t i = 0; i < table.size(); ++i) {
    auto got = tree.Lookup(TerminatedView(table[i]));
    ASSERT_TRUE(got.has_value()) << table[i];
    EXPECT_EQ(*got, i);
  }
  EXPECT_FALSE(tree.Lookup(TerminatedView(prefix)).has_value());
  EXPECT_FALSE(tree.Lookup(TerminatedView(prefix + "tail")).has_value());
}

TEST(Masstree, LayerCollapseOnDelete) {
  MemoryCounter counter;
  std::vector<std::string> table;
  std::string prefix(40, 'z');
  for (int i = 0; i < 50; ++i) table.push_back(prefix + std::to_string(i));
  {
    Masstree<StringTableExtractor> tree{StringTableExtractor(&table),
                                        &counter};
    for (size_t i = 0; i < table.size(); ++i) ASSERT_TRUE(tree.Insert(i));
    size_t peak = counter.live_bytes();
    for (size_t i = 0; i < table.size() - 1; ++i) {
      ASSERT_TRUE(tree.Remove(TerminatedView(table[i])));
    }
    // Deep layers for the removed keys must have collapsed.
    EXPECT_LT(counter.live_bytes(), peak);
    EXPECT_TRUE(
        tree.Lookup(TerminatedView(table.back())).has_value());
    ASSERT_TRUE(tree.Remove(TerminatedView(table.back())));
    EXPECT_TRUE(tree.empty());
  }
  EXPECT_EQ(counter.live_bytes(), 0u);
}

TEST(Masstree, IntegerKeysSingleLayer) {
  Masstree<U64KeyExtractor> tree;
  SplitMix64 rng(5);
  std::set<uint64_t> oracle;
  for (int i = 0; i < 30000; ++i) {
    uint64_t v = rng.Next() >> 1;
    ASSERT_EQ(tree.Insert(v), oracle.insert(v).second);
  }
  for (uint64_t v : oracle) {
    ASSERT_TRUE(tree.Lookup(U64Key(v).ref()).has_value());
  }
  // Ordered scan across the single layer.
  std::vector<uint64_t> got;
  tree.ScanFrom(U64Key(0).ref(), 100, [&](uint64_t v) { got.push_back(v); });
  std::vector<uint64_t> want(oracle.begin(), oracle.end());
  want.resize(100);
  EXPECT_EQ(got, want);
}

TEST(Masstree, ScanAcrossLayers) {
  std::vector<std::string> table = {
      "aaaaaaaaaaaaaaaaaaaa1", "aaaaaaaaaaaaaaaaaaaa2",
      "aaaaaaaaaaaaaaaaaaaa3", "b", "c",
      "aaaaaaaaaaaaaaaaaaaa15",  // sorts between 1 and 2
  };
  Masstree<StringTableExtractor> tree{StringTableExtractor(&table)};
  for (size_t i = 0; i < table.size(); ++i) ASSERT_TRUE(tree.Insert(i));
  std::vector<std::string> got;
  tree.ScanFrom(TerminatedView(std::string("a")), 10,
                [&](uint64_t tid) { got.push_back(table[tid]); });
  std::vector<std::string> want = table;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace hot
