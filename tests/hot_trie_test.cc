// Differential, property and invariant tests for the single-threaded HOT
// trie: random operation sequences against std::map oracles, structural
// validation after mutations, iteration/lower-bound semantics, the §3.3
// determinism conjecture, and memory accounting.

#include "hot/trie.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/extractors.h"
#include "common/rng.h"
#include "hot/stats.h"

namespace hot {
namespace {

using U64Hot = HotTrie<U64KeyExtractor>;
using StringHot = HotTrie<StringTableExtractor>;

KeyBuffer U64Key(uint64_t v) { return KeyBuffer::FromU64(v); }

void ExpectValid(const U64Hot& trie) {
  std::string err;
  ASSERT_TRUE(trie.Validate(&err)) << err;
}

TEST(HotTrie, EmptyAndSingle) {
  U64Hot trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_FALSE(trie.Lookup(U64Key(7).ref()).has_value());
  EXPECT_FALSE(trie.Remove(U64Key(7).ref()));
  EXPECT_TRUE(trie.Insert(7));
  EXPECT_FALSE(trie.Insert(7));
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.Lookup(U64Key(7).ref()).value(), 7u);
  EXPECT_TRUE(trie.Remove(U64Key(7).ref()));
  EXPECT_TRUE(trie.empty());
}

TEST(HotTrie, TwoKeysFormRootNode) {
  U64Hot trie;
  trie.Insert(1);
  trie.Insert(2);
  EXPECT_EQ(trie.Lookup(U64Key(1).ref()).value(), 1u);
  EXPECT_EQ(trie.Lookup(U64Key(2).ref()).value(), 2u);
  EXPECT_FALSE(trie.Lookup(U64Key(3).ref()).has_value());
  ExpectValid(trie);
}

TEST(HotTrie, SequentialInsertLookupDense) {
  U64Hot trie;
  constexpr uint64_t kN = 100000;
  for (uint64_t v = 0; v < kN; ++v) ASSERT_TRUE(trie.Insert(v));
  EXPECT_EQ(trie.size(), kN);
  for (uint64_t v = 0; v < kN; ++v) {
    auto got = trie.Lookup(U64Key(v).ref());
    ASSERT_TRUE(got.has_value()) << v;
    EXPECT_EQ(*got, v);
  }
  EXPECT_FALSE(trie.Lookup(U64Key(kN).ref()).has_value());
  ExpectValid(trie);
}

TEST(HotTrie, RandomInsertLookupSparse) {
  U64Hot trie;
  std::set<uint64_t> oracle;
  SplitMix64 rng(101);
  for (int i = 0; i < 50000; ++i) {
    uint64_t v = rng.Next() >> 1;
    ASSERT_EQ(trie.Insert(v), oracle.insert(v).second);
  }
  for (uint64_t v : oracle) {
    ASSERT_TRUE(trie.Lookup(U64Key(v).ref()).has_value());
  }
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.Next() >> 1;
    EXPECT_EQ(trie.Lookup(U64Key(v).ref()).has_value(), oracle.count(v) > 0);
  }
  ExpectValid(trie);
}

TEST(HotTrie, ValidationHoldsDuringGrowth) {
  // Validate after every insert for the first couple hundred keys — this
  // exercises every structural case (pushdown, pull-up, intermediate).
  U64Hot trie;
  SplitMix64 rng(7);
  for (int i = 0; i < 400; ++i) {
    trie.Insert(rng.Next() >> 1);
    ExpectValid(trie);
  }
  // Dense keys trigger different node shapes.
  U64Hot dense;
  for (uint64_t v = 0; v < 400; ++v) {
    dense.Insert(v);
    std::string err;
    ASSERT_TRUE(dense.Validate(&err)) << "after " << v << ": " << err;
  }
}

TEST(HotTrie, DifferentialInsertRemoveLookup) {
  U64Hot trie;
  std::set<uint64_t> oracle;
  SplitMix64 rng(211);
  for (int i = 0; i < 60000; ++i) {
    uint64_t v = rng.NextBounded(20000);
    switch (rng.NextBounded(4)) {
      case 0:
      case 1:
        ASSERT_EQ(trie.Insert(v), oracle.insert(v).second) << "insert " << v;
        break;
      case 2:
        ASSERT_EQ(trie.Lookup(U64Key(v).ref()).has_value(),
                  oracle.count(v) > 0)
            << "lookup " << v;
        break;
      case 3:
        ASSERT_EQ(trie.Remove(U64Key(v).ref()), oracle.erase(v) > 0)
            << "remove " << v;
        break;
    }
    ASSERT_EQ(trie.size(), oracle.size());
    if (i % 5000 == 4999) ExpectValid(trie);
  }
  ExpectValid(trie);
}

TEST(HotTrie, RemoveEverythingLeavesCleanTrie) {
  MemoryCounter counter;
  U64Hot trie{U64KeyExtractor(), &counter};
  std::vector<uint64_t> keys;
  SplitMix64 rng(31);
  for (int i = 0; i < 5000; ++i) keys.push_back(rng.Next() >> 1);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  for (uint64_t v : keys) trie.Insert(v);
  EXPECT_GT(counter.live_bytes(), 0u);
  // Remove in a shuffled order.
  std::vector<uint64_t> shuffled = keys;
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.NextBounded(i)]);
  }
  for (uint64_t v : shuffled) {
    ASSERT_TRUE(trie.Remove(U64Key(v).ref()));
  }
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(counter.live_bytes(), 0u);
}

TEST(HotTrie, UpsertReplacesValue) {
  std::vector<std::string> table = {"alpha", "beta", "alpha"};
  StringHot trie{StringTableExtractor(&table)};
  EXPECT_TRUE(trie.Insert(0));
  EXPECT_TRUE(trie.Insert(1));
  // tid 2 has the same key as tid 0.
  auto prev = trie.Upsert(2);
  ASSERT_TRUE(prev.has_value());
  EXPECT_EQ(*prev, 0u);
  EXPECT_EQ(trie.Lookup(TerminatedView(table[0])).value(), 2u);
  EXPECT_EQ(trie.size(), 2u);
  // Upsert of a fresh key inserts.
  table.push_back("gamma");
  EXPECT_FALSE(trie.Upsert(3).has_value());
  EXPECT_EQ(trie.size(), 3u);
}

TEST(HotTrie, IterationIsSorted) {
  U64Hot trie;
  std::set<uint64_t> oracle;
  SplitMix64 rng(41);
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = rng.Next() >> 1;
    trie.Insert(v);
    oracle.insert(v);
  }
  std::vector<uint64_t> got;
  for (auto it = trie.Begin(); it.valid(); it.Next()) got.push_back(it.value());
  std::vector<uint64_t> want(oracle.begin(), oracle.end());
  EXPECT_EQ(got, want);
}

TEST(HotTrie, LowerBoundMatchesOracle) {
  U64Hot trie;
  std::set<uint64_t> oracle;
  SplitMix64 rng(43);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.NextBounded(1u << 20);
    trie.Insert(v);
    oracle.insert(v);
  }
  for (int probe = 0; probe < 3000; ++probe) {
    uint64_t start = rng.NextBounded(1u << 20) + (probe % 2);  // hit and miss
    auto it = trie.LowerBound(U64Key(start).ref());
    auto oit = oracle.lower_bound(start);
    if (oit == oracle.end()) {
      EXPECT_FALSE(it.valid()) << start;
    } else {
      ASSERT_TRUE(it.valid()) << start;
      EXPECT_EQ(it.value(), *oit) << start;
    }
  }
  // Bounds below the minimum and above the maximum.
  auto it = trie.LowerBound(U64Key(0).ref());
  ASSERT_TRUE(it.valid());
  EXPECT_EQ(it.value(), *oracle.begin());
  EXPECT_FALSE(trie.LowerBound(U64Key(~0ULL >> 1).ref()).valid());
}

TEST(HotTrie, ScanFromMatchesOracle) {
  U64Hot trie;
  std::set<uint64_t> oracle;
  SplitMix64 rng(47);
  for (int i = 0; i < 30000; ++i) {
    uint64_t v = rng.Next() >> 1;
    trie.Insert(v);
    oracle.insert(v);
  }
  for (int probe = 0; probe < 500; ++probe) {
    uint64_t start = rng.Next() >> 1;
    std::vector<uint64_t> got;
    trie.ScanFrom(U64Key(start).ref(), 100,
                  [&](uint64_t v) { got.push_back(v); });
    std::vector<uint64_t> want;
    for (auto it = oracle.lower_bound(start);
         it != oracle.end() && want.size() < 100; ++it) {
      want.push_back(*it);
    }
    ASSERT_EQ(got, want) << "start=" << start;
  }
}

TEST(HotTrie, StringKeysSharedPrefixes) {
  std::vector<std::string> table;
  // Deep shared prefixes stress multi-mask layouts and long mismatch bits.
  for (int a = 0; a < 10; ++a) {
    for (int b = 0; b < 10; ++b) {
      for (int c = 0; c < 10; ++c) {
        table.push_back("http://www.domain" + std::to_string(a) +
                        ".example.org/path/" + std::to_string(b) +
                        "/resource-" + std::to_string(c));
      }
    }
  }
  StringHot trie{StringTableExtractor(&table)};
  for (size_t i = 0; i < table.size(); ++i) {
    ASSERT_TRUE(trie.Insert(i)) << table[i];
  }
  EXPECT_EQ(trie.size(), table.size());
  for (size_t i = 0; i < table.size(); ++i) {
    auto got = trie.Lookup(TerminatedView(table[i]));
    ASSERT_TRUE(got.has_value()) << table[i];
    EXPECT_EQ(*got, i);
  }
  // Iteration yields lexicographic order.
  std::vector<std::string> got;
  for (auto it = trie.Begin(); it.valid(); it.Next()) {
    got.push_back(table[it.value()]);
  }
  std::vector<std::string> want = table;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST(HotTrie, GenomeAlphabetKeys) {
  // Extreme sparse-alphabet case the paper calls out (§3): 4-letter keys.
  std::vector<std::string> table;
  SplitMix64 rng(53);
  std::set<std::string> seen;
  const char acgt[] = {'A', 'C', 'G', 'T'};
  while (table.size() < 5000) {
    std::string s;
    size_t len = 8 + rng.NextBounded(24);
    for (size_t i = 0; i < len; ++i) s += acgt[rng.NextBounded(4)];
    if (seen.insert(s).second) table.push_back(s);
  }
  StringHot trie{StringTableExtractor(&table)};
  for (size_t i = 0; i < table.size(); ++i) ASSERT_TRUE(trie.Insert(i));
  for (size_t i = 0; i < table.size(); ++i) {
    ASSERT_TRUE(trie.Lookup(TerminatedView(table[i])).has_value());
  }
  // Genome keys use only 2 distinct bits per byte: nodes should achieve
  // high fanout anyway (that is the point of HOT).
  NodeCensus census = ComputeNodeCensus(trie);
  EXPECT_GT(census.AverageFanout(), 8.0);
}

TEST(HotTrie, PrefixKeysViaTerminator) {
  std::vector<std::string> table = {"a", "ab", "abc", "abcd", "b", ""};
  StringHot trie{StringTableExtractor(&table)};
  for (size_t i = 0; i < table.size(); ++i) ASSERT_TRUE(trie.Insert(i));
  for (size_t i = 0; i < table.size(); ++i) {
    auto got = trie.Lookup(TerminatedView(table[i]));
    ASSERT_TRUE(got.has_value()) << "'" << table[i] << "'";
    EXPECT_EQ(*got, i);
  }
  EXPECT_FALSE(trie.Lookup(TerminatedView(std::string("abcde"))).has_value());
}

// The §3.3 determinism conjecture: the paper conjectures (without proof)
// that a key set produces one canonical structure regardless of insertion
// order.  Our implementation — like any that decides overflow handling by
// when a node happens to fill — is history-dependent at the margin: the
// *partition into compound nodes* can differ across orders (all partitions
// being valid and height-optimized), while everything observable is
// order-independent: the leaf sequence, every invariant, and near-identical
// height profiles.  This test pins down exactly that guaranteed contract;
// DESIGN.md records the deviation from the conjecture.
TEST(HotTrie, OrderIndependentContract) {
  SplitMix64 rng(61);
  std::vector<uint64_t> keys;
  std::set<uint64_t> dedup;
  while (keys.size() < 3000) {
    uint64_t v = rng.Next() >> 1;
    if (dedup.insert(v).second) keys.push_back(v);
  }

  struct Profile {
    std::vector<uint64_t> leaves;  // in-order values
    unsigned max_depth = 0;
    double mean_depth = 0;
  };
  auto profile = [](const std::vector<uint64_t>& ks) {
    U64Hot trie;
    for (uint64_t k : ks) trie.Insert(k);
    std::string err;
    EXPECT_TRUE(trie.Validate(&err)) << err;
    Profile p;
    uint64_t sum = 0;
    trie.ForEachLeaf([&](unsigned depth, uint64_t v) {
      p.leaves.push_back(v);
      p.max_depth = std::max(p.max_depth, depth);
      sum += depth;
    });
    p.mean_depth = static_cast<double>(sum) / p.leaves.size();
    return p;
  };

  Profile base = profile(keys);
  for (int round = 0; round < 3; ++round) {
    std::vector<uint64_t> shuffled = keys;
    for (size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.NextBounded(i)]);
    }
    Profile p = profile(shuffled);
    EXPECT_EQ(p.leaves, base.leaves);
    // Random orders produce near-identical height profiles.
    EXPECT_LE(p.max_depth, base.max_depth + 1);
    EXPECT_GE(p.max_depth + 1, base.max_depth);
    EXPECT_NEAR(p.mean_depth, base.mean_depth, 0.5);
  }

  // Monotone insertion is the adversarial case for the published dynamic
  // algorithm: the forced root-BiNode split point makes splits maximally
  // lopsided and freezes small nodes behind the insertion cursor, so the
  // mean depth degrades by a constant factor (it stays O(log n)).  Pin that
  // behaviour: same leaves, bounded degradation.
  std::vector<uint64_t> sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  for (int dir = 0; dir < 2; ++dir) {
    Profile p = profile(sorted);
    EXPECT_EQ(p.leaves, base.leaves);
    EXPECT_LE(p.mean_depth, 3.0 * base.mean_depth);
    std::reverse(sorted.begin(), sorted.end());
  }
}

TEST(HotTrie, KConstraintAndFanout) {
  U64Hot trie;
  SplitMix64 rng(67);
  for (int i = 0; i < 100000; ++i) trie.Insert(rng.Next() >> 1);
  unsigned max_count = 0;
  uint64_t nodes = 0, entries = 0;
  trie.ForEachNode([&](NodeRef node, unsigned) {
    max_count = std::max(max_count, node.count());
    ++nodes;
    entries += node.count();
  });
  EXPECT_LE(max_count, kMaxFanout);
  // Random 63-bit integers: HOT's mean fanout should be high (paper §6.5
  // reports mean leaf depth 6.0 for 50M random integers, i.e. ~avg fanout
  // around 2^(26/6) ≈ 20 for interior).
  EXPECT_GT(static_cast<double>(entries) / nodes, 10.0);
}

TEST(HotTrie, DepthStatsMatchPaperShape) {
  // Uniform random integers: depth ~ log_k(n); 100k keys fit in <= 5 levels
  // of fanout-32 nodes with room to spare.
  U64Hot trie;
  SplitMix64 rng(71);
  for (int i = 0; i < 100000; ++i) trie.Insert(rng.Next() >> 1);
  DepthStats stats = ComputeDepthStats(trie);
  EXPECT_EQ(stats.total, trie.size());
  EXPECT_LE(stats.max, 8u);
  EXPECT_GT(stats.Mean(), 1.0);
}

TEST(HotTrie, MemoryPerKeyIsCompact) {
  // §6.3: HOT stays between 11.4 and 14.4 bytes/key across data sets at
  // 50M keys.  At smaller scale the constant differs slightly; assert a
  // sane compactness envelope instead.
  MemoryCounter counter;
  U64Hot trie{U64KeyExtractor(), &counter};
  SplitMix64 rng(73);
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) trie.Insert(rng.Next() >> 1);
  double bytes_per_key =
      static_cast<double>(counter.live_bytes()) / static_cast<double>(kN);
  EXPECT_LT(bytes_per_key, 25.0);
  EXPECT_GT(bytes_per_key, 8.0);
}

TEST(HotTrie, ClearReleasesEverything) {
  MemoryCounter counter;
  U64Hot trie{U64KeyExtractor(), &counter};
  for (uint64_t v = 0; v < 10000; ++v) trie.Insert(v * 3);
  trie.Clear();
  EXPECT_EQ(counter.live_bytes(), 0u);
  EXPECT_TRUE(trie.empty());
  // Reusable after Clear.
  EXPECT_TRUE(trie.Insert(5));
  EXPECT_TRUE(trie.Lookup(U64Key(5).ref()).has_value());
}

TEST(HotTrie, MaxFanoutBoundaryExact) {
  // Exactly k and k+1 keys sharing one node's bit range: the k+1st insert
  // must split.
  U64Hot trie;
  for (uint64_t v = 0; v < kMaxFanout; ++v) ASSERT_TRUE(trie.Insert(v));
  ExpectValid(trie);
  unsigned nodes = 0;
  trie.ForEachNode([&](NodeRef, unsigned) { ++nodes; });
  EXPECT_EQ(nodes, 1u);
  ASSERT_TRUE(trie.Insert(kMaxFanout));
  ExpectValid(trie);
  nodes = 0;
  trie.ForEachNode([&](NodeRef, unsigned) { ++nodes; });
  EXPECT_GT(nodes, 1u);
  for (uint64_t v = 0; v <= kMaxFanout; ++v) {
    EXPECT_TRUE(trie.Lookup(U64Key(v).ref()).has_value()) << v;
  }
}

}  // namespace
}  // namespace hot
