// Tests for height-optimized bulk loading: validity, equivalence with
// incremental insertion, near-optimal height on adversarial (monotone)
// inputs, and memory parity with the best-case incremental build.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/extractors.h"
#include "common/rng.h"
#include "hot/stats.h"
#include "hot/trie.h"
#include "testing/keyspace.h"
#include "ycsb/datasets.h"

namespace hot {
namespace {

std::vector<uint64_t> SortedRandom(size_t n, uint64_t seed) {
  SplitMix64 rng(seed);
  std::set<uint64_t> dedup;
  while (dedup.size() < n) dedup.insert(rng.Next() >> 1);
  return {dedup.begin(), dedup.end()};
}

unsigned CeilLog32(size_t n) {
  unsigned h = 1;
  size_t cap = 32;
  while (cap < n) {
    cap *= 32;
    ++h;
  }
  return h;
}

TEST(BulkLoad, EmptyAndTiny) {
  HotTrie<U64KeyExtractor> trie;
  trie.BulkLoad(nullptr, 0);
  EXPECT_TRUE(trie.empty());
  HotTrie<U64KeyExtractor> one;
  uint64_t v = 42;
  one.BulkLoad(&v, 1);
  EXPECT_EQ(one.size(), 1u);
  EXPECT_TRUE(one.Lookup(U64Key(42).ref()).has_value());
  HotTrie<U64KeyExtractor> two;
  std::vector<uint64_t> vals = {7, 9};
  two.BulkLoad(vals);
  std::string err;
  EXPECT_TRUE(two.Validate(&err)) << err;
}

class BulkLoadSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BulkLoadSizeTest, ValidAndComplete) {
  size_t n = GetParam();
  std::vector<uint64_t> values = SortedRandom(n, n);
  HotTrie<U64KeyExtractor> trie;
  trie.BulkLoad(values);
  EXPECT_EQ(trie.size(), n);
  std::string err;
  ASSERT_TRUE(trie.Validate(&err)) << "n=" << n << ": " << err;
  for (uint64_t v : values) {
    ASSERT_TRUE(trie.Lookup(U64Key(v).ref()).has_value()) << v;
  }
  // In-order iteration equals the input.
  std::vector<uint64_t> got;
  for (auto it = trie.Begin(); it.valid(); it.Next()) got.push_back(it.value());
  EXPECT_EQ(got, values);
  // Height optimality: ceil(log32 n), +1 when the key distribution's
  // Patricia shape cannot be packed perfectly near a capacity boundary.
  DepthStats stats = ComputeDepthStats(trie);
  EXPECT_LE(stats.max, CeilLog32(n) + 1) << "n=" << n;
  EXPECT_LE(stats.Mean(), static_cast<double>(CeilLog32(n)) + 0.75) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, BulkLoadSizeTest,
                         ::testing::Values(2, 31, 32, 33, 100, 1024, 1025,
                                           5000, 40000, 200000));

TEST(BulkLoad, FixesMonotoneInsertionPathology) {
  // Incremental insertion of sorted keys degrades depth (DESIGN.md
  // deviations); bulk loading of the same keys is height-optimal.
  std::vector<uint64_t> values = SortedRandom(100000, 3);

  HotTrie<U64KeyExtractor> incremental;
  for (uint64_t v : values) incremental.Insert(v);
  HotTrie<U64KeyExtractor> bulk;
  bulk.BulkLoad(values);

  DepthStats inc = ComputeDepthStats(incremental);
  DepthStats blk = ComputeDepthStats(bulk);
  EXPECT_LE(blk.max, CeilLog32(values.size()) + 1);
  EXPECT_LT(blk.Mean(), inc.Mean());
  EXPECT_LT(blk.max, inc.max);
}

TEST(BulkLoad, MemoryParityWithIncrementalRandomOrder) {
  std::vector<uint64_t> values = SortedRandom(100000, 5);
  MemoryCounter inc_counter, bulk_counter;
  HotTrie<U64KeyExtractor> incremental{U64KeyExtractor(), &inc_counter};
  // Insert in random order (the favourable case for incremental).
  std::vector<uint64_t> shuffled = values;
  SplitMix64 rng(9);
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.NextBounded(i)]);
  }
  for (uint64_t v : shuffled) incremental.Insert(v);
  HotTrie<U64KeyExtractor> bulk{U64KeyExtractor(), &bulk_counter};
  bulk.BulkLoad(values);
  // Bulk's advantage is height/adversarial orders; on memory it matches
  // random-order incremental insertion within a few percent.
  double ratio = static_cast<double>(bulk_counter.live_bytes()) /
                 static_cast<double>(inc_counter.live_bytes());
  EXPECT_LT(ratio, 1.05);
  NodeCensus census = ComputeNodeCensus(bulk);
  EXPECT_GT(census.AverageFanout(), 18.0);
}

TEST(BulkLoad, StringKeys) {
  ycsb::DataSet ds = ycsb::GenerateDataSet(ycsb::DataSetKind::kUrl, 30000, 11);
  // tids must be sorted by key: sort table indices lexicographically.
  std::vector<uint64_t> tids(ds.strings.size());
  for (size_t i = 0; i < tids.size(); ++i) tids[i] = i;
  std::sort(tids.begin(), tids.end(), [&](uint64_t a, uint64_t b) {
    return ds.strings[a] < ds.strings[b];
  });
  HotTrie<StringTableExtractor> trie{StringTableExtractor(&ds.strings)};
  trie.BulkLoad(tids);
  std::string err;
  ASSERT_TRUE(trie.Validate(&err)) << err;
  for (const auto& s : ds.strings) {
    ASSERT_TRUE(trie.Lookup(TerminatedView(s)).has_value()) << s;
  }
  // String-key Patricia tries contain chain-like regions (long shared
  // prefixes) for which NO fanout-32 partition reaches ceil(log32 n) —
  // compound nodes can cover at most 31 spine BiNodes each (the worst-case
  // height question the paper defers to future work).  Bulk loading must
  // still be at least as shallow as incremental insertion.
  HotTrie<StringTableExtractor> incremental{StringTableExtractor(&ds.strings)};
  for (size_t i = 0; i < ds.strings.size(); ++i) incremental.Insert(i);
  DepthStats bulk_stats = ComputeDepthStats(trie);
  DepthStats inc_stats = ComputeDepthStats(incremental);
  EXPECT_LE(bulk_stats.max, inc_stats.max);
  EXPECT_LE(bulk_stats.Mean(), inc_stats.Mean() + 0.01);
}

TEST(BulkLoad, MutableAfterwards) {
  std::vector<uint64_t> values = SortedRandom(20000, 13);
  HotTrie<U64KeyExtractor> trie;
  trie.BulkLoad(values);
  // Inserts, removals and scans behave normally on the bulk-built tree.
  SplitMix64 rng(17);
  std::set<uint64_t> oracle(values.begin(), values.end());
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = rng.Next() >> 1;
    ASSERT_EQ(trie.Insert(v), oracle.insert(v).second);
    if (i % 3 == 0) {
      uint64_t r = values[rng.NextBounded(values.size())];
      ASSERT_EQ(trie.Remove(U64Key(r).ref()), oracle.erase(r) > 0);
    }
  }
  std::string err;
  ASSERT_TRUE(trie.Validate(&err)) << err;
  EXPECT_EQ(trie.size(), oracle.size());
}

// --- parallel bulk build ----------------------------------------------------

// The parallel builder severs the input at BiNode-consistent boundaries and
// builds the pieces on worker threads, so the logical structure it grafts
// together is IDENTICAL to the serial bottom-up build — not merely
// equivalent.  Checked here as (depth, value) leaf-walk parity plus a node
// census match, across every keyspace generator family (including the
// span-boundary-adversarial multi-mask ones) and across thread counts that
// do and do not divide the piece count evenly.
template <typename Ex>
void ExpectSameTrie(HotTrie<Ex>& serial, HotTrie<Ex>& parallel,
                    const char* what) {
  ASSERT_EQ(serial.size(), parallel.size()) << what;
  std::string err;
  ASSERT_TRUE(parallel.Validate(&err)) << what << ": " << err;
  std::vector<std::pair<unsigned, uint64_t>> sl, pl;
  sl.reserve(serial.size());
  pl.reserve(parallel.size());
  serial.ForEachLeaf([&](unsigned d, uint64_t v) { sl.emplace_back(d, v); });
  parallel.ForEachLeaf([&](unsigned d, uint64_t v) { pl.emplace_back(d, v); });
  ASSERT_EQ(sl, pl) << what << ": leaf walk (depth,value) parity";
  DepthStats ss = ComputeDepthStats(serial);
  DepthStats ps = ComputeDepthStats(parallel);
  EXPECT_EQ(ss.max, ps.max) << what;
  NodeCensus sc = ComputeNodeCensus(serial);
  NodeCensus pc = ComputeNodeCensus(parallel);
  EXPECT_EQ(sc.nodes, pc.nodes) << what;
  EXPECT_EQ(sc.total_entries, pc.total_entries) << what;
  for (size_t t = 0; t < kNumNodeTypes; ++t) {
    EXPECT_EQ(sc.count_by_type[t], pc.count_by_type[t])
        << what << ": layout " << t;
  }
}

class ParallelBulkLoadKindTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelBulkLoadKindTest, MatchesSerialAcrossThreadCounts) {
  auto kind = static_cast<testing::KeySpaceKind>(GetParam());
  testing::KeySpace ks = testing::BuildKeySpace(kind, 60000, 77);
  const std::vector<uint64_t>& values = ks.SortedValues();
  ASSERT_FALSE(values.empty());
  for (unsigned threads : {2u, 3u, 8u}) {
    std::string what = std::string(testing::KeySpaceKindName(kind)) + " t=" +
                       std::to_string(threads);
    if (ks.is_string) {
      StringTableExtractor ex(&ks.strings);
      HotTrie<StringTableExtractor> serial{ex}, parallel{ex};
      serial.BulkLoad(values.data(), values.size());
      parallel.BulkLoad(values.data(), values.size(), threads);
      ExpectSameTrie(serial, parallel, what.c_str());
      for (const auto& s : ks.strings) {
        ASSERT_TRUE(parallel.Lookup(TerminatedView(s)).has_value()) << what;
      }
    } else {
      HotTrie<U64KeyExtractor> serial, parallel;
      serial.BulkLoad(values.data(), values.size());
      parallel.BulkLoad(values.data(), values.size(), threads);
      ExpectSameTrie(serial, parallel, what.c_str());
      for (uint64_t v : values) {
        ASSERT_TRUE(parallel.Lookup(U64Key(v).ref()).has_value()) << what;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, ParallelBulkLoadKindTest,
    ::testing::Range(0u, testing::kNumKeySpaceKinds),
    [](const ::testing::TestParamInfo<unsigned>& info) {
      std::string name = testing::KeySpaceKindName(
          static_cast<testing::KeySpaceKind>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ParallelBulkLoad, SmallInputsFallBackToSerial) {
  // Below the parallel grain the threaded entry point must produce the
  // same trie via the serial path (including n = 0 and n = 1).
  for (size_t n : {0ul, 1ul, 31ul, 1024ul}) {
    std::vector<uint64_t> values = SortedRandom(n, 101 + n);
    HotTrie<U64KeyExtractor> serial, parallel;
    serial.BulkLoad(values.data(), values.size());
    parallel.BulkLoad(values.data(), values.size(), 8);
    ASSERT_EQ(serial.size(), parallel.size());
    if (n > 0) {
      ExpectSameTrie(serial, parallel, "small");
    }
  }
}

TEST(ParallelBulkLoad, ThreadCountsBeyondStripesAndPieces) {
  // More threads than NodePool stripes or than built pieces must clamp,
  // not crash or skew the result.
  std::vector<uint64_t> values = SortedRandom(50000, 23);
  HotTrie<U64KeyExtractor> serial, parallel;
  serial.BulkLoad(values);
  parallel.BulkLoad(values, /*threads=*/64);
  ExpectSameTrie(serial, parallel, "t=64");
}

TEST(BulkLoad, RejectsDuplicateKeys) {
  // Bulk loading requires strictly ascending keys; duplicates are caught
  // deterministically (equal adjacent keys can never be severed apart, so
  // they always reach a shared Mismatch computation) on the serial and the
  // parallel path alike.
  std::vector<uint64_t> values = SortedRandom(4000, 31);
  values.insert(values.begin() + 1711, values[1711]);
  HotTrie<U64KeyExtractor> serial;
  EXPECT_THROW(serial.BulkLoad(values), std::invalid_argument);
  HotTrie<U64KeyExtractor> parallel;
  EXPECT_THROW(parallel.BulkLoad(values, 4), std::invalid_argument);
  // A small duplicated input (single-node path) is rejected too.
  std::vector<uint64_t> tiny = {5, 9, 9, 12};
  HotTrie<U64KeyExtractor> small;
  EXPECT_THROW(small.BulkLoad(tiny), std::invalid_argument);
}

TEST(ParallelBulkLoad, PinnedStripesSpreadCarves) {
  // Worker w allocates through stripe w: a parallel build at 4 threads on
  // enough keys must carve from >= 2 distinct stripes, and the builder
  // itself must stay pinned (no mid-build stripe migration), which shows
  // up as every carve landing in the first `threads` stripes plus the
  // serial grafting stripe.
  std::vector<uint64_t> values = SortedRandom(200000, 41);
  HotTrie<U64KeyExtractor> parallel;
  parallel.BulkLoad(values, 4);
  NodePool::Stats stats = parallel.pool_stats();
  EXPECT_GE(stats.ActiveStripes(), 2u);
  uint64_t total = 0;
  for (uint64_t c : stats.stripe_carves) total += c;
  EXPECT_EQ(total, stats.carves);
}

}  // namespace
}  // namespace hot
