// Replays every committed trace under tests/regressions/ against all five
// indexes (ISSUE satellite).  Traces land here minimized by
// `fuzz_replay --shrink` after a campaign failure; each must stay green
// forever once its bug is fixed.  The directory is compiled in as
// HOT_REGRESSION_TRACE_DIR.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "testing/differ.h"
#include "testing/trace.h"

namespace hot {
namespace testing {
namespace {

std::vector<std::string> TraceFiles() {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(
           HOT_REGRESSION_TRACE_DIR, ec)) {
    if (entry.path().extension() == ".trace") {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(RegressionTraces, AllCommittedTracesPassOnEveryIndex) {
  std::vector<std::string> files = TraceFiles();
  if (files.empty()) {
    GTEST_SKIP() << "no regression traces committed (see "
                 << HOT_REGRESSION_TRACE_DIR << "/README.md)";
  }
  for (const std::string& path : files) {
    Trace t;
    std::string err;
    ASSERT_TRUE(Trace::LoadFile(path, &t, &err)) << path << ": " << err;
    // Traces must round-trip byte-identically, or the committed artifact
    // is not what fuzz_replay will reproduce.
    EXPECT_EQ(Trace::Parse(t.Serialize(), &t, &err), true) << path;
    for (unsigned i = 0; i < kNumIndexes; ++i) {
      DiffResult res = RunTraceOnIndex(kIndexNames[i], t);
      EXPECT_TRUE(res.ok) << path << " on " << kIndexNames[i] << ": "
                          << res.Describe();
    }
  }
}

}  // namespace
}  // namespace testing
}  // namespace hot
