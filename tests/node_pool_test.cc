// Tests for the insert-path node pool: alignment, recycling, accounting,
// and thread safety.

#include "hot/node_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "obs/stat_counter.h"

namespace hot {
namespace {

TEST(NodePool, AlignmentAndWritability) {
  MemoryCounter counter;
  NodePool pool(&counter);
  std::vector<std::pair<void*, size_t>> blocks;
  SplitMix64 rng(1);
  for (int i = 0; i < 1000; ++i) {
    size_t bytes = 16 + rng.NextBounded(500);
    void* p = pool.AllocateAligned(bytes, 16);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 16, 0u);
    std::memset(p, 0xCD, bytes);
    blocks.push_back({p, bytes});
  }
  for (auto [p, bytes] : blocks) pool.FreeAligned(p, bytes, 16);
  EXPECT_EQ(counter.live_bytes(), 0u);
}

TEST(NodePool, RecyclesFreedBlocks) {
  NodePool pool(nullptr);
  void* a = pool.AllocateAligned(100, 16);
  pool.FreeAligned(a, 100, 16);
  // Same size class: the freed block comes back.
  void* b = pool.AllocateAligned(97, 16);
  EXPECT_EQ(a, b);
  pool.FreeAligned(b, 97, 16);
  // Different class: a different block.
  void* c = pool.AllocateAligned(500, 16);
  EXPECT_NE(a, c);
  pool.FreeAligned(c, 500, 16);
}

TEST(NodePool, CountsRoundedClassBytes) {
  MemoryCounter counter;
  NodePool pool(&counter);
  void* p = pool.AllocateAligned(33, 16);  // class rounds to 48
  EXPECT_EQ(counter.live_bytes(), 48u);
  pool.FreeAligned(p, 33, 16);
  EXPECT_EQ(counter.live_bytes(), 0u);
}

TEST(NodePool, DistinctLiveBlocksNeverAlias) {
  NodePool pool(nullptr);
  SplitMix64 rng(3);
  std::set<uintptr_t> live;
  std::vector<std::pair<void*, size_t>> blocks;
  for (int i = 0; i < 20000; ++i) {
    if (blocks.empty() || rng.NextBounded(3) != 0) {
      size_t bytes = 16 + rng.NextBounded(400);
      void* p = pool.AllocateAligned(bytes, 16);
      ASSERT_TRUE(live.insert(reinterpret_cast<uintptr_t>(p)).second);
      blocks.push_back({p, bytes});
    } else {
      size_t idx = rng.NextBounded(blocks.size());
      auto [p, bytes] = blocks[idx];
      blocks[idx] = blocks.back();
      blocks.pop_back();
      live.erase(reinterpret_cast<uintptr_t>(p));
      pool.FreeAligned(p, bytes, 16);
    }
  }
}

// Produce-on-A / free-on-B migration: every round a fresh thread allocates
// a batch and the NEXT fresh thread frees it, so freed blocks always land
// in a different stripe than the next allocator's.  Without the
// steal-from-siblings fallback each round would bump-carve fresh arena and
// the pool would grow without bound; with it, the arena stays bounded by
// roughly one chunk per stripe and the steal counter moves.
TEST(NodePool, CrossThreadFreeIsStolenBack) {
  MemoryCounter counter;
  NodePool pool(&counter);
  constexpr size_t kBlocks = 2000;
  constexpr size_t kBytes = 64;
  constexpr int kRounds = 24;
  std::vector<void*> batch;
  for (int round = 0; round < kRounds; ++round) {
    std::thread producer([&] {
      batch.clear();
      for (size_t i = 0; i < kBlocks; ++i) {
        batch.push_back(pool.AllocateAligned(kBytes, 16));
      }
    });
    producer.join();
    std::thread consumer([&] {
      for (void* p : batch) pool.FreeAligned(p, kBytes, 16);
    });
    consumer.join();
  }
  EXPECT_EQ(counter.live_bytes(), 0u);
  // 24 rounds x 2000 x 64B = 3 MiB allocated; a pool that never reused the
  // migrated blocks would hold ~12 chunks of bump arena for them alone.
  // Stealing keeps it to at most one warm-up chunk per stripe.
  EXPECT_LE(pool.ArenaBytes(), NodePool::kStripes * NodePool::kChunkBytes);
  if constexpr (obs::kStatsEnabled) {
    NodePool::Stats s = pool.stats();
    EXPECT_GT(s.steals, 0u);
    EXPECT_LE(s.steals, s.hits);
    EXPECT_EQ(s.hits + s.carves,
              static_cast<uint64_t>(kBlocks) * kRounds);
  }
}

// Cross-thread interleaving under contention: every thread both allocates
// and frees blocks that other threads produced (via a shared exchange
// slot).  The TSan CI lane runs this as the race check for the striped
// free lists, the nonempty masks, and the steal path.
TEST(NodePool, ConcurrentCrossThreadExchange) {
  MemoryCounter counter;
  NodePool pool(&counter);
  constexpr int kThreads = 8;
  constexpr int kOps = 4000;
  constexpr size_t kBytes = 48;
  std::atomic<void*> exchange{nullptr};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &exchange, t] {
      SplitMix64 rng(100 + t);
      for (int i = 0; i < kOps; ++i) {
        void* mine = pool.AllocateAligned(kBytes, 16);
        std::memset(mine, t + 1, kBytes);
        // Swap into the shared slot; free whatever another thread left.
        void* theirs = exchange.exchange(mine, std::memory_order_acq_rel);
        if (theirs != nullptr) pool.FreeAligned(theirs, kBytes, 16);
      }
    });
  }
  for (auto& th : threads) th.join();
  void* last = exchange.exchange(nullptr, std::memory_order_acq_rel);
  if (last != nullptr) pool.FreeAligned(last, kBytes, 16);
  EXPECT_EQ(counter.live_bytes(), 0u);
  if constexpr (obs::kStatsEnabled) {
    NodePool::Stats s = pool.stats();
    EXPECT_EQ(s.hits + s.carves,
              static_cast<uint64_t>(kThreads) * kOps);
    EXPECT_LE(s.steals, s.hits);
  }
}

TEST(NodePool, ConcurrentAllocFree) {
  MemoryCounter counter;
  NodePool pool(&counter);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      SplitMix64 rng(t);
      std::vector<std::pair<void*, size_t>> mine;
      for (int i = 0; i < 20000; ++i) {
        if (mine.empty() || rng.NextBounded(2) == 0) {
          size_t bytes = 16 + rng.NextBounded(300);
          void* p = pool.AllocateAligned(bytes, 16);
          // Blocks are thread-private while allocated: stamp + verify.
          std::memset(p, t + 1, bytes);
          mine.push_back({p, bytes});
        } else {
          auto [p, bytes] = mine.back();
          mine.pop_back();
          ASSERT_EQ(static_cast<unsigned char*>(p)[0],
                    static_cast<unsigned char>(t + 1));
          ASSERT_EQ(static_cast<unsigned char*>(p)[bytes - 1],
                    static_cast<unsigned char>(t + 1));
          pool.FreeAligned(p, bytes, 16);
        }
      }
      for (auto [p, bytes] : mine) pool.FreeAligned(p, bytes, 16);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.live_bytes(), 0u);
}

}  // namespace
}  // namespace hot
