// Tests for the static-span prefix tree (Fig. 2c substrate) and the
// Fig. 2 height relationships it motivates.

#include "prefixtree/prefix_tree.h"

#include <gtest/gtest.h>

#include <set>

#include "common/extractors.h"
#include "common/rng.h"
#include "hot/trie.h"

namespace hot {
namespace {

class PrefixTreeSpanTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(PrefixTreeSpanTest, InsertLookupAcrossSpans) {
  unsigned span = GetParam();
  MemoryCounter counter;
  PrefixTree<U64KeyExtractor> tree{span, U64KeyExtractor(), &counter};
  std::set<uint64_t> oracle;
  SplitMix64 rng(span);
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = rng.Next() >> 1;
    ASSERT_EQ(tree.Insert(v), oracle.insert(v).second);
  }
  EXPECT_FALSE(tree.Insert(*oracle.begin()));
  for (uint64_t v : oracle) {
    ASSERT_TRUE(tree.Lookup(U64Key(v).ref()).has_value());
  }
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.Next() >> 1;
    ASSERT_EQ(tree.Lookup(U64Key(v).ref()).has_value(), oracle.count(v) > 0);
  }
  size_t leaves = 0;
  tree.ForEachLeaf([&](unsigned, uint64_t) { ++leaves; });
  EXPECT_EQ(leaves, oracle.size());
}

INSTANTIATE_TEST_SUITE_P(Spans, PrefixTreeSpanTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u));

TEST(PrefixTree, LargerSpanMeansLowerTree) {
  // The Fig. 2 relationship: height scales ~1/s for fixed keys.
  SplitMix64 rng(77);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 3000; ++i) keys.push_back(rng.Next() >> 1);

  double prev_mean = 1e9;
  for (unsigned span : {1u, 2u, 4u, 8u}) {
    PrefixTree<U64KeyExtractor> tree{span};
    for (uint64_t v : keys) tree.Insert(v);
    uint64_t total = 0, n = 0;
    tree.ForEachLeaf([&](unsigned d, uint64_t) {
      total += d;
      ++n;
    });
    double mean = static_cast<double>(total) / n;
    EXPECT_LT(mean, prev_mean) << "span " << span;
    prev_mean = mean;
  }
}

TEST(PrefixTree, SparseKeysWasteSpaceWithLargeSpan) {
  // The §2 motivation: span-8 nodes on sparse keys are mostly empty.
  SplitMix64 rng(99);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 2000; ++i) keys.push_back(rng.Next() >> 1);

  MemoryCounter small_counter, big_counter;
  PrefixTree<U64KeyExtractor> small{2, U64KeyExtractor(), &small_counter};
  PrefixTree<U64KeyExtractor> big{8, U64KeyExtractor(), &big_counter};
  for (uint64_t v : keys) {
    small.Insert(v);
    big.Insert(v);
  }
  // Span 8 uses far more memory per key on sparse data.
  EXPECT_GT(big_counter.live_bytes(), small_counter.live_bytes() * 4);
}

TEST(PrefixTree, HotBeatsEveryStaticSpanOnStrings) {
  // End-to-end Fig. 2f claim: HOT's adaptive span gives a lower mean depth
  // than any static span on sparse string keys.
  std::vector<std::string> table;
  SplitMix64 rng(123);
  const char acgt[] = {'A', 'C', 'G', 'T'};
  std::set<std::string> dedup;
  while (table.size() < 3000) {
    std::string s;
    for (int i = 0; i < 20; ++i) s += acgt[rng.NextBounded(4)];
    if (dedup.insert(s).second) table.push_back(s);
  }

  auto mean_depth = [&](auto& index) {
    uint64_t total = 0, n = 0;
    index.ForEachLeaf([&](unsigned d, uint64_t) {
      total += d;
      ++n;
    });
    return static_cast<double>(total) / n;
  };

  HotTrie<StringTableExtractor> hot{StringTableExtractor(&table)};
  for (size_t i = 0; i < table.size(); ++i) hot.Insert(i);
  double hot_mean = mean_depth(hot);

  for (unsigned span : {1u, 2u, 4u, 8u}) {
    PrefixTree<StringTableExtractor> tree{span, StringTableExtractor(&table)};
    for (size_t i = 0; i < table.size(); ++i) tree.Insert(i);
    EXPECT_LT(hot_mean, mean_depth(tree)) << "span " << span;
  }
}

}  // namespace
}  // namespace hot
