// Durable-server tier: KvServer with a data directory, exercised over real
// loopback sockets (net/client.h).  Pins the restart contract — every
// acked write before a clean Stop() is served after the next Start() — in
// all three durability modes, the snapshot trigger + recovery path, the
// manual TriggerSnapshot() hook, and that a bad data dir fails Start()
// loudly instead of serving an empty non-durable index.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "net/client.h"
#include "net/server.h"
#include "persist/recovery.h"
#include "persist/snapshot.h"
#include "persist/wal.h"

namespace hot {
namespace net {
namespace {

KeyRef K(const std::string& s) { return KeyRef(s); }

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/hot_persist_server_XXXXXX";
    path = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    for (const auto& [seq, p] : persist::ListWalSegments(path)) {
      ::unlink(p.c_str());
    }
    ::unlink(persist::SnapshotPath(path).c_str());
    ::unlink(persist::SnapshotTmpPath(path).c_str());
    ::rmdir(path.c_str());
  }
};

ServerOptions DurableServer(const std::string& dir,
                            persist::Durability durability) {
  ServerOptions opt;
  opt.workers = 1;
  opt.shards = 4;
  opt.data_dir = dir;
  opt.durability = durability;
  opt.wal_flush_ms = 5;
  opt.recovery_threads = 2;
  return opt;
}

std::string Key(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "key-%05d", i);
  return buf;
}

// Full ordered dump of the served index over the wire.
std::map<std::string, uint64_t> ScanAll(KvClient* c) {
  std::map<std::string, uint64_t> out;
  std::string err;
  Reply reply;
  EXPECT_TRUE(c->Scan(KeyRef(), 1u << 20, &reply, &err)) << err;
  EXPECT_TRUE(reply.ok());
  for (const auto& e : reply.scan) out[e.key] = e.value;
  EXPECT_EQ(out.size(), reply.scan.size()) << "scan returned duplicate keys";
  return out;
}

TEST(PersistServer, RestartRoundTripInEveryDurabilityMode) {
  for (persist::Durability mode :
       {persist::Durability::kNone, persist::Durability::kAsync,
        persist::Durability::kSync}) {
    SCOPED_TRACE(persist::DurabilityName(mode));
    TempDir dir;
    std::map<std::string, uint64_t> oracle;
    {
      KvServer server(DurableServer(dir.path, mode));
      std::string err;
      ASSERT_TRUE(server.Start(&err)) << err;
      ASSERT_TRUE(server.durable());
      EXPECT_EQ(server.recovery().records, 0u);
      KvClient c;
      ASSERT_TRUE(c.Connect("127.0.0.1", server.port(), &err)) << err;
      Reply reply;
      for (int i = 0; i < 200; ++i) {
        ASSERT_TRUE(c.Put(K(Key(i)), 1000 + i, &reply, &err)) << err;
        ASSERT_TRUE(reply.ok());
        oracle[Key(i)] = 1000 + i;
      }
      for (int i = 0; i < 200; i += 5) {
        ASSERT_TRUE(c.Delete(K(Key(i)), &reply, &err)) << err;
        ASSERT_TRUE(reply.ok());
        oracle.erase(Key(i));
      }
      for (int i = 0; i < 50; ++i) {  // overwrites
        ASSERT_TRUE(c.Put(K(Key(i * 3 + 1)), 9000 + i, &reply, &err)) << err;
        oracle[Key(i * 3 + 1)] = 9000 + i;
      }
      server.Stop();  // clean shutdown flushes every mode
    }
    {
      KvServer server(DurableServer(dir.path, mode));
      std::string err;
      ASSERT_TRUE(server.Start(&err)) << err;
      EXPECT_EQ(server.recovery().records, oracle.size());
      EXPECT_EQ(server.live_keys(), oracle.size());
      KvClient c;
      ASSERT_TRUE(c.Connect("127.0.0.1", server.port(), &err)) << err;
      EXPECT_EQ(ScanAll(&c), oracle);
      // And the recovered image keeps serving writes with WAL continuity.
      Reply reply;
      ASSERT_TRUE(c.Put(K("post-restart"), 7, &reply, &err)) << err;
      ASSERT_TRUE(reply.ok());
      server.Stop();
    }
    {
      KvServer server(DurableServer(dir.path, mode));
      std::string err;
      ASSERT_TRUE(server.Start(&err)) << err;
      EXPECT_EQ(server.live_keys(), oracle.size() + 1);
      server.Stop();
    }
  }
}

// Racing writers on ONE key across two workers: the server's write-stripe
// ordering holds {WAL append, index apply} together, so the value the live
// index ends up serving is the value with the highest LSN — exactly what
// recovery's last-LSN-wins replay reconstructs.  Without that ordering,
// worker A could win the live index while worker B holds the higher LSN,
// and a restart would silently revert to a value clients saw overwritten.
TEST(PersistServer, ConcurrentSameKeyWritesRecoverToLiveValue) {
  TempDir dir;
  bool live_found = false;
  uint64_t live_value = 0;
  {
    ServerOptions opt = DurableServer(dir.path, persist::Durability::kSync);
    opt.workers = 2;
    KvServer server(opt);
    std::string err;
    ASSERT_TRUE(server.Start(&err)) << err;
    constexpr int kClients = 4;
    constexpr int kWrites = 200;
    std::vector<std::thread> threads;
    for (int t = 0; t < kClients; ++t) {
      threads.emplace_back([&, t] {
        KvClient c;
        std::string cerr;
        ASSERT_TRUE(c.Connect("127.0.0.1", server.port(), &cerr)) << cerr;
        Reply reply;
        for (int i = 0; i < kWrites; ++i) {
          if (t == 0 && i % 3 == 2) {  // deletes race the puts too
            ASSERT_TRUE(c.Delete(K("contended"), &reply, &cerr)) << cerr;
            ASSERT_TRUE(reply.status == kOk || reply.status == kNotFound);
          } else {
            uint64_t v = static_cast<uint64_t>(t) * 1000000 + i;
            ASSERT_TRUE(c.Put(K("contended"), v, &reply, &cerr)) << cerr;
            ASSERT_TRUE(reply.ok());
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    KvClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", server.port(), &err)) << err;
    Reply reply;
    ASSERT_TRUE(c.Get(K("contended"), &reply, &err)) << err;
    live_found = reply.status == kOk;
    live_value = reply.value;
    server.Stop();
  }
  {
    KvServer server(DurableServer(dir.path, persist::Durability::kSync));
    std::string err;
    ASSERT_TRUE(server.Start(&err)) << err;
    KvClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", server.port(), &err)) << err;
    Reply reply;
    ASSERT_TRUE(c.Get(K("contended"), &reply, &err)) << err;
    EXPECT_EQ(reply.status == kOk, live_found);
    if (live_found && reply.status == kOk) {
      EXPECT_EQ(reply.value, live_value);
    }
    server.Stop();
  }
}

TEST(PersistServer, SnapshotTriggerFiresAndRecoveryUsesIt) {
  TempDir dir;
  std::map<std::string, uint64_t> oracle;
  {
    ServerOptions opt = DurableServer(dir.path, persist::Durability::kNone);
    opt.snapshot_trigger_bytes = 4096;  // a few dozen puts
    KvServer server(opt);
    std::string err;
    ASSERT_TRUE(server.Start(&err)) << err;
    KvClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", server.port(), &err)) << err;
    Reply reply;
    for (int i = 0; i < 800; ++i) {
      ASSERT_TRUE(c.Put(K(Key(i)), i, &reply, &err)) << err;
      oracle[Key(i)] = i;
    }
    // The snapshot loop polls every ~100ms; give it a real deadline.
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (server.StatsSnapshot().snapshots_taken == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ServerStats stats = server.StatsSnapshot();
    ASSERT_GE(stats.snapshots_taken, 1u);
    EXPECT_EQ(stats.snapshot_failures, 0u);
    EXPECT_GE(stats.wal_rotations, 1u);
    server.Stop();
  }
  {
    KvServer server(DurableServer(dir.path, persist::Durability::kNone));
    std::string err;
    ASSERT_TRUE(server.Start(&err)) << err;
    EXPECT_TRUE(server.recovery().snapshot_loaded);
    EXPECT_EQ(server.recovery().records, oracle.size());
    KvClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", server.port(), &err)) << err;
    EXPECT_EQ(ScanAll(&c), oracle);
    server.Stop();
  }
}

TEST(PersistServer, ManualSnapshotCompactsTheWal) {
  TempDir dir;
  {
    KvServer server(DurableServer(dir.path, persist::Durability::kSync));
    std::string err;
    ASSERT_TRUE(server.Start(&err)) << err;
    KvClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", server.port(), &err)) << err;
    Reply reply;
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(c.Put(K(Key(i)), i, &reply, &err)) << err;
    }
    ASSERT_TRUE(server.TriggerSnapshot(&err)) << err;
    ServerStats stats = server.StatsSnapshot();
    EXPECT_EQ(stats.snapshots_taken, 1u);
    EXPECT_EQ(stats.snapshot_last_records, 300u);
    EXPECT_GE(stats.wal_segments_pruned, 1u);
    server.Stop();
  }
  {
    KvServer server(DurableServer(dir.path, persist::Durability::kSync));
    std::string err;
    ASSERT_TRUE(server.Start(&err)) << err;
    // Everything should come from the snapshot; the tail is empty.
    EXPECT_TRUE(server.recovery().snapshot_loaded);
    EXPECT_EQ(server.recovery().snapshot_records, 300u);
    EXPECT_EQ(server.recovery().wal_records_applied, 0u);
    EXPECT_EQ(server.live_keys(), 300u);
    server.Stop();
  }
}

TEST(PersistServer, BadDataDirFailsStartLoudly) {
  ServerOptions opt =
      DurableServer("/nonexistent/hot-persist-dir", persist::Durability::kSync);
  KvServer server(opt);
  std::string err;
  EXPECT_FALSE(server.Start(&err));
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace net
}  // namespace hot
