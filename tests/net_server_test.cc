// End-to-end differential tier for the KV server (net/server.h):
//
//   * sync-op sanity over a real socket (created flags, replaced values,
//     scan contents);
//   * out-of-order completion: pipelined GETs defer into the end-of-
//     iteration batch drain while writes reply inline, so arrival order is
//     NOT request order — clients must match by id, and this test pins both
//     that reordering happens and that every reply is correct;
//   * seeded mixed-op traces (testing/trace.h) replayed through loopback
//     sockets via net/net_differ.h, every reply diffed against the Patricia
//     oracle, across integer and string keyspace families — with the
//     scheduler both in batched and forced-scalar mode (same trace, same
//     answers, different drain counters);
//   * 4 client threads hammering ONE server concurrently over disjoint key
//     ranges, each diffing its own replies against its own oracle, scans
//     checked for global sortedness and key/value consistency, followed by
//     a quiesced full-content audit against the union oracle.

#include <algorithm>
#include <atomic>
#include <memory>
#include <cstdint>
#include <map>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/extractors.h"
#include "gtest/gtest.h"
#include "net/client.h"
#include "net/net_differ.h"
#include "net/server.h"
#include "patricia/patricia.h"
#include "testing/keyspace.h"
#include "testing/trace.h"

namespace hot {
namespace net {
namespace {

KeyRef K(const std::string& s) { return KeyRef(s); }

ServerOptions SmallServer(unsigned workers = 1) {
  ServerOptions opt;
  opt.workers = workers;
  opt.shards = 8;
  opt.batch_low_watermark = 4;
  return opt;
}

TEST(NetServer, SyncOpsBasics) {
  KvServer server(SmallServer());
  std::string err;
  ASSERT_TRUE(server.Start(&err)) << err;
  KvClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server.port(), &err)) << err;

  Reply reply;
  ASSERT_TRUE(c.Put(K("apple"), 1, &reply, &err));
  EXPECT_TRUE(reply.ok());
  EXPECT_TRUE(reply.created);
  ASSERT_TRUE(c.Put(K("apple"), 2, &reply, &err));
  EXPECT_TRUE(reply.ok());
  EXPECT_FALSE(reply.created);
  EXPECT_EQ(reply.prev, 1u);  // the value it replaced
  ASSERT_TRUE(c.Put(K("banana"), 3, &reply, &err));
  ASSERT_TRUE(c.Put(K("cherry"), 4, &reply, &err));

  ASSERT_TRUE(c.Get(K("apple"), &reply, &err));
  EXPECT_EQ(reply.status, kOk);
  EXPECT_EQ(reply.value, 2u);
  ASSERT_TRUE(c.Get(K("durian"), &reply, &err));
  EXPECT_EQ(reply.status, kNotFound);

  ASSERT_TRUE(c.Scan(K("b"), 10, &reply, &err));
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply.scan.size(), 2u);
  EXPECT_EQ(reply.scan[0].key, "banana");
  EXPECT_EQ(reply.scan[0].value, 3u);
  EXPECT_EQ(reply.scan[1].key, "cherry");
  EXPECT_EQ(reply.scan[1].value, 4u);

  ASSERT_TRUE(c.Delete(K("banana"), &reply, &err));
  EXPECT_EQ(reply.status, kOk);
  ASSERT_TRUE(c.Delete(K("banana"), &reply, &err));
  EXPECT_EQ(reply.status, kNotFound);
  EXPECT_EQ(server.live_keys(), 2u);
}

// Pipelined GETs around an inline-answered PUT: the PUT's reply overtakes
// the GETs queued before it.  Correctness is id-matched; the reordering
// itself is asserted to actually occur (across attempts — a single
// iteration window is all it takes with one flushed burst).
TEST(NetServer, OutOfOrderBatchedCompletions) {
  KvServer server(SmallServer());
  std::string err;
  ASSERT_TRUE(server.Start(&err)) << err;
  KvClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server.port(), &err)) << err;
  Reply reply;
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(
        c.Put(K("ooo-" + std::to_string(i)), 1000 + i, &reply, &err));
  }

  bool observed_reorder = false;
  for (int attempt = 0; attempt < 50 && !observed_reorder; ++attempt) {
    // One burst: 8 GETs then a PUT, flushed as a single write.
    std::vector<uint64_t> get_ids;
    for (int i = 0; i < 8; ++i) {
      get_ids.push_back(c.SendGet(K("ooo-" + std::to_string(i))));
    }
    uint64_t put_id = c.SendPut(K("ooo-probe"), 7);
    ASSERT_TRUE(c.Flush(&err)) << err;
    std::map<uint64_t, Reply> replies;
    std::vector<uint64_t> arrival;
    while (replies.size() < 9) {
      Reply r;
      ASSERT_TRUE(c.ReadReply(&r, &err)) << err;
      arrival.push_back(r.id);
      replies[r.id] = std::move(r);
    }
    // Every GET answered correctly regardless of order.
    for (int i = 0; i < 8; ++i) {
      const Reply& r = replies[get_ids[i]];
      ASSERT_EQ(r.status, kOk);
      ASSERT_EQ(r.value, 1000u + static_cast<unsigned>(i));
    }
    ASSERT_TRUE(replies[put_id].ok());
    // Reordered iff the PUT (sent last) was answered before some GET.
    if (arrival.front() == put_id) observed_reorder = true;
  }
  EXPECT_TRUE(observed_reorder)
      << "batched GETs never completed out of request order";
  ServerStats s = server.StatsSnapshot();
  EXPECT_GT(s.batch_drains, 0u) << "wide GET bursts never took the batch path";
  EXPECT_GE(s.max_batch, 8u);
}

// --- seeded trace differentials over loopback --------------------------------

class NetTraceDifferential
    : public ::testing::TestWithParam<hot::testing::KeySpaceKind> {};

TEST_P(NetTraceDifferential, BatchedModeMatchesOracle) {
  hot::testing::TraceGenConfig cfg;
  cfg.kind = GetParam();
  cfg.n = 1500;
  cfg.seed = 0x5eed0001;
  cfg.num_ops = 15000;
  cfg.audit_every = 3000;
  hot::testing::Trace trace = hot::testing::GenerateTrace(cfg);

  NetDiffOptions opts;
  opts.pipeline_width = 24;
  opts.server = SmallServer();
  NetDiffResult res = RunTraceOverNet(trace, opts);
  EXPECT_TRUE(res.ok) << res.Describe();
  // The pipelined lookups must actually have exercised the batch drain.
  EXPECT_GT(res.stats.batch_drains, 0u);
  EXPECT_EQ(res.stats.protocol_errors, 0u);
}

TEST_P(NetTraceDifferential, ScalarModeMatchesOracle) {
  hot::testing::TraceGenConfig cfg;
  cfg.kind = GetParam();
  cfg.n = 1000;
  cfg.seed = 0x5eed0002;
  cfg.num_ops = 8000;
  cfg.audit_every = 4000;
  hot::testing::Trace trace = hot::testing::GenerateTrace(cfg);

  NetDiffOptions opts;
  opts.pipeline_width = 24;
  opts.server = SmallServer();
  opts.server.force_scalar = true;
  NetDiffResult res = RunTraceOverNet(trace, opts);
  EXPECT_TRUE(res.ok) << res.Describe();
  EXPECT_EQ(res.stats.batch_drains, 0u);
  EXPECT_GT(res.stats.scalar_gets, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Keyspaces, NetTraceDifferential,
    ::testing::Values(hot::testing::KeySpaceKind::kUniform,
                      hot::testing::KeySpaceKind::kDense,
                      hot::testing::KeySpaceKind::kPrefix,
                      hot::testing::KeySpaceKind::kUrl,
                      hot::testing::KeySpaceKind::kEmail),
    [](const auto& info) {
      return std::string(hot::testing::KeySpaceKindName(info.param));
    });

// --- 4 concurrent client threads against one server --------------------------

// Each thread owns a disjoint quarter of the keyspace indices, so its
// private Patricia oracle stays exact under concurrency.  SCANs cross
// ownership boundaries; they are checked for strict global key order and
// for key/value consistency (the value returned with a key must be the
// value whose extractor image IS that key — any torn read or misrouted
// bucket breaks one of the two).
TEST(NetServer, FourClientThreadsDifferential) {
  constexpr unsigned kThreads = 4;
  constexpr uint32_t kN = 4000;
  constexpr int kOpsPerThread = 8000;

  hot::testing::KeySpace ks = hot::testing::BuildKeySpace(
      hot::testing::KeySpaceKind::kEmail, kN, 0xc0ffee);
  ASSERT_EQ(ks.size(), kN);
  StringTableExtractor extractor(&ks.strings);

  KvServer server(SmallServer(/*workers=*/2));
  std::string err;
  ASSERT_TRUE(server.Start(&err)) << err;

  std::atomic<bool> failed{false};
  std::vector<std::string> errors(kThreads);
  std::vector<std::unique_ptr<PatriciaTrie<StringTableExtractor>>> oracles;
  for (unsigned t = 0; t < kThreads; ++t) {
    oracles.push_back(
        std::make_unique<PatriciaTrie<StringTableExtractor>>(extractor));
  }

  auto worker = [&](unsigned t) {
    auto fail = [&](const std::string& what) {
      errors[t] = what;
      failed.store(true);
    };
    KvClient c;
    std::string cerr;
    if (!c.Connect("127.0.0.1", server.port(), &cerr)) {
      return fail("connect: " + cerr);
    }
    PatriciaTrie<StringTableExtractor>& oracle = *oracles[t];
    const uint32_t lo = t * (kN / kThreads);
    const uint32_t hi = (t + 1) * (kN / kThreads);
    std::mt19937_64 rng(1000 + t);
    // In-flight pipelined GETs: id -> (key idx, expected at send time).
    std::map<uint64_t, std::pair<uint32_t, std::optional<uint64_t>>> inflight;
    auto drain = [&]() -> bool {
      if (inflight.empty()) return true;
      if (!c.Flush(&cerr)) {
        fail("flush: " + cerr);
        return false;
      }
      size_t want = inflight.size();
      for (size_t i = 0; i < want; ++i) {
        Reply r;
        if (!c.ReadReply(&r, &cerr)) {
          fail("read: " + cerr);
          return false;
        }
        auto it = inflight.find(r.id);
        if (it == inflight.end()) {
          fail("unknown reply id");
          return false;
        }
        std::optional<uint64_t> want_v = it->second.second;
        if (want_v.has_value() != (r.status == kOk) ||
            (want_v && *want_v != r.value)) {
          fail("GET diverged on key idx " + std::to_string(it->second.first));
          return false;
        }
        inflight.erase(it);
      }
      return true;
    };
    for (int op = 0; op < kOpsPerThread && !failed.load(); ++op) {
      uint32_t idx = lo + static_cast<uint32_t>(rng() % (hi - lo));
      uint64_t v = ks.ValueOf(idx);
      KeyScratch scratch;
      KeyRef key = extractor(v, scratch);
      unsigned dice = rng() % 100;
      if (dice < 45) {  // pipelined lookup
        std::optional<uint64_t> expect = oracle.Lookup(key);
        inflight[c.SendGet(key)] = {idx, expect};
        if (inflight.size() >= 16 && !drain()) return;
      } else if (dice < 75) {  // put
        if (!drain()) return;
        bool inserted = oracle.Insert(v);
        Reply r;
        if (!c.Put(key, v, &r, &cerr)) return fail("put: " + cerr);
        if (!r.ok() || r.created != inserted) {
          return fail("PUT created flag diverged at idx " +
                      std::to_string(idx));
        }
        if (!r.created && r.prev != v) {
          return fail("PUT prev value diverged at idx " + std::to_string(idx));
        }
      } else if (dice < 90) {  // delete
        if (!drain()) return;
        bool want = oracle.Remove(key);
        Reply r;
        if (!c.Delete(key, &r, &cerr)) return fail("delete: " + cerr);
        if ((r.status == kOk) != want) {
          return fail("DELETE diverged at idx " + std::to_string(idx));
        }
      } else {  // cross-ownership scan: order + key/value consistency
        if (!drain()) return;
        Reply r;
        if (!c.Scan(key, 32, &r, &cerr)) return fail("scan: " + cerr);
        if (!r.ok()) return fail("scan status");
        for (size_t i = 0; i < r.scan.size(); ++i) {
          if (i > 0 &&
              KeyRef(r.scan[i - 1].key).Compare(KeyRef(r.scan[i].key)) >= 0) {
            return fail("scan results out of order");
          }
          KeyScratch s2;
          KeyRef image = extractor(r.scan[i].value, s2);
          if (image.Compare(KeyRef(r.scan[i].key)) != 0) {
            return fail("scan key/value inconsistency");
          }
        }
      }
    }
    drain();
  };

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& th : threads) th.join();
  for (unsigned t = 0; t < kThreads; ++t) {
    EXPECT_FALSE(failed.load() && !errors[t].empty())
        << "thread " << t << ": " << errors[t];
  }
  ASSERT_FALSE(failed.load());

  // Quiesced: full-content audit against the union of the 4 oracles
  // (disjoint idx ranges, so the union is well-defined).
  std::vector<uint64_t> want;
  for (auto& oracle : oracles) {
    oracle->ScanFrom(KeyRef(), [&](uint64_t v) {
      want.push_back(v);
      return true;
    });
  }
  std::sort(want.begin(), want.end(), [&](uint64_t a, uint64_t b) {
    KeyScratch sa, sb;
    return extractor(a, sa).Compare(extractor(b, sb)) < 0;
  });
  KvClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server.port(), &err)) << err;
  std::vector<ScanEntry> got;
  std::string last;
  bool first = true;
  while (true) {
    Reply r;
    ASSERT_TRUE(c.Scan(first ? KeyRef() : KeyRef(last), 512, &r, &err)) << err;
    ASSERT_TRUE(r.ok());
    for (ScanEntry& e : r.scan) {
      if (!first && KeyRef(e.key).Compare(KeyRef(last)) <= 0) continue;
      got.push_back(std::move(e));
    }
    if (r.scan.size() < 512) break;
    ASSERT_FALSE(got.empty());
    last = got.back().key;
    first = false;
  }
  ASSERT_EQ(got.size(), want.size());
  ASSERT_EQ(server.live_keys(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i].value, want[i]) << "audit diverged at position " << i;
    KeyScratch s2;
    ASSERT_EQ(KeyRef(got[i].key).Compare(extractor(want[i], s2)), 0)
        << "audit key bytes diverged at position " << i;
  }
  ServerStats s = server.StatsSnapshot();
  EXPECT_GT(s.batch_drains, 0u);
  EXPECT_EQ(s.protocol_errors, 0u);
  EXPECT_EQ(s.bad_requests, 0u);
}

}  // namespace
}  // namespace net
}  // namespace hot
