// Tests for the physical HOT node layer: the nine layouts, encode/decode
// round trips, PEXT extraction (SIMD vs scalar), and the comply search.

#include "hot/node.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"
#include "hot/logical_node.h"
#include "hot/node_search.h"

namespace hot {
namespace {

class NodeTest : public ::testing::Test {
 protected:
  MemoryCounter counter_;
  CountingAllocator alloc_{&counter_};
  std::vector<NodeRef> nodes_;

  ~NodeTest() override {
    for (NodeRef n : nodes_) FreeNode(alloc_, n);
    EXPECT_EQ(counter_.live_bytes(), 0u);
  }

  NodeRef Track(NodeRef n) {
    nodes_.push_back(n);
    return n;
  }
};

TEST(NodeLayout, GeometryOfAllTypes) {
  EXPECT_EQ(MaskSectionBytes(NodeType::kSingleMask8), 16u);
  EXPECT_EQ(MaskSectionBytes(NodeType::kMultiMask8x8), 16u);
  EXPECT_EQ(MaskSectionBytes(NodeType::kMultiMask16x16), 32u);
  EXPECT_EQ(MaskSectionBytes(NodeType::kMultiMask32x32), 64u);
  EXPECT_EQ(PartialKeyBytes(NodeType::kSingleMask8), 1u);
  EXPECT_EQ(PartialKeyBytes(NodeType::kMultiMask8x16), 2u);
  EXPECT_EQ(PartialKeyBytes(NodeType::kMultiMask32x32), 4u);
  // Partial key sections are padded to whole SIMD vectors.
  EXPECT_EQ(PartialKeySectionBytes(NodeType::kSingleMask8, 2), 32u);
  EXPECT_EQ(PartialKeySectionBytes(NodeType::kSingleMask16, 20), 64u);
  EXPECT_EQ(PartialKeySectionBytes(NodeType::kSingleMask32, 32), 128u);
}

TEST(NodeLayout, EntryTagging) {
  uint64_t tid = HotEntry::MakeTid(0x1234);
  EXPECT_TRUE(HotEntry::IsTid(tid));
  EXPECT_FALSE(HotEntry::IsNode(tid));
  EXPECT_EQ(HotEntry::TidPayload(tid), 0x1234u);

  alignas(32) static char fake_node[64];
  uint64_t e = HotEntry::MakeNode(fake_node, NodeType::kMultiMask16x32, 64);
  EXPECT_TRUE(HotEntry::IsNode(e));
  EXPECT_FALSE(HotEntry::IsTid(e));
  EXPECT_EQ(HotEntry::Type(e), NodeType::kMultiMask16x32);
  EXPECT_EQ(HotEntry::NodeSizeBytes(e), 64u);
  EXPECT_EQ(HotEntry::NodePtr(e), static_cast<void*>(fake_node));
  EXPECT_FALSE(HotEntry::IsNode(HotEntry::kEmpty));
  EXPECT_FALSE(HotEntry::IsTid(HotEntry::kEmpty));
}

TEST(NodeLayout, ChooseNodeTypePicksSmallest) {
  {
    uint16_t bits[] = {0, 5, 13, 60};  // bytes 0..7: single mask
    EXPECT_EQ(ChooseNodeType(bits, 4), NodeType::kSingleMask8);
  }
  {
    uint16_t bits[] = {0, 100};  // bytes 0 and 12: multi-mask 8
    EXPECT_EQ(ChooseNodeType(bits, 2), NodeType::kMultiMask8x8);
  }
  {
    // 12 bits in 12 distinct far-apart bytes: 16 masks, 16-bit keys.
    uint16_t bits[12];
    for (int i = 0; i < 12; ++i) bits[i] = static_cast<uint16_t>(i * 100);
    EXPECT_EQ(ChooseNodeType(bits, 12), NodeType::kMultiMask16x16);
  }
  {
    // 20 bits in 20 distinct far-apart bytes: 32 masks.
    uint16_t bits[20];
    for (int i = 0; i < 20; ++i) bits[i] = static_cast<uint16_t>(i * 80);
    EXPECT_EQ(ChooseNodeType(bits, 20), NodeType::kMultiMask32x32);
  }
  {
    // Many bits but all within one 8-byte window: still single mask.
    uint16_t bits[20];
    for (int i = 0; i < 20; ++i) bits[i] = static_cast<uint16_t>(i * 3);
    EXPECT_EQ(ChooseNodeType(bits, 20), NodeType::kSingleMask32);
  }
  {
    // 9 bits spread over 5 distinct bytes beyond an 8-byte span: MM8 x16.
    uint16_t bits[] = {0, 1, 80, 81, 160, 161, 240, 241, 400};
    EXPECT_EQ(ChooseNodeType(bits, 9), NodeType::kMultiMask8x16);
  }
}

// Builds a logical node over the given bit positions with sparse keys
// enumerating a balanced local trie, encodes it, and checks that decode and
// extraction invert the encoding.
TEST_F(NodeTest, EncodeDecodeRoundTripAcrossLayouts) {
  struct Case {
    std::vector<uint16_t> bits;
  };
  std::vector<Case> cases = {
      {{3, 4, 6}},                                  // single mask, 8-bit
      {{3, 4, 6, 8, 9, 20, 40, 55, 61, 62}},        // single mask, 16-bit
      {{0, 100, 200}},                              // MM8, 8-bit
      {{0, 1, 2, 3, 100, 101, 200, 300, 400}},      // MM8, 16-bit (5 bytes)
  };
  // 12 far-apart bytes -> MM16.
  Case mm16;
  for (int i = 0; i < 12; ++i) mm16.bits.push_back(static_cast<uint16_t>(i * 64 + 5));
  cases.push_back(mm16);
  // 18 far-apart bytes -> MM32.
  Case mm32;
  for (int i = 0; i < 18; ++i) mm32.bits.push_back(static_cast<uint16_t>(i * 64 + 3));
  cases.push_back(mm32);

  SplitMix64 rng(5);
  for (const Case& c : cases) {
    unsigned nbits = static_cast<unsigned>(c.bits.size());
    LogicalNode ln;
    ln.height = 1;
    ln.num_bits = nbits;
    std::copy(c.bits.begin(), c.bits.end(), ln.bits);
    // Chain sparse keys: entry i turns 1 at rank i-1 after the path of
    // entry i-1 (a right-leaning local trie), which is trivially valid and
    // strictly increasing.
    ln.count = std::min(nbits + 1, kMaxFanout);
    ln.sparse[0] = 0;
    for (unsigned i = 1; i < ln.count; ++i) {
      ln.sparse[i] = ln.sparse[i - 1] | LogicalNode::RankBit(i - 1);
    }
    for (unsigned i = 0; i < ln.count; ++i) {
      ln.entries[i] = HotEntry::MakeTid(rng.Next() >> 1);
    }

    NodeRef node = Track(Encode(ln, alloc_));
    EXPECT_EQ(node.count(), ln.count);
    EXPECT_EQ(node.num_bits(), nbits);
    EXPECT_EQ(node.height(), 1u);

    // Bit positions survive the round trip.
    uint16_t decoded[kMaxDiscBits];
    ASSERT_EQ(DecodeBitPositions(node, decoded), nbits);
    for (unsigned i = 0; i < nbits; ++i) EXPECT_EQ(decoded[i], c.bits[i]);

    // Logical decode inverts encode.
    LogicalNode back = Decode(node);
    EXPECT_EQ(back.count, ln.count);
    EXPECT_EQ(back.num_bits, ln.num_bits);
    for (unsigned i = 0; i < ln.count; ++i) {
      EXPECT_EQ(back.sparse[i], ln.sparse[i]);
      EXPECT_EQ(back.entries[i], ln.entries[i]);
    }

    // RootDiscBit is the smallest bit.
    EXPECT_EQ(RootDiscBit(node), c.bits[0]);

    // SIMD and scalar extraction agree on random keys.
    for (int trial = 0; trial < 200; ++trial) {
      uint8_t keybytes[kMaxKeyBytes];
      size_t len = 1 + rng.NextBounded(kMaxKeyBytes);
      for (size_t b = 0; b < len; ++b) {
        keybytes[b] = static_cast<uint8_t>(rng.Next());
      }
      KeyRef key(keybytes, len);
      EXPECT_EQ(ExtractDensePartialKey(node, key),
                ExtractDensePartialKeyScalar(node, key));
      EXPECT_EQ(ComplyMask(node, ExtractDensePartialKey(node, key)) &
                    node.UsedMask(),
                ComplyMaskScalar(node, ExtractDensePartialKey(node, key)) &
                    node.UsedMask());
      EXPECT_EQ(SearchNode(node, key), SearchNodeScalar(node, key));
    }
  }
}

TEST_F(NodeTest, ExtractionMatchesBitByBitDefinition) {
  SplitMix64 rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    // Random ascending bit set.
    std::set<uint16_t> bitset;
    unsigned nbits = 1 + rng.NextBounded(kMaxDiscBits);
    while (bitset.size() < nbits) {
      bitset.insert(static_cast<uint16_t>(rng.NextBounded(kMaxDiscBitPos)));
    }
    LogicalNode ln;
    ln.height = 1;
    ln.num_bits = nbits;
    unsigned j = 0;
    for (uint16_t b : bitset) ln.bits[j++] = b;
    ln.count = std::min(nbits + 1, kMaxFanout);
    ln.sparse[0] = 0;
    for (unsigned i = 1; i < ln.count; ++i) {
      ln.sparse[i] = ln.sparse[i - 1] | LogicalNode::RankBit(i - 1);
    }
    for (unsigned i = 0; i < ln.count; ++i) {
      ln.entries[i] = HotEntry::MakeTid(i);
    }
    NodeRef node = Encode(ln, alloc_);

    uint8_t keybytes[kMaxKeyBytes];
    size_t len = 1 + rng.NextBounded(kMaxKeyBytes);
    for (size_t b = 0; b < len; ++b) {
      keybytes[b] = static_cast<uint8_t>(rng.Next());
    }
    KeyRef key(keybytes, len);
    uint32_t expected = 0;
    for (uint16_t b : bitset) expected = (expected << 1) | key.Bit(b);
    EXPECT_EQ(ExtractDensePartialKey(node, key), expected);
    EXPECT_EQ(ExtractDensePartialKeyScalar(node, key), expected);
    FreeNode(alloc_, node);
  }
}

TEST_F(NodeTest, SearchReturnsHighestComplyingEntry) {
  // Hand-built node in the spirit of Fig. 5: bits {3,4,6,8,9}, 7 entries
  // forming a valid local Patricia trie (bit 9 is reused by two BiNodes).
  LogicalNode ln;
  ln.height = 1;
  ln.count = 7;
  ln.num_bits = 5;
  uint16_t bits[] = {3, 4, 6, 8, 9};
  std::copy(bits, bits + 5, ln.bits);
  uint32_t sparse5[] = {0b00000, 0b01000, 0b01100, 0b10000,
                        0b10001, 0b10010, 0b10011};
  for (int i = 0; i < 7; ++i) {
    ln.sparse[i] = sparse5[i] << 27;  // left-align 5-bit keys
    ln.entries[i] = HotEntry::MakeTid(100 + i);
  }
  NodeRef node = Track(Encode(ln, alloc_));
  EXPECT_EQ(node.type(), NodeType::kSingleMask8);

  // A key whose dense partial key is 11011 complies with 00000, 01000,
  // 10000, 10001, 10010, 10011 -> best (highest) is entry 6.
  // Construct a key with bits {3:1,4:1,6:0,8:1,9:1}.
  uint8_t keybytes[2] = {0, 0};
  auto set_bit = [&](unsigned pos) {
    keybytes[pos / 8] |= static_cast<uint8_t>(1u << (7 - pos % 8));
  };
  set_bit(3);
  set_bit(4);
  set_bit(8);
  set_bit(9);
  KeyRef key(keybytes, 2);
  EXPECT_EQ(ExtractDensePartialKey(node, key), 0b11011u);
  EXPECT_EQ(SearchNode(node, key), 6u);
  EXPECT_EQ(SearchNodeScalar(node, key), 6u);

  // Dense 00000 complies only with entry 0.
  uint8_t zero[2] = {0, 0};
  EXPECT_EQ(SearchNode(node, KeyRef(zero, 2)), 0u);
}

TEST_F(NodeTest, ShortKeysZeroPadInExtraction) {
  LogicalNode ln;
  ln.height = 1;
  ln.count = 2;
  ln.num_bits = 1;
  ln.bits[0] = 100;  // byte 12: beyond a 1-byte key
  ln.sparse[0] = 0;
  ln.sparse[1] = LogicalNode::RankBit(0);
  ln.entries[0] = HotEntry::MakeTid(1);
  ln.entries[1] = HotEntry::MakeTid(2);
  NodeRef node = Track(Encode(ln, alloc_));
  uint8_t one = 0xFF;
  KeyRef shortkey(&one, 1);
  EXPECT_EQ(ExtractDensePartialKey(node, shortkey), 0u);
  EXPECT_EQ(SearchNode(node, shortkey), 0u);
}

TEST(NodeAlloc, CounterTracksNodeBytes) {
  MemoryCounter counter;
  CountingAllocator alloc(&counter);
  NodeRef n = AllocateNode(alloc, NodeType::kSingleMask8, 10, 1, 5);
  EXPECT_EQ(counter.live_bytes(), NodeBytes(NodeType::kSingleMask8, 10));
  FreeNode(alloc, n);
  EXPECT_EQ(counter.live_bytes(), 0u);
}

}  // namespace
}  // namespace hot
