// ART-specific tests: adaptive node growth/shrink transitions
// (Node4 -> 16 -> 48 -> 256 and back), path compression including prefixes
// longer than the inline snippet, and child-ordering primitives.

#include "art/art.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/extractors.h"
#include "common/rng.h"

namespace hot {
namespace {

using U64Art = ArtTree<U64KeyExtractor>;

TEST(ArtNode, ChildPrimitivesSortedOrder) {
  MemoryCounter counter;
  CountingAllocator alloc(&counter);
  art::ArtNodeHeader* n = art::ArtAllocNode(alloc, art::ArtNodeType::kNode4);
  art::ArtAddChild(n, 30, art::ArtEntry::MakeTid(3));
  art::ArtAddChild(n, 10, art::ArtEntry::MakeTid(1));
  art::ArtAddChild(n, 20, art::ArtEntry::MakeTid(2));
  std::vector<unsigned> seen;
  art::ArtForEachChild(n, [&](uint8_t byte, uint64_t) {
    seen.push_back(byte);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<unsigned>{10, 20, 30}));
  EXPECT_NE(art::ArtFindChild(n, 20), nullptr);
  EXPECT_EQ(art::ArtFindChild(n, 25), nullptr);
  unsigned byte;
  EXPECT_EQ(art::ArtLowerBoundChild(n, 15, &byte), art::ArtEntry::MakeTid(2));
  EXPECT_EQ(byte, 20u);
  art::ArtRemoveChild(n, 20);
  EXPECT_EQ(art::ArtFindChild(n, 20), nullptr);
  art::ArtFreeNode(alloc, n);
  EXPECT_EQ(counter.live_bytes(), 0u);
}

TEST(ArtNode, GrowThroughAllLayouts) {
  MemoryCounter counter;
  CountingAllocator alloc(&counter);
  art::ArtNodeHeader* n = art::ArtAllocNode(alloc, art::ArtNodeType::kNode4);
  for (unsigned c = 0; c < 256; ++c) {
    if (art::ArtIsFull(n)) n = art::ArtGrow(alloc, n);
    art::ArtAddChild(n, static_cast<uint8_t>(c), art::ArtEntry::MakeTid(c));
  }
  EXPECT_EQ(n->type, art::ArtNodeType::kNode256);
  EXPECT_EQ(n->Count(), 256u);
  for (unsigned c = 0; c < 256; ++c) {
    uint64_t* slot = art::ArtFindChild(n, static_cast<uint8_t>(c));
    ASSERT_NE(slot, nullptr) << c;
    EXPECT_EQ(*slot, art::ArtEntry::MakeTid(c));
  }
  // Shrink back down: with 6 children left, the node is a Node16 (Node4
  // needs <= 3 to trigger), then removing three more reaches Node4.
  for (unsigned c = 0; c < 250; ++c) {
    art::ArtRemoveChild(n, static_cast<uint8_t>(c));
    n = art::ArtMaybeShrink(alloc, n);
  }
  EXPECT_EQ(n->type, art::ArtNodeType::kNode16);
  for (unsigned c = 250; c < 253; ++c) {
    art::ArtRemoveChild(n, static_cast<uint8_t>(c));
    n = art::ArtMaybeShrink(alloc, n);
  }
  EXPECT_EQ(n->type, art::ArtNodeType::kNode4);
  for (unsigned c = 253; c < 256; ++c) {
    uint64_t* slot = art::ArtFindChild(n, static_cast<uint8_t>(c));
    ASSERT_NE(slot, nullptr);
    EXPECT_EQ(*slot, art::ArtEntry::MakeTid(c));
  }
  art::ArtFreeNode(alloc, n);
  EXPECT_EQ(counter.live_bytes(), 0u);
}

TEST(Art, DensePromotesLargeNodes) {
  // 256 consecutive single-byte-differing keys force a Node256 at the top.
  U64Art art;
  for (uint64_t v = 0; v < 256; ++v) {
    ASSERT_TRUE(art.Insert(v << 8 | 1));
  }
  for (uint64_t v = 0; v < 256; ++v) {
    EXPECT_TRUE(art.Lookup(U64Key(v << 8 | 1).ref()).has_value());
  }
}

TEST(Art, LongCompressedPaths) {
  // Prefixes longer than the 10-byte inline snippet exercise the hybrid
  // path-compression fallback (leaf reloads).
  std::vector<std::string> table;
  std::string deep(60, 'q');
  for (int i = 0; i < 50; ++i) {
    table.push_back(deep + "-suffix-" + std::to_string(i));
  }
  // Also a key that diverges in the middle of the long prefix.
  std::string div = deep.substr(0, 30) + "X-divergent";
  table.push_back(div);
  ArtTree<StringTableExtractor> art{StringTableExtractor(&table)};
  for (size_t i = 0; i < table.size(); ++i) ASSERT_TRUE(art.Insert(i));
  for (size_t i = 0; i < table.size(); ++i) {
    ASSERT_TRUE(art.Lookup(TerminatedView(table[i])).has_value()) << table[i];
  }
  // Negative probes sharing the long prefix.
  EXPECT_FALSE(art.Lookup(TerminatedView(deep)).has_value());
  EXPECT_FALSE(
      art.Lookup(TerminatedView(deep + "-suffix-99")).has_value());
  // Remove the divergent key: the prefix split must merge back correctly.
  ASSERT_TRUE(art.Remove(TerminatedView(div)));
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        art.Lookup(TerminatedView(table[i])).has_value());
  }
}

TEST(Art, MemoryReleasedOnClear) {
  MemoryCounter counter;
  {
    U64Art art{U64KeyExtractor(), &counter};
    SplitMix64 rng(5);
    for (int i = 0; i < 50000; ++i) art.Insert(rng.Next() >> 1);
    EXPECT_GT(counter.live_bytes(), 0u);
    art.Clear();
    EXPECT_EQ(counter.live_bytes(), 0u);
  }
}

TEST(Art, RemoveShrinksAndCollapses) {
  MemoryCounter counter;
  U64Art art{U64KeyExtractor(), &counter};
  std::set<uint64_t> oracle;
  SplitMix64 rng(9);
  for (int i = 0; i < 30000; ++i) {
    uint64_t v = rng.NextBounded(60000);
    art.Insert(v);
    oracle.insert(v);
  }
  size_t peak = counter.live_bytes();
  // Remove 90%.
  size_t removed = 0;
  for (auto it = oracle.begin(); it != oracle.end();) {
    if (removed % 10 != 9) {
      EXPECT_TRUE(art.Remove(U64Key(*it).ref()));
      it = oracle.erase(it);
    } else {
      ++it;
    }
    ++removed;
  }
  EXPECT_LT(counter.live_bytes(), peak / 2);
  for (uint64_t v : oracle) {
    EXPECT_TRUE(art.Lookup(U64Key(v).ref()).has_value()) << v;
  }
}

TEST(Art, DepthIsBoundedByKeyLength) {
  U64Art art;
  SplitMix64 rng(13);
  for (int i = 0; i < 20000; ++i) art.Insert(rng.Next() >> 1);
  unsigned max_depth = 0;
  art.ForEachLeaf([&](unsigned d, uint64_t) { max_depth = std::max(max_depth, d); });
  EXPECT_LE(max_depth, 8u);  // span 8 over 8-byte keys
}

}  // namespace
}  // namespace hot
