// ycsb/range_sharded.h: splitter routing on the raw key bytes, the
// cross-shard spillover scan (differentially against an ordered oracle,
// with starts exactly at / just below / just above every splitter key),
// empty-shard spillover, resharding rules, the telemetry fold, and an
// 8-thread mixed-op race (run under TSan in CI).

#include "ycsb/range_sharded.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/extractors.h"
#include "common/key.h"
#include "common/rng.h"
#include "hot/rowex.h"
#include "hot/trie.h"
#include "obs/telemetry.h"

namespace hot {
namespace {

using ycsb::RangeShardedIndex;
using ycsb::SampledSplitters;
using ycsb::SplitterKeys;
using ycsb::SplittersFromSamples;
using ycsb::UniformByteSplitters;

using RangeShardedU64 = RangeShardedIndex<HotTrie<U64KeyExtractor>,
                                          U64KeyExtractor>;
using RangeShardedRowexU64 =
    RangeShardedIndex<RowexHotTrie<U64KeyExtractor>, U64KeyExtractor>;

std::vector<uint8_t> BigEndian(uint64_t v) {
  std::vector<uint8_t> bytes(8);
  EncodeU64(v, bytes.data());
  return bytes;
}

SplitterKeys SplittersAt(std::initializer_list<uint64_t> values) {
  SplitterKeys out;
  for (uint64_t v : values) out.push_back(BigEndian(v));
  return out;
}

// Oracle scan: big-endian byte order on u64 keys is numeric order, so an
// ordered std::set of the values answers every ScanFrom query exactly.
std::vector<uint64_t> OracleScan(const std::set<uint64_t>& oracle,
                                 uint64_t start, size_t limit) {
  std::vector<uint64_t> out;
  for (auto it = oracle.lower_bound(start);
       it != oracle.end() && out.size() < limit; ++it) {
    out.push_back(*it);
  }
  return out;
}

template <typename Index>
std::vector<uint64_t> IndexScan(const Index& idx, uint64_t start,
                                size_t limit) {
  std::vector<uint64_t> out;
  U64Key k(start);
  size_t n = idx.ScanFrom(k.ref(), limit, [&](uint64_t v) {
    out.push_back(v);
  });
  EXPECT_EQ(n, out.size());
  return out;
}

// --- routing ---------------------------------------------------------------

TEST(RangeSharded, SplitterRoutingBoundaries) {
  RangeShardedU64 idx(SplittersAt({100, 200, 300}), U64KeyExtractor());
  ASSERT_EQ(idx.shard_count(), 4u);
  // Shard s owns [splitter[s-1], splitter[s]): a key EQUAL to a splitter
  // belongs to the shard to the right of it.
  EXPECT_EQ(idx.ShardOf(U64Key(0).ref()), 0u);
  EXPECT_EQ(idx.ShardOf(U64Key(99).ref()), 0u);
  EXPECT_EQ(idx.ShardOf(U64Key(100).ref()), 1u);
  EXPECT_EQ(idx.ShardOf(U64Key(101).ref()), 1u);
  EXPECT_EQ(idx.ShardOf(U64Key(199).ref()), 1u);
  EXPECT_EQ(idx.ShardOf(U64Key(200).ref()), 2u);
  EXPECT_EQ(idx.ShardOf(U64Key(299).ref()), 2u);
  EXPECT_EQ(idx.ShardOf(U64Key(300).ref()), 3u);
  EXPECT_EQ(idx.ShardOf(U64Key(~uint64_t{0}).ref()), 3u);
}

TEST(RangeSharded, NoSplittersMeansOneShard) {
  RangeShardedU64 idx(SplitterKeys{}, U64KeyExtractor());
  EXPECT_EQ(idx.shard_count(), 1u);
  EXPECT_TRUE(idx.Insert(7));
  EXPECT_EQ(idx.Lookup(U64Key(7).ref()), std::optional<uint64_t>(7));
  EXPECT_EQ(IndexScan(idx, 0, 10), std::vector<uint64_t>{7});
}

TEST(RangeSharded, SplittersMustBeStrictlyAscending) {
  EXPECT_THROW(RangeShardedU64(SplittersAt({100, 100}), U64KeyExtractor()),
               std::invalid_argument);
  EXPECT_THROW(RangeShardedU64(SplittersAt({200, 100}), U64KeyExtractor()),
               std::invalid_argument);
}

TEST(RangeSharded, ReshardRequiresEmptyIndex) {
  RangeShardedU64 idx;
  EXPECT_EQ(idx.shard_count(), RangeShardedU64::kDefaultShards);
  idx.Reshard(SplittersAt({1000}));
  EXPECT_EQ(idx.shard_count(), 2u);
  ASSERT_TRUE(idx.Insert(5));
  EXPECT_THROW(idx.Reshard(SplittersAt({2000})), std::logic_error);
  ASSERT_TRUE(idx.Remove(U64Key(5).ref()));
  idx.Reshard(SplittersAt({2000, 3000}));
  EXPECT_EQ(idx.shard_count(), 3u);
}

// --- cross-shard ordered scans ---------------------------------------------

TEST(RangeSharded, ScanAtEverySplitterBoundary) {
  const SplitterKeys splitters = SplittersAt({100, 200, 300});
  RangeShardedU64 idx(splitters, U64KeyExtractor());
  std::set<uint64_t> oracle;
  for (uint64_t v = 0; v < 400; v += 3) {  // hits and gaps on both sides
    ASSERT_TRUE(idx.Insert(v));
    oracle.insert(v);
  }
  ASSERT_EQ(idx.size(), oracle.size());
  for (uint64_t s : {uint64_t{100}, uint64_t{200}, uint64_t{300}}) {
    for (uint64_t start : {s - 1, s, s + 1}) {  // just below / at / above
      for (size_t limit : {size_t{1}, size_t{7}, size_t{150}, size_t{500}}) {
        EXPECT_EQ(IndexScan(idx, start, limit),
                  OracleScan(oracle, start, limit))
            << "start=" << start << " limit=" << limit;
      }
    }
  }
  // Limits that force the scan across 2, 3 and all 4 shards.
  EXPECT_EQ(IndexScan(idx, 0, 50), OracleScan(oracle, 0, 50));
  EXPECT_EQ(IndexScan(idx, 0, 90), OracleScan(oracle, 0, 90));
  EXPECT_EQ(IndexScan(idx, 0, 1000), OracleScan(oracle, 0, 1000));
  EXPECT_EQ(IndexScan(idx, 399, 10), OracleScan(oracle, 399, 10));
  EXPECT_EQ(IndexScan(idx, 400, 10), std::vector<uint64_t>{});
}

TEST(RangeSharded, EmptyShardSpillover) {
  // Shards 1 and 2 ([100,200) and [200,300)) stay empty: a scan entering
  // them must pass through and keep producing from shard 3.
  RangeShardedU64 idx(SplittersAt({100, 200, 300}), U64KeyExtractor());
  std::set<uint64_t> oracle;
  for (uint64_t v : {5, 50, 99, 300, 301, 350}) {
    ASSERT_TRUE(idx.Insert(v));
    oracle.insert(v);
  }
  EXPECT_EQ(idx.shard_size(1), 0u);
  EXPECT_EQ(idx.shard_size(2), 0u);
  for (uint64_t start : {uint64_t{0}, uint64_t{60}, uint64_t{99},
                         uint64_t{100}, uint64_t{150}, uint64_t{250},
                         uint64_t{300}}) {
    for (size_t limit : {size_t{1}, size_t{3}, size_t{10}}) {
      EXPECT_EQ(IndexScan(idx, start, limit),
                OracleScan(oracle, start, limit))
          << "start=" << start << " limit=" << limit;
    }
  }
  // A completely empty index scans to nothing from anywhere.
  RangeShardedU64 empty(SplittersAt({100, 200}), U64KeyExtractor());
  EXPECT_EQ(IndexScan(empty, 0, 10), std::vector<uint64_t>{});
  EXPECT_EQ(IndexScan(empty, 150, 10), std::vector<uint64_t>{});
}

// --- differential ----------------------------------------------------------

template <typename Index>
void DifferentialMixedOps(Index& idx, uint64_t seed) {
  std::set<uint64_t> oracle;
  SplitMix64 rng(seed);
  constexpr uint64_t kKeyRange = 3000;  // straddles the 1000/2000 splitters
  for (int i = 0; i < 60000; ++i) {
    uint64_t v = rng.NextBounded(kKeyRange);
    switch (rng.NextBounded(8)) {
      case 0:
      case 1:
      case 2:
        ASSERT_EQ(idx.Insert(v), oracle.insert(v).second);
        break;
      case 3: {
        auto got = idx.Lookup(U64Key(v).ref());
        ASSERT_EQ(got.has_value(), oracle.count(v) > 0);
        if (got) ASSERT_EQ(*got, v);
        break;
      }
      case 4:
        ASSERT_EQ(idx.Remove(U64Key(v).ref()), oracle.erase(v) > 0);
        break;
      case 5: {
        bool present = oracle.count(v) > 0;
        auto prev = idx.Upsert(v);
        ASSERT_EQ(prev.has_value(), present);
        oracle.insert(v);
        break;
      }
      default: {
        size_t limit = 1 + rng.NextBounded(64);
        ASSERT_EQ(IndexScan(idx, v, limit), OracleScan(oracle, v, limit))
            << "scan from " << v;
        break;
      }
    }
    if (i % 5000 == 0) ASSERT_EQ(idx.size(), oracle.size());
  }
  ASSERT_EQ(idx.size(), oracle.size());
}

TEST(RangeSharded, DifferentialMixedOpsLocked) {
  RangeShardedU64 idx(SplittersAt({1000, 2000}), U64KeyExtractor());
  DifferentialMixedOps(idx, 77);
}

TEST(RangeSharded, DifferentialMixedOpsRowex) {
  static_assert(RangeShardedRowexU64::kSelfSynchronized,
                "ROWEX shards must bypass the wrapper lock");
  static_assert(!RangeShardedU64::kSelfSynchronized);
  RangeShardedRowexU64 idx(SplittersAt({1000, 2000}), U64KeyExtractor());
  DifferentialMixedOps(idx, 78);
}

TEST(RangeSharded, LookupBatchMatchesScalar) {
  RangeShardedU64 idx(SplittersAt({64, 128, 192}), U64KeyExtractor());
  for (uint64_t v = 0; v < 256; v += 2) ASSERT_TRUE(idx.Insert(v));
  std::vector<U64Key> storage;
  storage.reserve(256);
  std::vector<KeyRef> keys;
  for (uint64_t v = 0; v < 256; ++v) {  // hits and misses across all shards
    storage.emplace_back(v);
    keys.push_back(storage.back().ref());
  }
  std::vector<std::optional<uint64_t>> out(keys.size());
  idx.LookupBatch(std::span<const KeyRef>(keys),
                  std::span<std::optional<uint64_t>>(out));
  for (uint64_t v = 0; v < 256; ++v) {
    ASSERT_EQ(out[v], idx.Lookup(keys[v])) << v;
    ASSERT_EQ(out[v].has_value(), v % 2 == 0) << v;
  }
}

// Scatter-order regression for the scratch-based batched path: out[i] must
// be written for EVERY input position i — duplicate keys (several ids land
// in one shard bucket), all keys routing to one shard, and shards whose
// bucket is empty.  The old vector-of-vectors gather got this right by
// construction; the counting-sort rewrite has to be pinned.
TEST(RangeSharded, LookupBatchScatterOrder) {
  RangeShardedU64 idx(SplittersAt({64, 128, 192}), U64KeyExtractor());
  for (uint64_t v = 0; v < 256; v += 2) ASSERT_TRUE(idx.Insert(v));

  // Duplicate keys interleaved across shards, in deliberately non-sorted
  // shard order (shard 3, 0, 3, 1, 0, ...), plus misses.
  std::vector<uint64_t> probe = {200, 10, 200, 70, 10, 255, 7, 70, 10, 131};
  std::vector<U64Key> storage;
  storage.reserve(probe.size());
  std::vector<KeyRef> keys;
  for (uint64_t v : probe) {
    storage.emplace_back(v);
    keys.push_back(storage.back().ref());
  }
  // Poison the output so an unwritten position is caught.
  std::vector<std::optional<uint64_t>> out(keys.size(),
                                           std::optional<uint64_t>(999999));
  idx.LookupBatch(std::span<const KeyRef>(keys),
                  std::span<std::optional<uint64_t>>(out));
  for (size_t i = 0; i < probe.size(); ++i) {
    if (probe[i] % 2 == 0) {
      ASSERT_EQ(out[i], std::optional<uint64_t>(probe[i])) << i;
    } else {
      ASSERT_EQ(out[i], std::nullopt) << i;
    }
  }

  // All keys in one shard; every other shard's bucket is empty.
  keys.clear();
  storage.clear();
  storage.reserve(32);
  for (uint64_t v = 140; v < 172; ++v) {  // all route to shard 2
    ASSERT_EQ(idx.ShardOf(U64Key(v).ref()), 2u);
    storage.emplace_back(v);
    keys.push_back(storage.back().ref());
  }
  out.assign(keys.size(), std::optional<uint64_t>(999999));
  idx.LookupBatch(std::span<const KeyRef>(keys),
                  std::span<std::optional<uint64_t>>(out));
  for (size_t i = 0; i < keys.size(); ++i) {
    uint64_t v = 140 + i;
    ASSERT_EQ(out[i], v % 2 == 0 ? std::optional<uint64_t>(v) : std::nullopt)
        << i;
  }
}

// RouteBatch must agree with ShardOf key-for-key, including keys that share
// their first 8 bytes with a splitter — the prefix64 fast path decides
// those probes by full byte comparison, not the u64 prefix.
TEST(RangeSharded, RouteBatchMatchesShardOf) {
  // Splitters longer than 8 bytes sharing one 8-byte prefix, so every
  // routing decision among them falls through to the byte comparison.
  auto with_suffix = [](std::initializer_list<uint8_t> suffix) {
    std::vector<uint8_t> k = {'p', 'r', 'e', 'f', 'i', 'x', '!', '!'};
    k.insert(k.end(), suffix);
    return k;
  };
  SplitterKeys sk;
  sk.push_back(with_suffix({0x10}));
  sk.push_back(with_suffix({0x20}));
  sk.push_back(with_suffix({0x20, 0x01}));  // differs only at byte 9
  sk.push_back(with_suffix({0x30}));
  RangeShardedIndex<HotTrie<StringTableExtractor>, StringTableExtractor> idx(
      sk, StringTableExtractor(nullptr));

  std::vector<std::vector<uint8_t>> probes = {
      {'a'},                                  // below the prefix entirely
      {'p', 'r', 'e', 'f', 'i', 'x'},         // shorter than the prefix
      {'p', 'r', 'e', 'f', 'i', 'x', '!', '!'},  // == prefix, < all splitters
      with_suffix({0x10}),                    // equal to splitter 0
      with_suffix({0x15}),
      with_suffix({0x20}),                    // equal to splitter 1
      with_suffix({0x20, 0x00}),              // between splitters 1 and 2
      with_suffix({0x20, 0x01}),              // equal to splitter 2
      with_suffix({0x25}),
      with_suffix({0x30, 0xff}),              // above splitter 3
      {'z'},                                  // above the prefix entirely
  };
  std::vector<KeyRef> keys;
  for (const auto& p : probes) keys.emplace_back(p.data(), p.size());
  std::vector<uint32_t> routed(keys.size());
  idx.RouteBatch(keys, routed.data());
  const unsigned expected[] = {0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4};
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(routed[i], idx.ShardOf(keys[i])) << i;
    EXPECT_EQ(routed[i], expected[i]) << i;
  }
}

// --- splitter selection ----------------------------------------------------

TEST(RangeSharded, SampledSplittersBalanceUniformIntegers) {
  ycsb::DataSet ds = ycsb::GenerateDataSet(ycsb::DataSetKind::kInteger, 50000);
  SplitterKeys sk = SampledSplitters(ds, 16);
  ASSERT_EQ(sk.size(), 15u);
  RangeShardedU64 idx(sk, U64KeyExtractor());
  for (uint64_t v : ds.ints) ASSERT_TRUE(idx.Insert(v));
  // Equi-depth boundaries from a uniform sample: every shard within 3x of
  // the ideal population (loose: the sample is only 4096 keys).
  size_t ideal = ds.ints.size() / idx.shard_count();
  for (unsigned s = 0; s < idx.shard_count(); ++s) {
    EXPECT_GT(idx.shard_size(s), ideal / 3) << "shard " << s;
    EXPECT_LT(idx.shard_size(s), ideal * 3) << "shard " << s;
  }
  obs::TelemetrySnapshot snap = obs::CollectTelemetry(idx);
  EXPECT_EQ(snap.shards, idx.shard_count());
  EXPECT_EQ(snap.empty_shards, 0u);
  EXPECT_GT(snap.shard_entries_min, 0u);
  EXPECT_GE(snap.shard_entries_max, snap.shard_entries_min);
  // The census counts node entries (inner pointers included), so the fold
  // across shards must cover at least one leaf entry per key.
  EXPECT_GE(snap.census.total_entries, ds.ints.size());
}

// Regression for the 64-shard equi-depth bias on skewed string keys: the
// fixed 4096-key sample left only 64 sample points per boundary gap, and
// the quantile noise produced a 1.41x max/ideal imbalance on the url set
// (BENCH_ablation_shards.json, PR 5).  The default now scales the sample
// with the shard count (>= 256 points per gap); the imbalance must stay
// within the estimator's noise band.
TEST(RangeSharded, SampledSplittersBalanceUrl64Shards) {
  ycsb::DataSet ds = ycsb::GenerateDataSet(ycsb::DataSetKind::kUrl, 60000);
  constexpr unsigned kShards = 64;
  SplitterKeys sk = SampledSplitters(ds, kShards);
  ASSERT_GE(sk.size(), kShards - 4);  // dedup may collapse a few boundaries
  RangeShardedIndex<HotTrie<StringTableExtractor>, StringTableExtractor> idx(
      sk, StringTableExtractor(&ds.strings));
  // Routing census is enough to measure balance (no inserts needed).
  std::vector<size_t> per_shard(idx.shard_count(), 0);
  for (const std::string& s : ds.strings) {
    ++per_shard[idx.ShardOf(TerminatedView(s))];
  }
  double ideal = static_cast<double>(ds.strings.size()) / idx.shard_count();
  size_t max_shard = 0;
  for (size_t c : per_shard) max_shard = std::max(max_shard, c);
  EXPECT_LT(static_cast<double>(max_shard) / ideal, 1.25)
      << "url 64-shard imbalance regressed";
}

TEST(RangeSharded, SplitterHelpersShapes) {
  EXPECT_EQ(UniformByteSplitters(1).size(), 0u);
  EXPECT_EQ(UniformByteSplitters(16).size(), 15u);
  // Duplicate-heavy samples collapse to fewer splitters, never crash: 100
  // copies of one key dedup to a single boundary (two shards), not eight.
  std::vector<std::vector<uint8_t>> same(100, BigEndian(42));
  EXPECT_EQ(SplittersFromSamples(same, 8).size(), 1u);
}

// --- concurrency -----------------------------------------------------------

// 8 threads of mixed inserts / lookups / removes / upserts / cross-shard
// scans.  Under TSan this is the data-race check for the per-shard lock
// path AND the lock-free ROWEX path; unconditionally it checks that no
// operation is lost and every scan result is globally ordered.
// `assert_ordered`: under the per-shard lock each shard scan is atomic, so
// results must be strictly increasing even across shards (partitioning
// bounds every shard's keys by its splitters).  ROWEX shard scans run
// wait-free AGAINST in-flight writers, where per-element ordering is the
// index's weaker "consistent recent state" contract — that arm only checks
// the scan terminates within its limit.
template <typename Index>
void ConcurrentMixedOps(bool assert_ordered) {
  constexpr unsigned kThreads = 8;
  constexpr uint64_t kPerThread = 8000;
  constexpr uint64_t kTotal = kThreads * kPerThread;
  Index idx(SplittersAt({kTotal / 4, kTotal / 2, 3 * kTotal / 4}),
            U64KeyExtractor());

  // Phase 1: disjoint inserts.
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&idx, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        uint64_t v = t * kPerThread + i;
        ASSERT_TRUE(idx.Insert(v));
      }
    });
  }
  for (auto& th : threads) th.join();
  threads.clear();
  ASSERT_EQ(idx.size(), kTotal);

  // Phase 2: mixed readers, scanners, removers (odd keys), upserters.
  std::atomic<uint64_t> scanned{0};
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&idx, &scanned, assert_ordered, t] {
      SplitMix64 rng(123 + t);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        uint64_t v = rng.NextBounded(kTotal);
        switch (t % 4) {
          case 0:
            idx.Lookup(U64Key(v).ref());
            break;
          case 1: {
            uint64_t prev = 0;
            bool first = true;
            U64Key k(v);
            size_t n = idx.ScanFrom(k.ref(), 128, [&](uint64_t got) {
              if (assert_ordered && !first) ASSERT_GT(got, prev);
              prev = got;
              first = false;
            });
            ASSERT_LE(n, 128u);
            scanned.fetch_add(n, std::memory_order_relaxed);
            break;
          }
          case 2:
            if (v % 2 == 1) idx.Remove(U64Key(v).ref());
            break;
          case 3:
            if (v % 2 == 0) idx.Upsert(v);
            break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(scanned.load(), 0u);

  // Every even key survived: only odd keys were removed, upserts of even
  // keys are idempotent here.
  for (uint64_t v = 0; v < kTotal; v += 2) {
    auto got = idx.Lookup(U64Key(v).ref());
    ASSERT_TRUE(got.has_value()) << v;
    ASSERT_EQ(*got, v);
  }
}

TEST(RangeSharded, ConcurrentMixedOpsLocked) {
  ConcurrentMixedOps<RangeShardedU64>(/*assert_ordered=*/true);
}

TEST(RangeSharded, ConcurrentMixedOpsRowex) {
  ConcurrentMixedOps<RangeShardedRowexU64>(/*assert_ordered=*/false);
}

}  // namespace
}  // namespace hot
