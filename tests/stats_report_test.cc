// Coverage for the reporting substrate: depth statistics, node census,
// bench config parsing, table formatting, and the hash-sharded wrapper
// used by the scalability bench.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/extractors.h"
#include "common/rng.h"
#include "hot/stats.h"
#include "hot/trie.h"
#include "ycsb/report.h"
#include "ycsb/sharded.h"

namespace hot {
namespace {

TEST(DepthStats, AccumulatesCorrectly) {
  DepthStats stats;
  stats.Add(2);
  stats.Add(2);
  stats.Add(4);
  EXPECT_EQ(stats.total, 3u);
  EXPECT_EQ(stats.max, 4u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 8.0 / 3.0);
  ASSERT_GE(stats.histogram.size(), 5u);
  EXPECT_EQ(stats.histogram[2], 2u);
  EXPECT_EQ(stats.histogram[4], 1u);
  EXPECT_EQ(DepthStats().Mean(), 0.0);
}

TEST(NodeCensus, AccountsEveryNode) {
  HotTrie<U64KeyExtractor> trie;
  SplitMix64 rng(3);
  for (int i = 0; i < 50000; ++i) trie.Insert(rng.Next() >> 1);
  NodeCensus census = ComputeNodeCensus(trie);
  uint64_t nodes = 0, bytes = 0;
  for (size_t t = 0; t < kNumNodeTypes; ++t) {
    nodes += census.count_by_type[t];
    bytes += census.bytes_by_type[t];
  }
  EXPECT_EQ(nodes, census.nodes);
  EXPECT_EQ(bytes, census.total_bytes);
  EXPECT_GT(census.AverageFanout(), 2.0);
  // Uniform 63-bit integers: the top of the tree is dense (single-mask
  // nodes must dominate).
  EXPECT_GT(census.count_by_type[0] + census.count_by_type[1] +
                census.count_by_type[2],
            census.nodes / 2);
}

TEST(BenchConfig, ParsesFlagsAndSuffixes) {
  EXPECT_EQ(ycsb::ParseSizeWithSuffix("512"), 512u);
  EXPECT_EQ(ycsb::ParseSizeWithSuffix("3k"), 3000u);
  EXPECT_EQ(ycsb::ParseSizeWithSuffix("2M"), 2000000u);
  EXPECT_EQ(ycsb::ParseSizeWithSuffix("1.5m"), 1500000u);
  const char* argv[] = {"bench", "--keys=5k", "--ops=10K", "--threads=3",
                        "--workload=E"};
  ycsb::BenchConfig cfg =
      ycsb::ParseBenchConfig(5, const_cast<char**>(argv));
  EXPECT_EQ(cfg.keys, 5000u);
  EXPECT_EQ(cfg.ops, 10000u);
  EXPECT_EQ(cfg.threads, 3u);
  EXPECT_EQ(cfg.filter, "E");
}

TEST(ShardedIndex, PointOpsAcrossShards) {
  ycsb::ShardedIndex<HotTrie<U64KeyExtractor>> sharded;
  SplitMix64 rng(9);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 20000; ++i) keys.push_back(rng.Next() >> 1);
  for (uint64_t v : keys) {
    EXPECT_TRUE(sharded.Insert(v, U64Key(v).ref()));
  }
  EXPECT_FALSE(sharded.Insert(keys[0], U64Key(keys[0]).ref()));
  for (uint64_t v : keys) {
    ASSERT_TRUE(sharded.Lookup(U64Key(v).ref()).has_value()) << v;
  }
  EXPECT_TRUE(sharded.Remove(U64Key(keys[0]).ref()));
  EXPECT_FALSE(sharded.Lookup(U64Key(keys[0]).ref()).has_value());
}

TEST(ShardedIndex, ConcurrentMixedOps) {
  ycsb::ShardedIndex<HotTrie<U64KeyExtractor>> sharded;
  constexpr unsigned kThreads = 4;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      SplitMix64 rng(t);
      for (int i = 0; i < 20000; ++i) {
        uint64_t v = (rng.NextBounded(50000) << 3) | t;
        switch (rng.NextBounded(3)) {
          case 0:
            sharded.Insert(v, U64Key(v).ref());
            break;
          case 1:
            sharded.Lookup(U64Key(v).ref());
            break;
          case 2:
            sharded.Remove(U64Key(v).ref());
            break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  SUCCEED();  // thread-sanity: no crashes, no corruption (per-shard locks)
}

}  // namespace
}  // namespace hot
