// Unit tests for common/key.h and common/extractors.h.

#include "common/key.h"

#include <gtest/gtest.h>

#include <string>

#include "common/extractors.h"
#include "common/rng.h"

namespace hot {
namespace {

KeyRef K(const char* s) { return KeyRef(std::string_view(s)); }

TEST(KeyRef, CompareLexicographic) {
  EXPECT_EQ(K("abc").Compare(K("abc")), 0);
  EXPECT_LT(K("abc").Compare(K("abd")), 0);
  EXPECT_GT(K("abd").Compare(K("abc")), 0);
  EXPECT_LT(K("ab").Compare(K("abc")), 0);
  EXPECT_GT(K("abc").Compare(K("ab")), 0);
  EXPECT_EQ(KeyRef().Compare(KeyRef()), 0);
}

TEST(KeyRef, BitAccess) {
  uint8_t data[2] = {0b10110001, 0b01000000};
  KeyRef k(data, 2);
  EXPECT_EQ(k.Bit(0), 1u);
  EXPECT_EQ(k.Bit(1), 0u);
  EXPECT_EQ(k.Bit(2), 1u);
  EXPECT_EQ(k.Bit(3), 1u);
  EXPECT_EQ(k.Bit(7), 1u);
  EXPECT_EQ(k.Bit(8), 0u);
  EXPECT_EQ(k.Bit(9), 1u);
  // Beyond the end: zero padded.
  EXPECT_EQ(k.Bit(100), 0u);
  EXPECT_EQ(k.ByteOrZero(5), 0u);
}

TEST(FirstMismatchBit, Basics) {
  EXPECT_EQ(FirstMismatchBit(K("a"), K("a")), kNoMismatch);
  // 'a' = 0x61 = 01100001, 'b' = 0x62 = 01100010: first differing bit is 6.
  EXPECT_EQ(FirstMismatchBit(K("a"), K("b")), 6u);
  // 'a' vs 'a\0...': trailing zero bytes match the implicit padding.
  uint8_t padded[3] = {'a', 0, 0};
  EXPECT_EQ(FirstMismatchBit(K("a"), KeyRef(padded, 3)), kNoMismatch);
}

TEST(FirstMismatchBit, LongKeysWordPath) {
  std::string a(100, 'x');
  std::string b = a;
  b[57] = 'y';  // 'x'=0x78, 'y'=0x79 differ in bit 7 of the byte
  EXPECT_EQ(FirstMismatchBit(KeyRef(a), KeyRef(b)), 57u * 8 + 7);
  EXPECT_EQ(FirstMismatchBit(KeyRef(a), KeyRef(a)), kNoMismatch);
}

TEST(FirstMismatchBit, AgainstBitwiseReference) {
  SplitMix64 rng(11);
  for (int iter = 0; iter < 2000; ++iter) {
    uint8_t a[16], b[16];
    size_t la = 1 + rng.NextBounded(16), lb = 1 + rng.NextBounded(16);
    for (size_t i = 0; i < la; ++i) a[i] = static_cast<uint8_t>(rng.Next());
    for (size_t i = 0; i < lb; ++i) b[i] = static_cast<uint8_t>(rng.Next());
    if (iter % 4 == 0) {  // force long shared prefixes
      size_t share = std::min(la, lb);
      memcpy(b, a, share);
    }
    KeyRef ka(a, la), kb(b, lb);
    size_t expected = kNoMismatch;
    for (size_t bit = 0; bit < std::max(la, lb) * 8; ++bit) {
      if (ka.Bit(bit) != kb.Bit(bit)) {
        expected = bit;
        break;
      }
    }
    EXPECT_EQ(FirstMismatchBit(ka, kb), expected);
  }
}

TEST(FirstMismatchBit, OrderConsistency) {
  // If a < b lexicographically (with zero padding), the bit at the mismatch
  // position must be 0 in a and 1 in b.
  SplitMix64 rng(13);
  for (int iter = 0; iter < 2000; ++iter) {
    uint8_t a[9], b[9];
    size_t la = 1 + rng.NextBounded(8), lb = 1 + rng.NextBounded(8);
    for (size_t i = 0; i < la; ++i) a[i] = static_cast<uint8_t>(rng.Next() % 4);
    for (size_t i = 0; i < lb; ++i) b[i] = static_cast<uint8_t>(rng.Next() % 4);
    KeyRef ka(a, la), kb(b, lb);
    size_t p = FirstMismatchBit(ka, kb);
    if (p == kNoMismatch) continue;
    if (ka.Bit(p) == 0) {
      EXPECT_LT(ka.Compare(kb), 0);
    } else {
      EXPECT_GT(ka.Compare(kb), 0);
    }
  }
}

TEST(EncodeU64, PreservesOrder) {
  SplitMix64 rng(17);
  for (int i = 0; i < 2000; ++i) {
    uint64_t x = rng.Next(), y = rng.Next();
    uint8_t bx[8], by[8];
    EncodeU64(x, bx);
    EncodeU64(y, by);
    EXPECT_EQ(DecodeU64(bx), x);
    int c = memcmp(bx, by, 8);
    EXPECT_EQ(c < 0, x < y);
    EXPECT_EQ(c > 0, x > y);
  }
}

TEST(KeyBuffer, FromU64AndString) {
  KeyBuffer k = KeyBuffer::FromU64(0x0102030405060708ULL);
  EXPECT_EQ(k.ref().size(), 8u);
  EXPECT_EQ(k.ref()[0], 0x01);
  EXPECT_EQ(k.ref()[7], 0x08);

  KeyBuffer s = KeyBuffer::FromStringTerminated("hello");
  EXPECT_EQ(s.ref().size(), 6u);
  EXPECT_EQ(s.ref()[5], 0u);

  std::string longstr(100, 'z');
  KeyBuffer l = KeyBuffer::FromStringTerminated(longstr);
  EXPECT_EQ(l.ref().size(), 101u);
  EXPECT_EQ(l.ref()[99], 'z');
  EXPECT_EQ(l.ref()[100], 0u);
}

TEST(Extractors, U64KeyExtractor) {
  U64KeyExtractor ex;
  KeyScratch scratch;
  KeyRef k = ex(42, scratch);
  EXPECT_EQ(k.size(), 8u);
  EXPECT_EQ(DecodeU64(k.data()), 42u);
}

TEST(Extractors, StringTableExtractor) {
  std::vector<std::string> table = {"alpha", "beta"};
  StringTableExtractor ex(&table);
  KeyScratch scratch;
  KeyRef k = ex(1, scratch);
  EXPECT_EQ(k.size(), 5u);  // "beta" + NUL
  EXPECT_EQ(k[3], 'a');
  EXPECT_EQ(k[4], 0u);
  EXPECT_TRUE(k == TerminatedView(table[1]));
}

}  // namespace
}  // namespace hot
