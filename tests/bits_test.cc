// Unit tests for common/bits.h: scalar PEXT/PDEP twins vs the BMI2
// intrinsics, bit scans, and big-endian loads.

#include "common/bits.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hot {
namespace {

TEST(Bits, PextScalarBasics) {
  EXPECT_EQ(PextScalar(0b101100, 0b111100), 0b1011u);
  EXPECT_EQ(PextScalar(0xFF, 0x0F), 0x0Fu);
  EXPECT_EQ(PextScalar(0xF0, 0x0F), 0x00u);
  EXPECT_EQ(PextScalar(~0ULL, 0), 0u);
  EXPECT_EQ(PextScalar(0x8000000000000000ULL, 0x8000000000000000ULL), 1u);
}

TEST(Bits, PdepScalarBasics) {
  EXPECT_EQ(PdepScalar(0b1011, 0b111100), 0b101100u);
  EXPECT_EQ(PdepScalar(1, 0x8000000000000000ULL), 0x8000000000000000ULL);
  EXPECT_EQ(PdepScalar(0, ~0ULL), 0u);
}

TEST(Bits, PextPdepRoundTrip) {
  SplitMix64 rng(42);
  for (int i = 0; i < 10000; ++i) {
    uint64_t mask = rng.Next() & rng.Next();  // sparser masks
    uint64_t compact = rng.Next() & ((Popcount64(mask) == 64)
                                         ? ~0ULL
                                         : ((1ULL << Popcount64(mask)) - 1));
    EXPECT_EQ(PextScalar(PdepScalar(compact, mask), mask), compact);
  }
}

TEST(Bits, ScalarMatchesIntrinsics) {
  SplitMix64 rng(7);
  for (int i = 0; i < 20000; ++i) {
    uint64_t value = rng.Next();
    uint64_t mask = rng.Next();
    if (i % 3 == 0) mask &= rng.Next();  // vary density
    EXPECT_EQ(Pext64(value, mask), PextScalar(value, mask));
    EXPECT_EQ(Pdep64(value, mask), PdepScalar(value, mask));
    uint32_t v32 = static_cast<uint32_t>(value);
    uint32_t m32 = static_cast<uint32_t>(mask);
    EXPECT_EQ(Pext32(v32, m32), static_cast<uint32_t>(PextScalar(v32, m32)));
    EXPECT_EQ(Pdep32(v32, m32), static_cast<uint32_t>(PdepScalar(v32, m32)));
  }
}

TEST(Bits, BitScans) {
  EXPECT_EQ(BitScanReverse32(1), 0u);
  EXPECT_EQ(BitScanReverse32(0x80000000u), 31u);
  EXPECT_EQ(BitScanReverse32(0x00010001u), 16u);
  EXPECT_EQ(BitScanForward32(0x00010000u), 16u);
  EXPECT_EQ(BitScanReverse64(1ULL << 63), 63u);
  EXPECT_EQ(BitScanForward64(1ULL << 63), 63u);
}

TEST(Bits, BigEndianLoadStore) {
  uint8_t bytes[8] = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08};
  EXPECT_EQ(LoadBigEndian64(bytes), 0x0102030405060708ULL);
  uint8_t out[8];
  StoreBigEndian64(out, 0x0102030405060708ULL);
  EXPECT_EQ(0, memcmp(bytes, out, 8));
}

TEST(Bits, BigEndianOrderMatchesLexicographic) {
  SplitMix64 rng(3);
  for (int i = 0; i < 1000; ++i) {
    uint8_t a[8], b[8];
    StoreBigEndian64(a, rng.Next());
    StoreBigEndian64(b, rng.Next());
    int memcmp_order = memcmp(a, b, 8);
    uint64_t va = LoadBigEndian64(a), vb = LoadBigEndian64(b);
    if (memcmp_order < 0) EXPECT_LT(va, vb);
    if (memcmp_order > 0) EXPECT_GT(va, vb);
    if (memcmp_order == 0) EXPECT_EQ(va, vb);
  }
}

}  // namespace
}  // namespace hot
